// Tests for the circuit generators: calibration of the random DAG to the
// requested statistics, functional correctness of the arithmetic circuits,
// and reproducibility of the synthetic ISCAS85 suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "hssta/library/cell_library.hpp"
#include "hssta/netlist/generate.hpp"
#include "hssta/netlist/iscas.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/util/error.hpp"

namespace hssta::netlist {
namespace {

using library::CellLibrary;

const CellLibrary& lib() {
  static const CellLibrary l = library::default_90nm();
  return l;
}

TEST(RandomDag, HitsRequestedStatistics) {
  RandomDagSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 8;
  spec.num_gates = 200;
  spec.num_pins = 380;
  spec.depth = 15;
  spec.seed = 7;
  Netlist nl = make_random_dag(spec, lib());
  nl.validate();
  EXPECT_EQ(nl.num_gates(), spec.num_gates);
  EXPECT_EQ(nl.primary_inputs().size(), spec.num_inputs);
  EXPECT_GE(nl.primary_outputs().size(), spec.num_outputs);
  EXPECT_LE(nl.primary_outputs().size(), spec.num_outputs + 3);
  // Pin target hit exactly or with a tiny connectivity-repair overshoot.
  EXPECT_GE(nl.num_pins(), spec.num_pins);
  EXPECT_LE(nl.num_pins(), spec.num_pins + 8);
  EXPECT_GE(nl.depth(), spec.depth);
}

TEST(RandomDag, EveryInputUsedEveryGateObservable) {
  RandomDagSpec spec;
  spec.num_inputs = 30;
  spec.num_outputs = 5;
  spec.num_gates = 120;
  spec.num_pins = 200;
  spec.depth = 12;
  spec.seed = 3;
  Netlist nl = make_random_dag(spec, lib());
  const auto& sinks = nl.net_sinks();
  for (NetId pi : nl.primary_inputs())
    EXPECT_FALSE(sinks[pi].empty()) << "unused PI " << nl.net_name(pi);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const NetId out = nl.gate(g).output;
    EXPECT_TRUE(!sinks[out].empty() || nl.is_primary_output(out))
        << "unobservable gate " << nl.gate(g).name;
  }
}

TEST(RandomDag, DeterministicInSeed) {
  RandomDagSpec spec;
  spec.num_gates = 80;
  spec.num_pins = 150;
  spec.depth = 8;
  spec.seed = 11;
  Netlist a = make_random_dag(spec, lib());
  Netlist b = make_random_dag(spec, lib());
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (GateId g = 0; g < a.num_gates(); ++g) {
    EXPECT_EQ(a.gate(g).type, b.gate(g).type);
    EXPECT_EQ(a.gate(g).fanins, b.gate(g).fanins);
  }
  spec.seed = 12;
  Netlist c = make_random_dag(spec, lib());
  bool differs = false;
  for (GateId g = 0; g < a.num_gates() && !differs; ++g)
    differs = a.gate(g).fanins != c.gate(g).fanins;
  EXPECT_TRUE(differs);
}

class RandomDagSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, double>> {};

TEST_P(RandomDagSweep, ValidAcrossShapes) {
  const auto [gates, depth, pin_factor] = GetParam();
  RandomDagSpec spec;
  spec.num_inputs = std::max<size_t>(4, gates / 10);
  spec.num_outputs = std::max<size_t>(2, gates / 20);
  spec.num_gates = gates;
  spec.num_pins = static_cast<size_t>(static_cast<double>(gates) * pin_factor);
  spec.depth = depth;
  spec.seed = gates * 31 + depth;
  Netlist nl = make_random_dag(spec, lib());
  nl.validate();
  EXPECT_EQ(nl.num_gates(), gates);
  EXPECT_GE(nl.depth(), depth);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomDagSweep,
    ::testing::Values(std::tuple{40u, 4u, 1.5}, std::tuple{40u, 12u, 2.0},
                      std::tuple{150u, 10u, 1.7}, std::tuple{150u, 30u, 1.9},
                      std::tuple{600u, 25u, 1.75}, std::tuple{600u, 50u, 2.1},
                      std::tuple{1200u, 40u, 1.8}));

// Spec fidelity with the realized-stats contract: across seeds and shapes
// the returned RandomDagStats mirror the netlist exactly, every deviation
// from the spec is accounted for by the repair counters, and no gate ever
// consumes the same net on two pins.
TEST(RandomDag, SpecFidelityAndStatsAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    RandomDagSpec spec;
    spec.num_inputs = 3 + seed % 20;
    spec.num_outputs = 2 + seed % 7;
    spec.num_gates = 30 + 37 * (seed % 9);
    spec.num_pins = spec.num_gates + (spec.num_gates * (seed % 4)) / 2;
    spec.depth = 4 + seed % 11;
    spec.seed = seed * 101 + 13;
    SCOPED_TRACE("seed " + std::to_string(seed));

    RandomDagStats st;
    Netlist nl = make_random_dag(spec, lib(), &st);
    nl.validate();
    EXPECT_EQ(st.gates, nl.num_gates());
    EXPECT_EQ(st.pins, nl.num_pins());
    EXPECT_EQ(st.outputs, nl.primary_outputs().size());
    // Every deviation is counted, never silent.
    EXPECT_EQ(nl.num_pins(),
              spec.num_pins - st.pin_shortfall + st.pin_overshoot);
    EXPECT_EQ(nl.primary_outputs().size(),
              spec.num_outputs + st.output_overshoot);
    EXPECT_EQ(nl.num_gates(), spec.num_gates);
    EXPECT_EQ(nl.primary_inputs().size(), spec.num_inputs);
    EXPECT_GE(nl.depth(), spec.depth);

    // No duplicate fanin nets on any gate.
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      std::vector<NetId> f = nl.gate(g).fanins;
      std::sort(f.begin(), f.end());
      EXPECT_EQ(std::adjacent_find(f.begin(), f.end()), f.end())
          << "duplicate fanin on gate " << nl.gate(g).name;
    }
  }
}

// A saturated budget (4 pins on every gate) must be realized exactly: the
// deterministic completion pass finishes whatever the random placement
// leaves behind instead of silently dropping budget.
TEST(RandomDag, SaturatedPinBudgetHitsTargetExactly) {
  RandomDagSpec spec;
  spec.num_inputs = 16;
  spec.num_outputs = 6;
  spec.num_gates = 150;
  spec.num_pins = 4 * spec.num_gates;
  spec.depth = 10;
  spec.seed = 21;
  RandomDagStats st;
  Netlist nl = make_random_dag(spec, lib(), &st);
  nl.validate();
  EXPECT_EQ(st.pin_shortfall, 0u);
  EXPECT_EQ(nl.num_pins(), spec.num_pins + st.pin_overshoot);
  for (GateId g = 0; g < nl.num_gates(); ++g)
    EXPECT_GE(nl.gate(g).fanins.size(), 3u) << nl.gate(g).name;
}

TEST(StackedDag, ScalesTilesAndReportsStats) {
  StackedDagSpec spec;
  spec.tile.num_inputs = 24;
  spec.tile.num_outputs = 24;
  spec.tile.num_gates = 400;
  spec.tile.num_pins = 700;
  spec.tile.depth = 8;
  spec.num_tiles = 6;
  spec.seed = 5;
  RandomDagStats st;
  Netlist nl = make_stacked_dag(spec, lib(), &st);
  nl.validate();
  EXPECT_EQ(nl.num_gates(), spec.num_tiles * spec.tile.num_gates);
  EXPECT_EQ(st.gates, nl.num_gates());
  EXPECT_EQ(st.pins, nl.num_pins());
  EXPECT_EQ(nl.num_pins(), spec.num_tiles * spec.tile.num_pins -
                               st.pin_shortfall + st.pin_overshoot);
  EXPECT_EQ(nl.primary_inputs().size(), spec.tile.num_inputs);
  // Depth stacks: every tile contributes at least tile.depth levels.
  EXPECT_GE(nl.depth(), spec.num_tiles * spec.tile.depth);
  // The stack stays fully connected: every PI used, every gate observable.
  const auto& sinks = nl.net_sinks();
  for (NetId pi : nl.primary_inputs())
    EXPECT_FALSE(sinks[pi].empty()) << "unused PI " << nl.net_name(pi);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const NetId out = nl.gate(g).output;
    EXPECT_TRUE(!sinks[out].empty() || nl.is_primary_output(out))
        << "unobservable gate " << nl.gate(g).name;
  }
}

TEST(StackedDag, DeterministicInSeed) {
  StackedDagSpec spec;
  spec.tile.num_gates = 60;
  spec.tile.num_pins = 110;
  spec.tile.depth = 5;
  spec.num_tiles = 3;
  spec.seed = 9;
  Netlist a = make_stacked_dag(spec, lib());
  Netlist b = make_stacked_dag(spec, lib());
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (GateId g = 0; g < a.num_gates(); ++g)
    EXPECT_EQ(a.gate(g).fanins, b.gate(g).fanins);
}

TEST(GridMesh, ExactDeterministicStructure) {
  GridMeshSpec spec;
  spec.width = 7;
  spec.height = 5;
  spec.seed = 3;
  Netlist nl = make_grid_mesh(spec, lib());
  nl.validate();
  EXPECT_EQ(nl.num_gates(), spec.width * spec.height);
  EXPECT_EQ(nl.num_pins(), 2 * spec.width * spec.height);
  EXPECT_EQ(nl.primary_inputs().size(), spec.width + spec.height);
  EXPECT_EQ(nl.primary_outputs().size(), spec.width + spec.height - 1);
  EXPECT_EQ(nl.depth(), spec.width + spec.height - 1);
  Netlist again = make_grid_mesh(spec, lib());
  for (GateId g = 0; g < nl.num_gates(); ++g)
    EXPECT_EQ(nl.gate(g).type, again.gate(g).type);
}

TEST(RippleAdder, AddsExhaustivelyFourBits) {
  Netlist nl = make_ripple_adder(4, lib());
  for (uint32_t a = 0; a < 16; ++a) {
    for (uint32_t b = 0; b < 16; ++b) {
      for (uint32_t cin = 0; cin < 2; ++cin) {
        std::vector<bool> pi;
        for (int i = 0; i < 4; ++i) pi.push_back((a >> i) & 1u);
        for (int i = 0; i < 4; ++i) pi.push_back((b >> i) & 1u);
        pi.push_back(cin != 0);
        const auto v = nl.simulate(pi);
        uint32_t sum = 0;
        const auto& pos = nl.primary_outputs();
        for (int i = 0; i < 5; ++i)
          sum |= static_cast<uint32_t>(v[pos[i]]) << i;
        EXPECT_EQ(sum, a + b + cin);
      }
    }
  }
}

TEST(ArrayMultiplier, MultipliesRandomVectors8x8) {
  Netlist nl = make_array_multiplier(8, 8, lib());
  EXPECT_EQ(nl.primary_inputs().size(), 16u);
  EXPECT_EQ(nl.primary_outputs().size(), 16u);
  stats::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const uint32_t a = static_cast<uint32_t>(rng.uniform_index(256));
    const uint32_t b = static_cast<uint32_t>(rng.uniform_index(256));
    std::vector<bool> pi;
    for (int i = 0; i < 8; ++i) pi.push_back((a >> i) & 1u);
    for (int i = 0; i < 8; ++i) pi.push_back((b >> i) & 1u);
    const auto v = nl.simulate(pi);
    uint32_t prod = 0;
    const auto& pos = nl.primary_outputs();
    for (int i = 0; i < 16; ++i)
      prod |= static_cast<uint32_t>(v[pos[i]]) << i;
    EXPECT_EQ(prod, a * b) << a << " * " << b;
  }
}

TEST(ArrayMultiplier, SixteenBitStructureMatchesC6288) {
  Netlist nl = make_array_multiplier(16, 16, lib());
  EXPECT_EQ(nl.primary_inputs().size(), 32u);
  EXPECT_EQ(nl.primary_outputs().size(), 32u);
  // 32 operand inverters + 256 partial products + 16 HA * 5 + 224 FA * 9.
  EXPECT_EQ(nl.num_gates(), 32u + 256u + 16u * 5u + 224u * 9u);
  // Published c6288 stats: 2416 gates / 4800 pins; ours within ~2%.
  EXPECT_NEAR(static_cast<double>(nl.num_gates()), 2416.0, 50.0);
  EXPECT_NEAR(static_cast<double>(nl.num_pins()), 4800.0, 100.0);
  // The famously deep carry chains.
  EXPECT_GT(nl.depth(), 60u);
  // Spot-check function at 16 bits.
  stats::Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    const uint64_t a = rng.uniform_index(65536);
    const uint64_t b = rng.uniform_index(65536);
    std::vector<bool> pi;
    for (int i = 0; i < 16; ++i) pi.push_back((a >> i) & 1u);
    for (int i = 0; i < 16; ++i) pi.push_back((b >> i) & 1u);
    const auto v = nl.simulate(pi);
    uint64_t prod = 0;
    const auto& pos = nl.primary_outputs();
    for (int i = 0; i < 32; ++i)
      prod |= static_cast<uint64_t>(v[pos[i]]) << i;
    EXPECT_EQ(prod, a * b);
  }
}

TEST(Iscas, ProfilesMatchTableI) {
  const auto& profiles = iscas85_profiles();
  ASSERT_EQ(profiles.size(), 10u);
  EXPECT_EQ(profiles.front().name, "c432");
  EXPECT_EQ(profiles.back().name, "c7552");
  // Eo / Vo columns of the paper's Table I.
  EXPECT_EQ(iscas85_profile("c432").pins, 336u);
  EXPECT_EQ(iscas85_profile("c432").gates + iscas85_profile("c432").inputs,
            196u);
  EXPECT_EQ(iscas85_profile("c7552").pins, 6144u);
  EXPECT_EQ(iscas85_profile("c7552").gates + iscas85_profile("c7552").inputs,
            3719u);
}

TEST(Iscas, SynthesizedCircuitsMatchProfiles) {
  for (const char* name : {"c432", "c499", "c880"}) {
    const IscasProfile& p = iscas85_profile(name);
    Netlist nl = make_iscas85(name, lib());
    nl.validate();
    EXPECT_EQ(nl.num_gates(), p.gates) << name;
    EXPECT_EQ(nl.primary_inputs().size(), p.inputs) << name;
    EXPECT_GE(nl.num_pins(), p.pins) << name;
    EXPECT_LE(nl.num_pins(), p.pins + 8) << name;
    EXPECT_GE(nl.depth(), p.depth) << name;
  }
}

TEST(Iscas, C6288IsTheMultiplier) {
  Netlist nl = make_iscas85("c6288", lib());
  EXPECT_EQ(nl.primary_inputs().size(), 32u);
  EXPECT_EQ(nl.primary_outputs().size(), 32u);
  EXPECT_GT(nl.depth(), 60u);
}

TEST(Iscas, UnknownNameThrows) {
  EXPECT_THROW((void)make_iscas85("c9999", lib()), Error);
}

}  // namespace
}  // namespace hssta::netlist
