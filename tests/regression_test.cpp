// Regression pins: exact (seed-deterministic) values of the headline
// reproduction quantities. These are not correctness oracles — the MC and
// property suites are — but they catch silent behavioural drift in the
// pipeline (generator, placement, PCA, propagation, extraction) that the
// tolerance-based tests would absorb.
//
// If a deliberate algorithm change moves these numbers, re-baseline after
// checking the MC-validated suites still pass.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fixtures.hpp"
#include "hssta/util/error.hpp"
#include "hssta/core/ssta.hpp"
#include "hssta/netlist/iscas.hpp"
#include "hssta/timing/statops.hpp"

namespace hssta {
namespace {

TEST(Regression, C432ExtractionStatistics) {
  const library::CellLibrary& lib = testing::default_lib();
  const netlist::Netlist nl = netlist::make_iscas85("c432", lib);
  EXPECT_EQ(nl.num_gates(), 160u);
  EXPECT_EQ(nl.num_pins(), 337u);  // 336 target + connectivity repair
  EXPECT_EQ(nl.primary_inputs().size(), 36u);
  EXPECT_EQ(nl.primary_outputs().size(), 7u);

  const placement::Placement pl = placement::place_rows(nl);
  const variation::ModuleVariation mv = variation::make_module_variation(
      pl, nl.num_gates(), variation::default_90nm_parameters(),
      variation::SpatialCorrelationConfig{});
  EXPECT_EQ(mv.partition.num_grids(), 2u);
  const timing::BuiltGraph built = timing::build_timing_graph(nl, pl, mv);
  const model::Extraction ex = model::extract_timing_model(
      built, mv, "c432", model::compute_boundary(nl));
  EXPECT_EQ(ex.stats.original_edges, 337u);
  EXPECT_EQ(ex.stats.original_vertices, 196u);
  EXPECT_EQ(ex.stats.model_edges, 87u);
  EXPECT_EQ(ex.stats.model_vertices, 62u);
  EXPECT_EQ(ex.stats.pairs_repaired, 0u);
}

TEST(Regression, SmallModuleDelayMoments) {
  const testing::ModuleUnderTest m(testing::small_module_spec(77));
  const core::SstaResult ssta = core::run_ssta(m.built.graph);
  EXPECT_NEAR(ssta.delay.nominal(), ssta.delay.nominal(), 0.0);  // finite
  // Pin to 1e-9: the whole pipeline is deterministic.
  EXPECT_NEAR(ssta.delay.nominal(), 0.73874804340848121, 1e-9);
  EXPECT_NEAR(ssta.delay.sigma(), 0.10750064596603774, 1e-9);
}

TEST(Regression, MultiplierStructureConstants) {
  const library::CellLibrary& lib = testing::default_lib();
  const netlist::Netlist nl = netlist::make_array_multiplier(16, 16, lib);
  EXPECT_EQ(nl.num_gates(), 2384u);
  EXPECT_EQ(nl.num_pins(), 4704u);
  EXPECT_EQ(nl.depth(), 148u);
}

// Golden cross-mode regression: every ISCAS fixture runs the full pipeline
// through flow::Module under both sweep schedules — the per-input fan-out
// (level_parallel = off) and the level-synchronous sweeps (on) — at two
// worker threads, and the complete .hstm extraction output must match byte
// for byte. Models serialize doubles as hex-floats, so this pins every
// canonical coefficient of the extracted model, not just summary stats.
class IscasSweepModes : public ::testing::TestWithParam<std::string> {};

TEST_P(IscasSweepModes, HstmBytesIdenticalAcrossSweepModes) {
  const std::string& name = GetParam();
  auto extract_with = [&](timing::LevelParallel mode) {
    flow::Config cfg;
    cfg.threads = 2;
    cfg.level_parallel = mode;
    const flow::Module m = flow::Module::from_iscas(name, cfg);
    std::ostringstream os;
    m.model().save(os);
    return os.str();
  };
  const std::string fan_out = extract_with(timing::LevelParallel::kOff);
  const std::string level = extract_with(timing::LevelParallel::kOn);
  EXPECT_FALSE(fan_out.empty());
  EXPECT_EQ(fan_out, level);
}

std::vector<std::string> iscas_names() {
  std::vector<std::string> names;
  for (const netlist::IscasProfile& p : netlist::iscas85_profiles())
    names.push_back(p.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Regression, IscasSweepModes,
                         ::testing::ValuesIn(iscas_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(TightnessSplit, PartitionProperties) {
  auto make = [](double nom, double rnd) {
    timing::CanonicalForm f(0);
    f.set_nominal(nom);
    f.set_random(rnd);
    return f;
  };
  // Equal iid forms split evenly for any count.
  for (size_t k : {1u, 2u, 3u, 5u, 9u}) {
    std::vector<timing::CanonicalForm> xs(k, make(1.0, 0.2));
    const auto tp = timing::tightness_split(xs);
    ASSERT_EQ(tp.size(), k);
    double sum = 0.0;
    for (double p : tp) {
      EXPECT_NEAR(p, 1.0 / static_cast<double>(k), 0.02);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  // A dominating entry takes all the mass.
  std::vector<timing::CanonicalForm> xs{make(10.0, 0.1), make(1.0, 0.1),
                                        make(1.0, 0.1)};
  const auto tp = timing::tightness_split(xs);
  EXPECT_GT(tp[0], 1.0 - 1e-9);
  EXPECT_LT(tp[1] + tp[2], 1e-9);
  // Empty input throws.
  EXPECT_THROW((void)timing::tightness_split({}), Error);
}

}  // namespace
}  // namespace hssta
