// Tests for the statistical max: tightness probability, Clark's moments
// against closed forms and Monte Carlo, degenerate handling, diagnostics.

#include <gtest/gtest.h>

#include <cmath>

#include "hssta/stats/empirical.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/timing/statops.hpp"
#include "hssta/util/error.hpp"

namespace hssta::timing {
namespace {

CanonicalForm make(double nominal, std::vector<double> corr, double random) {
  CanonicalForm f(corr.size());
  f.set_nominal(nominal);
  std::copy(corr.begin(), corr.end(), f.corr().begin());
  f.set_random(random);
  return f;
}

TEST(Tightness, EqualIndependentFormsSplitEvenly) {
  const CanonicalForm a = make(1.0, {0.0}, 1.0);
  const CanonicalForm b = make(1.0, {0.0}, 1.0);
  EXPECT_NEAR(tightness_probability(a, b), 0.5, 1e-12);
}

TEST(Tightness, ComplementsSumToOne) {
  const CanonicalForm a = make(1.2, {0.5, 0.1}, 0.3);
  const CanonicalForm b = make(0.9, {-0.2, 0.4}, 0.6);
  EXPECT_NEAR(tightness_probability(a, b) + tightness_probability(b, a), 1.0,
              1e-12);
}

TEST(Tightness, DominatingNominalGoesToOne) {
  const CanonicalForm a = make(100.0, {}, 1.0);
  const CanonicalForm b = make(0.0, {}, 1.0);
  EXPECT_GT(tightness_probability(a, b), 1.0 - 1e-12);
}

TEST(Tightness, DegenerateFallsBackToNominal) {
  const CanonicalForm a = make(2.0, {1.0}, 0.0);
  const CanonicalForm b = make(1.0, {1.0}, 0.0);  // same variation part
  EXPECT_DOUBLE_EQ(tightness_probability(a, b), 1.0);
  EXPECT_DOUBLE_EQ(tightness_probability(b, a), 0.0);
}

TEST(Max, IndependentStandardNormalsMatchClosedForm) {
  // E[max(X, Y)] = 1/sqrt(pi) and Var = 1 - 1/pi for iid N(0, 1).
  const CanonicalForm a = make(0.0, {0.0}, 1.0);
  const CanonicalForm b = make(0.0, {0.0}, 1.0);
  const CanonicalForm m = statistical_max(a, b);
  EXPECT_NEAR(m.nominal(), 1.0 / std::sqrt(M_PI), 1e-12);
  EXPECT_NEAR(m.variance(), 1.0 - 1.0 / M_PI, 1e-12);
}

TEST(Max, DominatedInputVanishes) {
  const CanonicalForm a = make(10.0, {0.5}, 0.2);
  const CanonicalForm b = make(0.0, {0.1}, 0.1);
  const CanonicalForm m = statistical_max(a, b);
  EXPECT_NEAR(m.nominal(), a.nominal(), 1e-9);
  EXPECT_NEAR(m.corr()[0], a.corr()[0], 1e-9);
  EXPECT_NEAR(m.sigma(), a.sigma(), 1e-9);
}

TEST(Max, FullyCorrelatedFormsReturnUnchanged) {
  // No private random part: the two inputs are the same random variable and
  // the max must return it exactly (degenerate theta path).
  const CanonicalForm a = make(1.0, {0.7, -0.2}, 0.0);
  MaxDiagnostics diag;
  const CanonicalForm m = statistical_max(a, a, &diag);
  EXPECT_EQ(m, a);
  EXPECT_EQ(diag.degenerate_theta, 1u);
}

TEST(Max, PrivateRandomPartsStayIndependent) {
  // Identical coefficients but nonzero private randoms: the arguments are
  // distinct variables sharing the correlated part, so the max exceeds
  // either input in mean (theta^2 = 2 * r^2, not degenerate).
  const CanonicalForm a = make(1.0, {0.7, -0.2}, 0.3);
  MaxDiagnostics diag;
  const CanonicalForm m = statistical_max(a, a, &diag);
  EXPECT_EQ(diag.degenerate_theta, 0u);
  EXPECT_GT(m.nominal(), a.nominal());
  // Closed form: E[max] = mu + r / sqrt(pi) for equal means.
  EXPECT_NEAR(m.nominal(), 1.0 + 0.3 / std::sqrt(M_PI), 1e-12);
}

TEST(Max, MeanAtLeastEachInputMean) {
  const CanonicalForm a = make(1.0, {0.4}, 0.1);
  const CanonicalForm b = make(1.1, {0.3}, 0.4);
  const CanonicalForm m = statistical_max(a, b);
  EXPECT_GE(m.nominal(), a.nominal());
  EXPECT_GE(m.nominal(), b.nominal());
  EXPECT_DOUBLE_EQ(m.nominal(), max_mean(a, b));
}

TEST(Max, CommutesExactly) {
  const CanonicalForm a = make(1.2, {0.5, 0.1, 0.0}, 0.3);
  const CanonicalForm b = make(1.0, {-0.2, 0.4, 0.2}, 0.6);
  const CanonicalForm ab = statistical_max(a, b);
  const CanonicalForm ba = statistical_max(b, a);
  EXPECT_NEAR(ab.nominal(), ba.nominal(), 1e-12);
  EXPECT_NEAR(ab.sigma(), ba.sigma(), 1e-12);
  for (size_t i = 0; i < ab.dim(); ++i)
    EXPECT_NEAR(ab.corr()[i], ba.corr()[i], 1e-12);
}

struct MaxCase {
  double a0, b0;
  std::vector<double> ca, cb;
  double ra, rb;
};

class MaxVsMonteCarlo : public ::testing::TestWithParam<MaxCase> {};

TEST_P(MaxVsMonteCarlo, MomentsWithinSamplingTolerance) {
  const MaxCase& tc = GetParam();
  const CanonicalForm a = make(tc.a0, tc.ca, tc.ra);
  const CanonicalForm b = make(tc.b0, tc.cb, tc.rb);
  const CanonicalForm m = statistical_max(a, b);

  stats::Rng rng(2009);
  stats::Moments mc;
  const size_t dim = a.dim();
  std::vector<double> y(dim);
  const int n = 200000;
  for (int s = 0; s < n; ++s) {
    for (double& v : y) v = rng.normal();
    const double va = a.evaluate(y, rng.normal());
    const double vb = b.evaluate(y, rng.normal());
    mc.add(std::max(va, vb));
  }
  // Clark's mean/variance are exact for the Gaussian pair; tolerance is
  // Monte Carlo noise only.
  EXPECT_NEAR(m.nominal(), mc.mean(), 5.0 * mc.stddev() / std::sqrt(n));
  EXPECT_NEAR(m.sigma(), mc.stddev(), 0.01 * mc.stddev() + 0.002);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, MaxVsMonteCarlo,
    ::testing::Values(
        MaxCase{0.0, 0.0, {0.0, 0.0}, {0.0, 0.0}, 1.0, 1.0},   // iid
        MaxCase{1.0, 1.0, {0.6, 0.0}, {0.6, 0.0}, 0.2, 0.2},   // correlated
        MaxCase{1.0, 1.3, {0.4, 0.1}, {-0.2, 0.3}, 0.3, 0.1},  // shifted
        MaxCase{2.0, 1.0, {0.5, 0.5}, {0.5, -0.5}, 0.0, 0.0},  // no random
        MaxCase{0.0, 0.05, {0.9, 0.0}, {0.85, 0.1}, 0.05, 0.05},  // near-dup
        MaxCase{5.0, 4.0, {1.0, 2.0}, {2.0, 1.0}, 0.5, 0.25}));

TEST(Max, VarianceClampIsCountedAndSane) {
  // Construct a case prone to clamping: nearly identical, highly correlated
  // forms with opposite small independent parts.
  MaxDiagnostics diag;
  const CanonicalForm a = make(1.0, {1.0, 0.001}, 0.0);
  const CanonicalForm b = make(1.0, {1.0, -0.001}, 0.0);
  const CanonicalForm m = statistical_max(a, b, &diag);
  EXPECT_EQ(diag.ops, 1u);
  EXPECT_GE(m.variance(), 0.0);
  EXPECT_GE(m.nominal(), 1.0);
}

TEST(Max, NarySequentialFold) {
  std::vector<CanonicalForm> xs;
  for (int i = 0; i < 5; ++i) xs.push_back(make(0.1 * i, {0.2}, 0.1));
  MaxDiagnostics diag;
  const CanonicalForm m = statistical_max(std::span<const CanonicalForm>(xs),
                                          &diag);
  EXPECT_EQ(diag.ops, 4u);
  EXPECT_GE(m.nominal(), 0.4);
  EXPECT_THROW((void)statistical_max(std::span<const CanonicalForm>{}),
               Error);
}

TEST(Max, NaryVersusMonteCarlo) {
  std::vector<CanonicalForm> xs = {
      make(1.0, {0.3, 0.0, 0.1}, 0.2), make(1.1, {0.0, 0.3, 0.0}, 0.2),
      make(0.9, {0.2, 0.2, 0.0}, 0.1), make(1.05, {-0.1, 0.1, 0.3}, 0.3)};
  const CanonicalForm m =
      statistical_max(std::span<const CanonicalForm>(xs), nullptr);

  stats::Rng rng(77);
  stats::Moments mc;
  std::vector<double> y(3);
  for (int s = 0; s < 200000; ++s) {
    for (double& v : y) v = rng.normal();
    double best = -1e300;
    for (const auto& f : xs) best = std::max(best, f.evaluate(y, rng.normal()));
    mc.add(best);
  }
  // Sequential Clark folding is approximate for n > 2: allow ~2% error.
  EXPECT_NEAR(m.nominal(), mc.mean(), 0.02 * mc.mean());
  EXPECT_NEAR(m.sigma(), mc.stddev(), 0.05 * mc.stddev() + 0.002);
}

}  // namespace
}  // namespace hssta::timing
