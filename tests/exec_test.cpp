// Tests for the exec:: execution layer and its contract with the compute
// APIs:
//  * parallel_for correctness (full coverage, static chunking, workspaces),
//  * exception propagation and nested-submit rejection,
//  * bit-exact serial vs multi-threaded results for the redesigned hot
//    paths (IO delays, criticality cm, extraction, MC quantiles),
//  * thread-safe shared flow::Module / sharded flow::Design handles.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "fixtures.hpp"
#include "hssta/core/criticality.hpp"
#include "hssta/core/io_delays.hpp"
#include "hssta/exec/executor.hpp"
#include "hssta/exec/queue.hpp"
#include "hssta/mc/flat_mc.hpp"
#include "hssta/mc/hier_mc.hpp"
#include "hssta/mc/sampler.hpp"
#include "hssta/model/extract.hpp"
#include "hssta/util/error.hpp"

namespace hssta {
namespace {

using testing::ModuleUnderTest;

// --- executor mechanics -----------------------------------------------------

TEST(Executor, ParallelForCoversEveryIndexExactlyOnce) {
  exec::ThreadPoolExecutor pool(4);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](size_t i, exec::Workspace&) { ++hits[i]; });
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(Executor, SerialRunsInOrderOnOneWorkspace) {
  exec::SerialExecutor ex;
  EXPECT_EQ(ex.concurrency(), 1u);
  EXPECT_EQ(ex.num_workspaces(), 1u);
  std::vector<size_t> order;
  exec::Workspace* seen = nullptr;
  ex.parallel_for(5, [&](size_t i, exec::Workspace& ws) {
    order.push_back(i);
    if (!seen) seen = &ws;
    EXPECT_EQ(&ws, seen);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(seen, &ex.workspace(0));
}

TEST(Executor, WorkspaceArenaPersistsAcrossRegions) {
  exec::ThreadPoolExecutor pool(2);
  // With n == concurrency, static chunking maps index i to worker slot i.
  std::vector<int*> first(2, nullptr);
  pool.parallel_for(2, [&](size_t i, exec::Workspace& ws) {
    int& slot = ws.get<int>();
    slot = static_cast<int>(i) + 10;
    first[i] = &slot;
  });
  std::vector<int*> second(2, nullptr);
  std::vector<int> value(2, 0);
  pool.parallel_for(2, [&](size_t i, exec::Workspace& ws) {
    int& slot = ws.get<int>();
    second[i] = &slot;
    value[i] = slot;
  });
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(first[i], second[i]);
    EXPECT_EQ(value[i], static_cast<int>(i) + 10);
  }
}

TEST(Executor, ExceptionPropagatesAndPoolSurvives) {
  exec::ThreadPoolExecutor pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](size_t i, exec::Workspace&) {
                                   if (i == 57) throw Error("task failure");
                                 }),
               Error);
  // The pool is intact afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](size_t, exec::Workspace&) { ++count; });
  EXPECT_EQ(count.load(), 100);

  exec::SerialExecutor serial;
  EXPECT_THROW(serial.parallel_for(3,
                                   [&](size_t i, exec::Workspace&) {
                                     if (i == 1) throw Error("task failure");
                                   }),
               Error);
}

TEST(Executor, RejectsNestedSubmitOnSameExecutor) {
  exec::ThreadPoolExecutor pool(2);
  std::atomic<int> nested_rejections{0};
  pool.parallel_for(4, [&](size_t, exec::Workspace&) {
    try {
      pool.parallel_for(1, [](size_t, exec::Workspace&) {});
    } catch (const Error&) {
      ++nested_rejections;
    }
  });
  EXPECT_EQ(nested_rejections.load(), 4);

  exec::SerialExecutor serial;
  EXPECT_THROW(
      serial.parallel_for(1,
                          [&](size_t, exec::Workspace&) {
                            serial.parallel_for(1,
                                                [](size_t, exec::Workspace&) {
                                                });
                          }),
      Error);

  // A *different* executor inside a task is fine (the pattern used by
  // flow::Design instance sharding).
  pool.parallel_for(2, [&](size_t, exec::Workspace&) {
    exec::SerialExecutor inner;
    std::atomic<int> c{0};
    inner.parallel_for(3, [&](size_t, exec::Workspace&) { ++c; });
    EXPECT_EQ(c.load(), 3);
  });
}

TEST(Executor, SharedExecutorSerializesWorkspaceAlgorithms) {
  // Two threads drive workspace-merging algorithms through one shared
  // pool; Executor::Exclusive serializes the whole reset -> region ->
  // merge sequence, so both must reproduce the serial reference exactly.
  const ModuleUnderTest m(testing::small_module_spec(41));
  const core::DelayMatrix ref = core::all_pairs_io_delays(m.built.graph);
  exec::ThreadPoolExecutor pool(4);
  std::vector<core::DelayMatrix> got(2);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < got.size(); ++t)
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 3; ++rep)
        got[t] = core::all_pairs_io_delays(m.built.graph, pool);
    });
  for (std::thread& t : threads) t.join();
  for (const core::DelayMatrix& dm : got) {
    ASSERT_EQ(dm.num_inputs(), ref.num_inputs());
    for (size_t i = 0; i < ref.num_inputs(); ++i)
      for (size_t j = 0; j < ref.num_outputs(); ++j) {
        ASSERT_EQ(dm.is_valid(i, j), ref.is_valid(i, j));
        if (ref.is_valid(i, j)) EXPECT_TRUE(dm.at(i, j) == ref.at(i, j));
      }
  }
}

TEST(Executor, FactoryMapsThreadRequests) {
  EXPECT_GE(exec::effective_threads(0), 1u);
  EXPECT_EQ(exec::effective_threads(3), 3u);
  EXPECT_EQ(exec::make_executor(1)->concurrency(), 1u);
  EXPECT_EQ(exec::make_executor(4)->concurrency(), 4u);
}

// --- bit-exact determinism across thread counts -----------------------------

class ParallelDeterminism : public ::testing::Test {
 protected:
  ParallelDeterminism() : m_(testing::small_module_spec(31)), pool_(4) {}
  ModuleUnderTest m_;
  exec::ThreadPoolExecutor pool_;
};

TEST_F(ParallelDeterminism, IoDelayMatrixBitExact) {
  timing::MaxDiagnostics serial_diag, pool_diag;
  const core::DelayMatrix a =
      core::all_pairs_io_delays(m_.built.graph, &serial_diag);
  const core::DelayMatrix b =
      core::all_pairs_io_delays(m_.built.graph, pool_, &pool_diag);
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  for (size_t i = 0; i < a.num_inputs(); ++i)
    for (size_t j = 0; j < a.num_outputs(); ++j) {
      ASSERT_EQ(a.is_valid(i, j), b.is_valid(i, j));
      if (a.is_valid(i, j)) EXPECT_TRUE(a.at(i, j) == b.at(i, j));
    }
  EXPECT_EQ(serial_diag.ops, pool_diag.ops);
  EXPECT_EQ(serial_diag.variance_clamped, pool_diag.variance_clamped);
  EXPECT_EQ(serial_diag.degenerate_theta, pool_diag.degenerate_theta);
}

TEST_F(ParallelDeterminism, CriticalityBitExact) {
  const core::CriticalityResult a =
      core::compute_criticality(m_.built.graph);
  const core::CriticalityResult b =
      core::compute_criticality(m_.built.graph, pool_);
  EXPECT_EQ(a.max_criticality, b.max_criticality);
  EXPECT_EQ(a.diagnostics.ops, b.diagnostics.ops);
  ASSERT_EQ(a.io_delays.num_inputs(), b.io_delays.num_inputs());
  for (size_t i = 0; i < a.io_delays.num_inputs(); ++i)
    for (size_t j = 0; j < a.io_delays.num_outputs(); ++j) {
      ASSERT_EQ(a.io_delays.is_valid(i, j), b.io_delays.is_valid(i, j));
      if (a.io_delays.is_valid(i, j))
        EXPECT_TRUE(a.io_delays.at(i, j) == b.io_delays.at(i, j));
    }
}

TEST_F(ParallelDeterminism, ExtractionBitExact) {
  const model::Extraction a = model::extract_timing_model(
      m_.built, m_.variation, "m", model::compute_boundary(m_.netlist));
  const model::Extraction b = model::extract_timing_model(
      m_.built, m_.variation, "m", model::compute_boundary(m_.netlist),
      pool_);
  EXPECT_EQ(a.stats.model_edges, b.stats.model_edges);
  EXPECT_EQ(a.stats.model_vertices, b.stats.model_vertices);
  EXPECT_EQ(a.stats.edges_pruned, b.stats.edges_pruned);
  EXPECT_EQ(a.stats.criticalities, b.stats.criticalities);
  const core::DelayMatrix& da = a.model.io_delays();
  const core::DelayMatrix& db = b.model.io_delays();
  ASSERT_EQ(da.num_inputs(), db.num_inputs());
  for (size_t i = 0; i < da.num_inputs(); ++i)
    for (size_t j = 0; j < da.num_outputs(); ++j) {
      ASSERT_EQ(da.is_valid(i, j), db.is_valid(i, j));
      if (da.is_valid(i, j)) EXPECT_TRUE(da.at(i, j) == db.at(i, j));
    }
}

TEST_F(ParallelDeterminism, MonteCarloQuantilesBitExact) {
  const mc::FlatCircuit fc =
      mc::FlatCircuit::from_module(m_.built, m_.netlist, m_.variation);
  exec::SerialExecutor serial;
  const auto a = fc.sample_delay(701, 2009, serial);
  const auto b = fc.sample_delay(701, 2009, pool_);
  EXPECT_EQ(a.sorted(), b.sorted());
  EXPECT_EQ(a.quantile(0.99), b.quantile(0.99));
  // The Rng& overload called with Rng(seed) is the same stream.
  stats::Rng rng(2009);
  const auto c = fc.sample_delay(701, rng);
  EXPECT_EQ(a.sorted(), c.sorted());

  const auto ca = mc::sample_canonical_delay(m_.built.graph, 353, 7, serial);
  const auto cb = mc::sample_canonical_delay(m_.built.graph, 353, 7, pool_);
  EXPECT_EQ(ca.sorted(), cb.sorted());
}

TEST_F(ParallelDeterminism, HierMcBitExact) {
  const hier::HierDesign design = testing::make_quad_design(m_);
  const auto a = mc::hier_flat_mc(design, 301, 11);
  const auto b = mc::hier_flat_mc(design, 301, 11, pool_);
  EXPECT_EQ(a.sorted(), b.sorted());
}

// --- thread-safe flow handles ------------------------------------------------

TEST(FlowThreads, SharedModuleHandleIsThreadSafe) {
  const flow::Module m =
      flow::Module::from_random_dag(testing::small_module_spec(61));
  constexpr size_t kThreads = 8;
  std::vector<const core::SstaResult*> ssta(kThreads, nullptr);
  std::vector<const model::Extraction*> extraction(kThreads, nullptr);
  std::vector<const stats::EmpiricalDistribution*> mc(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      const flow::Module handle = m;  // copies share state and caches
      ssta[t] = &handle.ssta();
      extraction[t] = &handle.extract_model();
      mc[t] = &handle.monte_carlo(flow::McOptions{200, 5});
      (void)handle.slack(1.0);
      (void)handle.critical_paths(3);
    });
  for (std::thread& t : threads) t.join();
  // Once-per-stage: every thread observed the same cached objects.
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ssta[t], ssta[0]);
    EXPECT_EQ(extraction[t], extraction[0]);
    EXPECT_EQ(mc[t], mc[0]);
  }
}

TEST(FlowThreads, ShardedDesignMatchesSerialBitForBit) {
  flow::Config serial_cfg;
  serial_cfg.threads = 1;
  flow::Config pool_cfg;
  pool_cfg.threads = 4;

  auto build = [](const flow::Config& cfg) {
    // Two distinct module objects (not shared handles) so instance sharding
    // has two genuine extraction tasks; the same spec keeps the grid pitch
    // shared as the design grid requires.
    flow::Module a =
        flow::Module::from_random_dag(testing::small_module_spec(91), cfg);
    flow::Module b =
        flow::Module::from_random_dag(testing::small_module_spec(91), cfg);
    flow::Design d("pair", cfg);
    const size_t ia = d.add_instance(a, 0, 0, "a");
    const size_t ib = d.add_instance(b, a.model().die().width, 0, "b");
    const size_t ni = d.num_inputs(ia);
    const size_t no = d.num_outputs(ia);
    for (size_t k = 0; k < ni; ++k) d.connect(ia, k % no, ib, k);
    d.expose_unconnected_ports();
    return d;
  };
  const flow::Design serial_design = build(serial_cfg);
  const flow::Design pool_design = build(pool_cfg);

  EXPECT_EQ(serial_design.analyze().delay().nominal(),
            pool_design.analyze().delay().nominal());
  EXPECT_EQ(serial_design.analyze().delay().sigma(),
            pool_design.analyze().delay().sigma());
  EXPECT_EQ(serial_design.monte_carlo(flow::McOptions{301, 11}).sorted(),
            pool_design.monte_carlo(flow::McOptions{301, 11}).sorted());
}

TEST(FlowThreads, ConfigParsesThreadsKey) {
  EXPECT_EQ(flow::Config::from_string("threads = 4\n").threads, 4u);
  EXPECT_EQ(flow::Config::from_string("[exec]\nthreads = 0\n").threads, 0u);
  EXPECT_THROW((void)flow::Config::from_string("threads = -2\n"), Error);
}

TEST(FlowThreads, ConfigParsesLevelParallelKey) {
  using timing::LevelParallel;
  EXPECT_EQ(flow::Config{}.level_parallel, LevelParallel::kAuto);
  EXPECT_EQ(flow::Config::from_string("level_parallel = on\n").level_parallel,
            LevelParallel::kOn);
  EXPECT_EQ(
      flow::Config::from_string("[exec]\nlevel_parallel = off\n")
          .level_parallel,
      LevelParallel::kOff);
  EXPECT_EQ(
      flow::Config::from_string("level_parallel = auto\n").level_parallel,
      LevelParallel::kAuto);
  EXPECT_THROW((void)flow::Config::from_string("level_parallel = maybe\n"),
               Error);
}

TEST(Executor, RunMaybeParallelCoversAndRejectsNesting) {
  exec::ThreadPoolExecutor pool(3);
  // Inline path (n below the threshold): every index exactly once, on the
  // calling thread's workspace slot 0.
  std::vector<int> hits(8, 0);
  exec::run_maybe_parallel(pool, hits.size(), 100,
                           [&](size_t i, exec::Workspace& ws) {
                             EXPECT_EQ(&ws, &pool.workspace(0));
                             ++hits[i];
                           });
  EXPECT_EQ(hits, std::vector<int>(8, 1));
  // Parallel path (n at/above the threshold): still exactly once each.
  std::vector<std::atomic<int>> phits(64);
  exec::run_maybe_parallel(pool, phits.size(), 4,
                           [&](size_t i, exec::Workspace&) { ++phits[i]; });
  for (const auto& h : phits) EXPECT_EQ(h.load(), 1);
  // Both paths are regions: nested submission on the same executor throws.
  exec::run_maybe_parallel(pool, 1, 100, [&](size_t, exec::Workspace&) {
    EXPECT_THROW(
        exec::run_maybe_parallel(pool, 1, 100,
                                 [](size_t, exec::Workspace&) {}),
        Error);
    EXPECT_THROW(pool.parallel_for(1, [](size_t, exec::Workspace&) {}),
                 Error);
  });
}

// --- cost-chunked scheduling ------------------------------------------------

TEST(Executor, CostChunksBalanceAndCover) {
  // One dominating item: it gets a chunk (nearly) to itself, the rest
  // spread over the remaining slots.
  const std::vector<uint64_t> heavy{1, 1, 1000, 1, 1, 1, 1, 1};
  const std::vector<size_t> b = exec::cost_chunks(heavy, 4);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), heavy.size());
  for (size_t w = 1; w < b.size(); ++w) EXPECT_LE(b[w - 1], b[w]);
  // The heavy item's chunk must not also carry the tail: it ends right
  // after the heavy item, leaving indices 3.. to the remaining slots.
  size_t heavy_chunk = 0;
  while (b[heavy_chunk + 1] <= 2) ++heavy_chunk;
  EXPECT_EQ(b[heavy_chunk + 1], 3u);

  // Uniform costs reproduce parallel_for's uniform chunks.
  const std::vector<uint64_t> uniform(12, 7);
  const std::vector<size_t> u = exec::cost_chunks(uniform, 3);
  EXPECT_EQ(u, (std::vector<size_t>{0, 4, 8, 12}));
  // All-zero costs fall back to uniform item counts.
  const std::vector<uint64_t> zeros(9, 0);
  const std::vector<size_t> z = exec::cost_chunks(zeros, 3);
  EXPECT_EQ(z, (std::vector<size_t>{0, 3, 6, 9}));
  // More slots than items: clamped.
  EXPECT_EQ(exec::cost_chunks(std::vector<uint64_t>{5}, 8).size(), 2u);
  EXPECT_EQ(exec::cost_chunks({}, 4), (std::vector<size_t>{0, 0}));
}

TEST(Executor, ParallelForChunksHonorsBoundsDeterministically) {
  exec::ThreadPoolExecutor pool(4);
  const std::vector<size_t> bounds{0, 1, 9, 9, 16};
  // Coverage: every index exactly once.
  std::vector<std::atomic<int>> hits(16);
  pool.parallel_for_chunks(bounds,
                           [&](size_t i, exec::Workspace&) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  // Determinism: index i runs on the workspace of the slot whose
  // [bounds[w], bounds[w+1]) chunk contains it.
  std::vector<exec::Workspace*> seen(16, nullptr);
  pool.parallel_for_chunks(
      bounds, [&](size_t i, exec::Workspace& ws) { seen[i] = &ws; });
  for (size_t w = 0; w + 1 < bounds.size(); ++w)
    for (size_t i = bounds[w]; i < bounds[w + 1]; ++i)
      EXPECT_EQ(seen[i], &pool.workspace(w)) << "index " << i;

  // Malformed bounds are rejected loudly.
  EXPECT_THROW(pool.parallel_for_chunks(std::vector<size_t>{0, 5, 3},
                                        [](size_t, exec::Workspace&) {}),
               Error);
  EXPECT_THROW(pool.parallel_for_chunks(std::vector<size_t>{1, 4},
                                        [](size_t, exec::Workspace&) {}),
               Error);
  EXPECT_THROW(pool.parallel_for_chunks(std::vector<size_t>{0, 1, 2, 3, 4, 5},
                                        [](size_t, exec::Workspace&) {}),
               Error);
  // Chunked regions reject nested submission like any other region.
  pool.parallel_for_chunks(std::vector<size_t>{0, 8, 16},
                           [&](size_t, exec::Workspace&) {
                             EXPECT_THROW(pool.parallel_for(
                                              1, [](size_t, exec::Workspace&) {
                                              }),
                                          Error);
                           });
}

TEST(Executor, ParallelForChunksSerialAndCostedCover) {
  exec::SerialExecutor serial;
  std::vector<int> hits(10, 0);
  serial.parallel_for_chunks(std::vector<size_t>{0, 3, 10},
                             [&](size_t i, exec::Workspace&) { ++hits[i]; });
  EXPECT_EQ(hits, std::vector<int>(10, 1));

  exec::ThreadPoolExecutor pool(3);
  std::vector<uint64_t> costs(50);
  for (size_t i = 0; i < costs.size(); ++i) costs[i] = 1 + i % 7;
  std::vector<std::atomic<int>> chits(50);
  exec::parallel_for_costed(pool, costs,
                            [&](size_t i, exec::Workspace&) { ++chits[i]; });
  for (const auto& h : chits) EXPECT_EQ(h.load(), 1);
  // Exceptions propagate from chunked regions and the pool survives.
  EXPECT_THROW(pool.parallel_for_chunks(
                   std::vector<size_t>{0, 25, 50},
                   [&](size_t i, exec::Workspace&) {
                     if (i == 30) throw Error("chunk boom");
                   }),
               Error);
  std::atomic<int> after{0};
  pool.parallel_for(8, [&](size_t, exec::Workspace&) { ++after; });
  EXPECT_EQ(after.load(), 8);
}

// --- BoundedQueue -----------------------------------------------------------

TEST(BoundedQueue, AdmissionVerdictsAndFifoBatches) {
  exec::BoundedQueue<int> q(3);
  for (int i = 0; i < 3; ++i) {
    int item = i;
    EXPECT_EQ(q.try_push(item), exec::PushResult::kOk);
  }
  int overflow = 99;
  EXPECT_EQ(q.try_push(overflow), exec::PushResult::kFull);
  EXPECT_EQ(overflow, 99);  // rejected item stays with the caller
  EXPECT_EQ(q.size(), 3u);

  const std::vector<int> first = q.pop_batch(2);
  EXPECT_EQ(first, (std::vector<int>{0, 1}));
  const std::vector<int> rest = q.pop_batch(10);
  EXPECT_EQ(rest, (std::vector<int>{2}));
}

TEST(BoundedQueue, CloseDrainsAcceptedItemsThenReportsEmpty) {
  exec::BoundedQueue<int> q(4);
  int a = 1, b = 2;
  ASSERT_EQ(q.try_push(a), exec::PushResult::kOk);
  ASSERT_EQ(q.try_push(b), exec::PushResult::kOk);
  q.close();
  int late = 3;
  EXPECT_EQ(q.try_push(late), exec::PushResult::kClosed);
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.pop_batch(10), (std::vector<int>{1, 2}));  // graceful drain
  EXPECT_TRUE(q.pop_batch(10).empty());  // closed + drained
}

TEST(BoundedQueue, PopBlocksUntilPushOrClose) {
  exec::BoundedQueue<int> q(2);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const std::vector<int> batch = q.pop_batch(5);
    got = batch.size() == 1 && batch[0] == 42;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  int item = 42;
  ASSERT_EQ(q.try_push(item), exec::PushResult::kOk);
  consumer.join();
  EXPECT_TRUE(got.load());

  std::thread waiter([&] { EXPECT_TRUE(q.pop_batch(5).empty()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  waiter.join();
}

TEST(BoundedQueue, ManyProducersNeverLoseOrDuplicateItems) {
  constexpr int kProducers = 8, kPerProducer = 200;
  exec::BoundedQueue<int> q(64);
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        // Spin on kFull: every item must eventually be accepted.
        while (q.try_push(item) != exec::PushResult::kOk)
          std::this_thread::yield();
        ++accepted;
      }
    });
  std::vector<int> seen;
  std::thread consumer([&] {
    while (seen.size() < kProducers * kPerProducer) {
      const std::vector<int> batch = q.pop_batch(16);
      seen.insert(seen.end(), batch.begin(), batch.end());
    }
  });
  for (std::thread& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) EXPECT_EQ(seen[i], i);
}

}  // namespace
}  // namespace hssta
