// Tests for statistical critical-path reporting.

#include <gtest/gtest.h>

#include <cmath>

#include "fixtures.hpp"
#include "hssta/core/paths.hpp"
#include "hssta/core/ssta.hpp"
#include "hssta/timing/statops.hpp"
#include "hssta/util/error.hpp"

namespace hssta::core {
namespace {

using timing::CanonicalForm;
using timing::TimingGraph;
using timing::VertexId;

CanonicalForm form(double nominal, double random) {
  CanonicalForm f(1);
  f.set_nominal(nominal);
  f.set_random(random);
  return f;
}

TEST(Paths, ChainHasOneFullyCriticalPath) {
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId m = g.add_vertex("m");
  const VertexId z = g.add_vertex("z", false, true);
  g.add_edge(a, m, form(1.0, 0.1));
  g.add_edge(m, z, form(2.0, 0.1));
  const auto paths = report_critical_paths(g, 5);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_DOUBLE_EQ(paths[0].criticality, 1.0);
  EXPECT_DOUBLE_EQ(paths[0].delay.nominal(), 3.0);
  EXPECT_EQ(paths[0].vertices.front(), a);
  EXPECT_EQ(paths[0].vertices.back(), z);
  EXPECT_EQ(paths[0].format(g), "a -> m -> z");
}

TEST(Paths, DiamondSplitsByTightness) {
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId m1 = g.add_vertex("m1");
  const VertexId m2 = g.add_vertex("m2");
  const VertexId z = g.add_vertex("z", false, true);
  g.add_edge(a, m1, form(1.2, 0.15));
  g.add_edge(a, m2, form(1.0, 0.15));
  g.add_edge(m1, z, form(1.0, 0.01));
  g.add_edge(m2, z, form(1.0, 0.01));
  const auto paths = report_critical_paths(g, 5);
  ASSERT_EQ(paths.size(), 2u);
  // Descending criticality; partition sums to 1.
  EXPECT_GE(paths[0].criticality, paths[1].criticality);
  EXPECT_NEAR(paths[0].criticality + paths[1].criticality, 1.0, 1e-9);
  // The slower branch leads.
  EXPECT_EQ(paths[0].vertices[1], m1);
  EXPECT_GT(paths[0].criticality, 0.6);
}

TEST(Paths, KLimitsAndOrdering) {
  const testing::ModuleUnderTest m(testing::small_module_spec(41));
  const auto top3 = report_critical_paths(m.built.graph, 3);
  const auto top10 = report_critical_paths(m.built.graph, 10);
  ASSERT_EQ(top3.size(), 3u);
  ASSERT_EQ(top10.size(), 10u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(top3[i].criticality, top10[i].criticality);
    EXPECT_EQ(top3[i].edges, top10[i].edges);
  }
  double sum = 0.0;
  for (size_t i = 0; i < top10.size(); ++i) {
    if (i > 0) EXPECT_LE(top10[i].criticality,
                         top10[i - 1].criticality + 1e-12);
    sum += top10[i].criticality;
    // A path's delay form equals the sum of its edge delays.
    CanonicalForm check(m.built.graph.dim());
    for (timing::EdgeId e : top10[i].edges) check += m.built.graph.edge(e).delay;
    EXPECT_NEAR(check.nominal(), top10[i].delay.nominal(), 1e-12);
  }
  EXPECT_LE(sum, 1.0 + 1e-6);

  // The top path's mean delay is close to (and below) the circuit delay
  // mean, which includes max bumps over all paths.
  const core::SstaResult ssta = core::run_ssta(m.built.graph);
  EXPECT_LT(top10[0].delay.nominal(), ssta.delay.nominal());
  EXPECT_GT(top10[0].delay.nominal(), 0.85 * ssta.delay.nominal());
}

TEST(Paths, PathsAreStructurallyValid) {
  const testing::ModuleUnderTest m(testing::small_module_spec(43));
  const TimingGraph& g = m.built.graph;
  for (const auto& p : report_critical_paths(g, 8)) {
    ASSERT_EQ(p.vertices.size(), p.edges.size() + 1);
    EXPECT_TRUE(g.vertex(p.vertices.front()).is_input);
    EXPECT_TRUE(g.vertex(p.vertices.back()).is_output);
    for (size_t i = 0; i < p.edges.size(); ++i) {
      EXPECT_EQ(g.edge(p.edges[i]).from, p.vertices[i]);
      EXPECT_EQ(g.edge(p.edges[i]).to, p.vertices[i + 1]);
    }
    EXPECT_GE(p.criticality, 0.0);
    EXPECT_LE(p.criticality, 1.0);
  }
}

TEST(Paths, ValidatesArguments) {
  const testing::ModuleUnderTest m(testing::small_module_spec(44));
  EXPECT_THROW((void)report_critical_paths(m.built.graph, 0), Error);
}

}  // namespace
}  // namespace hssta::core
