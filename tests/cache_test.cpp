// Tests for the persistent .hstm model cache: fingerprint stability and
// key composition, ModelCache storage semantics (atomic publish, header
// verification, eviction of corrupt entries), the flow::Module wiring
// (hit/miss/bypass, byte-identity of cached models) and concurrent use of
// one cache directory.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hssta/cache/model_cache.hpp"
#include "hssta/flow/flow.hpp"
#include "hssta/netlist/bench_io.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/hash.hpp"

namespace hssta {
namespace {

namespace fs = std::filesystem;

/// Fresh cache directory per test, removed on teardown.
class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("hssta_cache_" + std::string(info->test_suite_name()) + "_" +
            info->name() + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string dir() const { return dir_.string(); }

  /// A small but non-trivial module netlist.
  static const char* bench_text() {
    return "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(x)\nOUTPUT(y)\n"
           "g1 = NAND(a, b)\ng2 = NOR(b, c)\ng3 = XOR(g1, g2)\n"
           "x = AND(g3, a)\ny = OR(g3, c)\n";
  }

  [[nodiscard]] flow::Config cached_config() const {
    flow::Config cfg;
    cfg.cache.dir = dir();
    cfg.cache.enabled = true;
    return cfg;
  }

  static std::string model_bytes(const flow::Module& m) {
    std::ostringstream os;
    m.model().save(os);
    return os.str();
  }

  [[nodiscard]] std::vector<fs::path> entries() const {
    std::vector<fs::path> out;
    for (const auto& e : fs::directory_iterator(dir_)) out.push_back(e.path());
    return out;
  }

  fs::path dir_;
};

TEST(Fingerprint, HashPrimitivesAreCanonical) {
  // Known FNV-1a vectors (byte stream "a", "foobar").
  EXPECT_EQ(util::Fnv1a().bytes("a", 1).value(), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(util::Fnv1a().bytes("foobar", 6).value(), 0x85944171f73967e8ull);
  // Length-prefixed strings: ("ab","c") != ("a","bc").
  EXPECT_NE(util::Fnv1a().str("ab").str("c").value(),
            util::Fnv1a().str("a").str("bc").value());
  // Doubles hash their bit pattern: -0.0 != 0.0, but equal values collide.
  EXPECT_NE(util::Fnv1a().f64(0.0).value(), util::Fnv1a().f64(-0.0).value());
  EXPECT_EQ(util::Fnv1a().f64(0.05).value(), util::Fnv1a().f64(0.05).value());
  EXPECT_EQ(util::Fnv1a::hex(0xdeadbeefull), "00000000deadbeef");
}

TEST(Fingerprint, NetlistKeyTracksStructureAndName) {
  const flow::Module a = flow::Module::from_bench_string(
      "INPUT(a)\nOUTPUT(x)\nx = NOT(a)\n");
  const flow::Module b = flow::Module::from_bench_string(
      "INPUT(a)\nOUTPUT(x)\nx = NOT(a)\n");
  const flow::Module c = flow::Module::from_bench_string(
      "INPUT(a)\nOUTPUT(x)\nx = BUFF(a)\n");
  EXPECT_EQ(netlist::fingerprint(a.netlist()),
            netlist::fingerprint(b.netlist()));
  EXPECT_NE(netlist::fingerprint(a.netlist()),
            netlist::fingerprint(c.netlist()));
}

TEST(Fingerprint, ConfigKeyCoversModelInputsOnly) {
  const flow::Config base;
  const uint64_t fp = flow::extraction_fingerprint(base);
  EXPECT_EQ(fp, flow::extraction_fingerprint(flow::Config{}));

  flow::Config changed;
  changed.correlation.rho_neighbor = 0.5;
  EXPECT_NE(fp, flow::extraction_fingerprint(changed));
  changed = flow::Config{};
  changed.max_cells_per_grid = 50;
  EXPECT_NE(fp, flow::extraction_fingerprint(changed));
  changed = flow::Config{};
  changed.place.utilization = 0.5;
  EXPECT_NE(fp, flow::extraction_fingerprint(changed));

  // Speed knobs and downstream options do not participate.
  flow::Config speed;
  speed.threads = 7;
  speed.level_parallel = timing::LevelParallel::kOn;
  speed.cache.dir = "/tmp/somewhere";
  speed.mc.samples = 17;
  speed.hier.interconnect_delay = 0.3;
  speed.extract.criticality_threshold = 0.2;  // hashed separately
  EXPECT_EQ(fp, flow::extraction_fingerprint(speed));
}

TEST(Fingerprint, ExtractOptionsKeyIgnoresSchedule) {
  model::ExtractOptions a;
  model::ExtractOptions b;
  b.level_parallel = timing::LevelParallel::kOn;
  EXPECT_EQ(model::fingerprint(a), model::fingerprint(b));
  b.criticality_threshold = 0.1;
  EXPECT_NE(model::fingerprint(a), model::fingerprint(b));
  model::ExtractOptions c;
  c.repair_connectivity = false;
  EXPECT_NE(model::fingerprint(a), model::fingerprint(c));
}

TEST(Fingerprint, LibraryKeyTracksCellParameters) {
  const uint64_t fp = library::fingerprint(library::default_90nm());
  EXPECT_EQ(fp, library::fingerprint(library::default_90nm()));
  library::CellLibrary tweaked = library::default_90nm();
  library::CellType extra;
  extra.name = "SLOWBUF";
  extra.intrinsic = {0.5};
  tweaked.add(std::move(extra));
  EXPECT_NE(fp, library::fingerprint(tweaked));
}

TEST_F(CacheTest, ModelCacheStoreLoadRoundTrip) {
  const flow::Module m = flow::Module::from_bench_string(bench_text());
  cache::ModelCache cache(dir());
  const uint64_t key = 0x1234abcdull;

  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  cache.store(key, m.model());
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_TRUE(fs::exists(cache.entry_path(key)));

  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  std::ostringstream a, b;
  m.model().save(a);
  loaded->save(b);
  EXPECT_EQ(a.str(), b.str());

  // No temp files left behind.
  for (const fs::path& p : entries())
    EXPECT_EQ(p.extension(), ".hstm") << p;
}

TEST_F(CacheTest, OpenSweepsStaleTempFilesOnly) {
  // A crashed writer leaves ".tmp-*" files behind; opening the cache must
  // sweep old ones but never race a live writer's fresh temp file.
  const fs::path stale = dir_ / ".tmp-deadbeef-1-0";
  const fs::path fresh = dir_ / ".tmp-cafef00d-2-0";
  const fs::path entry = dir_ / "0123456789abcdef.hstm";
  std::ofstream(stale) << "partial";
  std::ofstream(fresh) << "partial";
  std::ofstream(entry) << "# not even valid, sweep must not touch entries";
  fs::last_write_time(stale,
                      fs::file_time_type::clock::now() - std::chrono::hours(2));

  cache::ModelCache cache(dir());
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(fresh));
  EXPECT_TRUE(fs::exists(entry));
}

TEST_F(CacheTest, ModelCacheRejectsWrongFingerprintHeader) {
  const flow::Module m = flow::Module::from_bench_string(bench_text());
  cache::ModelCache cache(dir());
  cache.store(1, m.model());
  // Simulate a renamed / cross-copied entry: content says key 1, name says 2.
  fs::rename(cache.entry_path(1), cache.entry_path(2));
  EXPECT_FALSE(cache.load(2).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(fs::exists(cache.entry_path(2)));  // evicted, not trusted
}

TEST_F(CacheTest, HitIsByteIdenticalToFreshExtraction) {
  const std::string uncached =
      model_bytes(flow::Module::from_bench_string(bench_text()));

  const flow::Module cold =
      flow::Module::from_bench_string(bench_text(), cached_config());
  const std::string cold_bytes = model_bytes(cold);
  EXPECT_EQ(cold.cache_stats().misses, 1u);
  EXPECT_EQ(cold.cache_stats().stores, 1u);
  EXPECT_EQ(cold.cache_stats().hits, 0u);

  const flow::Module warm =
      flow::Module::from_bench_string(bench_text(), cached_config());
  const std::string warm_bytes = model_bytes(warm);
  EXPECT_EQ(warm.cache_stats().hits, 1u);
  EXPECT_EQ(warm.cache_stats().misses, 0u);
  EXPECT_TRUE(warm.extract_model().stats.from_cache);
  EXPECT_FALSE(cold.extract_model().stats.from_cache);

  EXPECT_EQ(cold_bytes, uncached);
  EXPECT_EQ(warm_bytes, uncached);
}

TEST_F(CacheTest, ConfigChangeChangesKey) {
  const flow::Module a =
      flow::Module::from_bench_string(bench_text(), cached_config());
  (void)a.model();
  ASSERT_EQ(entries().size(), 1u);

  // A different extraction threshold is a different key: miss, new entry.
  flow::Config cfg = cached_config();
  cfg.extract.criticality_threshold = 0.2;
  const flow::Module b = flow::Module::from_bench_string(bench_text(), cfg);
  (void)b.model();
  EXPECT_EQ(b.cache_stats().hits, 0u);
  EXPECT_EQ(b.cache_stats().misses, 1u);
  EXPECT_EQ(entries().size(), 2u);

  // A different correlation profile too (config fingerprint).
  flow::Config cfg2 = cached_config();
  cfg2.correlation.rho_neighbor = 0.5;
  const flow::Module c = flow::Module::from_bench_string(bench_text(), cfg2);
  (void)c.model();
  EXPECT_EQ(c.cache_stats().misses, 1u);
  EXPECT_EQ(entries().size(), 3u);
}

TEST_F(CacheTest, SpeedKnobsShareOneEntry) {
  flow::Config cfg = cached_config();
  cfg.threads = 2;
  cfg.level_parallel = timing::LevelParallel::kOn;
  const flow::Module a = flow::Module::from_bench_string(bench_text(), cfg);
  const std::string bytes_a = model_bytes(a);

  flow::Config cfg2 = cached_config();
  cfg2.threads = 1;
  cfg2.level_parallel = timing::LevelParallel::kOff;
  const flow::Module b = flow::Module::from_bench_string(bench_text(), cfg2);
  EXPECT_EQ(model_bytes(b), bytes_a);
  EXPECT_EQ(b.cache_stats().hits, 1u);
  EXPECT_EQ(entries().size(), 1u);
}

TEST_F(CacheTest, CorruptEntryIsEvictedAndReextracted) {
  const flow::Module cold =
      flow::Module::from_bench_string(bench_text(), cached_config());
  const std::string good_bytes = model_bytes(cold);
  ASSERT_EQ(entries().size(), 1u);
  const fs::path entry = entries()[0];

  // Truncate the entry mid-body (a partial write the atomic rename would
  // normally prevent, or bit rot).
  std::string content;
  {
    std::ifstream is(entry);
    std::ostringstream ss;
    ss << is.rdbuf();
    content = ss.str();
  }
  {
    std::ofstream os(entry, std::ios::trunc);
    os << content.substr(0, content.size() / 2);
  }

  const flow::Module again =
      flow::Module::from_bench_string(bench_text(), cached_config());
  EXPECT_EQ(model_bytes(again), good_bytes);
  EXPECT_EQ(again.cache_stats().hits, 0u);
  EXPECT_EQ(again.cache_stats().misses, 1u);
  EXPECT_EQ(again.cache_stats().evictions, 1u);
  EXPECT_EQ(again.cache_stats().stores, 1u);  // re-populated

  // Trailing garbage (e.g. two concatenated entries) is also rejected.
  {
    std::ofstream os(entry, std::ios::trunc);
    os << content << "zombie\n";
  }
  const flow::Module third =
      flow::Module::from_bench_string(bench_text(), cached_config());
  EXPECT_EQ(model_bytes(third), good_bytes);
  EXPECT_EQ(third.cache_stats().evictions, 1u);
}

TEST_F(CacheTest, DisabledCacheBypassesEverything) {
  flow::Config cfg = cached_config();
  cfg.cache.enabled = false;
  const flow::Module m = flow::Module::from_bench_string(bench_text(), cfg);
  (void)m.model();
  EXPECT_EQ(m.cache_stats(), cache::CacheStats{});
  EXPECT_TRUE(entries().empty());

  // Empty dir means inactive too, however `enabled` is set.
  flow::Config cfg2;
  cfg2.cache.dir.clear();
  cfg2.cache.enabled = true;
  EXPECT_FALSE(cfg2.cache.active());
}

TEST_F(CacheTest, ConcurrentModulesShareOneDirectory) {
  // Two handles over the same netlist and cache dir extract concurrently:
  // the atomic publish keeps every outcome (both miss, or one hits the
  // other's store) byte-identical and the directory uncorrupted.
  const std::string reference =
      model_bytes(flow::Module::from_bench_string(bench_text()));
  const flow::Module a =
      flow::Module::from_bench_string(bench_text(), cached_config());
  const flow::Module b =
      flow::Module::from_bench_string(bench_text(), cached_config());
  std::string bytes_a, bytes_b;
  std::thread ta([&] { bytes_a = model_bytes(a); });
  std::thread tb([&] { bytes_b = model_bytes(b); });
  ta.join();
  tb.join();
  EXPECT_EQ(bytes_a, reference);
  EXPECT_EQ(bytes_b, reference);

  const cache::CacheStats total = [&] {
    cache::CacheStats t = a.cache_stats();
    t += b.cache_stats();
    return t;
  }();
  EXPECT_EQ(total.hits + total.misses, 2u);
  EXPECT_GE(total.stores, 1u);
  ASSERT_EQ(entries().size(), 1u);

  // The published entry is valid: a third module hits it.
  const flow::Module c =
      flow::Module::from_bench_string(bench_text(), cached_config());
  EXPECT_EQ(model_bytes(c), reference);
  EXPECT_EQ(c.cache_stats().hits, 1u);
}

TEST_F(CacheTest, DesignAggregatesPerModuleStats) {
  // Two structurally identical modules under different names (identical
  // placement, so the design grid pitches match) are distinct cache keys.
  const flow::Config cfg = cached_config();
  auto make = [&](const char* name) {
    netlist::Netlist nl =
        netlist::read_bench_string(bench_text(), *flow::default_library());
    nl.set_name(name);
    return flow::Module::from_netlist(std::move(nl), cfg);
  };
  auto build = [&](const flow::Module& a, const flow::Module& b) {
    flow::Design d("duo", cfg);
    d.add_instance(a, 0, 0, "a");
    d.add_instance(a, 40, 0, "a2");  // shared handle: counted once
    d.add_instance(b, 80, 0, "b");
    d.expose_unconnected_ports();
    return d;
  };

  const flow::Design d = build(make("m_left"), make("m_right"));
  (void)d.analyze();
  const cache::CacheStats cs = d.cache_stats();
  EXPECT_EQ(cs.misses, 2u);  // two distinct modules, both cold
  EXPECT_EQ(cs.stores, 2u);
  EXPECT_EQ(cs.hits, 0u);

  // A second design over fresh handles is all hits, and analyzes to the
  // exact same stitched distribution.
  const flow::Design d2 = build(make("m_left"), make("m_right"));
  (void)d2.analyze();
  EXPECT_EQ(d2.cache_stats().hits, 2u);
  EXPECT_EQ(d2.cache_stats().misses, 0u);
  EXPECT_EQ(d2.delay().nominal(), d.delay().nominal());
  EXPECT_EQ(d2.delay().sigma(), d.delay().sigma());
}

TEST_F(CacheTest, ConfigKeysParse) {
  const flow::Config cfg = flow::Config::from_string(
      "[cache]\ndir = " + dir() + "\nenabled = true\n");
  EXPECT_EQ(cfg.cache.dir, dir());
  EXPECT_TRUE(cfg.cache.enabled);
  EXPECT_TRUE(cfg.cache.active());

  const flow::Config off =
      flow::Config::from_string("cache.enabled = off\n");
  EXPECT_FALSE(off.cache.enabled);
  EXPECT_THROW((void)flow::Config::from_string("cache.enabled = maybe\n"),
               Error);
}

TEST(CacheConfig, BlankCacheDirEnvWarnsOnceAndStaysOff) {
  ASSERT_EQ(setenv("HSSTA_CACHE_DIR", "   ", 1), 0);
  ::testing::internal::CaptureStderr();
  const std::string dir = flow::default_cache_dir();
  const std::string err = ::testing::internal::GetCapturedStderr();
  ASSERT_EQ(unsetenv("HSSTA_CACHE_DIR"), 0);
  EXPECT_TRUE(dir.empty());
  EXPECT_NE(err.find("HSSTA_CACHE_DIR"), std::string::npos) << err;
  // Once per process: a second call stays quiet.
  ASSERT_EQ(setenv("HSSTA_CACHE_DIR", "", 1), 0);
  ::testing::internal::CaptureStderr();
  (void)flow::default_cache_dir();
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
  ASSERT_EQ(unsetenv("HSSTA_CACHE_DIR"), 0);
}

TEST(CacheConfig, CacheDirEnvBecomesDefault) {
  ASSERT_EQ(setenv("HSSTA_CACHE_DIR", "/tmp/hssta-env-cache", 1), 0);
  EXPECT_EQ(flow::default_cache_dir(), "/tmp/hssta-env-cache");
  const flow::Config cfg;
  EXPECT_EQ(cfg.cache.dir, "/tmp/hssta-env-cache");
  EXPECT_TRUE(cfg.cache.active());
  ASSERT_EQ(unsetenv("HSSTA_CACHE_DIR"), 0);
}

TEST(CacheConfig, MalformedThreadsEnvWarnsAndRunsSerial) {
  ASSERT_EQ(setenv("HSSTA_THREADS", "2x", 1), 0);
  ::testing::internal::CaptureStderr();
  const size_t threads = flow::default_threads();
  const std::string err = ::testing::internal::GetCapturedStderr();
  ASSERT_EQ(unsetenv("HSSTA_THREADS"), 0);
  EXPECT_EQ(threads, 1u);
  EXPECT_NE(err.find("HSSTA_THREADS"), std::string::npos) << err;
  EXPECT_NE(err.find("2x"), std::string::npos) << err;
}

TEST(ModelCacheErrors, UncreatableDirectoryFailsLoudly) {
  EXPECT_THROW(cache::ModelCache(""), Error);
  EXPECT_THROW(cache::ModelCache("/proc/hssta-definitely-not-writable"),
               Error);
}

}  // namespace
}  // namespace hssta
