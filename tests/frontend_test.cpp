// Tests for hssta::frontend — the BLIF and Liberty-lite readers, the
// content-based format detector, clock-boundary segmentation and
// sequential ("hstm 2") model extraction:
//  * golden round-trips: BLIF and Liberty text survive read -> write ->
//    re-read with identical fingerprints (including multi-model files and
//    every .latch init/control form),
//  * a malformed corpus of >= 25 documents, each asserting the thrown
//    diagnostic names its origin:line,
//  * segmentation properties: every gate in exactly one segment, segment
//    closure (fanins are launches or intra-segment outputs), deterministic
//    ordering,
//  * a differential test pinning sequential extraction: the folded
//    FF-to-FF constraints equal an independent per-segment propagation
//    fold, and the serialized model is byte-identical at 1/2/4 threads,
//  * "hstm 1" compatibility: combinational models still serialize with
//    the old header and round-trip byte-identically.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fixtures.hpp"
#include "hssta/flow/detect.hpp"
#include "hssta/flow/flow.hpp"
#include "hssta/frontend/blif.hpp"
#include "hssta/frontend/liberty.hpp"
#include "hssta/frontend/segment.hpp"
#include "hssta/frontend/sequential.hpp"
#include "hssta/netlist/bench_io.hpp"
#include "hssta/timing/propagate.hpp"
#include "hssta/timing/statops.hpp"
#include "hssta/util/error.hpp"

namespace hssta::frontend {
namespace {

const library::CellLibrary& lib() { return testing::default_lib(); }

/// The committed testdata/sample.blif, inlined (ctest runs from the build
/// tree; the on-disk copy feeds the CI CLI smoke).
constexpr const char* kSampleBlif =
    ".model sample\n"
    ".inputs en clk\n"
    ".outputs count_or\n"
    ".names en q0 d0\n"
    "01 1\n"
    "10 1\n"
    ".names en q0 t\n"
    "11 1\n"
    ".names q1 t d1\n"
    "01 1\n"
    "10 1\n"
    ".names q0 q1 count_or\n"
    "1- 1\n"
    "-1 1\n"
    ".latch d0 q0 re clk 0\n"
    ".latch d1 q1 re clk 1\n"
    ".end\n";

/// The committed testdata/s27.bench, inlined. One segment: the
/// combinational core is fully net-connected.
constexpr const char* kS27Bench =
    "INPUT(G0)\nINPUT(G1)\nINPUT(G2)\nINPUT(G3)\n"
    "OUTPUT(G17)\n"
    "G5 = DFF(G10)\nG6 = DFF(G11)\nG7 = DFF(G13)\n"
    "G14 = NOT(G0)\nG17 = NOT(G11)\nG8 = AND(G14, G6)\n"
    "G15 = OR(G12, G8)\nG16 = OR(G3, G8)\nG9 = NAND(G16, G15)\n"
    "G10 = NOR(G14, G11)\nG11 = NOR(G5, G9)\nG12 = NOR(G1, G7)\n"
    "G13 = NAND(G2, G12)\n";

/// Two registers whose cones never touch: exactly two segments, each with
/// one FF-to-FF constraint.
constexpr const char* kTwoSegBench =
    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
    "q1 = DFF(d1)\nq2 = DFF(d2)\n"
    "d1 = NAND(a, q1)\n"
    "d2 = NOR(b, q2)\n"
    "y = NOT(q2)\n";

netlist::Netlist two_seg() {
  return netlist::read_bench_string(kTwoSegBench, lib(), "two_seg");
}

/// --- BLIF reader / writer ----------------------------------------------

TEST(FrontendBlif, SampleParsesWithRegistersAndRoundTrips) {
  const netlist::Netlist nl = read_blif_string(kSampleBlif, lib());
  EXPECT_EQ(nl.name(), "sample");
  EXPECT_EQ(nl.num_gates(), 4u);
  ASSERT_EQ(nl.num_registers(), 2u);
  EXPECT_TRUE(nl.is_sequential());

  const netlist::Register& r0 = nl.reg(0);
  EXPECT_EQ(nl.net_name(r0.data_in), "d0");
  EXPECT_EQ(nl.net_name(r0.data_out), "q0");
  ASSERT_NE(r0.clock, netlist::kNoNet);
  EXPECT_EQ(nl.net_name(r0.clock), "clk");
  EXPECT_EQ(r0.init, 0);
  EXPECT_EQ(nl.reg(1).init, 1);

  const std::string text = write_blif_string(nl);
  const netlist::Netlist again = read_blif_string(text, lib());
  EXPECT_EQ(netlist::fingerprint(again), netlist::fingerprint(nl));
}

TEST(FrontendBlif, CoversClassifyOntoLibraryFunctions) {
  const netlist::Netlist nl = read_blif_string(kSampleBlif, lib());
  // d0 = en XOR q0 (two-row parity cover), t = en AND q0, count_or = OR.
  EXPECT_EQ(nl.gate(nl.driver(nl.net_by_name("d0"))).type->func,
            library::GateFunc::kXor);
  EXPECT_EQ(nl.gate(nl.driver(nl.net_by_name("t"))).type->func,
            library::GateFunc::kAnd);
  EXPECT_EQ(nl.gate(nl.driver(nl.net_by_name("count_or"))).type->func,
            library::GateFunc::kOr);
}

TEST(FrontendBlif, LatchInitAndControlForms) {
  const char* text =
      ".model latches\n"
      ".inputs d clk\n"
      ".outputs q0 q1 q2 q3 q4 q5 q6\n"
      ".latch d q0 re clk 0\n"
      ".latch d q1 fe clk 1\n"
      ".latch d q2 ah clk 2\n"
      ".latch d q3 re clk 3\n"
      ".latch d q4\n"
      ".latch d q5 0\n"
      ".latch d q6 re NIL 1\n"
      ".end\n";
  const netlist::Netlist nl = read_blif_string(text, lib());
  ASSERT_EQ(nl.num_registers(), 7u);
  const int want_init[] = {0, 1, 2, 3, 3, 0, 1};
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(nl.reg(i).init, want_init[i]) << "register " << i;
    EXPECT_EQ(nl.net_name(nl.reg(i).data_out), "q" + std::to_string(i));
  }
  // q0..q3 are clocked by clk; q4 (bare), q5 (init only) and q6 (NIL
  // control) are unclocked.
  for (size_t i = 0; i < 4; ++i) EXPECT_NE(nl.reg(i).clock, netlist::kNoNet);
  for (size_t i = 4; i < 7; ++i) EXPECT_EQ(nl.reg(i).clock, netlist::kNoNet);

  const netlist::Netlist again = read_blif_string(write_blif_string(nl), lib());
  EXPECT_EQ(netlist::fingerprint(again), netlist::fingerprint(nl));
}

constexpr const char* kMultiModel =
    ".model top\n"
    ".inputs a b\n"
    ".outputs y\n"
    ".subckt leaf p=a q=b r=y\n"
    ".end\n"
    ".model leaf\n"
    ".inputs p q\n"
    ".outputs r\n"
    ".names p q r\n"
    "11 1\n"
    ".end\n";

TEST(FrontendBlif, MultiModelSelectionAndSubcktInlining) {
  std::istringstream names_in(kMultiModel);
  const std::vector<std::string> names = blif_model_names(names_in);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "top");
  EXPECT_EQ(names[1], "leaf");

  // Default: first model, with the leaf inlined through the bindings.
  const netlist::Netlist top = read_blif_string(kMultiModel, lib());
  EXPECT_EQ(top.name(), "top");
  ASSERT_EQ(top.num_gates(), 1u);
  EXPECT_EQ(top.gate(0).type->func, library::GateFunc::kAnd);
  EXPECT_EQ(top.net_name(top.gate(0).output), "y");

  // Explicit model selection elaborates the leaf standalone.
  BlifOptions opts;
  opts.model = "leaf";
  const netlist::Netlist leaf = read_blif_string(kMultiModel, lib(), opts);
  EXPECT_EQ(leaf.name(), "leaf");
  ASSERT_EQ(leaf.num_gates(), 1u);
  EXPECT_EQ(leaf.net_name(leaf.primary_inputs()[0]), "p");

  opts.model = "nope";
  try {
    (void)read_blif_string(kMultiModel, lib(), opts);
    FAIL() << "expected an error for an unknown model";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("no model named nope"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("top leaf"), std::string::npos)
        << "error should list the defined models: " << e.what();
  }
}

TEST(FrontendBlif, SubcktInternalsArePrefixedPerInstance) {
  const char* text =
      ".model top\n"
      ".inputs a b\n"
      ".outputs y z\n"
      ".subckt inv2 i=a o=y\n"
      ".subckt inv2 i=b o=z\n"
      ".end\n"
      ".model inv2\n"
      ".inputs i\n"
      ".outputs o\n"
      ".names i m\n"
      "0 1\n"
      ".names m o\n"
      "0 1\n"
      ".end\n";
  const netlist::Netlist nl = read_blif_string(text, lib());
  EXPECT_EQ(nl.num_gates(), 4u);
  // Each instance gets its own prefixed internal net for "m".
  EXPECT_NO_THROW((void)nl.net_by_name("inv2$0.m"));
  EXPECT_NO_THROW((void)nl.net_by_name("inv2$1.m"));
  // Functionally two back-to-back inverters: y == a, z == b.
  const std::vector<bool> vals = nl.simulate({true, false});
  EXPECT_TRUE(vals[nl.net_by_name("y")]);
  EXPECT_FALSE(vals[nl.net_by_name("z")]);
}

TEST(FrontendBlif, SequentialSimulationMatchesToggler) {
  // sample.blif is a two-bit enabled toggler: with en=1 the pair (q1,q0)
  // counts 00 -> 01 -> 10 -> 11.
  const netlist::Netlist nl = read_blif_string(kSampleBlif, lib());
  std::vector<bool> state = {false, false};  // q0, q1 (registers() order)
  const std::vector<bool> pi = {true, false};  // en=1, clk (unused by logic)
  for (const auto& want : {std::pair{true, false}, std::pair{false, true},
                           std::pair{true, true}}) {
    const std::vector<bool> nets = nl.simulate(pi, state);
    state[0] = nets[nl.reg(0).data_in];
    state[1] = nets[nl.reg(1).data_in];
    EXPECT_EQ(state[0], want.first);
    EXPECT_EQ(state[1], want.second);
  }
}

/// --- Liberty-lite reader / writer --------------------------------------

TEST(FrontendLiberty, DefaultLibraryRoundTripsThroughWriter) {
  const library::CellLibrary& ref = lib();
  const std::string text = write_liberty_string("default90", ref);
  const LibertyLibrary parsed = read_liberty_string(text);
  EXPECT_EQ(parsed.name, "default90");
  EXPECT_EQ(library::fingerprint(parsed.cells), library::fingerprint(ref));
}

TEST(FrontendLiberty, ParsesCellDataPerHeaderContract) {
  const char* text =
      "library (my90nm) {\n"
      "  delay_model : generic_cmos;\n"
      "  cell (NAND2) {\n"
      "    area : 2.0;\n"
      "    pin (A) { direction : input; capacitance : 1.1; }\n"
      "    pin (B) { direction : input; capacitance : 0.9; }\n"
      "    pin (Y) {\n"
      "      direction : output;\n"
      "      function : \"(A * B)'\";\n"
      "      timing () {\n"
      "        related_pin : \"A\";\n"
      "        intrinsic_rise : 0.035; intrinsic_fall : 0.031;\n"
      "        rise_resistance : 0.012; fall_resistance : 0.011;\n"
      "      }\n"
      "      timing () { related_pin : \"B\"; intrinsic : 0.038;\n"
      "                  rise_resistance : 0.010; }\n"
      "    }\n"
      "    sensitivity (Leff) { value : 0.55; }\n"
      "    unknown_group (x) { stuff : 1; }\n"
      "  }\n"
      "}\n";
  const LibertyLibrary l = read_liberty_string(text);
  EXPECT_EQ(l.name, "my90nm");
  const library::CellType* c = l.cells.find("NAND2");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->func, library::GateFunc::kNand);
  EXPECT_EQ(c->num_inputs, 2u);
  ASSERT_EQ(c->intrinsic.size(), 2u);
  EXPECT_DOUBLE_EQ(c->intrinsic[0], 0.035);  // max(rise, fall) of arc A
  EXPECT_DOUBLE_EQ(c->intrinsic[1], 0.038);  // plain intrinsic of arc B
  EXPECT_DOUBLE_EQ(c->drive_res, 0.012);     // max over all arcs
  EXPECT_DOUBLE_EQ(c->input_cap, 1.1);       // max pin capacitance
  EXPECT_DOUBLE_EQ(c->width, 2.0);           // area
  EXPECT_DOUBLE_EQ(c->sensitivity("Leff"), 0.55);
}

/// --- malformed corpus ----------------------------------------------------
///
/// Every parser diagnostic must name its origin and line ("<blif>:5: ...");
/// each document pins the location and a message fragment.

struct BadDoc {
  const char* label;
  enum Kind { kBlif, kLiberty, kBench } kind;
  const char* text;
  const char* where;  ///< expected "origin:line" substring
  const char* what;   ///< expected message fragment ("" = location only)
};

const BadDoc kBadDocs[] = {
    // --- BLIF -------------------------------------------------------------
    {"cover row outside .names", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n11 1\n.end\n", "<blif>:4",
     "expected a directive"},
    {"directive before .model", BadDoc::kBlif, ".inputs a\n", "<blif>:1",
     "expected .model"},
    {".model without a name", BadDoc::kBlif, ".model\n.end\n", "<blif>:1",
     ".model takes exactly one name"},
    {"duplicate model name", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n.model m\n.end\n",
     "<blif>:7", "duplicate model name"},
    {"missing .end before next model", BadDoc::kBlif,
     ".model a\n.outputs y\n.model b\n", "<blif>:3", "missing .end"},
    {".names without signals", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names\n.end\n", "<blif>:4",
     ".names needs at least an output signal"},
    {"cover row width mismatch", BadDoc::kBlif,
     ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n", "<blif>:5",
     "cover row width 1 does not match 2 inputs"},
    {"cover row bad plane character", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names a y\nx 1\n.end\n", "<blif>:5:1",
     "cover row character must be 0, 1 or -"},
    {"cover row bad output value", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names a y\n1 2\n.end\n", "<blif>:5",
     "cover row output must be 0 or 1"},
    {"mixed output phases", BadDoc::kBlif,
     ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n",
     "<blif>:6", "mixed output phases"},
    {"constant cover", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names y\n1\n.end\n", "<blif>:4",
     "constant .names (no inputs) is unsupported"},
    {"cover with no rows", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names a y\n.end\n", "<blif>:4",
     "has no rows"},
    {"cover matching no gate function", BadDoc::kBlif,
     ".model m\n.inputs a b\n.outputs y\n.names a b y\n10 1\n.end\n",
     "<blif>:4", "does not match any library gate function"},
    {"latch bad init", BadDoc::kBlif,
     ".model m\n.inputs d\n.outputs q\n.latch d q 7\n.end\n", "<blif>:4",
     "latch init value must be 0..3"},
    {"latch unknown type", BadDoc::kBlif,
     ".model m\n.inputs d c\n.outputs q\n.latch d q zz c 0\n.end\n",
     "<blif>:4", "unknown latch type"},
    {"latch operand overflow", BadDoc::kBlif,
     ".model m\n.inputs d c\n.outputs q\n.latch d q re c 0 9\n.end\n",
     "<blif>:4", ".latch takes input, output"},
    {".subckt of undefined model", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.subckt nope p=a\n.end\n", "<blif>:4",
     ".subckt references undefined model"},
    {".subckt malformed binding", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.subckt leaf ab\n.end\n", "<blif>:4",
     ".subckt binding must be formal=actual"},
    {".subckt duplicate binding", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.subckt leaf p=a p=a\n.end\n",
     "<blif>:4", "duplicate .subckt binding"},
    {".subckt recursion", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.subckt m a=a y=y\n.end\n", "<blif>:4",
     "recursive .subckt instantiation"},
    {".subckt unknown pin", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.subckt leaf c=a\n.end\n"
     ".model leaf\n.inputs p\n.outputs r\n.names p r\n1 1\n.end\n",
     "<blif>:4", "has no pin named c"},
    {".subckt unbound input", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.subckt leaf p=a r=y\n.end\n"
     ".model leaf\n.inputs p q\n.outputs r\n.names p q r\n11 1\n.end\n",
     "<blif>:4", "leaves input pin q"},
    {"unsupported construct", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.gate nand2 a=a o=y\n.end\n",
     "<blif>:4:1", "unsupported BLIF construct"},
    {"model without outputs", BadDoc::kBlif, ".model m\n.inputs a\n.end\n",
     "<blif>:1", "declares no .outputs"},
    {"missing final .end", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n", "<blif>:1",
     "missing .end for model m"},
    {"trailing operands on .end", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end x\n", "<blif>:6",
     "trailing operands on .end"},
    {"directive after .end", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n.inputs b\n",
     "<blif>:7", "after .end of model m"},
    {"net driven twice", BadDoc::kBlif,
     ".model m\n.inputs a b\n.outputs y\n.names a y\n1 1\n.names b y\n1 1\n"
     ".end\n",
     "<blif>:6", ""},
    {"empty file", BadDoc::kBlif, "", "<blif>:1", "file defines no .model"},
    {"validation catches undriven net", BadDoc::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n",
     "<blif>:1", "failed structural validation"},
    // --- Liberty-lite -----------------------------------------------------
    {"not a library group", BadDoc::kLiberty, "cell (X) { }\n", "<liberty>:1",
     ""},
    {"trailing content after library", BadDoc::kLiberty,
     "library (l) {\n}\nextra\n", "<liberty>:3",
     "trailing content after library group"},
    {"cell without a name", BadDoc::kLiberty,
     "library (l) {\n  cell () { }\n}\n", "<liberty>:2", "cell needs a name"},
    {"unterminated group", BadDoc::kLiberty,
     "library (l) {\n  cell (c) {\n", "<liberty>:3", "expected a statement"},
    {"unterminated string", BadDoc::kLiberty,
     "library (l) {\n  cell (c) {\n    pin (Y) { function : \"oops\n  }\n}\n",
     "<liberty>:3", "unterminated string"},
    {"missing attribute value", BadDoc::kLiberty,
     "library (l) {\n  cell (c) {\n    area : ;\n  }\n}\n", "<liberty>:3",
     "expected an attribute value"},
    {"cell with two outputs", BadDoc::kLiberty,
     "library (l) {\n cell (c) {\n"
     "  pin (A) { direction : input; capacitance : 1; }\n"
     "  pin (Y) { direction : output; function : \"!A\";\n"
     "            timing () { related_pin : \"A\"; intrinsic : 1; } }\n"
     "  pin (Z) { direction : output; function : \"!A\";\n"
     "            timing () { related_pin : \"A\"; intrinsic : 1; } }\n"
     " }\n}\n",
     "<liberty>:", "more than one output pin"},
    {"cell with no output", BadDoc::kLiberty,
     "library (l) {\n cell (c) {\n"
     "  pin (A) { direction : input; capacitance : 1; }\n }\n}\n",
     "<liberty>:", "has no output pin"},
    {"cell with no inputs", BadDoc::kLiberty,
     "library (l) {\n cell (c) {\n"
     "  pin (Y) { direction : output; function : \"!A\"; }\n }\n}\n",
     "<liberty>:", ""},
    {"mixed operators in function", BadDoc::kLiberty,
     "library (l) {\n cell (c) {\n"
     "  pin (A) { direction : input; capacitance : 1; }\n"
     "  pin (B) { direction : input; capacitance : 1; }\n"
     "  pin (Y) { direction : output; function : \"A * B + A\";\n"
     "            timing () { related_pin : \"A\"; intrinsic : 1; }\n"
     "            timing () { related_pin : \"B\"; intrinsic : 1; } }\n"
     " }\n}\n",
     "<liberty>:", "mixed operators need parentheses"},
    {"timing arc without related_pin", BadDoc::kLiberty,
     "library (l) {\n cell (c) {\n"
     "  pin (A) { direction : input; capacitance : 1; }\n"
     "  pin (Y) { direction : output; function : \"!A\";\n"
     "            timing () { intrinsic : 1; } }\n"
     " }\n}\n",
     "<liberty>:", "needs a related_pin"},
    {"sensitivity without parameter", BadDoc::kLiberty,
     "library (l) {\n cell (c) {\n"
     "  pin (A) { direction : input; capacitance : 1; }\n"
     "  pin (Y) { direction : output; function : \"!A\";\n"
     "            timing () { related_pin : \"A\"; intrinsic : 1; } }\n"
     "  sensitivity () { value : 1; }\n"
     " }\n}\n",
     "<liberty>:6", "sensitivity needs a parameter name"},
    {"sensitivity without value", BadDoc::kLiberty,
     "library (l) {\n cell (c) {\n"
     "  pin (A) { direction : input; capacitance : 1; }\n"
     "  pin (Y) { direction : output; function : \"!A\";\n"
     "            timing () { related_pin : \"A\"; intrinsic : 1; } }\n"
     "  sensitivity (Leff) { }\n"
     " }\n}\n",
     "<liberty>:", "needs a value attribute"},
    {"input pin without an arc", BadDoc::kLiberty,
     "library (l) {\n cell (c) {\n"
     "  pin (A) { direction : input; capacitance : 1; }\n"
     "  pin (B) { direction : input; capacitance : 1; }\n"
     "  pin (Y) { direction : output; function : \"A * B\";\n"
     "            timing () { related_pin : \"A\"; intrinsic : 1; } }\n"
     " }\n}\n",
     "<liberty>:", "no timing() arc for"},
    // --- .bench -----------------------------------------------------------
    {"DFF with two inputs", BadDoc::kBench,
     "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n", "<bench>:4",
     "DFF takes exactly one input"},
    {"unsupported bench function", BadDoc::kBench,
     "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = MAJ(a, b, c)\n",
     "<bench>:5", "unsupported bench gate function"},
    {"OUTPUT of unknown net", BadDoc::kBench, "INPUT(a)\nOUTPUT(zz)\n",
     "<bench>:2", "OUTPUT references unknown net"},
    {"bench non-assignment", BadDoc::kBench, "INPUT(a)\nwhat is this\n",
     "<bench>:2", "expected assignment"},
};

TEST(FrontendDiagnostics, MalformedCorpusNamesOriginAndLine) {
  ASSERT_GE(std::size(kBadDocs), 25u);
  for (const BadDoc& doc : kBadDocs) {
    try {
      switch (doc.kind) {
        case BadDoc::kBlif:
          (void)read_blif_string(doc.text, lib());
          break;
        case BadDoc::kLiberty:
          (void)read_liberty_string(doc.text);
          break;
        case BadDoc::kBench:
          (void)netlist::read_bench_string(doc.text, lib());
          break;
      }
      FAIL() << doc.label << ": expected a parse error";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(doc.where), std::string::npos)
          << doc.label << ": diagnostic should name " << doc.where
          << ", got: " << msg;
      if (doc.what[0] != '\0') {
        EXPECT_NE(msg.find(doc.what), std::string::npos)
            << doc.label << ": got: " << msg;
      }
    }
  }
}

/// --- format detection ----------------------------------------------------

TEST(FrontendDetect, ClassifiesByContentNotExtension) {
  using flow::FileFormat;
  EXPECT_EQ(flow::detect_format(kS27Bench), FileFormat::kBench);
  EXPECT_EQ(flow::detect_format(kSampleBlif), FileFormat::kBlif);
  EXPECT_EQ(flow::detect_format("hstm 1\nname top\n"), FileFormat::kHstm);
  EXPECT_EQ(flow::detect_format("hstm 2\nname top\n"), FileFormat::kHstm);
  EXPECT_EQ(flow::detect_format("hsds 1\n"), FileFormat::kDesignState);
  EXPECT_EQ(flow::detect_format("hello world\n"), FileFormat::kUnknown);
  EXPECT_EQ(flow::detect_format(""), FileFormat::kUnknown);
  // Leading comments and blank lines are transparent for both netlist
  // formats.
  EXPECT_EQ(flow::detect_format("# c\n\n# c2\nINPUT(a)\n"), FileFormat::kBench);
  EXPECT_EQ(flow::detect_format("# c\n\n.model m\n"), FileFormat::kBlif);
  // Gate assignment lines alone are recognizable .bench content.
  EXPECT_EQ(flow::detect_format("y = NAND(a, b)\n"), FileFormat::kBench);

  EXPECT_STREQ(flow::format_name(FileFormat::kBench), "ISCAS .bench");
  EXPECT_STREQ(flow::format_name(FileFormat::kBlif), "BLIF");
  EXPECT_STREQ(flow::format_name(FileFormat::kUnknown), "unknown");
}

TEST(FrontendDetect, ModuleFromFileNamesSupportedFormatsOnFailure) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "hssta_frontend_junk.txt";
  {
    std::ofstream out(path);
    out << "neither a netlist nor a model\n";
  }
  try {
    (void)flow::Module::from_file(path.string());
    FAIL() << "expected an unknown-format error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("detected as unknown"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ISCAS .bench"), std::string::npos) << msg;
    EXPECT_NE(msg.find("BLIF"), std::string::npos) << msg;
  }
  std::remove(path.string().c_str());

  EXPECT_THROW((void)flow::detect_file_format(
                   (fs::temp_directory_path() / "hssta_no_such_file").string()),
               Error);
}

TEST(FrontendDetect, ConfigCanRefuseSequentialNetlists) {
  flow::Config cfg;
  cfg.frontend.sequential = false;
  try {
    (void)flow::Module::from_bench_string(kS27Bench, cfg);
    FAIL() << "expected the sequential gate to fire";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("[frontend] sequential"), std::string::npos) << msg;
    EXPECT_NE(msg.find("3 registers"), std::string::npos) << msg;
  }
  // Combinational content is unaffected by the gate.
  EXPECT_NO_THROW((void)flow::Module::from_bench_string(
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", cfg));
}

/// --- segmentation properties ---------------------------------------------

void check_segmentation_invariants(const netlist::Netlist& nl) {
  const Segmentation seg = segment_netlist(nl);
  ASSERT_EQ(seg.gate_segment.size(), nl.num_gates());

  // Every gate is in exactly one segment, and gate_segment agrees with the
  // member lists.
  std::vector<int> seen(nl.num_gates(), 0);
  for (size_t s = 0; s < seg.segments.size(); ++s) {
    ASSERT_FALSE(seg.segments[s].gates.empty());
    for (netlist::GateId g : seg.segments[s].gates) {
      ++seen[g];
      EXPECT_EQ(seg.gate_segment[g], s);
    }
    // Members ascend; segments are ordered by smallest member.
    EXPECT_TRUE(std::is_sorted(seg.segments[s].gates.begin(),
                               seg.segments[s].gates.end()));
    if (s > 0) {
      EXPECT_LT(seg.segments[s - 1].gates.front(),
                seg.segments[s].gates.front());
    }
  }
  for (size_t g = 0; g < nl.num_gates(); ++g)
    EXPECT_EQ(seen[g], 1) << "gate " << g << " must be in exactly one segment";

  // Closure: every fanin of a member gate is either a declared launch net
  // or the output of a gate in the same segment — segments are launched
  // only at clock boundaries, so their internal DAGs cannot reach into
  // each other.
  for (const Segment& s : seg.segments) {
    std::vector<uint8_t> member_out(nl.num_nets(), 0);
    for (netlist::GateId g : s.gates) member_out[nl.gate(g).output] = 1;
    std::vector<uint8_t> launch(nl.num_nets(), 0);
    for (netlist::NetId n : s.launch_nets) {
      EXPECT_TRUE(nl.is_primary_input(n) || nl.is_register_output(n))
          << "launch nets are PIs or register outputs";
      launch[n] = 1;
    }
    for (netlist::GateId g : s.gates)
      for (netlist::NetId f : nl.gate(g).fanins)
        EXPECT_TRUE(launch[f] || member_out[f])
            << "net " << nl.net_name(f) << " enters segment unlaunched";
    for (netlist::NetId n : s.capture_nets)
      EXPECT_TRUE(member_out[n] || launch[n])
          << "capture net " << nl.net_name(n) << " not driven by the segment";
  }

  // Acyclic by construction: registers cut connectivity, so the whole
  // netlist (and therefore every segment) must topologically order.
  EXPECT_NO_THROW((void)nl.topological_order());
}

TEST(FrontendSegment, TwoIndependentConesMakeTwoSegments) {
  const netlist::Netlist nl = two_seg();
  check_segmentation_invariants(nl);

  const Segmentation seg = segment_netlist(nl);
  ASSERT_EQ(seg.segments.size(), 2u);
  // Gate 0 is d1 = NAND(a, q1); gates 1..2 are the q2 cone.
  EXPECT_EQ(seg.segments[0].gates, std::vector<netlist::GateId>({0}));
  EXPECT_EQ(seg.segments[1].gates, std::vector<netlist::GateId>({1, 2}));

  auto names = [&](const std::vector<netlist::NetId>& nets) {
    std::vector<std::string> out;
    for (netlist::NetId n : nets) out.push_back(nl.net_name(n));
    return out;
  };
  EXPECT_EQ(names(seg.segments[0].launch_nets),
            std::vector<std::string>({"a", "q1"}));
  EXPECT_EQ(names(seg.segments[0].capture_nets),
            std::vector<std::string>({"d1"}));
  EXPECT_EQ(names(seg.segments[1].launch_nets),
            std::vector<std::string>({"b", "q2"}));
  EXPECT_EQ(names(seg.segments[1].capture_nets),
            std::vector<std::string>({"d2", "y"}));
}

TEST(FrontendSegment, S27IsOneSegment) {
  const netlist::Netlist nl =
      netlist::read_bench_string(kS27Bench, lib(), "s27");
  check_segmentation_invariants(nl);
  const Segmentation seg = segment_netlist(nl);
  ASSERT_EQ(seg.segments.size(), 1u);
  EXPECT_EQ(seg.segments[0].gates.size(), nl.num_gates());
}

TEST(FrontendSegment, CombinationalComponentsBecomeSegments) {
  const netlist::Netlist nl = netlist::read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(z)\nx = NOT(a)\nz = NOT(b)\n",
      lib(), "comb2");
  check_segmentation_invariants(nl);
  const Segmentation seg = segment_netlist(nl);
  ASSERT_EQ(seg.segments.size(), 2u);
  EXPECT_EQ(seg.segments[0].capture_nets.size(), 1u);
  EXPECT_EQ(nl.net_name(seg.segments[0].capture_nets[0]), "x");
}

TEST(FrontendSegment, BlifSampleSegmentsShareTheToggleCone) {
  const netlist::Netlist nl = read_blif_string(kSampleBlif, lib());
  check_segmentation_invariants(nl);
}

/// --- sequential extraction ----------------------------------------------

TEST(FrontendSequential, ExtractionMatchesManualSegmentFold) {
  flow::Config cfg;
  cfg.cache.enabled = false;
  const flow::Module m = flow::Module::from_bench_string(kTwoSegBench, cfg);
  const netlist::Netlist& nl = m.netlist();
  const timing::BuiltGraph& built = m.built();
  const model::TimingModel& tm = m.model();

  ASSERT_TRUE(tm.is_sequential());
  ASSERT_EQ(tm.registers().size(), 2u);
  EXPECT_EQ(tm.registers()[0].name, "q1");
  EXPECT_EQ(tm.registers()[0].launch, "q1");
  EXPECT_EQ(tm.registers()[0].capture, "d1");
  EXPECT_EQ(tm.registers()[0].clock, "");
  EXPECT_EQ(tm.registers()[0].init, 3);
  ASSERT_EQ(tm.constraints().size(), 2u);
  EXPECT_EQ(tm.constraints()[0].label, "seg0");
  EXPECT_EQ(tm.constraints()[1].label, "seg1");

  // Independent recomputation: for each segment, propagate from its
  // register launch vertices and fold the statistical max over its
  // register capture vertices — exactly the folded quantity the model
  // stores.
  const Segmentation seg = segment_netlist(nl);
  ASSERT_EQ(seg.segments.size(), 2u);
  for (size_t s = 0; s < 2; ++s) {
    std::vector<timing::VertexId> sources;
    for (netlist::NetId n : seg.segments[s].launch_nets)
      if (nl.is_register_output(n))
        sources.push_back(
            built.register_launch_vertices[nl.register_driver(n)]);
    ASSERT_EQ(sources.size(), 1u);
    const timing::PropagationResult arrivals =
        timing::propagate_arrivals(built.graph, sources);

    bool have = false;
    timing::CanonicalForm worst(built.graph.dim());
    timing::MaxDiagnostics diag;
    for (netlist::RegId r = 0; r < nl.num_registers(); ++r) {
      const timing::VertexId v = built.register_capture_vertices[r];
      if (!arrivals.is_valid(v)) continue;
      if (!have) {
        worst = arrivals.at(v);
        have = true;
      } else {
        timing::statistical_max_accumulate(worst, arrivals.at(v), &diag);
      }
    }
    ASSERT_TRUE(have);
    EXPECT_EQ(tm.constraints()[s].delay, worst)
        << "constraint " << s << " must equal the manual segment fold";
  }

  // The direct extractor output equals what the flow attached.
  const SequentialExtraction direct = extract_sequential(nl, built);
  ASSERT_EQ(direct.constraints.size(), 2u);
  EXPECT_EQ(direct.constraints[0].delay, tm.constraints()[0].delay);
  EXPECT_EQ(direct.constraints[1].delay, tm.constraints()[1].delay);
}

TEST(FrontendSequential, ModelBytesIdenticalAcrossThreadCounts) {
  std::string reference;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    flow::Config cfg;
    cfg.cache.enabled = false;
    cfg.threads = threads;
    const flow::Module m = flow::Module::from_bench_string(kS27Bench, cfg);
    std::ostringstream os;
    m.model().save(os);
    if (reference.empty()) {
      reference = os.str();
      EXPECT_EQ(reference.rfind("hstm 2", 0), 0u)
          << "sequential models must carry the extended header";
      EXPECT_NE(reference.find("registers 3"), std::string::npos);
      EXPECT_NE(reference.find("constraints 1"), std::string::npos);
    } else {
      EXPECT_EQ(os.str(), reference)
          << "serialized model must be byte-identical at " << threads
          << " threads";
    }
  }
}

TEST(FrontendSequential, DirectFlopToFlopWiresContributeNoConstraint) {
  // q2's data input is q1's output directly — zero combinational delay,
  // no constraint; the q1 cone still folds one.
  const netlist::Netlist nl = netlist::read_bench_string(
      "INPUT(a)\nOUTPUT(y)\nq1 = DFF(d1)\nq2 = DFF(q1)\n"
      "d1 = NAND(a, q1)\ny = NOT(q2)\n",
      lib(), "shiftish");
  flow::Config cfg;
  cfg.cache.enabled = false;
  const flow::Module m = flow::Module::from_netlist(nl, cfg);
  ASSERT_EQ(m.model().registers().size(), 2u);
  ASSERT_EQ(m.model().constraints().size(), 1u);
}

/// --- hstm serialization compatibility ------------------------------------

TEST(FrontendHstm, CombinationalModelsKeepTheVersion1Header) {
  flow::Config cfg;
  cfg.cache.enabled = false;
  const flow::Module m = flow::Module::from_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", cfg);
  EXPECT_FALSE(m.model().is_sequential());
  std::ostringstream os;
  m.model().save(os);
  const std::string text = os.str();
  EXPECT_EQ(text.rfind("hstm 1", 0), 0u)
      << "combinational models must stay loadable by version-1 readers";
  EXPECT_EQ(text.find("registers"), std::string::npos);

  std::istringstream in(text);
  const model::TimingModel loaded = model::TimingModel::load(in);
  std::ostringstream os2;
  loaded.save(os2);
  EXPECT_EQ(os2.str(), text);
}

TEST(FrontendHstm, SequentialModelsRoundTripByteIdentically) {
  flow::Config cfg;
  cfg.cache.enabled = false;
  const flow::Module m = flow::Module::from_bench_string(kTwoSegBench, cfg);
  std::ostringstream os;
  m.model().save(os);
  const std::string text = os.str();
  EXPECT_EQ(text.rfind("hstm 2", 0), 0u);

  std::istringstream in(text);
  const model::TimingModel loaded = model::TimingModel::load(in);
  ASSERT_TRUE(loaded.is_sequential());
  ASSERT_EQ(loaded.registers().size(), m.model().registers().size());
  for (size_t i = 0; i < loaded.registers().size(); ++i) {
    EXPECT_EQ(loaded.registers()[i].name, m.model().registers()[i].name);
    EXPECT_EQ(loaded.registers()[i].launch, m.model().registers()[i].launch);
    EXPECT_EQ(loaded.registers()[i].capture, m.model().registers()[i].capture);
    EXPECT_EQ(loaded.registers()[i].init, m.model().registers()[i].init);
  }
  ASSERT_EQ(loaded.constraints().size(), m.model().constraints().size());
  for (size_t i = 0; i < loaded.constraints().size(); ++i) {
    EXPECT_EQ(loaded.constraints()[i].label, m.model().constraints()[i].label);
    EXPECT_EQ(loaded.constraints()[i].delay, m.model().constraints()[i].delay)
        << "hex-float serialization must preserve constraint " << i << " bits";
  }

  std::ostringstream os2;
  loaded.save(os2);
  EXPECT_EQ(os2.str(), text);
}

}  // namespace
}  // namespace hssta::frontend
