// Differential fuzz harness for the incremental re-analysis engine
// (IncrementalDifferential suite): across 50 seeded random multi-module
// designs, each of the four change kinds — geometry-compatible module
// swap, instance move, connection rewire, parameter sigma scaling — must
// produce results BIT-identical to a from-scratch flow::Design analysis of
// the changed design, at 1 / 2 / 4 threads, and reverting the change must
// reproduce the base analysis bit for bit (the module -> design ->
// unchanged round trip). Plus unit coverage of the engine lifecycle, the
// full-rebuild fallback, the scenario runner and the sigma config key.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "hssta/flow/flow.hpp"
#include "hssta/incr/design_state.hpp"
#include "hssta/incr/scenario.hpp"
#include "hssta/util/error.hpp"
#include "synthetic_designs.hpp"

namespace hssta {
namespace {

using incr::DesignState;
using timing::CanonicalForm;
using timing::VertexId;

/// The from-scratch truth a state must reproduce: the design delay and the
/// valid arrivals, keyed by stitched vertex name (vertex ids differ —
/// tombstones on the incremental side, compact numbering on the fresh one).
struct Reference {
  CanonicalForm delay;
  std::map<std::string, CanonicalForm> arrivals;
  size_t live_vertices = 0;
};

Reference analyze_reference(const flow::Design& d) {
  const hier::HierResult& r = d.analyze();
  Reference ref;
  ref.delay = r.delay();
  const timing::TimingGraph& g = r.design_graph;
  ref.live_vertices = g.num_live_vertices();
  for (VertexId v = 0; v < g.num_vertex_slots(); ++v) {
    if (!g.vertex_alive(v) || !r.ssta.arrivals.valid[v]) continue;
    ref.arrivals.emplace(g.vertex(v).name, r.ssta.arrivals.time.form(v));
  }
  return ref;
}

void expect_matches(const DesignState& st, const Reference& ref,
                    const std::string& what) {
  EXPECT_TRUE(st.delay() == ref.delay)
      << what << ": delay mismatch (" << st.delay().nominal() << " +/- "
      << st.delay().sigma() << " vs " << ref.delay.nominal() << " +/- "
      << ref.delay.sigma() << ")";
  const timing::TimingGraph& g = st.graph();
  ASSERT_EQ(g.num_live_vertices(), ref.live_vertices) << what;
  size_t valid = 0;
  for (VertexId v = 0; v < g.num_vertex_slots(); ++v) {
    if (!g.vertex_alive(v)) continue;
    const std::string& name = g.vertex(v).name;
    const auto it = ref.arrivals.find(name);
    if (!st.arrivals().valid[v]) {
      EXPECT_TRUE(it == ref.arrivals.end())
          << what << ": " << name << " unreached incrementally only";
      continue;
    }
    ++valid;
    ASSERT_TRUE(it != ref.arrivals.end())
        << what << ": " << name << " reached incrementally only";
    EXPECT_TRUE(st.arrivals().time.form(v) == it->second)
        << what << ": arrival mismatch at " << name;
  }
  EXPECT_EQ(valid, ref.arrivals.size()) << what;
}

/// The deterministic change menu of one seed.
struct Changes {
  size_t swap_inst = 0;
  std::shared_ptr<const model::TimingModel> variant;
  size_t move_inst = 0;
  double move_x = 0.0, move_y = 0.0;
  bool has_rewire = false;
  size_t conn = 0;
  hier::PortRef rewire_from, rewire_to;
  size_t sigma_param = 0;
  double sigma_scale = 1.25;
};

Changes make_changes(uint64_t seed, const testing::DesignSpec& spec,
                     const std::vector<flow::Module>& pool) {
  std::mt19937_64 rng(seed * 77 + 5);
  auto pick = [&](size_t n) { return static_cast<size_t>(rng() % n); };
  const size_t n = spec.instances.size();

  Changes c;
  c.swap_inst = pick(n);
  c.variant = testing::scaled_variant(
      pool[spec.instances[c.swap_inst].module].model(), 0.9);
  c.move_inst = pick(n);
  c.move_x = spec.instances[c.move_inst].x + 13.0;
  c.move_y = spec.instances[c.move_inst].y + 6.0;
  if (!spec.connections.empty()) {
    c.has_rewire = true;
    c.conn = pick(spec.connections.size());
    const testing::DesignSpec::Conn& cn = spec.connections[c.conn];
    c.rewire_from =
        hier::PortRef{cn.from,
                      (cn.from_port + 1) % testing::kDesignModuleOutputs};
    size_t fi = 0, fp = 0;
    // Retarget to an undriven, non-PI input when one exists downstream of
    // the source (keeps the design acyclic); otherwise only the source
    // port moves.
    if (testing::find_free_input(spec, &fi, &fp) && fi > cn.from)
      c.rewire_to = hier::PortRef{fi, fp};
    else
      c.rewire_to = hier::PortRef{cn.to, cn.to_port};
  }
  c.sigma_param = pick(3);
  return c;
}

class IncrementalDifferential : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cfg_ = new flow::Config(testing::design_pool_config());
    pool_ = new std::vector<flow::Module>(testing::make_module_pool(*cfg_));
  }
  static void TearDownTestSuite() {
    delete pool_;
    pool_ = nullptr;
    delete cfg_;
    cfg_ = nullptr;
  }

  static flow::Config* cfg_;
  static std::vector<flow::Module>* pool_;
};

flow::Config* IncrementalDifferential::cfg_ = nullptr;
std::vector<flow::Module>* IncrementalDifferential::pool_ = nullptr;

/// Seed count of the main fuzz loop: 50 (the acceptance bar) by default;
/// HSSTA_INCR_FUZZ_SEEDS overrides it so the TSan CI job — an order of
/// magnitude slower per seed, hunting races rather than seed coverage —
/// can run a reduced set inside its test timeout.
uint64_t fuzz_seeds() {
  if (const char* env = std::getenv("HSSTA_INCR_FUZZ_SEEDS")) {
    const uint64_t n = std::strtoull(env, nullptr, 10);
    if (n > 0) return n;
  }
  return 50;
}

TEST_F(IncrementalDifferential, MatchesFromScratchAcrossChangesAndThreads) {
  const std::vector<flow::Module>& pool = *pool_;
  const uint64_t kSeeds = fuzz_seeds();
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const testing::DesignSpec spec = testing::make_design_spec(seed, pool);
    flow::Config cfg = *cfg_;
    // Mostly the paper's replacement mode; every fourth seed runs the
    // global-only baseline (different layout, private spatial slots).
    if (seed % 4 == 3) cfg.hier.mode = hier::CorrelationMode::kGlobalOnly;
    const Changes ch = make_changes(seed, spec, pool);

    // From-scratch references (serial; thread count never changes bits).
    const Reference ref_base =
        analyze_reference(testing::build_design(spec, pool, cfg));
    const Reference ref_swap = analyze_reference(testing::build_design(
        spec, pool, cfg, {{ch.swap_inst, ch.variant}}));
    testing::DesignSpec moved = spec;
    moved.instances[ch.move_inst].x = ch.move_x;
    moved.instances[ch.move_inst].y = ch.move_y;
    const Reference ref_move =
        analyze_reference(testing::build_design(moved, pool, cfg));
    Reference ref_rewire;
    if (ch.has_rewire) {
      testing::DesignSpec rewired = spec;
      rewired.connections[ch.conn] = {ch.rewire_from.instance,
                                      ch.rewire_from.port,
                                      ch.rewire_to.instance,
                                      ch.rewire_to.port};
      ref_rewire = analyze_reference(testing::build_design(rewired, pool, cfg));
    }
    flow::Config sigma_cfg = cfg;
    sigma_cfg.hier.param_sigma_scale.assign(3, 1.0);
    sigma_cfg.hier.param_sigma_scale[ch.sigma_param] = ch.sigma_scale;
    const Reference ref_sigma =
        analyze_reference(testing::build_design(spec, pool, sigma_cfg));

    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      flow::Config tcfg = cfg;
      tcfg.threads = threads;
      const flow::Design d = testing::build_design(spec, pool, tcfg);
      DesignState& st = d.incremental();
      expect_matches(st, ref_base, "base");

      // Swap to a geometry-identical variant: the cheap path — no full
      // rebuild, and the untouched upstream cone is not recomputed.
      const uint64_t builds_before = st.stats().full_builds;
      st.replace_module(ch.swap_inst, ch.variant);
      st.analyze();
      EXPECT_EQ(st.stats().full_builds, builds_before) << "swap rebuilt";
      EXPECT_LT(st.stats().vertices_recomputed, st.stats().vertices_live);
      expect_matches(st, ref_swap, "swap");
      st.replace_module(ch.swap_inst,
                        pool[spec.instances[ch.swap_inst].module].model_ptr());
      st.analyze();
      expect_matches(st, ref_base, "swap revert");

      st.move_instance(ch.move_inst, ch.move_x, ch.move_y);
      st.analyze();
      expect_matches(st, ref_move, "move");
      st.move_instance(ch.move_inst, spec.instances[ch.move_inst].x,
                       spec.instances[ch.move_inst].y);
      st.analyze();
      expect_matches(st, ref_base, "move revert");

      if (ch.has_rewire) {
        const testing::DesignSpec::Conn& cn = spec.connections[ch.conn];
        st.rewire_connection(ch.conn, ch.rewire_from, ch.rewire_to);
        st.analyze();
        expect_matches(st, ref_rewire, "rewire");
        st.rewire_connection(ch.conn, hier::PortRef{cn.from, cn.from_port},
                             hier::PortRef{cn.to, cn.to_port});
        st.analyze();
        expect_matches(st, ref_base, "rewire revert");
      }

      st.set_parameter_sigma(ch.sigma_param, ch.sigma_scale);
      st.analyze();
      expect_matches(st, ref_sigma, "sigma");
      st.set_parameter_sigma(ch.sigma_param, 1.0);
      st.analyze();
      expect_matches(st, ref_base, "sigma revert");
    }
  }
}

TEST_F(IncrementalDifferential, ChainedChangesFlushInOneAnalyze) {
  const std::vector<flow::Module>& pool = *pool_;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const testing::DesignSpec spec = testing::make_design_spec(seed, pool);
    const Changes ch = make_changes(seed, spec, pool);

    testing::DesignSpec moved = spec;
    moved.instances[ch.move_inst].x = ch.move_x;
    moved.instances[ch.move_inst].y = ch.move_y;
    flow::Config cfg = *cfg_;
    cfg.hier.param_sigma_scale.assign(3, 1.0);
    cfg.hier.param_sigma_scale[ch.sigma_param] = ch.sigma_scale;
    const Reference ref = analyze_reference(
        testing::build_design(moved, pool, cfg, {{ch.swap_inst, ch.variant}}));

    flow::Config tcfg = *cfg_;
    tcfg.threads = 2;
    const flow::Design d = testing::build_design(spec, pool, tcfg);
    DesignState& st = d.incremental();
    st.replace_module(ch.swap_inst, ch.variant);
    st.move_instance(ch.move_inst, ch.move_x, ch.move_y);
    st.set_parameter_sigma(ch.sigma_param, ch.sigma_scale);
    st.analyze();  // one flush for all three
    expect_matches(st, ref, "swap+move+sigma");
  }
}

/// A fixed 3-instance spec for the swap+rewire interaction regressions:
/// c0: u0.o0 -> u1.i0, c1: u1.o0 -> u2.i0; u2.i3 left free (retarget).
testing::DesignSpec make_trio_spec(const std::vector<flow::Module>& pool) {
  testing::DesignSpec spec;
  spec.name = "trio";
  double x = 0.0;
  for (size_t i = 0; i < 3; ++i) {
    spec.instances.push_back({i % testing::kPoolBases, x, 0.0});
    x += pool[i % testing::kPoolBases].model().die().width;
  }
  spec.connections.push_back({0, 0, 1, 0});
  spec.connections.push_back({1, 0, 2, 0});
  for (size_t i = 0; i < 3; ++i)
    for (size_t p = 0; p < testing::kDesignModuleInputs; ++p) {
      const bool driven = (i == 1 && p == 0) || (i == 2 && p == 0);
      if (driven || (i == 2 && p == 3)) continue;  // u2.i3 stays free
      spec.primary_inputs.push_back(
          {"pi_" + std::to_string(i) + "_" + std::to_string(p), i, p});
    }
  for (size_t i = 0; i < 3; ++i)
    for (size_t p = 0; p < testing::kDesignModuleOutputs; ++p) {
      if ((i == 0 || i == 1) && p == 0) continue;  // read by c0/c1
      spec.primary_outputs.push_back(
          {"po_" + std::to_string(i) + "_" + std::to_string(p), i, p});
    }
  return spec;
}

TEST_F(IncrementalDifferential, SwapPlusRewireOntoSwappedInstanceOneFlush) {
  // Regression: rewire c0 so its NEW target lands on the instance being
  // swapped in the same flush, while its OLD edge (u0 -> u1) touches
  // neither restitched instance. The restitch must not orphan the old
  // edge (a ghost driver of u1.i0 silently breaking bit-identity).
  const std::vector<flow::Module>& pool = *pool_;
  const testing::DesignSpec spec = make_trio_spec(pool);
  const auto variant = testing::scaled_variant(
      pool[spec.instances[2].module].model(), 0.9);

  testing::DesignSpec changed = spec;
  changed.connections[0] = {0, 1, 2, 3};
  const Reference ref = analyze_reference(
      testing::build_design(changed, pool, *cfg_, {{2, variant}}));

  const flow::Design d = testing::build_design(spec, pool, *cfg_);
  DesignState& st = d.incremental();
  st.replace_module(2, variant);
  st.rewire_connection(0, hier::PortRef{0, 1}, hier::PortRef{2, 3});
  st.analyze();
  expect_matches(st, ref, "swap+rewire-onto-swapped");
  // And back: reverting both must reproduce the base bits.
  st.replace_module(2, pool[spec.instances[2].module].model_ptr());
  st.rewire_connection(0, hier::PortRef{0, 0}, hier::PortRef{1, 0});
  st.analyze();
  expect_matches(st, analyze_reference(testing::build_design(spec, pool,
                                                             *cfg_)),
                 "swap+rewire revert");
}

TEST_F(IncrementalDifferential, SwapPlusRewireAwayFromDeadSourceOneFlush) {
  // Regression: c1's OLD source sits on the swapped instance (its edge
  // dies with the subgraph) and the rewire moves it elsewhere — the
  // abandoned old target u2.i0 lost its driver and must still be
  // re-propagated (it was reachable only through that edge).
  const std::vector<flow::Module>& pool = *pool_;
  const testing::DesignSpec spec = make_trio_spec(pool);
  const auto variant = testing::scaled_variant(
      pool[spec.instances[1].module].model(), 0.85);

  testing::DesignSpec changed = spec;
  changed.connections[1] = {0, 2, 2, 3};  // u0.o2 -> u2.i3; u2.i0 abandoned
  const Reference ref = analyze_reference(
      testing::build_design(changed, pool, *cfg_, {{1, variant}}));

  const flow::Design d = testing::build_design(spec, pool, *cfg_);
  DesignState& st = d.incremental();
  st.replace_module(1, variant);
  st.rewire_connection(1, hier::PortRef{0, 2}, hier::PortRef{2, 3});
  st.analyze();
  expect_matches(st, ref, "swap+rewire-away");
}

TEST_F(IncrementalDifferential, GlobalOnlyMovePlusRewireKeepsGridFresh) {
  // Regression: a global-only move flushed together with a rewire must
  // still refresh the introspection grid (the move does not change the
  // analysis, but grid() reflects placements).
  const std::vector<flow::Module>& pool = *pool_;
  const testing::DesignSpec spec = make_trio_spec(pool);
  flow::Config cfg = *cfg_;
  cfg.hier.mode = hier::CorrelationMode::kGlobalOnly;
  const flow::Design d = testing::build_design(spec, pool, cfg);
  DesignState& st = d.incremental();
  const double new_x = spec.instances[2].x + 21.0;
  st.move_instance(2, new_x, 5.0);
  st.rewire_connection(1, hier::PortRef{1, 1}, hier::PortRef{2, 0});
  st.analyze();
  const size_t g2 = st.grid().instance_grids[2].front();
  EXPECT_NEAR(st.grid().geometry.centers[g2].x - new_x,
              st.grid().geometry.centers[st.grid().instance_grids[0].front()]
                      .x -
                  spec.instances[0].x,
              1e-9);
}

TEST_F(IncrementalDifferential, IncompatibleSwapFallsBackToFullRebuild) {
  const std::vector<flow::Module>& pool = *pool_;
  const testing::DesignSpec spec = testing::make_design_spec(1, pool);
  // A *different* pool module: same pitch (so the design still stitches)
  // but a bitwise-different die and different internals — the coefficient
  // layout cannot be reused.
  const std::shared_ptr<const model::TimingModel> big =
      pool[(spec.instances[0].module + 1) % testing::kPoolBases].model_ptr();
  const Reference ref =
      analyze_reference(testing::build_design(spec, pool, *cfg_, {{0, big}}));

  const flow::Design d = testing::build_design(spec, pool, *cfg_);
  DesignState& st = d.incremental();
  const uint64_t builds = st.stats().full_builds;
  st.replace_module(0, big);  // different die: the layout is invalidated
  st.analyze();
  EXPECT_EQ(st.stats().full_builds, builds + 1);
  expect_matches(st, ref, "incompatible swap");
}

TEST_F(IncrementalDifferential, ScenarioRunnerMatchesFromScratch) {
  const std::vector<flow::Module>& pool = *pool_;
  for (const uint64_t seed : {uint64_t{3}, uint64_t{7}}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const testing::DesignSpec spec = testing::make_design_spec(seed, pool);
    const Changes ch = make_changes(seed, spec, pool);

    std::vector<incr::Scenario> scenarios;
    scenarios.push_back(
        {"swap", {incr::ReplaceModule{ch.swap_inst, ch.variant}}});
    scenarios.push_back(
        {"move", {incr::MoveInstance{ch.move_inst, ch.move_x, ch.move_y}}});
    if (ch.has_rewire)
      scenarios.push_back({"rewire",
                           {incr::RewireConnection{ch.conn, ch.rewire_from,
                                                   ch.rewire_to}}});
    scenarios.push_back(
        {"sigma", {incr::SigmaScale{ch.sigma_param, ch.sigma_scale}}});
    scenarios.push_back(
        {"invalid", {incr::MoveInstance{spec.instances.size() + 10, 0, 0}}});

    flow::Config tcfg = *cfg_;
    tcfg.threads = 4;
    const flow::Design d = testing::build_design(spec, pool, tcfg);
    const std::vector<incr::ScenarioResult> results = d.scenarios(scenarios);
    ASSERT_EQ(results.size(), scenarios.size());

    auto expect_delay = [&](const incr::ScenarioResult& r,
                            const Reference& ref) {
      ASSERT_TRUE(r.ok()) << r.label << ": " << r.error;
      EXPECT_TRUE(r.delay == ref.delay) << r.label;
    };
    expect_delay(results[0],
                 analyze_reference(testing::build_design(
                     spec, pool, *cfg_, {{ch.swap_inst, ch.variant}})));
    testing::DesignSpec moved = spec;
    moved.instances[ch.move_inst].x = ch.move_x;
    moved.instances[ch.move_inst].y = ch.move_y;
    expect_delay(results[1],
                 analyze_reference(testing::build_design(moved, pool, *cfg_)));
    if (ch.has_rewire) {
      testing::DesignSpec rewired = spec;
      rewired.connections[ch.conn] = {ch.rewire_from.instance,
                                      ch.rewire_from.port,
                                      ch.rewire_to.instance,
                                      ch.rewire_to.port};
      expect_delay(results[2], analyze_reference(testing::build_design(
                                   rewired, pool, *cfg_)));
    }
    flow::Config sigma_cfg = *cfg_;
    sigma_cfg.hier.param_sigma_scale.assign(3, 1.0);
    sigma_cfg.hier.param_sigma_scale[ch.sigma_param] = ch.sigma_scale;
    expect_delay(results[results.size() - 2],
                 analyze_reference(
                     testing::build_design(spec, pool, sigma_cfg)));
    EXPECT_FALSE(results.back().ok());
    EXPECT_FALSE(results.back().error.empty());

    // The failed scenario must not have poisoned the shared base.
    EXPECT_TRUE(d.analyze_incremental() == d.analyze().delay());
  }
}

TEST_F(IncrementalDifferential, LifecycleAndNoOpChanges) {
  const std::vector<flow::Module>& pool = *pool_;
  const testing::DesignSpec spec = testing::make_design_spec(5, pool);
  const flow::Design d = testing::build_design(spec, pool, *cfg_);
  DesignState& st = d.incremental();  // analyzed on first use
  EXPECT_FALSE(st.pending());
  EXPECT_EQ(st.stats().full_builds, 1u);

  // No-op changes record nothing.
  st.move_instance(0, spec.instances[0].x, spec.instances[0].y);
  st.set_parameter_sigma(0, 1.0);
  EXPECT_FALSE(st.pending());

  st.set_parameter_sigma(0, 1.1);
  EXPECT_TRUE(st.pending());
  const CanonicalForm scaled = st.analyze();
  EXPECT_FALSE(st.pending());
  EXPECT_FALSE(scaled == d.analyze().delay());  // the scaling is real

  // Out-of-range arguments throw without recording anything.
  EXPECT_THROW(st.replace_module(99, nullptr), Error);
  EXPECT_THROW(st.move_instance(99, 0, 0), Error);
  EXPECT_THROW(st.rewire_connection(9999, {}, {}), Error);
  EXPECT_THROW(st.set_parameter_sigma(99, 1.0), Error);
  EXPECT_FALSE(st.pending());

  st.set_parameter_sigma(0, 1.0);  // back to the base configuration
  st.analyze();

  // An invalid change throws at analyze() (like a from-scratch build) and
  // the engine recovers on the next analyze.
  if (!spec.connections.empty()) {
    const testing::DesignSpec::Conn& cn = spec.connections[0];
    st.rewire_connection(0, hier::PortRef{cn.from, 99},
                         hier::PortRef{cn.to, cn.to_port});
    EXPECT_THROW(st.analyze(), Error);
    st.rewire_connection(0, hier::PortRef{cn.from, cn.from_port},
                         hier::PortRef{cn.to, cn.to_port});
    st.analyze();
    expect_matches(st, analyze_reference(testing::build_design(spec, pool,
                                                               *cfg_)),
                   "recovered");
  }
}

TEST(ScenarioProvenance, DescribesChangesAndStampsFailedResults) {
  using incr::Change;
  const std::vector<Change> changes{
      incr::MoveInstance{0, 3.0, 0.0},
      incr::SigmaScale{1, 1.2},
      incr::RewireConnection{2, hier::PortRef{0, 1}, hier::PortRef{1, 0}},
  };
  EXPECT_EQ(incr::describe_change(changes[0]), "move u0 to (3, 0)");
  EXPECT_EQ(incr::describe_change(changes[1]), "sigma p1 x1.2");
  EXPECT_EQ(incr::describe_change(changes[2]), "rewire c2 to u0.o1:u1.i0");
  EXPECT_EQ(incr::describe_changes(changes),
            "move u0 to (3, 0); sigma p1 x1.2; rewire c2 to u0.o1:u1.i0");

  // Runner results carry the batch index and the change description even
  // (especially) when the scenario fails — the server's error payloads
  // and the sweep report both surface them.
  const flow::Config cfg = testing::design_pool_config();
  const std::vector<flow::Module> pool = testing::make_module_pool(cfg);
  const testing::DesignSpec spec = testing::make_design_spec(7, pool);
  const flow::Design d = testing::build_design(spec, pool, cfg);
  const std::vector<incr::Scenario> scenarios{
      {"ok", {incr::SigmaScale{0, 0.9}}},
      {"bad-move", {incr::MoveInstance{99, 0.0, 0.0}}},
      {"ok2", {incr::SigmaScale{0, 1.1}}},
  };
  const std::vector<incr::ScenarioResult> results = d.scenarios(scenarios);
  ASSERT_EQ(results.size(), 3u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].changes,
              incr::describe_changes(scenarios[i].changes));
  }
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
  EXPECT_FALSE(results[1].error.empty());
}

TEST(IncrementalConfig, SigmaScaleKeyParses) {
  const flow::Config cfg =
      flow::Config::from_string("[hier]\nsigma_scale = 1, 0.8, 1.25\n");
  ASSERT_EQ(cfg.hier.param_sigma_scale.size(), 3u);
  EXPECT_EQ(cfg.hier.param_sigma_scale[0], 1.0);
  EXPECT_EQ(cfg.hier.param_sigma_scale[1], 0.8);
  EXPECT_EQ(cfg.hier.param_sigma_scale[2], 1.25);
  EXPECT_THROW(flow::Config::from_string("[hier]\nsigma_scale = 1, x\n"),
               Error);
  EXPECT_THROW(flow::Config::from_string("hier.sigma_scale = \n"), Error);
}

}  // namespace
}  // namespace hssta
