// Tests for the flow:: pipeline facade: module results bit-match the
// hand-wired legacy subsystem chain, stages are cached (same object on
// repeated calls), config parsing rejects malformed input, and a model
// saved to .hstm and reloaded into a flow::Design analyzes identically to
// the design built from the live modules.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "fixtures.hpp"
#include "hssta/core/io_delays.hpp"
#include "hssta/flow/flow.hpp"
#include "hssta/hier/hier_ssta.hpp"
#include "hssta/mc/hier_mc.hpp"
#include "hssta/netlist/iscas.hpp"
#include "hssta/util/error.hpp"

namespace hssta::flow {
namespace {

flow::Module small_module(uint64_t seed = 77) {
  return Module::from_random_dag(testing::small_module_spec(seed));
}

/// A design-level fixture: one small module chained a -> b.
Design make_chain_design(const Module& m) {
  const placement::Die mdie = m.model().die();
  Design d("chain");
  const size_t a = d.add_instance(m, 0, 0, "a");
  const size_t b = d.add_instance(m, mdie.width, 0, "b");
  const size_t ni = d.num_inputs(a);
  const size_t no = d.num_outputs(a);
  for (size_t k = 0; k < ni; ++k) d.connect(a, k % no, b, k);
  for (size_t k = 0; k < ni; ++k)
    d.primary_input("p" + std::to_string(k), a, k);
  for (size_t k = 0; k < no; ++k)
    d.primary_output("q" + std::to_string(k), b, k);
  return d;
}

TEST(FlowModule, BitMatchesLegacyChainOnIscasFixture) {
  // The hand-wired legacy chain, exactly as every consumer used to spell
  // it out.
  const library::CellLibrary& lib = testing::default_lib();
  const netlist::Netlist nl = netlist::make_iscas85("c432", lib);
  const placement::Placement pl = placement::place_rows(nl);
  const variation::ModuleVariation mv = variation::make_module_variation(
      pl, nl.num_gates(), variation::default_90nm_parameters(),
      variation::SpatialCorrelationConfig{});
  const timing::BuiltGraph built = timing::build_timing_graph(nl, pl, mv);
  const core::SstaResult legacy = core::run_ssta(built.graph);
  const model::Extraction legacy_ex = model::extract_timing_model(
      built, mv, nl.name(), model::compute_boundary(nl),
      model::ExtractOptions{0.05, true});

  // The facade with the default config.
  const Module m = Module::from_iscas("c432");
  EXPECT_EQ(m.delay().nominal(), legacy.delay.nominal());
  EXPECT_EQ(m.delay().sigma(), legacy.delay.sigma());
  EXPECT_EQ(m.variation().partition.num_grids(), mv.partition.num_grids());
  EXPECT_EQ(m.variation().space->dim(), mv.space->dim());
  EXPECT_EQ(m.graph().num_live_edges(), built.graph.num_live_edges());

  const model::Extraction& ex = m.extract_model();
  EXPECT_EQ(ex.stats.model_edges, legacy_ex.stats.model_edges);
  EXPECT_EQ(ex.stats.model_vertices, legacy_ex.stats.model_vertices);
  const core::DelayMatrix a = ex.model.io_delays();
  const core::DelayMatrix b = legacy_ex.model.io_delays();
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  for (size_t i = 0; i < a.num_inputs(); ++i)
    for (size_t j = 0; j < a.num_outputs(); ++j) {
      ASSERT_EQ(a.is_valid(i, j), b.is_valid(i, j));
      if (!a.is_valid(i, j)) continue;
      EXPECT_EQ(a.at(i, j).nominal(), b.at(i, j).nominal());
      EXPECT_EQ(a.at(i, j).sigma(), b.at(i, j).sigma());
    }

  // Monte Carlo too: the facade wraps the same FlatCircuit and RNG.
  const mc::FlatCircuit fc = mc::FlatCircuit::from_module(built, nl, mv);
  stats::Rng rng(2009);
  const stats::EmpiricalDistribution ref = fc.sample_delay(500, rng);
  const stats::EmpiricalDistribution& got =
      m.monte_carlo(McOptions{500, 2009});
  EXPECT_EQ(got.mean(), ref.mean());
  EXPECT_EQ(got.stddev(), ref.stddev());
}

TEST(FlowModule, StageCachingReturnsSameObject) {
  const Module m = small_module();
  EXPECT_EQ(&m.placement(), &m.placement());
  EXPECT_EQ(&m.variation(), &m.variation());
  EXPECT_EQ(&m.built(), &m.built());
  EXPECT_EQ(&m.ssta(), &m.ssta());
  EXPECT_EQ(&m.delay(), &m.delay());
  EXPECT_EQ(&m.slack(1.0), &m.slack(1.0));
  EXPECT_EQ(&m.critical_paths(3), &m.critical_paths(3));
  EXPECT_EQ(&m.extract_model(), &m.extract_model());
  EXPECT_EQ(&m.flat_circuit(), &m.flat_circuit());
  EXPECT_EQ(&m.monte_carlo(McOptions{100, 1}),
            &m.monte_carlo(McOptions{100, 1}));

  // Different arguments are distinct cache entries, and earlier references
  // stay valid.
  const core::SlackResult& s1 = m.slack(1.0);
  const core::SlackResult& s2 = m.slack(2.0);
  EXPECT_NE(&s1, &s2);
  EXPECT_EQ(&m.slack(1.0), &s1);
  const model::Extraction& e1 = m.extract_model();
  const model::Extraction& e2 =
      m.extract_model(model::ExtractOptions{0.2, true});
  EXPECT_NE(&e1, &e2);
  EXPECT_EQ(&m.extract_model(), &e1);

  // Copies of the handle share the state and its caches.
  const Module copy = m;  // NOLINT
  EXPECT_EQ(&copy.ssta(), &m.ssta());
}

TEST(FlowModule, FactoriesCoverNetlistSources) {
  const Module bench = Module::from_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nx = NAND(a, b)\n");
  EXPECT_EQ(bench.netlist().num_gates(), 1u);
  EXPECT_GT(bench.delay().nominal(), 0.0);

  const Module iscas = Module::from_iscas("c432");
  EXPECT_EQ(iscas.name(), "c432");
}

TEST(FlowDesign, MatchesHandWiredHierAnalysis) {
  const Module m = small_module();
  const Design d = make_chain_design(m);

  // The same topology spelled out against the subsystem API.
  const placement::Die mdie = m.model().die();
  hier::HierDesign ref("chain", placement::Die{2 * mdie.width, mdie.height});
  const size_t a = ref.add_instance(
      {"a", &m.model(), {0, 0}, &m.netlist(), &m.placement()});
  const size_t b = ref.add_instance(
      {"b", &m.model(), {mdie.width, 0}, &m.netlist(), &m.placement()});
  const size_t ni = m.model().graph().inputs().size();
  const size_t no = m.model().graph().outputs().size();
  for (size_t k = 0; k < ni; ++k)
    ref.add_connection({hier::PortRef{a, k % no}, hier::PortRef{b, k}});
  for (size_t k = 0; k < ni; ++k)
    ref.add_primary_input({"p" + std::to_string(k), {hier::PortRef{a, k}}});
  for (size_t k = 0; k < no; ++k)
    ref.add_primary_output({"q" + std::to_string(k), hier::PortRef{b, k}});
  ref.validate();
  const hier::HierResult expect = hier::analyze_hierarchical(ref);

  const hier::HierResult& got = d.analyze();
  EXPECT_EQ(got.delay().nominal(), expect.delay().nominal());
  EXPECT_EQ(got.delay().sigma(), expect.delay().sigma());

  // Caching and per-option entries, as for modules.
  EXPECT_EQ(&d.analyze(), &got);
  hier::HierOptions glob;
  glob.mode = hier::CorrelationMode::kGlobalOnly;
  EXPECT_NE(&d.analyze(glob), &got);
  EXPECT_EQ(&d.analyze(), &got);

  // Monte Carlo runs because both instances carry their netlists, and
  // matches the subsystem flattener.
  EXPECT_TRUE(d.can_monte_carlo());
  const stats::EmpiricalDistribution ref_mc = mc::hier_flat_mc(ref, 300, 11);
  const stats::EmpiricalDistribution& got_mc =
      d.monte_carlo(McOptions{300, 11});
  EXPECT_EQ(got_mc.mean(), ref_mc.mean());
  EXPECT_EQ(got_mc.stddev(), ref_mc.stddev());
}

TEST(FlowDesign, SaveLoadAnalyzeEquality) {
  const Module m = small_module(91);
  const Design live = make_chain_design(m);

  const std::string path =
      (std::filesystem::temp_directory_path() / "hssta_flow_test.hstm")
          .string();
  m.model().save_file(path);

  // Rebuild the design from the serialized model alone (the IP hand-off:
  // no netlist, no placement).
  const placement::Die mdie = m.model().die();
  Design loaded("chain");
  const size_t a = loaded.add_instance_from_model_file(path, 0, 0, "a");
  const size_t b =
      loaded.add_instance_from_model_file(path, mdie.width, 0, "b");
  const size_t ni = loaded.num_inputs(a);
  const size_t no = loaded.num_outputs(a);
  for (size_t k = 0; k < ni; ++k) loaded.connect(a, k % no, b, k);
  for (size_t k = 0; k < ni; ++k)
    loaded.primary_input("p" + std::to_string(k), a, k);
  for (size_t k = 0; k < no; ++k)
    loaded.primary_output("q" + std::to_string(k), b, k);

  EXPECT_EQ(loaded.analyze().delay().nominal(),
            live.analyze().delay().nominal());
  EXPECT_EQ(loaded.analyze().delay().sigma(), live.analyze().delay().sigma());

  // Model-only instances cannot be flattened for Monte Carlo.
  EXPECT_FALSE(loaded.can_monte_carlo());
  EXPECT_THROW((void)loaded.monte_carlo(McOptions{10, 1}), Error);

  std::remove(path.c_str());
}

TEST(FlowDesign, ExposeUnconnectedPortsCompletesBoundary) {
  const Module m = small_module();
  Design d("auto");
  const size_t a = d.add_instance(m, 0, 0);
  const size_t b = d.add_instance(m, m.model().die().width, 0);
  const size_t no = d.num_outputs(a);
  d.connect(a, 0, b, 0);  // one explicit net; the rest is auto-exposed
  d.expose_unconnected_ports();
  const hier::HierDesign& h = d.hier();  // builds and validates
  EXPECT_EQ(h.primary_inputs().size(),
            d.num_inputs(a) + d.num_inputs(b) - 1);
  EXPECT_EQ(h.primary_outputs().size(), 2 * no - 1);
  EXPECT_GT(d.delay().nominal(), 0.0);
}

TEST(FlowConfig, DefaultsMatchPaperSetup) {
  const Config cfg;
  EXPECT_EQ(cfg.extract.criticality_threshold, 0.05);
  EXPECT_EQ(cfg.max_cells_per_grid, 100u);
  EXPECT_EQ(cfg.correlation.rho_neighbor, 0.92);
  EXPECT_EQ(cfg.correlation.rho_global, 0.42);
  EXPECT_EQ(cfg.parameters.params.size(), 3u);
  EXPECT_EQ(cfg.mc.samples, 10000u);
}

TEST(FlowConfig, ParsesSectionsKeysAndComments) {
  const Config cfg = Config::from_string(
      "# run configuration\n"
      "grid.max_cells = 50\n"
      "\n"
      "[extract]\n"
      "delta = 0.1          # knee of the ablation curve\n"
      "repair_connectivity = false\n"
      "[hier]\n"
      "mode = global_only\n"
      "interconnect_delay = 0.02\n"
      "pca.max_components = 7\n"
      "[mc]\n"
      "samples = 1234\n"
      "seed = 42\n");
  EXPECT_EQ(cfg.max_cells_per_grid, 50u);
  EXPECT_EQ(cfg.extract.criticality_threshold, 0.1);
  EXPECT_FALSE(cfg.extract.repair_connectivity);
  EXPECT_EQ(cfg.hier.mode, hier::CorrelationMode::kGlobalOnly);
  EXPECT_EQ(cfg.hier.interconnect_delay, 0.02);
  EXPECT_EQ(cfg.hier.pca.max_components, 7u);
  EXPECT_EQ(cfg.mc.samples, 1234u);
  EXPECT_EQ(cfg.mc.seed, 42u);
}

TEST(FlowConfig, RejectsMalformedInput) {
  // Unknown keys.
  EXPECT_THROW((void)Config::from_string("no_such_key = 1\n"), Error);
  EXPECT_THROW((void)Config::from_string("[extract]\ntypo_delta = 0.1\n"),
               Error);
  // Malformed values.
  EXPECT_THROW((void)Config::from_string("extract.delta = fast\n"), Error);
  EXPECT_THROW((void)Config::from_string("mc.samples = -5\n"), Error);
  EXPECT_THROW((void)Config::from_string("mc.samples = 12x\n"), Error);
  EXPECT_THROW(
      (void)Config::from_string("extract.repair_connectivity = maybe\n"),
      Error);
  EXPECT_THROW((void)Config::from_string("hier.mode = flat\n"), Error);
  // Malformed structure.
  EXPECT_THROW((void)Config::from_string("just a line\n"), Error);
  EXPECT_THROW((void)Config::from_string("= 3\n"), Error);
  EXPECT_THROW((void)Config::from_string("extract.delta =\n"), Error);
  EXPECT_THROW((void)Config::from_string("[unterminated\nx = 1\n"), Error);
  EXPECT_THROW((void)Config::from_string("[]\n"), Error);
  // Errors carry the origin and line number.
  try {
    (void)Config::from_string("\n\nbad_key = 1\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("<string>:3"), std::string::npos)
        << e.what();
  }
  // Missing files.
  EXPECT_THROW((void)Config::from_file("/nonexistent/flow.cfg"), Error);
}

TEST(FlowConfig, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hssta_flow_test.cfg")
          .string();
  {
    std::ofstream os(path);
    os << "[extract]\ndelta = 0.08\n";
  }
  const Config cfg = Config::from_file(path);
  EXPECT_EQ(cfg.extract.criticality_threshold, 0.08);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hssta::flow
