// Unit tests for hssta/netlist: construction invariants, topological order,
// depth, boolean simulation, and .bench round-trips.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "hssta/library/cell_library.hpp"
#include "hssta/netlist/bench_io.hpp"
#include "hssta/netlist/netlist.hpp"
#include "hssta/util/error.hpp"

namespace hssta::netlist {
namespace {

using library::CellLibrary;

const CellLibrary& lib() {
  static const CellLibrary l = library::default_90nm();
  return l;
}

/// y = NAND(a, b); z = NOT(y). POs: z.
Netlist tiny() {
  Netlist nl("tiny");
  const NetId a = nl.add_primary_input("a");
  const NetId b = nl.add_primary_input("b");
  const NetId y = nl.add_net("y");
  const NetId z = nl.add_net("z");
  nl.add_gate("g1", &lib().get("NAND2"), {a, b}, y);
  nl.add_gate("g2", &lib().get("INV"), {y}, z);
  nl.mark_primary_output(z);
  return nl;
}

TEST(Netlist, BasicConstruction) {
  Netlist nl = tiny();
  EXPECT_EQ(nl.num_nets(), 4u);
  EXPECT_EQ(nl.num_gates(), 2u);
  EXPECT_EQ(nl.num_pins(), 3u);
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_TRUE(nl.is_primary_input(0));
  EXPECT_FALSE(nl.is_primary_input(2));
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.net_by_name("y"), 2u);
  EXPECT_THROW((void)nl.net_by_name("nope"), Error);
}

TEST(Netlist, RejectsDoubleDriver) {
  Netlist nl = tiny();
  EXPECT_THROW(nl.add_gate("bad", &lib().get("INV"), {0}, 2), Error);
}

TEST(Netlist, RejectsDrivenPrimaryInput) {
  Netlist nl("x");
  const NetId a = nl.add_primary_input("a");
  const NetId y = nl.add_net("y");
  nl.add_gate("g", &lib().get("INV"), {a}, y);
  EXPECT_THROW(nl.mark_primary_input(y), Error);
}

TEST(Netlist, RejectsArityMismatch) {
  Netlist nl("x");
  const NetId a = nl.add_primary_input("a");
  const NetId y = nl.add_net("y");
  EXPECT_THROW(nl.add_gate("g", &lib().get("NAND2"), {a}, y), Error);
}

TEST(Netlist, TopologicalOrderRespectsDependencies) {
  Netlist nl = tiny();
  const auto order = nl.topological_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0u);  // NAND before INV
  EXPECT_EQ(order[1], 1u);
}

TEST(Netlist, TopologicalOrderHandlesSameNetTwice) {
  // XOR2(a, a): a gate consuming one net on two pins.
  Netlist nl("dup");
  const NetId a = nl.add_primary_input("a");
  const NetId b = nl.add_net("b");
  const NetId y = nl.add_net("y");
  nl.add_gate("g0", &lib().get("INV"), {a}, b);
  nl.add_gate("g1", &lib().get("XOR2"), {b, b}, y);
  nl.mark_primary_output(y);
  const auto order = nl.topological_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0u);
  const auto v = nl.simulate({true});
  EXPECT_FALSE(v[y]);  // x ^ x == 0
}

TEST(Netlist, DepthOfChain) {
  Netlist nl("chain");
  NetId prev = nl.add_primary_input("a");
  for (int i = 0; i < 5; ++i) {
    const NetId next = nl.add_net("n" + std::to_string(i));
    nl.add_gate("g" + std::to_string(i), &lib().get("INV"), {prev}, next);
    prev = next;
  }
  nl.mark_primary_output(prev);
  EXPECT_EQ(nl.depth(), 5u);
}

TEST(Netlist, SimulateNandInv) {
  Netlist nl = tiny();
  // z = NOT(NAND(a,b)) = a AND b.
  for (bool a : {false, true})
    for (bool b : {false, true}) {
      const auto v = nl.simulate({a, b});
      EXPECT_EQ(v[nl.primary_outputs()[0]], a && b);
    }
}

TEST(Netlist, ValidateCatchesUndrivenNet) {
  Netlist nl("bad");
  const NetId a = nl.add_primary_input("a");
  const NetId y = nl.add_net("y");
  const NetId dangling = nl.add_net("floats");
  const NetId z = nl.add_net("z");
  nl.add_gate("g", &lib().get("INV"), {a}, y);
  nl.add_gate("g2", &lib().get("NAND2"), {y, dangling}, z);
  nl.mark_primary_output(z);
  EXPECT_THROW(nl.validate(), Error);
}

TEST(BenchIo, ParsesSimpleCircuit) {
  const char* text = R"(
# simple test circuit
INPUT(a)
INPUT(b)
OUTPUT(z)
y = NAND(a, b)
z = NOT(y)
)";
  Netlist nl = read_bench_string(text, lib(), "simple");
  EXPECT_EQ(nl.num_gates(), 2u);
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  const auto v = nl.simulate({true, true});
  EXPECT_TRUE(v[nl.primary_outputs()[0]]);
}

TEST(BenchIo, DecomposesWideGates) {
  // 7-input NAND: must decompose into AND tree + NAND while staying
  // logically a 7-input NAND.
  std::string text;
  for (int i = 0; i < 7; ++i)
    text += "INPUT(i" + std::to_string(i) + ")\n";
  text += "OUTPUT(z)\n";
  text += "z = NAND(i0, i1, i2, i3, i4, i5, i6)\n";
  Netlist nl = read_bench_string(text, lib(), "wide");
  EXPECT_GT(nl.num_gates(), 1u);
  for (GateId g = 0; g < nl.num_gates(); ++g)
    EXPECT_LE(nl.gate(g).fanins.size(), 4u);
  // Exhaustive functional check.
  for (uint32_t mask = 0; mask < (1u << 7); ++mask) {
    std::vector<bool> pi(7);
    for (int i = 0; i < 7; ++i) pi[i] = (mask >> i) & 1u;
    const auto v = nl.simulate(pi);
    EXPECT_EQ(v[nl.primary_outputs()[0]], mask != (1u << 7) - 1) << mask;
  }
}

TEST(BenchIo, SingleInputWideFunctionsDegenerate) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
OUTPUT(z)
y = AND(a)
z = NOR(a)
)";
  Netlist nl = read_bench_string(text, lib(), "degenerate");
  const auto v1 = nl.simulate({true});
  EXPECT_TRUE(v1[nl.net_by_name("y")]);
  EXPECT_FALSE(v1[nl.net_by_name("z")]);
  const auto v0 = nl.simulate({false});
  EXPECT_FALSE(v0[nl.net_by_name("y")]);
  EXPECT_TRUE(v0[nl.net_by_name("z")]);
}

TEST(BenchIo, RoundTripPreservesStructureAndFunction) {
  const char* text = R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(out)
t1 = XOR(a, b)
t2 = OR(b, c)
out = AND(t1, t2)
)";
  Netlist nl1 = read_bench_string(text, lib(), "rt");
  Netlist nl2 = read_bench_string(write_bench_string(nl1), lib(), "rt2");
  EXPECT_EQ(nl1.num_gates(), nl2.num_gates());
  EXPECT_EQ(nl1.num_pins(), nl2.num_pins());
  for (uint32_t mask = 0; mask < 8; ++mask) {
    std::vector<bool> pi{bool(mask & 1), bool(mask & 2), bool(mask & 4)};
    EXPECT_EQ(nl1.simulate(pi)[nl1.primary_outputs()[0]],
              nl2.simulate(pi)[nl2.primary_outputs()[0]]);
  }
}

TEST(BenchIo, DffLinesBecomeRegisterRecords) {
  const char* text =
      "INPUT(a)\nOUTPUT(y)\nq = DFF(d)\nd = NAND(a, q)\ny = NOT(q)\n";
  const Netlist nl = read_bench_string(text, lib(), "seq");
  EXPECT_TRUE(nl.is_sequential());
  ASSERT_EQ(nl.num_registers(), 1u);
  EXPECT_EQ(nl.num_gates(), 2u);
  const Register& r = nl.reg(0);
  EXPECT_EQ(r.name, "q");
  EXPECT_EQ(nl.net_name(r.data_in), "d");
  EXPECT_EQ(nl.net_name(r.data_out), "q");
  // .bench has a single implicit clock: records are unclocked, init
  // unknown.
  EXPECT_EQ(r.clock, kNoNet);
  EXPECT_EQ(r.init, 3);
  EXPECT_TRUE(nl.is_register_output(r.data_out));
  EXPECT_EQ(nl.register_driver(r.data_out), 0u);
  // The register cuts the q -> d loop: the combinational core stays a DAG.
  EXPECT_NO_THROW((void)nl.topological_order());

  // write_bench emits DFF lines and the result re-reads identically.
  const std::string written = write_bench_string(nl);
  EXPECT_NE(written.find("q = DFF(d)"), std::string::npos) << written;
  const Netlist again = read_bench_string(written, lib(), "seq");
  EXPECT_EQ(fingerprint(again), fingerprint(nl));
}

TEST(BenchIo, CombinationalParseIsUntouchedBySequentialSupport) {
  // A DFF-free file must parse exactly as before the sequential
  // extension: no register records, identical fingerprint and bytes
  // through the writer.
  const char* text =
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = NAND(a, b)\ny = NOT(t)\n";
  const Netlist nl = read_bench_string(text, lib(), "comb");
  EXPECT_FALSE(nl.is_sequential());
  EXPECT_EQ(nl.num_registers(), 0u);
  const std::string once = write_bench_string(nl);
  EXPECT_EQ(once.find("DFF"), std::string::npos);
  const Netlist again = read_bench_string(once, lib(), "comb");
  EXPECT_EQ(fingerprint(again), fingerprint(nl));
  EXPECT_EQ(write_bench_string(again), once);
}

TEST(BenchIo, ErrorsCarryLineNumbers) {
  try {
    (void)read_bench_string("INPUT(a)\nz = FROB(a)\n", lib(), "bad");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("frob"), std::string::npos) << what;
    // The offending gate is on line 2 of the string; the origin of a
    // string parse is the "<bench>" placeholder.
    EXPECT_NE(what.find("<bench>:2:"), std::string::npos) << what;
  }
  try {
    (void)read_bench_string("INPUT(a)\n\n# pad\nz = AND(a\n", lib(), "bad2");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    // Blank and comment lines still count toward the reported line.
    EXPECT_NE(std::string(e.what()).find("<bench>:4:"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)read_bench_string("OUTPUT(ghost)\n", lib(), "bad3"),
               Error);
}

TEST(BenchIo, FileErrorsNameThePath) {
  const std::string path = std::string(::testing::TempDir()) +
                           "hssta_bench_err_" + std::to_string(::getpid()) +
                           ".bench";
  {
    std::ofstream out(path);
    out << "INPUT(a)\nOUTPUT(x)\nx = FROB(a)\n";
  }
  try {
    (void)read_bench_file(path, lib());
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(path + ":3:"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(BenchIo, ValidateFalseReturnsDefectiveNetlistForLinting) {
  // An undriven fanin is a structural defect: the default (validating)
  // read throws, while the lint path returns the netlist so hssta::check
  // can report every defect with a rule id instead of dying on the first.
  const char* text = "INPUT(a)\nOUTPUT(x)\nx = AND(a, ghost)\n";
  EXPECT_THROW((void)read_bench_string(text, lib(), "bad"), Error);
  const Netlist nl =
      read_bench_string(text, lib(), "bad", /*validate=*/false);
  EXPECT_EQ(nl.num_gates(), 1u);
  EXPECT_NO_THROW((void)nl.net_by_name("ghost"));
}

}  // namespace
}  // namespace hssta::netlist
