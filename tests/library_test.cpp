// Unit tests for hssta/library: gate function evaluation, cell timing,
// library lookup and the default 90nm library contents.

#include <gtest/gtest.h>

#include "hssta/library/cell_library.hpp"
#include "hssta/util/error.hpp"

namespace hssta::library {
namespace {

TEST(GateFunc, TruthTablesTwoInputs) {
  const bool tt[4][2] = {{false, false}, {false, true}, {true, false},
                         {true, true}};
  for (const auto& row : tt) {
    const std::span<const bool> in(row, 2);
    const bool a = row[0], b = row[1];
    EXPECT_EQ(eval_gate(GateFunc::kAnd, in), a && b);
    EXPECT_EQ(eval_gate(GateFunc::kNand, in), !(a && b));
    EXPECT_EQ(eval_gate(GateFunc::kOr, in), a || b);
    EXPECT_EQ(eval_gate(GateFunc::kNor, in), !(a || b));
    EXPECT_EQ(eval_gate(GateFunc::kXor, in), a != b);
    EXPECT_EQ(eval_gate(GateFunc::kXnor, in), a == b);
  }
}

TEST(GateFunc, UnaryAndParity) {
  const bool t = true, f = false;
  EXPECT_TRUE(eval_gate(GateFunc::kBuf, std::span<const bool>(&t, 1)));
  EXPECT_FALSE(eval_gate(GateFunc::kNot, std::span<const bool>(&t, 1)));
  EXPECT_TRUE(eval_gate(GateFunc::kNot, std::span<const bool>(&f, 1)));
  const bool three[3] = {true, true, true};
  EXPECT_TRUE(eval_gate(GateFunc::kXor, std::span<const bool>(three, 3)));
  EXPECT_FALSE(eval_gate(GateFunc::kXnor, std::span<const bool>(three, 3)));
}

TEST(GateFunc, ArityChecks) {
  const bool two[2] = {true, false};
  EXPECT_THROW((void)eval_gate(GateFunc::kBuf, std::span<const bool>(two, 2)),
               Error);
  EXPECT_THROW((void)eval_gate(GateFunc::kAnd, std::span<const bool>{}),
               Error);
}

TEST(CellType, PinDelayIsIntrinsicPlusLoad) {
  CellType c;
  c.name = "X";
  c.num_inputs = 2;
  c.intrinsic = {0.010, 0.012};
  c.drive_res = 0.004;
  EXPECT_DOUBLE_EQ(c.pin_delay(0, 10.0), 0.010 + 0.04);
  EXPECT_DOUBLE_EQ(c.pin_delay(1, 0.0), 0.012);
  EXPECT_THROW((void)c.pin_delay(2, 0.0), Error);
}

TEST(CellType, SensitivityLookup) {
  CellType c;
  c.sensitivities = {{"Leff", 0.9}, {"Vth", 0.5}};
  EXPECT_DOUBLE_EQ(c.sensitivity("Leff"), 0.9);
  EXPECT_DOUBLE_EQ(c.sensitivity("Vth"), 0.5);
  EXPECT_DOUBLE_EQ(c.sensitivity("Tox"), 0.0);
}

TEST(CellLibrary, AddGetFind) {
  CellLibrary lib;
  CellType c;
  c.name = "FOO2";
  c.func = GateFunc::kAnd;
  c.num_inputs = 2;
  c.intrinsic = {0.01, 0.01};
  lib.add(c);
  EXPECT_EQ(lib.size(), 1u);
  EXPECT_EQ(lib.get("FOO2").name, "FOO2");
  EXPECT_EQ(lib.find("BAR"), nullptr);
  EXPECT_THROW((void)lib.get("BAR"), Error);
  EXPECT_THROW(lib.add(c), Error);  // duplicate
}

TEST(CellLibrary, FindWidestRespectsCap) {
  const CellLibrary lib = default_90nm();
  const CellType* w4 = lib.find_widest(GateFunc::kNand, 8);
  ASSERT_NE(w4, nullptr);
  EXPECT_EQ(w4->num_inputs, 4u);
  const CellType* w2 = lib.find_widest(GateFunc::kNand, 2);
  ASSERT_NE(w2, nullptr);
  EXPECT_EQ(w2->num_inputs, 2u);
  EXPECT_EQ(lib.find_widest(GateFunc::kXor, 1), nullptr);
}

TEST(Default90nm, HasExpectedCellsWithSaneValues) {
  const CellLibrary lib = default_90nm();
  for (const char* name :
       {"INV", "BUF", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4",
        "AND2", "AND3", "AND4", "OR2", "OR3", "OR4", "XOR2", "XNOR2"}) {
    const CellType& c = lib.get(name);
    EXPECT_EQ(c.intrinsic.size(), c.num_inputs) << name;
    for (double d : c.intrinsic) EXPECT_GT(d, 0.0) << name;
    EXPECT_GT(c.drive_res, 0.0) << name;
    EXPECT_GT(c.input_cap, 0.0) << name;
    EXPECT_GT(c.width, 0.0) << name;
    // All three process parameters present with positive sensitivity.
    EXPECT_GT(c.sensitivity("Leff"), 0.0) << name;
    EXPECT_GT(c.sensitivity("Tox"), 0.0) << name;
    EXPECT_GT(c.sensitivity("Vth"), 0.0) << name;
  }
}

TEST(Default90nm, LaterPinsAreSlower) {
  const CellLibrary lib = default_90nm();
  const CellType& nand4 = lib.get("NAND4");
  for (size_t i = 1; i < nand4.num_inputs; ++i)
    EXPECT_GT(nand4.intrinsic[i], nand4.intrinsic[i - 1]);
}

}  // namespace
}  // namespace hssta::library
