// Unit tests for hssta/util: error macros, strings, table, csv, ascii plots.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "hssta/util/ascii_plot.hpp"
#include "hssta/util/csv.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/json.hpp"
#include "hssta/util/strings.hpp"
#include "hssta/util/table.hpp"
#include "hssta/util/timer.hpp"

namespace hssta {
namespace {

TEST(Error, RequireThrowsWithContext) {
  try {
    HSSTA_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

TEST(Error, AssertPassesOnTrue) {
  EXPECT_NO_THROW(HSSTA_ASSERT(2 + 2 == 4, "sanity"));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto f = split("a,,b,", ',');
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[2], "b");
  EXPECT_EQ(f[3], "");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  const auto f = split_ws("  foo \t bar\nbaz  ");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "foo");
  EXPECT_EQ(f[1], "bar");
  EXPECT_EQ(f[2], "baz");
}

TEST(Strings, LowerAndPrefix) {
  EXPECT_EQ(to_lower("NaNd2"), "nand2");
  EXPECT_TRUE(starts_with("INPUT(a)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(Strings, Formatting) {
  EXPECT_EQ(fmt_percent(0.134, 1), "13.4%");
  EXPECT_EQ(fmt_percent(0.2, 0), "20%");
  EXPECT_EQ(fmt_double(0.5), "0.5");
}

TEST(Table, AlignsAndCounts) {
  Table t({"circuit", "Eo", "Em"});
  t.add_row({"c432", "336", "45"});
  t.add_row({"c7552", "6144", "1073"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.to_string("Table I");
  EXPECT_NE(s.find("Table I"), std::string::npos);
  EXPECT_NE(s.find("c7552"), std::string::npos);
  // Header rule exists.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Csv, WritesAndEscapes) {
  const std::string path = ::testing::TempDir() + "hssta_csv_test.csv";
  {
    CsvWriter w(path);
    w.write_row(std::vector<std::string>{"a", "with,comma", "with\"quote"});
    w.write_row(std::vector<double>{1.5, 2.25});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"with,comma\",\"with\"\"quote\"");
  EXPECT_EQ(line2, "1.5,2.25");
  std::remove(path.c_str());
}

TEST(AsciiPlot, HistogramRendersBars) {
  std::ostringstream os;
  plot_histogram(os, {0.0, 0.5, 1.0}, {10, 5}, 20, "demo");
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("####################"), std::string::npos);  // full bar
  EXPECT_NE(s.find("##########"), std::string::npos);            // half bar
}

TEST(AsciiPlot, HistogramRejectsBadEdges) {
  std::ostringstream os;
  EXPECT_THROW(plot_histogram(os, {0.0, 1.0}, {1, 2}), Error);
}

TEST(AsciiPlot, XyPlotsSeries) {
  std::ostringstream os;
  PlotSeries s1{"line", {0, 1, 2, 3}, {0, 1, 2, 3}, '*'};
  PlotSeries s2{"flat", {0, 1, 2, 3}, {1, 1, 1, 1}, 'o'};
  plot_xy(os, {s1, s2}, 40, 10, "curves");
  const std::string out = os.str();
  EXPECT_NE(out.find("curves"), std::string::npos);
  EXPECT_NE(out.find("* = line"), std::string::npos);
  EXPECT_NE(out.find("o = flat"), std::string::npos);
}

TEST(Timer, MeasuresNonNegativeTime) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

// --- JsonReader -------------------------------------------------------------

TEST(JsonReader, ParsesScalarsContainersAndWhitespace) {
  using util::JsonReader;
  using util::JsonValue;
  EXPECT_TRUE(JsonReader::parse("null").is_null());
  EXPECT_TRUE(JsonReader::parse("true").as_bool());
  EXPECT_FALSE(JsonReader::parse(" false ").as_bool());
  EXPECT_EQ(JsonReader::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(JsonReader::parse("0").as_number(), 0.0);
  EXPECT_EQ(JsonReader::parse("\"abc\"").as_string(), "abc");
  EXPECT_TRUE(JsonReader::parse("[]").items().empty());
  EXPECT_TRUE(JsonReader::parse("{}").members().empty());

  const JsonValue doc = JsonReader::parse(
      " { \"a\" : [ 1 , 2.5 , true , null ] ,\n\t\"b\" : { \"c\" : \"d\" } }");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.members().size(), 2u);
  const JsonValue& a = doc.at("a");
  ASSERT_EQ(a.items().size(), 4u);
  EXPECT_EQ(a.items()[0].as_count("n"), 1u);
  EXPECT_EQ(a.items()[1].as_number(), 2.5);
  EXPECT_TRUE(a.items()[2].as_bool());
  EXPECT_TRUE(a.items()[3].is_null());
  EXPECT_EQ(doc.at("b").at("c").as_string(), "d");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), Error);
}

TEST(JsonReader, DecodesStringEscapesIncludingSurrogatePairs) {
  using util::JsonReader;
  EXPECT_EQ(JsonReader::parse(R"("a\"b\\c\/d\b\f\n\r\t")").as_string(),
            "a\"b\\c/d\b\f\n\r\t");
  EXPECT_EQ(JsonReader::parse(R"("\u0041\u00e9\u20ac")").as_string(),
            "A\xc3\xa9\xe2\x82\xac");  // A, é, €
  EXPECT_EQ(JsonReader::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");  // one surrogate pair -> 4-byte UTF-8
}

TEST(JsonReader, RoundTripsWriterDoublesBitExactly) {
  // %.17g out, strtod back: every finite double must survive unchanged.
  for (const double x : {0.1, 1.0 / 3.0, 1.2345678901234567e-12, 2.5e300,
                         -0.0, 1e-320 /* denormal */}) {
    std::ostringstream os;
    util::JsonWriter w(os);
    w.value(x);
    const double back = util::JsonReader::parse(os.str()).as_number();
    EXPECT_EQ(std::memcmp(&back, &x, sizeof x), 0) << os.str();
  }
}

TEST(JsonReader, RejectsMalformedDocuments) {
  using util::JsonReader;
  const char* bad[] = {
      "",                      // empty
      "  ",                    // whitespace only
      "{",                     // unterminated object
      "[1,2",                  // unterminated array
      "[1,]",                  // trailing comma
      "{\"a\":1,}",            // trailing comma in object
      "{\"a\" 1}",             // missing colon
      "{a:1}",                 // unquoted key
      "\"abc",                 // unterminated string
      "\"a\\x\"",              // unknown escape
      "\"a\nb\"",              // raw control character in string
      "\"\\ud83d\"",           // lone high surrogate
      "\"\\ude00\"",           // lone low surrogate
      "\"\\u12g4\"",           // bad hex digit
      "01",                    // leading zero
      "+1",                    // bare plus
      "1.",                    // missing fraction digits
      ".5",                    // missing integer digits
      "1e",                    // missing exponent digits
      "1e999",                 // overflow to infinity
      "NaN",                   // not a JSON token
      "Infinity",              // not a JSON token
      "truth",                 // keyword typo
      "nul",                   // truncated keyword
      "1 2",                   // trailing content
      "{} []",                 // two documents
      "{\"a\":1,\"a\":2}",     // duplicate key
  };
  for (const char* text : bad)
    EXPECT_THROW((void)JsonReader::parse(text), Error) << text;
}

TEST(JsonReader, EnforcesDepthLimitAndTypedAccess) {
  using util::JsonReader;
  using util::JsonValue;
  // kMaxDepth nested arrays parse; one more is rejected.
  const std::string at_limit(JsonReader::kMaxDepth, '[');
  std::string doc = at_limit;
  for (size_t i = 0; i < JsonReader::kMaxDepth; ++i) doc += ']';
  EXPECT_NO_THROW((void)JsonReader::parse(doc));
  EXPECT_THROW((void)JsonReader::parse("[" + doc + "]"), Error);

  const JsonValue v = JsonReader::parse("[1.5, -2, 18446744073709551616]");
  EXPECT_THROW((void)v.as_bool(), Error);          // wrong type
  EXPECT_THROW((void)v.items()[0].as_count("x"), Error);  // fraction
  EXPECT_THROW((void)v.items()[1].as_count("x"), Error);  // negative
  EXPECT_THROW((void)v.items()[2].as_count("x"), Error);  // > 2^53
  EXPECT_EQ(JsonReader::parse("12").as_count("x"), 12u);
}

}  // namespace
}  // namespace hssta
