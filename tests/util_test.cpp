// Unit tests for hssta/util: error macros, strings, table, csv, ascii plots.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "hssta/util/ascii_plot.hpp"
#include "hssta/util/csv.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/strings.hpp"
#include "hssta/util/table.hpp"
#include "hssta/util/timer.hpp"

namespace hssta {
namespace {

TEST(Error, RequireThrowsWithContext) {
  try {
    HSSTA_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

TEST(Error, AssertPassesOnTrue) {
  EXPECT_NO_THROW(HSSTA_ASSERT(2 + 2 == 4, "sanity"));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto f = split("a,,b,", ',');
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[2], "b");
  EXPECT_EQ(f[3], "");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  const auto f = split_ws("  foo \t bar\nbaz  ");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "foo");
  EXPECT_EQ(f[1], "bar");
  EXPECT_EQ(f[2], "baz");
}

TEST(Strings, LowerAndPrefix) {
  EXPECT_EQ(to_lower("NaNd2"), "nand2");
  EXPECT_TRUE(starts_with("INPUT(a)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(Strings, Formatting) {
  EXPECT_EQ(fmt_percent(0.134, 1), "13.4%");
  EXPECT_EQ(fmt_percent(0.2, 0), "20%");
  EXPECT_EQ(fmt_double(0.5), "0.5");
}

TEST(Table, AlignsAndCounts) {
  Table t({"circuit", "Eo", "Em"});
  t.add_row({"c432", "336", "45"});
  t.add_row({"c7552", "6144", "1073"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.to_string("Table I");
  EXPECT_NE(s.find("Table I"), std::string::npos);
  EXPECT_NE(s.find("c7552"), std::string::npos);
  // Header rule exists.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Csv, WritesAndEscapes) {
  const std::string path = ::testing::TempDir() + "hssta_csv_test.csv";
  {
    CsvWriter w(path);
    w.write_row(std::vector<std::string>{"a", "with,comma", "with\"quote"});
    w.write_row(std::vector<double>{1.5, 2.25});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"with,comma\",\"with\"\"quote\"");
  EXPECT_EQ(line2, "1.5,2.25");
  std::remove(path.c_str());
}

TEST(AsciiPlot, HistogramRendersBars) {
  std::ostringstream os;
  plot_histogram(os, {0.0, 0.5, 1.0}, {10, 5}, 20, "demo");
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("####################"), std::string::npos);  // full bar
  EXPECT_NE(s.find("##########"), std::string::npos);            // half bar
}

TEST(AsciiPlot, HistogramRejectsBadEdges) {
  std::ostringstream os;
  EXPECT_THROW(plot_histogram(os, {0.0, 1.0}, {1, 2}), Error);
}

TEST(AsciiPlot, XyPlotsSeries) {
  std::ostringstream os;
  PlotSeries s1{"line", {0, 1, 2, 3}, {0, 1, 2, 3}, '*'};
  PlotSeries s2{"flat", {0, 1, 2, 3}, {1, 1, 1, 1}, 'o'};
  plot_xy(os, {s1, s2}, 40, 10, "curves");
  const std::string out = os.str();
  EXPECT_NE(out.find("curves"), std::string::npos);
  EXPECT_NE(out.find("* = line"), std::string::npos);
  EXPECT_NE(out.find("o = flat"), std::string::npos);
}

TEST(Timer, MeasuresNonNegativeTime) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace hssta
