// Tests for the Monte Carlo engines, closing the modelling loop:
//  * physical (Cholesky) sampling agrees with canonical (PCA) sampling,
//  * SSTA moments match the physical ground truth,
//  * per-IO-pair MC matches the canonical delay matrix,
//  * the hierarchical replacement tracks flattened-design MC far better
//    than the global-only baseline (the paper's Fig. 7 claim).

#include <gtest/gtest.h>

#include <cmath>

#include "fixtures.hpp"
#include "hssta/core/io_delays.hpp"
#include "hssta/core/ssta.hpp"
#include "hssta/hier/hier_ssta.hpp"
#include "hssta/mc/flat_mc.hpp"
#include "hssta/mc/hier_mc.hpp"
#include "hssta/mc/sampler.hpp"
#include "hssta/stats/normal.hpp"
#include "hssta/util/error.hpp"

namespace hssta::mc {
namespace {

using testing::ModuleUnderTest;

class McModule : public ::testing::Test {
 protected:
  McModule() : m_(testing::small_module_spec(31)) {}
  ModuleUnderTest m_;
};

TEST_F(McModule, PhysicalAndCanonicalSamplersAgree) {
  const FlatCircuit fc =
      FlatCircuit::from_module(m_.built, m_.netlist, m_.variation);
  stats::Rng r1(5), r2(6);
  const auto physical = fc.sample_delay(6000, r1);
  const auto canonical = sample_canonical_delay(m_.built.graph, 6000, r2);
  // Same underlying statistical model through two factorizations.
  EXPECT_NEAR(physical.mean(), canonical.mean(), 0.01 * canonical.mean());
  EXPECT_NEAR(physical.stddev(), canonical.stddev(),
              0.08 * canonical.stddev());
  EXPECT_LT(physical.ks_distance(canonical), 0.05);
}

TEST_F(McModule, SstaMatchesPhysicalGroundTruth) {
  const FlatCircuit fc =
      FlatCircuit::from_module(m_.built, m_.netlist, m_.variation);
  stats::Rng rng(7);
  const auto mc = fc.sample_delay(8000, rng);
  const core::SstaResult ssta = core::run_ssta(m_.built.graph);
  EXPECT_NEAR(ssta.delay.nominal(), mc.mean(), 0.02 * mc.mean());
  EXPECT_NEAR(ssta.delay.sigma(), mc.stddev(), 0.15 * mc.stddev());
  // The Gaussian SSTA CDF tracks the sampled CDF.
  const double ks = mc.ks_distance(
      [&](double x) { return ssta.delay.cdf(x); });
  EXPECT_LT(ks, 0.08);
}

TEST_F(McModule, IoStatsMatchCanonicalDelayMatrix) {
  const FlatCircuit fc =
      FlatCircuit::from_module(m_.built, m_.netlist, m_.variation);
  stats::Rng rng(11);
  const IoStats st = fc.sample_io_delays(3000, rng);
  const core::DelayMatrix dm = core::all_pairs_io_delays(m_.built.graph);
  ASSERT_EQ(st.num_inputs, dm.num_inputs());
  ASSERT_EQ(st.num_outputs, dm.num_outputs());
  double worst_mean = 0.0;
  for (size_t i = 0; i < st.num_inputs; ++i)
    for (size_t j = 0; j < st.num_outputs; ++j) {
      ASSERT_EQ(st.is_valid(i, j), dm.is_valid(i, j));
      if (!st.is_valid(i, j)) continue;
      worst_mean = std::max(worst_mean,
                            std::abs(dm.at(i, j).nominal() -
                                     st.mean_at(i, j)) /
                                st.mean_at(i, j));
    }
  // Canonical IO delays within ~2% of sampled truth (paper: merr < 1.21%).
  EXPECT_LT(worst_mean, 0.02);
}

TEST_F(McModule, SamplingIsSeedDeterministic) {
  const FlatCircuit fc =
      FlatCircuit::from_module(m_.built, m_.netlist, m_.variation);
  stats::Rng a(42), b(42), c(43);
  const auto d1 = fc.sample_delay(200, a);
  const auto d2 = fc.sample_delay(200, b);
  const auto d3 = fc.sample_delay(200, c);
  EXPECT_EQ(d1.sorted(), d2.sorted());
  EXPECT_NE(d1.sorted(), d3.sorted());
}

TEST_F(McModule, FlatCircuitValidatesArcs) {
  FlatCircuit fc(variation::default_90nm_parameters(),
                 linalg::Matrix::identity(2), 0.15);
  const auto a = fc.add_vertex("a", true, false);
  const auto z = fc.add_vertex("z", false, true);
  EXPECT_THROW(fc.add_arc(a, z, 1.0, 0.0, 7, {0.9, 0.3, 0.4}), Error);
  EXPECT_THROW(fc.add_arc(a, z, 1.0, 0.0, 0, {0.9}), Error);
  fc.add_arc(a, z, 1.0, 0.0, 1, {0.9, 0.3, 0.4});
  stats::Rng rng(1);
  EXPECT_THROW((void)fc.sample_delay(0, rng), Error);
  const auto d = fc.sample_delay(500, rng);
  EXPECT_NEAR(d.mean(), 1.0, 0.05);
}

TEST(McHier, ReplacementTracksFlattenedTruthGlobalOnlyDoesNot) {
  // The paper's Fig. 7 experiment at test scale.
  const ModuleUnderTest m(testing::small_module_spec(77));
  const hier::HierDesign design = testing::make_quad_design(m);

  const auto mc = hier_flat_mc(design, 6000, 2009);

  hier::HierOptions repl;
  hier::HierOptions glob;
  glob.mode = hier::CorrelationMode::kGlobalOnly;
  const hier::HierResult a = hier::analyze_hierarchical(design, repl);
  const hier::HierResult b = hier::analyze_hierarchical(design, glob);

  // Mean: both close; sigma: replacement must capture the cross-module
  // correlation that global-only misses.
  EXPECT_NEAR(a.delay().nominal(), mc.mean(), 0.03 * mc.mean());
  EXPECT_NEAR(a.delay().sigma(), mc.stddev(), 0.15 * mc.stddev());
  const double err_repl = std::abs(a.delay().sigma() - mc.stddev());
  const double err_glob = std::abs(b.delay().sigma() - mc.stddev());
  EXPECT_LT(err_repl, err_glob);

  // Distribution-level: KS of the Gaussian fit against the sampled CDF.
  const double ks_repl =
      mc.ks_distance([&](double x) { return a.delay().cdf(x); });
  const double ks_glob =
      mc.ks_distance([&](double x) { return b.delay().cdf(x); });
  EXPECT_LT(ks_repl, ks_glob);
  EXPECT_LT(ks_repl, 0.10);
}

TEST(McHier, FlattenRequiresNetlists) {
  const ModuleUnderTest m(testing::small_module_spec(78));
  hier::HierDesign d("bare", m.model().die());
  d.add_instance({"a", &m.model(), {0, 0}, nullptr, nullptr});
  d.add_primary_input({"i", {hier::PortRef{0, 0}}});
  d.add_primary_output({"o", hier::PortRef{0, 0}});
  const hier::DesignGrid grid = hier::build_design_grid(d);
  EXPECT_THROW((void)flatten_design(d, grid), Error);
}

TEST(McHier, LoadAwareFlatteningShiftsMean) {
  const ModuleUnderTest m(testing::small_module_spec(79));
  const hier::HierDesign design = testing::make_quad_design(m);
  FlattenOptions plain;
  FlattenOptions aware;
  aware.load_aware_boundary = true;
  const auto d0 = hier_flat_mc(design, 2000, 3, plain);
  const auto d1 = hier_flat_mc(design, 2000, 3, aware);
  EXPECT_GT(d1.mean(), d0.mean());
}

}  // namespace
}  // namespace hssta::mc
