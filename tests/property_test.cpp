// Property-based sweeps (TEST_P) over randomized inputs: invariants that
// must hold for every seed/shape, not just hand-picked fixtures.

#include <gtest/gtest.h>

#include <cmath>

#include "fixtures.hpp"
#include "hssta/core/criticality.hpp"
#include "hssta/core/io_delays.hpp"
#include "hssta/core/ssta.hpp"
#include "hssta/hier/design_grid.hpp"
#include "hssta/hier/replace.hpp"
#include "hssta/mc/sampler.hpp"
#include "hssta/model/reduce.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/timing/propagate.hpp"
#include "hssta/timing/sta.hpp"
#include "hssta/timing/statops.hpp"

namespace hssta {
namespace {

using testing::ModuleUnderTest;
using timing::CanonicalForm;
using timing::EdgeId;
using timing::VertexId;

CanonicalForm random_form(size_t dim, stats::Rng& rng, double scale = 0.1) {
  CanonicalForm f(dim);
  f.set_nominal(rng.uniform(0.5, 3.0));
  for (size_t k = 0; k < dim; ++k) f.corr()[k] = scale * rng.normal();
  f.set_random(rng.uniform(0.0, scale));
  return f;
}

class MaxAlgebra : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaxAlgebra, InvariantsOnRandomForms) {
  stats::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const size_t dim = 1 + rng.uniform_index(12);
    const CanonicalForm a = random_form(dim, rng);
    const CanonicalForm b = random_form(dim, rng);
    const CanonicalForm m = timing::statistical_max(a, b);

    // Mean dominates both inputs; TP complements; commutativity.
    EXPECT_GE(m.nominal(), std::max(a.nominal(), b.nominal()) - 1e-12);
    const double tp = timing::tightness_probability(a, b);
    EXPECT_GE(tp, 0.0);
    EXPECT_LE(tp, 1.0);
    EXPECT_NEAR(tp + timing::tightness_probability(b, a), 1.0, 1e-12);
    const CanonicalForm ba = timing::statistical_max(b, a);
    EXPECT_NEAR(m.nominal(), ba.nominal(), 1e-12);
    EXPECT_NEAR(m.sigma(), ba.sigma(), 1e-12);

    // Monotonicity: max{A + c, B + c} = max{A, B} + c for a constant.
    const double c = rng.uniform(-1.0, 1.0);
    CanonicalForm ac = a, bc = b;
    ac.add_nominal(c);
    bc.add_nominal(c);
    const CanonicalForm mc = timing::statistical_max(ac, bc);
    EXPECT_NEAR(mc.nominal(), m.nominal() + c, 1e-9);
    EXPECT_NEAR(mc.sigma(), m.sigma(), 1e-9);

    // Sum is exact: moments add / rss.
    const CanonicalForm s = a + b;
    EXPECT_NEAR(s.variance(),
                a.variance() + b.variance() + 2.0 * a.covariance(b), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxAlgebra, ::testing::Values(1, 2, 3, 4, 5));

class CriticalityProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CriticalityProperties, PartitionAndBoundsOnRandomCircuits) {
  netlist::RandomDagSpec spec;
  spec.num_inputs = 5 + GetParam() % 4;
  spec.num_outputs = 3 + GetParam() % 3;
  spec.num_gates = 40 + 10 * (GetParam() % 5);
  spec.num_pins = spec.num_gates * 7 / 4;
  spec.depth = 6 + GetParam() % 4;
  spec.seed = GetParam() * 1000 + 17;
  const netlist::Netlist nl =
      netlist::make_random_dag(spec, testing::default_lib());
  const placement::Placement pl = placement::place_rows(nl);
  const variation::ModuleVariation mv = variation::make_module_variation(
      pl, nl.num_gates(), variation::default_90nm_parameters(),
      variation::SpatialCorrelationConfig{});
  const timing::BuiltGraph built = timing::build_timing_graph(nl, pl, mv);
  const timing::TimingGraph& g = built.graph;

  const core::CriticalityResult crit = core::compute_criticality(g);
  const core::DelayMatrix& m = crit.io_delays;

  // Bounds on cm.
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    EXPECT_GE(crit.max_criticality[e], 0.0);
    EXPECT_LE(crit.max_criticality[e], 1.0);
  }

  // Per-pair partition at every vertex with positive criticality mass:
  // the fanin criticalities of a vertex sum to the mass flowing out of it.
  for (size_t i = 0; i < g.inputs().size(); ++i) {
    for (size_t j = 0; j < g.outputs().size(); ++j) {
      if (!m.is_valid(i, j)) continue;
      const std::vector<double> c = core::pair_criticalities(g, i, j);
      // Sum over any input cut (here: the fanout edges of the input) is 1.
      double out_sum = 0.0;
      for (EdgeId e : g.vertex(g.inputs()[i]).fanout) out_sum += c[e];
      EXPECT_NEAR(out_sum, 1.0, 1e-9) << "pair " << i << "," << j;
      break;  // one output per input keeps the sweep fast
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CriticalityProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class ReductionProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReductionProperties, MergesPreserveIoDelaysWithinTolerance) {
  const ModuleUnderTest m(testing::small_module_spec(500 + GetParam()));
  timing::TimingGraph g = m.built.graph;  // working copy
  const core::DelayMatrix before = core::all_pairs_io_delays(g);
  const model::ReduceStats stats = model::reduce_graph(g);
  EXPECT_GT(stats.serial_merges, 0u);
  const core::DelayMatrix after = core::all_pairs_io_delays(g);
  for (size_t i = 0; i < before.num_inputs(); ++i)
    for (size_t j = 0; j < before.num_outputs(); ++j) {
      ASSERT_EQ(before.is_valid(i, j), after.is_valid(i, j));
      if (!before.is_valid(i, j)) continue;
      // Merges are exact on trees; reconvergent serial merges duplicate
      // aggregated randoms and reorder max folds, leaving ~1% residue.
      EXPECT_NEAR(after.at(i, j).nominal(), before.at(i, j).nominal(),
                  0.015 * before.at(i, j).nominal());
      EXPECT_NEAR(after.at(i, j).sigma(), before.at(i, j).sigma(),
                  0.04 * before.at(i, j).sigma() + 1e-6);
    }
  g.validate();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionProperties,
                         ::testing::Values(1, 2, 3, 4));

class ReplacementProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplacementProperties, CovariancePreservedForRandomPlacements) {
  const ModuleUnderTest m(testing::small_module_spec(700 + GetParam()));
  stats::Rng rng(GetParam());

  // Random non-overlapping 2x1 placement on a padded die.
  const placement::Die mdie = m.model().die();
  hier::HierDesign d("pair", placement::Die{3 * mdie.width, 2 * mdie.height});
  const double dx = rng.uniform(0.0, mdie.width);
  const double dy = rng.uniform(0.0, mdie.height);
  d.add_instance({"a", &m.model(), {0, 0}, nullptr, nullptr});
  d.add_instance(
      {"b", &m.model(), {mdie.width + dx, dy}, nullptr, nullptr});
  d.add_primary_input({"i", {hier::PortRef{0, 0}}});
  d.add_primary_output({"o", hier::PortRef{0, 0}});

  const hier::DesignGrid grid = hier::build_design_grid(d);
  const auto dspace = hier::build_design_space(d, grid);
  const linalg::Matrix r0 = hier::replacement_matrix(
      *m.variation.space, *dspace, grid.instance_grids[0]);
  const linalg::Matrix r1 = hier::replacement_matrix(
      *m.variation.space, *dspace, grid.instance_grids[1]);

  // R R^T = I for both instances regardless of placement.
  EXPECT_LT((r0 * r0.transposed())
                .max_abs_diff(linalg::Matrix::identity(r0.rows())),
            1e-6);
  EXPECT_LT((r1 * r1.transposed())
                .max_abs_diff(linalg::Matrix::identity(r1.rows())),
            1e-6);

  // Cross-instance covariance equals the physical correlation model for
  // sampled grid pairs.
  for (int trial = 0; trial < 5; ++trial) {
    const size_t ga = rng.uniform_index(m.variation.partition.num_grids());
    const size_t gb = rng.uniform_index(m.variation.partition.num_grids());
    CanonicalForm ua(m.variation.space->dim()), ub(m.variation.space->dim());
    m.variation.space->accumulate(0, ga, 1.0, ua.corr());
    m.variation.space->accumulate(0, gb, 1.0, ub.corr());
    const CanonicalForm da =
        hier::remap_canonical(ua, *m.variation.space, *dspace, r0);
    const CanonicalForm db =
        hier::remap_canonical(ub, *m.variation.space, *dspace, r1);
    const auto& p = m.variation.space->parameters().at(0);
    const double dist = grid.geometry.distance(grid.instance_grids[0][ga],
                                               grid.instance_grids[1][gb]);
    const double expected =
        p.sigma_global() * p.sigma_global() +
        p.sigma_local() * p.sigma_local() *
            dspace->correlation_model().local_rho(dist);
    EXPECT_NEAR(da.covariance(db), expected, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplacementProperties,
                         ::testing::Values(1, 2, 3, 4, 5));

class PropagationProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropagationProperties, ArrivalsDominatePathDelaysAndMatchSampling) {
  const ModuleUnderTest m(testing::small_module_spec(900 + GetParam()));
  const timing::TimingGraph& g = m.built.graph;
  const core::SstaResult ssta = core::run_ssta(g);

  // Nominal arrival at each vertex >= nominal longest path (Clark bumps
  // only add mass).
  const auto nominal = timing::corner_edge_delays(g, 0.0);
  const timing::ScalarArrivals lp = timing::longest_path(g, nominal);
  for (VertexId v = 0; v < g.num_vertex_slots(); ++v) {
    if (!g.vertex_alive(v) || !ssta.arrivals.valid[v]) continue;
    EXPECT_GE(ssta.arrivals.at(v).nominal(), lp.time[v] - 1e-9);
  }

  // Canonical sampling agrees with the analytic circuit delay.
  stats::Rng rng(GetParam() * 13 + 7);
  const auto mcd = mc::sample_canonical_delay(g, 3000, rng);
  EXPECT_NEAR(ssta.delay.nominal(), mcd.mean(), 0.025 * mcd.mean());
  EXPECT_NEAR(ssta.delay.sigma(), mcd.stddev(), 0.2 * mcd.stddev());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationProperties,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace hssta
