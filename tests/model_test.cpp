// Tests for the gray-box model extraction: merge passes (exactness of the
// preserved IO delays), dangling cleanup, pruning with connectivity repair,
// end-to-end extraction quality, and model serialization round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>
#include <utility>
#include <vector>

#include "hssta/core/io_delays.hpp"
#include "hssta/library/cell_library.hpp"
#include "hssta/model/extract.hpp"
#include "hssta/model/reduce.hpp"
#include "hssta/model/timing_model.hpp"
#include "hssta/netlist/generate.hpp"
#include "hssta/placement/placement.hpp"
#include "hssta/timing/builder.hpp"
#include "hssta/util/error.hpp"

namespace hssta::model {
namespace {

using core::DelayMatrix;
using timing::CanonicalForm;
using timing::EdgeId;
using timing::TimingGraph;
using timing::VertexId;

CanonicalForm form(double nominal, std::vector<double> corr, double random) {
  CanonicalForm f(corr.size());
  f.set_nominal(nominal);
  std::copy(corr.begin(), corr.end(), f.corr().begin());
  f.set_random(random);
  return f;
}

void expect_matrices_match(const DelayMatrix& a, const DelayMatrix& b,
                           double tol) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  for (size_t i = 0; i < a.num_inputs(); ++i)
    for (size_t j = 0; j < a.num_outputs(); ++j) {
      ASSERT_EQ(a.is_valid(i, j), b.is_valid(i, j)) << i << "," << j;
      if (!a.is_valid(i, j)) continue;
      EXPECT_NEAR(a.at(i, j).nominal(), b.at(i, j).nominal(),
                  tol * std::max(1.0, std::abs(b.at(i, j).nominal())))
          << i << "," << j;
      EXPECT_NEAR(a.at(i, j).sigma(), b.at(i, j).sigma(),
                  tol * std::max(0.01, b.at(i, j).sigma()))
          << i << "," << j;
    }
}

TEST(Reduce, SerialMergeCollapsesChainExactly) {
  TimingGraph g(2);
  const VertexId a = g.add_vertex("a", true);
  const VertexId m1 = g.add_vertex("m1");
  const VertexId m2 = g.add_vertex("m2");
  const VertexId z = g.add_vertex("z", false, true);
  g.add_edge(a, m1, form(1.0, {0.1, 0.0}, 0.3));
  g.add_edge(m1, m2, form(2.0, {0.2, 0.1}, 0.4));
  g.add_edge(m2, z, form(3.0, {0.0, 0.2}, 0.0));
  const DelayMatrix before = core::all_pairs_io_delays(g);

  const ReduceStats stats = reduce_graph(g);
  EXPECT_EQ(stats.serial_merges, 2u);
  EXPECT_EQ(g.num_live_vertices(), 2u);
  EXPECT_EQ(g.num_live_edges(), 1u);
  const DelayMatrix after = core::all_pairs_io_delays(g);
  expect_matrices_match(after, before, 1e-12);
  g.validate();
}

TEST(Reduce, SerialMergeFansOutThroughSingleFanin) {
  // Paper Fig. 1a: vk with one fanin and two fanouts disappears.
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId k = g.add_vertex("k");
  const VertexId z1 = g.add_vertex("z1", false, true);
  const VertexId z2 = g.add_vertex("z2", false, true);
  g.add_edge(a, k, form(1.0, {0.1}, 0.1));
  g.add_edge(k, z1, form(2.0, {0.2}, 0.1));
  g.add_edge(k, z2, form(3.0, {0.0}, 0.2));
  const DelayMatrix before = core::all_pairs_io_delays(g);
  const ReduceStats stats = reduce_graph(g);
  EXPECT_GE(stats.serial_merges, 1u);
  EXPECT_FALSE(g.vertex_alive(k));
  EXPECT_EQ(g.num_live_edges(), 2u);
  expect_matrices_match(core::all_pairs_io_delays(g), before, 1e-12);
}

TEST(Reduce, ReverseSerialMergeThroughSingleFanout) {
  // Paper Fig. 1b: vk with two fanins and one fanout disappears.
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId b = g.add_vertex("b", true);
  const VertexId k = g.add_vertex("k");
  const VertexId z = g.add_vertex("z", false, true);
  g.add_edge(a, k, form(1.0, {0.1}, 0.1));
  g.add_edge(b, k, form(2.0, {0.0}, 0.2));
  g.add_edge(k, z, form(1.5, {0.2}, 0.1));
  const DelayMatrix before = core::all_pairs_io_delays(g);
  reduce_graph(g);
  EXPECT_FALSE(g.vertex_alive(k));
  EXPECT_EQ(g.num_live_edges(), 2u);
  expect_matrices_match(core::all_pairs_io_delays(g), before, 1e-12);
}

TEST(Reduce, ParallelMergeFoldsClarkMax) {
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId z = g.add_vertex("z", false, true);
  g.add_edge(a, z, form(1.0, {0.1}, 0.2));
  g.add_edge(a, z, form(1.1, {0.2}, 0.1));
  g.add_edge(a, z, form(0.9, {0.0}, 0.3));
  const DelayMatrix before = core::all_pairs_io_delays(g);
  timing::MaxDiagnostics diag;
  const size_t merged = parallel_merge_pass(g, &diag);
  EXPECT_EQ(merged, 1u);
  EXPECT_EQ(g.num_live_edges(), 1u);
  // The merged edge equals the fold of the three delays: propagation from a
  // common source commutes with the merge.
  expect_matrices_match(core::all_pairs_io_delays(g), before, 1e-12);
}

TEST(Reduce, DanglingCascades) {
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId z = g.add_vertex("z", false, true);
  const VertexId d1 = g.add_vertex("d1");
  const VertexId d2 = g.add_vertex("d2");
  g.add_edge(a, z, form(1.0, {0.0}, 0.0));
  // d1 -> d2 hangs off nothing that reaches an output.
  g.add_edge(a, d1, form(1.0, {0.0}, 0.0));
  g.add_edge(d1, d2, form(1.0, {0.0}, 0.0));
  const size_t removed = remove_dangling(g);
  EXPECT_EQ(removed, 2u);
  EXPECT_FALSE(g.vertex_alive(d1));
  EXPECT_FALSE(g.vertex_alive(d2));
  EXPECT_EQ(g.num_live_edges(), 1u);
  g.validate();
}

TEST(Reduce, PortsAreNeverMerged) {
  // An internal-looking chain a -> p -> z where p is an output port: p must
  // survive even though it has one fanin and one fanout.
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId p = g.add_vertex("p", false, true);
  const VertexId z = g.add_vertex("z", false, true);
  g.add_edge(a, p, form(1.0, {0.0}, 0.1));
  g.add_edge(p, z, form(1.0, {0.0}, 0.1));
  reduce_graph(g);
  EXPECT_TRUE(g.vertex_alive(p));
  EXPECT_EQ(g.num_live_edges(), 2u);
}

class ExtractionTest : public ::testing::Test {
 protected:
  ExtractionTest()
      : nl_(netlist::make_random_dag(spec(), lib())),
        pl_(placement::place_rows(nl_)),
        mv_(variation::make_module_variation(
            pl_, nl_.num_gates(), variation::default_90nm_parameters(),
            variation::SpatialCorrelationConfig{})),
        built_(timing::build_timing_graph(nl_, pl_, mv_)) {}

  static netlist::RandomDagSpec spec() {
    netlist::RandomDagSpec s;
    s.num_inputs = 12;
    s.num_outputs = 6;
    s.num_gates = 200;
    s.num_pins = 360;
    s.depth = 14;
    s.seed = 42;
    return s;
  }

  static const library::CellLibrary& lib() {
    static const library::CellLibrary l = library::default_90nm();
    return l;
  }

  netlist::Netlist nl_;
  placement::Placement pl_;
  variation::ModuleVariation mv_;
  timing::BuiltGraph built_;
};

TEST_F(ExtractionTest, CompressesAndPreservesIoDelays) {
  Extraction ex = extract_timing_model(built_, mv_, nl_.name(),
                                       compute_boundary(nl_));
  const ExtractionStats& st = ex.stats;
  EXPECT_EQ(st.original_edges, built_.graph.num_live_edges());
  EXPECT_LT(st.model_edges, st.original_edges);
  EXPECT_LT(st.model_vertices, st.original_vertices);
  EXPECT_LT(st.edge_ratio(), 0.7);
  EXPECT_EQ(st.criticalities.size(), st.original_edges);

  const DelayMatrix original = core::all_pairs_io_delays(built_.graph);
  const DelayMatrix modeled = ex.model.io_delays();
  // Model contract: same connectivity, means within ~2%.
  expect_matrices_match(modeled, original, 0.02);
  ex.model.graph().validate();
}

TEST_F(ExtractionTest, ZeroThresholdStillReduces) {
  ExtractOptions opts;
  opts.criticality_threshold = 0.0;
  Extraction ex = extract_timing_model(built_, mv_, nl_.name(),
                                       compute_boundary(nl_), opts);
  EXPECT_EQ(ex.stats.edges_pruned, 0u);
  EXPECT_LT(ex.stats.model_edges, ex.stats.original_edges);
  // Merges are exact on tree paths; serial merges through reconvergent
  // fanout duplicate aggregated randoms. The residue scales with how much
  // reconvergence the seed-42 DAG realizes — sub-1% here, well inside the
  // 2% model contract above.
  expect_matrices_match(ex.model.io_delays(),
                        core::all_pairs_io_delays(built_.graph), 1e-2);
}

TEST_F(ExtractionTest, CompressionGrowsWithThreshold) {
  size_t prev_edges = SIZE_MAX;
  for (double delta : {0.0, 0.05, 0.2}) {
    ExtractOptions opts;
    opts.criticality_threshold = delta;
    Extraction ex = extract_timing_model(built_, mv_, nl_.name(),
                                         compute_boundary(nl_), opts);
    EXPECT_LE(ex.stats.model_edges, prev_edges) << "delta " << delta;
    prev_edges = ex.stats.model_edges;
  }
}

TEST(Extraction, RepairRestoresPrunedConnectivity) {
  // Eight balanced parallel branches: each edge has criticality ~1/8,
  // below delta = 0.3, so pruning would disconnect the single IO pair.
  auto space = std::make_shared<const variation::VariationSpace>(
      variation::default_90nm_parameters(),
      variation::GridPartition(placement::Die{10, 10}, 1, 1).geometry(),
      variation::SpatialCorrelationConfig{});
  variation::ModuleVariation mv{
      variation::GridPartition(placement::Die{10, 10}, 1, 1), space};

  timing::BuiltGraph built{TimingGraph(space), {}, {}, {}};
  TimingGraph& g = built.graph;
  const VertexId a = g.add_vertex("a", true);
  const VertexId z = g.add_vertex("z", false, true);
  const size_t dim = space->dim();
  for (int b = 0; b < 8; ++b) {
    const VertexId m = g.add_vertex("m" + std::to_string(b));
    CanonicalForm d1(dim), d2(dim);
    d1.set_nominal(1.0);
    d1.set_random(0.05);
    d2.set_nominal(1.0);
    d2.set_random(0.05);
    g.add_edge(a, m, std::move(d1));
    g.add_edge(m, z, std::move(d2));
  }
  BoundaryData boundary{{1.0}, {0.004}};

  ExtractOptions opts;
  opts.criticality_threshold = 0.3;
  const Extraction ex =
      extract_timing_model(built, mv, "branches", boundary, opts);
  EXPECT_GT(ex.stats.pairs_repaired, 0u);
  const DelayMatrix m = ex.model.io_delays();
  ASSERT_TRUE(m.is_valid(0, 0));
  // The repaired model keeps one representative path.
  EXPECT_NEAR(m.at(0, 0).nominal(), 2.0, 0.2);

  // Without repair the pair goes dark.
  opts.repair_connectivity = false;
  const Extraction bare =
      extract_timing_model(built, mv, "branches", boundary, opts);
  EXPECT_FALSE(bare.model.io_delays().is_valid(0, 0));
}

TEST_F(ExtractionTest, SerializationRoundTripsBitExactly) {
  Extraction ex = extract_timing_model(built_, mv_, nl_.name(),
                                       compute_boundary(nl_));
  std::ostringstream os;
  ex.model.save(os);
  std::istringstream is(os.str());
  const TimingModel loaded = TimingModel::load(is);

  EXPECT_EQ(loaded.name(), ex.model.name());
  EXPECT_EQ(loaded.input_names(), ex.model.input_names());
  EXPECT_EQ(loaded.output_names(), ex.model.output_names());
  EXPECT_EQ(loaded.boundary().input_cap, ex.model.boundary().input_cap);
  EXPECT_EQ(loaded.boundary().output_drive_res,
            ex.model.boundary().output_drive_res);
  EXPECT_EQ(loaded.graph().num_live_edges(),
            ex.model.graph().num_live_edges());
  EXPECT_EQ(loaded.graph().dim(), ex.model.graph().dim());

  // Delay matrices agree bit-exactly: the loader reproduced the space and
  // the hex-float coefficients.
  const DelayMatrix a = ex.model.io_delays();
  const DelayMatrix b = loaded.io_delays();
  for (size_t i = 0; i < a.num_inputs(); ++i)
    for (size_t j = 0; j < a.num_outputs(); ++j) {
      ASSERT_EQ(a.is_valid(i, j), b.is_valid(i, j));
      if (!a.is_valid(i, j)) continue;
      EXPECT_EQ(a.at(i, j).nominal(), b.at(i, j).nominal());
      EXPECT_EQ(a.at(i, j).sigma(), b.at(i, j).sigma());
    }
}

TEST(TimingModelIo, LoadRejectsCorruptFiles) {
  EXPECT_THROW((void)TimingModel::load_file("/nonexistent/x.hstm"), Error);
  std::istringstream bad1("not-a-model");
  EXPECT_THROW((void)TimingModel::load(bad1), Error);
  std::istringstream bad2("hstm 999\n");
  EXPECT_THROW((void)TimingModel::load(bad2), Error);
  std::istringstream truncated("hstm 1\nname m\ndie 0x1p+5 0x1p+5\n");
  EXPECT_THROW((void)TimingModel::load(truncated), Error);
}

/// A four-vertex diamond model small enough to text-edit in tests.
TimingModel tiny_model() {
  auto space = std::make_shared<const variation::VariationSpace>(
      variation::default_90nm_parameters(),
      variation::GridPartition(placement::Die{10, 10}, 1, 1).geometry(),
      variation::SpatialCorrelationConfig{});
  variation::ModuleVariation mv{
      variation::GridPartition(placement::Die{10, 10}, 1, 1), space};
  TimingGraph g(space);
  const VertexId a = g.add_vertex("a", true);
  const VertexId m1 = g.add_vertex("m1");
  const VertexId m2 = g.add_vertex("m2");
  const VertexId z = g.add_vertex("z", false, true);
  const size_t dim = space->dim();
  auto delay = [&](double nom) {
    CanonicalForm d(dim);
    d.set_nominal(nom);
    d.set_random(0.05);
    return d;
  };
  g.add_edge(a, m1, delay(1.0));
  g.add_edge(m1, z, delay(1.5));
  g.add_edge(a, m2, delay(2.0));
  g.add_edge(m2, z, delay(0.5));
  return TimingModel("tiny", std::move(g), std::move(mv),
                     BoundaryData{{1.0}, {0.004}});
}

std::string tiny_model_text() {
  std::ostringstream os;
  tiny_model().save(os);
  return os.str();
}

/// Replace the first occurrence of `from` (must exist) with `to`.
std::string patched(std::string text, const std::string& from,
                    const std::string& to) {
  const size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  text.replace(pos, from.size(), to);
  return text;
}

TEST(TimingModelIo, SaveDetectsFailedStream) {
  const TimingModel m = tiny_model();
  std::ostringstream os;
  os.setstate(std::ios::badbit);
  EXPECT_THROW(m.save(os), Error);

  // A stream that fails part-way (simulated via a tiny failbit trigger on
  // overflow) must also throw rather than silently truncate.
  std::ostringstream partial;
  m.save(partial);  // healthy stream: fine
  partial.setstate(std::ios::failbit);
  EXPECT_THROW(m.save(partial), Error);
}

TEST(TimingModelIo, SaveFileToFullDeviceThrows) {
  // /dev/full accepts the open and fails every flush with ENOSPC — the
  // canonical "disk full" reproduction. Skip where it does not exist.
  if (!std::filesystem::exists("/dev/full"))
    GTEST_SKIP() << "/dev/full not available";
  EXPECT_THROW(tiny_model().save_file("/dev/full"), Error);
}

TEST(TimingModelIo, RoundTripsTinyModel) {
  const std::string text = tiny_model_text();
  std::istringstream is(text);
  const TimingModel loaded = TimingModel::load(is);
  std::ostringstream os;
  loaded.save(os);
  EXPECT_EQ(os.str(), text);
}

TEST(TimingModelIo, LoadRejectsSignedOrMalformedCounts) {
  // Counts must parse strictly — "+5" and friends are accepted by a raw
  // `is >>` but rejected by util::parse_count.
  const std::string text = tiny_model_text();
  for (const auto& [from, to] :
       std::vector<std::pair<std::string, std::string>>{
           {"grid 1 1", "grid +1 1"},
           {"grid 1 1", "grid 0x1 1"},
           {"params 3", "params +3"},
           {"ports 1 1", "ports 1 -1"},
           {"vertices 4", "vertices 4.0"},
           {"edges 4", "edges +4"},
           {"e 0 1", "e +0 1"}}) {
    std::istringstream is(patched(text, from, to));
    EXPECT_THROW((void)TimingModel::load(is), Error) << from << " -> " << to;
  }
}

TEST(TimingModelIo, LoadRejectsTrailingGarbage) {
  const std::string text = tiny_model_text();
  std::istringstream junk(text + "junk\n");
  EXPECT_THROW((void)TimingModel::load(junk), Error);
  // Two concatenated models (a classic corrupt-cache shape) must not load
  // as the first one.
  std::istringstream doubled(text + text);
  EXPECT_THROW((void)TimingModel::load(doubled), Error);
  // Even a lone stray token counts.
  std::istringstream stray(text + " x");
  EXPECT_THROW((void)TimingModel::load(stray), Error);
}

TEST(TimingModelIo, LoadRejectsDuplicateVertexNames) {
  const std::string text = patched(tiny_model_text(), "v m2 x", "v m1 x");
  std::istringstream is(text);
  try {
    (void)TimingModel::load(is);
    FAIL() << "duplicate vertex name must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate vertex name"),
              std::string::npos)
        << e.what();
  }
}

TEST(Boundary, ComputedFromNetlist) {
  const library::CellLibrary& lib = library::default_90nm();
  netlist::Netlist nl("b");
  const auto a = nl.add_primary_input("a");
  const auto b = nl.add_primary_input("b");
  const auto y = nl.add_net("y");
  const auto z = nl.add_net("z");
  nl.add_gate("g1", &lib.get("NAND2"), {a, b}, y);
  nl.add_gate("g2", &lib.get("INV"), {y, }, z);
  nl.mark_primary_output(z);
  const BoundaryData bd = compute_boundary(nl);
  ASSERT_EQ(bd.input_cap.size(), 2u);
  EXPECT_DOUBLE_EQ(bd.input_cap[0], lib.get("NAND2").input_cap);
  ASSERT_EQ(bd.output_drive_res.size(), 1u);
  EXPECT_DOUBLE_EQ(bd.output_drive_res[0], lib.get("INV").drive_res);
}

}  // namespace
}  // namespace hssta::model
