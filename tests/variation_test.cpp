// Tests for the variation model: parameter splits, correlation profile
// endpoints (the paper's 0.92 / 0.42 / cutoff-15 shape), grid partitioning,
// and VariationSpace invariants (covariance reproduction, layout).

#include <gtest/gtest.h>

#include <cmath>

#include "hssta/linalg/matrix.hpp"
#include "hssta/util/error.hpp"
#include "hssta/variation/grid.hpp"
#include "hssta/variation/parameters.hpp"
#include "hssta/variation/space.hpp"
#include "hssta/variation/spatial.hpp"

namespace hssta::variation {
namespace {

using placement::Die;
using placement::Point;

TEST(Parameters, Default90nmMatchesPaperNumbers) {
  const ParameterSet set = default_90nm_parameters();
  ASSERT_EQ(set.size(), 3u);
  EXPECT_DOUBLE_EQ(set.at(set.index_of("Leff")).sigma_rel, 0.157);
  EXPECT_DOUBLE_EQ(set.at(set.index_of("Tox")).sigma_rel, 0.053);
  EXPECT_DOUBLE_EQ(set.at(set.index_of("Vth")).sigma_rel, 0.044);
  EXPECT_DOUBLE_EQ(set.load_sigma_rel, 0.15);
  EXPECT_THROW((void)set.index_of("Frob"), Error);
}

TEST(Parameters, ComponentSigmasSquareToTotal) {
  const ProcessParameter p{"X", 0.1, 0.42, 0.53, 0.05};
  const double total2 = p.sigma_global() * p.sigma_global() +
                        p.sigma_local() * p.sigma_local() +
                        p.sigma_random() * p.sigma_random();
  EXPECT_NEAR(total2, 0.01, 1e-15);
}

TEST(Parameters, ValidationCatchesBadFractions) {
  ProcessParameter p{"X", 0.1, 0.5, 0.6, 0.05};  // sums to 1.15
  EXPECT_THROW(p.validate(), Error);
  p = ProcessParameter{"X", -0.1, 0.42, 0.53, 0.05};
  EXPECT_THROW(p.validate(), Error);
  ParameterSet dup;
  dup.params = {ProcessParameter{"A", 0.1, 0.42, 0.53, 0.05},
                ProcessParameter{"A", 0.1, 0.42, 0.53, 0.05}};
  EXPECT_THROW(dup.validate(), Error);
}

TEST(Spatial, ProfileHitsPaperEndpoints) {
  const SpatialCorrelationModel m(SpatialCorrelationConfig{}, 0.42, 0.53);
  // Same grid: global + local shared.
  EXPECT_NEAR(m.total_rho(0.0), 0.95, 1e-12);
  // Neighbouring grids: the paper's 0.92.
  EXPECT_NEAR(m.total_rho(1.0), 0.92, 1e-12);
  // At/beyond the cutoff: only the global floor 0.42.
  EXPECT_NEAR(m.total_rho(15.0), 0.42, 1e-12);
  EXPECT_NEAR(m.total_rho(40.0), 0.42, 1e-12);
  // Close to the floor already just inside the cutoff.
  EXPECT_LT(m.total_rho(14.9), 0.44);
}

TEST(Spatial, LocalRhoMonotoneDecreasing) {
  const SpatialCorrelationModel m(SpatialCorrelationConfig{}, 0.42, 0.53);
  double prev = m.local_rho(0.0);
  EXPECT_DOUBLE_EQ(prev, 1.0);
  for (double d = 0.5; d <= 20.0; d += 0.5) {
    const double r = m.local_rho(d);
    EXPECT_LE(r, prev + 1e-12) << "at distance " << d;
    EXPECT_GE(r, 0.0);
    prev = r;
  }
}

TEST(Spatial, RejectsImpossibleTargets) {
  SpatialCorrelationConfig cfg;
  cfg.rho_neighbor = 0.99;  // needs local rho(1) = (0.99-0.42)/0.3 > 1
  EXPECT_THROW(SpatialCorrelationModel(cfg, 0.42, 0.30), Error);
  cfg = SpatialCorrelationConfig{};
  cfg.rho_global = 0.95;  // floor above neighbour correlation
  EXPECT_THROW(SpatialCorrelationModel(cfg, 0.42, 0.53), Error);
}

TEST(Grid, RegularPartitionIndexing) {
  const GridPartition g(Die{100.0, 50.0}, 4, 2);
  EXPECT_EQ(g.num_grids(), 8u);
  EXPECT_DOUBLE_EQ(g.pitch_x(), 25.0);
  EXPECT_DOUBLE_EQ(g.pitch_y(), 25.0);
  EXPECT_EQ(g.grid_of(Point{1.0, 1.0}), 0u);
  EXPECT_EQ(g.grid_of(Point{99.0, 1.0}), 3u);
  EXPECT_EQ(g.grid_of(Point{1.0, 49.0}), 4u);
  EXPECT_EQ(g.grid_of(Point{99.0, 49.0}), 7u);
  // Outside points clamp.
  EXPECT_EQ(g.grid_of(Point{-5.0, -5.0}), 0u);
  EXPECT_EQ(g.grid_of(Point{1000.0, 1000.0}), 7u);
  // Centers are inside their grid.
  const Point c5 = g.center(5);
  EXPECT_EQ(g.grid_of(c5), 5u);
}

TEST(Grid, ForCellCountRespectsBound) {
  const GridPartition g =
      GridPartition::for_cell_count(Die{80.0, 80.0}, 3512, 100);
  EXPECT_GE(g.num_grids(), 36u);   // ceil(3512/100)
  EXPECT_LE(g.num_grids(), 49u);   // not absurdly fine
  const GridPartition one = GridPartition::for_cell_count(Die{10, 10}, 5, 100);
  EXPECT_EQ(one.num_grids(), 1u);
}

TEST(Grid, GeometryDistances) {
  const GridPartition g(Die{40.0, 40.0}, 4, 4);
  const GridGeometry geom = g.geometry();
  ASSERT_EQ(geom.size(), 16u);
  EXPECT_DOUBLE_EQ(geom.unit, 10.0);
  EXPECT_DOUBLE_EQ(geom.distance(0, 1), 1.0);   // adjacent in x
  EXPECT_DOUBLE_EQ(geom.distance(0, 4), 1.0);   // adjacent in y
  EXPECT_NEAR(geom.distance(0, 5), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(geom.distance(0, 3), 3.0);
}

class SpaceTest : public ::testing::Test {
 protected:
  SpaceTest()
      : space_(default_90nm_parameters(),
               GridPartition(Die{60.0, 60.0}, 3, 3).geometry(),
               SpatialCorrelationConfig{}) {}
  VariationSpace space_;
};

TEST_F(SpaceTest, LayoutDimensions) {
  EXPECT_EQ(space_.num_params(), 3u);
  EXPECT_EQ(space_.num_grids(), 9u);
  EXPECT_EQ(space_.num_components(), 9u);  // no truncation by default
  EXPECT_EQ(space_.dim(), 3u + 3u * 9u);
  EXPECT_EQ(space_.global_index(2), 2u);
  EXPECT_EQ(space_.spatial_offset(0), 3u);
  EXPECT_EQ(space_.spatial_offset(2), 3u + 18u);
}

TEST_F(SpaceTest, PcaReconstructsCorrelation) {
  const linalg::Matrix rec = space_.pca().reconstructed_covariance();
  EXPECT_LT(rec.max_abs_diff(space_.correlation()), 1e-6);
}

TEST_F(SpaceTest, AccumulateReproducesParameterCovariance) {
  // Two cells in grids a and b: covariance of their parameter deviations
  // through the space must equal sigma_g^2 + sigma_l^2 * rho_local(dist).
  const size_t ga = 0, gb = 5;
  std::vector<double> ca(space_.dim(), 0.0), cb(space_.dim(), 0.0);
  const size_t p = 0;  // Leff
  space_.accumulate(p, ga, 1.0, ca);
  space_.accumulate(p, gb, 1.0, cb);
  const double cov = linalg::dot(ca, cb);
  const ProcessParameter& leff = space_.parameters().at(p);
  const double expected =
      leff.sigma_global() * leff.sigma_global() +
      leff.sigma_local() * leff.sigma_local() *
          space_.correlation_model().local_rho(space_.grids().distance(ga, gb));
  EXPECT_NEAR(cov, expected, 1e-9);

  // Same-cell variance (without the random part).
  const double var = linalg::dot(ca, ca);
  EXPECT_NEAR(var,
              leff.sigma_global() * leff.sigma_global() +
                  leff.sigma_local() * leff.sigma_local(),
              1e-9);
}

TEST_F(SpaceTest, DifferentParametersAreIndependent) {
  std::vector<double> c0(space_.dim(), 0.0), c1(space_.dim(), 0.0);
  space_.accumulate(0, 4, 1.0, c0);
  space_.accumulate(1, 4, 1.0, c1);
  EXPECT_DOUBLE_EQ(linalg::dot(c0, c1), 0.0);
}

TEST_F(SpaceTest, AccumulateValidatesArguments) {
  std::vector<double> c(space_.dim(), 0.0);
  EXPECT_THROW(space_.accumulate(7, 0, 1.0, c), Error);
  EXPECT_THROW(space_.accumulate(0, 99, 1.0, c), Error);
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(space_.accumulate(0, 0, 1.0, wrong), Error);
}

TEST(Space, TruncationReducesComponents) {
  linalg::PcaOptions opts;
  opts.min_explained = 0.95;
  const VariationSpace full(default_90nm_parameters(),
                            GridPartition(Die{40, 40}, 4, 4).geometry(),
                            SpatialCorrelationConfig{});
  const VariationSpace trunc(default_90nm_parameters(),
                             GridPartition(Die{40, 40}, 4, 4).geometry(),
                             SpatialCorrelationConfig{}, opts);
  EXPECT_LT(trunc.num_components(), full.num_components());
  EXPECT_GE(trunc.pca().explained, 0.95);
}

TEST(Space, RejectsMismatchedVarianceSplits) {
  ParameterSet bad = default_90nm_parameters();
  bad.params[1].global_frac = 0.60;
  bad.params[1].local_frac = 0.35;
  EXPECT_THROW(VariationSpace(bad,
                              GridPartition(Die{40, 40}, 2, 2).geometry(),
                              SpatialCorrelationConfig{}),
               Error);
}

TEST(Space, MakeModuleVariationAppliesCellBound) {
  // A fake placement of 950 cells on a 50x50 die.
  placement::Placement pl;
  pl.die = Die{50.0, 50.0};
  const ModuleVariation mv = make_module_variation(
      pl, 950, default_90nm_parameters(), SpatialCorrelationConfig{});
  EXPECT_GE(mv.partition.num_grids(), 10u);
  EXPECT_EQ(mv.space->num_grids(), mv.partition.num_grids());
}

TEST(Space, LargeGridCorrelationIsPcaClean) {
  // A realistic module-sized partition (6x6 grids): PCA must succeed with
  // at most marginal clipping despite the correlation cutoff clamp.
  const VariationSpace space(default_90nm_parameters(),
                             GridPartition(Die{120, 120}, 6, 6).geometry(),
                             SpatialCorrelationConfig{});
  EXPECT_LE(space.pca().clipped_negative, 2u);
  EXPECT_GT(space.pca().explained, 0.999);
}

}  // namespace
}  // namespace hssta::variation
