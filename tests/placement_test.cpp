// Tests for the row placer: bounds, determinism, locality, translation.

#include <gtest/gtest.h>

#include <cmath>

#include "hssta/library/cell_library.hpp"
#include "hssta/netlist/generate.hpp"
#include "hssta/placement/placement.hpp"
#include "hssta/util/error.hpp"

namespace hssta::placement {
namespace {

using netlist::GateId;
using netlist::Netlist;

const library::CellLibrary& lib() {
  static const library::CellLibrary l = library::default_90nm();
  return l;
}

Netlist sample_netlist() {
  netlist::RandomDagSpec spec;
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  spec.num_gates = 300;
  spec.num_pins = 560;
  spec.depth = 14;
  spec.seed = 21;
  return netlist::make_random_dag(spec, lib());
}

TEST(Placement, AllCellsInsideDie) {
  Netlist nl = sample_netlist();
  Placement p = place_rows(nl);
  EXPECT_GT(p.die.width, 0.0);
  EXPECT_GT(p.die.height, 0.0);
  ASSERT_EQ(p.gate_position.size(), nl.num_gates());
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Point& pt = p.gate(g);
    EXPECT_GE(pt.x, 0.0);
    EXPECT_LE(pt.x, p.die.width + 1e-9);
    EXPECT_GE(pt.y, 0.0);
    EXPECT_LE(pt.y, p.die.height + 1e-9);
  }
  for (const Point& pt : p.input_position) {
    EXPECT_DOUBLE_EQ(pt.x, 0.0);
    EXPECT_GE(pt.y, 0.0);
    EXPECT_LE(pt.y, p.die.height + 1e-9);
  }
}

TEST(Placement, RoughlySquareDie) {
  Netlist nl = sample_netlist();
  Placement p = place_rows(nl);
  const double aspect = p.die.width / p.die.height;
  EXPECT_GT(aspect, 0.5);
  EXPECT_LT(aspect, 2.0);
}

TEST(Placement, Deterministic) {
  Netlist nl = sample_netlist();
  Placement a = place_rows(nl);
  Placement b = place_rows(nl);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    EXPECT_DOUBLE_EQ(a.gate(g).x, b.gate(g).x);
    EXPECT_DOUBLE_EQ(a.gate(g).y, b.gate(g).y);
  }
}

TEST(Placement, ConnectedCellsAreNearbyOnAverage) {
  // Locality sanity: mean distance between connected cells must be well
  // below the mean distance between random cell pairs.
  Netlist nl = sample_netlist();
  Placement p = place_rows(nl);
  auto dist = [](const Point& a, const Point& b) {
    return std::hypot(a.x - b.x, a.y - b.y);
  };
  double connected = 0.0;
  size_t n_connected = 0;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    for (netlist::NetId f : nl.gate(g).fanins) {
      const netlist::GateId d = nl.driver(f);
      if (d == netlist::kNoGate) continue;
      connected += dist(p.gate(g), p.gate(d));
      ++n_connected;
    }
  }
  connected /= static_cast<double>(n_connected);

  double random = 0.0;
  size_t n_random = 0;
  for (GateId g = 0; g < nl.num_gates(); g += 7)
    for (GateId h = 3; h < nl.num_gates(); h += 11) {
      random += dist(p.gate(g), p.gate(h));
      ++n_random;
    }
  random /= static_cast<double>(n_random);
  EXPECT_LT(connected, 0.7 * random);
}

TEST(Placement, TranslateShiftsEverything) {
  Netlist nl = sample_netlist();
  Placement p = place_rows(nl);
  Placement t = translate(p, 100.0, -5.0);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    EXPECT_DOUBLE_EQ(t.gate(g).x, p.gate(g).x + 100.0);
    EXPECT_DOUBLE_EQ(t.gate(g).y, p.gate(g).y - 5.0);
  }
  EXPECT_DOUBLE_EQ(t.die.width, p.die.width);
}

TEST(Placement, RejectsBadOptions) {
  Netlist nl = sample_netlist();
  PlaceOptions bad;
  bad.row_height = 0.0;
  EXPECT_THROW((void)place_rows(nl, bad), Error);
  bad = PlaceOptions{};
  bad.utilization = 1.5;
  EXPECT_THROW((void)place_rows(nl, bad), Error);
}

}  // namespace
}  // namespace hssta::placement
