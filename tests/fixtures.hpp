// Shared test fixtures: a placed-and-extracted module under test (backed
// by the flow:: facade) and the paper-style 2x2 cross-connected
// hierarchical design built from it.

#pragma once

#include "hssta/flow/flow.hpp"
#include "hssta/hier/design.hpp"

namespace hssta::testing {

inline const library::CellLibrary& default_lib() {
  return *flow::default_library();
}

/// A module with everything the pipelines need, kept alive together. The
/// reference members let suites keep addressing the stages as fields while
/// the flow::Module handle owns them.
struct ModuleUnderTest {
  flow::Module module;
  const netlist::Netlist& netlist;
  const placement::Placement& placement;
  const variation::ModuleVariation& variation;
  const timing::BuiltGraph& built;
  const model::Extraction& extraction;

  explicit ModuleUnderTest(const netlist::RandomDagSpec& spec,
                           double delta = 0.05)
      : module(flow::Module::from_random_dag(spec)),
        netlist(module.netlist()),
        placement(module.placement()),
        variation(module.variation()),
        built(module.built()),
        extraction(
            module.extract_model(model::ExtractOptions{delta, true})) {}

  [[nodiscard]] const model::TimingModel& model() const {
    return extraction.model;
  }
};

/// Default small module spec used across suites.
inline netlist::RandomDagSpec small_module_spec(uint64_t seed = 77) {
  netlist::RandomDagSpec s;
  s.name = "mod";
  s.num_inputs = 8;
  s.num_outputs = 8;
  s.num_gates = 150;
  s.num_pins = 270;
  s.depth = 12;
  s.seed = seed;
  return s;
}

/// The paper's Fig. 7 topology at test scale: four abutted instances of one
/// module in two columns, outputs of the first column cross-connected to
/// the inputs of the second column.
inline hier::HierDesign make_quad_design(const ModuleUnderTest& m) {
  using hier::PortRef;
  const placement::Die mdie = m.model().die();
  hier::HierDesign d("quad",
                     placement::Die{2 * mdie.width, 2 * mdie.height});
  const size_t a = d.add_instance(
      {"a", &m.model(), {0, 0}, &m.netlist, &m.placement});
  const size_t b = d.add_instance(
      {"b", &m.model(), {0, mdie.height}, &m.netlist, &m.placement});
  const size_t c = d.add_instance(
      {"c", &m.model(), {mdie.width, 0}, &m.netlist, &m.placement});
  const size_t e = d.add_instance(
      {"e", &m.model(), {mdie.width, mdie.height}, &m.netlist, &m.placement});

  const size_t ni = m.model().graph().inputs().size();
  const size_t no = m.model().graph().outputs().size();
  for (size_t k = 0; k < ni; ++k) {
    d.add_connection({PortRef{k % 2 ? b : a, k % no}, PortRef{c, k}});
    d.add_connection({PortRef{k % 2 ? a : b, (k + 1) % no}, PortRef{e, k}});
  }
  for (size_t k = 0; k < ni; ++k) {
    d.add_primary_input({"pa" + std::to_string(k), {PortRef{a, k}}});
    d.add_primary_input({"pb" + std::to_string(k), {PortRef{b, k}}});
  }
  for (size_t k = 0; k < no; ++k) {
    d.add_primary_output({"qc" + std::to_string(k), PortRef{c, k}});
    d.add_primary_output({"qe" + std::to_string(k), PortRef{e, k}});
  }
  return d;
}

}  // namespace hssta::testing
