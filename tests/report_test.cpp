// util::JsonWriter unit tests and schema pins for the CLI's --json
// reports (flow::hier_report_json / eco_report_json / sweep_report_json).
// The schema checks keep the machine-readable surface stable: a field
// rename breaks consumers, so it must break a test first.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "hssta/check/check.hpp"
#include "hssta/flow/flow.hpp"
#include "hssta/flow/report.hpp"
#include "hssta/incr/scenario.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/json.hpp"

namespace hssta {
namespace {

// --- JsonWriter -------------------------------------------------------------

TEST(JsonWriter, EmitsNestedStructureWithCommas) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("name").value("soc");
  w.key("n").value(uint64_t{3});
  w.key("ok").value(true);
  w.key("list").begin_array();
  w.value(1).value(2).value(2.5);
  w.end_array();
  w.key("nothing").null();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(),
            "{\"name\":\"soc\",\"n\":3,\"ok\":true,"
            "\"list\":[1,2,2.5],\"nothing\":null}");
}

TEST(JsonWriter, EscapesStringsAndNonFiniteDoubles) {
  EXPECT_EQ(util::JsonWriter::escape("a\"b\\c\nd\te\x01"),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_array();
  w.value(std::nan(""));
  w.value(1.0 / 0.0);
  w.value(0.1);
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null,0.10000000000000001]");
}

TEST(JsonWriter, RejectsStructuralMisuse) {
  {
    std::ostringstream os;
    util::JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.value(1), Error);       // member without a key
    EXPECT_THROW(w.end_array(), Error);    // wrong closer
    w.key("k");
    EXPECT_THROW(w.key("k2"), Error);      // two keys in a row
  }
  {
    std::ostringstream os;
    util::JsonWriter w(os);
    w.value("done");
    EXPECT_TRUE(w.complete());
    EXPECT_THROW(w.value("again"), Error);  // two top-level values
  }
  {
    std::ostringstream os;
    util::JsonWriter w(os);
    EXPECT_THROW(w.key("k"), Error);  // key outside any object
    EXPECT_THROW(w.end_object(), Error);
    EXPECT_FALSE(w.complete());
  }
}

// --- report schemas ---------------------------------------------------------

constexpr const char* kBench =
    "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(y)\n"
    "g = NAND(a, b)\nx = AND(g, a)\ny = OR(g, b)\n";

flow::Design make_report_design() {
  flow::Config cfg;
  const flow::Module m = flow::Module::from_bench_string(kBench, cfg);
  flow::Design d("report", cfg);
  const size_t a = d.add_instance(m, 0, 0);
  const size_t b = d.add_instance(m, m.model().die().width, 0);
  d.connect(a, 0, b, 0);
  d.connect(a, 1, b, 1);
  d.expose_unconnected_ports();
  return d;
}

void expect_keys(const std::string& json,
                 const std::vector<std::string>& keys) {
  for (const std::string& k : keys)
    EXPECT_NE(json.find("\"" + k + "\":"), std::string::npos)
        << "missing key '" << k << "' in: " << json;
}

TEST(ReportJson, HierSchema) {
  const flow::Design d = make_report_design();
  const std::string json = flow::hier_report_json(d, d.analyze());
  expect_keys(json,
              {"design", "mode", "threads", "instances", "name", "model",
               "inputs", "outputs", "die", "width", "height", "connections",
               "build_seconds", "analysis_seconds", "delay", "mean", "sigma",
               "q90", "q99", "q9987"});
  EXPECT_EQ(json.find("\"cache\":"), std::string::npos)
      << "cache block must only appear when a cache is configured";
  // Structural sanity: balanced braces/brackets.
  int depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ReportJson, EcoSchemaAndIdenticalFlag) {
  const flow::Design d = make_report_design();
  flow::EcoReport r;
  r.change = "swap u0 -> variant";
  r.full_delay = d.analyze().delay();
  r.full_seconds = 0.5;
  r.incremental_delay = r.full_delay;
  r.incremental_seconds = 0.1;
  r.stats.analyses = 2;
  r.stats.full_builds = 1;
  r.stats.vertices_recomputed = 7;
  r.stats.vertices_live = 19;
  r.identical = r.incremental_delay == r.full_delay;
  const std::string json = flow::eco_report_json(d, r);
  expect_keys(json, {"design", "change", "fingerprint", "full",
                     "incremental", "delay",
                     "seconds", "stats", "analyses", "full_builds",
                     "coefficient_refreshes", "instances_restitched",
                     "connections_restitched", "vertices_recomputed",
                     "vertices_live", "speedup", "identical"});
  EXPECT_NE(json.find("\"identical\":true"), std::string::npos);
  EXPECT_NE(json.find("\"speedup\":5"), std::string::npos);
}

TEST(ReportJson, SweepSchemaIncludesErrorsAndResults) {
  const flow::Design d = make_report_design();
  const std::vector<incr::Scenario> scenarios{
      {"sigma Leff", {incr::SigmaScale{0, 1.2}}},
      {"broken", {incr::MoveInstance{99, 0, 0}}},
  };
  const std::vector<incr::ScenarioResult> results = d.scenarios(scenarios);
  const std::string json = flow::sweep_report_json(d, results);
  expect_keys(json, {"design", "scenarios", "label", "index", "fingerprint",
                     "changes", "ok", "seconds", "delay", "stats", "error"});
  EXPECT_NE(json.find("\"label\":\"sigma Leff\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
}

TEST(ReportJson, FailedScenarioCarriesIndexAndChangeDescription) {
  // The provenance regression: a failed what-if must name the originating
  // scenario position and change list, not just the exception text.
  const flow::Design d = make_report_design();
  const std::vector<incr::Scenario> scenarios{
      {"fine", {incr::SigmaScale{0, 1.1}}},
      {"broken", {incr::MoveInstance{99, 0, 0}}},
  };
  const std::vector<incr::ScenarioResult> results = d.scenarios(scenarios);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[0].index, 0u);
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].index, 1u);
  EXPECT_EQ(results[1].changes, "move u99 to (0, 0)");

  const util::JsonValue doc =
      util::JsonReader::parse(flow::sweep_report_json(d, results));
  const util::JsonValue& broken = doc.at("scenarios").items()[1];
  EXPECT_FALSE(broken.at("ok").as_bool());
  EXPECT_EQ(broken.at("index").as_count("index"), 1u);
  EXPECT_EQ(broken.at("changes").as_string(), "move u99 to (0, 0)");
  EXPECT_FALSE(broken.at("error").as_string().empty());
}

// --- round-trip validation through JsonReader -------------------------------

TEST(ReportJson, HierReportRoundTripsThroughReader) {
  const flow::Design d = make_report_design();
  const hier::HierResult& r = d.analyze();
  const util::JsonValue doc =
      util::JsonReader::parse(flow::hier_report_json(d, r));
  EXPECT_EQ(doc.at("design").as_string(), "report");
  EXPECT_EQ(doc.at("instances").items().size(), d.num_instances());
  // %.17g emission + strict strtod parsing: doubles survive bit-exactly.
  EXPECT_EQ(doc.at("delay").at("mean").as_number(), r.delay().nominal());
  EXPECT_EQ(doc.at("delay").at("sigma").as_number(), r.delay().sigma());
  EXPECT_EQ(doc.at("delay").at("q9987").as_number(),
            r.delay().quantile(0.9987));
}

TEST(ReportJson, EcoAndSweepReportsRoundTripThroughReader) {
  const flow::Design d = make_report_design();
  flow::EcoReport r;
  r.change = "swap \"u0\" -> variant\n(second line)";  // exercises escaping
  r.full_delay = d.analyze().delay();
  r.full_seconds = 0.5;
  r.incremental_delay = r.full_delay;
  r.incremental_seconds = 0.1;
  r.stats.vertices_recomputed = 7;
  r.identical = true;
  const util::JsonValue eco =
      util::JsonReader::parse(flow::eco_report_json(d, r));
  EXPECT_EQ(eco.at("change").as_string(), r.change);
  EXPECT_EQ(eco.at("full").at("delay").at("mean").as_number(),
            r.full_delay.nominal());
  EXPECT_EQ(eco.at("incremental").at("stats").at("vertices_recomputed")
                .as_count("n"),
            7u);
  EXPECT_TRUE(eco.at("identical").as_bool());

  const std::vector<incr::Scenario> scenarios{
      {"s", {incr::SigmaScale{0, 1.2}}}};
  const std::vector<incr::ScenarioResult> results = d.scenarios(scenarios);
  const util::JsonValue sweep =
      util::JsonReader::parse(flow::sweep_report_json(d, results));
  ASSERT_EQ(sweep.at("scenarios").items().size(), 1u);
  EXPECT_EQ(sweep.at("scenarios").items()[0].at("delay").at("mean")
                .as_number(),
            results[0].delay.nominal());
}

// --- check report schema ----------------------------------------------------

TEST(ReportJson, CheckReportSchemaAndRoundTrip) {
  check::Report rep;
  rep.subject = "lint\"me";  // exercises escaping
  rep.instances_checked = 4;
  rep.diagnostics.push_back({"HSC002", check::Severity::kError, "n7",
                             "net 'n7' has no driver", "add a driver"});
  rep.diagnostics.push_back({"HSC003", check::Severity::kWarning, "g1",
                             "gate 'g1' output has no fanout", "remove it"});
  rep.diagnostics.push_back({"HSC010", check::Severity::kInfo, "a",
                             "primary input 'a' is unused", "drop the port"});
  const std::string json = check::report_json(rep);
  expect_keys(json, {"subject", "worst", "errors", "warnings", "infos",
                     "instances", "diagnostics", "id", "severity", "object",
                     "message", "hint"});

  const util::JsonValue doc = util::JsonReader::parse(json);
  EXPECT_EQ(doc.at("subject").as_string(), "lint\"me");
  EXPECT_EQ(doc.at("worst").as_string(), "error");
  EXPECT_EQ(doc.at("errors").as_count("errors"), 1u);
  EXPECT_EQ(doc.at("warnings").as_count("warnings"), 1u);
  EXPECT_EQ(doc.at("infos").as_count("infos"), 1u);
  EXPECT_EQ(doc.at("instances").as_count("instances"), 4u);
  const auto& diags = doc.at("diagnostics").items();
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].at("id").as_string(), "HSC002");
  EXPECT_EQ(diags[0].at("severity").as_string(), "error");
  EXPECT_EQ(diags[0].at("object").as_string(), "n7");
  EXPECT_EQ(diags[0].at("message").as_string(), "net 'n7' has no driver");
  EXPECT_EQ(diags[0].at("hint").as_string(), "add a driver");
  EXPECT_EQ(diags[2].at("severity").as_string(), "info");
}

TEST(ReportJson, CleanCheckReportSaysClean) {
  check::Report rep;
  rep.subject = "ok";
  const util::JsonValue doc =
      util::JsonReader::parse(check::report_json(rep));
  EXPECT_EQ(doc.at("worst").as_string(), "clean");
  EXPECT_EQ(doc.at("errors").as_count("errors"), 0u);
  EXPECT_TRUE(doc.at("diagnostics").items().empty());
}

}  // namespace
}  // namespace hssta
