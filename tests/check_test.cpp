// hssta::check tests: one trigger test per rule id, clean-design sweeps
// (ISCAS profiles, seeded random DAGs, seeded synthetic graphs), seeded
// mutation fuzz with per-defect rule closures, severity overrides and the
// catalog/exit-code contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fixtures.hpp"
#include "hssta/check/check.hpp"
#include "hssta/exec/executor.hpp"
#include "hssta/flow/config.hpp"
#include "hssta/library/cell_library.hpp"
#include "hssta/model/timing_model.hpp"
#include "hssta/netlist/generate.hpp"
#include "hssta/netlist/iscas.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/util/error.hpp"
#include "hssta/variation/space.hpp"
#include "synthetic_graphs.hpp"

namespace hssta {
namespace {

using check::CheckOptions;
using check::Report;
using check::Severity;

const library::CellType& cell(const char* name) {
  return testing::default_lib().get(name);
}

/// The defect closure contract of the mutation fuzz: the injected defect's
/// primary rule must fire, and every fired rule must be the primary or one
/// of the expected knock-on rules.
void expect_within(const Report& rep, std::string_view primary,
                   std::initializer_list<std::string_view> knock_on) {
  EXPECT_TRUE(rep.has(primary)) << "missing " << primary << "\n"
                                << rep.summary();
  for (const check::Diagnostic& d : rep.diagnostics) {
    const bool allowed =
        d.id == primary ||
        std::find(knock_on.begin(), knock_on.end(), d.id) != knock_on.end();
    EXPECT_TRUE(allowed) << "unexpected " << d.id << ": " << d.message;
  }
}

/// a & b -> x, x is PO: passes every structural rule.
netlist::Netlist tiny_clean_netlist() {
  netlist::Netlist nl("tiny");
  const netlist::NetId a = nl.add_primary_input("a");
  const netlist::NetId b = nl.add_primary_input("b");
  const netlist::NetId x = nl.add_net("x");
  nl.add_gate("g1", &cell("AND2"), {a, b}, x);
  nl.mark_primary_output(x);
  return nl;
}

/// One-input one-output model over a 1x1-grid space: `in -> out` with a
/// constant delay. `params`/`pca_opts` let tests craft degenerate spaces.
model::TimingModel tiny_model(const std::string& name,
                              variation::ParameterSet params,
                              linalg::PcaOptions pca_opts = {}) {
  const placement::Die die{10.0, 10.0};
  const variation::GridPartition part(die, 1, 1);
  auto space = std::make_shared<const variation::VariationSpace>(
      std::move(params), part.geometry(),
      variation::SpatialCorrelationConfig{}, pca_opts);
  timing::TimingGraph g(space);
  const timing::VertexId in = g.add_vertex("in", /*is_input=*/true);
  const timing::VertexId out =
      g.add_vertex("out", /*is_input=*/false, /*is_output=*/true);
  g.add_edge(in, out, timing::CanonicalForm::constant(1.0, g.dim()));
  model::BoundaryData boundary;
  boundary.input_cap = {0.1};
  boundary.output_drive_res = {0.2};
  return {name, std::move(g), variation::ModuleVariation{part, space},
          std::move(boundary)};
}

model::TimingModel tiny_model(const std::string& name = "tiny") {
  return tiny_model(name, variation::default_90nm_parameters());
}

/// Two tiny-model instances in a row: pi -> a -> b -> po.
hier::HierDesign duo_design(const model::TimingModel& tm) {
  hier::HierDesign d("duo", placement::Die{20.0, 20.0});
  const size_t a = d.add_instance({"a", &tm, {0.0, 0.0}, nullptr, nullptr});
  const size_t b = d.add_instance({"b", &tm, {10.0, 0.0}, nullptr, nullptr});
  d.add_connection({hier::PortRef{a, 0}, hier::PortRef{b, 0}});
  d.add_primary_input({"pi0", {hier::PortRef{a, 0}}});
  d.add_primary_output({"po0", hier::PortRef{b, 0}});
  return d;
}

// --- catalog / severity / report plumbing -----------------------------------

TEST(CheckCatalog, IdsAreSortedUniqueAndResolvable) {
  const auto catalog = check::rule_catalog();
  ASSERT_FALSE(catalog.empty());
  for (size_t i = 0; i < catalog.size(); ++i) {
    const check::RuleInfo& r = catalog[i];
    EXPECT_EQ(check::find_rule(r.id), &r);
    EXPECT_FALSE(r.meaning.empty());
    EXPECT_FALSE(r.hint.empty());
    EXPECT_TRUE(r.family == "structural" || r.family == "numeric" ||
                r.family == "hierarchy" || r.family == "sequential")
        << r.id;
    if (i > 0) EXPECT_LT(catalog[i - 1].id, r.id);
  }
  EXPECT_EQ(check::find_rule("HSC999"), nullptr);
  EXPECT_EQ(check::find_rule(""), nullptr);
}

TEST(CheckCatalog, SeverityNamesRoundTrip) {
  EXPECT_EQ(check::severity_from_name("off"), Severity::kOff);
  EXPECT_EQ(check::severity_from_name("info"), Severity::kInfo);
  EXPECT_EQ(check::severity_from_name("warning"), Severity::kWarning);
  EXPECT_EQ(check::severity_from_name("warn"), Severity::kWarning);
  EXPECT_EQ(check::severity_from_name("error"), Severity::kError);
  EXPECT_THROW((void)check::severity_from_name("loud"), Error);
  EXPECT_STREQ(check::severity_name(Severity::kWarning), "warning");
}

TEST(CheckReport, WorstCountMergeAndExitCode) {
  Report rep;
  rep.subject = "s";
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.worst(), Severity::kOff);
  EXPECT_EQ(check::exit_code(rep), 0);

  rep.diagnostics.push_back(
      {"HSC010", Severity::kInfo, "a", "unused input", "remove it"});
  EXPECT_EQ(check::exit_code(rep), 0);  // info does not gate
  rep.diagnostics.push_back(
      {"HSC003", Severity::kWarning, "g", "dead gate", "remove it"});
  EXPECT_EQ(rep.worst(), Severity::kWarning);
  EXPECT_EQ(check::exit_code(rep), 1);

  Report other;
  other.diagnostics.push_back(
      {"HSC002", Severity::kError, "n", "undriven", "drive it"});
  check::merge(rep, std::move(other));
  EXPECT_EQ(rep.diagnostics.size(), 3u);
  EXPECT_EQ(rep.worst(), Severity::kError);
  EXPECT_EQ(check::exit_code(rep), 2);
  EXPECT_EQ(rep.count(Severity::kError), 1u);
  EXPECT_TRUE(rep.has("HSC002"));
  EXPECT_FALSE(rep.has("HSC001"));
  EXPECT_NE(rep.summary().find("error HSC002 n: undriven"),
            std::string::npos);
}

TEST(CheckOptionsTest, OffSuppressesAndOverridesRemapSeverity) {
  netlist::Netlist nl = tiny_clean_netlist();
  (void)nl.add_primary_input("unused");  // HSC010 (info)
  const netlist::NetId y = nl.add_net("y");
  nl.add_gate("dead", &cell("INV"), {nl.net_by_name("a")}, y);  // HSC003

  const Report plain = check::run_checks(nl);
  EXPECT_TRUE(plain.has("HSC003"));
  EXPECT_TRUE(plain.has("HSC010"));
  EXPECT_EQ(check::exit_code(plain), 1);

  CheckOptions opts;
  opts.severity["HSC003"] = Severity::kOff;
  opts.severity["HSC010"] = Severity::kError;
  const Report tuned = check::run_checks(nl, opts);
  EXPECT_FALSE(tuned.has("HSC003"));
  EXPECT_TRUE(tuned.has("HSC010"));
  EXPECT_EQ(tuned.worst(), Severity::kError);
  EXPECT_EQ(check::exit_code(tuned), 2);
}

TEST(CheckConfig, SeverityTableParsesAndRejectsUnknownRules) {
  flow::Config cfg;
  cfg.set("check.HSC003", "off");
  cfg.set("check.HSC010", "warn");
  EXPECT_EQ(cfg.check_severity.at("HSC003"), Severity::kOff);
  EXPECT_EQ(cfg.check_severity.at("HSC010"), Severity::kWarning);
  EXPECT_THROW(cfg.set("check.HSC999", "warn"), Error);
  EXPECT_THROW(cfg.set("check.HSC003", "loud"), Error);
}

// --- structural netlist rules ------------------------------------------------

TEST(CheckNetlist, CleanNetlistIsClean) {
  const Report rep = check::run_checks(tiny_clean_netlist());
  EXPECT_TRUE(rep.clean()) << rep.summary();
  EXPECT_EQ(rep.subject, "tiny");
}

TEST(CheckNetlist, CombinationalCycleIsHSC001WithPath) {
  netlist::Netlist nl("cyc");
  const netlist::NetId a = nl.add_primary_input("a");
  const netlist::NetId x = nl.add_net("x");
  const netlist::NetId y = nl.add_net("y");
  nl.add_gate("g1", &cell("AND2"), {a, y}, x);
  nl.add_gate("g2", &cell("AND2"), {x, a}, y);
  nl.mark_primary_output(x);
  const Report rep = check::run_checks(nl);
  expect_within(rep, "HSC001", {});
  ASSERT_EQ(rep.diagnostics.size(), 1u);  // one diagnostic per cycle region
  EXPECT_NE(rep.diagnostics[0].message.find("g1 -> g2 -> g1"),
            std::string::npos)
      << rep.diagnostics[0].message;
  EXPECT_NE(rep.diagnostics[0].message.find("2 gate(s)"), std::string::npos);
  EXPECT_EQ(check::exit_code(rep), 2);
}

TEST(CheckNetlist, UndrivenNetIsHSC002) {
  netlist::Netlist nl = tiny_clean_netlist();
  const netlist::NetId dangling = nl.add_net("dangling");
  nl.gate(0).fanins[1] = dangling;
  const Report rep = check::run_checks(nl);
  expect_within(rep, "HSC002", {"HSC010"});  // net 'b' lost its sink
  EXPECT_EQ(rep.diagnostics[0].object, "dangling");
}

TEST(CheckNetlist, DeadGateOutputIsHSC003) {
  netlist::Netlist nl = tiny_clean_netlist();
  const netlist::NetId y = nl.add_net("y");
  nl.add_gate("dead", &cell("AND2"),
              {nl.net_by_name("a"), nl.net_by_name("b")}, y);
  const Report rep = check::run_checks(nl);
  expect_within(rep, "HSC003", {});
  EXPECT_EQ(rep.diagnostics[0].object, "dead");
}

TEST(CheckNetlist, DuplicateFaninPinIsHSC004) {
  netlist::Netlist nl = tiny_clean_netlist();
  nl.gate(0).fanins[1] = nl.gate(0).fanins[0];
  const Report rep = check::run_checks(nl);
  expect_within(rep, "HSC004", {"HSC010"});  // net 'b' lost its sink
}

TEST(CheckNetlist, IsolatedCycleConeIsHSC005AndHSC006) {
  netlist::Netlist nl = tiny_clean_netlist();
  const netlist::NetId u = nl.add_net("u");
  const netlist::NetId v = nl.add_net("v");
  nl.add_gate("r1", &cell("INV"), {v}, u);
  nl.add_gate("r2", &cell("INV"), {u}, v);
  const Report rep = check::run_checks(nl);
  expect_within(rep, "HSC001", {"HSC005", "HSC006"});
  EXPECT_TRUE(rep.has("HSC005"));  // r1/r2 unreachable from any PI
  EXPECT_TRUE(rep.has("HSC006"));  // fanout, but no path to a PO
}

TEST(CheckNetlist, InputMarkedOutputIsHSC007) {
  netlist::Netlist nl("feedthrough");
  const netlist::NetId a = nl.add_primary_input("a");
  nl.mark_primary_output(a);
  const Report rep = check::run_checks(nl);
  expect_within(rep, "HSC007", {});
  EXPECT_NE(rep.diagnostics[0].message.find("both primary input"),
            std::string::npos);
}

TEST(CheckNetlist, DuplicateNamesAreHSC007) {
  netlist::Netlist nl = tiny_clean_netlist();
  const netlist::NetId d1 = nl.add_primary_input("dup");
  const netlist::NetId d2 = nl.add_primary_input("dup");
  const netlist::NetId o1 = nl.add_net("o1");
  const netlist::NetId o2 = nl.add_net("o2");
  nl.add_gate("twin", &cell("INV"), {d1}, o1);
  nl.add_gate("twin", &cell("INV"), {d2}, o2);
  nl.mark_primary_output(o1);
  nl.mark_primary_output(o2);
  const Report rep = check::run_checks(nl);
  EXPECT_EQ(rep.count(Severity::kWarning), 2u) << rep.summary();
  EXPECT_TRUE(rep.has("HSC007"));
  EXPECT_NE(rep.summary().find("2 nets share the name 'dup'"),
            std::string::npos);
  EXPECT_NE(rep.summary().find("2 gates share the name 'twin'"),
            std::string::npos);
}

TEST(CheckNetlist, MissingPortsAreHSC008) {
  const netlist::Netlist empty("void");
  const Report rep = check::run_checks(empty);
  EXPECT_EQ(rep.count(Severity::kError), 2u);  // no PIs and no POs
  EXPECT_TRUE(rep.has("HSC008"));

  netlist::Netlist nopo("nopo");
  const netlist::NetId a = nopo.add_primary_input("a");
  const netlist::NetId x = nopo.add_net("x");
  nopo.add_gate("g", &cell("INV"), {a}, x);
  const Report rep2 = check::run_checks(nopo);
  expect_within(rep2, "HSC008", {"HSC003"});
}

TEST(CheckNetlist, ArityMismatchAndNullTypeAreHSC009) {
  netlist::Netlist nl = tiny_clean_netlist();
  nl.gate(0).fanins.pop_back();  // AND2 with one pin
  const Report rep = check::run_checks(nl);
  expect_within(rep, "HSC009", {"HSC010"});
  EXPECT_NE(rep.summary().find("expects 2"), std::string::npos);

  netlist::Netlist nl2 = tiny_clean_netlist();
  nl2.gate(0).type = nullptr;
  const Report rep2 = check::run_checks(nl2);
  expect_within(rep2, "HSC009", {});
  EXPECT_NE(rep2.summary().find("no cell type"), std::string::npos);
}

TEST(CheckNetlist, UnusedPrimaryInputIsHSC010) {
  netlist::Netlist nl = tiny_clean_netlist();
  (void)nl.add_primary_input("spare");
  const Report rep = check::run_checks(nl);
  expect_within(rep, "HSC010", {});
  EXPECT_EQ(rep.worst(), Severity::kInfo);
  EXPECT_EQ(check::exit_code(rep), 0);
}

/// A minimal clean sequential netlist: a register loop (q -> g_d -> d -> q)
/// whose state is observed at a primary output through g_y.
netlist::Netlist tiny_sequential_netlist() {
  netlist::Netlist nl("seqtiny");
  const netlist::NetId a = nl.add_primary_input("a");
  const netlist::NetId q = nl.add_net("q");
  const netlist::NetId d = nl.add_net("d");
  const netlist::NetId y = nl.add_net("y");
  nl.add_gate("g_d", &cell("NAND2"), {a, q}, d);
  nl.add_gate("g_y", &cell("INV"), {q}, y);
  nl.add_register("q", d, q);
  nl.mark_primary_output(y);
  return nl;
}

TEST(CheckNetlist, CleanSequentialNetlistIsClean) {
  const netlist::Netlist nl = tiny_sequential_netlist();
  nl.validate();
  const Report rep = check::run_checks(nl);
  EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(CheckNetlist, RegisterUndrivenDataIsHSC048) {
  netlist::Netlist nl("seq048d");
  const netlist::NetId a = nl.add_primary_input("a");
  const netlist::NetId dangling = nl.add_net("dangling");
  const netlist::NetId q = nl.add_net("q");
  const netlist::NetId y = nl.add_net("y");
  nl.add_gate("g_y", &cell("NAND2"), {a, q}, y);
  nl.add_register("q", dangling, q);
  nl.mark_primary_output(y);
  const Report rep = check::run_checks(nl);
  // The dangling data net is also an undriven net (HSC002).
  expect_within(rep, "HSC048", {"HSC002"});
  EXPECT_TRUE(rep.has("HSC002"));
  EXPECT_NE(rep.summary().find("data net 'dangling' is undriven"),
            std::string::npos)
      << rep.summary();
}

TEST(CheckNetlist, RegisterUndrivenClockIsHSC048Alone) {
  netlist::Netlist nl("seq048c");
  const netlist::NetId a = nl.add_primary_input("a");
  const netlist::NetId q = nl.add_net("q");
  const netlist::NetId d = nl.add_net("d");
  const netlist::NetId clk = nl.add_net("clk");  // never driven
  nl.add_gate("g_d", &cell("NAND2"), {a, q}, d);
  nl.add_register("q", d, q, clk);
  nl.mark_primary_output(q);
  const Report rep = check::run_checks(nl);
  // A clock-only undriven net is HSC048's finding, not a duplicate HSC002.
  expect_within(rep, "HSC048", {});
  EXPECT_NE(rep.summary().find("clock net 'clk' is undriven"),
            std::string::npos)
      << rep.summary();
}

TEST(CheckNetlist, LatchFreeCycleInSequentialNetlistIsHSC049) {
  netlist::Netlist nl = tiny_sequential_netlist();
  const netlist::NetId u = nl.add_net("u");
  const netlist::NetId v = nl.add_net("v");
  nl.add_gate("c1", &cell("INV"), {v}, u);
  nl.add_gate("c2", &cell("INV"), {u}, v);
  const Report rep = check::run_checks(nl);
  expect_within(rep, "HSC049", {"HSC005", "HSC006"});
  EXPECT_NE(
      rep.summary().find("combinational cycle through a latch-free path"),
      std::string::npos)
      << rep.summary();
  // The register-broken loop of the base fixture must NOT be reported:
  // only the latch-free c1/c2 loop is a finding.
  EXPECT_FALSE(rep.has("HSC001"));
}

TEST(CheckNetlist, UnobservedRegisterIsHSC050) {
  netlist::Netlist nl = tiny_sequential_netlist();
  const netlist::NetId q2 = nl.add_net("q2");
  const netlist::NetId d2 = nl.add_net("d2");
  nl.add_gate("g_d2", &cell("INV"), {q2}, d2);
  nl.add_register("q2", d2, q2);
  const Report rep = check::run_checks(nl);
  // g_d2 also has no path to a PO (HSC006).
  expect_within(rep, "HSC050", {"HSC006"});
  EXPECT_NE(rep.summary().find("output net 'q2' never reaches a primary"),
            std::string::npos)
      << rep.summary();
  // The observed register of the base fixture is not flagged.
  EXPECT_EQ(rep.summary().find("'q' "), std::string::npos) << rep.summary();
}

TEST(CheckNetlist, FiftySeededRandomDagsAreClean) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    stats::Rng shape(2026 + seed);
    netlist::RandomDagSpec spec;
    spec.name = "rnd" + std::to_string(seed);
    spec.num_inputs = 4 + shape.uniform_index(8);
    spec.num_outputs = 3 + shape.uniform_index(6);
    spec.num_gates = 40 + shape.uniform_index(80);
    spec.num_pins = spec.num_gates + spec.num_gates / 2 +
                    shape.uniform_index(spec.num_gates);
    spec.depth = 4 + shape.uniform_index(8);
    spec.seed = seed * 7919 + 1;
    const netlist::Netlist nl =
        netlist::make_random_dag(spec, testing::default_lib());
    const Report rep = check::run_checks(nl);
    EXPECT_TRUE(rep.clean()) << spec.name << "\n" << rep.summary();
  }
}

TEST(CheckIscas, AllProfilesAreCleanOnNetlistAndGraph) {
  for (const netlist::IscasProfile& prof : netlist::iscas85_profiles()) {
    const flow::Module m = flow::Module::from_iscas(prof.name);
    const Report nrep = check::run_checks(m.netlist());
    EXPECT_TRUE(nrep.clean()) << prof.name << "\n" << nrep.summary();
    const Report grep = check::run_checks(m.graph(), std::string(prof.name));
    EXPECT_TRUE(grep.clean()) << prof.name << "\n" << grep.summary();
  }
}

// --- numeric graph / model / space rules -------------------------------------

timing::TimingGraph synthetic_graph(uint64_t seed) {
  stats::Rng rng(seed);
  testing::SyntheticGraphSpec spec;
  spec.dim = 3;
  return testing::make_synthetic_graph(spec, rng);
}

timing::EdgeId first_live_edge(const timing::TimingGraph& g) {
  for (timing::EdgeId e = 0; e < g.num_edge_slots(); ++e)
    if (g.edge_alive(e)) return e;
  ADD_FAILURE() << "graph has no live edge";
  return 0;
}

TEST(CheckGraph, FiftySeededSyntheticGraphsAreClean) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    stats::Rng rng(31 * seed + 7);
    const testing::SyntheticGraphSpec spec = testing::random_spec(rng);
    const timing::TimingGraph g = testing::make_synthetic_graph(spec, rng);
    const Report rep = check::run_checks(g, "syn" + std::to_string(seed));
    EXPECT_TRUE(rep.clean()) << "seed " << seed << "\n" << rep.summary();
  }
}

TEST(CheckGraph, NanNominalIsHSC020) {
  timing::TimingGraph g = synthetic_graph(1);
  g.edge(first_live_edge(g)).delay.set_nominal(std::nan(""));
  const Report rep = check::run_checks(g, "syn");
  expect_within(rep, "HSC020", {});
  EXPECT_EQ(rep.diagnostics.size(), 1u);
}

TEST(CheckGraph, InfiniteCoefficientIsHSC020) {
  timing::TimingGraph g = synthetic_graph(2);
  g.edge(first_live_edge(g)).delay.corr()[0] =
      std::numeric_limits<double>::infinity();
  const Report rep = check::run_checks(g, "syn");
  expect_within(rep, "HSC020", {});
}

TEST(CheckGraph, NegativeNominalIsHSC021) {
  timing::TimingGraph g = synthetic_graph(3);
  g.edge(first_live_edge(g)).delay.set_nominal(-0.25);
  const Report rep = check::run_checks(g, "syn");
  expect_within(rep, "HSC021", {});
  EXPECT_EQ(check::exit_code(rep), 1);
}

TEST(CheckGraph, NegativeRandomSigmaIsHSC022) {
  timing::TimingGraph g = synthetic_graph(4);
  // A FormView writes past set_random's non-negativity guard — exactly the
  // kind of kernel bug this rule exists to catch.
  *g.edge(first_live_edge(g)).delay.view().random = -0.01;
  const Report rep = check::run_checks(g, "syn");
  expect_within(rep, "HSC022", {});
}

TEST(CheckModel, TinyAndExtractedModelsAreClean) {
  const Report tiny = check::run_checks(tiny_model());
  EXPECT_TRUE(tiny.clean()) << tiny.summary();

  const testing::ModuleUnderTest m(testing::small_module_spec());
  const Report rep = check::run_checks(m.model());
  EXPECT_TRUE(rep.clean()) << rep.summary();
  EXPECT_EQ(rep.subject, m.model().name());
}

TEST(CheckModel, NonFiniteDelayIsHSC020) {
  model::TimingModel tm = tiny_model();
  tm.graph().edge(0).delay.set_nominal(std::nan(""));
  const Report rep = check::run_checks(tm);
  expect_within(rep, "HSC020", {});
}

TEST(CheckModel, MissingSpaceIsHSC023) {
  const variation::GridPartition part(placement::Die{10.0, 10.0}, 1, 1);
  timing::TimingGraph g(size_t{3});
  const timing::VertexId in = g.add_vertex("in", true);
  const timing::VertexId out = g.add_vertex("out", false, true);
  g.add_edge(in, out, timing::CanonicalForm::constant(1.0, 3));
  model::BoundaryData boundary;
  boundary.input_cap = {0.1};
  boundary.output_drive_res = {0.2};
  const model::TimingModel tm("spaceless", std::move(g),
                              variation::ModuleVariation{part, nullptr},
                              std::move(boundary));
  const Report rep = check::run_checks(tm);
  expect_within(rep, "HSC023", {});
  EXPECT_NE(rep.summary().find("no variation space"), std::string::npos);
}

TEST(CheckModel, ZeroRetainedPcaIsHSC023) {
  linalg::PcaOptions pca;
  pca.max_components = 0;
  const model::TimingModel tm =
      tiny_model("degenerate", variation::default_90nm_parameters(), pca);
  const Report rep = check::run_checks(tm);
  expect_within(rep, "HSC023", {});
  EXPECT_NE(rep.summary().find("zero spatial components"), std::string::npos);
}

TEST(CheckModel, ZeroSigmaParameterIsHSC024) {
  variation::ParameterSet params = variation::default_90nm_parameters();
  params.params[0].sigma_rel = 0.0;
  const Report rep = check::run_checks(tiny_model("zsig", std::move(params)));
  expect_within(rep, "HSC024", {});
  EXPECT_EQ(rep.diagnostics[0].object, "Leff");
}

TEST(CheckModel, NonFiniteLoadSigmaIsHSC024) {
  variation::ParameterSet params = variation::default_90nm_parameters();
  params.load_sigma_rel = std::numeric_limits<double>::infinity();
  const Report rep = check::run_checks(tiny_model("zload", std::move(params)));
  expect_within(rep, "HSC024", {});
  EXPECT_NE(rep.summary().find("load_sigma_rel"), std::string::npos);
}

TEST(CheckModel, BoundaryArityMismatchIsHSC043) {
  model::TimingModel tm = tiny_model();
  // Grow the port list after construction; the stored boundary vectors are
  // now stale — exactly what a hand-edited .hstm can produce.
  (void)tm.graph().add_vertex("in2", /*is_input=*/true);
  const Report rep = check::run_checks(tm);
  expect_within(rep, "HSC043", {});
  EXPECT_NE(rep.summary().find("input_cap"), std::string::npos);
}

// --- hierarchy rules ---------------------------------------------------------

TEST(CheckHier, CleanDuoAndQuadDesigns) {
  const model::TimingModel tm = tiny_model();
  const hier::HierDesign duo = duo_design(tm);
  const Report rep = check::run_checks(duo, hier::HierOptions{});
  EXPECT_TRUE(rep.clean()) << rep.summary();
  EXPECT_EQ(rep.instances_checked, 2u);
  EXPECT_EQ(rep.subject, "duo");

  const testing::ModuleUnderTest m(testing::small_module_spec());
  const hier::HierDesign quad = testing::make_quad_design(m);
  const Report qrep = check::run_checks(quad, hier::HierOptions{});
  EXPECT_TRUE(qrep.clean()) << qrep.summary();
  EXPECT_EQ(qrep.instances_checked, 4u);
}

TEST(CheckHier, ParallelAndSerialReportsAreIdentical) {
  const testing::ModuleUnderTest m(testing::small_module_spec());
  hier::HierDesign d = testing::make_quad_design(m);
  // Inject a spread of defects so the merge order actually matters.
  d.add_connection({hier::PortRef{0, 0}, hier::PortRef{9, 0}});
  d.add_primary_input({"loose", {}});
  const hier::HierOptions hopts;
  const Report serial = check::run_checks(d, hopts);
  const std::shared_ptr<exec::Executor> ex = exec::make_executor(4);
  const Report parallel = check::run_checks(d, hopts, {}, ex.get());
  EXPECT_EQ(serial.summary(), parallel.summary());
  EXPECT_FALSE(serial.clean());
}

// Note: `HierDesign::add_instance` REQUIREs a non-null model, so HSC040's
// null-model branch is defensive; the craftable trigger is a dangling
// endpoint.
TEST(CheckHier, DanglingEndpointsAreHSC040) {
  const model::TimingModel tm = tiny_model();
  hier::HierDesign d = duo_design(tm);
  d.add_connection({hier::PortRef{0, 0}, hier::PortRef{7, 0}});  // no inst 7
  d.add_primary_output({"bad", hier::PortRef{1, 9}});            // no port 9
  const Report rep = check::run_checks(d, hier::HierOptions{});
  expect_within(rep, "HSC040", {});
  EXPECT_EQ(rep.count(Severity::kError), 2u) << rep.summary();
  EXPECT_NE(rep.summary().find("2 instances"), std::string::npos);
}

TEST(CheckHier, DoubleDrivenInputIsHSC041) {
  const model::TimingModel tm = tiny_model();
  hier::HierDesign d = duo_design(tm);
  d.add_connection({hier::PortRef{0, 0}, hier::PortRef{1, 0}});  // again
  const Report rep = check::run_checks(d, hier::HierOptions{});
  expect_within(rep, "HSC041", {});
  EXPECT_NE(rep.summary().find("driven 2 times"), std::string::npos);
}

TEST(CheckHier, FloatingInputAndSinklessPiAreHSC042) {
  const model::TimingModel tm = tiny_model();
  hier::HierDesign d("float", placement::Die{20.0, 20.0});
  (void)d.add_instance({"a", &tm, {0.0, 0.0}, nullptr, nullptr});
  d.add_primary_input({"loose", {}});  // no sinks
  d.add_primary_output({"po0", hier::PortRef{0, 0}});
  const Report rep = check::run_checks(d, hier::HierOptions{});
  expect_within(rep, "HSC042", {});
  EXPECT_EQ(rep.count(Severity::kWarning), 2u) << rep.summary();
}

TEST(CheckHier, NetlistModelPortMismatchIsHSC043) {
  const model::TimingModel tm = tiny_model();         // one input, one output
  const netlist::Netlist two_pi = tiny_clean_netlist();  // two inputs
  hier::HierDesign d("mismatch", placement::Die{20.0, 20.0});
  (void)d.add_instance({"a", &tm, {0.0, 0.0}, &two_pi, nullptr});
  d.add_primary_input({"pi0", {hier::PortRef{0, 0}}});
  d.add_primary_output({"po0", hier::PortRef{0, 0}});
  const Report rep = check::run_checks(d, hier::HierOptions{});
  expect_within(rep, "HSC043", {});
  // Input-count mismatch, output-order mismatch and the missing module
  // placement all land on the same rule.
  EXPECT_NE(rep.summary().find("2 primary inputs"), std::string::npos);
  EXPECT_NE(rep.summary().find("module placement"), std::string::npos);
}

TEST(CheckHier, SigmaScaleArityIsHSC044) {
  const model::TimingModel tm = tiny_model();
  const hier::HierDesign d = duo_design(tm);
  hier::HierOptions hopts;
  hopts.param_sigma_scale = {1.0, 2.0};  // model has 3 parameters
  const Report rep = check::run_checks(d, hopts);
  expect_within(rep, "HSC044", {});
  EXPECT_NE(rep.summary().find("2 entries for 3"), std::string::npos);
}

TEST(CheckHier, OffDieInstanceIsHSC045) {
  const model::TimingModel tm = tiny_model();
  hier::HierDesign d("off", placement::Die{20.0, 20.0});
  (void)d.add_instance({"a", &tm, {15.0, 15.0}, nullptr, nullptr});
  d.add_primary_input({"pi0", {hier::PortRef{0, 0}}});
  d.add_primary_output({"po0", hier::PortRef{0, 0}});
  const Report rep = check::run_checks(d, hier::HierOptions{});
  expect_within(rep, "HSC045", {});
  EXPECT_NE(rep.summary().find("extends beyond"), std::string::npos);
}

TEST(CheckHier, ParameterDisagreementIsHSC046) {
  const model::TimingModel tm3 = tiny_model("three");
  variation::ParameterSet two = variation::default_90nm_parameters();
  two.params.pop_back();
  const model::TimingModel tm2 = tiny_model("two", std::move(two));
  hier::HierDesign d("mix", placement::Die{20.0, 20.0});
  const size_t a = d.add_instance({"a", &tm3, {0.0, 0.0}, nullptr, nullptr});
  const size_t b = d.add_instance({"b", &tm2, {10.0, 0.0}, nullptr, nullptr});
  d.add_connection({hier::PortRef{a, 0}, hier::PortRef{b, 0}});
  d.add_primary_input({"pi0", {hier::PortRef{a, 0}}});
  d.add_primary_output({"po0", hier::PortRef{b, 0}});
  const Report rep = check::run_checks(d, hier::HierOptions{});
  expect_within(rep, "HSC046", {});
  EXPECT_NE(rep.summary().find("2 process parameters"), std::string::npos);
}

TEST(CheckHier, EmptyDesignIsHSC047) {
  const hier::HierDesign d("void", placement::Die{10.0, 10.0});
  const Report rep = check::run_checks(d, hier::HierOptions{});
  EXPECT_EQ(rep.count(Severity::kError), 3u) << rep.summary();
  EXPECT_TRUE(rep.has("HSC047"));
  EXPECT_EQ(rep.instances_checked, 0u);
}

// --- mutation fuzz -----------------------------------------------------------

TEST(CheckFuzz, SeededNetlistMutationsAreCaughtWithinClosure) {
  // Knock-on closure shared by the structural mutations: rewiring a pin can
  // orphan the old fanin net's cone (dead gates, unused inputs, cones cut
  // off from the ports) and the cache-invalidating spare input is an
  // expected HSC010.
  const std::initializer_list<std::string_view> structural = {
      "HSC003", "HSC005", "HSC006", "HSC010"};
  for (uint64_t seed = 0; seed < 40; ++seed) {
    stats::Rng rng(5000 + seed);
    netlist::RandomDagSpec spec;
    spec.name = "fuzz" + std::to_string(seed);
    spec.num_inputs = 4 + rng.uniform_index(6);
    spec.num_outputs = 3 + rng.uniform_index(4);
    spec.num_gates = 30 + rng.uniform_index(60);
    spec.num_pins = spec.num_gates + spec.num_gates / 2 +
                    rng.uniform_index(spec.num_gates);
    spec.depth = 4 + rng.uniform_index(6);
    spec.seed = seed + 1;
    netlist::Netlist nl =
        netlist::make_random_dag(spec, testing::default_lib());

    const netlist::GateId gi =
        static_cast<netlist::GateId>(rng.uniform_index(nl.num_gates()));
    netlist::Gate& gate = nl.gate(gi);
    const size_t pin = rng.uniform_index(gate.fanins.size());
    std::string_view primary;
    switch (seed % 5) {
      case 0:  // dangling fanin
        gate.fanins[pin] = nl.add_net("injected_undriven");
        primary = "HSC002";
        break;
      case 1:  // self-loop
        gate.fanins[pin] = gate.output;
        primary = "HSC001";
        break;
      case 2:  // arity break
        gate.fanins.pop_back();
        primary = "HSC009";
        break;
      case 3:  // duplicate pin (needs >= 2 pins; fall back to arity break)
        if (gate.fanins.size() >= 2) {
          gate.fanins[1] = gate.fanins[0];
          primary = "HSC004";
        } else {
          gate.fanins.pop_back();
          primary = "HSC009";
        }
        break;
      default:  // dropped cell type
        gate.type = nullptr;
        primary = "HSC009";
        break;
    }
    // Direct Gate mutation bypasses the net-sink cache invalidation; a
    // fresh (spare) primary input forces the recompute.
    (void)nl.add_primary_input("fuzz_spare");
    const Report rep = check::run_checks(nl);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_within(rep, primary, structural);
    EXPECT_GT(check::exit_code(rep), 0);
  }
}

TEST(CheckFuzz, SeededGraphMutationsAreCaughtExactly) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    stats::Rng rng(9000 + seed);
    testing::SyntheticGraphSpec spec = testing::random_spec(rng);
    spec.dim = 1 + spec.dim;  // coefficient mutations need dim >= 1
    timing::TimingGraph g = testing::make_synthetic_graph(spec, rng);
    std::vector<timing::EdgeId> live;
    for (timing::EdgeId e = 0; e < g.num_edge_slots(); ++e)
      if (g.edge_alive(e)) live.push_back(e);
    ASSERT_FALSE(live.empty());
    timing::CanonicalForm& d =
        g.edge(live[rng.uniform_index(live.size())]).delay;
    std::string_view primary;
    switch (seed % 4) {
      case 0:
        d.set_nominal(std::nan(""));
        primary = "HSC020";
        break;
      case 1:
        d.corr()[rng.uniform_index(d.dim())] =
            -std::numeric_limits<double>::infinity();
        primary = "HSC020";
        break;
      case 2:
        d.set_nominal(-0.5);
        primary = "HSC021";
        break;
      default:
        *d.view().random = -1e-3;
        primary = "HSC022";
        break;
    }
    const Report rep = check::run_checks(g, "fuzz" + std::to_string(seed));
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_within(rep, primary, {});
    EXPECT_EQ(rep.diagnostics.size(), 1u) << rep.summary();
  }
}

}  // namespace
}  // namespace hssta
