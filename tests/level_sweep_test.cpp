// Differential fuzz harness for the level-synchronous sweeps: across ~50
// random DAG shapes (varying width / depth / fanin, seeded via stats::Rng)
// the level-parallel schedules at 1 / 2 / 4 threads must be BIT-identical
// to the legacy serial sweeps — for arrivals, requireds, slacks, scalar
// longest-path / required-time passes, IO delay matrices, and
// criticalities. The criticality oracle is the per-(i, j) scalar scatter
// pass (pair_criticalities), which the batched gather pass replaces in
// production; any rounding difference between the two is a bug, not noise.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <span>
#include <vector>

#include "fixtures.hpp"
#include "hssta/core/criticality.hpp"
#include "hssta/core/io_delays.hpp"
#include "hssta/core/ssta.hpp"
#include "hssta/exec/executor.hpp"
#include "hssta/netlist/generate.hpp"
#include "hssta/timing/builder.hpp"
#include "hssta/timing/propagate.hpp"
#include "hssta/timing/sta.hpp"
#include "synthetic_graphs.hpp"

namespace hssta {
namespace {

using core::CriticalityOptions;
using core::CriticalityResult;
using core::DelayMatrix;
using timing::CanonicalForm;
using timing::EdgeId;
using timing::LevelParallel;
using timing::MaxDiagnostics;
using timing::PropagationResult;
using timing::TimingGraph;
using timing::VertexId;

void expect_same_diag(const MaxDiagnostics& a, const MaxDiagnostics& b) {
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.variance_clamped, b.variance_clamped);
  EXPECT_EQ(a.degenerate_theta, b.degenerate_theta);
}

void expect_same_propagation(const PropagationResult& a,
                             const PropagationResult& b) {
  EXPECT_EQ(a.valid, b.valid);
  ASSERT_EQ(a.time.rows(), b.time.rows());
  for (size_t v = 0; v < a.time.rows(); ++v)
    if (a.valid[v])
      EXPECT_TRUE(timing::form_equal(a.time.row(v), b.time.row(v)))
          << "vertex " << v;
  expect_same_diag(a.diagnostics, b.diagnostics);
}

void expect_same_matrix(const DelayMatrix& a, const DelayMatrix& b) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  for (size_t i = 0; i < a.num_inputs(); ++i) {
    for (size_t j = 0; j < a.num_outputs(); ++j) {
      ASSERT_EQ(a.is_valid(i, j), b.is_valid(i, j)) << i << "," << j;
      if (a.is_valid(i, j)) EXPECT_EQ(a.at(i, j), b.at(i, j)) << i << "," << j;
    }
  }
}

/// The legacy criticality oracle: cm(e) = max over all (i, j) pairs of the
/// reference scalar scatter pass, clamped at 1 like the production fold.
std::vector<double> scatter_reference_cm(const TimingGraph& g) {
  std::vector<double> cm(g.num_edge_slots(), 0.0);
  for (size_t i = 0; i < g.inputs().size(); ++i) {
    for (size_t j = 0; j < g.outputs().size(); ++j) {
      const std::vector<double> c = core::pair_criticalities(g, i, j);
      for (size_t e = 0; e < cm.size(); ++e) cm[e] = std::max(cm[e], c[e]);
    }
  }
  for (double& c : cm) c = std::min(c, 1.0);
  return cm;
}

TEST(LevelSweepDifferential, BitIdenticalAcrossSchedulesAndThreads) {
  stats::Rng rng(0x5557A5EEDull);
  const size_t kGraphs = 50;
  size_t wide_graphs = 0;

  for (size_t t = 0; t < kGraphs; ++t) {
    const testing::SyntheticGraphSpec spec = testing::random_spec(rng);
    const TimingGraph g = testing::make_synthetic_graph(spec, rng);
    SCOPED_TRACE("graph " + std::to_string(t) + ": inputs=" +
                 std::to_string(spec.num_inputs) + " outputs=" +
                 std::to_string(spec.num_outputs) + " width=" +
                 std::to_string(spec.width) + " depth=" +
                 std::to_string(spec.depth) + " fanin=" +
                 std::to_string(spec.max_fanin) + " dim=" +
                 std::to_string(spec.dim));
    if (g.levels()->max_width() >= timing::kMinLevelFanOut) ++wide_graphs;

    // Serial references (the legacy sweeps).
    const PropagationResult arrivals_ref = timing::propagate_arrivals(g);
    PropagationResult required_ref;
    timing::propagate_required_into(g, {}, required_ref);
    const double deadline = 10.0;
    const core::SlackResult slack_ref = core::compute_slack(g, deadline);
    const std::vector<double> delays = timing::corner_edge_delays(g, 0.0);
    const timing::ScalarArrivals lp_ref = timing::longest_path(g, delays);
    const timing::ScalarArrivals rt_ref =
        timing::required_times(g, delays, deadline);
    const std::vector<double> cm_ref = scatter_reference_cm(g);
    const DelayMatrix io_ref = core::all_pairs_io_delays(g);

    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      const std::shared_ptr<exec::Executor> ex = exec::make_executor(threads);

      PropagationResult arr;
      timing::propagate_arrivals_into(g, {}, arr, *ex, LevelParallel::kOn);
      expect_same_propagation(arrivals_ref, arr);

      PropagationResult req;
      timing::propagate_required_into(g, {}, req, *ex, LevelParallel::kOn);
      expect_same_propagation(required_ref, req);

      const core::SlackResult slack =
          core::compute_slack(g, deadline, *ex, LevelParallel::kOn);
      EXPECT_EQ(slack_ref.valid, slack.valid);
      for (size_t v = 0; v < slack.slack.size(); ++v)
        if (slack.valid[v]) EXPECT_EQ(slack_ref.slack[v], slack.slack[v]);

      const timing::ScalarArrivals lp =
          timing::longest_path(g, delays, {}, *ex, LevelParallel::kOn);
      EXPECT_EQ(lp_ref.valid, lp.valid);
      EXPECT_EQ(lp_ref.time, lp.time);

      const timing::ScalarArrivals rt =
          timing::required_times(g, delays, deadline, *ex,
                                 LevelParallel::kOn);
      EXPECT_EQ(rt_ref.valid, rt.valid);
      EXPECT_EQ(rt_ref.time, rt.time);

      expect_same_matrix(io_ref,
                         core::all_pairs_io_delays(g, *ex, nullptr,
                                                   LevelParallel::kOn));

      // Criticality: both schedules (per-input fan-out and level-parallel)
      // against the scatter oracle. prune_epsilon 0 matches the oracle's.
      for (const LevelParallel mode :
           {LevelParallel::kOff, LevelParallel::kOn}) {
        CriticalityOptions opts;
        opts.prune_epsilon = 0.0;
        opts.level_parallel = mode;
        const CriticalityResult crit = core::compute_criticality(g, *ex, opts);
        EXPECT_EQ(crit.max_criticality, cm_ref)
            << "mode " << (mode == LevelParallel::kOn ? "on" : "off");
        expect_same_matrix(io_ref, crit.io_delays);
      }
    }
  }
  // The fuzz corpus must actually exercise the parallel bucket path, not
  // only the narrow-level inline fallback.
  EXPECT_GE(wide_graphs, kGraphs / 4);
}

void expect_same_vs_legacy(const timing::LegacyPropagation& ref,
                           const PropagationResult& flat) {
  EXPECT_EQ(ref.valid, flat.valid);
  ASSERT_EQ(ref.time.size(), flat.time.rows());
  for (size_t v = 0; v < ref.time.size(); ++v)
    if (ref.valid[v])
      EXPECT_TRUE(timing::form_equal(ref.time[v].view(), flat.time.row(v)))
          << "vertex " << v;
  expect_same_diag(ref.diagnostics, flat.diagnostics);
}

// The flat bank engine against the retired per-vertex engine (kept verbatim
// as timing::legacy_propagate_*): across the same 50-DAG corpus, forward
// and backward sweeps must be BIT-identical at every thread count, and the
// flat tightness split (the criticality kernel) must match the legacy
// span-based split at every multi-fanin vertex. This pins the SoA kernels
// against the original arithmetic, not against themselves.
TEST(LevelSweepDifferential, FlatBankMatchesLegacyPerVertexEngine) {
  stats::Rng rng(0xF1A7BA22ull);
  const size_t kGraphs = 50;

  for (size_t t = 0; t < kGraphs; ++t) {
    const testing::SyntheticGraphSpec spec = testing::random_spec(rng);
    const TimingGraph g = testing::make_synthetic_graph(spec, rng);
    SCOPED_TRACE("graph " + std::to_string(t) + ": width=" +
                 std::to_string(spec.width) + " depth=" +
                 std::to_string(spec.depth) + " dim=" +
                 std::to_string(spec.dim));

    const timing::LegacyPropagation arr_ref =
        timing::legacy_propagate_arrivals(g);
    const timing::LegacyPropagation req_ref =
        timing::legacy_propagate_required(g, {});

    const PropagationResult arr = timing::propagate_arrivals(g);
    expect_same_vs_legacy(arr_ref, arr);
    PropagationResult req;
    timing::propagate_required_into(g, {}, req);
    expect_same_vs_legacy(req_ref, req);

    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      const std::shared_ptr<exec::Executor> ex = exec::make_executor(threads);
      PropagationResult pa;
      timing::propagate_arrivals_into(g, {}, pa, *ex, LevelParallel::kOn);
      expect_same_vs_legacy(arr_ref, pa);
      PropagationResult pr;
      timing::propagate_required_into(g, {}, pr, *ex, LevelParallel::kOn);
      expect_same_vs_legacy(req_ref, pr);
    }

    // Criticality kernel: the bank-based tightness split against the
    // legacy allocating split on identical candidate sets.
    MaxDiagnostics diag_legacy, diag_flat;
    timing::FormBank cand, scratch;
    std::vector<double> tp_flat;
    for (VertexId v = 0; v < g.num_vertex_slots(); ++v) {
      if (!g.vertex_alive(v)) continue;
      const auto& fanin = g.vertex(v).fanin;
      if (fanin.size() < 2) continue;
      if (cand.rows() < fanin.size() || cand.dim() != g.dim())
        cand.reset(fanin.size(), g.dim());
      std::vector<CanonicalForm> legacy_cands;
      size_t n = 0;
      for (EdgeId e : fanin) {
        const timing::TimingEdge& te = g.edge(e);
        if (!arr_ref.valid[te.from]) continue;
        CanonicalForm c = arr_ref.time[te.from];
        c += te.delay;
        legacy_cands.push_back(std::move(c));
        timing::add_into(cand.row(n), arr.time.row(te.from), te.delay.view());
        ++n;
      }
      if (n < 2) continue;
      const std::vector<double> tp_legacy = timing::tightness_split(
          std::span<const CanonicalForm>(legacy_cands), &diag_legacy);
      timing::tightness_split_into(cand, n, tp_flat, scratch, &diag_flat);
      ASSERT_EQ(tp_legacy.size(), tp_flat.size());
      for (size_t k = 0; k < n; ++k)
        EXPECT_EQ(tp_legacy[k], tp_flat[k]) << "vertex " << v << " pin " << k;
    }
    expect_same_diag(diag_legacy, diag_flat);
  }
}

// Size-gated large-design smoke: a generated stacked-DAG netlist (default
// ~20k gates; HSSTA_FLAT_SMOKE_GATES scales it up, e.g. the CI release job
// runs >= 100k) through the synthetic-delay graph builder, with flat vs
// legacy and serial vs parallel bit-identity on the forward sweep.
TEST(LevelSweepDifferential, LargeGeneratedDesignSmoke) {
  size_t gates = 20000;
  if (const char* env = std::getenv("HSSTA_FLAT_SMOKE_GATES"))
    if (const size_t n = std::strtoull(env, nullptr, 10)) gates = n;

  netlist::StackedDagSpec spec;
  spec.tile.num_inputs = 64;
  spec.tile.num_outputs = 64;
  spec.tile.num_gates = 2000;
  spec.tile.num_pins = 3600;
  spec.tile.depth = 20;
  spec.num_tiles = std::max<size_t>(1, gates / spec.tile.num_gates);
  spec.seed = 1;
  const netlist::Netlist nl =
      netlist::make_stacked_dag(spec, testing::default_lib());
  const timing::BuiltGraph built =
      timing::synthetic_delay_graph(nl, /*dim=*/6, /*seed=*/42);
  const TimingGraph& g = built.graph;

  const timing::LegacyPropagation ref = timing::legacy_propagate_arrivals(g);
  const PropagationResult serial = timing::propagate_arrivals(g);
  expect_same_vs_legacy(ref, serial);

  for (const size_t threads : {size_t{2}, size_t{4}}) {
    const std::shared_ptr<exec::Executor> ex = exec::make_executor(threads);
    PropagationResult par;
    timing::propagate_arrivals_into(g, {}, par, *ex, LevelParallel::kOn);
    expect_same_vs_legacy(ref, par);
  }
}

TEST(LevelSweepDifferential, CriticalityDiagnosticsMatchAcrossSchedules) {
  stats::Rng rng(99);
  testing::SyntheticGraphSpec spec;
  spec.num_inputs = 3;
  spec.num_outputs = 4;
  spec.width = 24;
  spec.depth = 5;
  const TimingGraph g = testing::make_synthetic_graph(spec, rng);

  CriticalityOptions off;
  off.level_parallel = LevelParallel::kOff;
  const CriticalityResult serial = core::compute_criticality(g, off);
  for (const size_t threads : {size_t{2}, size_t{4}}) {
    const std::shared_ptr<exec::Executor> ex = exec::make_executor(threads);
    for (const LevelParallel mode :
         {LevelParallel::kOff, LevelParallel::kOn, LevelParallel::kAuto}) {
      CriticalityOptions opts;
      opts.level_parallel = mode;
      const CriticalityResult crit = core::compute_criticality(g, *ex, opts);
      EXPECT_EQ(serial.max_criticality, crit.max_criticality);
      expect_same_diag(serial.diagnostics, crit.diagnostics);
    }
  }
}

TEST(LevelSweepDifferential, ScalarRequiredTimesAreConsistent) {
  // With deadline = the longest-path delay, every reached vertex has
  // non-negative scalar slack and some input-to-output chain sits at 0.
  stats::Rng rng(5);
  testing::SyntheticGraphSpec spec;
  spec.width = 12;
  spec.depth = 6;
  const TimingGraph g = testing::make_synthetic_graph(spec, rng);
  const std::vector<double> delays = timing::corner_edge_delays(g, 0.0);
  const timing::ScalarArrivals arr = timing::longest_path(g, delays);
  const double deadline = arr.max_over_outputs(g);
  const timing::ScalarArrivals req =
      timing::required_times(g, delays, deadline);
  double min_slack = 1e30;
  for (VertexId v = 0; v < g.num_vertex_slots(); ++v) {
    if (!arr.valid[v] || !req.valid[v]) continue;
    const double slack = req.time[v] - arr.time[v];
    EXPECT_GE(slack, -1e-12);
    min_slack = std::min(min_slack, slack);
  }
  EXPECT_NEAR(min_slack, 0.0, 1e-12);
}

}  // namespace
}  // namespace hssta
