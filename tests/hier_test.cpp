// Tests for the hierarchical analysis: heterogeneous design grids, the
// variable-replacement identities (R R^T = I, exact module covariance
// preservation, correct cross-module covariance), stitched design-level
// propagation, and the global-only baseline ordering.

#include <gtest/gtest.h>

#include <cmath>

#include "hssta/hier/design.hpp"
#include "hssta/hier/design_grid.hpp"
#include "hssta/hier/hier_ssta.hpp"
#include "hssta/hier/replace.hpp"
#include "hssta/library/cell_library.hpp"
#include "hssta/model/extract.hpp"
#include "hssta/netlist/generate.hpp"
#include "hssta/placement/placement.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/timing/builder.hpp"
#include "hssta/util/error.hpp"

namespace hssta::hier {
namespace {

using linalg::Matrix;
using timing::CanonicalForm;

/// Shared module under test: a small random circuit, extracted to a model.
class HierFixture : public ::testing::Test {
 protected:
  HierFixture()
      : nl_(netlist::make_random_dag(spec(), lib())),
        pl_(placement::place_rows(nl_)),
        mv_(variation::make_module_variation(
            pl_, nl_.num_gates(), variation::default_90nm_parameters(),
            variation::SpatialCorrelationConfig{})),
        built_(timing::build_timing_graph(nl_, pl_, mv_)),
        extraction_(model::extract_timing_model(
            built_, mv_, "mod", model::compute_boundary(nl_))) {}

  static netlist::RandomDagSpec spec() {
    netlist::RandomDagSpec s;
    s.num_inputs = 8;
    s.num_outputs = 8;
    s.num_gates = 150;
    s.num_pins = 270;
    s.depth = 12;
    s.seed = 77;
    return s;
  }

  static const library::CellLibrary& lib() {
    static const library::CellLibrary l = library::default_90nm();
    return l;
  }

  const model::TimingModel& model() const { return extraction_.model; }

  /// 2x2 abutted instances; outputs of the left column drive inputs of the
  /// right column (the paper's Fig. 7 topology, shrunk).
  HierDesign make_quad() const {
    const placement::Die mdie = model().die();
    HierDesign d("quad", placement::Die{2 * mdie.width, 2 * mdie.height});
    const size_t a = d.add_instance({"a", &model(), {0, 0}, &nl_, &pl_});
    const size_t b =
        d.add_instance({"b", &model(), {0, mdie.height}, &nl_, &pl_});
    const size_t c =
        d.add_instance({"c", &model(), {mdie.width, 0}, &nl_, &pl_});
    const size_t e = d.add_instance(
        {"e", &model(), {mdie.width, mdie.height}, &nl_, &pl_});

    const size_t ni = model().graph().inputs().size();
    const size_t no = model().graph().outputs().size();
    // Cross-connect: a/b outputs feed c/e inputs alternately.
    for (size_t k = 0; k < ni; ++k) {
      d.add_connection({PortRef{k % 2 ? b : a, k % no}, PortRef{c, k}});
      d.add_connection({PortRef{k % 2 ? a : b, (k + 1) % no}, PortRef{e, k}});
    }
    for (size_t k = 0; k < ni; ++k) {
      d.add_primary_input({"pa" + std::to_string(k), {PortRef{a, k}}});
      d.add_primary_input({"pb" + std::to_string(k), {PortRef{b, k}}});
    }
    for (size_t k = 0; k < no; ++k) {
      d.add_primary_output({"qc" + std::to_string(k), PortRef{c, k}});
      d.add_primary_output({"qe" + std::to_string(k), PortRef{e, k}});
    }
    return d;
  }

  netlist::Netlist nl_;
  placement::Placement pl_;
  variation::ModuleVariation mv_;
  timing::BuiltGraph built_;
  model::Extraction extraction_;
};

TEST_F(HierFixture, DesignValidationCatchesMistakes) {
  HierDesign d = make_quad();
  EXPECT_NO_THROW(d.validate());

  // Instance input driven twice.
  HierDesign twice = make_quad();
  twice.add_connection({PortRef{0, 0}, PortRef{2, 0}});
  EXPECT_THROW(twice.validate(), Error);

  // Port out of range.
  HierDesign bad = make_quad();
  bad.add_primary_output({"x", PortRef{0, 999}});
  EXPECT_THROW(bad.validate(), Error);

  // Instance off the die.
  HierDesign off("off", placement::Die{1.0, 1.0});
  off.add_instance({"a", &model(), {0, 0}, nullptr, nullptr});
  off.add_primary_input({"i", {PortRef{0, 0}}});
  off.add_primary_output({"o", PortRef{0, 0}});
  EXPECT_THROW(off.validate(), Error);
}

TEST_F(HierFixture, DesignGridComposesModuleGridsPlusFiller) {
  HierDesign d = make_quad();
  const DesignGrid grid = build_design_grid(d);
  const size_t per_module = mv_.partition.num_grids();
  // Abutted 2x2 tiling covers the die: no filler.
  EXPECT_EQ(grid.filler_count, 0u);
  EXPECT_EQ(grid.geometry.size(), 4 * per_module);
  ASSERT_EQ(grid.instance_grids.size(), 4u);
  for (const auto& map : grid.instance_grids)
    EXPECT_EQ(map.size(), per_module);
  // Module grid centers are translated by the instance origin.
  const placement::Point c0 = grid.geometry.centers[grid.instance_grids[2][0]];
  const placement::Point m0 = mv_.partition.center(0);
  EXPECT_NEAR(c0.x, m0.x + model().die().width, 1e-9);
  EXPECT_NEAR(c0.y, m0.y, 1e-9);
  // grid_of resolves module-internal points to that instance's grids.
  const size_t g = grid.grid_of(
      placement::Point{model().die().width + m0.x, m0.y}, d);
  EXPECT_EQ(g, grid.instance_grids[2][0]);
}

TEST_F(HierFixture, DesignGridLeavesFillerForUncoveredArea) {
  const placement::Die mdie = model().die();
  HierDesign d("padded", placement::Die{3 * mdie.width, mdie.height});
  d.add_instance({"a", &model(), {0, 0}, nullptr, nullptr});
  d.add_primary_input({"i", {PortRef{0, 0}}});
  d.add_primary_output({"o", PortRef{0, 0}});
  const DesignGrid grid = build_design_grid(d);
  EXPECT_GT(grid.filler_count, 0u);
  // A point far outside the module maps to a filler grid.
  const size_t g =
      grid.grid_of(placement::Point{2.5 * mdie.width, mdie.height / 2}, d);
  EXPECT_GE(g, grid.geometry.size() - grid.filler_count);
}

TEST_F(HierFixture, ReplacementMatrixIsOrthonormalRows) {
  HierDesign d = make_quad();
  const DesignGrid grid = build_design_grid(d);
  const auto dspace = build_design_space(d, grid);
  for (size_t t = 0; t < 4; ++t) {
    const Matrix r = replacement_matrix(*mv_.space, *dspace,
                                        grid.instance_grids[t]);
    const Matrix rrt = r * r.transposed();
    EXPECT_LT(rrt.max_abs_diff(Matrix::identity(r.rows())), 1e-6)
        << "instance " << t;
  }
}

TEST_F(HierFixture, ReplacementPreservesModuleCovarianceExactly) {
  HierDesign d = make_quad();
  const DesignGrid grid = build_design_grid(d);
  const auto dspace = build_design_space(d, grid);
  const Matrix r =
      replacement_matrix(*mv_.space, *dspace, grid.instance_grids[1]);

  stats::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    CanonicalForm a(mv_.space->dim()), b(mv_.space->dim());
    a.set_nominal(rng.uniform(0.5, 2.0));
    b.set_nominal(rng.uniform(0.5, 2.0));
    for (size_t k = 0; k < a.dim(); ++k) {
      a.corr()[k] = rng.normal() * 0.05;
      b.corr()[k] = rng.normal() * 0.05;
    }
    a.set_random(rng.uniform(0.0, 0.1));
    b.set_random(rng.uniform(0.0, 0.1));

    const CanonicalForm ra = remap_canonical(a, *mv_.space, *dspace, r);
    const CanonicalForm rb = remap_canonical(b, *mv_.space, *dspace, r);
    EXPECT_NEAR(ra.variance(), a.variance(), 1e-9 + 1e-6 * a.variance());
    EXPECT_NEAR(ra.covariance(rb), a.covariance(b),
                1e-9 + 1e-6 * std::abs(a.covariance(b)));
    EXPECT_DOUBLE_EQ(ra.nominal(), a.nominal());
    EXPECT_DOUBLE_EQ(ra.random(), a.random());
  }
}

TEST_F(HierFixture, ReplacementMatrixHandlesPermutedNonContiguousGrids) {
  // A design geometry where the module's grids sit at *scattered, permuted*
  // positions: reversed module order, a filler grid interleaved before
  // every module center, and the whole block translated (distances are
  // what the correlation profile sees, so translation must not matter).
  // The replacement identities must hold exactly as for the contiguous
  // front-of-list layout build_design_grid produces.
  const variation::GridGeometry& mg = mv_.space->grids();
  variation::GridGeometry dg;
  dg.unit = mg.unit;
  std::vector<size_t> indices(mg.size());
  for (size_t i = 0; i < mg.size(); ++i) {
    const size_t src = mg.size() - 1 - i;  // permuted: reverse order
    dg.centers.push_back(placement::Point{  // non-contiguous: filler first
        1e4 + static_cast<double>(i) * 50.0 * mg.unit, -1e4});
    indices[src] = dg.centers.size();
    dg.centers.push_back(placement::Point{mg.centers[src].x + 1000.0,
                                          mg.centers[src].y + 500.0});
  }
  const variation::VariationSpace dspace(
      mv_.space->parameters(), dg, mv_.space->correlation_model().config());

  const Matrix r = replacement_matrix(*mv_.space, dspace, indices);
  EXPECT_EQ(r.rows(), mv_.space->num_components());
  EXPECT_EQ(r.cols(), dspace.num_components());
  const Matrix rrt = r * r.transposed();
  EXPECT_LT(rrt.max_abs_diff(Matrix::identity(r.rows())), 1e-6);

  stats::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    CanonicalForm a(mv_.space->dim()), b(mv_.space->dim());
    for (size_t k = 0; k < a.dim(); ++k) {
      a.corr()[k] = rng.normal() * 0.05;
      b.corr()[k] = rng.normal() * 0.05;
    }
    const CanonicalForm ra = remap_canonical(a, *mv_.space, dspace, r);
    const CanonicalForm rb = remap_canonical(b, *mv_.space, dspace, r);
    EXPECT_NEAR(ra.variance(), a.variance(), 1e-9 + 1e-6 * a.variance());
    EXPECT_NEAR(ra.covariance(rb), a.covariance(b),
                1e-9 + 1e-6 * std::abs(a.covariance(b)));
  }

  // Mismatched index count is rejected loudly.
  const std::vector<size_t> short_indices(mg.size() - 1, 0);
  EXPECT_THROW(replacement_matrix(*mv_.space, dspace, short_indices), Error);
}

TEST_F(HierFixture, RepeatedRemapIsDeterministicAndSelfRemapIsIdentity) {
  HierDesign d = make_quad();
  const DesignGrid grid = build_design_grid(d);
  const auto dspace = build_design_space(d, grid);

  // Determinism: recomputing R and re-remapping a form must reproduce the
  // exact same bits — the property the incremental engine leans on when a
  // geometry-compatible swap recomputes an instance's R from scratch.
  const Matrix r1 =
      replacement_matrix(*mv_.space, *dspace, grid.instance_grids[2]);
  const Matrix r2 =
      replacement_matrix(*mv_.space, *dspace, grid.instance_grids[2]);
  EXPECT_EQ(r1.max_abs_diff(r2), 0.0);

  stats::Rng rng(23);
  CanonicalForm a(mv_.space->dim());
  a.set_nominal(1.25);
  for (size_t k = 0; k < a.dim(); ++k) a.corr()[k] = rng.normal() * 0.05;
  a.set_random(0.03);
  const CanonicalForm once = remap_canonical(a, *mv_.space, *dspace, r1);
  const CanonicalForm again = remap_canonical(a, *mv_.space, *dspace, r2);
  EXPECT_TRUE(once == again);

  // Module -> module "round trip": remapping within the module's own space
  // (identity grid mapping) is the identity transform up to PCA rounding —
  // R = whitening * loadings ~= I — and exactly preserves nominal/random.
  std::vector<size_t> self_indices(mv_.space->num_grids());
  for (size_t i = 0; i < self_indices.size(); ++i) self_indices[i] = i;
  const Matrix self_r =
      replacement_matrix(*mv_.space, *mv_.space, self_indices);
  EXPECT_LT(self_r.max_abs_diff(Matrix::identity(self_r.rows())), 1e-8);
  const CanonicalForm same = remap_canonical(a, *mv_.space, *mv_.space,
                                             self_r);
  EXPECT_DOUBLE_EQ(same.nominal(), a.nominal());
  EXPECT_DOUBLE_EQ(same.random(), a.random());
  for (size_t k = 0; k < a.dim(); ++k)
    EXPECT_NEAR(same.corr()[k], a.corr()[k], 1e-9) << k;
}

TEST_F(HierFixture, CrossInstanceCovarianceMatchesCorrelationModel) {
  // Two forms living in different instances: their design-space covariance
  // must equal the physical grid-to-grid correlation model value.
  HierDesign d = make_quad();
  const DesignGrid grid = build_design_grid(d);
  const auto dspace = build_design_space(d, grid);
  const Matrix r0 =
      replacement_matrix(*mv_.space, *dspace, grid.instance_grids[0]);
  const Matrix r2 =
      replacement_matrix(*mv_.space, *dspace, grid.instance_grids[2]);

  // Unit deviation of parameter 0 for a cell in module grid g, per instance.
  const size_t g_mod = 0;
  CanonicalForm unit(mv_.space->dim());
  mv_.space->accumulate(0, g_mod, 1.0, unit.corr());
  const CanonicalForm in0 = remap_canonical(unit, *mv_.space, *dspace, r0);
  const CanonicalForm in2 = remap_canonical(unit, *mv_.space, *dspace, r2);

  const variation::ProcessParameter& p = mv_.space->parameters().at(0);
  const double dist = grid.geometry.distance(grid.instance_grids[0][g_mod],
                                             grid.instance_grids[2][g_mod]);
  const double expected =
      p.sigma_global() * p.sigma_global() +
      p.sigma_local() * p.sigma_local() *
          dspace->correlation_model().local_rho(dist);
  EXPECT_NEAR(in0.covariance(in2), expected, 1e-9);
}

TEST_F(HierFixture, SingleInstanceDesignMatchesModuleAnalysis) {
  // One instance covering the die: the design-level result must reproduce
  // the module-level analysis of the model graph.
  HierDesign d("single", model().die());
  d.add_instance({"m", &model(), {0, 0}, &nl_, &pl_});
  const size_t ni = model().graph().inputs().size();
  const size_t no = model().graph().outputs().size();
  for (size_t k = 0; k < ni; ++k)
    d.add_primary_input({"i" + std::to_string(k), {PortRef{0, k}}});
  for (size_t k = 0; k < no; ++k)
    d.add_primary_output({"o" + std::to_string(k), PortRef{0, k}});

  const HierResult hier = analyze_hierarchical(d);
  const core::SstaResult module_level = core::run_ssta(model().graph());
  EXPECT_NEAR(hier.delay().nominal(), module_level.delay.nominal(), 1e-9);
  EXPECT_NEAR(hier.delay().sigma(), module_level.delay.sigma(), 1e-7);
}

TEST_F(HierFixture, ReplacementRaisesSigmaVersusGlobalOnly) {
  // Abutted identical modules are strongly correlated; sharing only the
  // global variable underestimates the design-level spread.
  HierDesign d = make_quad();
  HierOptions repl;
  HierOptions glob;
  glob.mode = CorrelationMode::kGlobalOnly;
  const HierResult a = analyze_hierarchical(d, repl);
  const HierResult b = analyze_hierarchical(d, glob);
  EXPECT_GT(a.delay().sigma(), 1.05 * b.delay().sigma());
  // Means stay in the same ballpark (replacement runs a little higher: the
  // correlated path sums raise each output's variance, which raises the
  // mean of the output max; the MC cross-check lives in hier_mc tests).
  EXPECT_NEAR(a.delay().nominal(), b.delay().nominal(),
              0.10 * b.delay().nominal());
  // Global-only mode has no design space.
  EXPECT_EQ(b.design_space, nullptr);
  ASSERT_NE(a.design_space, nullptr);
}

TEST_F(HierFixture, LoadAwareBoundaryAddsConnectionDelay) {
  HierDesign d = make_quad();
  HierOptions base;
  HierOptions aware;
  aware.load_aware_boundary = true;
  const HierResult plain = analyze_hierarchical(d, base);
  const HierResult loaded = analyze_hierarchical(d, aware);
  EXPECT_GT(loaded.delay().nominal(), plain.delay().nominal());
}

TEST_F(HierFixture, InterconnectDelayShiftsMean) {
  HierDesign d = make_quad();
  HierOptions opts;
  opts.interconnect_delay = 0.1;
  const HierResult plain = analyze_hierarchical(d);
  const HierResult wired = analyze_hierarchical(d, opts);
  // Two module levels -> one connection on every path: +0.1 ns.
  EXPECT_NEAR(wired.delay().nominal(), plain.delay().nominal() + 0.1, 0.02);
}

TEST_F(HierFixture, MismatchedPitchIsRejected) {
  // A second model with a different grid pitch cannot be mixed in.
  netlist::RandomDagSpec s = spec();
  s.seed = 123;
  s.num_gates = 40;
  s.num_pins = 70;
  s.depth = 6;
  const netlist::Netlist nl2 = netlist::make_random_dag(s, lib());
  const placement::Placement pl2 = placement::place_rows(nl2);
  const variation::ModuleVariation mv2 = variation::make_module_variation(
      pl2, nl2.num_gates(), variation::default_90nm_parameters(),
      variation::SpatialCorrelationConfig{});
  const timing::BuiltGraph built2 = timing::build_timing_graph(nl2, pl2, mv2);
  const model::Extraction ex2 = model::extract_timing_model(
      built2, mv2, "tiny", model::compute_boundary(nl2));

  const placement::Die big{model().die().width + ex2.model.die().width + 1,
                           std::max(model().die().height,
                                    ex2.model.die().height)};
  HierDesign d("mixed", big);
  d.add_instance({"a", &model(), {0, 0}, nullptr, nullptr});
  d.add_instance(
      {"b", &ex2.model, {model().die().width + 1, 0}, nullptr, nullptr});
  d.add_primary_input({"i", {PortRef{0, 0}}});
  d.add_primary_output({"o", PortRef{0, 0}});
  EXPECT_THROW((void)build_design_grid(d), Error);
}

}  // namespace
}  // namespace hssta::hier
