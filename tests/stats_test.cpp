// Unit tests for hssta/stats: rng determinism and distribution quality,
// normal pdf/cdf/quantile accuracy, empirical distribution machinery,
// histograms.

#include <gtest/gtest.h>

#include <cmath>

#include "hssta/stats/empirical.hpp"
#include "hssta/stats/histogram.hpp"
#include "hssta/stats/normal.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/util/error.hpp"

namespace hssta::stats {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) differs |= (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformRangeAndMean) {
  Rng rng(7);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    acc += u;
  }
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
  EXPECT_THROW((void)rng.uniform_index(0), Error);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  Moments m;
  const int n = 200000;
  for (int i = 0; i < n; ++i) m.add(rng.normal());
  EXPECT_NEAR(m.mean(), 0.0, 0.02);
  EXPECT_NEAR(m.stddev(), 1.0, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  // Parent and child streams should not be identical.
  bool differs = false;
  for (int i = 0; i < 16; ++i) differs |= (a.next_u64() != child.next_u64());
  EXPECT_TRUE(differs);
}

TEST(Normal, PdfCdfKnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895148220435, 1e-12);
  // Deep tail stays accurate through erfc.
  EXPECT_NEAR(normal_cdf(-8.0) / 6.22096057427178e-16, 1.0, 1e-6);
}

class NormalQuantileTest : public ::testing::TestWithParam<double> {};

TEST_P(NormalQuantileTest, RoundTripsThroughCdf) {
  const double p = GetParam();
  const double x = normal_quantile(p);
  EXPECT_NEAR(normal_cdf(x), p, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, NormalQuantileTest,
                         ::testing::Values(1e-10, 1e-6, 0.01, 0.1, 0.25, 0.5,
                                           0.75, 0.9, 0.99, 1.0 - 1e-6));

TEST(Normal, QuantileRejectsOutOfRange) {
  EXPECT_THROW((void)normal_quantile(0.0), Error);
  EXPECT_THROW((void)normal_quantile(1.0), Error);
  EXPECT_THROW((void)normal_quantile(-0.5), Error);
}

TEST(Moments, MatchesDirectComputation) {
  Moments m;
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  for (double x : xs) m.add(x);
  EXPECT_EQ(m.count(), 4u);
  EXPECT_DOUBLE_EQ(m.mean(), 2.5);
  EXPECT_NEAR(m.variance(), 5.0 / 3.0, 1e-14);  // unbiased
}

TEST(Empirical, MomentsQuantilesCdf) {
  EmpiricalDistribution d({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 4.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(d.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(10.0), 1.0);
}

TEST(Empirical, AddInvalidatesCache) {
  EmpiricalDistribution d({1.0, 2.0});
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 2.0);
  d.add(5.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 5.0);
}

TEST(Empirical, KsDistanceSelfIsZeroDisjointIsOne) {
  EmpiricalDistribution a({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(a.ks_distance(a), 0.0);
  EmpiricalDistribution b({10, 11, 12});
  EXPECT_DOUBLE_EQ(a.ks_distance(b), 1.0);
}

TEST(Empirical, KsAgainstNormalCdfDetectsFit) {
  Rng rng(17);
  EmpiricalDistribution d;
  for (int i = 0; i < 20000; ++i) d.add(rng.normal());
  const double ks_good = d.ks_distance([](double x) { return normal_cdf(x); });
  EXPECT_LT(ks_good, 0.015);
  const double ks_bad =
      d.ks_distance([](double x) { return normal_cdf(x - 1.0); });
  EXPECT_GT(ks_bad, 0.3);
}

TEST(Empirical, GaussianSamplesMatchTheory) {
  Rng rng(23);
  EmpiricalDistribution d;
  for (int i = 0; i < 100000; ++i) d.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(d.mean(), 10.0, 0.05);
  EXPECT_NEAR(d.stddev(), 2.0, 0.05);
  // 97.7% quantile of N(10, 2) is ~ 10 + 2*2 = 14.
  EXPECT_NEAR(d.quantile(normal_cdf(2.0)), 14.0, 0.15);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 1.0, 4);
  h.add(-1.0);  // clamps into bin 0
  h.add(0.1);
  h.add(0.3);
  h.add(0.99);
  h.add(2.0);  // clamps into last bin
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 2u);
  const auto e = h.edges();
  ASSERT_EQ(e.size(), 5u);
  EXPECT_DOUBLE_EQ(e[0], 0.0);
  EXPECT_DOUBLE_EQ(e[2], 0.5);
  EXPECT_DOUBLE_EQ(e[4], 1.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

}  // namespace
}  // namespace hssta::stats
