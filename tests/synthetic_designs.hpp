// Seeded random hierarchical designs for the incremental-engine
// differential suites: a pool of small random-DAG modules (uniform port
// counts, so any instance can swap to any pool module) and a generator
// that wires a few placed instances with forward-only connections plus
// explicitly declared primary ports.
//
// Primary ports are declared explicitly — not via expose_unconnected_ports
// — so a changed design (rewired connection, swapped module) keeps the
// *base* port list, exactly like the incremental engine does; some inputs
// stay genuinely unconnected, giving rewires legal retarget candidates.

#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "hssta/flow/flow.hpp"
#include "hssta/netlist/generate.hpp"

namespace hssta::testing {

/// Uniform port shape shared by every pool module.
inline constexpr size_t kDesignModuleInputs = 6;
inline constexpr size_t kDesignModuleOutputs = 5;

/// Base config for the pool: small grids (so module spaces have several
/// spatial components) and serial execution by default.
inline flow::Config design_pool_config(size_t threads = 1) {
  flow::Config cfg;
  cfg.threads = threads;
  cfg.max_cells_per_grid = 8;
  return cfg;
}

/// The pool holds kPoolBases structurally distinct 40-gate modules. The
/// design level requires all instances to share one grid pitch, so each
/// module's placement utilization is normalized to put every netlist on an
/// equal-area die (same grid partition shape, pitches equal to rounding).
/// The dies are *bitwise* different, though — swapping an instance to a
/// different pool module therefore exercises the engine's full-rebuild
/// fallback, while scaled_variant() below provides bit-identical-footprint
/// variants for the cheap-swap path. All pool modules share the port
/// shape, so connections survive any swap.
inline constexpr size_t kPoolBases = 4;

inline std::vector<flow::Module> make_module_pool(const flow::Config& cfg) {
  const std::shared_ptr<const library::CellLibrary> lib =
      flow::default_library();
  std::vector<netlist::Netlist> netlists;
  for (size_t i = 0; i < kPoolBases; ++i) {
    netlist::RandomDagSpec s;
    s.name = "base" + std::to_string(i);
    s.num_inputs = kDesignModuleInputs;
    s.num_outputs = kDesignModuleOutputs;
    s.num_gates = 40;
    s.num_pins = 80;
    s.depth = 6;
    s.seed = 100 + i;
    netlists.push_back(netlist::make_random_dag(s, *lib));
  }
  auto total_width = [](const netlist::Netlist& nl) {
    double w = 0.0;
    for (netlist::GateId g = 0; g < nl.num_gates(); ++g)
      w += nl.gate(g).type->width;
    return w;
  };
  double wmax = 0.0;
  for (const netlist::Netlist& nl : netlists)
    wmax = std::max(wmax, total_width(nl));

  std::vector<flow::Module> pool;
  for (netlist::Netlist& nl : netlists) {
    flow::Config mcfg = cfg;
    // area = total_width * row_height / utilization, so scaling the
    // utilization by each netlist's cell width pins the die area (and with
    // it the grid pitch) across the pool.
    mcfg.place.utilization =
        cfg.place.utilization * total_width(nl) / wmax;
    pool.push_back(flow::Module::from_netlist(std::move(nl), mcfg, lib));
  }
  return pool;
}

/// A geometry-identical drop-in variant of a model: same ports, die, grid
/// partition and boundary data; every edge delay scaled by `factor` (the
/// "vendor ships a faster/slower IP with the same footprint" ECO). The
/// engine's cheap-swap path applies to exactly this kind of variant.
inline std::shared_ptr<const model::TimingModel> scaled_variant(
    const model::TimingModel& base, double factor) {
  timing::TimingGraph g = base.graph();
  for (timing::EdgeId e = 0; e < g.num_edge_slots(); ++e)
    if (g.edge_alive(e)) g.edge(e).delay.scale(factor);
  return std::make_shared<const model::TimingModel>(
      base.name() + "_x" + std::to_string(factor), std::move(g),
      base.variation(), base.boundary());
}

/// A design description independent of the module handles, so a changed
/// copy rebuilds into a fresh from-scratch flow::Design.
struct DesignSpec {
  struct Inst {
    size_t module = 0;  ///< pool index
    double x = 0.0, y = 0.0;
  };
  struct Conn {
    size_t from = 0, from_port = 0, to = 0, to_port = 0;
  };
  struct Port {
    std::string name;
    size_t inst = 0, port = 0;
  };
  std::string name;
  std::vector<Inst> instances;
  std::vector<Conn> connections;
  std::vector<Port> primary_inputs;
  std::vector<Port> primary_outputs;
};

/// Deterministic random design over the pool: 2-5 instances placed left to
/// right with a vertical jitter, chained plus extra forward connections,
/// ports declared explicitly (instance 0's inputs and about half of the
/// other undriven inputs; the last instance's outputs and about half of
/// the other unread outputs).
inline DesignSpec make_design_spec(uint64_t seed,
                                   const std::vector<flow::Module>& pool) {
  std::mt19937_64 rng(0x9e3779b97f4a7c15ull ^ seed);
  auto pick = [&](size_t n) { return static_cast<size_t>(rng() % n); };

  DesignSpec spec;
  spec.name = "fuzz" + std::to_string(seed);
  const size_t n = 2 + pick(4);  // 2..5 instances

  double x = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // Swappable structure needs uniform ports; geometry diversity comes
    // from placement. Only the base modules participate in a base design.
    const size_t m = pick(kPoolBases);
    const double y = static_cast<double>(pick(3)) * 11.0;
    spec.instances.push_back({m, x, y});
    x += pool[m].model().die().width + static_cast<double>(pick(2)) * 5.0;
  }

  std::set<std::pair<size_t, size_t>> driven;
  std::set<std::pair<size_t, size_t>> read;
  auto connect = [&](size_t from, size_t fp, size_t to, size_t tp) {
    if (!driven.insert({to, tp}).second) return;
    spec.connections.push_back({from, fp, to, tp});
    read.insert({from, fp});
  };
  // Chain consecutive instances on a couple of ports, then sprinkle random
  // forward (acyclic) connections.
  for (size_t i = 0; i + 1 < n; ++i) {
    connect(i, pick(kDesignModuleOutputs), i + 1, pick(kDesignModuleInputs));
    connect(i, pick(kDesignModuleOutputs), i + 1, pick(kDesignModuleInputs));
  }
  const size_t extras = pick(2 * n);
  for (size_t k = 0; k < extras && n >= 2; ++k) {
    const size_t from = pick(n - 1);
    const size_t to = from + 1 + pick(n - 1 - from);
    connect(from, pick(kDesignModuleOutputs), to, pick(kDesignModuleInputs));
  }

  // Primary inputs: all of instance 0's undriven inputs, and roughly half
  // of the other undriven inputs — the rest stay unconnected (legal) and
  // give rewires somewhere to land.
  for (size_t i = 0; i < n; ++i)
    for (size_t p = 0; p < kDesignModuleInputs; ++p) {
      if (driven.count({i, p})) continue;
      if (i != 0 && rng() % 2 != 0) continue;
      spec.primary_inputs.push_back(
          {"pi_" + std::to_string(i) + "_" + std::to_string(p), i, p});
      driven.insert({i, p});
    }
  // Primary outputs: the last instance's unread outputs plus half of the
  // other unread ones.
  for (size_t i = 0; i < n; ++i)
    for (size_t p = 0; p < kDesignModuleOutputs; ++p) {
      if (read.count({i, p})) continue;
      if (i + 1 != n && rng() % 2 != 0) continue;
      spec.primary_outputs.push_back(
          {"po_" + std::to_string(i) + "_" + std::to_string(p), i, p});
    }
  return spec;
}

/// Instantiate a spec as a flow::Design over the pool; `model_overrides`
/// replaces the listed instances' modules with stand-alone models (how the
/// from-scratch reference of a swapped design is built).
inline flow::Design build_design(
    const DesignSpec& spec, const std::vector<flow::Module>& pool,
    const flow::Config& cfg,
    const std::map<size_t, std::shared_ptr<const model::TimingModel>>&
        model_overrides = {}) {
  flow::Design d(spec.name, cfg);
  for (size_t i = 0; i < spec.instances.size(); ++i) {
    const DesignSpec::Inst& in = spec.instances[i];
    const auto it = model_overrides.find(i);
    if (it != model_overrides.end())
      d.add_instance(it->second, in.x, in.y);
    else
      d.add_instance(pool[in.module], in.x, in.y);
  }
  for (const DesignSpec::Conn& c : spec.connections)
    d.connect(c.from, c.from_port, c.to, c.to_port);
  for (const DesignSpec::Port& p : spec.primary_inputs)
    d.primary_input(p.name, p.inst, p.port);
  for (const DesignSpec::Port& p : spec.primary_outputs)
    d.primary_output(p.name, p.inst, p.port);
  return d;
}

/// An undriven, non-PI input port of some instance (rewire retarget
/// candidate); returns false when the spec has none.
inline bool find_free_input(const DesignSpec& spec, size_t* inst,
                            size_t* port) {
  std::set<std::pair<size_t, size_t>> driven;
  for (const DesignSpec::Conn& c : spec.connections)
    driven.insert({c.to, c.to_port});
  for (const DesignSpec::Port& p : spec.primary_inputs)
    driven.insert({p.inst, p.port});
  for (size_t i = 0; i < spec.instances.size(); ++i)
    for (size_t p = 0; p < kDesignModuleInputs; ++p)
      if (!driven.count({i, p})) {
        *inst = i;
        *port = p;
        return true;
      }
  return false;
}

}  // namespace hssta::testing
