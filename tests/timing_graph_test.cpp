// Tests for the timing graph container, the netlist builder, canonical
// propagation (validated against Monte Carlo sampling of the same canonical
// forms) and corner STA.

#include <gtest/gtest.h>

#include <cmath>

#include "hssta/library/cell_library.hpp"
#include "hssta/netlist/generate.hpp"
#include "hssta/placement/placement.hpp"
#include "hssta/stats/empirical.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/timing/builder.hpp"
#include "hssta/timing/propagate.hpp"
#include "hssta/timing/sta.hpp"
#include "hssta/util/error.hpp"
#include "hssta/variation/space.hpp"

namespace hssta::timing {
namespace {

CanonicalForm form(double nominal, std::vector<double> corr, double random) {
  CanonicalForm f(corr.size());
  f.set_nominal(nominal);
  std::copy(corr.begin(), corr.end(), f.corr().begin());
  f.set_random(random);
  return f;
}

TEST(TimingGraph, ConstructionAndAdjacency) {
  TimingGraph g(2);
  const VertexId a = g.add_vertex("a", true);
  const VertexId m = g.add_vertex("m");
  const VertexId z = g.add_vertex("z", false, true);
  const EdgeId e1 = g.add_edge(a, m, form(1.0, {0.1, 0.0}, 0.05));
  const EdgeId e2 = g.add_edge(m, z, form(2.0, {0.0, 0.2}, 0.05));
  EXPECT_EQ(g.num_live_vertices(), 3u);
  EXPECT_EQ(g.num_live_edges(), 2u);
  EXPECT_EQ(g.vertex(m).fanin.size(), 1u);
  EXPECT_EQ(g.vertex(m).fanout.size(), 1u);
  EXPECT_EQ(g.edge(e1).to, m);
  EXPECT_EQ(g.edge(e2).from, m);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.inputs().size(), 1u);
  EXPECT_EQ(g.outputs().size(), 1u);
  EXPECT_EQ(g.find_vertex("m"), m);
  EXPECT_EQ(g.find_vertex("nope"), kNoVertex);
}

TEST(TimingGraph, RemovalRules) {
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId m = g.add_vertex("m");
  const VertexId z = g.add_vertex("z", false, true);
  const EdgeId e1 = g.add_edge(a, m, form(1.0, {0.0}, 0.0));
  const EdgeId e2 = g.add_edge(m, z, form(1.0, {0.0}, 0.0));
  EXPECT_THROW(g.remove_vertex(m), Error);  // still has edges
  g.remove_edge(e1);
  EXPECT_THROW(g.remove_edge(e1), Error);  // already dead
  g.remove_edge(e2);
  EXPECT_EQ(g.num_live_edges(), 0u);
  EXPECT_THROW(g.remove_vertex(a), Error);  // port
  g.remove_vertex(m);
  EXPECT_FALSE(g.vertex_alive(m));
  EXPECT_EQ(g.num_live_vertices(), 2u);
  EXPECT_NO_THROW(g.validate());
}

TEST(TimingGraph, StructuralRules) {
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId b = g.add_vertex("b", true);
  const VertexId m = g.add_vertex("m");
  EXPECT_THROW(g.add_edge(m, a, form(1, {0.0}, 0)), Error);  // into input
  EXPECT_THROW(g.add_edge(m, m, form(1, {0.0}, 0)), Error);  // self loop
  EXPECT_THROW(g.add_edge(a, m, CanonicalForm(3)), Error);   // wrong dim
  (void)b;
}

TEST(TimingGraph, TopoOrderAndReachability) {
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId m1 = g.add_vertex("m1");
  const VertexId m2 = g.add_vertex("m2");
  const VertexId z = g.add_vertex("z", false, true);
  g.add_edge(a, m1, form(1, {0.0}, 0));
  g.add_edge(m1, z, form(1, {0.0}, 0));
  g.add_edge(a, m2, form(1, {0.0}, 0));  // m2 does not reach z
  const auto order = g.topo_order();
  EXPECT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), a);
  const auto fwd = g.reachable_from(a);
  EXPECT_TRUE(fwd[z] && fwd[m2]);
  const auto bwd = g.reaches(z);
  EXPECT_TRUE(bwd[a] && bwd[m1]);
  EXPECT_FALSE(bwd[m2]);
}

TEST(Propagate, ChainSumsDelays) {
  TimingGraph g(2);
  const VertexId a = g.add_vertex("a", true);
  const VertexId m = g.add_vertex("m");
  const VertexId z = g.add_vertex("z", false, true);
  g.add_edge(a, m, form(1.0, {0.1, 0.0}, 0.3));
  g.add_edge(m, z, form(2.0, {0.2, 0.1}, 0.4));
  const PropagationResult r = propagate_arrivals(g);
  EXPECT_TRUE(r.is_valid(z));
  const CanonicalForm& az = r.at(z);
  EXPECT_DOUBLE_EQ(az.nominal(), 3.0);
  EXPECT_DOUBLE_EQ(az.corr()[0], 0.30000000000000004);
  EXPECT_DOUBLE_EQ(az.corr()[1], 0.1);
  EXPECT_DOUBLE_EQ(az.random(), 0.5);
  EXPECT_EQ(r.diagnostics.ops, 0u);  // no max needed on a chain
}

TEST(Propagate, DiamondTakesMax) {
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId m1 = g.add_vertex("m1");
  const VertexId m2 = g.add_vertex("m2");
  const VertexId z = g.add_vertex("z", false, true);
  g.add_edge(a, m1, form(1.0, {0.0}, 0.1));
  g.add_edge(a, m2, form(1.2, {0.0}, 0.1));
  g.add_edge(m1, z, form(1.0, {0.0}, 0.1));
  g.add_edge(m2, z, form(1.0, {0.0}, 0.1));
  const PropagationResult r = propagate_arrivals(g);
  EXPECT_EQ(r.diagnostics.ops, 1u);
  // Mean of the max exceeds the larger branch mean.
  EXPECT_GT(r.at(z).nominal(), 2.2);
}

TEST(Propagate, UnreachedVertsAreInvalid) {
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId b = g.add_vertex("b", true);
  const VertexId m = g.add_vertex("m");
  const VertexId z = g.add_vertex("z", false, true);
  g.add_edge(a, m, form(1, {0.0}, 0));
  g.add_edge(m, z, form(1, {0.0}, 0));
  // Propagate from b only: nothing is reachable.
  const std::vector<VertexId> sources{b};
  const PropagationResult r = propagate_arrivals(g, sources);
  EXPECT_FALSE(r.is_valid(z));
  EXPECT_FALSE(r.is_valid(m));
  EXPECT_TRUE(r.is_valid(b));
  EXPECT_THROW((void)r.at(z), Error);
  EXPECT_THROW((void)circuit_delay(g, r), Error);
}

TEST(Propagate, ForwardBackwardSymmetry) {
  // Max input->output delay computed forward from the input equals the one
  // computed backward from the output (same path set, same fold).
  TimingGraph g(2);
  const VertexId a = g.add_vertex("a", true);
  const VertexId m1 = g.add_vertex("m1");
  const VertexId m2 = g.add_vertex("m2");
  const VertexId z = g.add_vertex("z", false, true);
  g.add_edge(a, m1, form(1.0, {0.1, 0.0}, 0.2));
  g.add_edge(a, m2, form(1.1, {0.0, 0.1}, 0.2));
  g.add_edge(m1, z, form(1.3, {0.1, 0.1}, 0.1));
  g.add_edge(m2, z, form(1.2, {0.2, 0.0}, 0.1));
  const std::vector<VertexId> sources{a};
  const PropagationResult fwd = propagate_arrivals(g, sources);
  const PropagationResult bwd = propagate_to_sink(g, z);
  EXPECT_NEAR(fwd.at(z).nominal(), bwd.at(a).nominal(), 1e-9);
  EXPECT_NEAR(fwd.at(z).sigma(), bwd.at(a).sigma(), 1e-9);
}

class PropagationVsMonteCarlo : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropagationVsMonteCarlo, RandomDagCircuitDelayMoments) {
  // Build a random netlist, construct its canonical graph, and compare the
  // SSTA circuit delay against Monte Carlo sampling of the same canonical
  // edge delays. This isolates the propagation (max) approximation.
  const library::CellLibrary lib = library::default_90nm();
  netlist::RandomDagSpec spec;
  spec.num_inputs = 8;
  spec.num_outputs = 4;
  spec.num_gates = 120;
  spec.num_pins = 210;
  spec.depth = 12;
  spec.seed = GetParam();
  const netlist::Netlist nl = netlist::make_random_dag(spec, lib);
  const placement::Placement pl = placement::place_rows(nl);
  const variation::ModuleVariation mv = variation::make_module_variation(
      pl, nl.num_gates(), variation::default_90nm_parameters(),
      variation::SpatialCorrelationConfig{});
  const BuiltGraph built = build_timing_graph(nl, pl, mv);

  const PropagationResult r = propagate_arrivals(built.graph);
  const CanonicalForm delay = circuit_delay(built.graph, r);

  stats::Rng rng(GetParam() * 7 + 1);
  stats::Moments mc;
  std::vector<double> y(built.graph.dim());
  std::vector<double> edge_delays(built.graph.num_edge_slots(), 0.0);
  for (int s = 0; s < 4000; ++s) {
    for (double& v : y) v = rng.normal();
    for (EdgeId e = 0; e < built.graph.num_edge_slots(); ++e)
      edge_delays[e] = built.graph.edge(e).delay.evaluate(y, rng.normal());
    mc.add(longest_path(built.graph, edge_delays).max_over_outputs(
        built.graph));
  }
  EXPECT_NEAR(delay.nominal(), mc.mean(), 0.02 * mc.mean());
  EXPECT_NEAR(delay.sigma(), mc.stddev(), 0.15 * mc.stddev());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationVsMonteCarlo,
                         ::testing::Values(1, 2, 3));

TEST(Builder, VertexAndEdgeAccounting) {
  const library::CellLibrary lib = library::default_90nm();
  const netlist::Netlist nl = netlist::make_ripple_adder(8, lib);
  const placement::Placement pl = placement::place_rows(nl);
  const variation::ModuleVariation mv = variation::make_module_variation(
      pl, nl.num_gates(), variation::default_90nm_parameters(),
      variation::SpatialCorrelationConfig{});
  const BuiltGraph built = build_timing_graph(nl, pl, mv);
  // Paper's Table I accounting: V = #PI + #gates, E = total pins.
  EXPECT_EQ(built.graph.num_live_vertices(),
            nl.primary_inputs().size() + nl.num_gates());
  EXPECT_EQ(built.graph.num_live_edges(), nl.num_pins());
  EXPECT_EQ(built.input_vertices.size(), nl.primary_inputs().size());
  EXPECT_EQ(built.output_vertices.size(), nl.primary_outputs().size());
  EXPECT_EQ(built.sites.size(), built.graph.num_edge_slots());
  built.graph.validate();
  // Every edge has positive nominal delay and some variability.
  for (EdgeId e = 0; e < built.graph.num_edge_slots(); ++e) {
    EXPECT_GT(built.graph.edge(e).delay.nominal(), 0.0);
    EXPECT_GT(built.graph.edge(e).delay.sigma(), 0.0);
    EXPECT_GT(built.sites[e].nominal, 0.0);
  }
}

TEST(Builder, EdgeSigmaTracksSensitivityScale) {
  // An edge's relative sigma should be in the ballpark implied by the
  // dominant Leff sensitivity (~0.9 * 15.7% ~ 14%), diluted by load noise.
  const library::CellLibrary lib = library::default_90nm();
  const netlist::Netlist nl = netlist::make_ripple_adder(4, lib);
  const placement::Placement pl = placement::place_rows(nl);
  const variation::ModuleVariation mv = variation::make_module_variation(
      pl, nl.num_gates(), variation::default_90nm_parameters(),
      variation::SpatialCorrelationConfig{});
  const BuiltGraph built = build_timing_graph(nl, pl, mv);
  for (EdgeId e = 0; e < built.graph.num_edge_slots(); ++e) {
    const CanonicalForm& d = built.graph.edge(e).delay;
    const double rel = d.sigma() / d.nominal();
    EXPECT_GT(rel, 0.05);
    EXPECT_LT(rel, 0.40);
  }
}

TEST(Sta, CornerOrderingAndNominal) {
  const library::CellLibrary lib = library::default_90nm();
  const netlist::Netlist nl = netlist::make_ripple_adder(8, lib);
  const placement::Placement pl = placement::place_rows(nl);
  const variation::ModuleVariation mv = variation::make_module_variation(
      pl, nl.num_gates(), variation::default_90nm_parameters(),
      variation::SpatialCorrelationConfig{});
  const BuiltGraph built = build_timing_graph(nl, pl, mv);

  const double nominal = corner_delay(built.graph, 0.0);
  const double worst3 = corner_delay(built.graph, 3.0);
  EXPECT_GT(nominal, 0.0);
  EXPECT_GT(worst3, nominal);

  // The 3-sigma corner is pessimistic relative to the SSTA 99.87% quantile
  // (it ignores both averaging along paths and spatial correlation).
  const PropagationResult r = propagate_arrivals(built.graph);
  const CanonicalForm delay = circuit_delay(built.graph, r);
  EXPECT_GT(worst3, delay.quantile(0.9987));
}

TEST(Sta, LongestPathValidatesInput) {
  TimingGraph g(1);
  (void)g.add_vertex("a", true);
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW((void)longest_path(g, wrong), Error);
}

}  // namespace
}  // namespace hssta::timing
