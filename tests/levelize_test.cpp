// Property tests for TimingGraph::levels(): the cached levelization the
// level-synchronous sweeps are built on. Pinned invariants: every live edge
// goes to a strictly higher level, the buckets partition topo_order()
// exactly, levels equal longest-path depth, cycles are rejected, and the
// cache invalidates on mutation while handed-out snapshots stay intact.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hssta/timing/graph.hpp"
#include "hssta/util/error.hpp"
#include "synthetic_graphs.hpp"

namespace hssta {
namespace {

using timing::CanonicalForm;
using timing::EdgeId;
using timing::kNoLevel;
using timing::LevelStructure;
using timing::TimingGraph;
using timing::VertexId;

CanonicalForm unit_delay() {
  CanonicalForm f(0);
  f.set_nominal(1.0);
  return f;
}

void expect_valid_levelization(const TimingGraph& g) {
  const std::shared_ptr<const LevelStructure> ls = g.levels();
  const std::vector<VertexId> topo = g.topo_order();

  // The concatenated buckets are exactly topo_order() (and therefore the
  // union of buckets equals it as a set).
  EXPECT_EQ(ls->order, topo);
  ASSERT_EQ(ls->offsets.empty() ? 0 : ls->offsets.front(), 0u);
  if (!ls->order.empty()) {
    ASSERT_EQ(ls->offsets.back(), ls->order.size());
    EXPECT_TRUE(std::is_sorted(ls->offsets.begin(), ls->offsets.end()));
  }
  std::set<VertexId> in_buckets;
  for (size_t l = 0; l < ls->num_levels(); ++l) {
    EXPECT_GT(ls->bucket(l).size(), 0u) << "empty bucket " << l;
    for (VertexId v : ls->bucket(l)) {
      EXPECT_EQ(ls->level_of[v], l);
      in_buckets.insert(v);
    }
  }
  EXPECT_EQ(in_buckets.size(), topo.size());
  EXPECT_EQ(in_buckets, std::set<VertexId>(topo.begin(), topo.end()));

  // Every live edge increases the level strictly.
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    if (!g.edge_alive(e)) continue;
    EXPECT_LT(ls->level_of[g.edge(e).from], ls->level_of[g.edge(e).to]);
  }

  // level_of is the longest-path depth: 0 without fanin, else 1 + max over
  // fanin sources (reference DP over the topo order).
  std::vector<uint32_t> ref(g.num_vertex_slots(), kNoLevel);
  for (VertexId v : topo) {
    uint32_t level = 0;
    for (EdgeId e : g.vertex(v).fanin)
      level = std::max(level, ref[g.edge(e).from] + 1);
    ref[v] = level;
  }
  EXPECT_EQ(ls->level_of, ref);

  // Dead slots carry no level.
  for (VertexId v = 0; v < g.num_vertex_slots(); ++v)
    if (!g.vertex_alive(v)) EXPECT_EQ(ls->level_of[v], kNoLevel);
}

TEST(Levelize, EmptyGraph) {
  const TimingGraph g(3);
  const auto ls = g.levels();
  EXPECT_EQ(ls->num_levels(), 0u);
  EXPECT_TRUE(ls->order.empty());
  EXPECT_EQ(ls->max_width(), 0u);
  EXPECT_EQ(ls->mean_width(), 0.0);
}

TEST(Levelize, SingleVertex) {
  TimingGraph g(0);
  const VertexId v = g.add_vertex("only", true, true);
  const auto ls = g.levels();
  ASSERT_EQ(ls->num_levels(), 1u);
  ASSERT_EQ(ls->bucket(0).size(), 1u);
  EXPECT_EQ(ls->bucket(0)[0], v);
  EXPECT_EQ(ls->level_of[v], 0u);
  EXPECT_EQ(ls->max_width(), 1u);
  expect_valid_levelization(g);
}

TEST(Levelize, DiamondGraph) {
  TimingGraph g(0);
  const VertexId a = g.add_vertex("a", true);
  const VertexId b = g.add_vertex("b");
  const VertexId c = g.add_vertex("c");
  const VertexId d = g.add_vertex("d", false, true);
  g.add_edge(a, b, unit_delay());
  g.add_edge(a, c, unit_delay());
  g.add_edge(b, d, unit_delay());
  g.add_edge(c, d, unit_delay());
  const auto ls = g.levels();
  ASSERT_EQ(ls->num_levels(), 3u);
  EXPECT_EQ(ls->level_of[a], 0u);
  EXPECT_EQ(ls->level_of[b], 1u);
  EXPECT_EQ(ls->level_of[c], 1u);
  EXPECT_EQ(ls->level_of[d], 2u);
  EXPECT_EQ(ls->bucket(1).size(), 2u);
  EXPECT_EQ(ls->max_width(), 2u);
  expect_valid_levelization(g);
}

TEST(Levelize, UnbalancedReconvergence) {
  // a -> b -> c -> d and a -> d directly: d sits at level 3, not 1.
  TimingGraph g(0);
  const VertexId a = g.add_vertex("a", true);
  const VertexId b = g.add_vertex("b");
  const VertexId c = g.add_vertex("c");
  const VertexId d = g.add_vertex("d", false, true);
  g.add_edge(a, b, unit_delay());
  g.add_edge(b, c, unit_delay());
  g.add_edge(c, d, unit_delay());
  g.add_edge(a, d, unit_delay());
  EXPECT_EQ(g.levels()->level_of[d], 3u);
  expect_valid_levelization(g);
}

TEST(Levelize, CycleRejected) {
  TimingGraph g(0);
  const VertexId a = g.add_vertex("a");
  const VertexId b = g.add_vertex("b");
  g.add_edge(a, b, unit_delay());
  g.add_edge(b, a, unit_delay());
  EXPECT_THROW((void)g.levels(), Error);
}

TEST(Levelize, RandomShapesHoldInvariants) {
  stats::Rng rng(20260728);
  for (size_t t = 0; t < 40; ++t) {
    const testing::SyntheticGraphSpec spec = testing::random_spec(rng);
    const TimingGraph g = testing::make_synthetic_graph(spec, rng);
    expect_valid_levelization(g);
  }
}

TEST(Levelize, SurvivesEdgeRemovalAndVertexRemoval) {
  stats::Rng rng(7);
  testing::SyntheticGraphSpec spec;
  spec.width = 6;
  spec.depth = 3;
  TimingGraph g = testing::make_synthetic_graph(spec, rng);
  expect_valid_levelization(g);
  // Remove a handful of live edges (plus any vertex that goes dangling)
  // and re-check; mutation must invalidate the cache.
  size_t removed = 0;
  for (EdgeId e = 0; e < g.num_edge_slots() && removed < 5; ++e) {
    if (!g.edge_alive(e)) continue;
    g.remove_edge(e);
    ++removed;
  }
  for (VertexId v = 0; v < g.num_vertex_slots(); ++v) {
    if (!g.vertex_alive(v)) continue;
    const timing::TimingVertex& tv = g.vertex(v);
    if (!tv.is_input && !tv.is_output && tv.fanin.empty() &&
        tv.fanout.empty())
      g.remove_vertex(v);
  }
  expect_valid_levelization(g);
}

TEST(Levelize, CacheInvalidatesButSnapshotsSurvive) {
  TimingGraph g(0);
  const VertexId a = g.add_vertex("a", true);
  const VertexId b = g.add_vertex("b", false, true);
  g.add_edge(a, b, unit_delay());
  const auto before = g.levels();
  EXPECT_EQ(g.levels().get(), before.get());  // cached: same snapshot

  const VertexId c = g.add_vertex("c", false, true);
  g.add_edge(b, c, unit_delay());
  const auto after = g.levels();
  EXPECT_NE(after.get(), before.get());  // mutation invalidated the cache
  // The old snapshot is untouched and still describes the old graph.
  EXPECT_EQ(before->order.size(), 2u);
  EXPECT_EQ(after->order.size(), 3u);
  EXPECT_EQ(after->level_of[c], 2u);
}

TEST(Levelize, CopiesShareTheSnapshot) {
  TimingGraph g(0);
  const VertexId a = g.add_vertex("a", true);
  const VertexId b = g.add_vertex("b", false, true);
  g.add_edge(a, b, unit_delay());
  const auto ls = g.levels();
  const TimingGraph copy = g;
  EXPECT_EQ(copy.levels().get(), ls.get());
  // Mutating the original does not disturb the copy's snapshot.
  g.add_vertex("x", true);
  EXPECT_EQ(copy.levels().get(), ls.get());
  EXPECT_NE(g.levels().get(), ls.get());
}

}  // namespace
}  // namespace hssta
