// End-to-end integration tests: the full pipeline (synthesize -> place ->
// variation -> graph -> extract -> hierarchical analysis -> Monte Carlo
// cross-check) on several ISCAS85-class circuits, plus the .bench interop
// path and the umbrella header.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "fixtures.hpp"
#include "hssta/hssta.hpp"  // umbrella: everything below must resolve

namespace hssta {
namespace {

class IscasPipeline : public ::testing::TestWithParam<const char*> {};

TEST_P(IscasPipeline, ExtractionContractHoldsOnRealScaleCircuits) {
  const char* name = GetParam();
  const library::CellLibrary& lib = testing::default_lib();
  const netlist::Netlist nl = netlist::make_iscas85(name, lib);
  const placement::Placement pl = placement::place_rows(nl);
  const variation::ModuleVariation mv = variation::make_module_variation(
      pl, nl.num_gates(), variation::default_90nm_parameters(),
      variation::SpatialCorrelationConfig{});
  const timing::BuiltGraph built = timing::build_timing_graph(nl, pl, mv);
  const model::Extraction ex = model::extract_timing_model(
      built, mv, name, model::compute_boundary(nl));

  // Size accounting consistent with the netlist (paper's Table I columns).
  EXPECT_EQ(ex.stats.original_vertices,
            nl.primary_inputs().size() + nl.num_gates());
  EXPECT_EQ(ex.stats.original_edges, nl.num_pins());
  // Meaningful compression on every circuit of the suite.
  EXPECT_LT(ex.stats.edge_ratio(), 0.60) << name;
  EXPECT_LT(ex.stats.vertex_ratio(), 0.60) << name;

  // Contract: connectivity identical, means within 2.5%, sigmas within 6%.
  const core::DelayMatrix original = core::all_pairs_io_delays(built.graph);
  const core::DelayMatrix modeled = ex.model.io_delays();
  double worst_mean = 0.0, worst_sigma = 0.0;
  for (size_t i = 0; i < original.num_inputs(); ++i)
    for (size_t j = 0; j < original.num_outputs(); ++j) {
      ASSERT_EQ(original.is_valid(i, j), modeled.is_valid(i, j));
      if (!original.is_valid(i, j)) continue;
      const double m = original.at(i, j).nominal();
      const double s = original.at(i, j).sigma();
      if (m > 1e-9)
        worst_mean = std::max(
            worst_mean, std::abs(modeled.at(i, j).nominal() - m) / m);
      if (s > 1e-9)
        worst_sigma = std::max(
            worst_sigma, std::abs(modeled.at(i, j).sigma() - s) / s);
    }
  EXPECT_LT(worst_mean, 0.025) << name;
  EXPECT_LT(worst_sigma, 0.06) << name;

  // Round-trip the model through its serialization format.
  std::ostringstream os;
  ex.model.save(os);
  std::istringstream is(os.str());
  const model::TimingModel loaded = model::TimingModel::load(is);
  EXPECT_EQ(loaded.graph().num_live_edges(),
            ex.model.graph().num_live_edges());
}

INSTANTIATE_TEST_SUITE_P(Suite, IscasPipeline,
                         ::testing::Values("c432", "c499", "c880", "c1355"));

TEST(Integration, BenchInteropPipeline) {
  // Write a generated circuit to .bench, read it back, run both through
  // the full analysis: results must agree exactly (same structure).
  const library::CellLibrary& lib = testing::default_lib();
  const netlist::Netlist original = netlist::make_ripple_adder(6, lib);
  const netlist::Netlist reread =
      netlist::read_bench_string(netlist::write_bench_string(original), lib,
                                 original.name());
  ASSERT_EQ(original.num_gates(), reread.num_gates());

  auto analyze = [&](const netlist::Netlist& nl) {
    const placement::Placement pl = placement::place_rows(nl);
    const variation::ModuleVariation mv = variation::make_module_variation(
        pl, nl.num_gates(), variation::default_90nm_parameters(),
        variation::SpatialCorrelationConfig{});
    const timing::BuiltGraph built = timing::build_timing_graph(nl, pl, mv);
    return core::run_ssta(built.graph).delay;
  };
  const timing::CanonicalForm a = analyze(original);
  const timing::CanonicalForm b = analyze(reread);
  EXPECT_NEAR(a.nominal(), b.nominal(), 1e-12);
  EXPECT_NEAR(a.sigma(), b.sigma(), 1e-12);
}

TEST(Integration, HierarchicalPipelineAgainstMonteCarloTwoModuleTypes) {
  // Two *different* modules sharing a grid pitch cannot generally be built
  // (the pitch is derived from the die), so the supported mixed case is
  // several instances of one module plus interconnect options; exercise
  // the full hier pipeline with both extensions enabled.
  const testing::ModuleUnderTest m(testing::small_module_spec(301));
  hier::HierDesign d = testing::make_quad_design(m);

  hier::HierOptions opts;
  opts.load_aware_boundary = true;
  opts.interconnect_delay = 0.02;
  const hier::HierResult hier = hier::analyze_hierarchical(d, opts);

  mc::FlattenOptions fopts;
  fopts.load_aware_boundary = true;
  fopts.interconnect_delay = 0.02;
  const auto mcd = mc::hier_flat_mc(d, 5000, 9, fopts);

  EXPECT_NEAR(hier.delay().nominal(), mcd.mean(), 0.035 * mcd.mean());
  EXPECT_NEAR(hier.delay().sigma(), mcd.stddev(), 0.15 * mcd.stddev());
}

TEST(Integration, ReducedSampleQuadMatchesAcrossSeeds) {
  // The hierarchical result is deterministic; MC varies only via its seed.
  const testing::ModuleUnderTest m(testing::small_module_spec(302));
  const hier::HierDesign d = testing::make_quad_design(m);
  const hier::HierResult h1 = hier::analyze_hierarchical(d);
  const hier::HierResult h2 = hier::analyze_hierarchical(d);
  EXPECT_DOUBLE_EQ(h1.delay().nominal(), h2.delay().nominal());
  EXPECT_DOUBLE_EQ(h1.delay().sigma(), h2.delay().sigma());

  const auto mc1 = mc::hier_flat_mc(d, 1500, 1);
  const auto mc2 = mc::hier_flat_mc(d, 1500, 2);
  EXPECT_NE(mc1.mean(), mc2.mean());
  EXPECT_NEAR(mc1.mean(), mc2.mean(), 0.05 * mc1.mean());
}

TEST(Integration, CornerBoundsSstaQuantilesOnSuite) {
  // 3-sigma corner must upper-bound the SSTA 99.87% quantile (corner STA
  // stacks pessimism); nominal STA must lower-bound the SSTA mean (Clark
  // maxima only add positive bumps).
  for (const char* name : {"c432", "c880"}) {
    const library::CellLibrary& lib = testing::default_lib();
    const netlist::Netlist nl = netlist::make_iscas85(name, lib);
    const placement::Placement pl = placement::place_rows(nl);
    const variation::ModuleVariation mv = variation::make_module_variation(
        pl, nl.num_gates(), variation::default_90nm_parameters(),
        variation::SpatialCorrelationConfig{});
    const timing::BuiltGraph built = timing::build_timing_graph(nl, pl, mv);
    const core::SstaResult ssta = core::run_ssta(built.graph);
    EXPECT_GE(timing::corner_delay(built.graph, 3.0),
              ssta.delay.quantile(0.9987))
        << name;
    EXPECT_LE(timing::corner_delay(built.graph, 0.0), ssta.delay.nominal())
        << name;
  }
}

}  // namespace
}  // namespace hssta
