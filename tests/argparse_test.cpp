// Tests for util::ArgParser: typed option binding, --name value and
// --name=value syntax, positional handling, help generation, and the
// error contract (unknown flags, missing values, malformed values).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hssta/util/argparse.hpp"
#include "hssta/util/error.hpp"

namespace hssta::util {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  return std::vector<const char*>(args);
}

TEST(ArgParser, BindsTypedOptionsAndFlags) {
  bool quick = false;
  uint64_t samples = 4000;
  double delta = 0.05;
  std::string out;
  ArgParser p("prog");
  p.flag("--quick", &quick, "fast run");
  p.option("--samples", &samples, "N", "sample count");
  p.option("--delta", &delta, "X", "threshold");
  p.option("--out", &out, "file", "output path");

  const auto args = argv_of({"prog", "--quick", "--samples", "123",
                             "--delta=0.2", "--out", "a.csv"});
  EXPECT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_TRUE(quick);
  EXPECT_EQ(samples, 123u);
  EXPECT_EQ(delta, 0.2);
  EXPECT_EQ(out, "a.csv");
}

TEST(ArgParser, PositionalsConsumeInOrder) {
  std::string in, out;
  std::vector<std::string> rest;
  ArgParser p("prog");
  p.positional("in", &in, "input");
  p.positional("out", &out, "output");
  p.positional_rest("extra", &rest, "more files");

  const auto args = argv_of({"prog", "a.bench", "b.hstm", "c", "d"});
  EXPECT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(in, "a.bench");
  EXPECT_EQ(out, "b.hstm");
  EXPECT_EQ(rest, (std::vector<std::string>{"c", "d"}));
}

TEST(ArgParser, UnknownFlagThrows) {
  ArgParser p("prog");
  bool b = false;
  p.flag("--known", &b, "known flag");
  const auto args = argv_of({"prog", "--unknown"});
  try {
    p.parse(static_cast<int>(args.size()), args.data());
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--unknown"), std::string::npos);
  }
}

TEST(ArgParser, MissingValueThrows) {
  uint64_t n = 0;
  ArgParser p("prog");
  p.option("--samples", &n, "N", "count");
  const auto args = argv_of({"prog", "--samples"});
  try {
    p.parse(static_cast<int>(args.size()), args.data());
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--samples"), std::string::npos);
  }
}

TEST(ArgParser, MalformedValuesThrow) {
  uint64_t n = 0;
  double d = 0;
  ArgParser p("prog");
  p.option("--n", &n, "N", "count");
  p.option("--d", &d, "X", "number");

  const auto bad_int = argv_of({"prog", "--n", "12x"});
  EXPECT_THROW(p.parse(static_cast<int>(bad_int.size()), bad_int.data()),
               Error);
  const auto neg_int = argv_of({"prog", "--n", "-3"});
  EXPECT_THROW(p.parse(static_cast<int>(neg_int.size()), neg_int.data()),
               Error);
  const auto bad_dbl = argv_of({"prog", "--d", "fast"});
  EXPECT_THROW(p.parse(static_cast<int>(bad_dbl.size()), bad_dbl.data()),
               Error);
}

TEST(ArgParser, SwitchRejectsInlineValue) {
  bool b = false;
  ArgParser p("prog");
  p.flag("--quick", &b, "fast");
  const auto args = argv_of({"prog", "--quick=1"});
  EXPECT_THROW(p.parse(static_cast<int>(args.size()), args.data()), Error);
}

TEST(ArgParser, MissingPositionalsThrow) {
  std::string in;
  ArgParser p("prog");
  p.positional("in", &in, "input");
  const auto args = argv_of({"prog"});
  try {
    p.parse(static_cast<int>(args.size()), args.data());
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("<in>"), std::string::npos);
  }

  std::vector<std::string> rest;
  ArgParser q("prog");
  q.positional_rest("mod", &rest, "modules", 2);
  const auto one = argv_of({"prog", "a.bench"});
  EXPECT_THROW(q.parse(static_cast<int>(one.size()), one.data()), Error);
}

TEST(ArgParser, UnexpectedPositionalThrows) {
  ArgParser p("prog");
  const auto args = argv_of({"prog", "stray"});
  EXPECT_THROW(p.parse(static_cast<int>(args.size()), args.data()), Error);
}

TEST(ArgParser, HelpListsEverythingAndStopsParsing) {
  bool quick = false;
  uint64_t n = 7;
  std::string in;
  ArgParser p("prog", "does things");
  p.flag("--quick", &quick, "fast run");
  p.option("--samples", &n, "N", "sample count");
  p.positional("in", &in, "input file");

  const std::string h = p.help();
  for (const char* expect :
       {"usage: prog", "does things", "<in>", "--quick", "fast run",
        "--samples <N>", "sample count", "--help"})
    EXPECT_NE(h.find(expect), std::string::npos) << expect;

  // --help short-circuits: nothing after it is parsed or validated.
  const auto args = argv_of({"prog", "--help", "--unknown"});
  EXPECT_FALSE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(n, 7u);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  bool b = false;
  ArgParser p("prog");
  p.flag("--x", &b, "first");
  EXPECT_THROW(p.flag("--x", &b, "again"), Error);
}

}  // namespace
}  // namespace hssta::util
