// Tests for the core SSTA engine: all-pairs IO delays, edge criticality
// (chain / parallel-cut / dominance properties, batch vs reference engine,
// chunking invariance), and the SSTA facade with statistical slack.

#include <gtest/gtest.h>

#include <cmath>

#include "hssta/core/criticality.hpp"
#include "hssta/core/io_delays.hpp"
#include "hssta/core/ssta.hpp"
#include "hssta/library/cell_library.hpp"
#include "hssta/netlist/generate.hpp"
#include "hssta/placement/placement.hpp"
#include "hssta/timing/builder.hpp"
#include "hssta/util/error.hpp"
#include "hssta/variation/space.hpp"

namespace hssta::core {
namespace {

using timing::CanonicalForm;
using timing::EdgeId;
using timing::TimingGraph;
using timing::VertexId;

CanonicalForm form(double nominal, std::vector<double> corr, double random) {
  CanonicalForm f(corr.size());
  f.set_nominal(nominal);
  std::copy(corr.begin(), corr.end(), f.corr().begin());
  f.set_random(random);
  return f;
}

/// in0 -> m -> out0, in1 -> m (two inputs, shared internal vertex).
TimingGraph two_input_graph() {
  TimingGraph g(2);
  const VertexId i0 = g.add_vertex("i0", true);
  const VertexId i1 = g.add_vertex("i1", true);
  const VertexId m = g.add_vertex("m");
  const VertexId z = g.add_vertex("z", false, true);
  g.add_edge(i0, m, form(1.0, {0.1, 0.0}, 0.05));
  g.add_edge(i1, m, form(2.0, {0.0, 0.1}, 0.05));
  g.add_edge(m, z, form(1.5, {0.1, 0.1}, 0.05));
  return g;
}

TEST(DelayMatrix, ChainDelaysSumAndValidity) {
  TimingGraph g = two_input_graph();
  const DelayMatrix m = all_pairs_io_delays(g);
  EXPECT_EQ(m.num_inputs(), 2u);
  EXPECT_EQ(m.num_outputs(), 1u);
  EXPECT_EQ(m.num_valid(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 0).nominal(), 2.5);
  EXPECT_DOUBLE_EQ(m.at(1, 0).nominal(), 3.5);
}

TEST(DelayMatrix, DisconnectedPairIsInvalid) {
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId b = g.add_vertex("b", true);
  const VertexId y = g.add_vertex("y", false, true);
  const VertexId z = g.add_vertex("z", false, true);
  g.add_edge(a, y, form(1.0, {0.0}, 0.0));
  g.add_edge(b, z, form(1.0, {0.0}, 0.0));
  const DelayMatrix m = all_pairs_io_delays(g);
  EXPECT_TRUE(m.is_valid(0, 0));
  EXPECT_FALSE(m.is_valid(0, 1));
  EXPECT_FALSE(m.is_valid(1, 0));
  EXPECT_TRUE(m.is_valid(1, 1));
  EXPECT_EQ(m.num_valid(), 2u);
  EXPECT_THROW((void)m.at(0, 1), Error);
}

TEST(DelayMatrix, MaxMeanErrorComparesValidPairs) {
  DelayMatrix a(1, 2, 1), b(1, 2, 1);
  a.set(0, 0, form(1.0, {0.0}, 0.0));
  b.set(0, 0, form(1.1, {0.0}, 0.0));
  a.set(0, 1, form(2.0, {0.0}, 0.0));
  b.set(0, 1, form(2.0, {0.0}, 0.0));
  EXPECT_NEAR(a.max_mean_error(b), 0.1 / 1.1, 1e-12);
  DelayMatrix c(2, 2, 1);
  EXPECT_THROW((void)a.max_mean_error(c), Error);
}

TEST(Criticality, ChainEdgesAreFullyCritical) {
  TimingGraph g(1);
  VertexId prev = g.add_vertex("in", true);
  for (int i = 0; i < 4; ++i) {
    const VertexId next = (i == 3) ? g.add_vertex("out", false, true)
                                   : g.add_vertex("m" + std::to_string(i));
    g.add_edge(prev, next, form(1.0, {0.1}, 0.05));
    prev = next;
  }
  const CriticalityResult r = compute_criticality(g);
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e)
    EXPECT_NEAR(r.max_criticality[e], 1.0, 1e-12) << "edge " << e;
}

TEST(Criticality, BalancedParallelBranchesSplitAndSumToOne) {
  // Two stochastically identical parallel branches: each carries
  // criticality ~0.5, and the cut criticalities sum to ~1.
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId m1 = g.add_vertex("m1");
  const VertexId m2 = g.add_vertex("m2");
  const VertexId z = g.add_vertex("z", false, true);
  const EdgeId b1 = g.add_edge(a, m1, form(1.0, {0.0}, 0.2));
  const EdgeId b2 = g.add_edge(a, m2, form(1.0, {0.0}, 0.2));
  g.add_edge(m1, z, form(1.0, {0.0}, 0.01));
  g.add_edge(m2, z, form(1.0, {0.0}, 0.01));
  const CriticalityResult r = compute_criticality(g);
  EXPECT_NEAR(r.max_criticality[b1], 0.5, 0.02);
  EXPECT_NEAR(r.max_criticality[b2], 0.5, 0.02);
  EXPECT_NEAR(r.max_criticality[b1] + r.max_criticality[b2], 1.0, 0.03);
}

TEST(Criticality, DominatedBranchIsNonCritical) {
  TimingGraph g(1);
  const VertexId a = g.add_vertex("a", true);
  const VertexId m1 = g.add_vertex("m1");
  const VertexId m2 = g.add_vertex("m2");
  const VertexId z = g.add_vertex("z", false, true);
  const EdgeId fast = g.add_edge(a, m1, form(0.2, {0.0}, 0.02));
  const EdgeId slow = g.add_edge(a, m2, form(2.0, {0.0}, 0.02));
  g.add_edge(m1, z, form(0.2, {0.0}, 0.02));
  g.add_edge(m2, z, form(0.2, {0.0}, 0.02));
  const CriticalityResult r = compute_criticality(g);
  EXPECT_LT(r.max_criticality[fast], 1e-6);
  EXPECT_GT(r.max_criticality[slow], 1.0 - 1e-6);
}

TEST(Criticality, MaxOverPairsNotPerPair) {
  // An edge critical for (i1, z) but dominated for (i0, z): cm picks the max.
  TimingGraph g = two_input_graph();
  const CriticalityResult r = compute_criticality(g);
  // Both input edges are the sole path from their input: criticality 1.
  EXPECT_NEAR(r.max_criticality[0], 1.0, 1e-9);
  EXPECT_NEAR(r.max_criticality[1], 1.0, 1e-9);
  EXPECT_NEAR(r.max_criticality[2], 1.0, 1e-9);
  // Per-pair reference: edge 0 for pair (0, 0) is the only path.
  EXPECT_NEAR(edge_pair_criticality(g, 0, 0, 0), 1.0, 1e-9);
  // Edge 1 cannot lie on a path from input 0.
  EXPECT_DOUBLE_EQ(edge_pair_criticality(g, 1, 0, 0), 0.0);
}

class CriticalityOnCircuit : public ::testing::Test {
 protected:
  CriticalityOnCircuit()
      : nl_(netlist::make_random_dag(spec(), lib())),
        pl_(placement::place_rows(nl_)),
        mv_(variation::make_module_variation(
            pl_, nl_.num_gates(), variation::default_90nm_parameters(),
            variation::SpatialCorrelationConfig{})),
        built_(timing::build_timing_graph(nl_, pl_, mv_)) {}

  static netlist::RandomDagSpec spec() {
    netlist::RandomDagSpec s;
    s.num_inputs = 6;
    s.num_outputs = 4;
    s.num_gates = 60;
    s.num_pins = 105;
    s.depth = 8;
    s.seed = 5;
    return s;
  }

  static const library::CellLibrary& lib() {
    static const library::CellLibrary l = library::default_90nm();
    return l;
  }

  netlist::Netlist nl_;
  placement::Placement pl_;
  variation::ModuleVariation mv_;
  timing::BuiltGraph built_;
};

TEST_F(CriticalityOnCircuit, BoundedAndBatchMatchesReference) {
  const CriticalityResult r = compute_criticality(built_.graph);
  for (EdgeId e = 0; e < built_.graph.num_edge_slots(); ++e) {
    EXPECT_GE(r.max_criticality[e], 0.0);
    EXPECT_LE(r.max_criticality[e], 1.0 + 1e-12);
  }
  // Cross-check a handful of edges against the single-pair reference.
  const size_t ni = built_.graph.inputs().size();
  const size_t no = built_.graph.outputs().size();
  for (EdgeId e = 0; e < built_.graph.num_edge_slots(); e += 17) {
    double best = 0.0;
    for (size_t i = 0; i < ni; ++i)
      for (size_t j = 0; j < no; ++j)
        best = std::max(best, edge_pair_criticality(built_.graph, e, i, j));
    EXPECT_NEAR(r.max_criticality[e], best, 1e-9) << "edge " << e;
  }
}

TEST_F(CriticalityOnCircuit, PairCriticalitiesPartitionEveryCut) {
  // For a fixed pair (i, j), the fanin edges of any vertex with positive
  // vertex criticality receive that mass exactly (tp renormalization), so
  // the fanin edges of output j itself sum to 1 whenever i reaches j.
  const TimingGraph& g = built_.graph;
  const DelayMatrix m = all_pairs_io_delays(g);
  for (size_t i = 0; i < g.inputs().size(); ++i) {
    for (size_t j = 0; j < g.outputs().size(); ++j) {
      if (!m.is_valid(i, j)) continue;
      const std::vector<double> c = pair_criticalities(g, i, j);
      const VertexId out = g.outputs()[j];
      double sum = 0.0;
      for (EdgeId e : g.vertex(out).fanin) sum += c[e];
      EXPECT_NEAR(sum, 1.0, 1e-9) << "pair " << i << "," << j;
      for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
        EXPECT_GE(c[e], 0.0);
        EXPECT_LE(c[e], 1.0 + 1e-6);
      }
    }
  }
}

TEST_F(CriticalityOnCircuit, DisconnectedPairHasZeroCriticality) {
  const TimingGraph& g = built_.graph;
  const DelayMatrix m = all_pairs_io_delays(g);
  for (size_t i = 0; i < g.inputs().size(); ++i)
    for (size_t j = 0; j < g.outputs().size(); ++j) {
      if (m.is_valid(i, j)) continue;
      const std::vector<double> c = pair_criticalities(g, i, j);
      for (double v : c) EXPECT_DOUBLE_EQ(v, 0.0);
    }
}

TEST_F(CriticalityOnCircuit, IoDelaysByproductMatchesDirectComputation) {
  const CriticalityResult r = compute_criticality(built_.graph);
  const DelayMatrix direct = all_pairs_io_delays(built_.graph);
  ASSERT_EQ(r.io_delays.num_inputs(), direct.num_inputs());
  for (size_t i = 0; i < direct.num_inputs(); ++i)
    for (size_t j = 0; j < direct.num_outputs(); ++j) {
      ASSERT_EQ(r.io_delays.is_valid(i, j), direct.is_valid(i, j));
      if (!direct.is_valid(i, j)) continue;
      EXPECT_DOUBLE_EQ(r.io_delays.at(i, j).nominal(),
                       direct.at(i, j).nominal());
    }
}

TEST(Ssta, FacadeMatchesManualPropagation) {
  TimingGraph g = two_input_graph();
  const SstaResult r = run_ssta(g);
  const timing::PropagationResult manual = timing::propagate_arrivals(g);
  const CanonicalForm direct = timing::circuit_delay(g, manual);
  EXPECT_DOUBLE_EQ(r.delay.nominal(), direct.nominal());
  EXPECT_DOUBLE_EQ(r.delay.sigma(), direct.sigma());
  // Yield is monotone in the period.
  EXPECT_LT(r.timing_yield(r.delay.quantile(0.1)),
            r.timing_yield(r.delay.quantile(0.9)));
}

TEST(Ssta, SlackSignsFollowRequiredTime) {
  TimingGraph g = two_input_graph();
  const SstaResult r = run_ssta(g);
  const double mean_delay = r.delay.nominal();

  const SlackResult loose = compute_slack(g, mean_delay + 10.0);
  const SlackResult tight = compute_slack(g, mean_delay - 10.0);
  for (VertexId v = 0; v < g.num_vertex_slots(); ++v) {
    if (!loose.valid[v]) continue;
    EXPECT_GT(loose.slack[v].nominal(), 0.0);
    EXPECT_LT(tight.slack[v].nominal(), 0.0);
    // Same uncertainty magnitude either way.
    EXPECT_NEAR(loose.slack[v].sigma(), tight.slack[v].sigma(), 1e-12);
  }
}

TEST(Ssta, SlackAtOutputEqualsRequiredMinusArrival) {
  TimingGraph g = two_input_graph();
  const VertexId z = g.outputs()[0];
  const SstaResult r = run_ssta(g);
  const SlackResult s = compute_slack(g, 5.0);
  ASSERT_TRUE(s.valid[z]);
  EXPECT_NEAR(s.slack[z].nominal(), 5.0 - r.arrivals.at(z).nominal(), 1e-12);
  EXPECT_NEAR(s.slack[z].sigma(), r.arrivals.at(z).sigma(), 1e-12);
}

}  // namespace
}  // namespace hssta::core
