// Tests for the canonical linear delay form: moments, algebra, evaluation.

#include <gtest/gtest.h>

#include <cmath>

#include "hssta/stats/normal.hpp"
#include "hssta/timing/canonical.hpp"
#include "hssta/util/error.hpp"

namespace hssta::timing {
namespace {

CanonicalForm make(double nominal, std::vector<double> corr, double random) {
  CanonicalForm f(corr.size());
  f.set_nominal(nominal);
  std::copy(corr.begin(), corr.end(), f.corr().begin());
  f.set_random(random);
  return f;
}

TEST(Canonical, ConstantHasNoVariance) {
  const CanonicalForm c = CanonicalForm::constant(3.5, 4);
  EXPECT_DOUBLE_EQ(c.nominal(), 3.5);
  EXPECT_DOUBLE_EQ(c.variance(), 0.0);
  EXPECT_EQ(c.dim(), 4u);
}

TEST(Canonical, MomentsFromCoefficients) {
  const CanonicalForm f = make(1.0, {0.3, -0.4}, 0.5);
  EXPECT_DOUBLE_EQ(f.variance(), 0.09 + 0.16 + 0.25);
  EXPECT_DOUBLE_EQ(f.sigma(), std::sqrt(0.5));
}

TEST(Canonical, CovarianceThroughSharedVariables) {
  const CanonicalForm a = make(0.0, {1.0, 2.0}, 3.0);
  const CanonicalForm b = make(0.0, {-1.0, 0.5}, 7.0);
  // Private randoms never co-vary.
  EXPECT_DOUBLE_EQ(a.covariance(b), -1.0 + 1.0);
  const CanonicalForm c = make(0.0, {2.0, 4.0}, 0.0);
  EXPECT_NEAR(a.correlation(c), (2.0 + 8.0) / (a.sigma() * c.sigma()), 1e-12);
}

TEST(Canonical, SumAddsCoefficientsAndRssRandom) {
  CanonicalForm a = make(1.0, {0.5, 0.0}, 3.0);
  const CanonicalForm b = make(2.0, {0.25, -1.0}, 4.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.nominal(), 3.0);
  EXPECT_DOUBLE_EQ(a.corr()[0], 0.75);
  EXPECT_DOUBLE_EQ(a.corr()[1], -1.0);
  EXPECT_DOUBLE_EQ(a.random(), 5.0);  // sqrt(9 + 16)
}

TEST(Canonical, SumVarianceOfCorrelatedForms) {
  // Var(A+B) = VarA + VarB + 2Cov.
  const CanonicalForm a = make(0.0, {1.0}, 0.5);
  const CanonicalForm b = make(0.0, {2.0}, 0.0);
  const CanonicalForm s = a + b;
  EXPECT_DOUBLE_EQ(s.variance(),
                   a.variance() + b.variance() + 2.0 * a.covariance(b));
}

TEST(Canonical, ScaleIsLinear) {
  CanonicalForm a = make(2.0, {1.0, -2.0}, 3.0);
  a.scale(0.5);
  EXPECT_DOUBLE_EQ(a.nominal(), 1.0);
  EXPECT_DOUBLE_EQ(a.corr()[1], -1.0);
  EXPECT_DOUBLE_EQ(a.random(), 1.5);
  EXPECT_THROW(a.scale(-1.0), Error);
}

TEST(Canonical, EvaluateAtAssignment) {
  const CanonicalForm a = make(10.0, {1.0, -0.5}, 2.0);
  const std::vector<double> y{2.0, 4.0};
  EXPECT_DOUBLE_EQ(a.evaluate(y, 1.5), 10.0 + 2.0 - 2.0 + 3.0);
  const std::vector<double> bad{1.0};
  EXPECT_THROW((void)a.evaluate(bad, 0.0), Error);
}

TEST(Canonical, QuantileAndCdfAreConsistent) {
  const CanonicalForm a = make(5.0, {3.0}, 4.0);  // sigma = 5
  EXPECT_NEAR(a.quantile(0.5), 5.0, 1e-12);
  EXPECT_NEAR(a.cdf(a.quantile(0.99)), 0.99, 1e-9);
  EXPECT_NEAR(a.quantile(stats::normal_cdf(1.0)), 10.0, 1e-9);
  // Deterministic form: step CDF.
  const CanonicalForm c = CanonicalForm::constant(1.0, 1);
  EXPECT_DOUBLE_EQ(c.cdf(0.99), 0.0);
  EXPECT_DOUBLE_EQ(c.cdf(1.0), 1.0);
}

TEST(Canonical, DimensionMismatchesThrow) {
  CanonicalForm a(2), b(3);
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW((void)a.covariance(b), Error);
}

TEST(Canonical, RandomCoefficientStaysNonNegative) {
  CanonicalForm a(1);
  EXPECT_THROW(a.set_random(-0.5), Error);
  // add_random_rss shares set_random's contract: negative magnitudes are
  // rejected, not silently squared away.
  EXPECT_THROW(a.add_random_rss(-0.5), Error);
  a.set_random(3.0);
  a.add_random_rss(4.0);
  EXPECT_DOUBLE_EQ(a.random(), 5.0);
}

}  // namespace
}  // namespace hssta::timing
