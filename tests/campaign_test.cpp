// Campaign subsystem tests: DesignState serialization (round-trip
// bit-identity, strict named errors), content fingerprints, campaign spec
// parsing + deterministic expansion, the worker wire protocol, and
// resumable sharded execution — in-process and across real worker
// subprocesses — with merged reports byte-identical to the serial
// reference run.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hssta/campaign/campaign.hpp"
#include "hssta/campaign/spec.hpp"
#include "hssta/flow/chain.hpp"
#include "hssta/flow/flow.hpp"
#include "hssta/flow/report.hpp"
#include "hssta/incr/design_state.hpp"
#include "hssta/incr/scenario.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/hash.hpp"
#include "hssta/util/json.hpp"

namespace hssta {
namespace {

namespace fs = std::filesystem;

// Geometry-compatible module trio (same footprint, different topology) —
// the serve_test fixture modules.
constexpr const char* kModuleA =
    "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(y)\n"
    "g = NAND(a, b)\nx = AND(g, a)\ny = OR(g, b)\n";
constexpr const char* kModuleB =
    "INPUT(p)\nINPUT(q)\nOUTPUT(s)\nOUTPUT(t)\n"
    "h = NAND(q, p)\ns = OR(h, p)\nt = AND(h, q)\n";
constexpr const char* kModuleC =
    "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(y)\n"
    "g = OR(a, b)\nx = NAND(g, b)\ny = AND(g, a)\n";

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("hssta_campaign_" + std::string(info->test_suite_name()) + "_" +
            info->name() + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    write("a.bench", kModuleA);
    write("b.bench", kModuleB);
    write("c.bench", kModuleC);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void write(const std::string& name, const std::string& text) const {
    std::ofstream(dir_ / name) << text;
  }

  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// A fresh a->b chain (the serialization suites' base). The campaign
  /// names its base design after the spec, and the name serializes into
  /// the state fingerprint — tests that re-derive campaign fingerprints
  /// must pass the spec's name.
  [[nodiscard]] flow::Design make_chain(const std::string& name = "d") const {
    return flow::build_chain_design(name, {file("a.bench"), file("b.bench")},
                                    flow::Config{});
  }

  /// The standard 3x2 campaign spec (sigma x swap) written to disk.
  [[nodiscard]] std::string write_spec() const {
    write("spec.json", R"({
      "name": "grid",
      "base": {"topology": "chain", "files": ["a.bench", "b.bench"]},
      "axes": [
        {"type": "sigma", "param": 0, "scales": [0.9, 1.0, 1.1]},
        {"type": "swap", "inst": 0, "files": ["a.bench", "c.bench"]}
      ]
    })");
    return file("spec.json");
  }

  [[nodiscard]] campaign::CampaignOptions opts(const std::string& out,
                                               size_t workers = 0,
                                               size_t limit = 0) const {
    campaign::CampaignOptions o;
    o.out_dir = (dir_ / out).string();
    o.workers = workers;
    o.limit = limit;
    return o;
  }

  static std::string slurp(const std::string& path) {
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
  }

  fs::path dir_;
};

// --- DesignState serialization ----------------------------------------------

using CampaignSerializeTest = CampaignTest;

TEST_F(CampaignSerializeTest, RoundTripAnalyzeBitIdenticalForEveryChangeKind) {
  const flow::Design base = make_chain();
  const auto variant = flow::load_variant_model(file("c.bench"), {});
  const std::vector<incr::Change> kinds{
      incr::ReplaceModule{0, variant},
      incr::MoveInstance{1, 7.5, 3.25},
      incr::RewireConnection{1, hier::PortRef{0, 0}, hier::PortRef{1, 1}},
      incr::SigmaScale{0, 1.3},
  };
  for (const incr::Change& change : kinds) {
    incr::DesignState st(base.incremental().inputs());
    incr::apply_change(st, change);
    const timing::CanonicalForm expected = st.analyze();

    std::ostringstream os;
    st.save(os);
    std::istringstream is(os.str());
    incr::DesignState loaded = incr::DesignState::load(is);
    EXPECT_TRUE(loaded.pending()) << "a loaded state must rebuild on first "
                                     "analyze";
    EXPECT_TRUE(loaded.analyze() == expected)
        << "round trip changed bits for: " << incr::describe_change(change);

    // The save is canonical: saving the loaded state reproduces it byte
    // for byte, so content fingerprints are stable across generations.
    std::ostringstream os2;
    loaded.save(os2);
    EXPECT_EQ(os.str(), os2.str());
    EXPECT_EQ(incr::state_fingerprint(st), incr::state_fingerprint(loaded));
  }
}

TEST_F(CampaignSerializeTest, PendingChangesSurviveTheSave) {
  const flow::Design base = make_chain();
  incr::DesignState st(base.incremental().inputs());
  (void)st.analyze();
  st.set_parameter_sigma(0, 1.4);
  st.move_instance(0, 2.0, 1.0);
  ASSERT_TRUE(st.pending());

  std::ostringstream os;
  st.save(os);  // saved with the changes recorded but not analyzed
  std::istringstream is(os.str());
  incr::DesignState loaded = incr::DesignState::load(is);
  EXPECT_TRUE(loaded.analyze() == st.analyze());
}

TEST_F(CampaignSerializeTest, EmbeddedModelsRoundTrip) {
  // A chain built from a pre-extracted .hstm exercises the embedded-model
  // payload (length-prefixed, content-hashed) instead of the .bench path.
  const flow::Module m = flow::Module::from_bench_file(file("a.bench"), {});
  m.extract_model().model.save_file(file("a.hstm"));
  const flow::Design base = flow::build_chain_design(
      "hm", {file("a.hstm"), file("b.bench")}, flow::Config{});
  incr::DesignState st(base.incremental().inputs());
  const timing::CanonicalForm expected = st.analyze();

  std::ostringstream os;
  st.save(os);
  std::istringstream is(os.str());
  incr::DesignState loaded = incr::DesignState::load(is);
  EXPECT_TRUE(loaded.analyze() == expected);
}

TEST_F(CampaignSerializeTest, StrictParserNamesEveryFailureMode) {
  const flow::Design base = make_chain();
  incr::DesignState st(base.incremental().inputs());
  (void)st.analyze();
  std::ostringstream os;
  st.save(os);
  const std::string text = os.str();

  auto load_text = [](const std::string& t) {
    std::istringstream is(t);
    return incr::DesignState::load(is);
  };
  auto expect_error = [&](const std::string& t, const std::string& what) {
    try {
      (void)load_text(t);
      FAIL() << "expected a load error mentioning '" << what << "'";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << e.what();
    }
  };

  expect_error("", "truncated");
  expect_error(text.substr(0, text.size() / 2), "truncated");
  expect_error("garbage garbage\n", "design state");
  expect_error("hsds 99\n", "unsupported design state format version 99");
  expect_error(text + "trailing\n", "trailing");

  // Corrupting a count must fail loudly, not mis-parse.
  const size_t pos = text.find("instances ");
  ASSERT_NE(pos, std::string::npos);
  std::string corrupt = text;
  corrupt.replace(pos, std::string("instances 2").size(), "instances 9");
  EXPECT_THROW((void)load_text(corrupt), Error);
}

// --- content fingerprints ---------------------------------------------------

using FingerprintTest = CampaignTest;

TEST_F(FingerprintTest, ScenarioFingerprintSeparatesChangesAndBases) {
  const flow::Design base = make_chain();
  incr::DesignState& st = base.incremental();
  (void)st.analyze();
  const uint64_t fp = incr::state_fingerprint(st);

  const std::vector<incr::Change> a{incr::SigmaScale{0, 1.1}};
  const std::vector<incr::Change> b{incr::SigmaScale{0, 1.2}};
  const std::vector<incr::Change> c{incr::SigmaScale{1, 1.1}};
  EXPECT_NE(incr::scenario_fingerprint(fp, a), incr::scenario_fingerprint(fp, b));
  EXPECT_NE(incr::scenario_fingerprint(fp, a), incr::scenario_fingerprint(fp, c));
  EXPECT_NE(incr::scenario_fingerprint(fp, a),
            incr::scenario_fingerprint(fp + 1, a));
  EXPECT_EQ(incr::scenario_fingerprint(fp, a), incr::scenario_fingerprint(fp, a));

  // Swapped models hash by content, not by pointer: two loads of the same
  // variant file produce the same fingerprint.
  const std::vector<incr::Change> s1{
      incr::ReplaceModule{0, flow::load_variant_model(file("c.bench"), {})}};
  const std::vector<incr::Change> s2{
      incr::ReplaceModule{0, flow::load_variant_model(file("c.bench"), {})}};
  EXPECT_EQ(incr::scenario_fingerprint(fp, s1),
            incr::scenario_fingerprint(fp, s2));
}

TEST_F(FingerprintTest, RunnerStampsTheCampaignJoinKey) {
  const flow::Design base = make_chain();
  incr::DesignState& st = base.incremental();
  (void)st.analyze();
  const incr::ScenarioRunner runner(st);
  EXPECT_EQ(runner.base_fingerprint(), incr::state_fingerprint(st));

  const std::vector<incr::Scenario> scenarios{
      {"s", {incr::SigmaScale{0, 1.1}}}};
  const std::vector<incr::ScenarioResult> rs = runner.run(scenarios);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].fingerprint,
            incr::scenario_fingerprint(runner.base_fingerprint(),
                                       scenarios[0].changes));
  EXPECT_NE(rs[0].fingerprint, 0u);

  // The sweep report emits it as the 16-hex-digit join key.
  const std::string json = flow::sweep_report_json(base, rs);
  EXPECT_NE(json.find("\"fingerprint\":\"" +
                      util::Fnv1a::hex(rs[0].fingerprint) + "\""),
            std::string::npos)
      << json;
}

// --- campaign spec ----------------------------------------------------------

using SpecTest = CampaignTest;

TEST_F(SpecTest, ParsesAndExpandsDeterministically) {
  const campaign::CampaignSpec spec =
      campaign::parse_campaign_file(write_spec());
  EXPECT_EQ(spec.name, "grid");
  EXPECT_EQ(spec.topology, "chain");
  ASSERT_EQ(spec.files.size(), 2u);
  EXPECT_EQ(spec.files[0], file("a.bench"));  // resolved against the spec dir
  ASSERT_EQ(spec.axes.size(), 2u);

  const std::vector<campaign::CampaignScenario> scs = campaign::expand(spec);
  ASSERT_EQ(scs.size(), 6u);
  // Odometer order, last axis fastest.
  EXPECT_EQ(scs[0].label, "p0x0.9|u0=a.bench");
  EXPECT_EQ(scs[1].label, "p0x0.9|u0=c.bench");
  EXPECT_EQ(scs[2].label, "p0x1|u0=a.bench");
  EXPECT_EQ(scs[5].label, "p0x1.1|u0=c.bench");
  for (size_t i = 0; i < scs.size(); ++i) {
    EXPECT_EQ(scs[i].index, i);
    EXPECT_EQ(scs[i].changes.size(), 2u);
  }
}

TEST_F(SpecTest, RejectsDuplicatesUnknownKeysAndBadAxes) {
  auto parse = [](const std::string& text) {
    return campaign::parse_campaign(util::JsonReader::parse(text), "");
  };
  const std::string base =
      R"("base": {"topology": "chain", "files": ["a", "b"]})";

  EXPECT_THROW((void)campaign::expand(parse(
                   R"({"name": "n", )" + base + R"(, "axes": [)"
                   R"({"type": "sigma", "param": 0, "scales": [1.1, 1.1]}]})")),
               Error);
  EXPECT_THROW((void)parse(R"({"name": "n", )" + base + R"(, "axes": [)"
                           R"({"type": "sigma", "param": 0, "scale": [1]}]})"),
               Error);  // typo'd key
  EXPECT_THROW((void)parse(R"({"name": "n", )" + base + R"(, "axes": [)"
                           R"({"type": "corner", "param": 0}]})"),
               Error);  // unknown axis type
  EXPECT_THROW((void)parse(R"({"name": "n", )" + base + R"(, "axes": []})"),
               Error);  // no axes
  EXPECT_THROW((void)parse(
                   R"({"name": "n", "base": {"topology": "ring",)"
                   R"( "files": ["a", "b"]}, "axes": [)"
                   R"({"type": "sigma", "param": 0, "scales": [1]}]})"),
               Error);  // unknown topology

  // Annotations are legal everywhere.
  const campaign::CampaignSpec spec = parse(
      R"({"name": "n", "description": "doc", )" + base + R"(, "axes": [)"
      R"({"type": "sigma", "param": 0, "scales": [1.1], "notes": "x"}]})");
  EXPECT_EQ(campaign::expand(spec).size(), 1u);
}

TEST_F(SpecTest, OversizedGridsFailWithTheNamedErrorBeforeExpanding) {
  // 100^4 = 1e8 scenarios: the size check must fire — with its own
  // message, not a bad_alloc from trying to materialize the expansion.
  campaign::CampaignSpec spec;
  spec.name = "huge";
  spec.topology = "chain";
  spec.files = {"a", "b"};
  spec.axes.resize(4);
  for (size_t a = 0; a < spec.axes.size(); ++a)
    for (size_t v = 0; v < 100; ++v) {
      serve::ChangeSpec c;
      c.op = serve::ChangeSpec::Op::kSigma;
      c.param = a;
      c.scale = 1.0 + 1e-6 * static_cast<double>(v);
      spec.axes[a].values.push_back(
          {"p" + std::to_string(a) + "v" + std::to_string(v), c});
    }
  try {
    (void)campaign::expand(spec);
    FAIL() << "oversized grid accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unreasonably large"),
              std::string::npos);
  }
}

// --- worker protocol --------------------------------------------------------

using WorkerTest = CampaignTest;

TEST_F(WorkerTest, SpeaksTheProtocolAndWritesShards) {
  const std::string spec = write_spec();
  const campaign::CampaignOptions o = opts("wout");

  // The worker and this test must agree on the expansion: re-derive the
  // fingerprint of scenario 0 (sigma 0.9 + swap a.bench) independently.
  const flow::Design base = make_chain("grid");
  (void)base.incremental().analyze();
  const uint64_t base_fp = incr::state_fingerprint(base.incremental());
  const std::vector<incr::Change> ch0{
      incr::SigmaScale{0, 0.9},
      incr::ReplaceModule{0, flow::load_variant_model(file("a.bench"), {})}};
  // Axis order in the spec: sigma first, swap second — but changes are
  // applied per axis in declaration order, so scenario 0's list is
  // [sigma0x0.9, swap u0=a.bench].
  const std::vector<incr::Change> expected_order{ch0[0], ch0[1]};
  const uint64_t fp0 = incr::scenario_fingerprint(base_fp, expected_order);

  std::istringstream in(
      "# comment lines are skipped\n"
      "\n"
      R"({"verb":"scenario","index":0,"fingerprint":")" +
      util::Fnv1a::hex(fp0) + R"("})" + "\n" +
      R"({"verb":"scenario","index":1,"fingerprint":"0000000000000000"})" +
      "\n" + R"({"verb":"shutdown"})" + "\n");
  std::ostringstream out;
  EXPECT_EQ(campaign::worker_loop(spec, o, in, out), 0);

  std::vector<std::string> lines;
  std::istringstream split(out.str());
  for (std::string l; std::getline(split, l);) lines.push_back(l);
  ASSERT_EQ(lines.size(), 4u) << out.str();

  const util::JsonValue ready = util::JsonReader::parse(lines[0]);
  EXPECT_TRUE(ready.at("ready").as_bool());
  EXPECT_EQ(ready.at("campaign").as_string(), "grid");
  EXPECT_EQ(ready.at("base_fingerprint").as_string(),
            util::Fnv1a::hex(base_fp));
  EXPECT_EQ(ready.at("scenarios").as_count("scenarios"), 6u);

  const util::JsonValue done = util::JsonReader::parse(lines[1]);
  EXPECT_TRUE(done.at("ok").as_bool()) << lines[1];
  EXPECT_EQ(done.at("index").as_count("index"), 0u);
  EXPECT_FALSE(done.at("failed").as_bool());
  EXPECT_TRUE(campaign::read_shard(campaign::shard_path(o.out_dir, fp0), fp0,
                                   base_fp)
                  .has_value());

  // A mismatched fingerprint is refused, not silently executed.
  const util::JsonValue bad = util::JsonReader::parse(lines[2]);
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_NE(bad.at("error").as_string().find("fingerprint"),
            std::string::npos);

  const util::JsonValue bye = util::JsonReader::parse(lines[3]);
  EXPECT_TRUE(bye.at("stopping").as_bool());
}

// --- sharded execution + resume ---------------------------------------------

using RunTest = CampaignTest;

TEST_F(RunTest, InProcessRunStatusAndMerge) {
  const std::string spec = write_spec();

  campaign::RunStats s = campaign::run_campaign(spec, opts("out"));
  EXPECT_EQ(s.total, 6u);
  EXPECT_EQ(s.executed, 6u);
  EXPECT_EQ(s.skipped, 0u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.remaining, 0u);

  const campaign::StatusReport st = campaign::campaign_status(spec, opts("out"));
  EXPECT_EQ(st.name, "grid");
  EXPECT_EQ(st.done, 6u);
  EXPECT_EQ(st.failed, 0u);

  const std::string merged = campaign::merge_campaign(spec, opts("out"));
  EXPECT_EQ(slurp((dir_ / "out" / "campaign.json").string()), merged);
  const util::JsonValue doc = util::JsonReader::parse(merged);
  EXPECT_EQ(doc.at("campaign").as_string(), "grid");
  EXPECT_EQ(doc.at("scenarios").items().size(), 6u);
  EXPECT_EQ(doc.at("aggregate").at("ok").as_count("ok"), 6u);
  EXPECT_EQ(doc.at("worst").items().size(), 6u);
  // Worst ranking is q99-descending.
  const auto& worst = doc.at("worst").items();
  for (size_t i = 1; i < worst.size(); ++i)
    EXPECT_GE(worst[i - 1].at("q99").as_number(),
              worst[i].at("q99").as_number());

  // A re-run skips everything and re-merge is byte-stable.
  s = campaign::run_campaign(spec, opts("out"));
  EXPECT_EQ(s.skipped, 6u);
  EXPECT_EQ(s.executed, 0u);
  EXPECT_EQ(campaign::merge_campaign(spec, opts("out")), merged);
}

TEST_F(RunTest, ScenarioResultsMatchADirectScenarioRunnerSweep) {
  // The campaign's shard delays must be the ScenarioRunner's, bit for bit.
  const std::string spec = write_spec();
  (void)campaign::run_campaign(spec, opts("out"));
  const util::JsonValue doc =
      util::JsonReader::parse(campaign::merge_campaign(spec, opts("out")));

  const flow::Design base = make_chain("grid");
  (void)base.incremental().analyze();
  const incr::ScenarioRunner runner(base.incremental());
  std::vector<incr::Scenario> scenarios;
  for (const double scale : {0.9, 1.0, 1.1})
    for (const char* f : {"a.bench", "c.bench"})
      scenarios.push_back(
          {"", {incr::SigmaScale{0, scale},
                incr::ReplaceModule{0, flow::load_variant_model(file(f), {})}}});
  const std::vector<incr::ScenarioResult> rs = runner.run(scenarios);

  const auto& merged = doc.at("scenarios").items();
  ASSERT_EQ(merged.size(), rs.size());
  for (size_t i = 0; i < rs.size(); ++i) {
    ASSERT_TRUE(rs[i].ok());
    EXPECT_EQ(merged[i].at("delay").at("mean").as_number(),
              rs[i].delay.nominal());
    EXPECT_EQ(merged[i].at("delay").at("sigma").as_number(),
              rs[i].delay.sigma());
    EXPECT_EQ(merged[i].at("fingerprint").as_string(),
              util::Fnv1a::hex(rs[i].fingerprint));
  }
}

TEST_F(RunTest, LimitedRunsResumeWithoutReexecution) {
  const std::string spec = write_spec();

  campaign::RunStats s = campaign::run_campaign(spec, opts("out", 0, 2));
  EXPECT_EQ(s.executed, 2u);
  EXPECT_EQ(s.remaining, 4u);
  EXPECT_THROW((void)campaign::merge_campaign(spec, opts("out")), Error);

  s = campaign::run_campaign(spec, opts("out", 0, 3));
  EXPECT_EQ(s.skipped, 2u);  // the first run's work is not repeated
  EXPECT_EQ(s.executed, 3u);
  EXPECT_EQ(s.remaining, 1u);

  s = campaign::run_campaign(spec, opts("out"));
  EXPECT_EQ(s.skipped, 5u);
  EXPECT_EQ(s.executed, 1u);
  EXPECT_EQ(s.remaining, 0u);

  // Interrupted + resumed == one-shot, byte for byte.
  (void)campaign::run_campaign(spec, opts("ref"));
  EXPECT_EQ(campaign::merge_campaign(spec, opts("out")),
            campaign::merge_campaign(spec, opts("ref")));
}

TEST_F(RunTest, FailedScenariosPersistAndAreNeverRetried) {
  // Rewire axis mixing one valid route with one whose target port is out
  // of range: half the grid fails, and the failures are terminal work.
  write("fail.json", R"({
    "name": "failures",
    "base": {"topology": "chain", "files": ["a.bench", "b.bench"]},
    "axes": [
      {"type": "sigma", "param": 0, "scales": [0.9, 1.1]},
      {"type": "rewire", "conn": 1, "routes": [
        {"from_inst": 0, "from_port": 0, "to_inst": 1, "to_port": 1},
        {"from_inst": 0, "from_port": 0, "to_inst": 1, "to_port": 7}
      ]}
    ]
  })");
  const std::string spec = file("fail.json");

  campaign::RunStats s = campaign::run_campaign(spec, opts("out"));
  EXPECT_EQ(s.executed, 4u);
  EXPECT_EQ(s.failed, 2u);

  s = campaign::run_campaign(spec, opts("out"));
  EXPECT_EQ(s.skipped, 4u) << "error shards are completed work";
  EXPECT_EQ(s.executed, 0u);

  const util::JsonValue doc =
      util::JsonReader::parse(campaign::merge_campaign(spec, opts("out")));
  EXPECT_EQ(doc.at("aggregate").at("ok").as_count("ok"), 2u);
  EXPECT_EQ(doc.at("aggregate").at("failed").as_count("failed"), 2u);
  size_t errors = 0;
  for (const util::JsonValue& sc : doc.at("scenarios").items())
    if (!sc.at("ok").as_bool()) {
      ++errors;
      EXPECT_FALSE(sc.at("error").as_string().empty());
    }
  EXPECT_EQ(errors, 2u);
  EXPECT_EQ(doc.at("worst").items().size(), 2u) << "failed scenarios are "
                                                   "not ranked";
}

TEST_F(RunTest, StaleShardsFromAnotherBaseAreIgnored) {
  const std::string spec = write_spec();
  (void)campaign::run_campaign(spec, opts("out"));

  // Change the base design: every old shard now belongs to a different
  // base fingerprint and must be treated as "not run".
  write("a.bench", kModuleC);
  const campaign::StatusReport st = campaign::campaign_status(spec, opts("out"));
  EXPECT_EQ(st.done, 0u);
  const campaign::RunStats s = campaign::run_campaign(spec, opts("out"));
  EXPECT_EQ(s.skipped, 0u);
  EXPECT_EQ(s.executed, 6u);
}

// --- worker subprocesses ----------------------------------------------------

using SubprocessTest = CampaignTest;

TEST_F(SubprocessTest, WorkersMatchTheSerialReferenceByteForByte) {
  if (!fs::exists(campaign::default_worker_cmd()))
    GTEST_SKIP() << "hssta_cli not found next to the test binary";
  const std::string spec = write_spec();

  const campaign::RunStats s = campaign::run_campaign(spec, opts("w", 4));
  EXPECT_EQ(s.executed, 6u);
  EXPECT_EQ(s.remaining, 0u);

  (void)campaign::run_campaign(spec, opts("ref", 0));
  EXPECT_EQ(campaign::merge_campaign(spec, opts("w")),
            campaign::merge_campaign(spec, opts("ref")));
}

TEST_F(SubprocessTest, LimitedWorkerRunResumes) {
  if (!fs::exists(campaign::default_worker_cmd()))
    GTEST_SKIP() << "hssta_cli not found next to the test binary";
  const std::string spec = write_spec();

  campaign::RunStats s = campaign::run_campaign(spec, opts("w", 2, 2));
  EXPECT_EQ(s.executed, 2u);
  EXPECT_EQ(s.remaining, 4u);

  s = campaign::run_campaign(spec, opts("w", 2));
  EXPECT_EQ(s.skipped, 2u);
  EXPECT_EQ(s.executed, 4u);

  (void)campaign::run_campaign(spec, opts("ref", 0));
  EXPECT_EQ(campaign::merge_campaign(spec, opts("w")),
            campaign::merge_campaign(spec, opts("ref")));
}

TEST_F(SubprocessTest, MidCampaignWorkerDeathRedispatchesToIdleSurvivors) {
  if (!fs::exists(campaign::default_worker_cmd()))
    GTEST_SKIP() << "hssta_cli not found next to the test binary";
  const std::string spec = write_spec();

  // Exactly one of the two workers (whoever wins the lock-dir mkdir)
  // handshakes, accepts a scenario, then dies WITHOUT publishing its
  // shard — two seconds later, long after the survivor has drained the
  // queue and gone idle. The coordinator must hand the orphaned scenario
  // to the idle survivor instead of blocking in poll on workers that
  // will never write again (regression: tail-of-campaign worker death
  // used to deadlock the run).
  // The flaky branch runs a real worker with a private out dir and a
  // /dev/null stdin (so the child handshakes, writes no shard, and exits
  // on its own), forwards just the handshake line, lingers, then dies.
  const std::string cli = campaign::default_worker_cmd();
  write("flaky_worker.sh",
        "#!/bin/sh\n"
        "# argv: campaign-worker --spec <spec> --out <out> ...\n"
        "if mkdir \"" + file("flaky.lock") + "\" 2>/dev/null; then\n"
        "  d=$(mktemp -d)\n"
        "  \"" + cli + "\" campaign-worker --spec \"$3\" --out \"$d\" "
        "> \"$d/log\" &\n"
        "  while ! grep -q '\"ready\"' \"$d/log\" 2>/dev/null; do "
        "sleep 0.05; done\n"
        "  head -n 1 \"$d/log\"\n"
        "  sleep 2\n"
        "  rm -rf \"$d\"\n"
        "  exit 1\n"
        "fi\n"
        "sleep 0.5\n"  // let the flaky worker handshake + take a scenario first
        "exec \"" + cli + "\" \"$@\"\n");
  fs::permissions(dir_ / "flaky_worker.sh", fs::perms::owner_all);
  campaign::CampaignOptions o = opts("w", 2);
  o.worker_cmd = file("flaky_worker.sh");

  const campaign::RunStats s = campaign::run_campaign(spec, o);
  EXPECT_EQ(s.executed, 6u);
  EXPECT_EQ(s.remaining, 0u);
  EXPECT_EQ(s.redispatched, 1u);

  (void)campaign::run_campaign(spec, opts("ref", 0));
  EXPECT_EQ(campaign::merge_campaign(spec, opts("w")),
            campaign::merge_campaign(spec, opts("ref")));
}

TEST_F(SubprocessTest, DeadWorkersAreAFatalCampaignError) {
  const std::string spec = write_spec();
  campaign::CampaignOptions o = opts("w", 2);
  o.worker_cmd = "/bin/false";  // exits immediately: EOF before handshake
  EXPECT_THROW((void)campaign::run_campaign(spec, o), Error);
  // Nothing ran, so a later real run starts from zero.
  EXPECT_EQ(campaign::campaign_status(spec, opts("w")).done, 0u);
}

}  // namespace
}  // namespace hssta
