// Seeded random timing-graph generator shared by the levelization property
// tests and the level-sweep differential fuzz harness. Unlike
// netlist::make_random_dag (which builds a full netlist and runs the whole
// pipeline), this builds bare timing::TimingGraph instances directly, so a
// fuzz run can sweep hundreds of structural shapes — wide, narrow, deep,
// heavy-fanin, multi-port, partially disconnected — in milliseconds.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "hssta/stats/rng.hpp"
#include "hssta/timing/graph.hpp"

namespace hssta::testing {

/// Shape of one synthetic graph. Layered construction: `depth` layers of
/// roughly `width` internal vertices each between the input and output
/// ports; every non-input vertex draws 1..max_fanin edges from earlier
/// vertices (biased toward the previous layer so the depth is structural).
struct SyntheticGraphSpec {
  size_t num_inputs = 4;
  size_t num_outputs = 4;
  size_t width = 8;
  size_t depth = 4;
  size_t max_fanin = 3;
  size_t dim = 4;
};

/// Draw a spec with varying width/depth/fanin from `rng`. Roughly half the
/// shapes have levels wide enough (>= 16) to cross the level-parallel
/// fan-out threshold, the rest exercise the narrow inline path.
inline SyntheticGraphSpec random_spec(stats::Rng& rng) {
  SyntheticGraphSpec s;
  s.num_inputs = 1 + rng.uniform_index(6);
  s.num_outputs = 1 + rng.uniform_index(6);
  s.width = 2 + rng.uniform_index(40);
  s.depth = 1 + rng.uniform_index(8);
  s.max_fanin = 1 + rng.uniform_index(4);
  s.dim = rng.uniform_index(6);  // includes dim 0 (pure random forms)
  return s;
}

/// A random positive canonical delay.
inline timing::CanonicalForm random_delay(size_t dim, stats::Rng& rng) {
  timing::CanonicalForm f(dim);
  f.set_nominal(rng.uniform(0.1, 1.0));
  for (size_t k = 0; k < dim; ++k) f.corr()[k] = 0.03 * rng.normal();
  f.set_random(rng.uniform(0.005, 0.05));
  return f;
}

/// Generate an acyclic graph for `spec`: vertex ids increase along every
/// edge by construction. Not necessarily fully connected — some outputs may
/// be unreachable from some inputs, which is exactly the validity-flag
/// territory the sweeps must agree on.
inline timing::TimingGraph make_synthetic_graph(const SyntheticGraphSpec& spec,
                                                stats::Rng& rng) {
  timing::TimingGraph g(spec.dim);
  std::vector<timing::VertexId> pool;  // candidate edge sources, in id order

  for (size_t i = 0; i < spec.num_inputs; ++i)
    pool.push_back(g.add_vertex("in" + std::to_string(i), /*is_input=*/true));

  size_t layer_begin = 0;  // index into `pool` of the previous layer
  for (size_t d = 0; d < spec.depth; ++d) {
    const size_t prev_begin = layer_begin;
    layer_begin = pool.size();
    // +-25% jitter around the requested width, at least one vertex.
    const size_t layer_width = 1 + rng.uniform_index(std::max<size_t>(
                                       1, spec.width + spec.width / 4));
    for (size_t k = 0; k < layer_width; ++k) {
      const timing::VertexId v = g.add_vertex(
          "g" + std::to_string(d) + "_" + std::to_string(k));
      const size_t fanin = 1 + rng.uniform_index(spec.max_fanin);
      for (size_t f = 0; f < fanin; ++f) {
        // Bias 3:1 toward the previous layer so depth is structural, with
        // occasional long skip edges from anywhere earlier.
        const bool local = prev_begin < layer_begin && rng.uniform() < 0.75;
        const size_t lo = local ? prev_begin : 0;
        const timing::VertexId src =
            pool[lo + rng.uniform_index(layer_begin - lo)];
        g.add_edge(src, v, random_delay(spec.dim, rng));
      }
      pool.push_back(v);
    }
  }

  for (size_t j = 0; j < spec.num_outputs; ++j) {
    const timing::VertexId v =
        g.add_vertex("out" + std::to_string(j), /*is_input=*/false,
                     /*is_output=*/true);
    const size_t fanin = 1 + rng.uniform_index(spec.max_fanin);
    for (size_t f = 0; f < fanin; ++f) {
      const timing::VertexId src = pool[rng.uniform_index(pool.size())];
      g.add_edge(src, v, random_delay(spec.dim, rng));
    }
    // Occasionally let an output drive a later output, so the backward
    // sweeps see seeded vertices with live fanout.
    if (rng.uniform() < 0.25) pool.push_back(v);
  }
  return g;
}

}  // namespace hssta::testing
