// Unit tests for hssta/linalg: matrix ops, Jacobi eigendecomposition,
// Cholesky, PCA. Includes randomized property sweeps (seeded).

#include <gtest/gtest.h>

#include <cmath>

#include "hssta/linalg/cholesky.hpp"
#include "hssta/linalg/eigen.hpp"
#include "hssta/linalg/matrix.hpp"
#include "hssta/linalg/pca.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/util/error.hpp"

namespace hssta::linalg {
namespace {

using stats::Rng;

Matrix random_spd(size_t n, Rng& rng) {
  // B * B^T + n * I is symmetric positive definite.
  Matrix b(n, n);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < n; ++c) b(r, c) = rng.normal();
  Matrix s = b * b.transposed();
  for (size_t i = 0; i < n; ++i) s(i, i) += static_cast<double>(n);
  return s;
}

TEST(Matrix, BasicOpsAndIdentity) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix i = Matrix::identity(2);
  Matrix prod = a * i;
  EXPECT_EQ(prod.max_abs_diff(a), 0.0);
  Matrix t = a.transposed();
  EXPECT_EQ(t(0, 1), 3);
  EXPECT_EQ(t(1, 0), 2);
}

TEST(Matrix, ProductMatchesHandComputation) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix b{{7, 8}, {9, 10}, {11, 12}};
  Matrix c = a * b;
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(Matrix, MatVecAndTransposedTimes) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  std::vector<double> v{1, 1, 1};
  auto av = a * v;
  ASSERT_EQ(av.size(), 2u);
  EXPECT_DOUBLE_EQ(av[0], 6);
  EXPECT_DOUBLE_EQ(av[1], 15);
  std::vector<double> w{1, -1};
  auto atw = a.transposed_times(w);
  ASSERT_EQ(atw.size(), 3u);
  EXPECT_DOUBLE_EQ(atw[0], -3);
  EXPECT_DOUBLE_EQ(atw[1], -3);
  EXPECT_DOUBLE_EQ(atw[2], -3);
}

TEST(Matrix, GatherRows) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  std::vector<size_t> idx{2, 0};
  Matrix g = a.gather_rows(idx);
  EXPECT_DOUBLE_EQ(g(0, 0), 5);
  EXPECT_DOUBLE_EQ(g(1, 1), 2);
  std::vector<size_t> bad{7};
  EXPECT_THROW((void)a.gather_rows(bad), Error);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW((void)(a * b), Error);
  EXPECT_THROW((void)a.distance(Matrix(3, 2)), Error);
}

TEST(Eigen, DiagonalMatrix) {
  Matrix d{{3, 0}, {0, 1}};
  auto e = eigen_symmetric(d);
  ASSERT_EQ(e.values.size(), 2u);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a{{2, 1}, {1, 2}};
  auto e = eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), std::sqrt(0.5), 1e-9);
  EXPECT_NEAR(std::abs(e.vectors(1, 0)), std::sqrt(0.5), 1e-9);
}

TEST(Eigen, RejectsAsymmetric) {
  Matrix a{{1, 2}, {0, 1}};
  EXPECT_THROW((void)eigen_symmetric(a), Error);
}

class EigenPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EigenPropertyTest, ReconstructsAndIsOrthogonal) {
  const size_t n = GetParam();
  Rng rng(1234 + n);
  Matrix a = random_spd(n, rng);
  auto e = eigen_symmetric(a);

  // Reconstruction: V diag(l) V^T == A.
  Matrix vd(n, n);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < n; ++c) vd(r, c) = e.vectors(r, c) * e.values[c];
  Matrix rec = vd * e.vectors.transposed();
  EXPECT_LT(rec.max_abs_diff(a), 1e-8 * static_cast<double>(n));

  // Orthogonality: V^T V == I.
  Matrix vtv = e.vectors.transposed() * e.vectors;
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(n)), 1e-10);

  // SPD input: all eigenvalues positive, descending.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GT(e.values[i], 0.0);
    if (i > 0) {
      EXPECT_GE(e.values[i - 1], e.values[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

class CholeskyPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CholeskyPropertyTest, FactorReconstructs) {
  const size_t n = GetParam();
  Rng rng(99 + n);
  Matrix c = random_spd(n, rng);
  Matrix l = cholesky(c);
  Matrix rec = l * l.transposed();
  EXPECT_LT(rec.max_abs_diff(c), 1e-9 * static_cast<double>(n));
  // L is lower triangular.
  for (size_t r = 0; r < n; ++r)
    for (size_t col = r + 1; col < n; ++col) EXPECT_EQ(l(r, col), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyPropertyTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

TEST(Cholesky, RepairsTinyIndefiniteness) {
  // A rank-deficient PSD matrix: ones everywhere. Plain Cholesky hits a zero
  // pivot; the jitter path must recover it.
  Matrix c{{1, 1}, {1, 1}};
  Matrix l = cholesky(c);
  Matrix rec = l * l.transposed();
  EXPECT_LT(rec.max_abs_diff(c), 1e-5);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix c{{1, 2}, {2, 1}};  // eigenvalues 3 and -1
  EXPECT_THROW((void)cholesky(c), Error);
}

class PcaPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PcaPropertyTest, LoadingsReconstructCovarianceAndWhiteningInverts) {
  const size_t n = GetParam();
  Rng rng(4321 + n);
  Matrix c = random_spd(n, rng);
  PcaResult p = pca(c);
  EXPECT_EQ(p.retained, n);  // SPD: nothing dropped
  EXPECT_LT(p.reconstructed_covariance().max_abs_diff(c),
            1e-8 * static_cast<double>(n));

  // whitening * loadings == I_k.
  Matrix wl = p.whitening * p.loadings;
  EXPECT_LT(wl.max_abs_diff(Matrix::identity(p.retained)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PcaPropertyTest,
                         ::testing::Values(1, 2, 3, 6, 12, 24, 48));

TEST(Pca, TruncationKeepsDominantVariance) {
  // Covariance with eigenvalues ~ {100, 1, 0.01...}: 95% retention keeps 1.
  Matrix c{{100, 0, 0}, {0, 1, 0}, {0, 0, 0.01}};
  PcaOptions opts;
  opts.min_explained = 0.95;
  PcaResult p = pca(c, opts);
  EXPECT_EQ(p.retained, 1u);
  EXPECT_GT(p.explained, 0.95);
}

TEST(Pca, ClipsTinyNegativeEigenvalues) {
  // Rank-1 PSD matrix perturbed to be slightly indefinite.
  Matrix c{{1.0, 1.0}, {1.0, 1.0 - 1e-9}};
  PcaResult p = pca(c);
  EXPECT_LE(p.retained, 1u);
  for (double l : p.eigenvalues) EXPECT_GE(l, 0.0);
}

TEST(Pca, RejectsBadlyIndefinite) {
  Matrix c{{1, 2}, {2, 1}};
  EXPECT_THROW((void)pca(c), Error);
}

}  // namespace
}  // namespace hssta::linalg
