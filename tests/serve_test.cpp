// End-to-end tests for the serve layer: wire-protocol parsing
// (serve::protocol), the request engine (sessions, batching, admission
// control, eviction, graceful shutdown) and the Unix-domain-socket
// transport + client. The load-bearing assertions are bit-identity ones:
// every served delay must equal — as a double, bit for bit, through the
// %.17g JSON round trip — the number a one-shot flow::Design analysis of
// the same (changed) design produces, at any client count.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hssta/exec/queue.hpp"
#include "hssta/flow/chain.hpp"
#include "hssta/flow/design.hpp"
#include "hssta/serve/client.hpp"
#include "hssta/serve/engine.hpp"
#include "hssta/serve/protocol.hpp"
#include "hssta/serve/socket.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/json.hpp"
#include "hssta/util/version.hpp"

namespace hssta {
namespace {

namespace fs = std::filesystem;
using util::JsonReader;
using util::JsonValue;

// --- protocol parsing -------------------------------------------------------

TEST(ServeProtocol, ParsesEveryVerbAndChangeKind) {
  const serve::Request load = serve::parse_request(
      R"({"verb":"load_design","id":7,"name":"d","files":["a.bench","b.hstm"]})");
  EXPECT_EQ(load.verb, serve::Verb::kLoadDesign);
  ASSERT_TRUE(load.id.has_value());
  EXPECT_EQ(*load.id, 7u);
  EXPECT_EQ(load.name, "d");
  ASSERT_EQ(load.files.size(), 2u);
  EXPECT_EQ(load.files[1], "b.hstm");

  const serve::Request open =
      serve::parse_request(R"({"verb":"open_session","design":"d"})");
  EXPECT_EQ(open.verb, serve::Verb::kOpenSession);
  EXPECT_EQ(open.design, "d");
  EXPECT_FALSE(open.id.has_value());

  const serve::Request eco = serve::parse_request(
      R"({"verb":"eco","session":3,"changes":[)"
      R"({"op":"swap","inst":0,"file":"v.hstm"},)"
      R"({"op":"move","inst":1,"x":2.5,"y":-1.0},)"
      R"({"op":"rewire","conn":2,"from_inst":0,"from_port":1,)"
      R"("to_inst":1,"to_port":0},)"
      R"({"op":"sigma","param":1,"scale":1.25}]})");
  EXPECT_EQ(eco.verb, serve::Verb::kEco);
  EXPECT_EQ(eco.session, 3u);
  ASSERT_EQ(eco.changes.size(), 4u);
  EXPECT_EQ(eco.changes[0].op, serve::ChangeSpec::Op::kSwap);
  EXPECT_EQ(eco.changes[0].file, "v.hstm");
  EXPECT_EQ(eco.changes[1].op, serve::ChangeSpec::Op::kMove);
  EXPECT_EQ(eco.changes[1].x, 2.5);
  EXPECT_EQ(eco.changes[1].y, -1.0);
  EXPECT_EQ(eco.changes[2].op, serve::ChangeSpec::Op::kRewire);
  EXPECT_EQ(eco.changes[2].from.instance, 0u);
  EXPECT_EQ(eco.changes[2].to.port, 0u);
  EXPECT_EQ(eco.changes[3].op, serve::ChangeSpec::Op::kSigma);
  EXPECT_EQ(eco.changes[3].scale, 1.25);

  const serve::Request sweep = serve::parse_request(
      R"({"verb":"sweep","session":1,"scenarios":[)"
      R"({"label":"a","changes":[{"op":"sigma","param":0,"scale":2}]},)"
      R"({"changes":[{"op":"move","inst":0,"x":1,"y":0}]}]})");
  EXPECT_EQ(sweep.verb, serve::Verb::kSweep);
  ASSERT_EQ(sweep.scenarios.size(), 2u);
  EXPECT_EQ(sweep.scenarios[0].label, "a");
  EXPECT_EQ(sweep.scenarios[1].label, "s1");  // default label = index

  EXPECT_EQ(serve::parse_request(R"({"verb":"stats"})").verb,
            serve::Verb::kStats);
  EXPECT_EQ(serve::parse_request(R"({"verb":"shutdown"})").verb,
            serve::Verb::kShutdown);
  EXPECT_EQ(
      serve::parse_request(R"({"verb":"close_session","session":9})").session,
      9u);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  EXPECT_THROW(serve::parse_request("not json"), Error);
  EXPECT_THROW(serve::parse_request("[1,2]"), Error);
  EXPECT_THROW(serve::parse_request(R"({"verb":"warp"})"), Error);
  EXPECT_THROW(serve::parse_request(R"({"verb":"load_design","name":"d",)"
                                    R"("files":["one.bench"]})"),
               Error);  // < 2 files
  EXPECT_THROW(serve::parse_request(R"({"verb":"eco","session":1,)"
                                    R"("changes":[]})"),
               Error);  // empty change list
  EXPECT_THROW(serve::parse_request(R"({"verb":"eco","session":1,"changes":)"
                                    R"([{"op":"teleport","inst":0}]})"),
               Error);  // unknown op
  EXPECT_THROW(serve::parse_request(R"({"verb":"sweep","session":1,)"
                                    R"("scenarios":[]})"),
               Error);  // empty sweep
  EXPECT_THROW(serve::parse_request(R"({"verb":"analyze","session":-4})"),
               Error);  // negative id
}

TEST(ServeProtocol, ErrorResponseCarriesIdCodeAndMessage) {
  const std::string line =
      serve::error_response(uint64_t{12}, serve::kBackpressure, "full");
  const JsonValue doc = JsonReader::parse(line);
  EXPECT_EQ(doc.at("id").as_count("id"), 12u);
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("code").as_string(), "backpressure");
  EXPECT_EQ(doc.at("error").as_string(), "full");
}

// --- engine fixture ---------------------------------------------------------

constexpr const char* kModuleA =
    "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(y)\n"
    "g = NAND(a, b)\nx = AND(g, a)\ny = OR(g, b)\n";
// B and C keep kModuleA's footprint — same ports and the same gate-type
// multiset {NAND, AND, OR}, so the die (which follows summed cell widths)
// and hence the grid pitch match. Chained instances must share one pitch,
// and an ECO swap variant must be geometry-compatible with what it
// replaces; only the topology (and so the timing) differs.
constexpr const char* kModuleB =
    "INPUT(p)\nINPUT(q)\nOUTPUT(s)\nOUTPUT(t)\n"
    "h = NAND(q, p)\ns = OR(h, p)\nt = AND(h, q)\n";
constexpr const char* kModuleC =
    "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(y)\n"
    "g = OR(a, b)\nx = NAND(g, b)\ny = AND(g, a)\n";

/// Fresh module files per test; engines/designs load them by path exactly
/// like a daemon driven by a client would.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("hssta_serve_" + std::string(info->test_suite_name()) + "_" +
            info->name() + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    write(dir_ / "a.bench", kModuleA);
    write(dir_ / "b.bench", kModuleB);
    write(dir_ / "c.bench", kModuleC);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  static void write(const fs::path& p, const char* text) {
    std::ofstream(p) << text;
  }

  [[nodiscard]] std::string file(const char* name) const {
    return (dir_ / name).string();
  }

  [[nodiscard]] std::string load_line(const char* design = "d") const {
    return std::string(R"({"verb":"load_design","name":")") + design +
           R"(","files":[")" + file("a.bench") + R"(",")" + file("b.bench") +
           R"("]})";
  }

  /// Issue a request and parse the response, asserting ok.
  static JsonValue ok(serve::Engine& engine, const std::string& line) {
    const std::string response = engine.request(line);
    JsonValue doc = JsonReader::parse(response);
    EXPECT_TRUE(doc.at("ok").as_bool()) << response;
    return doc;
  }

  /// Issue a request expecting an error; returns the response document.
  static JsonValue fail(serve::Engine& engine, const std::string& line,
                        const char* code) {
    const std::string response = engine.request(line);
    JsonValue doc = JsonReader::parse(response);
    EXPECT_FALSE(doc.at("ok").as_bool()) << response;
    EXPECT_EQ(doc.at("code").as_string(), code) << response;
    return doc;
  }

  /// The one-shot truth: a from-scratch analysis of the (changed) chain,
  /// built by the same flow::build_chain_design code path the server uses.
  [[nodiscard]] timing::CanonicalForm reference_delay(
      const flow::ChainOverrides& overrides = {},
      const flow::Config& cfg = {}) const {
    const flow::Design d = flow::build_chain_design(
        "ref", {file("a.bench"), file("b.bench")}, cfg, overrides);
    return d.analyze().delay();
  }

  static void expect_delay_eq(const JsonValue& delay,
                              const timing::CanonicalForm& expected) {
    EXPECT_EQ(delay.at("mean").as_number(), expected.nominal());
    EXPECT_EQ(delay.at("sigma").as_number(), expected.sigma());
    EXPECT_EQ(delay.at("q99").as_number(), expected.quantile(0.99));
  }

  fs::path dir_;
};

// --- engine round trips -----------------------------------------------------

TEST_F(ServeTest, LoadOpenAnalyzeMatchesOneShotBitForBit) {
  serve::Engine engine;
  const JsonValue loaded = ok(engine, load_line());
  EXPECT_EQ(loaded.at("design").as_string(), "d");
  EXPECT_EQ(loaded.at("instances").as_count("instances"), 2u);

  const JsonValue opened =
      ok(engine, R"({"verb":"open_session","design":"d"})");
  const uint64_t sid = opened.at("session").as_count("session");
  EXPECT_EQ(sid, 1u);

  const JsonValue analyzed = ok(
      engine, R"({"verb":"analyze","session":)" + std::to_string(sid) + "}");
  const timing::CanonicalForm expected = reference_delay();
  expect_delay_eq(loaded.at("delay"), expected);
  expect_delay_eq(opened.at("delay"), expected);
  expect_delay_eq(analyzed.at("delay"), expected);
}

TEST_F(ServeTest, EcoSwapAnalyzeMatchesFromScratchChangedDesign) {
  serve::Engine engine;
  ok(engine, load_line());
  ok(engine, R"({"verb":"open_session","design":"d"})");
  ok(engine, R"({"verb":"eco","session":1,"changes":[)"
             R"({"op":"swap","inst":0,"file":")" +
                 file("c.bench") + R"("}]})");
  const JsonValue analyzed =
      ok(engine, R"({"verb":"analyze","session":1})");

  flow::ChainOverrides overrides;
  overrides.models[0] = flow::load_variant_model(file("c.bench"), {});
  expect_delay_eq(analyzed.at("delay"), reference_delay(overrides));
}

TEST_F(ServeTest, AnalyzeWithInlineSigmaChangeMatchesReference) {
  serve::Engine engine;
  ok(engine, load_line());
  ok(engine, R"({"verb":"open_session","design":"d"})");
  const JsonValue analyzed = ok(
      engine, R"({"verb":"analyze","session":1,"changes":[)"
              R"({"op":"sigma","param":0,"scale":1.5}]})");

  flow::Config cfg;
  flow::Design ref = flow::build_chain_design(
      "ref", {file("a.bench"), file("b.bench")}, cfg);
  incr::DesignState& st = ref.incremental();
  st.set_parameter_sigma(0, 1.5);
  expect_delay_eq(analyzed.at("delay"), st.analyze());
}

TEST_F(ServeTest, SweepReportsPerScenarioDelaysAndErrorProvenance) {
  serve::Engine engine;
  ok(engine, load_line());
  ok(engine, R"({"verb":"open_session","design":"d"})");
  const JsonValue swept = ok(
      engine,
      R"({"verb":"sweep","session":1,"scenarios":[)"
      R"({"label":"faster","changes":[{"op":"sigma","param":0,"scale":0.5}]},)"
      R"({"label":"broken","changes":[{"op":"rewire","conn":99,)"
      R"("from_inst":0,"from_port":0,"to_inst":1,"to_port":0}]},)"
      R"({"label":"slower","changes":[{"op":"sigma","param":0,"scale":2.0}]}]})");

  const std::vector<JsonValue>& scenarios = swept.at("scenarios").items();
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_TRUE(scenarios[0].at("ok").as_bool());
  EXPECT_TRUE(scenarios[2].at("ok").as_bool());

  // The failed scenario names its batch index and its change list — the
  // originating change, not just the exception text.
  const JsonValue& broken = scenarios[1];
  EXPECT_FALSE(broken.at("ok").as_bool());
  EXPECT_EQ(broken.at("label").as_string(), "broken");
  EXPECT_EQ(broken.at("index").as_count("index"), 1u);
  EXPECT_EQ(broken.at("changes").as_string(), "rewire c99 to u0.o0:u1.i0");
  EXPECT_FALSE(broken.at("error").as_string().empty());

  // Scenarios branch off the base — their delays match serial references.
  flow::Config cfg;
  flow::Design ref = flow::build_chain_design(
      "ref", {file("a.bench"), file("b.bench")}, cfg);
  incr::DesignState& st = ref.incremental();
  st.set_parameter_sigma(0, 0.5);
  expect_delay_eq(scenarios[0].at("delay"), st.analyze());
  st.set_parameter_sigma(0, 2.0);
  expect_delay_eq(scenarios[2].at("delay"), st.analyze());
}

TEST_F(ServeTest, StatsReportsVersionCountersAndKnobs) {
  serve::EngineOptions opts;
  opts.queue_capacity = 17;
  serve::Engine engine(opts);
  ok(engine, load_line());
  const JsonValue stats = ok(engine, R"({"verb":"stats","id":5})");
  EXPECT_EQ(stats.at("id").as_count("id"), 5u);
  EXPECT_EQ(stats.at("version").as_string(), kVersion);
  EXPECT_NE(stats.at("build").as_string().find(kVersion), std::string::npos);
  EXPECT_EQ(stats.at("designs").as_count("designs"), 1u);
  EXPECT_EQ(stats.at("sessions").as_count("sessions"), 0u);
  const JsonValue& counters = stats.at("counters");
  EXPECT_EQ(counters.at("requests").as_count("requests"), 2u);
  EXPECT_EQ(counters.at("responses_ok").as_count("ok"), 1u);  // load only
  const JsonValue& options = stats.at("options");
  EXPECT_EQ(options.at("queue_capacity").as_count("cap"), 17u);
}

// --- error paths ------------------------------------------------------------

TEST_F(ServeTest, RejectsGarbageUnknownDesignAndUnknownSession) {
  serve::Engine engine;
  fail(engine, "this is not json", serve::kBadRequest);
  fail(engine, R"({"verb":"warp"})", serve::kBadRequest);
  fail(engine, R"({"verb":"open_session","design":"ghost"})",
       serve::kUnknownDesign);
  fail(engine, R"({"verb":"analyze","session":42})", serve::kUnknownSession);
  ok(engine, load_line());
  fail(engine, load_line(), serve::kBadRequest);  // duplicate load
}

TEST_F(ServeTest, InvalidChangeLeavesSessionUsable) {
  serve::Engine engine;
  ok(engine, load_line());
  ok(engine, R"({"verb":"open_session","design":"d"})");
  // Missing variant file: resolved before anything applies.
  fail(engine,
       R"({"verb":"eco","session":1,"changes":[)"
       R"({"op":"swap","inst":0,"file":"/nonexistent/v.bench"}]})",
       serve::kInvalidChange);
  // Invalid rewire: recorded, then rejected by analyze() — which leaves
  // derived state untouched, so the session keeps working.
  fail(engine,
       R"({"verb":"analyze","session":1,"changes":[)"
       R"({"op":"rewire","conn":99,"from_inst":0,"from_port":0,)"
       R"("to_inst":1,"to_port":0}]})",
       serve::kInvalidChange);
  const JsonValue analyzed = ok(engine, R"({"verb":"analyze","session":1})");
  expect_delay_eq(analyzed.at("delay"), reference_delay());
}

TEST_F(ServeTest, DoubleCloseReportsClosedNotUnknown) {
  serve::Engine engine;
  ok(engine, load_line());
  ok(engine, R"({"verb":"open_session","design":"d"})");
  const JsonValue closed =
      ok(engine, R"({"verb":"close_session","session":1})");
  EXPECT_TRUE(closed.at("closed").as_bool());
  const JsonValue again =
      fail(engine, R"({"verb":"close_session","session":1})",
           serve::kUnknownSession);
  EXPECT_NE(again.at("error").as_string().find("closed"), std::string::npos);
  fail(engine, R"({"verb":"eco","session":1,"changes":[)"
               R"({"op":"sigma","param":0,"scale":1.1}]})",
       serve::kUnknownSession);
}

TEST_F(ServeTest, IdleSessionsAreEvictedAndNamedAsSuch) {
  serve::EngineOptions opts;
  opts.idle_timeout_seconds = 0.02;
  serve::Engine engine(opts);
  ok(engine, load_line());
  ok(engine, R"({"verb":"open_session","design":"d"})");
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // Any request triggers the between-batches eviction sweep first.
  const JsonValue doc = fail(
      engine, R"({"verb":"analyze","session":1})", serve::kUnknownSession);
  EXPECT_NE(doc.at("error").as_string().find("evicted"), std::string::npos);
  const JsonValue stats = ok(engine, R"({"verb":"stats"})");
  EXPECT_EQ(stats.at("counters").at("sessions_evicted").as_count("n"), 1u);
}

TEST_F(ServeTest, SessionLimitSaturates) {
  serve::EngineOptions opts;
  opts.max_sessions = 2;
  serve::Engine engine(opts);
  ok(engine, load_line());
  ok(engine, R"({"verb":"open_session","design":"d"})");
  ok(engine, R"({"verb":"open_session","design":"d"})");
  fail(engine, R"({"verb":"open_session","design":"d"})", serve::kSaturated);
  ok(engine, R"({"verb":"close_session","session":1})");
  ok(engine, R"({"verb":"open_session","design":"d"})");
}

// --- static checks ----------------------------------------------------------

TEST_F(ServeTest, CheckVerbReportsCleanForLoadedDesign) {
  serve::Engine engine;
  ok(engine, load_line());
  const JsonValue checked =
      ok(engine, R"({"verb":"check","design":"d","id":3})");
  EXPECT_EQ(checked.at("id").as_count("id"), 3u);
  EXPECT_EQ(checked.at("design").as_string(), "d");
  const JsonValue& report = checked.at("report");
  EXPECT_EQ(report.at("worst").as_string(), "clean");
  EXPECT_EQ(report.at("errors").as_count("errors"), 0u);
  EXPECT_TRUE(report.at("diagnostics").items().empty());
  EXPECT_EQ(report.at("instances").as_count("instances"), 2u);

  fail(engine, R"({"verb":"check","design":"ghost"})",
       serve::kUnknownDesign);
}

TEST_F(ServeTest, LoadDesignRejectsDesignsFailingStaticChecks) {
  // A sigma-scale vector of the wrong arity is an error-severity lint
  // (HSC044): load_design must refuse to warm the design and must return
  // the structured report, not a bare exception string.
  serve::EngineOptions opts;
  opts.config.hier.param_sigma_scale = {1.0, 2.0};
  serve::Engine engine(opts);
  const JsonValue doc = fail(engine, load_line(), serve::kCheckFailed);
  EXPECT_NE(doc.at("error").as_string().find("failed static checks"),
            std::string::npos);
  const JsonValue& report = doc.at("report");
  EXPECT_EQ(report.at("worst").as_string(), "error");
  const std::vector<JsonValue>& diags = report.at("diagnostics").items();
  ASSERT_FALSE(diags.empty());
  bool saw = false;
  for (const JsonValue& d : diags)
    if (d.at("id").as_string() == "HSC044") saw = true;
  EXPECT_TRUE(saw) << "expected an HSC044 diagnostic";
  // The rejected design must not be registered.
  fail(engine, R"({"verb":"open_session","design":"d"})",
       serve::kUnknownDesign);
}

// --- session persistence ----------------------------------------------------

TEST_F(ServeTest, SessionSurvivesRestart) {
  const std::string state = (dir_ / "session.hsds").string();

  // First daemon lifetime: open a session, record an eco but do NOT
  // analyze — the pending change must survive the save.
  {
    serve::Engine engine;
    ok(engine, load_line());
    ok(engine, R"({"verb":"open_session","design":"d"})");
    ok(engine, R"({"verb":"eco","session":1,"changes":[)"
               R"({"op":"swap","inst":0,"file":")" +
                   file("c.bench") + R"("}]})");
    const JsonValue saved =
        ok(engine, R"({"verb":"save_session","session":1,"file":")" + state +
                       R"("})");
    EXPECT_TRUE(saved.at("pending").as_bool());
  }  // engine destroyed: the "crash"

  // Second daemon lifetime: no designs loaded, only the state file.
  serve::Engine engine;
  const JsonValue restored =
      ok(engine, R"({"verb":"restore_session","file":")" + state + R"("})");
  const uint64_t sid = restored.at("session").as_count("session");
  EXPECT_EQ(restored.at("design").as_string(), "d");

  const JsonValue analyzed = ok(
      engine, R"({"verb":"analyze","session":)" + std::to_string(sid) + "}");
  flow::ChainOverrides overrides;
  overrides.models[0] = flow::load_variant_model(file("c.bench"), {});
  expect_delay_eq(analyzed.at("delay"), reference_delay(overrides));

  // The restored session keeps working: stack a second eco on top.
  const JsonValue again = ok(
      engine, R"({"verb":"analyze","session":)" + std::to_string(sid) +
                  R"(,"changes":[{"op":"sigma","param":0,"scale":1.5}]})");
  EXPECT_NE(again.at("delay").at("mean").as_number(),
            analyzed.at("delay").at("mean").as_number());
}

TEST_F(ServeTest, SaveAndRestoreSessionErrors) {
  serve::Engine engine;
  ok(engine, load_line());
  fail(engine, R"({"verb":"save_session","session":7,"file":"/tmp/x"})",
       serve::kUnknownSession);
  fail(engine,
       R"({"verb":"restore_session","file":")" + file("nope.hsds") + R"("})",
       serve::kBadRequest);
  // A netlist is not a design state: the strict parser must name the
  // format, not crash.
  const JsonValue err = fail(
      engine, R"({"verb":"restore_session","file":")" + file("a.bench") +
                  R"("})",
      serve::kBadRequest);
  EXPECT_FALSE(err.at("error").as_string().empty());
}

// --- concurrency ------------------------------------------------------------

TEST_F(ServeTest, ConcurrentRequestsOnOneSessionSerializeDeterministically) {
  serve::EngineOptions opts;
  opts.threads = 4;
  serve::Engine engine(opts);
  ok(engine, load_line());
  ok(engine, R"({"verb":"open_session","design":"d"})");

  // Serial references: set_parameter_sigma is absolute, so each analyze
  // response depends only on its own request's scale — any serialization
  // order must produce exactly these numbers.
  std::map<int, timing::CanonicalForm> expected;
  {
    flow::Config cfg;
    flow::Design ref = flow::build_chain_design(
        "ref", {file("a.bench"), file("b.bench")}, cfg);
    incr::DesignState& st = ref.incremental();
    for (int k = 0; k < 8; ++k) {
      st.set_parameter_sigma(0, 1.0 + 0.1 * k);
      expected.emplace(k, st.analyze());
    }
  }

  std::vector<std::thread> threads;
  std::vector<std::string> responses(8);
  for (int k = 0; k < 8; ++k)
    threads.emplace_back([&engine, &responses, k] {
      // %.17g, not to_string: the wire scale must round-trip to the exact
      // double the serial reference used.
      char scale[32];
      std::snprintf(scale, sizeof scale, "%.17g", 1.0 + 0.1 * k);
      responses[k] = engine.request(
          std::string(R"({"verb":"analyze","session":1,"changes":[)"
                      R"({"op":"sigma","param":0,"scale":)") +
          scale + "}]}");
    });
  for (std::thread& t : threads) t.join();

  for (int k = 0; k < 8; ++k) {
    const JsonValue doc = JsonReader::parse(responses[k]);
    ASSERT_TRUE(doc.at("ok").as_bool()) << responses[k];
    expect_delay_eq(doc.at("delay"), expected.at(k));
  }
}

TEST_F(ServeTest, BackpressureRejectsWhenQueueIsFull) {
  serve::EngineOptions opts;
  opts.queue_capacity = 1;
  opts.batch_max = 1;
  serve::Engine engine(opts);

  // Occupy the dispatcher with an expensive load (model extraction), then
  // flood: with capacity 1, most of the flood must bounce immediately.
  std::atomic<int> ok_count{0}, backpressure{0}, done{0};
  engine.submit(load_line(), [&](std::string response) {
    if (response.find("\"ok\":true") != std::string::npos) ++ok_count;
    ++done;
  });
  constexpr int kFlood = 50;
  for (int i = 0; i < kFlood; ++i)
    engine.submit(R"({"verb":"stats"})", [&](std::string response) {
      const JsonValue doc = JsonReader::parse(response);
      if (doc.at("ok").as_bool())
        ++ok_count;
      else if (doc.at("code").as_string() == "backpressure")
        ++backpressure;
      ++done;
    });
  while (done.load() < kFlood + 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  EXPECT_GE(ok_count.load(), 1);  // the load itself, plus accepted stats
  EXPECT_GT(backpressure.load(), 0);
  EXPECT_EQ(ok_count.load() + backpressure.load(), kFlood + 1);
}

TEST_F(ServeTest, ShutdownDrainsInFlightWorkThenRejects) {
  serve::Engine engine;
  ok(engine, load_line());
  ok(engine, R"({"verb":"open_session","design":"d"})");

  // Pipeline a sweep and the shutdown without waiting: both were accepted,
  // so both must be answered (the sweep completely) before the engine
  // reports stopped.
  std::atomic<bool> sweep_ok{false}, shutdown_ok{false};
  engine.submit(
      R"({"verb":"sweep","session":1,"scenarios":[)"
      R"({"changes":[{"op":"sigma","param":0,"scale":0.9}]},)"
      R"({"changes":[{"op":"sigma","param":0,"scale":1.1}]}]})",
      [&](std::string response) {
        const JsonValue doc = JsonReader::parse(response);
        sweep_ok = doc.at("ok").as_bool() &&
                   doc.at("scenarios").items().size() == 2;
      });
  engine.submit(R"({"verb":"shutdown"})", [&](std::string response) {
    shutdown_ok = JsonReader::parse(response).at("ok").as_bool();
  });
  engine.wait_until_stopped();
  EXPECT_TRUE(sweep_ok.load());
  EXPECT_TRUE(shutdown_ok.load());

  const std::string rejected = engine.request(R"({"verb":"stats"})");
  const JsonValue doc = JsonReader::parse(rejected);
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("code").as_string(), "shutting_down");
}

// --- socket transport -------------------------------------------------------

TEST_F(ServeTest, SocketEndToEndWithEightConcurrentClients) {
  serve::EngineOptions opts;
  opts.threads = 4;
  serve::Engine engine(opts);
  const std::string socket_path = (dir_ / "serve.sock").string();
  serve::SocketServer server(engine, socket_path);

  {
    serve::Client setup(socket_path);
    const JsonValue loaded = JsonReader::parse(setup.request(load_line()));
    ASSERT_TRUE(loaded.at("ok").as_bool());
  }

  // Per-scale serial references (see the serialization test above).
  std::map<int, timing::CanonicalForm> expected;
  {
    flow::Config cfg;
    flow::Design ref = flow::build_chain_design(
        "ref", {file("a.bench"), file("b.bench")}, cfg);
    incr::DesignState& st = ref.incremental();
    for (int k = 0; k < 8; ++k) {
      st.set_parameter_sigma(0, 1.0 + 0.05 * k);
      expected.emplace(k, st.analyze());
    }
  }

  // 8 clients, each with a private session, concurrently: every response
  // must be bit-identical to its one-shot reference.
  std::vector<std::thread> clients;
  std::vector<std::string> failures(8);
  for (int k = 0; k < 8; ++k)
    clients.emplace_back([&, k] {
      try {
        serve::Client client(socket_path);
        const JsonValue opened = JsonReader::parse(
            client.request(R"({"verb":"open_session","design":"d"})"));
        if (!opened.at("ok").as_bool()) {
          failures[k] = "open failed";
          return;
        }
        const uint64_t sid = opened.at("session").as_count("session");
        const std::string scale = std::to_string(1.0 + 0.05 * k);
        const JsonValue analyzed = JsonReader::parse(client.request(
            R"({"verb":"analyze","session":)" + std::to_string(sid) +
            R"(,"changes":[{"op":"sigma","param":0,"scale":)" + scale +
            "}]}"));
        if (!analyzed.at("ok").as_bool()) {
          failures[k] = "analyze failed";
          return;
        }
        const JsonValue& delay = analyzed.at("delay");
        if (delay.at("mean").as_number() != expected.at(k).nominal() ||
            delay.at("sigma").as_number() != expected.at(k).sigma())
          failures[k] = "delay mismatch vs one-shot reference";
        const JsonValue closed = JsonReader::parse(client.request(
            R"({"verb":"close_session","session":)" + std::to_string(sid) +
            "}"));
        if (!closed.at("ok").as_bool()) failures[k] = "close failed";
      } catch (const std::exception& e) {
        failures[k] = e.what();
      }
    });
  for (std::thread& t : clients) t.join();
  for (int k = 0; k < 8; ++k) EXPECT_EQ(failures[k], "") << "client " << k;

  serve::Client finisher(socket_path);
  const JsonValue stats =
      JsonReader::parse(finisher.request(R"({"verb":"stats"})"));
  EXPECT_EQ(stats.at("counters").at("sessions_opened").as_count("n"), 8u);
  EXPECT_EQ(stats.at("counters").at("sessions_closed").as_count("n"), 8u);
  const JsonValue bye =
      JsonReader::parse(finisher.request(R"({"verb":"shutdown"})"));
  EXPECT_TRUE(bye.at("ok").as_bool());
  engine.wait_until_stopped();
  server.stop();
  EXPECT_FALSE(fs::exists(socket_path));
}

TEST_F(ServeTest, SessionsSurviveClientDisconnects) {
  serve::Engine engine;
  const std::string socket_path = (dir_ / "serve.sock").string();
  serve::SocketServer server(engine, socket_path);

  uint64_t sid = 0;
  {
    serve::Client first(socket_path);
    ASSERT_TRUE(
        JsonReader::parse(first.request(load_line())).at("ok").as_bool());
    const JsonValue opened = JsonReader::parse(
        first.request(R"({"verb":"open_session","design":"d"})"));
    sid = opened.at("session").as_count("session");
  }  // disconnect

  serve::Client second(socket_path);
  const JsonValue analyzed = JsonReader::parse(second.request(
      R"({"verb":"analyze","session":)" + std::to_string(sid) + "}"));
  EXPECT_TRUE(analyzed.at("ok").as_bool());
  expect_delay_eq(analyzed.at("delay"), reference_delay());
  engine.request_stop();
  engine.wait_until_stopped();
  server.stop();
}

}  // namespace
}  // namespace hssta
