// Propagation-at-scale bench: wall time of the level-synchronous forward
// (arrivals) and backward (required-time) sweeps on (a) the synthetic
// c7552 module and (b) a generated stacked-DAG design large enough that
// per-level parallel chunks dominate scheduling overhead (default 500k
// gates; --gates scales it, --quick caps it for smoke runs).
//
// Every timed configuration is also a correctness gate, asserted in the
// bench itself before any number is written:
//  * the flat (FormBank) serial sweep must be BIT-identical to the legacy
//    per-vertex engine (timing::legacy_propagate_*), and
//  * every multi-thread level-parallel sweep must be BIT-identical to the
//    flat serial sweep.
// A mismatch prints the offending vertex and exits non-zero.
//
// The 4-thread speedup gate (--min-speedup, default 1.5; 0 disables) is
// only enforced when the host actually has >= 4 hardware threads — on
// smaller hosts the run still writes timings and identity-checks, and the
// JSON records host_cores so downstream consumers can tell the difference.
// Output: bench_out/BENCH_propagate.json.

#include <cstdio>
#include <fstream>
#include <thread>

#include "common.hpp"
#include "hssta/exec/executor.hpp"
#include "hssta/library/cell_library.hpp"
#include "hssta/netlist/generate.hpp"
#include "hssta/timing/builder.hpp"
#include "hssta/timing/propagate.hpp"
#include "hssta/util/timer.hpp"

namespace {

using namespace hssta;

bool forms_match(timing::ConstFormView a, timing::ConstFormView b) {
  return timing::form_equal(a, b);
}

/// Flat-vs-legacy identity gate.
bool check_vs_legacy(const timing::LegacyPropagation& ref,
                     const timing::PropagationResult& flat,
                     const char* what) {
  if (ref.valid != flat.valid || ref.time.size() != flat.time.rows()) {
    std::fprintf(stderr, "FAIL: %s: valid-set mismatch vs legacy\n", what);
    return false;
  }
  for (size_t v = 0; v < ref.time.size(); ++v) {
    if (ref.valid[v] && !forms_match(ref.time[v].view(), flat.time.row(v))) {
      std::fprintf(stderr, "FAIL: %s: vertex %zu differs from legacy\n",
                   what, v);
      return false;
    }
  }
  return true;
}

/// Serial-vs-parallel identity gate.
bool check_vs_serial(const timing::PropagationResult& ref,
                     const timing::PropagationResult& par, const char* what) {
  if (ref.valid != par.valid || ref.time.rows() != par.time.rows()) {
    std::fprintf(stderr, "FAIL: %s: valid-set mismatch vs serial\n", what);
    return false;
  }
  for (size_t v = 0; v < ref.time.rows(); ++v) {
    if (ref.valid[v] && !forms_match(ref.time.row(v), par.time.row(v))) {
      std::fprintf(stderr, "FAIL: %s: vertex %zu differs from serial\n",
                   what, v);
      return false;
    }
  }
  return true;
}

template <typename Fn>
double best_of(size_t reps, Fn&& fn) {
  double best = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    WallTimer timer;
    fn();
    const double t = timer.seconds();
    if (rep == 0 || t < best) best = t;
  }
  return best;
}

struct JsonWriter {
  std::ofstream os;
  bool first = true;
  explicit JsonWriter(const std::string& path) : os(path) { os << "[\n"; }
  void record(const std::string& fields) {
    os << (first ? "" : ",\n") << "  {" << fields << "}";
    first = false;
  }
  ~JsonWriter() { os << "\n]\n"; }
};

struct SweepFns {
  const char* name;
  void (*serial)(const timing::TimingGraph&, timing::PropagationResult&);
  void (*parallel)(const timing::TimingGraph&, timing::PropagationResult&,
                   exec::Executor&);
  timing::LegacyPropagation (*legacy)(const timing::TimingGraph&);
};

const SweepFns kSweeps[] = {
    {"propagate_arrivals",
     [](const timing::TimingGraph& g, timing::PropagationResult& r) {
       timing::propagate_arrivals_into(g, {}, r);
     },
     [](const timing::TimingGraph& g, timing::PropagationResult& r,
        exec::Executor& ex) {
       timing::propagate_arrivals_into(g, {}, r, ex,
                                       timing::LevelParallel::kOn);
     },
     [](const timing::TimingGraph& g) {
       return timing::legacy_propagate_arrivals(g);
     }},
    {"propagate_required",
     [](const timing::TimingGraph& g, timing::PropagationResult& r) {
       timing::propagate_required_into(g, {}, r);
     },
     [](const timing::TimingGraph& g, timing::PropagationResult& r,
        exec::Executor& ex) {
       timing::propagate_required_into(g, {}, r, ex,
                                       timing::LevelParallel::kOn);
     },
     [](const timing::TimingGraph& g) {
       return timing::legacy_propagate_required(g, {});
     }},
};

/// Runs both sweeps on one graph: legacy serial, flat serial, flat
/// parallel at 2/4/8 threads, with identity gates between each pair.
/// Returns the flat 4-thread speedup of the forward sweep (0 when the
/// identity gates failed; caller exits non-zero).
double bench_graph(JsonWriter& json, const std::string& section,
                   const timing::TimingGraph& g, size_t reps, bool& ok) {
  (void)g.levels();  // levelization is shared; measure sweeps only
  double fwd_speedup4 = 0.0;

  for (const SweepFns& sweep : kSweeps) {
    char buf[256];

    // Legacy per-vertex engine, serial (the pre-refactor baseline).
    timing::LegacyPropagation legacy;
    const double t_legacy =
        best_of(reps, [&] { legacy = sweep.legacy(g); });

    // Flat bank engine, serial.
    timing::PropagationResult serial;
    const double t_serial = best_of(reps, [&] { sweep.serial(g, serial); });
    ok = check_vs_legacy(legacy, serial, sweep.name) && ok;

    std::snprintf(buf, sizeof(buf),
                  "\"section\": \"%s\", \"op\": \"%s\", \"engine\": "
                  "\"legacy\", \"threads\": 1, \"seconds\": %g",
                  section.c_str(), sweep.name, t_legacy);
    json.record(buf);
    std::snprintf(buf, sizeof(buf),
                  "\"section\": \"%s\", \"op\": \"%s\", \"engine\": "
                  "\"flat\", \"threads\": 1, \"seconds\": %g, "
                  "\"speedup_vs_legacy\": %g",
                  section.c_str(), sweep.name, t_serial,
                  t_serial > 0.0 ? t_legacy / t_serial : 0.0);
    json.record(buf);

    for (const size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
      const auto ex = exec::make_executor(threads);
      timing::PropagationResult par;
      const double t_par =
          best_of(reps, [&] { sweep.parallel(g, par, *ex); });
      ok = check_vs_serial(serial, par, sweep.name) && ok;
      const double speedup = t_par > 0.0 ? t_serial / t_par : 0.0;
      if (threads == 4 && &sweep == &kSweeps[0]) fwd_speedup4 = speedup;
      std::snprintf(buf, sizeof(buf),
                    "\"section\": \"%s\", \"op\": \"%s\", \"engine\": "
                    "\"flat\", \"threads\": %zu, \"seconds\": %g, "
                    "\"speedup_vs_serial\": %g, \"bit_identical\": %s",
                    section.c_str(), sweep.name, threads, t_par, speedup,
                    ok ? "true" : "false");
      json.record(buf);
    }
  }
  return fwd_speedup4;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t gates = 500000;
  uint64_t dim = 6;
  uint64_t reps = 5;
  uint64_t seed = 2009;
  double min_speedup = 1.5;
  bool quick = false;
  util::ArgParser p("propagate_scale",
                    "level-sweep scaling bench with bit-identity gates");
  p.option("--gates", &gates, "N", "generated design size in gates");
  p.option("--dim", &dim, "D", "canonical dimension of generated delays");
  p.option("--reps", &reps, "N", "repetitions per timing (best-of)");
  p.option("--seed", &seed, "S", "generator seed");
  p.option("--min-speedup", &min_speedup, "X",
           "fail when 4-thread speedup on the generated design is below X "
           "(enforced only on hosts with >= 4 hardware threads; 0 disables)");
  p.flag("--quick", &quick, "cap the generated design for a fast smoke run");
  if (!p.parse(argc, argv)) return 0;
  if (quick) {
    gates = std::min<uint64_t>(gates, 50000);
    reps = std::min<uint64_t>(reps, 2);
  }

  const unsigned host_cores = std::thread::hardware_concurrency();
  bool ok = true;
  JsonWriter json(bench::out_path("BENCH_propagate.json"));

  // Section 1: the synthetic c7552 module (full physical pipeline).
  {
    const flow::Module module = bench::module_for_iscas("c7552");
    (void)bench_graph(json, "c7552", module.graph(), reps, ok);
  }

  // Section 2: generated stacked-DAG design at --gates scale, built via
  // the O(V+E) synthetic-delay path (no placement / PCA).
  double fwd_speedup4 = 0.0;
  {
    netlist::StackedDagSpec spec;
    spec.tile.num_inputs = 64;
    spec.tile.num_outputs = 64;
    spec.tile.num_gates = 4000;
    spec.tile.num_pins = 7200;
    spec.tile.depth = 25;
    spec.num_tiles =
        std::max<uint64_t>(1, gates / spec.tile.num_gates);
    spec.seed = seed;
    netlist::RandomDagStats stats;
    const netlist::Netlist nl = netlist::make_stacked_dag(
        spec, library::default_90nm(), &stats);
    const timing::BuiltGraph built =
        timing::synthetic_delay_graph(nl, dim, seed);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"meta\": \"generated\", \"gates\": %zu, \"pins\": %zu, "
                  "\"dim\": %llu, \"host_cores\": %u, \"quick\": %s",
                  stats.gates, stats.pins,
                  static_cast<unsigned long long>(dim), host_cores,
                  quick ? "true" : "false");
    json.record(buf);
    fwd_speedup4 = bench_graph(json, "generated", built.graph, reps, ok);
  }

  std::printf("propagate sweep JSON: %s\n",
              bench::out_path("BENCH_propagate.json").c_str());
  if (!ok) {
    std::fprintf(stderr, "FAIL: bit-identity gate violated\n");
    return 1;
  }
  if (min_speedup > 0.0 && host_cores >= 4) {
    std::printf("generated 4-thread forward speedup: %.2fx (gate: %.2fx)\n",
                fwd_speedup4, min_speedup);
    if (fwd_speedup4 < min_speedup) {
      std::fprintf(stderr,
                   "FAIL: 4-thread speedup %.2fx below gate %.2fx\n",
                   fwd_speedup4, min_speedup);
      return 1;
    }
  } else if (min_speedup > 0.0) {
    std::printf(
        "host has %u hardware threads; skipping the %.2fx speedup gate\n",
        host_cores, min_speedup);
  }
  return 0;
}
