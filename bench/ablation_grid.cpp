// Ablation: correlation-grid granularity (the paper follows Chang &
// Sapatnekar's "< 100 cells per grid" rule). Sweeps the cell bound and
// reports the coefficient dimension, full-circuit SSTA moments against a
// physical Monte Carlo reference drawn at matching granularity, and
// runtimes. Coarser grids are cheaper but smear local correlation;
// extremely fine grids add dimensions without accuracy gain.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "hssta/core/ssta.hpp"
#include "hssta/mc/flat_mc.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/util/csv.hpp"
#include "hssta/util/strings.hpp"
#include "hssta/util/table.hpp"
#include "hssta/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hssta;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  if (args.samples == 4000) args.samples = 2500;  // lighter default here

  std::printf(
      "Ablation: grid granularity (cells-per-grid bound) on c1908\n"
      "MC reference: %zu samples at each granularity\n\n",
      args.samples);

  Table t({"max cells/grid", "grids", "dim", "ssta mean", "mc mean",
           "ssta sigma", "mc sigma", "sigma err", "ssta(s)", "mc(s)"});
  CsvWriter csv(bench::out_path("ablation_grid.csv"));
  csv.write_row(std::vector<std::string>{"bound", "grids", "dim", "ssta_mean",
                                         "mc_mean", "ssta_sigma", "mc_sigma",
                                         "ssta_seconds", "mc_seconds"});

  for (size_t bound : {25, 50, 100, 200, 400, 1000}) {
    const flow::Module module = bench::module_for_iscas("c1908", bound);

    WallTimer ssta_timer;
    const core::SstaResult& ssta = module.ssta();
    const double t_ssta = ssta_timer.seconds();

    WallTimer mc_timer;
    stats::Rng rng(args.seed);
    const auto mc = module.flat_circuit().sample_delay(args.samples, rng);
    const double t_mc = mc_timer.seconds();

    const double serr =
        std::abs(ssta.delay.sigma() - mc.stddev()) / mc.stddev();
    t.add_row({std::to_string(bound),
               std::to_string(module.variation().partition.num_grids()),
               std::to_string(module.variation().space->dim()),
               fmt_double(ssta.delay.nominal(), 5), fmt_double(mc.mean(), 5),
               fmt_double(ssta.delay.sigma(), 4), fmt_double(mc.stddev(), 4),
               fmt_percent(serr, 1), fmt_double(t_ssta, 4),
               fmt_double(t_mc, 3)});
    csv.write_row(std::vector<double>{
        static_cast<double>(bound),
        static_cast<double>(module.variation().partition.num_grids()),
        static_cast<double>(module.variation().space->dim()),
        ssta.delay.nominal(), mc.mean(), ssta.delay.sigma(), mc.stddev(),
        t_ssta, t_mc});
  }
  t.print(std::cout);
  std::printf(
      "\nReading: each row samples its own granularity, so MC truth moves\n"
      "with the model; SSTA tracks it at every granularity. The paper's\n"
      "<100 bound balances dimension count against within-grid smearing.\n"
      "CSV: %s\n",
      bench::out_path("ablation_grid.csv").c_str());
  return 0;
}
