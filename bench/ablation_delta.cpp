// Ablation: the criticality threshold delta (the paper fixes 0.05 without
// a sweep). Sweeps delta on two medium circuits and reports model size,
// accuracy of the model's IO delay matrix against the *canonical* matrix
// of the original graph (isolating the pruning error from Monte Carlo
// noise), and connectivity repairs.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "hssta/core/io_delays.hpp"
#include "hssta/util/csv.hpp"
#include "hssta/util/strings.hpp"
#include "hssta/util/table.hpp"

namespace {

using namespace hssta;

struct Accuracy {
  double merr = 0.0;
  double verr = 0.0;
};

Accuracy canonical_error(const core::DelayMatrix& model,
                         const core::DelayMatrix& original) {
  Accuracy acc;
  for (size_t i = 0; i < original.num_inputs(); ++i)
    for (size_t j = 0; j < original.num_outputs(); ++j) {
      if (!original.is_valid(i, j) || !model.is_valid(i, j)) continue;
      const double m_ref = original.at(i, j).nominal();
      const double s_ref = original.at(i, j).sigma();
      if (m_ref < 1e-9) continue;
      acc.merr = std::max(
          acc.merr, std::abs(model.at(i, j).nominal() - m_ref) / m_ref);
      if (s_ref > 1e-9)
        acc.verr = std::max(
            acc.verr, std::abs(model.at(i, j).sigma() - s_ref) / s_ref);
    }
  return acc;
}

}  // namespace

int main(int, char**) {
  std::printf(
      "Ablation: criticality threshold delta vs model size and accuracy\n"
      "(errors against the canonical IO delays of the unreduced graph)\n\n");

  CsvWriter csv(bench::out_path("ablation_delta.csv"));
  csv.write_row(std::vector<std::string>{"circuit", "delta", "pe", "pv",
                                         "merr", "verr", "repaired",
                                         "seconds"});

  for (const char* circuit : {"c880", "c3540"}) {
    const flow::Module module = bench::module_for_iscas(circuit);
    const core::DelayMatrix original =
        core::all_pairs_io_delays(module.graph());

    Table t({"delta", "Em", "pe", "pv", "merr", "verr", "repaired", "T(s)"});
    for (double delta : {0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4}) {
      const model::Extraction& ex =
          module.extract_model(model::ExtractOptions{delta, true});
      const Accuracy acc = canonical_error(ex.model.io_delays(), original);
      t.add_row({fmt_double(delta, 3), std::to_string(ex.stats.model_edges),
                 fmt_percent(ex.stats.edge_ratio(), 1),
                 fmt_percent(ex.stats.vertex_ratio(), 1),
                 fmt_percent(acc.merr, 2), fmt_percent(acc.verr, 2),
                 std::to_string(ex.stats.pairs_repaired),
                 fmt_double(ex.stats.seconds, 3)});
      csv.write_row(std::vector<std::string>{
          circuit, fmt_double(delta, 3), fmt_double(ex.stats.edge_ratio(), 6),
          fmt_double(ex.stats.vertex_ratio(), 6), fmt_double(acc.merr, 6),
          fmt_double(acc.verr, 6), std::to_string(ex.stats.pairs_repaired),
          fmt_double(ex.stats.seconds, 6)});
    }
    std::printf("\n");
    t.print(std::cout, std::string("== ") + circuit + " ==");
  }
  std::printf(
      "\nReading: delta=0.05 (the paper's choice) sits at the knee — most of\n"
      "the compression with sub-percent error; large deltas trade accuracy\n"
      "and trigger connectivity repairs.\nCSV: %s\n",
      bench::out_path("ablation_delta.csv").c_str());
  return 0;
}
