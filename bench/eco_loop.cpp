// eco_loop — incremental vs full re-analysis for ECO module swaps.
//
// Builds an 8-instance star design of the synthetic ISCAS85 c1908 (7 leaf
// IPs feeding a combiner), then swaps each instance in turn for a
// geometry-identical variant (same footprint, delays scaled by 0.95 — the
// classic drop-in IP respin) and re-analyzes the design both ways:
//   * full:        a from-scratch stitch + propagate (grid, design PCA,
//                  every instance re-remapped) of the changed design;
//   * incremental: incr::DesignState::replace_module + analyze() — one
//                  instance restitched, only the downstream cone
//                  re-propagated, grid/PCA/other instances reused.
// Delays are asserted bit-identical; per-swap wall times land in
// bench_out/BENCH_incremental.json. The acceptance bar for this artifact
// is a >= 5x mean speedup for a 1-of-8 swap.

#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "common.hpp"
#include "hssta/incr/design_state.hpp"
#include "hssta/util/json.hpp"
#include "hssta/util/timer.hpp"

namespace {

using namespace hssta;

constexpr size_t kInstances = 8;

/// Geometry-identical drop-in variant: same ports/die/grids/boundary,
/// every edge delay scaled.
std::shared_ptr<const model::TimingModel> make_variant(
    const model::TimingModel& base, double factor) {
  timing::TimingGraph g = base.graph();
  for (timing::EdgeId e = 0; e < g.num_edge_slots(); ++e)
    if (g.edge_alive(e)) g.edge(e).delay.scale(factor);
  return std::make_shared<const model::TimingModel>(
      base.name() + "_v2", std::move(g), base.variation(), base.boundary());
}

/// The SoC-style star: instances 0..6 are leaf IPs whose outputs feed the
/// combiner instance 7 round-robin — the common flat-SoC shape where an
/// ECO on one IP touches that IP and the blocks it drives, not the whole
/// die. `variant_at` swaps one instance's model in (SIZE_MAX = none),
/// giving the from-scratch reference of the changed design.
flow::Design make_star(
    const flow::Module& m,
    const std::shared_ptr<const model::TimingModel>& variant,
    size_t variant_at) {
  flow::Design d("eco_star", m.config());
  const double w = m.model().die().width;
  const double h = m.model().die().height;
  for (size_t i = 0; i < kInstances; ++i) {
    const double x = static_cast<double>(i % 4) * w;
    const double y = static_cast<double>(i / 4) * h;
    if (i == variant_at)
      d.add_instance(variant, x, y);
    else
      d.add_instance(m, x, y);
  }
  const size_t sink = kInstances - 1;
  const size_t ni = d.num_inputs(sink);
  const size_t no = d.num_outputs(0);
  for (size_t k = 0; k < ni; ++k)
    d.connect(k % (kInstances - 1), k % no, sink, k);
  d.expose_unconnected_ports();
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv,
                                                       "eco_loop");
  const flow::Module m = bench::module_for_iscas("c1908", 100, args.delta);
  const std::shared_ptr<const model::TimingModel> variant =
      make_variant(m.model(), 0.95);

  std::printf("eco_loop: %zu x %s star (model %zu vertices, %zu edges)\n",
              kInstances, m.name().c_str(),
              m.model().graph().num_live_vertices(),
              m.model().graph().num_live_edges());

  // Base design + incremental engine (first build not measured).
  const flow::Design base = make_star(m, variant, SIZE_MAX);
  incr::DesignState& st = base.incremental();

  const int reps = args.quick ? 1 : 3;
  struct Row {
    size_t instance;
    double full_seconds;
    double incremental_seconds;
    uint64_t vertices_recomputed;
    uint64_t vertices_live;
    bool identical;
  };
  std::vector<Row> rows;

  for (size_t i = 0; i < kInstances; ++i) {
    // Full: from-scratch stitch + propagate of the changed design (model
    // extraction is shared and excluded on both sides; flow::Design caches
    // analyses, so each rep times a fresh handle). Best of `reps`.
    double full = 0.0;
    timing::CanonicalForm full_delay;
    for (int rep = 0; rep < reps; ++rep) {
      const flow::Design fresh = make_star(m, variant, i);
      const hier::HierResult& rr = fresh.analyze();
      const double t = rr.build_seconds + rr.analysis_seconds;
      full_delay = rr.delay();
      full = rep == 0 ? t : std::min(full, t);
    }

    // Incremental: swap + analyze, then revert (revert unmeasured).
    double incr_s = 0.0;
    timing::CanonicalForm incr_delay;
    Row row{};
    for (int rep = 0; rep < reps; ++rep) {
      st.replace_module(i, variant);
      incr_delay = st.analyze();
      const double t = st.stats().last_seconds;
      incr_s = rep == 0 ? t : std::min(incr_s, t);
      row.vertices_recomputed = st.stats().vertices_recomputed;
      row.vertices_live = st.stats().vertices_live;
      st.replace_module(i, m.model_ptr());
      (void)st.analyze();
    }

    row.instance = i;
    row.full_seconds = full;
    row.incremental_seconds = incr_s;
    row.identical = incr_delay == full_delay;
    rows.push_back(row);
    std::printf(
        "  swap u%zu: full %8.4f ms, incremental %8.4f ms (%5.1fx, %llu/%llu "
        "vertices)%s\n",
        i, 1e3 * full, 1e3 * incr_s, incr_s > 0 ? full / incr_s : 0.0,
        static_cast<unsigned long long>(row.vertices_recomputed),
        static_cast<unsigned long long>(row.vertices_live),
        row.identical ? "" : "  DELAY MISMATCH");
  }

  double mean_speedup = 0.0;
  bool all_identical = true;
  for (const Row& r : rows) {
    mean_speedup +=
        r.incremental_seconds > 0 ? r.full_seconds / r.incremental_seconds
                                  : 0.0;
    all_identical = all_identical && r.identical;
  }
  mean_speedup /= static_cast<double>(rows.size());
  std::printf("mean speedup %.1fx, results %s\n", mean_speedup,
              all_identical ? "bit-identical" : "MISMATCHED");

  std::ofstream os(bench::out_path("BENCH_incremental.json"));
  util::JsonWriter w(os);
  w.begin_object();
  w.key("bench").value("eco_loop");
  w.key("circuit").value(m.name());
  w.key("instances").value(kInstances);
  w.key("mean_speedup").value(mean_speedup);
  w.key("all_identical").value(all_identical);
  w.key("swaps").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.key("instance").value(r.instance);
    w.key("full_seconds").value(r.full_seconds);
    w.key("incremental_seconds").value(r.incremental_seconds);
    w.key("speedup").value(r.incremental_seconds > 0
                               ? r.full_seconds / r.incremental_seconds
                               : 0.0);
    w.key("vertices_recomputed").value(r.vertices_recomputed);
    w.key("vertices_live").value(r.vertices_live);
    w.key("identical").value(r.identical);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::printf("JSON: %s\n",
              bench::out_path("BENCH_incremental.json").c_str());
  return all_identical ? 0 : 1;
}
