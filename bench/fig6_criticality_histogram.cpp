// Reproduction of the paper's Fig. 6: the distribution of edge maximum
// criticalities (cm) in c7552. The published histogram is strongly bimodal
// — most edges sit near criticality 0 or 1 — which is exactly what makes
// threshold pruning effective.
//
// Flags: --delta X (reporting threshold, default 0.05).

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "hssta/core/criticality.hpp"
#include "hssta/stats/histogram.hpp"
#include "hssta/util/ascii_plot.hpp"
#include "hssta/util/csv.hpp"
#include "hssta/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hssta;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  std::printf("Fig. 6 reproduction: edge criticality histogram for c7552\n\n");
  const flow::Module module = bench::module_for_iscas("c7552");
  const timing::TimingGraph& g = module.graph();
  std::printf("circuit: %zu vertices, %zu edges, %zu inputs, %zu outputs\n",
              g.num_live_vertices(), g.num_live_edges(), g.inputs().size(),
              g.outputs().size());

  WallTimer timer;
  const core::CriticalityResult crit = core::compute_criticality(g);
  std::printf("criticality computation: %.2f s\n\n", timer.seconds());

  stats::Histogram hist(0.0, 1.0, 20);
  size_t below = 0, above = 0, total = 0;
  for (timing::EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    if (!g.edge_alive(e)) continue;
    const double c = crit.max_criticality[e];
    hist.add(c);
    ++total;
    if (c < args.delta) ++below;
    if (c > 1.0 - args.delta) ++above;
  }

  plot_histogram(std::cout, hist.edges(), hist.counts(), 60,
                 "Edge maximum criticality cm in c7552 (20 bins)");

  CsvWriter csv(bench::out_path("fig6_criticality_histogram.csv"));
  csv.write_row(std::vector<std::string>{"bin_lo", "bin_hi", "count"});
  const auto edges = hist.edges();
  for (size_t b = 0; b < hist.bins(); ++b)
    csv.write_row(std::vector<double>{edges[b], edges[b + 1],
                                      static_cast<double>(hist.count(b))});

  std::printf(
      "\nedges with cm < %.2f (prunable): %zu of %zu (%.1f%%)\n"
      "edges with cm > %.2f (firmly critical): %zu (%.1f%%)\n"
      "paper's observation: criticalities concentrate near 0 and 1, so a\n"
      "small delta removes most edges without hurting the delay matrix.\n"
      "CSV: %s\n",
      args.delta, below, total, 100.0 * below / total, 1.0 - args.delta,
      above, 100.0 * above / total,
      bench::out_path("fig6_criticality_histogram.csv").c_str());
  return 0;
}
