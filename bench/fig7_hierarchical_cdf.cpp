// Reproduction of the paper's Fig. 7: design-level delay CDF of the
// experimental hierarchical circuit — four c6288 multipliers placed in
// abutment in two columns, the outputs of the first column cross-connected
// to the inputs of the second column. Three curves:
//   * Monte Carlo simulation of the flattened original netlists (truth),
//   * the proposed method (timing models + independent-variable
//     replacement at design level),
//   * the baseline sharing only the global variation across modules.
// The paper's qualitative findings: the proposed curve lies on the MC
// curve; the global-only curve is visibly too steep (underestimated
// sigma); the analysis is ~3 orders of magnitude faster than MC.
//
// Flags: --samples N (default 4000; paper used 10000), --quick.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "hssta/hier/hier_ssta.hpp"
#include "hssta/mc/hier_mc.hpp"
#include "hssta/util/ascii_plot.hpp"
#include "hssta/util/csv.hpp"
#include "hssta/util/table.hpp"
#include "hssta/util/strings.hpp"
#include "hssta/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hssta;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  std::printf(
      "Fig. 7 reproduction: hierarchical SSTA of 4 x c6288 (16x16 array "
      "multipliers)\n\n");

  // Characterize the multiplier module once, at the requested delta.
  const flow::Module module = bench::module_for_iscas("c6288", 100,
                                                      args.delta);
  WallTimer extraction_timer;
  const model::Extraction& ex = module.extract_model();
  const double t_extract = extraction_timer.seconds();
  std::printf(
      "module model: %zu -> %zu edges (%.0f%%), %zu -> %zu vertices, "
      "extraction %.2f s\n",
      ex.stats.original_edges, ex.stats.model_edges,
      100.0 * ex.stats.edge_ratio(), ex.stats.original_vertices,
      ex.stats.model_vertices, t_extract);

  const flow::Design design = bench::make_fig7_design(module);

  // Ground truth: flat Monte Carlo of the four original netlists.
  WallTimer mc_timer;
  const stats::EmpiricalDistribution& mc =
      design.monte_carlo(flow::McOptions{args.samples, args.seed});
  const double t_mc = mc_timer.seconds();

  // Proposed: variable replacement at design level.
  const hier::HierResult& proposed = design.analyze();

  // Baseline: only global correlation between modules.
  hier::HierOptions global_opts;
  global_opts.mode = hier::CorrelationMode::kGlobalOnly;
  const hier::HierResult& global_only = design.analyze(global_opts);

  // Normalized-delay CDF curves like the paper's figure.
  const double lo = mc.quantile(0.0005);
  const double hi = mc.quantile(0.9995);
  auto normalize = [&](double d) { return (d - lo) / (hi - lo); };

  PlotSeries s_mc{"Monte Carlo simulation", {}, {}, '#'};
  PlotSeries s_prop{"proposed method", {}, {}, '*'};
  PlotSeries s_glob{"only correlation from global variation", {}, {}, 'o'};
  CsvWriter csv(bench::out_path("fig7_cdf.csv"));
  csv.write_row(std::vector<std::string>{"normalized_delay", "delay_ns",
                                         "cdf_mc", "cdf_proposed",
                                         "cdf_global_only"});
  const int kPoints = 61;
  for (int k = 0; k < kPoints; ++k) {
    const double d = lo + (hi - lo) * k / (kPoints - 1);
    const double x = normalize(d);
    s_mc.x.push_back(x);
    s_mc.y.push_back(mc.cdf(d));
    s_prop.x.push_back(x);
    s_prop.y.push_back(proposed.delay().cdf(d));
    s_glob.x.push_back(x);
    s_glob.y.push_back(global_only.delay().cdf(d));
    csv.write_row(std::vector<double>{x, d, mc.cdf(d),
                                      proposed.delay().cdf(d),
                                      global_only.delay().cdf(d)});
  }
  std::printf("\n");
  plot_xy(std::cout, {s_mc, s_prop, s_glob}, 72, 24,
          "Design delay CDF (x: normalized delay, y: probability)");

  const double ks_prop =
      mc.ks_distance([&](double x) { return proposed.delay().cdf(x); });
  const double ks_glob =
      mc.ks_distance([&](double x) { return global_only.delay().cdf(x); });

  Table t({"method", "mean(ns)", "sigma(ns)", "q99(ns)", "KS vs MC",
           "runtime(s)"});
  t.add_row({"Monte Carlo (flat, " + std::to_string(args.samples) + ")",
             fmt_double(mc.mean(), 5), fmt_double(mc.stddev(), 4),
             fmt_double(mc.quantile(0.99), 5), "-", fmt_double(t_mc, 3)});
  t.add_row({"proposed (replacement)",
             fmt_double(proposed.delay().nominal(), 5),
             fmt_double(proposed.delay().sigma(), 4),
             fmt_double(proposed.delay().quantile(0.99), 5),
             fmt_double(ks_prop, 3),
             fmt_double(proposed.build_seconds + proposed.analysis_seconds,
                        5)});
  t.add_row({"global correlation only",
             fmt_double(global_only.delay().nominal(), 5),
             fmt_double(global_only.delay().sigma(), 4),
             fmt_double(global_only.delay().quantile(0.99), 5),
             fmt_double(ks_glob, 3),
             fmt_double(global_only.build_seconds +
                            global_only.analysis_seconds, 5)});
  std::printf("\n");
  t.print(std::cout);

  // Shape-only agreement: align the analytic mean to the MC mean and
  // compare spreads. This separates the iterated-max mean bias (a known
  // property of canonical re-linearization on the multiplier's massive
  // path-tie structure, shared with the paper's method) from the
  // correlation modelling that Fig. 7 is actually about.
  auto shape_ks = [&](const timing::CanonicalForm& d) {
    const double shift = mc.mean() - d.nominal();
    return mc.ks_distance([&](double x) { return d.cdf(x - shift); });
  };
  std::printf(
      "\nmean-aligned (shape-only) KS vs MC: proposed %.3f, global-only "
      "%.3f\n",
      shape_ks(proposed.delay()), shape_ks(global_only.delay()));

  const double speedup =
      t_mc / (proposed.build_seconds + proposed.analysis_seconds);
  std::printf(
      "\nspeedup of the proposed analysis vs flat MC (%zu samples): %.0fx\n"
      "(the paper reports three orders of magnitude at 10000 samples)\n"
      "sigma ratio global-only/MC: %.2f (the correlation the baseline "
      "misses)\nCSV: %s\n",
      args.samples, speedup,
      global_only.delay().sigma() / mc.stddev(),
      bench::out_path("fig7_cdf.csv").c_str());
  return 0;
}
