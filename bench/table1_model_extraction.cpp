// Reproduction of the paper's Table I: statistical timing-model extraction
// on the ten ISCAS85 circuits. For every circuit the harness reports the
// original and model graph sizes (Eo, Vo, Em, Vm), the compression ratios
// (pe, pv), the worst relative error of the model's IO-delay means and
// standard deviations against a flat Monte Carlo reference of the original
// netlist (merr, verr), and the extraction wall time T.
//
// Flags: --samples N (MC reference samples, default 4000; paper used
// 10000), --delta X (criticality threshold, default 0.05), --quick.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "hssta/core/io_delays.hpp"
#include "hssta/mc/flat_mc.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/util/csv.hpp"
#include "hssta/util/strings.hpp"
#include "hssta/util/table.hpp"

namespace {

using namespace hssta;

struct PaperRow {
  const char* circuit;
  int eo, vo, em, vm;
  double pe, pv, merr, verr, t;
};

// The published Table I, for side-by-side comparison.
constexpr PaperRow kPaper[] = {
    {"c432", 336, 196, 45, 46, 0.13, 0.23, 0.0023, 0.0096, 0.05},
    {"c499", 408, 243, 176, 99, 0.43, 0.41, 0.0014, 0.0094, 0.14},
    {"c880", 729, 443, 249, 115, 0.34, 0.26, 0.0056, 0.0030, 0.21},
    {"c1355", 1064, 587, 143, 99, 0.13, 0.17, 0.0044, 0.0026, 0.37},
    {"c1908", 1498, 913, 264, 93, 0.18, 0.10, 0.0082, 0.0147, 0.36},
    {"c2670", 2076, 1426, 410, 335, 0.20, 0.23, 0.0026, 0.0128, 10.15},
    {"c3540", 2939, 1719, 440, 141, 0.15, 0.08, 0.0049, 0.0072, 0.93},
    {"c5315", 4386, 2485, 966, 424, 0.22, 0.17, 0.0072, 0.0147, 15.35},
    {"c6288", 4800, 2448, 429, 188, 0.09, 0.08, 0.0103, 0.0160, 2.08},
    {"c7552", 6144, 3719, 1073, 546, 0.17, 0.15, 0.0121, 0.0158, 21.94},
};

/// Worst relative IO mean/sigma error of the model against the MC reference.
struct Accuracy {
  double merr = 0.0;
  double verr = 0.0;
};

Accuracy compare(const core::DelayMatrix& model, const mc::IoStats& ref) {
  Accuracy acc;
  for (size_t i = 0; i < ref.num_inputs; ++i) {
    for (size_t j = 0; j < ref.num_outputs; ++j) {
      if (!ref.is_valid(i, j) || !model.is_valid(i, j)) continue;
      const double m_ref = ref.mean_at(i, j);
      const double s_ref = ref.sigma_at(i, j);
      if (m_ref < 1e-9) continue;
      acc.merr = std::max(
          acc.merr, std::abs(model.at(i, j).nominal() - m_ref) / m_ref);
      if (s_ref > 1e-9)
        acc.verr = std::max(
            acc.verr, std::abs(model.at(i, j).sigma() - s_ref) / s_ref);
    }
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  if (args.samples == 4000 && !args.quick) args.samples = 10000;  // paper scale
  std::printf(
      "Table I reproduction: gray-box statistical timing model extraction\n"
      "delta = %g, MC reference = %zu samples (paper: 10000), seed = %llu\n\n",
      args.delta, args.samples,
      static_cast<unsigned long long>(args.seed));

  Table ours({"Circuit", "Eo", "Vo", "Em", "Vm", "pe", "pv", "merr", "verr",
              "T(s)"});
  Table paper({"Circuit", "Eo", "Vo", "Em", "Vm", "pe", "pv", "merr", "verr",
               "T(s)"});
  CsvWriter csv(bench::out_path("table1.csv"));
  csv.write_row(std::vector<std::string>{"circuit", "Eo", "Vo", "Em", "Vm",
                                         "pe", "pv", "merr", "verr", "T"});

  double sum_pe = 0, sum_pv = 0, sum_merr = 0, sum_verr = 0;
  for (const PaperRow& row : kPaper) {
    const flow::Module module = bench::module_for_iscas(row.circuit);
    const model::Extraction& ex =
        module.extract_model(model::ExtractOptions{args.delta, true});

    stats::Rng rng(args.seed);
    const mc::IoStats ref =
        module.flat_circuit().sample_io_delays(args.samples, rng);
    const Accuracy acc = compare(ex.model.io_delays(), ref);

    const auto& st = ex.stats;
    ours.add_row({row.circuit, std::to_string(st.original_edges),
                  std::to_string(st.original_vertices),
                  std::to_string(st.model_edges),
                  std::to_string(st.model_vertices),
                  fmt_percent(st.edge_ratio(), 0),
                  fmt_percent(st.vertex_ratio(), 0),
                  fmt_percent(acc.merr, 2), fmt_percent(acc.verr, 2),
                  fmt_double(st.seconds, 3)});
    csv.write_row(std::vector<double>{
        static_cast<double>(st.original_edges),
        static_cast<double>(st.original_vertices),
        static_cast<double>(st.model_edges),
        static_cast<double>(st.model_vertices), st.edge_ratio(),
        st.vertex_ratio(), acc.merr, acc.verr, st.seconds});
    sum_pe += st.edge_ratio();
    sum_pv += st.vertex_ratio();
    sum_merr += acc.merr;
    sum_verr += acc.verr;

    paper.add_row({row.circuit, std::to_string(row.eo),
                   std::to_string(row.vo), std::to_string(row.em),
                   std::to_string(row.vm), fmt_percent(row.pe, 0),
                   fmt_percent(row.pv, 0), fmt_percent(row.merr, 2),
                   fmt_percent(row.verr, 2), fmt_double(row.t, 3)});
    std::printf("done: %-6s Em/Eo=%5.1f%%  merr=%.2f%%  verr=%.2f%%\n",
                row.circuit, 100.0 * st.edge_ratio(), 100.0 * acc.merr,
                100.0 * acc.verr);
  }
  const double n = static_cast<double>(std::size(kPaper));
  ours.add_row({"average", "", "", "", "", fmt_percent(sum_pe / n, 0),
                fmt_percent(sum_pv / n, 0), fmt_percent(sum_merr / n, 2),
                fmt_percent(sum_verr / n, 2), ""});
  paper.add_row({"average", "", "", "", "", "20%", "19%", "0.59%", "1.06%",
                 ""});

  std::printf("\n");
  ours.print(std::cout, "== Measured (this reproduction) ==");
  std::printf("\n");
  paper.print(std::cout, "== Published (Li et al., DATE'09, Table I) ==");
  std::printf(
      "\nNotes: circuits are synthetic ISCAS85 equivalents (see DESIGN.md);\n"
      "Eo/Vo match the published statistics by construction, compression\n"
      "and error columns are expected to match in magnitude, not digit-for-"
      "digit.\nCSV: %s\n",
      bench::out_path("table1.csv").c_str());
  return 0;
}
