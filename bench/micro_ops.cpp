// Micro-benchmarks (google-benchmark) for the primitive operations whose
// throughput bounds every analysis in the library: canonical sum and Clark
// max at several coefficient dimensions, full-graph propagation, the
// all-pairs criticality engine, PCA, and Monte Carlo sampling — plus the
// executor-based thread sweeps (1/2/4/8 threads) for the three hot paths
// the exec layer parallelizes and the level-synchronous single-sweep
// propagation. Run with
//   --benchmark_out=bench_out/BENCH_micro_ops.json --benchmark_out_format=json
// to land the speedup trajectory in a BENCH_*.json artifact. The per-sweep
// propagation timings (with their bit-identity gates) live in the
// standalone bench/propagate_scale.cpp harness, which owns
// bench_out/BENCH_propagate.json.

#include <benchmark/benchmark.h>

#include "common.hpp"
#include "hssta/core/criticality.hpp"
#include "hssta/core/io_delays.hpp"
#include "hssta/core/ssta.hpp"
#include "hssta/exec/executor.hpp"
#include "hssta/linalg/pca.hpp"
#include "hssta/mc/flat_mc.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/timing/propagate.hpp"
#include "hssta/timing/statops.hpp"
#include "hssta/variation/space.hpp"

namespace {

using namespace hssta;

timing::CanonicalForm random_form(size_t dim, stats::Rng& rng) {
  timing::CanonicalForm f(dim);
  f.set_nominal(rng.uniform(0.5, 2.0));
  for (size_t k = 0; k < dim; ++k) f.corr()[k] = 0.05 * rng.normal();
  f.set_random(rng.uniform(0.01, 0.1));
  return f;
}

void BM_CanonicalSum(benchmark::State& state) {
  stats::Rng rng(1);
  const size_t dim = static_cast<size_t>(state.range(0));
  timing::CanonicalForm a = random_form(dim, rng);
  const timing::CanonicalForm b = random_form(dim, rng);
  for (auto _ : state) {
    timing::CanonicalForm c = a;
    c += b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CanonicalSum)->Arg(16)->Arg(64)->Arg(256);

void BM_ClarkMax(benchmark::State& state) {
  stats::Rng rng(2);
  const size_t dim = static_cast<size_t>(state.range(0));
  const timing::CanonicalForm a = random_form(dim, rng);
  const timing::CanonicalForm b = random_form(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(timing::statistical_max(a, b));
  }
}
BENCHMARK(BM_ClarkMax)->Arg(16)->Arg(64)->Arg(256);

// The allocation-free kernels the sweeps actually run on: bank rows in,
// bank row out. The delta against BM_ClarkMax / BM_CanonicalSum is the
// per-op allocation cost the flat engine removed.
void BM_ClarkMaxInto(benchmark::State& state) {
  stats::Rng rng(2);
  const size_t dim = static_cast<size_t>(state.range(0));
  timing::FormBank bank;
  bank.reset(3, dim);
  bank.store(0, random_form(dim, rng));
  bank.store(1, random_form(dim, rng));
  for (auto _ : state) {
    timing::statistical_max_into(bank.row(2), bank.row(0), bank.row(1));
    benchmark::DoNotOptimize(bank.data());
  }
}
BENCHMARK(BM_ClarkMaxInto)->Arg(16)->Arg(64)->Arg(256);

void BM_AddInto(benchmark::State& state) {
  stats::Rng rng(1);
  const size_t dim = static_cast<size_t>(state.range(0));
  timing::FormBank bank;
  bank.reset(3, dim);
  bank.store(0, random_form(dim, rng));
  bank.store(1, random_form(dim, rng));
  for (auto _ : state) {
    timing::add_into(bank.row(2), bank.row(0), bank.row(1));
    benchmark::DoNotOptimize(bank.data());
  }
}
BENCHMARK(BM_AddInto)->Arg(16)->Arg(64)->Arg(256);

void BM_TightnessProbability(benchmark::State& state) {
  stats::Rng rng(3);
  const timing::CanonicalForm a = random_form(128, rng);
  const timing::CanonicalForm b = random_form(128, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(timing::tightness_probability(a, b));
  }
}
BENCHMARK(BM_TightnessProbability);

void BM_FullCircuitSsta(benchmark::State& state) {
  const flow::Module module = bench::module_for_iscas("c880");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_ssta(module.graph()));
  }
}
BENCHMARK(BM_FullCircuitSsta)->Unit(benchmark::kMillisecond);

void BM_AllPairsCriticality(benchmark::State& state) {
  const flow::Module module = bench::module_for_iscas("c432");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_criticality(module.graph()));
  }
}
BENCHMARK(BM_AllPairsCriticality)->Unit(benchmark::kMillisecond);

void BM_Pca(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const variation::GridPartition part(placement::Die{100, 100},
                                      n, n);
  const variation::SpatialCorrelationModel model(
      variation::SpatialCorrelationConfig{}, 0.42, 0.53);
  const linalg::Matrix corr = model.correlation_matrix(part.geometry());
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::pca(corr, {}, 1e-2));
  }
}
BENCHMARK(BM_Pca)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_FlatMcSample(benchmark::State& state) {
  const flow::Module module = bench::module_for_iscas("c880");
  const mc::FlatCircuit& fc = module.flat_circuit();
  stats::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fc.sample_delay(10, rng));
  }
}
BENCHMARK(BM_FlatMcSample)->Unit(benchmark::kMillisecond);

// --- executor thread sweeps (Arg = thread count) ---------------------------
// Wall-clock (UseRealTime) at 1/2/4/8 threads; the acceptance target is
// >= 2x for all_pairs_io_delays on a c7552-class module at 4 threads.

const flow::Module& c7552_module() {
  static const flow::Module m = bench::module_for_iscas("c7552");
  return m;
}

void BM_AllPairsIoDelaysThreads(benchmark::State& state) {
  const flow::Module& module = c7552_module();
  const auto ex = exec::make_executor(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::all_pairs_io_delays(module.graph(), *ex));
  }
}
BENCHMARK(BM_AllPairsIoDelaysThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_CriticalityThreads(benchmark::State& state) {
  const flow::Module module = bench::module_for_iscas("c1908");
  const auto ex = exec::make_executor(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_criticality(module.graph(), *ex));
  }
}
BENCHMARK(BM_CriticalityThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_FlatMcThreads(benchmark::State& state) {
  const flow::Module module = bench::module_for_iscas("c880");
  const mc::FlatCircuit& fc = module.flat_circuit();
  const auto ex = exec::make_executor(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fc.sample_delay(256, 7, *ex));
  }
}
BENCHMARK(BM_FlatMcThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- level-synchronous propagation (Arg = thread count) ---------------------
// One full-graph forward sweep on c7552, level-parallel: the single-sweep
// hot path that the per-input fan-out cannot speed up.

void BM_PropagateLevelThreads(benchmark::State& state) {
  const flow::Module& module = c7552_module();
  const auto ex = exec::make_executor(static_cast<size_t>(state.range(0)));
  timing::PropagationResult r;
  for (auto _ : state) {
    timing::propagate_arrivals_into(module.graph(), {}, r, *ex,
                                    timing::LevelParallel::kOn);
    benchmark::DoNotOptimize(r.time.data());
  }
}
BENCHMARK(BM_PropagateLevelThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
