// campaign_scale — scenario-campaign throughput vs worker count.
//
// Builds the eco_loop star (8 x synthetic ISCAS85 c1908: 7 leaf IPs
// feeding a combiner) from pre-extracted .hstm files, expands a
// sigma x swap campaign grid over it, and runs the identical campaign at
// 1/2/4/8 worker processes (1/2/4 with --quick), each into a fresh shard
// directory. Reported per width: wall seconds and scenarios/sec.
//
// Two more measurements ride along:
//   * resume overhead — the widest run is repeated split in half
//     (--limit half, then resume) and as a no-op resume over a full shard
//     directory, isolating the scan-and-skip cost from execution;
//   * the determinism gate — every width's merged campaign.json must be
//     byte-identical to the in-process serial reference (workers=0). Any
//     mismatch fails the bench (nonzero exit), same contract the tests
//     assert.
//
// Results land in bench_out/BENCH_campaign.json.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "hssta/campaign/campaign.hpp"
#include "hssta/model/timing_model.hpp"
#include "hssta/timing/graph.hpp"
#include "hssta/util/json.hpp"
#include "hssta/util/timer.hpp"

namespace {

using namespace hssta;
namespace fs = std::filesystem;

constexpr size_t kInstances = 8;

/// Geometry-identical drop-in variant (eco_loop's respin model): same
/// ports/die/grids/boundary, every edge delay scaled.
std::shared_ptr<const model::TimingModel> make_variant(
    const model::TimingModel& base, double factor, const std::string& name) {
  timing::TimingGraph g = base.graph();
  for (timing::EdgeId e = 0; e < g.num_edge_slots(); ++e)
    if (g.edge_alive(e)) g.edge(e).delay.scale(factor);
  return std::make_shared<const model::TimingModel>(
      name, std::move(g), base.variation(), base.boundary());
}

std::string run_and_merge(const std::string& spec,
                          const campaign::CampaignOptions& o) {
  (void)campaign::run_campaign(spec, o);
  return campaign::merge_campaign(spec, o);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args =
      bench::BenchArgs::parse(argc, argv, "campaign_scale");

  const fs::path dir =
      fs::temp_directory_path() /
      ("hssta_campaign_scale_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Pre-extract the module and two respin variants to .hstm files so the
  // campaign workers pay model *loading*, not re-extraction.
  const flow::Module m = bench::module_for_iscas("c1908", 100, args.delta);
  const std::string base_hstm = (dir / "c1908.hstm").string();
  m.extract_model().model.save_file(base_hstm);
  make_variant(m.model(), 0.95, "c1908_v95")->save_file((dir / "v95.hstm").string());
  make_variant(m.model(), 1.05, "c1908_v105")
      ->save_file((dir / "v105.hstm").string());

  // sigma x swap grid over the 8-instance star.
  const std::vector<double> scales =
      args.quick ? std::vector<double>{0.9, 1.0, 1.1, 1.2}
                 : std::vector<double>{0.85, 0.9, 0.95, 1.0, 1.05, 1.1, 1.15,
                                       1.2};
  {
    std::ostringstream os;
    util::JsonWriter w(os);
    w.begin_object();
    w.key("name").value("campaign_scale");
    w.key("base").begin_object();
    w.key("topology").value("star");
    w.key("files").begin_array();
    for (size_t i = 0; i < kInstances; ++i) w.value("c1908.hstm");
    w.end_array();
    w.end_object();
    w.key("axes").begin_array();
    w.begin_object();
    w.key("type").value("sigma");
    w.key("param").value(0);
    w.key("scales").begin_array();
    for (const double s : scales) w.value(s);
    w.end_array();
    w.end_object();
    w.begin_object();
    w.key("type").value("swap");
    w.key("inst").value(0);
    w.key("files").begin_array();
    w.value("c1908.hstm").value("v95.hstm").value("v105.hstm");
    w.end_array();
    w.end_object();
    w.end_array();
    w.end_object();
    std::ofstream(dir / "spec.json") << os.str() << "\n";
  }
  const std::string spec = (dir / "spec.json").string();
  const size_t total = scales.size() * 3;

  campaign::CampaignOptions base_opts;
  base_opts.worker_cmd = campaign::default_worker_cmd();
  if (!fs::exists(base_opts.worker_cmd)) {
    std::fprintf(stderr, "campaign_scale: hssta_cli not found (looked at %s)\n",
                 base_opts.worker_cmd.c_str());
    return 1;
  }

  std::printf("campaign_scale: %zu scenarios (%zu sigma x 3 swap) over "
              "%zu x c1908 star, worker %s\n",
              total, scales.size(), kInstances, base_opts.worker_cmd.c_str());

  // Serial in-process reference: the byte-identity anchor.
  campaign::CampaignOptions ref = base_opts;
  ref.out_dir = (dir / "ref").string();
  ref.workers = 0;
  WallTimer ref_timer;
  const std::string ref_json = run_and_merge(spec, ref);
  const double ref_seconds = ref_timer.seconds();
  std::printf("  workers 0 (in-process): %6.2f s  (%.2f scenarios/s)\n",
              ref_seconds, static_cast<double>(total) / ref_seconds);

  const std::vector<size_t> widths =
      args.quick ? std::vector<size_t>{1, 2, 4} : std::vector<size_t>{1, 2, 4, 8};
  struct Row {
    size_t workers;
    double seconds;
    bool identical;
  };
  std::vector<Row> rows;
  bool all_identical = true;
  for (const size_t wk : widths) {
    campaign::CampaignOptions o = base_opts;
    o.out_dir = (dir / ("w" + std::to_string(wk))).string();
    o.workers = wk;
    WallTimer t;
    const std::string json = run_and_merge(spec, o);
    const double seconds = t.seconds();
    const bool identical = json == ref_json;
    all_identical = all_identical && identical;
    rows.push_back({wk, seconds, identical});
    std::printf("  workers %zu: %6.2f s  (%.2f scenarios/s, %.2fx)%s\n", wk,
                seconds, static_cast<double>(total) / seconds,
                ref_seconds / seconds,
                identical ? "" : "  MERGED REPORT MISMATCH");
  }

  // Resume overhead, measured at the widest width: (a) a split run —
  // --limit half, then resume — vs the one-shot time; (b) a no-op resume
  // over the complete shard directory (pure scan-and-skip cost).
  const size_t wide = widths.back();
  campaign::CampaignOptions split = base_opts;
  split.out_dir = (dir / "split").string();
  split.workers = wide;
  split.limit = total / 2;
  WallTimer split_timer;
  (void)campaign::run_campaign(spec, split);
  split.limit = 0;
  const campaign::RunStats resumed = campaign::run_campaign(spec, split);
  const double split_seconds = split_timer.seconds();
  const std::string split_json = campaign::merge_campaign(spec, split);
  const bool split_identical = split_json == ref_json;
  all_identical = all_identical && split_identical;

  WallTimer noop_timer;
  const campaign::RunStats noop = campaign::run_campaign(spec, split);
  const double noop_seconds = noop_timer.seconds();

  const double oneshot = rows.back().seconds;
  std::printf("  resume: split run %6.2f s vs one-shot %6.2f s "
              "(overhead %+.2f s; %zu skipped on resume), no-op resume "
              "%6.3f s%s\n",
              split_seconds, oneshot, split_seconds - oneshot,
              resumed.skipped, noop_seconds,
              split_identical ? "" : "  MERGED REPORT MISMATCH");
  std::printf("determinism gate: %s\n",
              all_identical ? "all merged reports byte-identical"
                            : "MISMATCH — failing");

  std::ofstream os(bench::out_path("BENCH_campaign.json"));
  util::JsonWriter w(os);
  w.begin_object();
  w.key("bench").value("campaign_scale");
  w.key("circuit").value("c1908");
  w.key("instances").value(kInstances);
  w.key("scenarios").value(total);
  w.key("serial_seconds").value(ref_seconds);
  w.key("widths").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.key("workers").value(r.workers);
    w.key("seconds").value(r.seconds);
    w.key("scenarios_per_second").value(static_cast<double>(total) /
                                        r.seconds);
    w.key("speedup_vs_serial").value(ref_seconds / r.seconds);
    w.key("identical").value(r.identical);
    w.end_object();
  }
  w.end_array();
  w.key("resume").begin_object();
  w.key("split_seconds").value(split_seconds);
  w.key("oneshot_seconds").value(oneshot);
  w.key("noop_resume_seconds").value(noop_seconds);
  w.key("skipped_on_resume").value(resumed.skipped);
  w.key("noop_skipped").value(noop.skipped);
  w.key("identical").value(split_identical);
  w.end_object();
  w.key("all_identical").value(all_identical);
  w.end_object();
  os.flush();
  std::printf("JSON: %s\n", bench::out_path("BENCH_campaign.json").c_str());

  std::error_code ec;
  fs::remove_all(dir, ec);
  return all_identical ? 0 : 1;
}
