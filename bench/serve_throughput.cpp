// serve_throughput — request throughput and latency of the serve::Engine.
//
// Loads a two-module chain design into a warm engine, then drives it with
// N concurrent clients (N in {1, 2, 4, 8}); every client opens a private
// session and issues a fixed script of analyze-with-inline-sigma-change
// requests, each a synchronous round trip. Per-request latencies feed
// p50/p95; wall time over the whole fan-in gives requests/sec. The cold
// baseline is what each request would cost without the daemon: a fresh
// build_chain_design (module extraction + stitch) + analyze per query.
//
// Clients issue identical request scripts, so the delay at a given script
// position must be bit-identical across every client — the bench exits
// non-zero if the shared-state concurrency ever leaks between sessions.
// Results land in bench_out/BENCH_serve.json.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "hssta/flow/chain.hpp"
#include "hssta/serve/engine.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/json.hpp"
#include "hssta/util/timer.hpp"

namespace {

using namespace hssta;
namespace fs = std::filesystem;

/// A deterministic layered NAND fabric: `width` inputs, `layers` ranks of
/// `width` gates each (every gate reads two staggered signals from the
/// previous rank), `width` AND-combined outputs.
std::string layered_bench(size_t width, size_t layers, size_t stagger) {
  std::string s;
  auto wire = [&](size_t l, size_t k) {
    return "w" + std::to_string(l) + "_" + std::to_string(k);
  };
  for (size_t k = 0; k < width; ++k)
    s += "INPUT(" + wire(0, k) + ")\n";
  for (size_t k = 0; k < width; ++k)
    s += "OUTPUT(o" + std::to_string(k) + ")\n";
  for (size_t l = 1; l <= layers; ++l)
    for (size_t k = 0; k < width; ++k)
      s += wire(l, k) + " = NAND(" + wire(l - 1, k) + ", " +
           wire(l - 1, (k + stagger) % width) + ")\n";
  for (size_t k = 0; k < width; ++k)
    s += "o" + std::to_string(k) + " = AND(" + wire(layers, k) + ", " +
         wire(layers, (k + 1) % width) + ")\n";
  return s;
}

std::string write_bench(const fs::path& dir, const std::string& name,
                        size_t width, size_t layers, size_t stagger) {
  const fs::path p = dir / name;
  std::ofstream os(p);
  os << layered_bench(width, layers, stagger);
  return p.string();
}

double percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const size_t i = static_cast<size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(i, sorted_ms.size() - 1)];
}

/// The delay block of one analyze response, for cross-client bit-identity.
double response_mean(const std::string& response) {
  const util::JsonValue doc = util::JsonReader::parse(response);
  HSSTA_REQUIRE(doc.at("ok").as_bool(),
                "analyze failed under load: " + response);
  return doc.at("delay").at("mean").as_number();
}

struct ClientRun {
  std::vector<double> latencies_ms;
  std::vector<double> means;
};

struct Point {
  size_t clients;
  size_t requests;
  double seconds;
  double rps;
  double p50_ms;
  double p95_ms;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args =
      bench::BenchArgs::parse(argc, argv, "serve_throughput");

  const fs::path dir =
      fs::temp_directory_path() /
      ("hssta_serve_bench_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  // Same gate count for both stages (only the wiring stagger differs):
  // chained instances must share one grid pitch.
  const std::vector<std::string> files = {
      write_bench(dir, "a.bench", 8, 12, 3),
      write_bench(dir, "b.bench", 8, 12, 5),
  };

  flow::Config cfg;
  cfg.extract.criticality_threshold = args.delta;

  serve::EngineOptions opts;
  opts.queue_capacity = 4096;
  opts.config = cfg;
  serve::Engine engine(opts);

  // Warm the engine once: this is the shared state every client reuses.
  WallTimer load_timer;
  const std::string load = engine.request(
      "{\"verb\":\"load_design\",\"name\":\"bench\",\"files\":[\"" + files[0] +
      "\",\"" + files[1] + "\"]}");
  const double load_seconds = load_timer.seconds();
  HSSTA_REQUIRE(util::JsonReader::parse(load).at("ok").as_bool(),
                "load_design failed: " + load);

  // Cold baseline: the one-shot cost of the same analysis without a warm
  // engine — fresh extraction + stitch + propagate per query.
  const int cold_reps = args.quick ? 1 : 3;
  double cold_seconds = 0.0;
  for (int rep = 0; rep < cold_reps; ++rep) {
    WallTimer t;
    const flow::Design fresh = flow::build_chain_design("cold", files, cfg);
    (void)fresh.analyze();
    const double s = t.seconds();
    cold_seconds = rep == 0 ? s : std::min(cold_seconds, s);
  }

  const size_t per_client = args.quick ? 20 : 100;
  const std::vector<size_t> fanouts =
      args.quick ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 2, 4, 8};

  std::printf("serve_throughput: warm load %.3f s, cold one-shot %.3f s, "
              "%zu requests/client\n",
              load_seconds, cold_seconds, per_client);

  std::vector<Point> points;
  double warm_p50_ms = 0.0;
  bool identical = true;
  for (const size_t n : fanouts) {
    std::vector<ClientRun> runs(n);
    WallTimer wall;
    std::vector<std::thread> clients;
    for (size_t c = 0; c < n; ++c)
      clients.emplace_back([&, c] {
        ClientRun& run = runs[c];
        const std::string open = engine.request(
            "{\"verb\":\"open_session\",\"design\":\"bench\"}");
        const uint64_t session =
            util::JsonReader::parse(open).at("session").as_count("session");
        for (size_t r = 0; r < per_client; ++r) {
          // Same script for every client: the response at position r must
          // be bit-identical no matter how the engine interleaves them.
          const double scale = 1.0 + 0.01 * static_cast<double>(r % 16);
          char line[160];
          std::snprintf(line, sizeof line,
                        "{\"verb\":\"analyze\",\"session\":%llu,\"changes\":"
                        "[{\"op\":\"sigma\",\"param\":0,\"scale\":%.17g}]}",
                        static_cast<unsigned long long>(session), scale);
          WallTimer t;
          const std::string response = engine.request(line);
          run.latencies_ms.push_back(1e3 * t.seconds());
          run.means.push_back(response_mean(response));
        }
        (void)engine.request("{\"verb\":\"close_session\",\"session\":" +
                             std::to_string(session) + "}");
      });
    for (std::thread& t : clients) t.join();
    const double seconds = wall.seconds();

    for (size_t r = 0; r < per_client; ++r)
      for (size_t c = 1; c < n; ++c)
        identical = identical && runs[c].means[r] == runs[0].means[r];

    std::vector<double> all;
    for (const ClientRun& run : runs)
      all.insert(all.end(), run.latencies_ms.begin(), run.latencies_ms.end());
    std::sort(all.begin(), all.end());

    Point p;
    p.clients = n;
    p.requests = all.size();
    p.seconds = seconds;
    p.rps = seconds > 0 ? static_cast<double>(all.size()) / seconds : 0.0;
    p.p50_ms = percentile(all, 0.50);
    p.p95_ms = percentile(all, 0.95);
    points.push_back(p);
    if (n == 1) warm_p50_ms = p.p50_ms;
    std::printf("  %zu client%s: %6.0f req/s, p50 %7.3f ms, p95 %7.3f ms\n",
                n, n == 1 ? " " : "s", p.rps, p.p50_ms, p.p95_ms);
  }

  (void)engine.request("{\"verb\":\"shutdown\"}");
  engine.wait_until_stopped();
  fs::remove_all(dir);

  const double warm_vs_cold =
      warm_p50_ms > 0 ? cold_seconds / (1e-3 * warm_p50_ms) : 0.0;
  std::printf("warm p50 %.3f ms vs cold one-shot %.3f s (%.0fx), results %s\n",
              warm_p50_ms, cold_seconds, warm_vs_cold,
              identical ? "bit-identical across clients" : "MISMATCHED");

  std::ofstream os(bench::out_path("BENCH_serve.json"));
  util::JsonWriter w(os);
  w.begin_object();
  w.key("bench").value("serve_throughput");
  w.key("requests_per_client").value(per_client);
  w.key("load_seconds").value(load_seconds);
  w.key("cold_one_shot_seconds").value(cold_seconds);
  w.key("warm_p50_ms").value(warm_p50_ms);
  w.key("warm_vs_cold_speedup").value(warm_vs_cold);
  w.key("identical_across_clients").value(identical);
  w.key("fanout").begin_array();
  for (const Point& p : points) {
    w.begin_object();
    w.key("clients").value(p.clients);
    w.key("requests").value(p.requests);
    w.key("seconds").value(p.seconds);
    w.key("rps").value(p.rps);
    w.key("p50_ms").value(p.p50_ms);
    w.key("p95_ms").value(p.p95_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::printf("JSON: %s\n", bench::out_path("BENCH_serve.json").c_str());
  return identical ? 0 : 1;
}
