// Shared infrastructure for the bench harnesses, built on the flow::
// facade: module handles for the synthetic ISCAS85 suite, the paper's
// Fig. 7 design topology, ArgParser-based flag parsing and output-file
// handling.

#pragma once

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "hssta/flow/flow.hpp"
#include "hssta/util/argparse.hpp"

namespace hssta::bench {

/// A flow::Config with the bench-wide grid bound and extraction threshold
/// applied.
inline flow::Config bench_config(size_t max_cells_per_grid = 100,
                                 double delta = 0.05) {
  flow::Config cfg;
  cfg.max_cells_per_grid = max_cells_per_grid;
  cfg.extract.criticality_threshold = delta;
  return cfg;
}

/// Module handle for one synthetic ISCAS85 circuit. `delta` becomes the
/// module's configured extraction threshold, so everything derived from
/// the handle — including design-level analyses — uses the same model.
inline flow::Module module_for_iscas(const std::string& name,
                                     size_t max_cells_per_grid = 100,
                                     double delta = 0.05) {
  return flow::Module::from_iscas(name,
                                  bench_config(max_cells_per_grid, delta));
}

/// The paper's Fig. 7 experimental circuit: four instances of one module in
/// two columns, placed in abutment; the outputs of the first-column modules
/// are cross-connected to the inputs of the second-column modules. The
/// module's model is extracted on demand with the module's own configured
/// options (see module_for_iscas).
inline flow::Design make_fig7_design(const flow::Module& m) {
  const placement::Die mdie = m.model().die();

  flow::Design d("fig7", placement::Die{2 * mdie.width, 2 * mdie.height},
                 m.config());
  const size_t a = d.add_instance(m, 0, 0, "A");
  const size_t b = d.add_instance(m, 0, mdie.height, "B");
  const size_t c = d.add_instance(m, mdie.width, 0, "C");
  const size_t e = d.add_instance(m, mdie.width, mdie.height, "D");

  const size_t ni = d.num_inputs(a);
  const size_t no = d.num_outputs(a);
  const size_t half = ni / 2;
  for (size_t k = 0; k < ni; ++k) {
    // C consumes the low halves of A and B; D consumes the high halves, so
    // every first-column output drives exactly one second-column input.
    const size_t c_src = (k < half) ? a : b;
    const size_t c_port = (k < half) ? k : k - half;
    const size_t d_src = (k < half) ? b : a;
    const size_t d_port = (k < half) ? k + half : k;
    d.connect(c_src, c_port % no, c, k);
    d.connect(d_src, d_port % no, e, k);
  }
  for (size_t k = 0; k < ni; ++k) {
    d.primary_input("pa" + std::to_string(k), a, k);
    d.primary_input("pb" + std::to_string(k), b, k);
  }
  for (size_t k = 0; k < no; ++k) {
    d.primary_output("qc" + std::to_string(k), c, k);
    d.primary_output("qd" + std::to_string(k), e, k);
  }
  return d;
}

/// Bench-wide flags: --samples N, --quick, --delta X, --seed N.
struct BenchArgs {
  uint64_t samples = 4000;
  double delta = 0.05;
  uint64_t seed = 2009;
  bool quick = false;

  static BenchArgs parse(int argc, char** argv,
                         const std::string& program = "bench") {
    BenchArgs a;
    util::ArgParser p(program, "hssta bench harness");
    p.option("--samples", &a.samples, "N", "Monte Carlo sample count");
    p.option("--delta", &a.delta, "X", "extraction criticality threshold");
    p.option("--seed", &a.seed, "S", "Monte Carlo RNG seed");
    p.flag("--quick", &a.quick, "cap sample counts for a fast smoke run");
    if (!p.parse(argc, argv)) std::exit(0);
    if (a.quick) a.samples = std::min<uint64_t>(a.samples, 1500);
    return a;
  }
};

/// Output directory for CSV artifacts.
inline std::string out_path(const std::string& file) {
  const std::filesystem::path dir = "bench_out";
  std::filesystem::create_directories(dir);
  return (dir / file).string();
}

}  // namespace hssta::bench
