// Shared infrastructure for the bench harnesses: the module pipeline
// (synthesize -> place -> variation -> timing graph), the paper's Fig. 7
// design topology, simple flag parsing and output-file handling.

#pragma once

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "hssta/hier/design.hpp"
#include "hssta/library/cell_library.hpp"
#include "hssta/model/extract.hpp"
#include "hssta/netlist/iscas.hpp"
#include "hssta/placement/placement.hpp"
#include "hssta/timing/builder.hpp"
#include "hssta/variation/space.hpp"

namespace hssta::bench {

inline const library::CellLibrary& lib() {
  static const library::CellLibrary l = library::default_90nm();
  return l;
}

/// Everything one module needs through the analysis pipeline, with the
/// lifetimes tied together.
struct ModulePipeline {
  netlist::Netlist netlist;
  placement::Placement placement;
  variation::ModuleVariation variation;
  timing::BuiltGraph built;

  ModulePipeline(netlist::Netlist nl, size_t max_cells_per_grid)
      : netlist(std::move(nl)),
        placement(placement::place_rows(netlist)),
        variation(variation::make_module_variation(
            placement, netlist.num_gates(),
            variation::default_90nm_parameters(),
            variation::SpatialCorrelationConfig{}, max_cells_per_grid)),
        built(timing::build_timing_graph(netlist, placement, variation)) {}

  static std::unique_ptr<ModulePipeline> for_iscas(
      const std::string& name, size_t max_cells_per_grid = 100) {
    return std::make_unique<ModulePipeline>(
        netlist::make_iscas85(name, lib()), max_cells_per_grid);
  }

  [[nodiscard]] model::Extraction extract(double delta = 0.05) const {
    return model::extract_timing_model(built, variation, netlist.name(),
                                       model::compute_boundary(netlist),
                                       model::ExtractOptions{delta, true});
  }
};

/// The paper's Fig. 7 experimental circuit: four instances of one module in
/// two columns, placed in abutment; the outputs of the first-column modules
/// are cross-connected to the inputs of the second-column modules.
inline hier::HierDesign make_fig7_design(const ModulePipeline& m,
                                         const model::TimingModel& model) {
  using hier::PortRef;
  const placement::Die mdie = model.die();
  hier::HierDesign d("fig7", placement::Die{2 * mdie.width, 2 * mdie.height});
  const size_t a =
      d.add_instance({"A", &model, {0, 0}, &m.netlist, &m.placement});
  const size_t b = d.add_instance(
      {"B", &model, {0, mdie.height}, &m.netlist, &m.placement});
  const size_t c = d.add_instance(
      {"C", &model, {mdie.width, 0}, &m.netlist, &m.placement});
  const size_t e = d.add_instance(
      {"D", &model, {mdie.width, mdie.height}, &m.netlist, &m.placement});

  const size_t ni = model.graph().inputs().size();
  const size_t no = model.graph().outputs().size();
  const size_t half = ni / 2;
  for (size_t k = 0; k < ni; ++k) {
    // C consumes the low halves of A and B; D consumes the high halves, so
    // every first-column output drives exactly one second-column input.
    const size_t c_src = (k < half) ? a : b;
    const size_t c_port = (k < half) ? k : k - half;
    const size_t d_src = (k < half) ? b : a;
    const size_t d_port = (k < half) ? k + half : k;
    d.add_connection({PortRef{c_src, c_port % no}, PortRef{c, k}});
    d.add_connection({PortRef{d_src, d_port % no}, PortRef{e, k}});
  }
  for (size_t k = 0; k < ni; ++k) {
    d.add_primary_input({"pa" + std::to_string(k), {PortRef{a, k}}});
    d.add_primary_input({"pb" + std::to_string(k), {PortRef{b, k}}});
  }
  for (size_t k = 0; k < no; ++k) {
    d.add_primary_output({"qc" + std::to_string(k), PortRef{c, k}});
    d.add_primary_output({"qd" + std::to_string(k), PortRef{e, k}});
  }
  d.validate();
  return d;
}

/// Minimal flag parsing: --samples N, --quick, --delta X, --seed N.
struct BenchArgs {
  size_t samples = 4000;
  double delta = 0.05;
  uint64_t seed = 2009;
  bool quick = false;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto next = [&]() -> std::string {
        return (i + 1 < argc) ? argv[++i] : "";
      };
      if (flag == "--samples") a.samples = std::strtoull(next().c_str(),
                                                         nullptr, 10);
      else if (flag == "--delta") a.delta = std::strtod(next().c_str(),
                                                        nullptr);
      else if (flag == "--seed") a.seed = std::strtoull(next().c_str(),
                                                        nullptr, 10);
      else if (flag == "--quick") a.quick = true;
    }
    if (a.quick) a.samples = std::min<size_t>(a.samples, 1500);
    return a;
  }
};

/// Output directory for CSV artifacts.
inline std::string out_path(const std::string& file) {
  const std::filesystem::path dir = "bench_out";
  std::filesystem::create_directories(dir);
  return (dir / file).string();
}

}  // namespace hssta::bench
