// The paper's Section VI-B runtime claim: hierarchical analysis with
// pre-characterized models is ~three orders of magnitude faster than Monte
// Carlo simulation of the flattened netlist. This harness measures the
// Fig. 7 design's analysis time against flat MC across sample counts, then
// sweeps the executor thread count (1/2/4/8) over the three hot parallel
// paths — all-pairs IO delays, criticality, flat MC — and lands the
// speedup trajectory in bench_out/BENCH_threads.json. A final section
// measures the persistent model cache: one cold extraction (miss + store)
// against a warm re-run (hit) of the same module, verifying byte-identity,
// and lands the delta in bench_out/BENCH_cache.json.
//
// Flags: --samples N caps the largest MC run (default 10000).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>

#include "common.hpp"
#include "hssta/core/criticality.hpp"
#include "hssta/core/io_delays.hpp"
#include "hssta/exec/executor.hpp"
#include "hssta/hier/hier_ssta.hpp"
#include "hssta/mc/hier_mc.hpp"
#include "hssta/util/csv.hpp"
#include "hssta/util/strings.hpp"
#include "hssta/util/table.hpp"
#include "hssta/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hssta;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  if (args.samples == 4000) args.samples = 10000;  // paper-scale by default
  if (args.quick) args.samples = 1500;

  std::printf(
      "Speedup reproduction: hierarchical SSTA vs flat Monte Carlo on the\n"
      "Fig. 7 design (4 x c6288)\n\n");

  const flow::Module module = bench::module_for_iscas("c6288", 100,
                                                      args.delta);
  WallTimer extract_timer;
  (void)module.extract_model();
  const double t_extract = extract_timer.seconds();
  const flow::Design design = bench::make_fig7_design(module);

  // Design-level analysis (the recurring cost at design time; extraction is
  // a one-off characterization like the paper's library preparation).
  const hier::HierResult& hier = design.analyze();
  const double t_hier = hier.build_seconds + hier.analysis_seconds;

  // Flatten once, then time pure sampling per sample count.
  const mc::FlatCircuit& fc = design.flat_circuit();

  Table t({"method", "samples", "runtime(s)", "speedup of hier SSTA"});
  CsvWriter csv(bench::out_path("speedup_vs_mc.csv"));
  csv.write_row(std::vector<std::string>{"samples", "mc_seconds",
                                         "hier_seconds", "speedup"});
  t.add_row({"hierarchical SSTA (proposed)", "-", fmt_double(t_hier, 5),
             "1x"});
  for (size_t n : {size_t{100}, size_t{1000}, args.samples}) {
    stats::Rng rng(args.seed);
    WallTimer mc_timer;
    const auto mc = fc.sample_delay(n, rng);
    const double t_mc = mc_timer.seconds();
    char speed[32];
    std::snprintf(speed, sizeof(speed), "%.0fx", t_mc / t_hier);
    t.add_row({"flat Monte Carlo", std::to_string(n), fmt_double(t_mc, 3),
               speed});
    csv.write_row(std::vector<double>{static_cast<double>(n), t_mc, t_hier,
                                      t_mc / t_hier});
    if (n == args.samples)
      std::printf(
          "at %zu samples: MC %.2f s vs hier %.5f s -> %.0fx (paper claims "
          "~1000x)\n",
          n, t_mc, t_hier, t_mc / t_hier);
  }
  std::printf("one-off model extraction: %.2f s (amortized across designs)\n\n",
              t_extract);
  t.print(std::cout);
  std::printf("\nCSV: %s\n", bench::out_path("speedup_vs_mc.csv").c_str());

  // --- executor thread sweep ------------------------------------------------
  // Wall time of the three executor-parallel hot paths on the c6288 module
  // (IO delays / criticality) and the flattened Fig. 7 design (flat MC) at
  // 1/2/4/8 threads; speedups are relative to the 1-thread run of the same
  // op. Results are bit-identical across the sweep by construction.
  const size_t sweep_samples = args.quick ? 500 : 2000;
  std::printf("\nexecutor thread sweep (hardware threads: %zu)\n",
              exec::effective_threads(0));
  Table sweep({"op", "threads", "runtime(s)", "speedup vs 1 thread"});
  std::ofstream json(bench::out_path("BENCH_threads.json"));
  json << "[\n";
  bool first = true;
  struct Op {
    const char* name;
    const char* circuit;
    std::function<void(exec::Executor&)> run;
  };
  const Op ops[] = {
      {"all_pairs_io_delays", "c6288",
       [&](exec::Executor& ex) {
         (void)core::all_pairs_io_delays(module.graph(), ex);
       }},
      {"criticality", "c6288",
       [&](exec::Executor& ex) {
         (void)core::compute_criticality(module.graph(), ex);
       }},
      {"flat_mc", "fig7_4xc6288",
       [&](exec::Executor& ex) {
         (void)fc.sample_delay(sweep_samples, args.seed, ex);
       }},
  };
  // Best-of-N wall time per configuration (first rep also warms caches and
  // the pool), so the speedup ratios are not single-sample noise.
  const size_t reps = args.quick ? 2 : 3;
  for (const Op& op : ops) {
    double t1 = 0.0;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      const auto ex = exec::make_executor(threads);
      double seconds = 0.0;
      for (size_t rep = 0; rep < reps; ++rep) {
        WallTimer timer;
        op.run(*ex);
        const double t = timer.seconds();
        if (rep == 0 || t < seconds) seconds = t;
      }
      if (threads == 1) t1 = seconds;
      const double speedup = seconds > 0.0 ? t1 / seconds : 0.0;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
      sweep.add_row({op.name, std::to_string(threads),
                     fmt_double(seconds, 4), buf});
      json << (first ? "" : ",\n");
      first = false;
      json << "  {\"op\": \"" << op.name << "\", \"circuit\": \""
           << op.circuit << "\", \"threads\": " << threads
           << ", \"seconds\": " << seconds << ", \"speedup_vs_1\": "
           << speedup << "}";
    }
  }
  json << "\n]\n";
  sweep.print(std::cout);
  std::printf("\nJSON: %s\n", bench::out_path("BENCH_threads.json").c_str());

  // --- persistent model cache: cold vs warm ---------------------------------
  // One full extraction into an empty cache directory (miss + store) against
  // a warm re-run from a fresh Module handle over the same netlist and
  // configuration (hit — the whole placement/variation/criticality pipeline
  // is skipped). The hit must reproduce the cold model byte for byte.
  const std::string cache_dir = bench::out_path("model_cache");
  std::filesystem::remove_all(cache_dir);
  flow::Config ccfg = bench::bench_config(100, args.delta);
  ccfg.cache.dir = cache_dir;
  ccfg.cache.enabled = true;

  const auto model_bytes = [](const flow::Module& m) {
    std::ostringstream os;
    m.model().save(os);
    return os.str();
  };
  WallTimer cold_timer;
  const flow::Module cold = flow::Module::from_iscas("c6288", ccfg);
  const std::string cold_bytes = model_bytes(cold);
  const double t_cold = cold_timer.seconds();

  WallTimer warm_timer;
  const flow::Module warm = flow::Module::from_iscas("c6288", ccfg);
  const std::string warm_bytes = model_bytes(warm);
  const double t_warm = warm_timer.seconds();

  const cache::CacheStats cold_stats = cold.cache_stats();
  const cache::CacheStats warm_stats = warm.cache_stats();
  const bool identical = cold_bytes == warm_bytes;
  const double cache_speedup = t_warm > 0.0 ? t_cold / t_warm : 0.0;
  std::printf(
      "\nmodel cache (c6288, dir %s):\n"
      "  cold extraction %.3f s (%llu miss, %llu store) vs warm load %.3f s "
      "(%llu hit) -> %.0fx\n  warm model byte-identical: %s\n",
      cache_dir.c_str(), t_cold,
      static_cast<unsigned long long>(cold_stats.misses),
      static_cast<unsigned long long>(cold_stats.stores), t_warm,
      static_cast<unsigned long long>(warm_stats.hits), cache_speedup,
      identical ? "yes" : "NO — CACHE BROKEN");

  std::ofstream cache_json(bench::out_path("BENCH_cache.json"));
  cache_json << "{\n"
             << "  \"circuit\": \"c6288\",\n"
             << "  \"cold_seconds\": " << t_cold << ",\n"
             << "  \"warm_seconds\": " << t_warm << ",\n"
             << "  \"speedup\": " << cache_speedup << ",\n"
             << "  \"cold\": {\"hits\": " << cold_stats.hits
             << ", \"misses\": " << cold_stats.misses
             << ", \"stores\": " << cold_stats.stores << "},\n"
             << "  \"warm\": {\"hits\": " << warm_stats.hits
             << ", \"misses\": " << warm_stats.misses
             << ", \"stores\": " << warm_stats.stores << "},\n"
             << "  \"byte_identical\": " << (identical ? "true" : "false")
             << "\n}\n";
  std::printf("JSON: %s\n", bench::out_path("BENCH_cache.json").c_str());
  return identical ? 0 : 1;
}
