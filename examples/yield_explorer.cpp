// Designer flow: timing yield versus clock period, and the cost of
// corner-based sign-off. SSTA's delay distribution turns "does it meet
// timing?" into "what fraction of dies meets this period?" — the
// delay-yield information the paper's introduction motivates.

#include <cstdio>
#include <iostream>

#include "hssta/flow/flow.hpp"
#include "hssta/timing/sta.hpp"
#include "hssta/util/strings.hpp"
#include "hssta/util/table.hpp"

int main() {
  using namespace hssta;
  const flow::Module m = flow::Module::from_iscas("c1908");

  const timing::CanonicalForm& delay = m.delay();
  const double nominal = timing::corner_delay(m.graph(), 0.0);
  const double corner3 = timing::corner_delay(m.graph(), 3.0);

  std::printf("circuit %s: nominal STA %.4f ns, 3-sigma corner %.4f ns\n",
              m.name().c_str(), nominal, corner3);
  std::printf("SSTA: mean %.4f ns, sigma %.4f ns\n\n", delay.nominal(),
              delay.sigma());

  // Yield table across candidate clock periods.
  Table t({"period (ns)", "timing yield", "comment"});
  const double targets[] = {delay.quantile(0.05),
                            delay.nominal(),
                            delay.quantile(0.90),
                            delay.quantile(0.99),
                            delay.quantile(0.9999),
                            corner3};
  const char* comments[] = {"aggressive", "mean delay", "90% target",
                            "99% target", "high-yield target",
                            "3-sigma corner period"};
  for (size_t k = 0; k < std::size(targets); ++k)
    t.add_row({fmt_double(targets[k], 5),
               fmt_percent(m.ssta().timing_yield(targets[k]), 2),
               comments[k]});
  t.print(std::cout);

  // What corner sign-off costs: the frequency left on the table.
  const double p999 = delay.quantile(0.999);
  std::printf(
      "\nsigning off at the 3-sigma corner wastes %.1f%% frequency against\n"
      "a 99.9%%-yield statistical sign-off (%.4f ns vs %.4f ns): corners\n"
      "stack every edge at +3 sigma, ignoring path averaging and spatial\n"
      "correlation.\n",
      100.0 * (corner3 - p999) / p999, corner3, p999);

  // Statistical slack at the 99.9% period: the most critical pins.
  const core::SlackResult& slack = m.slack(p999);
  double worst = 1e300;
  timing::VertexId worst_v = timing::kNoVertex;
  for (timing::VertexId v = 0; v < m.graph().num_vertex_slots(); ++v) {
    if (!slack.valid[v]) continue;
    const double s = slack.slack[v].nominal();
    if (s < worst) {
      worst = s;
      worst_v = v;
    }
  }
  std::printf(
      "\nworst mean slack at that period: %.4f ns at pin '%s' "
      "(P{slack<0} = %.2f%%)\n",
      worst, m.graph().vertex(worst_v).name.c_str(),
      100.0 * slack.slack[worst_v].cdf(0.0));
  return 0;
}
