// Quickstart: statistical static timing analysis of one combinational
// module through the flow:: facade.
//
//   1. get a netlist (here: a generated 8-bit ripple adder) and wrap it in
//      a flow::Module — placement, variation model and timing graph are
//      built lazily behind the handle,
//   2. run block-based SSTA and query the delay distribution,
//   3. compare with corner STA and a Monte Carlo cross-check.
//
// Build: part of the default CMake build; run: ./examples/quickstart

#include <cstdio>

#include "hssta/flow/flow.hpp"
#include "hssta/netlist/generate.hpp"
#include "hssta/timing/sta.hpp"

int main() {
  using namespace hssta;

  // 1. Circuit: an 8-bit ripple-carry adder from the bundled generators,
  //    analyzed with the paper's 90nm setup (Leff/Tox/Vth with
  //    0.42/0.53/0.05 variance split, 0.92-neighbour correlation) — the
  //    default flow::Config. (Any netlist works — see
  //    flow::Module::from_bench_file for .bench input.)
  const flow::Module m = flow::Module::from_netlist(
      netlist::make_ripple_adder(8, *flow::default_library()));
  std::printf("circuit: %s — %zu gates, %zu nets, depth %zu\n",
              m.name().c_str(), m.netlist().num_gates(),
              m.netlist().num_nets(), m.netlist().depth());
  std::printf("die: %.1f x %.1f um, %zu correlation grids, %zu variables\n",
              m.placement().die.width, m.placement().die.height,
              m.variation().partition.num_grids(), m.variation().space->dim());

  // 2. Statistical STA: one call, cached behind the handle.
  const timing::CanonicalForm& delay = m.delay();
  std::printf("\nSSTA delay: mean %.4f ns, sigma %.4f ns (%.1f%%)\n",
              delay.nominal(), delay.sigma(),
              100.0 * delay.sigma() / delay.nominal());
  for (double q : {0.50, 0.90, 0.99, 0.9987})
    std::printf("  %.2f%% quantile: %.4f ns\n", 100.0 * q, delay.quantile(q));

  // 3a. Corner STA comparison: the classical 3-sigma corner ignores both
  //     path averaging and spatial correlation — quantify its pessimism.
  const double corner3 = timing::corner_delay(m.graph(), 3.0);
  std::printf("\ncorner STA (every edge at +3 sigma): %.4f ns\n", corner3);
  std::printf("pessimism vs SSTA 99.87%% quantile: +%.1f%%\n",
              100.0 * (corner3 / delay.quantile(0.9987) - 1.0));

  // 3b. Monte Carlo cross-check on the physical model.
  const stats::EmpiricalDistribution& mcd =
      m.monte_carlo(flow::McOptions{5000, 1});
  std::printf("\nMonte Carlo (5000 samples): mean %.4f ns, sigma %.4f ns\n",
              mcd.mean(), mcd.stddev());
  std::printf("SSTA vs MC: mean %+.2f%%, sigma %+.2f%%\n",
              100.0 * (delay.nominal() / mcd.mean() - 1.0),
              100.0 * (delay.sigma() / mcd.stddev() - 1.0));
  std::printf("\ntiming yield at the mean+2.5-sigma period: %.2f%%\n",
              100.0 * m.ssta().timing_yield(delay.quantile(0.9938)));
  return 0;
}
