// Quickstart: statistical static timing analysis of one combinational
// module in ~10 API calls.
//
//   1. get a netlist (here: a generated 8-bit ripple adder),
//   2. place it and build the variation model (grids, PCA),
//   3. build the canonical timing graph,
//   4. run block-based SSTA,
//   5. query the delay distribution and compare with corner STA and a
//      Monte Carlo cross-check.
//
// Build: part of the default CMake build; run: ./examples/quickstart

#include <cstdio>

#include "hssta/core/ssta.hpp"
#include "hssta/library/cell_library.hpp"
#include "hssta/mc/flat_mc.hpp"
#include "hssta/netlist/generate.hpp"
#include "hssta/placement/placement.hpp"
#include "hssta/timing/builder.hpp"
#include "hssta/timing/sta.hpp"
#include "hssta/variation/space.hpp"

int main() {
  using namespace hssta;

  // 1. Circuit: an 8-bit ripple-carry adder from the bundled generators.
  //    (Any netlist works — see netlist::read_bench_file for .bench input.)
  const library::CellLibrary lib = library::default_90nm();
  const netlist::Netlist nl = netlist::make_ripple_adder(8, lib);
  std::printf("circuit: %s — %zu gates, %zu nets, depth %zu\n",
              nl.name().c_str(), nl.num_gates(), nl.num_nets(), nl.depth());

  // 2. Placement and process variation: the paper's 90nm setup (Leff/Tox/
  //    Vth with 0.42/0.53/0.05 variance split, 0.92-neighbour correlation).
  const placement::Placement pl = placement::place_rows(nl);
  const variation::ModuleVariation mv = variation::make_module_variation(
      pl, nl.num_gates(), variation::default_90nm_parameters(),
      variation::SpatialCorrelationConfig{});
  std::printf("die: %.1f x %.1f um, %zu correlation grids, %zu variables\n",
              pl.die.width, pl.die.height, mv.partition.num_grids(),
              mv.space->dim());

  // 3. Canonical timing graph: one vertex per pin, one edge per timing arc.
  const timing::BuiltGraph built = timing::build_timing_graph(nl, pl, mv);

  // 4. Statistical STA.
  const core::SstaResult ssta = core::run_ssta(built.graph);
  const timing::CanonicalForm& delay = ssta.delay;
  std::printf("\nSSTA delay: mean %.4f ns, sigma %.4f ns (%.1f%%)\n",
              delay.nominal(), delay.sigma(),
              100.0 * delay.sigma() / delay.nominal());
  for (double q : {0.50, 0.90, 0.99, 0.9987})
    std::printf("  %.2f%% quantile: %.4f ns\n", 100.0 * q, delay.quantile(q));

  // 5a. Corner STA comparison: the classical 3-sigma corner ignores both
  //     path averaging and spatial correlation — quantify its pessimism.
  const double corner3 = timing::corner_delay(built.graph, 3.0);
  std::printf("\ncorner STA (every edge at +3 sigma): %.4f ns\n", corner3);
  std::printf("pessimism vs SSTA 99.87%% quantile: +%.1f%%\n",
              100.0 * (corner3 / delay.quantile(0.9987) - 1.0));

  // 5b. Monte Carlo cross-check on the physical model.
  const mc::FlatCircuit fc = mc::FlatCircuit::from_module(built, nl, mv);
  stats::Rng rng(1);
  const stats::EmpiricalDistribution mcd = fc.sample_delay(5000, rng);
  std::printf("\nMonte Carlo (5000 samples): mean %.4f ns, sigma %.4f ns\n",
              mcd.mean(), mcd.stddev());
  std::printf("SSTA vs MC: mean %+.2f%%, sigma %+.2f%%\n",
              100.0 * (delay.nominal() / mcd.mean() - 1.0),
              100.0 * (delay.sigma() / mcd.stddev() - 1.0));
  std::printf("\ntiming yield at the mean+2.5-sigma period: %.2f%%\n",
              100.0 * ssta.timing_yield(delay.quantile(0.9938)));
  return 0;
}
