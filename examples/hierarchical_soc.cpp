// SoC-integrator flow: design-level SSTA over pre-characterized IP models
// (paper Section V), written against the flow:: facade. Four instances of
// a datapath block are placed on the top die in two pipeline columns; the
// integrator never sees the netlists — only the extracted models — yet
// gets a design delay distribution that tracks flattened Monte Carlo,
// because the independent-variable replacement restores the spatial
// correlation between the abutted blocks.

#include <cstdio>
#include <iostream>

#include "hssta/flow/flow.hpp"
#include "hssta/util/ascii_plot.hpp"

int main() {
  using namespace hssta;

  // --- IP vendor side: characterize the block once. ----------------------
  netlist::RandomDagSpec spec;
  spec.name = "dsp_slice";
  spec.num_inputs = 16;
  spec.num_outputs = 16;
  spec.num_gates = 400;
  spec.num_pins = 720;
  spec.depth = 18;
  spec.seed = 5;
  const flow::Module dsp = flow::Module::from_random_dag(spec);
  const model::Extraction& ex = dsp.extract_model();
  std::printf("IP model '%s': %zu -> %zu timing arcs\n\n", dsp.name().c_str(),
              ex.stats.original_edges, ex.stats.model_edges);

  // --- Integrator side: place four instances, wire two pipeline stages. --
  const placement::Die mdie = dsp.model().die();
  flow::Design soc("soc");
  const size_t a = soc.add_instance(dsp, 0, 0, "dsp0");
  const size_t b = soc.add_instance(dsp, 0, mdie.height, "dsp1");
  const size_t c = soc.add_instance(dsp, mdie.width, 0, "dsp2");
  const size_t d = soc.add_instance(dsp, mdie.width, mdie.height, "dsp3");
  for (size_t k = 0; k < 16; ++k) {
    soc.connect(a, k, c, k);
    soc.connect(b, k, d, k);
    soc.primary_input("ia" + std::to_string(k), a, k);
    soc.primary_input("ib" + std::to_string(k), b, k);
    soc.primary_output("oc" + std::to_string(k), c, k);
    soc.primary_output("od" + std::to_string(k), d, k);
  }

  // Proposed analysis vs the correlation-blind baseline.
  const hier::HierResult& prop = soc.analyze();
  hier::HierOptions glob;
  glob.mode = hier::CorrelationMode::kGlobalOnly;
  const hier::HierResult& base = soc.analyze(glob);

  // Sign-off check: flattened Monte Carlo (possible here because the
  // instances came from flow::Modules that carry their netlists; a design
  // assembled from .hstm files would rely on the models alone).
  const stats::EmpiricalDistribution& mcd =
      soc.monte_carlo(flow::McOptions{5000, 123});

  std::printf("design delay:\n");
  std::printf("  flattened MC     : mean %.4f ns, sigma %.4f ns\n",
              mcd.mean(), mcd.stddev());
  std::printf("  proposed (models): mean %.4f ns, sigma %.4f ns  (%.4f s)\n",
              prop.delay().nominal(), prop.delay().sigma(),
              prop.build_seconds + prop.analysis_seconds);
  std::printf("  global-only      : mean %.4f ns, sigma %.4f ns\n\n",
              base.delay().nominal(), base.delay().sigma());

  // CDF plot.
  const double lo = mcd.quantile(0.001);
  const double hi = mcd.quantile(0.999);
  PlotSeries s_mc{"flattened MC", {}, {}, '#'};
  PlotSeries s_prop{"proposed", {}, {}, '*'};
  PlotSeries s_base{"global-only", {}, {}, 'o'};
  for (int k = 0; k <= 50; ++k) {
    const double x = lo + (hi - lo) * k / 50;
    s_mc.x.push_back(x);
    s_mc.y.push_back(mcd.cdf(x));
    s_prop.x.push_back(x);
    s_prop.y.push_back(prop.delay().cdf(x));
    s_base.x.push_back(x);
    s_base.y.push_back(base.delay().cdf(x));
  }
  plot_xy(std::cout, {s_mc, s_prop, s_base}, 70, 20,
          "design delay CDF (ns)");
  return 0;
}
