// SoC-integrator flow: design-level SSTA over pre-characterized IP models
// (paper Section V). Four instances of a datapath block are placed on the
// top die in two pipeline columns; the integrator never sees the netlists —
// only the .hstm-style models — yet gets a design delay distribution that
// tracks flattened Monte Carlo, because the independent-variable
// replacement restores the spatial correlation between the abutted blocks.

#include <cstdio>
#include <iostream>

#include "hssta/hier/hier_ssta.hpp"
#include "hssta/library/cell_library.hpp"
#include "hssta/mc/hier_mc.hpp"
#include "hssta/model/extract.hpp"
#include "hssta/netlist/generate.hpp"
#include "hssta/placement/placement.hpp"
#include "hssta/timing/builder.hpp"
#include "hssta/util/ascii_plot.hpp"
#include "hssta/variation/space.hpp"

int main() {
  using namespace hssta;
  const library::CellLibrary lib = library::default_90nm();

  // --- IP vendor side: characterize the block, ship the model. -----------
  netlist::RandomDagSpec spec;
  spec.name = "dsp_slice";
  spec.num_inputs = 16;
  spec.num_outputs = 16;
  spec.num_gates = 400;
  spec.num_pins = 720;
  spec.depth = 18;
  spec.seed = 5;
  const netlist::Netlist nl = netlist::make_random_dag(spec, lib);
  const placement::Placement pl = placement::place_rows(nl);
  const variation::ModuleVariation mv = variation::make_module_variation(
      pl, nl.num_gates(), variation::default_90nm_parameters(),
      variation::SpatialCorrelationConfig{});
  const timing::BuiltGraph built = timing::build_timing_graph(nl, pl, mv);
  const model::Extraction ex = model::extract_timing_model(
      built, mv, spec.name, model::compute_boundary(nl));
  std::printf("IP model '%s': %zu -> %zu timing arcs\n\n", spec.name.c_str(),
              ex.stats.original_edges, ex.stats.model_edges);

  // --- Integrator side: place four instances, wire two pipeline stages. --
  using hier::PortRef;
  const placement::Die mdie = ex.model.die();
  hier::HierDesign soc("soc",
                       placement::Die{2 * mdie.width, 2 * mdie.height});
  const size_t a = soc.add_instance({"dsp0", &ex.model, {0, 0}, &nl, &pl});
  const size_t b =
      soc.add_instance({"dsp1", &ex.model, {0, mdie.height}, &nl, &pl});
  const size_t c =
      soc.add_instance({"dsp2", &ex.model, {mdie.width, 0}, &nl, &pl});
  const size_t d = soc.add_instance(
      {"dsp3", &ex.model, {mdie.width, mdie.height}, &nl, &pl});
  for (size_t k = 0; k < 16; ++k) {
    soc.add_connection({PortRef{a, k}, PortRef{c, k}});
    soc.add_connection({PortRef{b, k}, PortRef{d, k}});
    soc.add_primary_input({"ia" + std::to_string(k), {PortRef{a, k}}});
    soc.add_primary_input({"ib" + std::to_string(k), {PortRef{b, k}}});
    soc.add_primary_output({"oc" + std::to_string(k), PortRef{c, k}});
    soc.add_primary_output({"od" + std::to_string(k), PortRef{d, k}});
  }

  // Proposed analysis vs the correlation-blind baseline.
  const hier::HierResult prop = hier::analyze_hierarchical(soc);
  hier::HierOptions glob;
  glob.mode = hier::CorrelationMode::kGlobalOnly;
  const hier::HierResult base = hier::analyze_hierarchical(soc, glob);

  // Sign-off check: flattened Monte Carlo (integrator-side only possible
  // here because the example owns the netlists; a real integrator relies on
  // the model).
  const auto mcd = mc::hier_flat_mc(soc, 5000, 123);

  std::printf("design delay:\n");
  std::printf("  flattened MC     : mean %.4f ns, sigma %.4f ns\n",
              mcd.mean(), mcd.stddev());
  std::printf("  proposed (models): mean %.4f ns, sigma %.4f ns  (%.4f s)\n",
              prop.delay().nominal(), prop.delay().sigma(),
              prop.build_seconds + prop.analysis_seconds);
  std::printf("  global-only      : mean %.4f ns, sigma %.4f ns\n\n",
              base.delay().nominal(), base.delay().sigma());

  // CDF plot.
  const double lo = mcd.quantile(0.001);
  const double hi = mcd.quantile(0.999);
  PlotSeries s_mc{"flattened MC", {}, {}, '#'};
  PlotSeries s_prop{"proposed", {}, {}, '*'};
  PlotSeries s_base{"global-only", {}, {}, 'o'};
  for (int k = 0; k <= 50; ++k) {
    const double x = lo + (hi - lo) * k / 50;
    s_mc.x.push_back(x);
    s_mc.y.push_back(mcd.cdf(x));
    s_prop.x.push_back(x);
    s_prop.y.push_back(prop.delay().cdf(x));
    s_base.x.push_back(x);
    s_base.y.push_back(base.delay().cdf(x));
  }
  plot_xy(std::cout, {s_mc, s_prop, s_base}, 70, 20,
          "design delay CDF (ns)");
  return 0;
}
