// IP-vendor flow: characterize a block once, ship a compact statistical
// timing model instead of the netlist (paper Sections III-IV).
//
// The example extracts the gray-box model of a c432-sized block through
// the flow:: facade, verifies that the model reproduces the block's
// input-output delays, writes the model to a .hstm file (the hand-off
// artifact) and reloads it bit-exactly.

#include <cstdio>

#include "hssta/core/io_delays.hpp"
#include "hssta/flow/flow.hpp"

int main() {
  using namespace hssta;

  // The block to protect: a c432-sized circuit (use
  // flow::Module::from_bench_file to load a real netlist instead).
  // The default flow::Config already uses the paper's threshold
  // delta = 0.05.
  const flow::Module m = flow::Module::from_iscas("c432");
  const model::Extraction& ex = m.extract_model();
  const model::ExtractionStats& st = ex.stats;
  std::printf(
      "extraction: %zu -> %zu edges (%.0f%%), %zu -> %zu vertices (%.0f%%)\n"
      "pruned %zu non-critical edges, %zu serial + %zu parallel merges, "
      "%.3f s\n\n",
      st.original_edges, st.model_edges, 100.0 * st.edge_ratio(),
      st.original_vertices, st.model_vertices, 100.0 * st.vertex_ratio(),
      st.edges_pruned, st.reduce.serial_merges, st.reduce.parallel_merges,
      st.seconds);

  // The model's contract: same IO delay matrix as the original block.
  const core::DelayMatrix original = core::all_pairs_io_delays(m.graph());
  const core::DelayMatrix modeled = ex.model.io_delays();
  double worst = 0.0;
  for (size_t i = 0; i < original.num_inputs(); ++i)
    for (size_t j = 0; j < original.num_outputs(); ++j) {
      if (!original.is_valid(i, j)) continue;
      const double ref = original.at(i, j).nominal();
      if (ref > 1e-9)
        worst = std::max(worst,
                         std::abs(modeled.at(i, j).nominal() - ref) / ref);
    }
  std::printf("worst IO mean-delay deviation vs original: %.2f%%\n",
              worst * 100);

  // A few sample entries of the shipped delay matrix.
  std::printf("\nmodel IO delays (first 3x3, mean / sigma in ns):\n");
  for (size_t i = 0; i < std::min<size_t>(3, modeled.num_inputs()); ++i) {
    for (size_t j = 0; j < std::min<size_t>(3, modeled.num_outputs()); ++j) {
      if (modeled.is_valid(i, j))
        std::printf("  [%zu,%zu] %.4f / %.4f", i, j,
                    modeled.at(i, j).nominal(), modeled.at(i, j).sigma());
      else
        std::printf("  [%zu,%zu]   --  ", i, j);
    }
    std::printf("\n");
  }

  // Hand-off: write and reload the .hstm artifact. A reloaded model drops
  // straight into flow::Design::add_instance_from_model_file.
  const std::string path = "c432.hstm";
  ex.model.save_file(path);
  const model::TimingModel loaded = model::TimingModel::load_file(path);
  const core::DelayMatrix reloaded = loaded.io_delays();
  double roundtrip = 0.0;
  for (size_t i = 0; i < modeled.num_inputs(); ++i)
    for (size_t j = 0; j < modeled.num_outputs(); ++j)
      if (modeled.is_valid(i, j))
        roundtrip = std::max(roundtrip,
                             std::abs(reloaded.at(i, j).nominal() -
                                      modeled.at(i, j).nominal()));
  std::printf(
      "\nmodel written to %s (%zu edges over %zu variables) and reloaded: "
      "%s\n",
      path.c_str(), loaded.graph().num_live_edges(), loaded.graph().dim(),
      roundtrip == 0.0 ? "bit-exact" : "MISMATCH");
  return 0;
}
