/// \file builder.hpp
/// Timing-graph construction from a placed netlist: one vertex per primary
/// input and per gate output, one edge per gate input pin with a canonical
/// delay assembled from the cell's nominal timing, its parameter
/// sensitivities and the variation space of the module's grid partition
/// (paper Sections II and VI).
///
/// Sequential netlists: every register output net becomes an extra source
/// vertex (after the primary inputs, in register order) and every net
/// captured by a register data pin is marked as a sink, so arrival
/// propagation launches from flops and observes at flops without any
/// special-casing downstream. Register data pins also charge
/// BuildOptions::register_pin_cap onto their net's load.

#pragma once

#include <vector>

#include "hssta/netlist/netlist.hpp"
#include "hssta/placement/placement.hpp"
#include "hssta/timing/graph.hpp"
#include "hssta/variation/space.hpp"

namespace hssta::timing {

struct BuildOptions {
  /// Capacitive load charged to nets that are primary outputs (output port
  /// plus downstream wire), fF.
  double output_port_cap = 3.0;
  /// Capacitive load charged per register data pin a net drives, fF.
  double register_pin_cap = 1.0;
};

/// Physical annotation of one timing edge, kept alongside the graph so the
/// Monte Carlo reference evaluates the *same* nominal delays and loads.
struct EdgeSite {
  netlist::GateId gate = netlist::kNoGate;
  uint32_t pin = 0;
  size_t grid = 0;      ///< correlation grid holding the gate
  double nominal = 0.0; ///< pin-to-output delay at nominal load, ns
  double load = 0.0;    ///< capacitive load, fF
};

/// A constructed timing graph plus its per-edge physical annotations
/// (indexed by EdgeId) and the IO vertex lists in netlist port order.
/// For sequential netlists the register launch/capture vertex lists are
/// filled in register order (empty for combinational netlists).
struct BuiltGraph {
  TimingGraph graph;
  std::vector<EdgeSite> sites;
  std::vector<VertexId> input_vertices;   ///< netlist PI order
  std::vector<VertexId> output_vertices;  ///< netlist PO order
  /// Register data_out vertices (launch points), netlist register order.
  std::vector<VertexId> register_launch_vertices;
  /// Register data_in vertices (capture points), netlist register order.
  std::vector<VertexId> register_capture_vertices;
};

/// Build the canonical timing graph of a placed module.
[[nodiscard]] BuiltGraph build_timing_graph(
    const netlist::Netlist& nl, const placement::Placement& pl,
    const variation::ModuleVariation& variation,
    const BuildOptions& opts = {});

/// Same topology mapping as build_timing_graph (one vertex per primary
/// input and per gate output, one edge per gate input pin) but with seeded
/// random canonical delays of dimension `dim` instead of placement- and
/// variation-derived ones: construction is O(V + E) with no placement, PCA
/// or extraction, so million-gate benchmark graphs build in seconds. The
/// returned sites vector is empty (there is no physical annotation).
[[nodiscard]] BuiltGraph synthetic_delay_graph(const netlist::Netlist& nl,
                                               size_t dim, uint64_t seed);

}  // namespace hssta::timing
