/// \file statops.hpp
/// Statistical maximum of canonical forms (paper Section II, eqs. 6-9),
/// following Visweswariah et al. (DAC'04) / Clark (1961):
///  * tightness probability TP = Prob{A >= B} = Phi((a0-b0)/theta),
///    theta^2 = Var(A) + Var(B) - 2 Cov(A, B);
///  * the exact mean/variance of max{A, B} from Clark's moments;
///  * re-linearization: correlated coefficients blend as
///    TP * a + (1-TP) * b, the private random coefficient is set by
///    variance matching (clamped at zero when Clark's variance falls below
///    the correlated part — a known property of the approximation, counted
///    in MaxDiagnostics).
///
/// The primitives come in two flavors sharing one implementation: view
/// kernels (`statistical_max_into`, `tightness_split_into`) that write into
/// caller-owned storage — FormBank rows or a CanonicalForm's own fields —
/// without allocating, and CanonicalForm wrappers that delegate to them.
/// Results are bit-identical across both, by construction.

#pragma once

#include <span>

#include "hssta/timing/canonical.hpp"
#include "hssta/timing/form_bank.hpp"

namespace hssta::timing {

/// Counters exposing the numerical health of max operations.
struct MaxDiagnostics {
  size_t ops = 0;               ///< pairwise max operations performed
  size_t variance_clamped = 0;  ///< variance matching hit the zero clamp
  size_t degenerate_theta = 0;  ///< theta ~ 0: picked the dominating input

  MaxDiagnostics& operator+=(const MaxDiagnostics& o);
};

/// Prob{A >= B}. For theta ~ 0 returns 0 or 1 by nominal comparison.
[[nodiscard]] double tightness_probability(ConstFormView a, ConstFormView b);
[[nodiscard]] double tightness_probability(const CanonicalForm& a,
                                           const CanonicalForm& b);

/// Clark's exact mean of max{A, B} (before re-linearization).
[[nodiscard]] double max_mean(ConstFormView a, ConstFormView b);
[[nodiscard]] double max_mean(const CanonicalForm& a, const CanonicalForm& b);

/// dst = statistical max{a, b}, re-linearized, written in place. The hot
/// kernel of every sweep: no allocation, one pass over the coefficient
/// rows. `dst` may alias `a` or `b` — all moments (variances, covariance,
/// nominals) are read before the first write, and the blend loop reads
/// index i of both inputs before writing index i of dst.
void statistical_max_into(FormView dst, ConstFormView a, ConstFormView b,
                          MaxDiagnostics* diag = nullptr);

/// Statistical maximum re-linearized into a fresh canonical form
/// (boundary-API convenience over statistical_max_into).
[[nodiscard]] CanonicalForm statistical_max(const CanonicalForm& a,
                                            const CanonicalForm& b,
                                            MaxDiagnostics* diag = nullptr);

/// In-place fold: acc = max{acc, b}.
void statistical_max_accumulate(CanonicalForm& acc, const CanonicalForm& b,
                                MaxDiagnostics* diag = nullptr);

/// Sequential n-ary maximum (the paper applies the pairwise operation
/// iteratively). Throws on an empty span.
[[nodiscard]] CanonicalForm statistical_max(std::span<const CanonicalForm> xs,
                                            MaxDiagnostics* diag = nullptr);

/// Probability that each entry is the maximum of the set: leave-one-out
/// tightness probabilities (prefix/suffix Clark folds), renormalized to
/// sum to exactly 1. Throws on an empty span.
[[nodiscard]] std::vector<double> tightness_split(
    std::span<const CanonicalForm> xs, MaxDiagnostics* diag = nullptr);

/// Allocation-free twin of tightness_split over the first `count` rows of
/// `xs`: writes the renormalized leave-one-out probabilities into `tp`
/// (resized to `count`) and keeps the prefix/suffix folds in `scratch`
/// (reshaped as needed; reusable across calls, so a warm caller allocates
/// nothing). Bit-identical to tightness_split on the same forms.
void tightness_split_into(const FormBank& xs, size_t count,
                          std::vector<double>& tp, FormBank& scratch,
                          MaxDiagnostics* diag = nullptr);

}  // namespace hssta::timing
