/// \file form_bank.hpp
/// Structure-of-arrays canonical-form storage: one contiguous row-major
/// [rows x (dim + 2)] matrix of doubles, each row holding one form as
/// [nominal, corr[0..dim), random]. PropagationResult keeps one row per
/// vertex slot, so a level-synchronous sweep walks memory linearly instead
/// of chasing one heap vector per vertex, and the span kernels of
/// canonical.hpp / statops.hpp fold rows in place — no allocation anywhere
/// on the hot path. CanonicalForm remains the boundary type: `form()` /
/// `store()` convert a row at the API edge, `row()` hands out views for the
/// kernels.

#pragma once

#include <cstddef>
#include <vector>

#include "hssta/timing/canonical.hpp"

namespace hssta::timing {

class FormBank {
 public:
  FormBank() = default;
  FormBank(size_t rows, size_t dim) { reset(rows, dim); }

  /// Reshape to `rows` zero forms of dimension `dim`, recycling the buffer
  /// (assign() reuses capacity, so a reused bank does not reallocate).
  void reset(size_t rows, size_t dim) {
    rows_ = rows;
    dim_ = dim;
    data_.assign(rows * stride(), 0.0);
  }

  /// Grow or shrink the row count, preserving existing rows; new rows are
  /// zero forms.
  void resize_rows(size_t rows) {
    data_.resize(rows * stride(), 0.0);
    rows_ = rows;
  }

  [[nodiscard]] size_t rows() const { return rows_; }
  [[nodiscard]] size_t dim() const { return dim_; }
  /// Doubles per row: nominal + dim correlated coefficients + random.
  [[nodiscard]] size_t stride() const { return dim_ + 2; }
  [[nodiscard]] bool empty() const { return rows_ == 0; }

  /// Unchecked row access (like vector::operator[]); `r < rows()`.
  [[nodiscard]] FormView row(size_t r) {
    double* p = data_.data() + r * stride();
    return FormView{p, p + 1, p + 1 + dim_, dim_};
  }
  [[nodiscard]] ConstFormView row(size_t r) const {
    const double* p = data_.data() + r * stride();
    return ConstFormView{p, p + 1, p + 1 + dim_, dim_};
  }

  /// Materialize row `r` as a boundary CanonicalForm.
  [[nodiscard]] CanonicalForm form(size_t r) const {
    CanonicalForm f(dim_);
    form_copy(f.view(), row(r));
    return f;
  }

  /// Copy a boundary form into row `r` (dimensions must match).
  void store(size_t r, const CanonicalForm& f) { form_copy(row(r), f.view()); }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] size_t size() const { return data_.size(); }

 private:
  size_t rows_ = 0;
  size_t dim_ = 0;
  std::vector<double> data_;
};

}  // namespace hssta::timing
