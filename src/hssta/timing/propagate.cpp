#include "hssta/timing/propagate.hpp"

#include <algorithm>

#include "hssta/util/error.hpp"

namespace hssta::timing {

const CanonicalForm& PropagationResult::at(VertexId v) const {
  HSSTA_REQUIRE(v < time.size() && valid[v], "time of unreached vertex");
  return time[v];
}

PropagationResult propagate_arrivals(const TimingGraph& g,
                                     std::span<const VertexId> sources) {
  PropagationResult r;
  propagate_arrivals_into(g, sources, r);
  return r;
}

void propagate_arrivals_into(const TimingGraph& g,
                             std::span<const VertexId> sources,
                             PropagationResult& r) {
  r.diagnostics = MaxDiagnostics{};
  // assign() recycles both the vertex vector and (by element-wise copy
  // assignment) each entry's coefficient buffer, so a reused result does
  // not reallocate.
  const CanonicalForm zero(g.dim());
  r.time.assign(g.num_vertex_slots(), zero);
  r.valid.assign(g.num_vertex_slots(), 0);

  if (sources.empty()) {
    for (VertexId v : g.inputs()) r.valid[v] = 1;
  } else {
    for (VertexId v : sources) {
      HSSTA_REQUIRE(g.vertex_alive(v), "propagation source is dead");
      r.valid[v] = 1;
    }
  }

  CanonicalForm candidate(g.dim());
  for (VertexId v : g.topo_order()) {
    bool has = r.valid[v] != 0;  // sources carry arrival 0
    for (EdgeId e : g.vertex(v).fanin) {
      const TimingEdge& te = g.edge(e);
      if (!r.valid[te.from]) continue;
      candidate = r.time[te.from];
      candidate += te.delay;
      if (!has) {
        r.time[v] = candidate;
        has = true;
      } else {
        r.time[v] = statistical_max(r.time[v], candidate, &r.diagnostics);
      }
    }
    r.valid[v] = has ? 1 : 0;
  }
}

PropagationResult propagate_to_sink(const TimingGraph& g, VertexId sink) {
  HSSTA_REQUIRE(g.vertex_alive(sink), "sink is dead");
  PropagationResult r;
  r.time.assign(g.num_vertex_slots(), CanonicalForm(g.dim()));
  r.valid.assign(g.num_vertex_slots(), 0);
  r.valid[sink] = 1;

  std::vector<VertexId> order = g.topo_order();
  std::reverse(order.begin(), order.end());
  CanonicalForm candidate(g.dim());
  for (VertexId v : order) {
    bool has = v == sink;
    for (EdgeId e : g.vertex(v).fanout) {
      const TimingEdge& te = g.edge(e);
      if (!r.valid[te.to]) continue;
      candidate = r.time[te.to];
      candidate += te.delay;
      if (!has) {
        r.time[v] = std::move(candidate);
        candidate = CanonicalForm(g.dim());
        has = true;
      } else {
        r.time[v] = statistical_max(r.time[v], candidate, &r.diagnostics);
      }
    }
    r.valid[v] = has ? 1 : 0;
  }
  return r;
}

CanonicalForm circuit_delay(const TimingGraph& g,
                            const PropagationResult& arrivals,
                            MaxDiagnostics* diag) {
  bool has = false;
  CanonicalForm acc(g.dim());
  for (VertexId v : g.outputs()) {
    if (!arrivals.valid[v]) continue;
    if (!has) {
      acc = arrivals.time[v];
      has = true;
    } else {
      acc = statistical_max(acc, arrivals.time[v], diag);
    }
  }
  HSSTA_REQUIRE(has, "no output port was reached");
  return acc;
}

}  // namespace hssta::timing
