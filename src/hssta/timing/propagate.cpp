#include "hssta/timing/propagate.hpp"

#include <algorithm>

#include "hssta/util/error.hpp"

namespace hssta::timing {

namespace {

/// Per-worker scratch of the level-synchronous sweeps: the fold candidate
/// plus this worker's share of the diagnostics counters (merged by integer
/// sum after the sweep, so totals equal the serial sweep's exactly).
struct SweepScratch {
  CanonicalForm candidate;
  MaxDiagnostics diag;
};

/// Fold the fanin of `v` into r.time[v] / r.valid[v]. Shared by the serial
/// and the level-synchronous sweeps so both run the exact same arithmetic
/// on every vertex.
inline void relax_fanin(const TimingGraph& g, VertexId v, PropagationResult& r,
                        CanonicalForm& candidate, MaxDiagnostics& diag) {
  bool has = r.valid[v] != 0;  // sources carry arrival 0
  for (EdgeId e : g.vertex(v).fanin) {
    const TimingEdge& te = g.edge(e);
    if (!r.valid[te.from]) continue;
    candidate = r.time[te.from];
    candidate += te.delay;
    if (!has) {
      r.time[v] = candidate;
      has = true;
    } else {
      r.time[v] = statistical_max(r.time[v], candidate, &diag);
    }
  }
  r.valid[v] = has ? 1 : 0;
}

/// Backward twin: fold the fanout of `v` (remaining delay to the seeded
/// sinks) into r.time[v] / r.valid[v].
inline void relax_fanout(const TimingGraph& g, VertexId v,
                         PropagationResult& r, CanonicalForm& candidate,
                         MaxDiagnostics& diag) {
  bool has = r.valid[v] != 0;  // sinks carry remaining delay 0
  for (EdgeId e : g.vertex(v).fanout) {
    const TimingEdge& te = g.edge(e);
    if (!r.valid[te.to]) continue;
    candidate = r.time[te.to];
    candidate += te.delay;
    if (!has) {
      r.time[v] = candidate;
      has = true;
    } else {
      r.time[v] = statistical_max(r.time[v], candidate, &diag);
    }
  }
  r.valid[v] = has ? 1 : 0;
}

/// Shared initialization: recycle r's buffers, seed `seeds` (or `ports`
/// when the span is empty) at time 0.
void reset_result(const TimingGraph& g, PropagationResult& r,
                  std::span<const VertexId> seeds,
                  const std::vector<VertexId>& ports, const char* what) {
  r.diagnostics = MaxDiagnostics{};
  // assign() recycles both the vertex vector and (by element-wise copy
  // assignment) each entry's coefficient buffer, so a reused result does
  // not reallocate.
  const CanonicalForm zero(g.dim());
  r.time.assign(g.num_vertex_slots(), zero);
  r.valid.assign(g.num_vertex_slots(), 0);
  if (seeds.empty()) {
    for (VertexId v : ports) r.valid[v] = 1;
  } else {
    for (VertexId v : seeds) {
      HSSTA_REQUIRE(g.vertex_alive(v), what);
      r.valid[v] = 1;
    }
  }
}

/// Level-synchronous driver shared by the forward and backward sweeps:
/// iterate the buckets in `front_to_back` or reverse order, fan each level
/// out across `ex` (chunked by canonical-op cost: folded-edge count times
/// the coefficient dimension), then merge the per-worker diagnostics.
template <typename Relax>
void level_sweep(const TimingGraph& g, PropagationResult& r,
                 exec::Executor& ex, bool front_to_back, Relax&& relax) {
  const std::shared_ptr<const LevelStructure> ls = g.levels();
  const exec::Executor::Exclusive scope(ex);
  for (size_t w = 0; w < ex.num_workspaces(); ++w)
    ex.workspace(w).get<SweepScratch>().diag = MaxDiagnostics{};
  const auto cost = [&](VertexId v) {
    const TimingVertex& tv = g.vertex(v);
    return 1 + (front_to_back ? tv.fanin.size() : tv.fanout.size()) * g.dim();
  };
  for_each_level(*ls, ex, front_to_back, cost,
                 [&](VertexId v, exec::Workspace& ws) {
                   SweepScratch& sc = ws.get<SweepScratch>();
                   relax(v, sc.candidate, sc.diag);
                 });
  for (size_t w = 0; w < ex.num_workspaces(); ++w)
    r.diagnostics += ex.workspace(w).get<SweepScratch>().diag;
}

}  // namespace

bool use_level_parallel(const LevelStructure& ls, size_t concurrency,
                        LevelParallel mode, size_t outer_items) {
  if (concurrency <= 1 || mode == LevelParallel::kOff) return false;
  if (mode == LevelParallel::kOn) return true;
  return outer_items < 2 * concurrency && ls.mean_width() >= 16.0;
}

bool use_level_parallel(const TimingGraph& g, size_t concurrency,
                        LevelParallel mode, size_t outer_items) {
  if (concurrency <= 1 || mode == LevelParallel::kOff) return false;
  if (mode == LevelParallel::kOn) return true;
  if (outer_items >= 2 * concurrency) return false;  // no levelization cost
  return use_level_parallel(*g.levels(), concurrency, mode, outer_items);
}

const CanonicalForm& PropagationResult::at(VertexId v) const {
  HSSTA_REQUIRE(v < time.size() && valid[v], "time of unreached vertex");
  return time[v];
}

PropagationResult propagate_arrivals(const TimingGraph& g,
                                     std::span<const VertexId> sources) {
  PropagationResult r;
  propagate_arrivals_into(g, sources, r);
  return r;
}

void propagate_arrivals_into(const TimingGraph& g,
                             std::span<const VertexId> sources,
                             PropagationResult& r) {
  reset_result(g, r, sources, g.inputs(), "propagation source is dead");
  CanonicalForm candidate(g.dim());
  for (VertexId v : g.topo_order())
    relax_fanin(g, v, r, candidate, r.diagnostics);
}

void propagate_arrivals_into(const TimingGraph& g,
                             std::span<const VertexId> sources,
                             PropagationResult& r, exec::Executor& ex,
                             LevelParallel mode) {
  if (!use_level_parallel(g, ex.concurrency(), mode)) {
    propagate_arrivals_into(g, sources, r);
    return;
  }
  reset_result(g, r, sources, g.inputs(), "propagation source is dead");
  level_sweep(g, r, ex, /*front_to_back=*/true,
              [&](VertexId v, CanonicalForm& candidate, MaxDiagnostics& diag) {
                relax_fanin(g, v, r, candidate, diag);
              });
}

void propagate_required_into(const TimingGraph& g,
                             std::span<const VertexId> sinks,
                             PropagationResult& r) {
  reset_result(g, r, sinks, g.outputs(), "propagation sink is dead");
  std::vector<VertexId> order = g.topo_order();
  std::reverse(order.begin(), order.end());
  CanonicalForm candidate(g.dim());
  for (VertexId v : order) relax_fanout(g, v, r, candidate, r.diagnostics);
}

void propagate_required_into(const TimingGraph& g,
                             std::span<const VertexId> sinks,
                             PropagationResult& r, exec::Executor& ex,
                             LevelParallel mode) {
  if (!use_level_parallel(g, ex.concurrency(), mode)) {
    propagate_required_into(g, sinks, r);
    return;
  }
  reset_result(g, r, sinks, g.outputs(), "propagation sink is dead");
  level_sweep(g, r, ex, /*front_to_back=*/false,
              [&](VertexId v, CanonicalForm& candidate, MaxDiagnostics& diag) {
                relax_fanout(g, v, r, candidate, diag);
              });
}

PropagationResult propagate_to_sink(const TimingGraph& g, VertexId sink) {
  const VertexId sinks[] = {sink};
  PropagationResult r;
  propagate_required_into(g, sinks, r);
  return r;
}

CanonicalForm circuit_delay(const TimingGraph& g,
                            const PropagationResult& arrivals,
                            MaxDiagnostics* diag) {
  bool has = false;
  CanonicalForm acc(g.dim());
  for (VertexId v : g.outputs()) {
    if (!arrivals.valid[v]) continue;
    if (!has) {
      acc = arrivals.time[v];
      has = true;
    } else {
      acc = statistical_max(acc, arrivals.time[v], diag);
    }
  }
  HSSTA_REQUIRE(has, "no output port was reached");
  return acc;
}

}  // namespace hssta::timing
