#include "hssta/timing/propagate.hpp"

#include <algorithm>
#include <cmath>

#include "hssta/stats/normal.hpp"
#include "hssta/util/error.hpp"

namespace hssta::timing {

namespace {

/// Per-worker scratch of the level-synchronous sweeps: the fold candidate
/// plus this worker's share of the diagnostics counters (merged by integer
/// sum after the sweep, so totals equal the serial sweep's exactly).
struct SweepScratch {
  CanonicalForm candidate;
  MaxDiagnostics diag;
};

/// Fold the fanin of `v` into row v of r.time / r.valid[v], entirely on
/// bank rows: candidate = time[from] + delay (add_into), then either a row
/// copy (first live fanin) or an in-place statistical max with the row as
/// both accumulator and destination. Shared by the serial and the
/// level-synchronous sweeps so both run the exact same arithmetic on every
/// vertex. No allocation: `candidate` is caller-owned reusable scratch.
inline void relax_fanin(const TimingGraph& g, VertexId v, PropagationResult& r,
                        FormView candidate, MaxDiagnostics& diag) {
  bool has = r.valid[v] != 0;  // sources carry arrival 0
  const FormView dst = r.time.row(v);
  for (EdgeId e : g.vertex(v).fanin) {
    const TimingEdge& te = g.edge(e);
    if (!r.valid[te.from]) continue;
    add_into(candidate, r.time.row(te.from), te.delay.view());
    if (!has) {
      form_copy(dst, candidate);
      has = true;
    } else {
      statistical_max_into(dst, dst, candidate, &diag);
    }
  }
  r.valid[v] = has ? 1 : 0;
}

/// Backward twin: fold the fanout of `v` (remaining delay to the seeded
/// sinks) into row v of r.time / r.valid[v].
inline void relax_fanout(const TimingGraph& g, VertexId v,
                         PropagationResult& r, FormView candidate,
                         MaxDiagnostics& diag) {
  bool has = r.valid[v] != 0;  // sinks carry remaining delay 0
  const FormView dst = r.time.row(v);
  for (EdgeId e : g.vertex(v).fanout) {
    const TimingEdge& te = g.edge(e);
    if (!r.valid[te.to]) continue;
    add_into(candidate, r.time.row(te.to), te.delay.view());
    if (!has) {
      form_copy(dst, candidate);
      has = true;
    } else {
      statistical_max_into(dst, dst, candidate, &diag);
    }
  }
  r.valid[v] = has ? 1 : 0;
}

/// Shared initialization: recycle r's buffers, seed `seeds` (or `ports`
/// when the span is empty) at time 0. FormBank::reset zero-fills in place,
/// so a reused result does not reallocate.
void reset_result(const TimingGraph& g, PropagationResult& r,
                  std::span<const VertexId> seeds,
                  const std::vector<VertexId>& ports, const char* what) {
  r.diagnostics = MaxDiagnostics{};
  r.time.reset(g.num_vertex_slots(), g.dim());
  r.valid.assign(g.num_vertex_slots(), 0);
  if (seeds.empty()) {
    for (VertexId v : ports) r.valid[v] = 1;
  } else {
    for (VertexId v : seeds) {
      HSSTA_REQUIRE(g.vertex_alive(v), what);
      r.valid[v] = 1;
    }
  }
}

/// Level-synchronous driver shared by the forward and backward sweeps:
/// iterate the buckets in `front_to_back` or reverse order, fan each level
/// out across `ex` (chunked by canonical-op cost: folded-edge count times
/// the coefficient dimension), then merge the per-worker diagnostics.
template <typename Relax>
void level_sweep(const TimingGraph& g, PropagationResult& r,
                 exec::Executor& ex, bool front_to_back, Relax&& relax) {
  const std::shared_ptr<const LevelStructure> ls = g.levels();
  const exec::Executor::Exclusive scope(ex);
  for (size_t w = 0; w < ex.num_workspaces(); ++w) {
    SweepScratch& sc = ex.workspace(w).get<SweepScratch>();
    sc.diag = MaxDiagnostics{};
    if (sc.candidate.dim() != g.dim()) sc.candidate = CanonicalForm(g.dim());
  }
  const auto cost = [&](VertexId v) {
    const TimingVertex& tv = g.vertex(v);
    return 1 + (front_to_back ? tv.fanin.size() : tv.fanout.size()) * g.dim();
  };
  for_each_level(*ls, ex, front_to_back, cost,
                 [&](VertexId v, exec::Workspace& ws) {
                   SweepScratch& sc = ws.get<SweepScratch>();
                   relax(v, sc.candidate.view(), sc.diag);
                 });
  for (size_t w = 0; w < ex.num_workspaces(); ++w)
    r.diagnostics += ex.workspace(w).get<SweepScratch>().diag;
}

}  // namespace

bool use_level_parallel(const LevelStructure& ls, size_t concurrency,
                        LevelParallel mode, size_t outer_items) {
  if (concurrency <= 1 || mode == LevelParallel::kOff) return false;
  if (mode == LevelParallel::kOn) return true;
  return outer_items < 2 * concurrency && ls.mean_width() >= 16.0;
}

bool use_level_parallel(const TimingGraph& g, size_t concurrency,
                        LevelParallel mode, size_t outer_items) {
  if (concurrency <= 1 || mode == LevelParallel::kOff) return false;
  if (mode == LevelParallel::kOn) return true;
  if (outer_items >= 2 * concurrency) return false;  // no levelization cost
  return use_level_parallel(*g.levels(), concurrency, mode, outer_items);
}

CanonicalForm PropagationResult::at(VertexId v) const {
  HSSTA_REQUIRE(v < time.rows() && valid[v], "time of unreached vertex");
  return time.form(v);
}

PropagationResult propagate_arrivals(const TimingGraph& g,
                                     std::span<const VertexId> sources) {
  PropagationResult r;
  propagate_arrivals_into(g, sources, r);
  return r;
}

void propagate_arrivals_into(const TimingGraph& g,
                             std::span<const VertexId> sources,
                             PropagationResult& r) {
  reset_result(g, r, sources, g.inputs(), "propagation source is dead");
  CanonicalForm candidate(g.dim());
  for (VertexId v : g.topo_order())
    relax_fanin(g, v, r, candidate.view(), r.diagnostics);
}

void propagate_arrivals_into(const TimingGraph& g,
                             std::span<const VertexId> sources,
                             PropagationResult& r, exec::Executor& ex,
                             LevelParallel mode) {
  if (!use_level_parallel(g, ex.concurrency(), mode)) {
    propagate_arrivals_into(g, sources, r);
    return;
  }
  reset_result(g, r, sources, g.inputs(), "propagation source is dead");
  level_sweep(g, r, ex, /*front_to_back=*/true,
              [&](VertexId v, FormView candidate, MaxDiagnostics& diag) {
                relax_fanin(g, v, r, candidate, diag);
              });
}

void propagate_required_into(const TimingGraph& g,
                             std::span<const VertexId> sinks,
                             PropagationResult& r) {
  reset_result(g, r, sinks, g.outputs(), "propagation sink is dead");
  std::vector<VertexId> order = g.topo_order();
  std::reverse(order.begin(), order.end());
  CanonicalForm candidate(g.dim());
  for (VertexId v : order)
    relax_fanout(g, v, r, candidate.view(), r.diagnostics);
}

void propagate_required_into(const TimingGraph& g,
                             std::span<const VertexId> sinks,
                             PropagationResult& r, exec::Executor& ex,
                             LevelParallel mode) {
  if (!use_level_parallel(g, ex.concurrency(), mode)) {
    propagate_required_into(g, sinks, r);
    return;
  }
  reset_result(g, r, sinks, g.outputs(), "propagation sink is dead");
  level_sweep(g, r, ex, /*front_to_back=*/false,
              [&](VertexId v, FormView candidate, MaxDiagnostics& diag) {
                relax_fanout(g, v, r, candidate, diag);
              });
}

PropagationResult propagate_to_sink(const TimingGraph& g, VertexId sink) {
  const VertexId sinks[] = {sink};
  PropagationResult r;
  propagate_required_into(g, sinks, r);
  return r;
}

CanonicalForm circuit_delay(const TimingGraph& g,
                            const PropagationResult& arrivals,
                            MaxDiagnostics* diag) {
  bool has = false;
  CanonicalForm acc(g.dim());
  for (VertexId v : g.outputs()) {
    if (!arrivals.valid[v]) continue;
    if (!has) {
      form_copy(acc.view(), arrivals.time.row(v));
      has = true;
    } else {
      statistical_max_into(acc.view(), acc.view(), arrivals.time.row(v), diag);
    }
  }
  HSSTA_REQUIRE(has, "no output port was reached");
  return acc;
}

// --- legacy per-vertex reference engine ------------------------------------

namespace {

/// The pre-FormBank pairwise max, byte-for-byte: allocates a fresh
/// CanonicalForm per call and goes through the owning-type accessors. This
/// deliberately does NOT delegate to statistical_max_into — it preserves
/// the retired implementation so the differential harness pins the flat
/// kernel against the original arithmetic, not against itself.
CanonicalForm legacy_statistical_max(const CanonicalForm& a,
                                     const CanonicalForm& b,
                                     MaxDiagnostics* diag) {
  constexpr double kDegenerateFrac = 1e-14;
  HSSTA_REQUIRE(a.dim() == b.dim(), "max across different spaces");
  if (diag) ++diag->ops;

  const double va = a.variance();
  const double vb = b.variance();
  const double cov = a.covariance(b);
  const double theta2 = va + vb - 2.0 * cov;
  const double scale = std::max(va, vb);
  const bool degenerate = theta2 <= kDegenerateFrac * scale || theta2 <= 0.0;
  if (degenerate) {
    if (diag) ++diag->degenerate_theta;
    return a.nominal() >= b.nominal() ? a : b;
  }
  const double theta = std::sqrt(theta2);

  const double a0 = a.nominal();
  const double b0 = b.nominal();
  const double alpha = (a0 - b0) / theta;
  const double tp = stats::normal_cdf(alpha);
  const double pdf = stats::normal_pdf(alpha);

  const double mu = tp * a0 + (1.0 - tp) * b0 + theta * pdf;
  const double second =
      tp * (va + a0 * a0) + (1.0 - tp) * (vb + b0 * b0) + (a0 + b0) * theta * pdf;
  const double var = second - mu * mu;

  CanonicalForm out(a.dim());
  out.set_nominal(mu);
  const std::span<const double> ca = a.corr();
  const std::span<const double> cb = b.corr();
  const std::span<double> co = out.corr();
  double corr_var = 0.0;
  for (size_t i = 0; i < co.size(); ++i) {
    co[i] = tp * ca[i] + (1.0 - tp) * cb[i];
    corr_var += co[i] * co[i];
  }
  const double resid = var - corr_var;
  if (resid > 0.0) {
    out.set_random(std::sqrt(resid));
  } else {
    out.set_random(0.0);
    if (diag) ++diag->variance_clamped;
  }
  return out;
}

void legacy_reset(const TimingGraph& g, LegacyPropagation& r,
                  std::span<const VertexId> seeds,
                  const std::vector<VertexId>& ports, const char* what) {
  r.diagnostics = MaxDiagnostics{};
  r.time.assign(g.num_vertex_slots(), CanonicalForm(g.dim()));
  r.valid.assign(g.num_vertex_slots(), 0);
  if (seeds.empty()) {
    for (VertexId v : ports) r.valid[v] = 1;
  } else {
    for (VertexId v : seeds) {
      HSSTA_REQUIRE(g.vertex_alive(v), what);
      r.valid[v] = 1;
    }
  }
}

}  // namespace

LegacyPropagation legacy_propagate_arrivals(const TimingGraph& g,
                                            std::span<const VertexId> sources) {
  LegacyPropagation r;
  legacy_reset(g, r, sources, g.inputs(), "propagation source is dead");
  CanonicalForm candidate(g.dim());
  for (VertexId v : g.topo_order()) {
    bool has = r.valid[v] != 0;
    for (EdgeId e : g.vertex(v).fanin) {
      const TimingEdge& te = g.edge(e);
      if (!r.valid[te.from]) continue;
      candidate = r.time[te.from];
      candidate += te.delay;
      if (!has) {
        r.time[v] = candidate;
        has = true;
      } else {
        r.time[v] =
            legacy_statistical_max(r.time[v], candidate, &r.diagnostics);
      }
    }
    r.valid[v] = has ? 1 : 0;
  }
  return r;
}

LegacyPropagation legacy_propagate_required(const TimingGraph& g,
                                            std::span<const VertexId> sinks) {
  LegacyPropagation r;
  legacy_reset(g, r, sinks, g.outputs(), "propagation sink is dead");
  std::vector<VertexId> order = g.topo_order();
  std::reverse(order.begin(), order.end());
  CanonicalForm candidate(g.dim());
  for (VertexId v : order) {
    bool has = r.valid[v] != 0;
    for (EdgeId e : g.vertex(v).fanout) {
      const TimingEdge& te = g.edge(e);
      if (!r.valid[te.to]) continue;
      candidate = r.time[te.to];
      candidate += te.delay;
      if (!has) {
        r.time[v] = candidate;
        has = true;
      } else {
        r.time[v] =
            legacy_statistical_max(r.time[v], candidate, &r.diagnostics);
      }
    }
    r.valid[v] = has ? 1 : 0;
  }
  return r;
}

}  // namespace hssta::timing
