/// \file graph.hpp
/// The timing graph of the paper (Section II): vertices are circuit pins
/// (one per primary input and one per gate output, matching Table I's
/// vertex accounting), edges are pin-to-pin delays in canonical form.
/// Ports (module inputs/outputs) are flagged vertices; model extraction may
/// delete internal vertices and edges, so both use tombstones with live
/// counts, and fanin/fanout adjacency is maintained on removal.

#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "hssta/timing/canonical.hpp"
#include "hssta/variation/space.hpp"

namespace hssta::timing {

using VertexId = uint32_t;
using EdgeId = uint32_t;
inline constexpr VertexId kNoVertex = std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();
inline constexpr uint32_t kNoLevel = std::numeric_limits<uint32_t>::max();

/// How a sweep decides to fan out *within* one propagation (across the
/// vertices of each topological level) instead of across outer work units:
///  * kAuto — level-parallel when the outer fan-out cannot saturate the
///    executor and the graph is wide enough to amortize per-level barriers;
///  * kOn   — always level-parallel (given a concurrent executor);
///  * kOff  — always the outer fan-out / serial sweep.
/// The choice never changes any result bit; it is purely a speed knob.
enum class LevelParallel { kAuto, kOn, kOff };

/// Levelization of the live graph: level(v) = 0 for fanin-free vertices,
/// otherwise 1 + max level over fanin sources, so every live edge goes to a
/// strictly higher level. `order` equals topo_order() exactly (Kahn's ready
/// queue pops levels in nondecreasing order), and the buckets partition it
/// contiguously — bucket l is the span order[offsets[l], offsets[l+1]).
/// Vertices within one level share no edges, which is what makes the
/// level-synchronous sweeps race-free and bit-identical to the serial order.
struct LevelStructure {
  std::vector<VertexId> order;    ///< == topo_order(), grouped by level
  std::vector<size_t> offsets;    ///< bucket boundaries; size num_levels()+1
  std::vector<uint32_t> level_of; ///< per vertex slot; kNoLevel when dead

  [[nodiscard]] size_t num_levels() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  [[nodiscard]] std::span<const VertexId> bucket(size_t level) const {
    return std::span<const VertexId>(order).subspan(
        offsets[level], offsets[level + 1] - offsets[level]);
  }
  /// Widest bucket (0 for an empty graph).
  [[nodiscard]] size_t max_width() const;
  /// Live vertices per level (0.0 for an empty graph).
  [[nodiscard]] double mean_width() const;
};

struct TimingVertex {
  std::string name;
  bool is_input = false;
  bool is_output = false;
  std::vector<EdgeId> fanin;   ///< live incoming edges
  std::vector<EdgeId> fanout;  ///< live outgoing edges
};

struct TimingEdge {
  VertexId from = kNoVertex;
  VertexId to = kNoVertex;
  CanonicalForm delay;
};

class TimingGraph {
 public:
  /// Graph over a variation space (the usual case).
  explicit TimingGraph(std::shared_ptr<const variation::VariationSpace> space);

  /// Space-less graph of a given coefficient dimension (tests, synthetic
  /// fixtures).
  explicit TimingGraph(size_t dim);

  /// Copies share the (immutable) levelization cache; moves transfer it.
  /// Spelled out because the cache guard mutex is neither.
  TimingGraph(const TimingGraph& other);
  TimingGraph& operator=(const TimingGraph& other);
  TimingGraph(TimingGraph&& other) noexcept;
  TimingGraph& operator=(TimingGraph&& other) noexcept;

  /// --- construction / mutation -------------------------------------------

  VertexId add_vertex(std::string name, bool is_input = false,
                      bool is_output = false);
  /// Adds an edge; the delay's dimension must match the graph's.
  EdgeId add_edge(VertexId from, VertexId to, CanonicalForm delay);
  /// Removes a live edge and detaches it from its endpoints' adjacency.
  void remove_edge(EdgeId e);
  /// Removes a live, non-port vertex with no live edges.
  void remove_vertex(VertexId v);

  /// --- access --------------------------------------------------------------

  [[nodiscard]] size_t dim() const { return dim_; }
  [[nodiscard]] const std::shared_ptr<const variation::VariationSpace>& space()
      const {
    return space_;
  }

  /// Swap the variation-space annotation for another space of the *same*
  /// dimension (checked). Used by the incremental design engine when a
  /// geometry change rebuilds the design space but the coefficient layout
  /// — and therefore every stored CanonicalForm — keeps its width; the
  /// caller is responsible for refreshing the coefficients themselves.
  void reset_space(std::shared_ptr<const variation::VariationSpace> space);

  [[nodiscard]] size_t num_vertex_slots() const { return vertices_.size(); }
  [[nodiscard]] size_t num_edge_slots() const { return edges_.size(); }
  [[nodiscard]] size_t num_live_vertices() const { return live_vertices_; }
  [[nodiscard]] size_t num_live_edges() const { return live_edges_; }

  [[nodiscard]] bool vertex_alive(VertexId v) const;
  [[nodiscard]] bool edge_alive(EdgeId e) const;

  [[nodiscard]] TimingVertex& vertex(VertexId v);
  [[nodiscard]] const TimingVertex& vertex(VertexId v) const;
  [[nodiscard]] TimingEdge& edge(EdgeId e);
  [[nodiscard]] const TimingEdge& edge(EdgeId e) const;

  /// Port lists in creation order (ports are never removed).
  [[nodiscard]] const std::vector<VertexId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<VertexId>& outputs() const {
    return outputs_;
  }

  /// Linear scan by name over live vertices; kNoVertex if absent.
  [[nodiscard]] VertexId find_vertex(const std::string& name) const;

  /// --- analysis -------------------------------------------------------------

  /// Live vertices in topological order; throws on cycles.
  [[nodiscard]] std::vector<VertexId> topo_order() const;

  /// Cached levelization (see LevelStructure); built on first use, shared
  /// until the next mutation invalidates it, throws on cycles. The returned
  /// snapshot stays valid (and consistent) even if the graph is mutated
  /// afterwards — callers hold the shared_ptr for as long as they sweep.
  /// Thread-safe against concurrent levels()/topo_order() readers; like
  /// every other accessor it must not race with mutation.
  [[nodiscard]] std::shared_ptr<const LevelStructure> levels() const;

  /// vertex-indexed flags: reachable from `v` along live edges (v included).
  [[nodiscard]] std::vector<uint8_t> reachable_from(VertexId v) const;
  /// vertex-indexed flags: can reach `v` along live edges (v included).
  [[nodiscard]] std::vector<uint8_t> reaches(VertexId v) const;

  /// Structural checks: live edges join live vertices, inputs have no
  /// fanin, adjacency is consistent, graph is acyclic.
  void validate() const;

 private:
  /// Drop the cached levelization (called by every mutation).
  void invalidate_levels();
  /// The current cache, possibly null — copies share it without forcing a
  /// build.
  [[nodiscard]] std::shared_ptr<const LevelStructure> cached_levels() const;

  std::shared_ptr<const variation::VariationSpace> space_;
  size_t dim_ = 0;
  std::vector<TimingVertex> vertices_;
  std::vector<TimingEdge> edges_;
  std::vector<uint8_t> vertex_alive_;
  std::vector<uint8_t> edge_alive_;
  std::vector<VertexId> inputs_;
  std::vector<VertexId> outputs_;
  size_t live_vertices_ = 0;
  size_t live_edges_ = 0;

  /// Lazily built levelization; guarded so concurrent const readers share
  /// one build. An immutable snapshot: mutation replaces the pointer, never
  /// the pointed-to structure.
  mutable std::mutex levels_mu_;
  mutable std::shared_ptr<const LevelStructure> levels_;
};

}  // namespace hssta::timing
