#include "hssta/timing/builder.hpp"

#include <cmath>

#include "hssta/stats/rng.hpp"
#include "hssta/util/error.hpp"

namespace hssta::timing {

using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

namespace {

/// Per-net "captured by a register data pin" counts (a net may feed
/// several flops).
std::vector<uint32_t> capture_counts(const Netlist& nl) {
  std::vector<uint32_t> counts(nl.num_nets(), 0);
  for (const netlist::Register& r : nl.registers()) ++counts[r.data_in];
  return counts;
}

/// Create the canonical vertex set shared by both builders: primary
/// inputs, then register outputs (launch points, register order), then
/// gate outputs — each marked as a sink when it is a primary output or
/// feeds a register data pin. Returns the net -> vertex map.
std::vector<VertexId> make_vertices(const Netlist& nl, TimingGraph& g,
                                    const std::vector<uint32_t>& captured) {
  std::vector<VertexId> net_vertex(nl.num_nets(), kNoVertex);
  const auto is_sink = [&](NetId n) {
    return nl.is_primary_output(n) || captured[n] > 0;
  };
  for (NetId n : nl.primary_inputs())
    net_vertex[n] = g.add_vertex(nl.net_name(n), /*is_input=*/true,
                                 is_sink(n));
  for (const netlist::Register& r : nl.registers())
    net_vertex[r.data_out] = g.add_vertex(nl.net_name(r.data_out),
                                          /*is_input=*/true,
                                          is_sink(r.data_out));
  for (GateId gate = 0; gate < nl.num_gates(); ++gate) {
    const NetId n = nl.gate(gate).output;
    net_vertex[n] =
        g.add_vertex(nl.net_name(n), /*is_input=*/false, is_sink(n));
  }
  return net_vertex;
}

/// Fill the port-order vertex lists of a BuiltGraph.
void fill_port_lists(const Netlist& nl,
                     const std::vector<VertexId>& net_vertex,
                     BuiltGraph& out) {
  for (NetId n : nl.primary_inputs())
    out.input_vertices.push_back(net_vertex[n]);
  for (NetId n : nl.primary_outputs())
    out.output_vertices.push_back(net_vertex[n]);
  for (const netlist::Register& r : nl.registers()) {
    out.register_launch_vertices.push_back(net_vertex[r.data_out]);
    out.register_capture_vertices.push_back(net_vertex[r.data_in]);
  }
}

}  // namespace

BuiltGraph build_timing_graph(const Netlist& nl,
                              const placement::Placement& pl,
                              const variation::ModuleVariation& variation,
                              const BuildOptions& opts) {
  HSSTA_REQUIRE(pl.gate_position.size() == nl.num_gates(),
                "placement does not cover the netlist");
  const variation::VariationSpace& space = *variation.space;

  BuiltGraph out{TimingGraph(variation.space), {}, {}, {}, {}, {}};
  TimingGraph& g = out.graph;

  const std::vector<uint32_t> captured = capture_counts(nl);
  const std::vector<VertexId> net_vertex = make_vertices(nl, g, captured);

  // Loads: sum of sink pin capacitances plus the port cap on POs and the
  // data-pin cap per capturing register.
  std::vector<double> net_load(nl.num_nets(), 0.0);
  for (GateId gate = 0; gate < nl.num_gates(); ++gate) {
    const netlist::Gate& gt = nl.gate(gate);
    for (NetId f : gt.fanins) net_load[f] += gt.type->input_cap;
  }
  for (NetId n : nl.primary_outputs()) net_load[n] += opts.output_port_cap;
  for (NetId n = 0; n < nl.num_nets(); ++n)
    net_load[n] += captured[n] * opts.register_pin_cap;

  // Edges: one per gate input pin.
  const size_t dim = space.dim();
  for (GateId gate = 0; gate < nl.num_gates(); ++gate) {
    const netlist::Gate& gt = nl.gate(gate);
    const size_t grid = variation.partition.grid_of(pl.gate(gate));
    const double load = net_load[gt.output];
    const VertexId to = net_vertex[gt.output];
    for (uint32_t pin = 0; pin < gt.fanins.size(); ++pin) {
      const VertexId from = net_vertex[gt.fanins[pin]];
      HSSTA_ASSERT(from != kNoVertex, "fanin net without vertex");

      const double d0 = gt.type->pin_delay(pin, load);
      CanonicalForm delay(dim);
      delay.set_nominal(d0);
      double random2 = 0.0;
      for (size_t p = 0; p < space.num_params(); ++p) {
        const double sens =
            gt.type->sensitivity(space.parameters().at(p).name);
        if (sens == 0.0) continue;
        space.accumulate(p, grid, d0 * sens, delay.corr());
        const double r = d0 * sens * space.sigma_random(p);
        random2 += r * r;
      }
      // Load uncertainty acts on the load-dependent delay share and is
      // private to this edge.
      const double load_term = gt.type->drive_res * load *
                               space.parameters().load_sigma_rel;
      random2 += load_term * load_term;
      delay.set_random(std::sqrt(random2));

      const EdgeId e = g.add_edge(from, to, std::move(delay));
      HSSTA_ASSERT(e == out.sites.size(), "edge/site order out of sync");
      out.sites.push_back(EdgeSite{gate, pin, grid, d0, load});
    }
  }

  fill_port_lists(nl, net_vertex, out);
  return out;
}

BuiltGraph synthetic_delay_graph(const netlist::Netlist& nl, size_t dim,
                                 uint64_t seed) {
  stats::Rng rng(seed);
  BuiltGraph out{TimingGraph(dim), {}, {}, {}, {}, {}};
  TimingGraph& g = out.graph;

  const std::vector<uint32_t> captured = capture_counts(nl);
  const std::vector<VertexId> net_vertex = make_vertices(nl, g, captured);

  CanonicalForm delay(dim);
  for (GateId gate = 0; gate < nl.num_gates(); ++gate) {
    const netlist::Gate& gt = nl.gate(gate);
    const VertexId to = net_vertex[gt.output];
    for (uint32_t pin = 0; pin < gt.fanins.size(); ++pin) {
      const VertexId from = net_vertex[gt.fanins[pin]];
      HSSTA_ASSERT(from != kNoVertex, "fanin net without vertex");
      delay.set_nominal(rng.uniform(0.05, 0.5));
      for (size_t k = 0; k < dim; ++k) delay.corr()[k] = 0.02 * rng.normal();
      delay.set_random(rng.uniform(0.002, 0.02));
      g.add_edge(from, to, delay);
    }
  }

  fill_port_lists(nl, net_vertex, out);
  return out;
}

}  // namespace hssta::timing
