/// \file canonical.hpp
/// The canonical linear delay form of the paper (eq. 3):
///   d = a0 + sum_k c_k * y_k + a_r * x_r
/// with y the correlated variables of a VariationSpace (per-parameter global
/// + spatial PCA components, all iid standard normal by construction) and
/// x_r an independent standard normal private to this form.
///
/// Because every y_k is standard normal and independent, moments are plain
/// vector algebra: Var = |c|^2 + a_r^2 and Cov(A, B) = c_A . c_B.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hssta::timing {

class CanonicalForm {
 public:
  /// Zero form (nominal 0, no variation) of a given coefficient dimension.
  explicit CanonicalForm(size_t dim = 0) : corr_(dim, 0.0) {}

  /// Deterministic constant.
  [[nodiscard]] static CanonicalForm constant(double value, size_t dim);

  [[nodiscard]] size_t dim() const { return corr_.size(); }

  [[nodiscard]] double nominal() const { return nominal_; }
  void set_nominal(double v) { nominal_ = v; }
  void add_nominal(double v) { nominal_ += v; }

  [[nodiscard]] std::span<const double> corr() const { return corr_; }
  [[nodiscard]] std::span<double> corr() { return corr_; }

  /// Coefficient of the private random variable (kept non-negative).
  [[nodiscard]] double random() const { return random_; }
  void set_random(double r);
  /// Root-sum-square another independent random contribution in.
  void add_random_rss(double r);

  /// --- moments ------------------------------------------------------------

  [[nodiscard]] double variance() const;
  [[nodiscard]] double sigma() const;
  /// Covariance through the shared correlated variables (the private random
  /// parts of distinct forms are independent by definition).
  [[nodiscard]] double covariance(const CanonicalForm& other) const;
  [[nodiscard]] double correlation(const CanonicalForm& other) const;

  /// Gaussian-assumption helpers for reporting.
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double cdf(double x) const;

  /// --- algebra ------------------------------------------------------------

  /// Statistical sum: nominals and coefficients add; the independent random
  /// parts combine in root-sum-square (paper Section II).
  CanonicalForm& operator+=(const CanonicalForm& other);
  [[nodiscard]] friend CanonicalForm operator+(CanonicalForm a,
                                               const CanonicalForm& b) {
    a += b;
    return a;
  }

  /// Scale the whole form by s >= 0 (delays are non-negative quantities).
  void scale(double s);

  /// Value at a concrete assignment of the correlated variables plus this
  /// form's private random draw.
  [[nodiscard]] double evaluate(std::span<const double> y, double xr) const;

  [[nodiscard]] bool operator==(const CanonicalForm& other) const = default;

 private:
  double nominal_ = 0.0;
  std::vector<double> corr_;
  double random_ = 0.0;
};

}  // namespace hssta::timing
