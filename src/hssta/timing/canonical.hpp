/// \file canonical.hpp
/// The canonical linear delay form of the paper (eq. 3):
///   d = a0 + sum_k c_k * y_k + a_r * x_r
/// with y the correlated variables of a VariationSpace (per-parameter global
/// + spatial PCA components, all iid standard normal by construction) and
/// x_r an independent standard normal private to this form.
///
/// Because every y_k is standard normal and independent, moments are plain
/// vector algebra: Var = |c|^2 + a_r^2 and Cov(A, B) = c_A . c_B.
///
/// Storage comes in two shapes sharing one set of kernels:
///  * CanonicalForm — the boundary/API type, owning its coefficient vector;
///  * FormView / ConstFormView — non-owning views of [nominal, corr[0..dim),
///    random] laid out anywhere (a CanonicalForm's own fields or one row of
///    a FormBank matrix). The free kernels below (form_copy, add_into, ...)
///    operate on views, so the hot sweeps never allocate; CanonicalForm's
///    operators delegate to the same kernels, keeping the arithmetic — and
///    therefore the bits — identical across both storages.

#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "hssta/util/error.hpp"

namespace hssta::timing {

/// Mutable non-owning view of one canonical form: `nominal` and `random`
/// point at single doubles, `corr` at `dim` contiguous coefficients. The
/// pointed-at storage must outlive the view.
struct FormView {
  double* nominal = nullptr;
  double* corr = nullptr;
  double* random = nullptr;
  size_t dim = 0;
};

/// Read-only counterpart; a FormView converts implicitly.
struct ConstFormView {
  const double* nominal = nullptr;
  const double* corr = nullptr;
  const double* random = nullptr;
  size_t dim = 0;

  ConstFormView() = default;
  ConstFormView(const double* n, const double* c, const double* r, size_t d)
      : nominal(n), corr(c), random(r), dim(d) {}
  ConstFormView(FormView v)  // NOLINT(google-explicit-constructor)
      : nominal(v.nominal), corr(v.corr), random(v.random), dim(v.dim) {}
};

/// --- view kernels (allocation-free algebra over raw coefficient rows) ----
/// The accumulation orders below are the contract: every storage of
/// canonical forms must produce bit-identical moments and sums, so each
/// kernel fixes one floating-point evaluation order for good.

/// Var = a_r^2 + sum c_k^2, private term first.
[[nodiscard]] inline double form_variance(ConstFormView f) {
  double acc = *f.random * *f.random;
  for (size_t i = 0; i < f.dim; ++i) acc += f.corr[i] * f.corr[i];
  return acc;
}

/// Cov(A, B) = c_A . c_B (private random parts are independent).
[[nodiscard]] inline double form_covariance(ConstFormView a, ConstFormView b) {
  HSSTA_REQUIRE(a.dim == b.dim, "covariance across different spaces");
  double acc = 0.0;
  for (size_t i = 0; i < a.dim; ++i) acc += a.corr[i] * b.corr[i];
  return acc;
}

inline void form_copy(FormView dst, ConstFormView src) {
  HSSTA_REQUIRE(dst.dim == src.dim, "copy across different spaces");
  *dst.nominal = *src.nominal;
  for (size_t i = 0; i < dst.dim; ++i) dst.corr[i] = src.corr[i];
  *dst.random = *src.random;
}

/// Exact element-wise equality (not an epsilon comparison; -0.0 == 0.0).
[[nodiscard]] inline bool form_equal(ConstFormView a, ConstFormView b) {
  if (a.dim != b.dim || *a.nominal != *b.nominal || *a.random != *b.random)
    return false;
  for (size_t i = 0; i < a.dim; ++i)
    if (a.corr[i] != b.corr[i]) return false;
  return true;
}

/// dst = a + b: nominals and coefficients add, the independent random parts
/// combine in root-sum-square (paper Section II). `dst` may alias `a` or
/// `b` — every element is read before it is written.
inline void add_into(FormView dst, ConstFormView a, ConstFormView b) {
  HSSTA_REQUIRE(a.dim == b.dim && dst.dim == a.dim,
                "sum across different spaces");
  *dst.nominal = *a.nominal + *b.nominal;
  for (size_t i = 0; i < dst.dim; ++i) dst.corr[i] = a.corr[i] + b.corr[i];
  *dst.random = std::sqrt(*a.random * *a.random + *b.random * *b.random);
}

class CanonicalForm {
 public:
  /// Zero form (nominal 0, no variation) of a given coefficient dimension.
  explicit CanonicalForm(size_t dim = 0) : corr_(dim, 0.0) {}

  /// Deterministic constant.
  [[nodiscard]] static CanonicalForm constant(double value, size_t dim);

  [[nodiscard]] size_t dim() const { return corr_.size(); }

  [[nodiscard]] double nominal() const { return nominal_; }
  void set_nominal(double v) { nominal_ = v; }
  void add_nominal(double v) { nominal_ += v; }

  [[nodiscard]] std::span<const double> corr() const { return corr_; }
  [[nodiscard]] std::span<double> corr() { return corr_; }

  /// Coefficient of the private random variable (kept non-negative).
  [[nodiscard]] double random() const { return random_; }
  void set_random(double r);
  /// Root-sum-square another independent random contribution in (r must be
  /// non-negative, same contract as set_random).
  void add_random_rss(double r);

  /// Views of this form's own storage, for the span kernels above. A view
  /// writes past set_random's non-negativity check, so kernel writers own
  /// the invariant (every kernel in this codebase preserves it).
  [[nodiscard]] FormView view() {
    return FormView{&nominal_, corr_.data(), &random_, corr_.size()};
  }
  [[nodiscard]] ConstFormView view() const {
    return ConstFormView{&nominal_, corr_.data(), &random_, corr_.size()};
  }

  /// --- moments ------------------------------------------------------------

  [[nodiscard]] double variance() const { return form_variance(view()); }
  [[nodiscard]] double sigma() const;
  /// Covariance through the shared correlated variables (the private random
  /// parts of distinct forms are independent by definition).
  [[nodiscard]] double covariance(const CanonicalForm& other) const {
    return form_covariance(view(), other.view());
  }
  [[nodiscard]] double correlation(const CanonicalForm& other) const;

  /// Gaussian-assumption helpers for reporting.
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double cdf(double x) const;

  /// --- algebra ------------------------------------------------------------

  /// Statistical sum: nominals and coefficients add; the independent random
  /// parts combine in root-sum-square (paper Section II).
  CanonicalForm& operator+=(const CanonicalForm& other) {
    add_into(view(), view(), other.view());
    return *this;
  }
  [[nodiscard]] friend CanonicalForm operator+(CanonicalForm a,
                                               const CanonicalForm& b) {
    a += b;
    return a;
  }

  /// Scale the whole form by s >= 0 (delays are non-negative quantities).
  void scale(double s);

  /// Value at a concrete assignment of the correlated variables plus this
  /// form's private random draw.
  [[nodiscard]] double evaluate(std::span<const double> y, double xr) const;

  [[nodiscard]] bool operator==(const CanonicalForm& other) const = default;

 private:
  double nominal_ = 0.0;
  std::vector<double> corr_;
  double random_ = 0.0;
};

}  // namespace hssta::timing
