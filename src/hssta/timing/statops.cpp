#include "hssta/timing/statops.hpp"

#include <cmath>

#include "hssta/stats/normal.hpp"
#include "hssta/util/error.hpp"

namespace hssta::timing {

namespace {

/// theta^2 below this fraction of the larger input variance is treated as
/// fully correlated: max{A, B} is then simply the input with the larger
/// nominal (A - B is essentially deterministic).
constexpr double kDegenerateFrac = 1e-14;

struct PairStats {
  double va, vb, cov, theta;
  bool degenerate;
};

PairStats pair_stats(ConstFormView a, ConstFormView b) {
  PairStats s{};
  s.va = form_variance(a);
  s.vb = form_variance(b);
  s.cov = form_covariance(a, b);
  const double theta2 = s.va + s.vb - 2.0 * s.cov;
  const double scale = std::max(s.va, s.vb);
  s.degenerate = theta2 <= kDegenerateFrac * scale || theta2 <= 0.0;
  s.theta = s.degenerate ? 0.0 : std::sqrt(theta2);
  return s;
}

}  // namespace

MaxDiagnostics& MaxDiagnostics::operator+=(const MaxDiagnostics& o) {
  ops += o.ops;
  variance_clamped += o.variance_clamped;
  degenerate_theta += o.degenerate_theta;
  return *this;
}

double tightness_probability(ConstFormView a, ConstFormView b) {
  const PairStats s = pair_stats(a, b);
  if (s.degenerate) return *a.nominal >= *b.nominal ? 1.0 : 0.0;
  return stats::normal_cdf((*a.nominal - *b.nominal) / s.theta);
}

double tightness_probability(const CanonicalForm& a, const CanonicalForm& b) {
  return tightness_probability(a.view(), b.view());
}

double max_mean(ConstFormView a, ConstFormView b) {
  const PairStats s = pair_stats(a, b);
  if (s.degenerate) return std::max(*a.nominal, *b.nominal);
  const double alpha = (*a.nominal - *b.nominal) / s.theta;
  const double tp = stats::normal_cdf(alpha);
  return tp * *a.nominal + (1.0 - tp) * *b.nominal +
         s.theta * stats::normal_pdf(alpha);
}

double max_mean(const CanonicalForm& a, const CanonicalForm& b) {
  return max_mean(a.view(), b.view());
}

void statistical_max_into(FormView dst, ConstFormView a, ConstFormView b,
                          MaxDiagnostics* diag) {
  HSSTA_REQUIRE(a.dim == b.dim && dst.dim == a.dim,
                "max across different spaces");
  if (diag) ++diag->ops;

  const PairStats s = pair_stats(a, b);
  if (s.degenerate) {
    if (diag) ++diag->degenerate_theta;
    form_copy(dst, *a.nominal >= *b.nominal ? a : b);
    return;
  }

  const double a0 = *a.nominal;
  const double b0 = *b.nominal;
  const double alpha = (a0 - b0) / s.theta;
  const double tp = stats::normal_cdf(alpha);     // eq. 6
  const double pdf = stats::normal_pdf(alpha);

  // Clark's moments (eqs. 7-8).
  const double mu = tp * a0 + (1.0 - tp) * b0 + s.theta * pdf;
  const double second = tp * (s.va + a0 * a0) + (1.0 - tp) * (s.vb + b0 * b0) +
                        (a0 + b0) * s.theta * pdf;
  const double var = second - mu * mu;

  // Re-linearization (eq. 9): blend correlated coefficients by TP, match
  // the remaining variance with the private random term. Every moment has
  // been read by now, so writing dst is safe even when it aliases an input;
  // the blend reads ca[i]/cb[i] before writing co[i].
  *dst.nominal = mu;
  const double* ca = a.corr;
  const double* cb = b.corr;
  double* co = dst.corr;
  double corr_var = 0.0;
  for (size_t i = 0; i < dst.dim; ++i) {
    co[i] = tp * ca[i] + (1.0 - tp) * cb[i];
    corr_var += co[i] * co[i];
  }
  const double resid = var - corr_var;
  if (resid > 0.0) {
    *dst.random = std::sqrt(resid);
  } else {
    *dst.random = 0.0;
    if (diag) ++diag->variance_clamped;
  }
}

CanonicalForm statistical_max(const CanonicalForm& a, const CanonicalForm& b,
                              MaxDiagnostics* diag) {
  CanonicalForm out(a.dim());
  statistical_max_into(out.view(), a.view(), b.view(), diag);
  return out;
}

void statistical_max_accumulate(CanonicalForm& acc, const CanonicalForm& b,
                                MaxDiagnostics* diag) {
  statistical_max_into(acc.view(), acc.view(), b.view(), diag);
}

CanonicalForm statistical_max(std::span<const CanonicalForm> xs,
                              MaxDiagnostics* diag) {
  HSSTA_REQUIRE(!xs.empty(), "max of an empty set");
  CanonicalForm acc = xs[0];
  for (size_t i = 1; i < xs.size(); ++i)
    statistical_max_accumulate(acc, xs[i], diag);
  return acc;
}

std::vector<double> tightness_split(std::span<const CanonicalForm> xs,
                                    MaxDiagnostics* diag) {
  HSSTA_REQUIRE(!xs.empty(), "tightness split of an empty set");
  const size_t k = xs.size();
  if (k == 1) return {1.0};
  if (k == 2) {
    const double t = tightness_probability(xs[0], xs[1]);
    return {t, 1.0 - t};
  }
  // Leave-one-out maxima via prefix/suffix folds.
  std::vector<CanonicalForm> prefix(xs.begin(), xs.end());
  std::vector<CanonicalForm> suffix(xs.begin(), xs.end());
  for (size_t t = 1; t < k; ++t)
    prefix[t] = statistical_max(prefix[t - 1], xs[t], diag);
  for (size_t t = k - 1; t-- > 0;)
    suffix[t] = statistical_max(suffix[t + 1], xs[t], diag);
  std::vector<double> tp(k, 0.0);
  double sum = 0.0;
  for (size_t t = 0; t < k; ++t) {
    double p;
    if (t == 0) {
      p = tightness_probability(xs[0], suffix[1]);
    } else if (t + 1 == k) {
      p = tightness_probability(xs[k - 1], prefix[k - 2]);
    } else {
      const CanonicalForm others =
          statistical_max(prefix[t - 1], suffix[t + 1], diag);
      p = tightness_probability(xs[t], others);
    }
    tp[t] = p;
    sum += p;
  }
  if (sum > 0.0)
    for (double& p : tp) p /= sum;
  else
    for (double& p : tp) p = 1.0 / static_cast<double>(k);
  return tp;
}

void tightness_split_into(const FormBank& xs, size_t count,
                          std::vector<double>& tp, FormBank& scratch,
                          MaxDiagnostics* diag) {
  HSSTA_REQUIRE(count > 0 && count <= xs.rows(),
                "tightness split of an empty set");
  const size_t k = count;
  tp.assign(k, 0.0);
  if (k == 1) {
    tp[0] = 1.0;
    return;
  }
  if (k == 2) {
    const double t = tightness_probability(xs.row(0), xs.row(1));
    tp[0] = t;
    tp[1] = 1.0 - t;
    return;
  }
  // Leave-one-out maxima via prefix/suffix folds, kept in `scratch`: rows
  // [0, k) hold the prefix maxima, [k, 2k) the suffix maxima, row 2k the
  // per-entry "everything else" fold. Same fold order as tightness_split.
  if (scratch.rows() < 2 * k + 1 || scratch.dim() != xs.dim())
    scratch.reset(2 * k + 1, xs.dim());
  form_copy(scratch.row(0), xs.row(0));
  for (size_t t = 1; t < k; ++t)
    statistical_max_into(scratch.row(t), scratch.row(t - 1), xs.row(t), diag);
  form_copy(scratch.row(2 * k - 1), xs.row(k - 1));
  for (size_t t = k - 1; t-- > 0;)
    statistical_max_into(scratch.row(k + t), scratch.row(k + t + 1), xs.row(t),
                         diag);
  double sum = 0.0;
  for (size_t t = 0; t < k; ++t) {
    double p;
    if (t == 0) {
      p = tightness_probability(xs.row(0), scratch.row(k + 1));
    } else if (t + 1 == k) {
      p = tightness_probability(xs.row(k - 1), scratch.row(k - 2));
    } else {
      statistical_max_into(scratch.row(2 * k), scratch.row(t - 1),
                           scratch.row(k + t + 1), diag);
      p = tightness_probability(xs.row(t), scratch.row(2 * k));
    }
    tp[t] = p;
    sum += p;
  }
  if (sum > 0.0)
    for (double& p : tp) p /= sum;
  else
    for (double& p : tp) p = 1.0 / static_cast<double>(k);
}

}  // namespace hssta::timing
