#include "hssta/timing/statops.hpp"

#include <cmath>

#include "hssta/stats/normal.hpp"
#include "hssta/util/error.hpp"

namespace hssta::timing {

namespace {

/// theta^2 below this fraction of the larger input variance is treated as
/// fully correlated: max{A, B} is then simply the input with the larger
/// nominal (A - B is essentially deterministic).
constexpr double kDegenerateFrac = 1e-14;

struct PairStats {
  double va, vb, cov, theta;
  bool degenerate;
};

PairStats pair_stats(const CanonicalForm& a, const CanonicalForm& b) {
  PairStats s{};
  s.va = a.variance();
  s.vb = b.variance();
  s.cov = a.covariance(b);
  const double theta2 = s.va + s.vb - 2.0 * s.cov;
  const double scale = std::max(s.va, s.vb);
  s.degenerate = theta2 <= kDegenerateFrac * scale || theta2 <= 0.0;
  s.theta = s.degenerate ? 0.0 : std::sqrt(theta2);
  return s;
}

}  // namespace

MaxDiagnostics& MaxDiagnostics::operator+=(const MaxDiagnostics& o) {
  ops += o.ops;
  variance_clamped += o.variance_clamped;
  degenerate_theta += o.degenerate_theta;
  return *this;
}

double tightness_probability(const CanonicalForm& a, const CanonicalForm& b) {
  const PairStats s = pair_stats(a, b);
  if (s.degenerate) return a.nominal() >= b.nominal() ? 1.0 : 0.0;
  return stats::normal_cdf((a.nominal() - b.nominal()) / s.theta);
}

double max_mean(const CanonicalForm& a, const CanonicalForm& b) {
  const PairStats s = pair_stats(a, b);
  if (s.degenerate) return std::max(a.nominal(), b.nominal());
  const double alpha = (a.nominal() - b.nominal()) / s.theta;
  const double tp = stats::normal_cdf(alpha);
  return tp * a.nominal() + (1.0 - tp) * b.nominal() +
         s.theta * stats::normal_pdf(alpha);
}

CanonicalForm statistical_max(const CanonicalForm& a, const CanonicalForm& b,
                              MaxDiagnostics* diag) {
  HSSTA_REQUIRE(a.dim() == b.dim(), "max across different spaces");
  if (diag) ++diag->ops;

  const PairStats s = pair_stats(a, b);
  if (s.degenerate) {
    if (diag) ++diag->degenerate_theta;
    return a.nominal() >= b.nominal() ? a : b;
  }

  const double a0 = a.nominal();
  const double b0 = b.nominal();
  const double alpha = (a0 - b0) / s.theta;
  const double tp = stats::normal_cdf(alpha);     // eq. 6
  const double pdf = stats::normal_pdf(alpha);

  // Clark's moments (eqs. 7-8).
  const double mu = tp * a0 + (1.0 - tp) * b0 + s.theta * pdf;
  const double second = tp * (s.va + a0 * a0) + (1.0 - tp) * (s.vb + b0 * b0) +
                        (a0 + b0) * s.theta * pdf;
  const double var = second - mu * mu;

  // Re-linearization (eq. 9): blend correlated coefficients by TP, match
  // the remaining variance with the private random term.
  CanonicalForm out(a.dim());
  out.set_nominal(mu);
  const std::span<const double> ca = a.corr();
  const std::span<const double> cb = b.corr();
  const std::span<double> co = out.corr();
  double corr_var = 0.0;
  for (size_t i = 0; i < co.size(); ++i) {
    co[i] = tp * ca[i] + (1.0 - tp) * cb[i];
    corr_var += co[i] * co[i];
  }
  const double resid = var - corr_var;
  if (resid > 0.0) {
    out.set_random(std::sqrt(resid));
  } else {
    out.set_random(0.0);
    if (diag) ++diag->variance_clamped;
  }
  return out;
}

void statistical_max_accumulate(CanonicalForm& acc, const CanonicalForm& b,
                                MaxDiagnostics* diag) {
  acc = statistical_max(acc, b, diag);
}

CanonicalForm statistical_max(std::span<const CanonicalForm> xs,
                              MaxDiagnostics* diag) {
  HSSTA_REQUIRE(!xs.empty(), "max of an empty set");
  CanonicalForm acc = xs[0];
  for (size_t i = 1; i < xs.size(); ++i)
    statistical_max_accumulate(acc, xs[i], diag);
  return acc;
}

std::vector<double> tightness_split(std::span<const CanonicalForm> xs,
                                    MaxDiagnostics* diag) {
  HSSTA_REQUIRE(!xs.empty(), "tightness split of an empty set");
  const size_t k = xs.size();
  if (k == 1) return {1.0};
  if (k == 2) {
    const double t = tightness_probability(xs[0], xs[1]);
    return {t, 1.0 - t};
  }
  // Leave-one-out maxima via prefix/suffix folds.
  std::vector<CanonicalForm> prefix(xs.begin(), xs.end());
  std::vector<CanonicalForm> suffix(xs.begin(), xs.end());
  for (size_t t = 1; t < k; ++t)
    prefix[t] = statistical_max(prefix[t - 1], xs[t], diag);
  for (size_t t = k - 1; t-- > 0;)
    suffix[t] = statistical_max(suffix[t + 1], xs[t], diag);
  std::vector<double> tp(k, 0.0);
  double sum = 0.0;
  for (size_t t = 0; t < k; ++t) {
    double p;
    if (t == 0) {
      p = tightness_probability(xs[0], suffix[1]);
    } else if (t + 1 == k) {
      p = tightness_probability(xs[k - 1], prefix[k - 2]);
    } else {
      const CanonicalForm others =
          statistical_max(prefix[t - 1], suffix[t + 1], diag);
      p = tightness_probability(xs[t], others);
    }
    tp[t] = p;
    sum += p;
  }
  if (sum > 0.0)
    for (double& p : tp) p /= sum;
  else
    for (double& p : tp) p = 1.0 / static_cast<double>(k);
  return tp;
}

}  // namespace hssta::timing
