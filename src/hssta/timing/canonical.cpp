#include "hssta/timing/canonical.hpp"

#include <cmath>

#include "hssta/stats/normal.hpp"
#include "hssta/util/error.hpp"

namespace hssta::timing {

CanonicalForm CanonicalForm::constant(double value, size_t dim) {
  CanonicalForm f(dim);
  f.nominal_ = value;
  return f;
}

void CanonicalForm::set_random(double r) {
  HSSTA_REQUIRE(r >= 0.0, "random coefficient must be non-negative");
  random_ = r;
}

void CanonicalForm::add_random_rss(double r) {
  HSSTA_REQUIRE(r >= 0.0, "random coefficient must be non-negative");
  random_ = std::sqrt(random_ * random_ + r * r);
}

double CanonicalForm::sigma() const { return std::sqrt(variance()); }

double CanonicalForm::correlation(const CanonicalForm& other) const {
  const double va = variance();
  const double vb = other.variance();
  if (va == 0.0 || vb == 0.0) return 0.0;
  return covariance(other) / std::sqrt(va * vb);
}

double CanonicalForm::quantile(double p) const {
  return nominal_ + sigma() * stats::normal_quantile(p);
}

double CanonicalForm::cdf(double x) const {
  const double s = sigma();
  if (s == 0.0) return x >= nominal_ ? 1.0 : 0.0;
  return stats::normal_cdf((x - nominal_) / s);
}

void CanonicalForm::scale(double s) {
  HSSTA_REQUIRE(s >= 0.0, "canonical forms scale by non-negative factors");
  nominal_ *= s;
  for (double& c : corr_) c *= s;
  random_ *= s;
}

double CanonicalForm::evaluate(std::span<const double> y, double xr) const {
  HSSTA_REQUIRE(y.size() == corr_.size(),
                "evaluation point has wrong dimension");
  double acc = nominal_ + random_ * xr;
  for (size_t i = 0; i < corr_.size(); ++i) acc += corr_[i] * y[i];
  return acc;
}

}  // namespace hssta::timing
