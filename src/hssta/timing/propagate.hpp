/// \file propagate.hpp
/// Block-based arrival-time propagation (paper Section II): a single
/// topological sweep folding statistical sum along edges and statistical
/// max at multi-fanin vertices. The backward variant computes, for one
/// sink, the maximum remaining delay from every vertex to that sink — the
/// "required time" ingredient of the criticality computation (Section IV.B).

#pragma once

#include <span>
#include <vector>

#include "hssta/exec/executor.hpp"
#include "hssta/timing/graph.hpp"
#include "hssta/timing/statops.hpp"

namespace hssta::timing {

/// Decide whether a sweep should fan out across the vertices of each level
/// instead of leaving the parallelism to `outer_items` independent outer
/// work units (per-input propagations, per-sample evaluations, ...).
///  * kOff, or a serial executor, never level-parallelizes;
///  * kOn always does;
///  * kAuto does when the outer fan-out cannot occupy the executor
///    (outer_items < 2 * concurrency) and the graph is wide enough for
///    per-level regions to pay off (mean level width >= 16).
[[nodiscard]] bool use_level_parallel(const LevelStructure& ls,
                                      size_t concurrency, LevelParallel mode,
                                      size_t outer_items = 1);

/// Same decision from the graph. Builds the levelization only when the
/// answer can depend on it (kAuto with a concurrent executor), so kOff /
/// serial callers pay nothing for asking.
[[nodiscard]] bool use_level_parallel(const TimingGraph& g,
                                      size_t concurrency, LevelParallel mode,
                                      size_t outer_items = 1);

/// Levels narrower than this run inline on the calling thread even in a
/// level-parallel sweep (see exec::run_maybe_parallel) — identical results,
/// no pool round-trip for the long skinny head/tail of a circuit.
inline constexpr size_t kMinLevelFanOut = 16;

/// Drive one level-synchronous sweep: iterate the buckets front to back
/// (forward sweeps) or back to front (backward sweeps) and fan each level
/// out across `ex`; levels narrower than kMinLevelFanOut run inline.
/// `fn(v, ws)` must only write state owned by vertex v — within-level
/// vertices share no edges, so that makes the schedule race-free.
///
/// `cost_of(v)` estimates the canonical-op cost of one vertex (a sweep
/// typically charges fanin-or-fanout count x coefficient dimension); wide
/// levels are chunked by that cost via exec::parallel_for_costed instead
/// of by vertex count, so one heavy multi-fanin vertex no longer straggles
/// its level behind a worker that also drew the rest of a uniform chunk.
/// Chunking is a pure schedule choice — per-vertex arithmetic is
/// untouched, so results stay bit-identical. The one place every sweep's
/// bucket iteration lives, so schedule changes land everywhere at once.
template <typename Cost, typename Fn>
void for_each_level(const LevelStructure& ls, exec::Executor& ex,
                    bool front_to_back, Cost&& cost_of, Fn&& fn) {
  const size_t num_levels = ls.num_levels();
  std::vector<uint64_t> costs;  // recycled across levels
  for (size_t step = 0; step < num_levels; ++step) {
    const std::span<const VertexId> bucket =
        ls.bucket(front_to_back ? step : num_levels - 1 - step);
    const auto task = [&](size_t k, exec::Workspace& ws) {
      fn(bucket[k], ws);
    };
    if (ex.concurrency() > 1 && bucket.size() >= kMinLevelFanOut) {
      costs.clear();
      costs.reserve(bucket.size());
      for (const VertexId v : bucket)
        costs.push_back(static_cast<uint64_t>(cost_of(v)));
      exec::parallel_for_costed(ex, costs, task);
    } else {
      exec::run_maybe_parallel(ex, bucket.size(), kMinLevelFanOut, task);
    }
  }
}

/// Per-vertex canonical times as a FormBank — one contiguous
/// [num_vertex_slots x (dim+2)] row-major matrix, row v holding vertex v's
/// form — so sweeps walk memory linearly and fold rows in place with the
/// span kernels of statops.hpp (no allocation per folded edge). `valid[v]`
/// is false for vertices that no source reaches (forward) or that cannot
/// reach the sink (backward); the row of an invalid vertex is a zero form.
struct PropagationResult {
  FormBank time;  ///< rows indexed by VertexId slot
  std::vector<uint8_t> valid;
  MaxDiagnostics diagnostics;

  [[nodiscard]] bool is_valid(VertexId v) const { return valid[v] != 0; }
  /// Raw row view of vertex v's time (no validity check; hot-path access).
  [[nodiscard]] ConstFormView view(VertexId v) const { return time.row(v); }
  /// Vertex v's time materialized as a boundary CanonicalForm; throws when
  /// v is unreached.
  [[nodiscard]] CanonicalForm at(VertexId v) const;
};

/// Forward arrival propagation from `sources` (each injected at arrival 0).
/// An empty span means "all input ports" — the ordinary full-circuit case.
[[nodiscard]] PropagationResult propagate_arrivals(
    const TimingGraph& g, std::span<const VertexId> sources = {});

/// Workspace-reuse variant: overwrites `r` in place, recycling its vertex
/// and coefficient buffers. The per-input loops of the compute layer
/// (all-pairs IO delays, criticality) keep one PropagationResult per worker
/// thread so repeated propagations allocate nothing after warm-up. Results
/// are identical to propagate_arrivals.
void propagate_arrivals_into(const TimingGraph& g,
                             std::span<const VertexId> sources,
                             PropagationResult& r);

/// Level-synchronous variant: sweeps g.levels() front to back and fans the
/// vertices of each level out across `ex` (within-level vertices share no
/// edges, so each one folds its fanin independently). Bit-identical to the
/// serial sweep at every thread count — per-vertex arithmetic is unchanged
/// and the diagnostics counters merge by integer sum. `mode` kAuto falls
/// back to the serial sweep for narrow graphs or serial executors.
void propagate_arrivals_into(const TimingGraph& g,
                             std::span<const VertexId> sources,
                             PropagationResult& r, exec::Executor& ex,
                             LevelParallel mode = LevelParallel::kAuto);

/// Backward "required time" ingredient: time[v] = statistical max delay
/// from v to any of `sinks` over all live paths (an empty span means "all
/// output ports"); time[sink] = 0, valid[v] false when v reaches no sink.
/// This is the remaining-delay pass of compute_slack and of the per-sink
/// criticality machinery.
void propagate_required_into(const TimingGraph& g,
                             std::span<const VertexId> sinks,
                             PropagationResult& r);

/// Level-synchronous variant of the backward pass (levels back to front);
/// same bit-identity contract as the forward overload.
void propagate_required_into(const TimingGraph& g,
                             std::span<const VertexId> sinks,
                             PropagationResult& r, exec::Executor& ex,
                             LevelParallel mode = LevelParallel::kAuto);

/// Backward propagation: time[v] = statistical max delay from v to `sink`
/// over all live paths; time[sink] = 0.
[[nodiscard]] PropagationResult propagate_to_sink(const TimingGraph& g,
                                                  VertexId sink);

/// Statistical max of the arrival times over all output ports (the module /
/// design delay distribution). Throws if no output is reached.
[[nodiscard]] CanonicalForm circuit_delay(const TimingGraph& g,
                                          const PropagationResult& arrivals,
                                          MaxDiagnostics* diag = nullptr);

/// --- legacy per-vertex reference engine ----------------------------------
/// The pre-FormBank storage and fold: one heap CanonicalForm per vertex, a
/// fresh coefficient vector allocated by every pairwise max. Kept (serial
/// only) as the oracle the flat engine is pinned against — the differential
/// fuzz harness and the propagate bench both assert bit-identity between
/// the two, so a kernel or layout regression in the flat path cannot land
/// silently. Not for production use: this is exactly the allocation-bound
/// code path the FormBank rewrite retired.
struct LegacyPropagation {
  std::vector<CanonicalForm> time;  ///< indexed by VertexId slot
  std::vector<uint8_t> valid;
  MaxDiagnostics diagnostics;
};

[[nodiscard]] LegacyPropagation legacy_propagate_arrivals(
    const TimingGraph& g, std::span<const VertexId> sources = {});

[[nodiscard]] LegacyPropagation legacy_propagate_required(
    const TimingGraph& g, std::span<const VertexId> sinks = {});

}  // namespace hssta::timing
