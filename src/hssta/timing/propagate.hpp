/// \file propagate.hpp
/// Block-based arrival-time propagation (paper Section II): a single
/// topological sweep folding statistical sum along edges and statistical
/// max at multi-fanin vertices. The backward variant computes, for one
/// sink, the maximum remaining delay from every vertex to that sink — the
/// "required time" ingredient of the criticality computation (Section IV.B).

#pragma once

#include <span>
#include <vector>

#include "hssta/timing/graph.hpp"
#include "hssta/timing/statops.hpp"

namespace hssta::timing {

/// Per-vertex canonical times; `valid[v]` is false for vertices that no
/// source reaches (forward) or that cannot reach the sink (backward).
struct PropagationResult {
  std::vector<CanonicalForm> time;  ///< indexed by VertexId slot
  std::vector<uint8_t> valid;
  MaxDiagnostics diagnostics;

  [[nodiscard]] bool is_valid(VertexId v) const { return valid[v] != 0; }
  [[nodiscard]] const CanonicalForm& at(VertexId v) const;
};

/// Forward arrival propagation from `sources` (each injected at arrival 0).
/// An empty span means "all input ports" — the ordinary full-circuit case.
[[nodiscard]] PropagationResult propagate_arrivals(
    const TimingGraph& g, std::span<const VertexId> sources = {});

/// Workspace-reuse variant: overwrites `r` in place, recycling its vertex
/// and coefficient buffers. The per-input loops of the compute layer
/// (all-pairs IO delays, criticality) keep one PropagationResult per worker
/// thread so repeated propagations allocate nothing after warm-up. Results
/// are identical to propagate_arrivals.
void propagate_arrivals_into(const TimingGraph& g,
                             std::span<const VertexId> sources,
                             PropagationResult& r);

/// Backward propagation: time[v] = statistical max delay from v to `sink`
/// over all live paths; time[sink] = 0.
[[nodiscard]] PropagationResult propagate_to_sink(const TimingGraph& g,
                                                  VertexId sink);

/// Statistical max of the arrival times over all output ports (the module /
/// design delay distribution). Throws if no output is reached.
[[nodiscard]] CanonicalForm circuit_delay(const TimingGraph& g,
                                          const PropagationResult& arrivals,
                                          MaxDiagnostics* diag = nullptr);

}  // namespace hssta::timing
