/// \file sta.hpp
/// Deterministic static timing analysis over the same timing graph:
///  * scalar longest path for a concrete per-edge delay assignment (the
///    inner loop of every Monte Carlo engine);
///  * nominal and sigma-corner analysis (each edge at a0 + k * sigma_edge),
///    the classical corner methodology whose pessimism motivates SSTA
///    (paper Section I).

#pragma once

#include <span>
#include <vector>

#include "hssta/exec/executor.hpp"
#include "hssta/timing/graph.hpp"

namespace hssta::timing {

/// Scalar arrival times from a longest-path sweep.
struct ScalarArrivals {
  std::vector<double> time;   ///< indexed by VertexId slot
  std::vector<uint8_t> valid;

  /// Maximum over the graph's output ports; throws if none reached.
  [[nodiscard]] double max_over_outputs(const TimingGraph& g) const;
};

/// Longest path with explicit per-edge delays (indexed by EdgeId slot).
/// Empty `sources` means all input ports.
[[nodiscard]] ScalarArrivals longest_path(
    const TimingGraph& g, std::span<const double> edge_delays,
    std::span<const VertexId> sources = {});

/// Level-synchronous variant: fans each level's vertices out across `ex`
/// (kAuto falls back to the serial sweep for narrow graphs or serial
/// executors). Bit-identical to the serial sweep at every thread count.
[[nodiscard]] ScalarArrivals longest_path(
    const TimingGraph& g, std::span<const double> edge_delays,
    std::span<const VertexId> sources, exec::Executor& ex,
    LevelParallel mode = LevelParallel::kAuto);

/// The deterministic required-time pass: required[v] = the latest time v
/// may switch such that every output still meets `required_at_outputs`,
/// i.e. the min over fanout of required[to] - delay (outputs themselves
/// clamp at required_at_outputs). valid[v] is false for vertices that reach
/// no output. Scalar slack is required - arrival; the vertices with slack 0
/// under nominal delays form the critical path(s).
[[nodiscard]] ScalarArrivals required_times(
    const TimingGraph& g, std::span<const double> edge_delays,
    double required_at_outputs);

/// Level-synchronous variant of the required-time pass (levels back to
/// front); same bit-identity contract as the forward overload.
[[nodiscard]] ScalarArrivals required_times(
    const TimingGraph& g, std::span<const double> edge_delays,
    double required_at_outputs, exec::Executor& ex,
    LevelParallel mode = LevelParallel::kAuto);

/// Per-edge delays at nominal + k * sigma (k = 0: nominal STA; k = 3: the
/// classical worst corner, deliberately correlation-blind).
[[nodiscard]] std::vector<double> corner_edge_delays(const TimingGraph& g,
                                                     double k_sigma);

/// Circuit delay at a sigma corner.
[[nodiscard]] double corner_delay(const TimingGraph& g, double k_sigma);

}  // namespace hssta::timing
