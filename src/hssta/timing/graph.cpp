#include "hssta/timing/graph.hpp"

#include <algorithm>

#include "hssta/util/error.hpp"

namespace hssta::timing {

size_t LevelStructure::max_width() const {
  size_t best = 0;
  for (size_t l = 0; l < num_levels(); ++l)
    best = std::max(best, offsets[l + 1] - offsets[l]);
  return best;
}

double LevelStructure::mean_width() const {
  const size_t n = num_levels();
  return n == 0 ? 0.0
               : static_cast<double>(order.size()) / static_cast<double>(n);
}

TimingGraph::TimingGraph(
    std::shared_ptr<const variation::VariationSpace> space)
    : space_(std::move(space)) {
  HSSTA_REQUIRE(space_ != nullptr, "timing graph needs a variation space");
  dim_ = space_->dim();
}

TimingGraph::TimingGraph(size_t dim) : dim_(dim) {}

TimingGraph::TimingGraph(const TimingGraph& other)
    : space_(other.space_),
      dim_(other.dim_),
      vertices_(other.vertices_),
      edges_(other.edges_),
      vertex_alive_(other.vertex_alive_),
      edge_alive_(other.edge_alive_),
      inputs_(other.inputs_),
      outputs_(other.outputs_),
      live_vertices_(other.live_vertices_),
      live_edges_(other.live_edges_),
      levels_(other.cached_levels()) {}

TimingGraph& TimingGraph::operator=(const TimingGraph& other) {
  if (this == &other) return *this;
  space_ = other.space_;
  dim_ = other.dim_;
  vertices_ = other.vertices_;
  edges_ = other.edges_;
  vertex_alive_ = other.vertex_alive_;
  edge_alive_ = other.edge_alive_;
  inputs_ = other.inputs_;
  outputs_ = other.outputs_;
  live_vertices_ = other.live_vertices_;
  live_edges_ = other.live_edges_;
  levels_ = other.cached_levels();
  return *this;
}

TimingGraph::TimingGraph(TimingGraph&& other) noexcept
    : space_(std::move(other.space_)),
      dim_(other.dim_),
      vertices_(std::move(other.vertices_)),
      edges_(std::move(other.edges_)),
      vertex_alive_(std::move(other.vertex_alive_)),
      edge_alive_(std::move(other.edge_alive_)),
      inputs_(std::move(other.inputs_)),
      outputs_(std::move(other.outputs_)),
      live_vertices_(other.live_vertices_),
      live_edges_(other.live_edges_),
      levels_(std::move(other.levels_)) {}

TimingGraph& TimingGraph::operator=(TimingGraph&& other) noexcept {
  if (this == &other) return *this;
  space_ = std::move(other.space_);
  dim_ = other.dim_;
  vertices_ = std::move(other.vertices_);
  edges_ = std::move(other.edges_);
  vertex_alive_ = std::move(other.vertex_alive_);
  edge_alive_ = std::move(other.edge_alive_);
  inputs_ = std::move(other.inputs_);
  outputs_ = std::move(other.outputs_);
  live_vertices_ = other.live_vertices_;
  live_edges_ = other.live_edges_;
  levels_ = std::move(other.levels_);
  return *this;
}

void TimingGraph::reset_space(
    std::shared_ptr<const variation::VariationSpace> space) {
  HSSTA_REQUIRE(space != nullptr, "reset_space: null variation space");
  HSSTA_REQUIRE(space->dim() == dim_,
                "reset_space: the new space changes the coefficient "
                "dimension");
  space_ = std::move(space);
}

void TimingGraph::invalidate_levels() {
  const std::lock_guard<std::mutex> lock(levels_mu_);
  levels_.reset();
}

VertexId TimingGraph::add_vertex(std::string name, bool is_input,
                                 bool is_output) {
  const VertexId v = static_cast<VertexId>(vertices_.size());
  vertices_.push_back(TimingVertex{std::move(name), is_input, is_output,
                                   {}, {}});
  vertex_alive_.push_back(1);
  ++live_vertices_;
  if (is_input) inputs_.push_back(v);
  if (is_output) outputs_.push_back(v);
  invalidate_levels();
  return v;
}

EdgeId TimingGraph::add_edge(VertexId from, VertexId to, CanonicalForm delay) {
  HSSTA_REQUIRE(vertex_alive(from) && vertex_alive(to),
                "edge endpoints must be live vertices");
  HSSTA_REQUIRE(from != to, "self-loop edge");
  HSSTA_REQUIRE(delay.dim() == dim_, "edge delay dimension mismatch");
  HSSTA_REQUIRE(!vertices_[to].is_input, "edges may not enter an input port");
  const EdgeId e = static_cast<EdgeId>(edges_.size());
  edges_.push_back(TimingEdge{from, to, std::move(delay)});
  edge_alive_.push_back(1);
  ++live_edges_;
  vertices_[from].fanout.push_back(e);
  vertices_[to].fanin.push_back(e);
  invalidate_levels();
  return e;
}

void TimingGraph::remove_edge(EdgeId e) {
  HSSTA_REQUIRE(edge_alive(e), "removing a dead edge");
  const TimingEdge& te = edges_[e];
  auto detach = [e](std::vector<EdgeId>& list) {
    const auto it = std::find(list.begin(), list.end(), e);
    HSSTA_ASSERT(it != list.end(), "edge missing from adjacency");
    list.erase(it);
  };
  detach(vertices_[te.from].fanout);
  detach(vertices_[te.to].fanin);
  edge_alive_[e] = 0;
  --live_edges_;
  invalidate_levels();
}

void TimingGraph::remove_vertex(VertexId v) {
  HSSTA_REQUIRE(vertex_alive(v), "removing a dead vertex");
  const TimingVertex& tv = vertices_[v];
  HSSTA_REQUIRE(!tv.is_input && !tv.is_output, "ports cannot be removed");
  HSSTA_REQUIRE(tv.fanin.empty() && tv.fanout.empty(),
                "vertex still has live edges");
  vertex_alive_[v] = 0;
  --live_vertices_;
  invalidate_levels();
}

bool TimingGraph::vertex_alive(VertexId v) const {
  return v < vertices_.size() && vertex_alive_[v] != 0;
}

bool TimingGraph::edge_alive(EdgeId e) const {
  return e < edges_.size() && edge_alive_[e] != 0;
}

TimingVertex& TimingGraph::vertex(VertexId v) {
  HSSTA_REQUIRE(vertex_alive(v), "access to dead vertex");
  return vertices_[v];
}

const TimingVertex& TimingGraph::vertex(VertexId v) const {
  HSSTA_REQUIRE(vertex_alive(v), "access to dead vertex");
  return vertices_[v];
}

TimingEdge& TimingGraph::edge(EdgeId e) {
  HSSTA_REQUIRE(edge_alive(e), "access to dead edge");
  return edges_[e];
}

const TimingEdge& TimingGraph::edge(EdgeId e) const {
  HSSTA_REQUIRE(edge_alive(e), "access to dead edge");
  return edges_[e];
}

VertexId TimingGraph::find_vertex(const std::string& name) const {
  for (VertexId v = 0; v < vertices_.size(); ++v)
    if (vertex_alive_[v] && vertices_[v].name == name) return v;
  return kNoVertex;
}

std::vector<VertexId> TimingGraph::topo_order() const {
  std::vector<size_t> pending(vertices_.size(), 0);
  std::vector<VertexId> ready;
  ready.reserve(live_vertices_);
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (!vertex_alive_[v]) continue;
    pending[v] = vertices_[v].fanin.size();
    if (pending[v] == 0) ready.push_back(v);
  }
  std::vector<VertexId> order;
  order.reserve(live_vertices_);
  for (size_t head = 0; head < ready.size(); ++head) {
    const VertexId v = ready[head];
    order.push_back(v);
    for (EdgeId e : vertices_[v].fanout) {
      const VertexId w = edges_[e].to;
      HSSTA_ASSERT(pending[w] > 0, "topo underflow");
      if (--pending[w] == 0) ready.push_back(w);
    }
  }
  HSSTA_REQUIRE(order.size() == live_vertices_,
                "timing graph contains a cycle");
  return order;
}

std::shared_ptr<const LevelStructure> TimingGraph::cached_levels() const {
  const std::lock_guard<std::mutex> lock(levels_mu_);
  return levels_;
}

std::shared_ptr<const LevelStructure> TimingGraph::levels() const {
  const std::lock_guard<std::mutex> lock(levels_mu_);
  if (levels_) return levels_;

  auto ls = std::make_shared<LevelStructure>();
  ls->order = topo_order();  // throws on cycles before any state is touched
  ls->level_of.assign(vertices_.size(), kNoLevel);
  for (VertexId v : ls->order) {
    uint32_t level = 0;
    for (EdgeId e : vertices_[v].fanin) {
      const uint32_t from_level = ls->level_of[edges_[e].from];
      HSSTA_ASSERT(from_level != kNoLevel, "levelization out of order");
      level = std::max(level, from_level + 1);
    }
    ls->level_of[v] = level;
  }
  // Kahn's ready queue pops levels in nondecreasing order (a vertex of
  // level l+1 is enqueued while level <= l pops are still draining), so the
  // buckets are contiguous runs of `order`.
  ls->offsets.push_back(0);
  for (size_t k = 1; k < ls->order.size(); ++k) {
    const uint32_t prev = ls->level_of[ls->order[k - 1]];
    const uint32_t cur = ls->level_of[ls->order[k]];
    HSSTA_ASSERT(cur >= prev, "topo order not level-sorted");
    if (cur != prev) ls->offsets.push_back(k);
  }
  if (!ls->order.empty()) ls->offsets.push_back(ls->order.size());

  levels_ = std::move(ls);
  return levels_;
}

std::vector<uint8_t> TimingGraph::reachable_from(VertexId v) const {
  HSSTA_REQUIRE(vertex_alive(v), "reachability from dead vertex");
  std::vector<uint8_t> seen(vertices_.size(), 0);
  std::vector<VertexId> stack{v};
  seen[v] = 1;
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    for (EdgeId e : vertices_[u].fanout) {
      const VertexId w = edges_[e].to;
      if (!seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

std::vector<uint8_t> TimingGraph::reaches(VertexId v) const {
  HSSTA_REQUIRE(vertex_alive(v), "reachability to dead vertex");
  std::vector<uint8_t> seen(vertices_.size(), 0);
  std::vector<VertexId> stack{v};
  seen[v] = 1;
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    for (EdgeId e : vertices_[u].fanin) {
      const VertexId w = edges_[e].from;
      if (!seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

void TimingGraph::validate() const {
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (!edge_alive_[e]) continue;
    const TimingEdge& te = edges_[e];
    HSSTA_REQUIRE(vertex_alive(te.from) && vertex_alive(te.to),
                  "live edge with dead endpoint");
    const auto& fo = vertices_[te.from].fanout;
    const auto& fi = vertices_[te.to].fanin;
    HSSTA_REQUIRE(std::find(fo.begin(), fo.end(), e) != fo.end(),
                  "edge missing from fanout adjacency");
    HSSTA_REQUIRE(std::find(fi.begin(), fi.end(), e) != fi.end(),
                  "edge missing from fanin adjacency");
  }
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (!vertex_alive_[v]) continue;
    const TimingVertex& tv = vertices_[v];
    if (tv.is_input)
      HSSTA_REQUIRE(tv.fanin.empty(), "input port with fanin: " + tv.name);
    for (EdgeId e : tv.fanin)
      HSSTA_REQUIRE(edge_alive(e) && edges_[e].to == v,
                    "stale fanin adjacency");
    for (EdgeId e : tv.fanout)
      HSSTA_REQUIRE(edge_alive(e) && edges_[e].from == v,
                    "stale fanout adjacency");
  }
  (void)topo_order();  // throws on cycles
}

}  // namespace hssta::timing
