#include "hssta/timing/graph.hpp"

#include <algorithm>

#include "hssta/util/error.hpp"

namespace hssta::timing {

TimingGraph::TimingGraph(
    std::shared_ptr<const variation::VariationSpace> space)
    : space_(std::move(space)) {
  HSSTA_REQUIRE(space_ != nullptr, "timing graph needs a variation space");
  dim_ = space_->dim();
}

TimingGraph::TimingGraph(size_t dim) : dim_(dim) {}

VertexId TimingGraph::add_vertex(std::string name, bool is_input,
                                 bool is_output) {
  const VertexId v = static_cast<VertexId>(vertices_.size());
  vertices_.push_back(TimingVertex{std::move(name), is_input, is_output,
                                   {}, {}});
  vertex_alive_.push_back(1);
  ++live_vertices_;
  if (is_input) inputs_.push_back(v);
  if (is_output) outputs_.push_back(v);
  return v;
}

EdgeId TimingGraph::add_edge(VertexId from, VertexId to, CanonicalForm delay) {
  HSSTA_REQUIRE(vertex_alive(from) && vertex_alive(to),
                "edge endpoints must be live vertices");
  HSSTA_REQUIRE(from != to, "self-loop edge");
  HSSTA_REQUIRE(delay.dim() == dim_, "edge delay dimension mismatch");
  HSSTA_REQUIRE(!vertices_[to].is_input, "edges may not enter an input port");
  const EdgeId e = static_cast<EdgeId>(edges_.size());
  edges_.push_back(TimingEdge{from, to, std::move(delay)});
  edge_alive_.push_back(1);
  ++live_edges_;
  vertices_[from].fanout.push_back(e);
  vertices_[to].fanin.push_back(e);
  return e;
}

void TimingGraph::remove_edge(EdgeId e) {
  HSSTA_REQUIRE(edge_alive(e), "removing a dead edge");
  const TimingEdge& te = edges_[e];
  auto detach = [e](std::vector<EdgeId>& list) {
    const auto it = std::find(list.begin(), list.end(), e);
    HSSTA_ASSERT(it != list.end(), "edge missing from adjacency");
    list.erase(it);
  };
  detach(vertices_[te.from].fanout);
  detach(vertices_[te.to].fanin);
  edge_alive_[e] = 0;
  --live_edges_;
}

void TimingGraph::remove_vertex(VertexId v) {
  HSSTA_REQUIRE(vertex_alive(v), "removing a dead vertex");
  const TimingVertex& tv = vertices_[v];
  HSSTA_REQUIRE(!tv.is_input && !tv.is_output, "ports cannot be removed");
  HSSTA_REQUIRE(tv.fanin.empty() && tv.fanout.empty(),
                "vertex still has live edges");
  vertex_alive_[v] = 0;
  --live_vertices_;
}

bool TimingGraph::vertex_alive(VertexId v) const {
  return v < vertices_.size() && vertex_alive_[v] != 0;
}

bool TimingGraph::edge_alive(EdgeId e) const {
  return e < edges_.size() && edge_alive_[e] != 0;
}

TimingVertex& TimingGraph::vertex(VertexId v) {
  HSSTA_REQUIRE(vertex_alive(v), "access to dead vertex");
  return vertices_[v];
}

const TimingVertex& TimingGraph::vertex(VertexId v) const {
  HSSTA_REQUIRE(vertex_alive(v), "access to dead vertex");
  return vertices_[v];
}

TimingEdge& TimingGraph::edge(EdgeId e) {
  HSSTA_REQUIRE(edge_alive(e), "access to dead edge");
  return edges_[e];
}

const TimingEdge& TimingGraph::edge(EdgeId e) const {
  HSSTA_REQUIRE(edge_alive(e), "access to dead edge");
  return edges_[e];
}

VertexId TimingGraph::find_vertex(const std::string& name) const {
  for (VertexId v = 0; v < vertices_.size(); ++v)
    if (vertex_alive_[v] && vertices_[v].name == name) return v;
  return kNoVertex;
}

std::vector<VertexId> TimingGraph::topo_order() const {
  std::vector<size_t> pending(vertices_.size(), 0);
  std::vector<VertexId> ready;
  ready.reserve(live_vertices_);
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (!vertex_alive_[v]) continue;
    pending[v] = vertices_[v].fanin.size();
    if (pending[v] == 0) ready.push_back(v);
  }
  std::vector<VertexId> order;
  order.reserve(live_vertices_);
  for (size_t head = 0; head < ready.size(); ++head) {
    const VertexId v = ready[head];
    order.push_back(v);
    for (EdgeId e : vertices_[v].fanout) {
      const VertexId w = edges_[e].to;
      HSSTA_ASSERT(pending[w] > 0, "topo underflow");
      if (--pending[w] == 0) ready.push_back(w);
    }
  }
  HSSTA_REQUIRE(order.size() == live_vertices_,
                "timing graph contains a cycle");
  return order;
}

std::vector<uint8_t> TimingGraph::reachable_from(VertexId v) const {
  HSSTA_REQUIRE(vertex_alive(v), "reachability from dead vertex");
  std::vector<uint8_t> seen(vertices_.size(), 0);
  std::vector<VertexId> stack{v};
  seen[v] = 1;
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    for (EdgeId e : vertices_[u].fanout) {
      const VertexId w = edges_[e].to;
      if (!seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

std::vector<uint8_t> TimingGraph::reaches(VertexId v) const {
  HSSTA_REQUIRE(vertex_alive(v), "reachability to dead vertex");
  std::vector<uint8_t> seen(vertices_.size(), 0);
  std::vector<VertexId> stack{v};
  seen[v] = 1;
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    for (EdgeId e : vertices_[u].fanin) {
      const VertexId w = edges_[e].from;
      if (!seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

void TimingGraph::validate() const {
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (!edge_alive_[e]) continue;
    const TimingEdge& te = edges_[e];
    HSSTA_REQUIRE(vertex_alive(te.from) && vertex_alive(te.to),
                  "live edge with dead endpoint");
    const auto& fo = vertices_[te.from].fanout;
    const auto& fi = vertices_[te.to].fanin;
    HSSTA_REQUIRE(std::find(fo.begin(), fo.end(), e) != fo.end(),
                  "edge missing from fanout adjacency");
    HSSTA_REQUIRE(std::find(fi.begin(), fi.end(), e) != fi.end(),
                  "edge missing from fanin adjacency");
  }
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (!vertex_alive_[v]) continue;
    const TimingVertex& tv = vertices_[v];
    if (tv.is_input)
      HSSTA_REQUIRE(tv.fanin.empty(), "input port with fanin: " + tv.name);
    for (EdgeId e : tv.fanin)
      HSSTA_REQUIRE(edge_alive(e) && edges_[e].to == v,
                    "stale fanin adjacency");
    for (EdgeId e : tv.fanout)
      HSSTA_REQUIRE(edge_alive(e) && edges_[e].from == v,
                    "stale fanout adjacency");
  }
  (void)topo_order();  // throws on cycles
}

}  // namespace hssta::timing
