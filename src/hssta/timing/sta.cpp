#include "hssta/timing/sta.hpp"

#include <algorithm>

#include "hssta/util/error.hpp"

namespace hssta::timing {

double ScalarArrivals::max_over_outputs(const TimingGraph& g) const {
  bool has = false;
  double best = 0.0;
  for (VertexId v : g.outputs()) {
    if (!valid[v]) continue;
    best = has ? std::max(best, time[v]) : time[v];
    has = true;
  }
  HSSTA_REQUIRE(has, "no output port was reached");
  return best;
}

ScalarArrivals longest_path(const TimingGraph& g,
                            std::span<const double> edge_delays,
                            std::span<const VertexId> sources) {
  HSSTA_REQUIRE(edge_delays.size() == g.num_edge_slots(),
                "need one delay per edge slot");
  ScalarArrivals r;
  r.time.assign(g.num_vertex_slots(), 0.0);
  r.valid.assign(g.num_vertex_slots(), 0);
  if (sources.empty()) {
    for (VertexId v : g.inputs()) r.valid[v] = 1;
  } else {
    for (VertexId v : sources) {
      HSSTA_REQUIRE(g.vertex_alive(v), "longest-path source is dead");
      r.valid[v] = 1;
    }
  }
  for (VertexId v : g.topo_order()) {
    bool has = r.valid[v] != 0;
    double best = r.time[v];
    for (EdgeId e : g.vertex(v).fanin) {
      const TimingEdge& te = g.edge(e);
      if (!r.valid[te.from]) continue;
      const double cand = r.time[te.from] + edge_delays[e];
      best = has ? std::max(best, cand) : cand;
      has = true;
    }
    r.time[v] = best;
    r.valid[v] = has ? 1 : 0;
  }
  return r;
}

std::vector<double> corner_edge_delays(const TimingGraph& g, double k_sigma) {
  std::vector<double> d(g.num_edge_slots(), 0.0);
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    if (!g.edge_alive(e)) continue;
    const CanonicalForm& c = g.edge(e).delay;
    d[e] = c.nominal() + k_sigma * c.sigma();
  }
  return d;
}

double corner_delay(const TimingGraph& g, double k_sigma) {
  const auto delays = corner_edge_delays(g, k_sigma);
  return longest_path(g, delays).max_over_outputs(g);
}

}  // namespace hssta::timing
