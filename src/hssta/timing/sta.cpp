#include "hssta/timing/sta.hpp"

#include <algorithm>

#include "hssta/timing/propagate.hpp"
#include "hssta/util/error.hpp"

namespace hssta::timing {

namespace {

/// Forward scalar relax shared by the serial and level-synchronous sweeps.
inline void relax_scalar_fanin(const TimingGraph& g, VertexId v,
                               std::span<const double> edge_delays,
                               ScalarArrivals& r) {
  bool has = r.valid[v] != 0;
  double best = r.time[v];
  for (EdgeId e : g.vertex(v).fanin) {
    const TimingEdge& te = g.edge(e);
    if (!r.valid[te.from]) continue;
    const double cand = r.time[te.from] + edge_delays[e];
    best = has ? std::max(best, cand) : cand;
    has = true;
  }
  r.time[v] = best;
  r.valid[v] = has ? 1 : 0;
}

/// Backward scalar relax: required[v] = min over fanout of required[to] -
/// delay, clamped at the output deadline when v is itself an output port.
inline void relax_scalar_fanout(const TimingGraph& g, VertexId v,
                                std::span<const double> edge_delays,
                                ScalarArrivals& r) {
  bool has = r.valid[v] != 0;  // output ports are seeded at the deadline
  double best = r.time[v];
  for (EdgeId e : g.vertex(v).fanout) {
    const TimingEdge& te = g.edge(e);
    if (!r.valid[te.to]) continue;
    const double cand = r.time[te.to] - edge_delays[e];
    best = has ? std::min(best, cand) : cand;
    has = true;
  }
  r.time[v] = best;
  r.valid[v] = has ? 1 : 0;
}

void reset_scalar(const TimingGraph& g, ScalarArrivals& r) {
  r.time.assign(g.num_vertex_slots(), 0.0);
  r.valid.assign(g.num_vertex_slots(), 0);
}

void seed_sources(const TimingGraph& g, std::span<const VertexId> sources,
                  ScalarArrivals& r) {
  if (sources.empty()) {
    for (VertexId v : g.inputs()) r.valid[v] = 1;
  } else {
    for (VertexId v : sources) {
      HSSTA_REQUIRE(g.vertex_alive(v), "longest-path source is dead");
      r.valid[v] = 1;
    }
  }
}

void seed_outputs(const TimingGraph& g, double required_at_outputs,
                  ScalarArrivals& r) {
  for (VertexId v : g.outputs()) {
    r.time[v] = required_at_outputs;
    r.valid[v] = 1;
  }
}

}  // namespace

double ScalarArrivals::max_over_outputs(const TimingGraph& g) const {
  bool has = false;
  double best = 0.0;
  for (VertexId v : g.outputs()) {
    if (!valid[v]) continue;
    best = has ? std::max(best, time[v]) : time[v];
    has = true;
  }
  HSSTA_REQUIRE(has, "no output port was reached");
  return best;
}

ScalarArrivals longest_path(const TimingGraph& g,
                            std::span<const double> edge_delays,
                            std::span<const VertexId> sources) {
  HSSTA_REQUIRE(edge_delays.size() == g.num_edge_slots(),
                "need one delay per edge slot");
  ScalarArrivals r;
  reset_scalar(g, r);
  seed_sources(g, sources, r);
  for (VertexId v : g.topo_order()) relax_scalar_fanin(g, v, edge_delays, r);
  return r;
}

ScalarArrivals longest_path(const TimingGraph& g,
                            std::span<const double> edge_delays,
                            std::span<const VertexId> sources,
                            exec::Executor& ex, LevelParallel mode) {
  if (!use_level_parallel(g, ex.concurrency(), mode))
    return longest_path(g, edge_delays, sources);
  const std::shared_ptr<const LevelStructure> ls = g.levels();
  HSSTA_REQUIRE(edge_delays.size() == g.num_edge_slots(),
                "need one delay per edge slot");
  ScalarArrivals r;
  reset_scalar(g, r);
  seed_sources(g, sources, r);
  const exec::Executor::Exclusive scope(ex);
  for_each_level(*ls, ex, /*front_to_back=*/true,
                 [&](VertexId v) { return 1 + g.vertex(v).fanin.size(); },
                 [&](VertexId v, exec::Workspace&) {
                   relax_scalar_fanin(g, v, edge_delays, r);
                 });
  return r;
}

ScalarArrivals required_times(const TimingGraph& g,
                              std::span<const double> edge_delays,
                              double required_at_outputs) {
  HSSTA_REQUIRE(edge_delays.size() == g.num_edge_slots(),
                "need one delay per edge slot");
  ScalarArrivals r;
  reset_scalar(g, r);
  seed_outputs(g, required_at_outputs, r);
  std::vector<VertexId> order = g.topo_order();
  std::reverse(order.begin(), order.end());
  for (VertexId v : order) relax_scalar_fanout(g, v, edge_delays, r);
  return r;
}

ScalarArrivals required_times(const TimingGraph& g,
                              std::span<const double> edge_delays,
                              double required_at_outputs, exec::Executor& ex,
                              LevelParallel mode) {
  if (!use_level_parallel(g, ex.concurrency(), mode))
    return required_times(g, edge_delays, required_at_outputs);
  const std::shared_ptr<const LevelStructure> ls = g.levels();
  HSSTA_REQUIRE(edge_delays.size() == g.num_edge_slots(),
                "need one delay per edge slot");
  ScalarArrivals r;
  reset_scalar(g, r);
  seed_outputs(g, required_at_outputs, r);
  const exec::Executor::Exclusive scope(ex);
  for_each_level(*ls, ex, /*front_to_back=*/false,
                 [&](VertexId v) { return 1 + g.vertex(v).fanout.size(); },
                 [&](VertexId v, exec::Workspace&) {
                   relax_scalar_fanout(g, v, edge_delays, r);
                 });
  return r;
}

std::vector<double> corner_edge_delays(const TimingGraph& g, double k_sigma) {
  std::vector<double> d(g.num_edge_slots(), 0.0);
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    if (!g.edge_alive(e)) continue;
    const CanonicalForm& c = g.edge(e).delay;
    d[e] = c.nominal() + k_sigma * c.sigma();
  }
  return d;
}

double corner_delay(const TimingGraph& g, double k_sigma) {
  const auto delays = corner_edge_delays(g, k_sigma);
  return longest_path(g, delays).max_over_outputs(g);
}

}  // namespace hssta::timing
