#include "hssta/exec/executor.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "hssta/util/error.hpp"

namespace hssta::exec {

namespace {

/// Executors whose regions are live on this thread's call stack. Used to
/// reject nested submission (which would deadlock a pool whose run lock is
/// already held, and has no meaningful static-chunk semantics).
thread_local std::vector<const Executor*> tl_active;

class ActiveRegion {
 public:
  explicit ActiveRegion(const Executor* e) { tl_active.push_back(e); }
  ~ActiveRegion() { tl_active.pop_back(); }
  ActiveRegion(const ActiveRegion&) = delete;
  ActiveRegion& operator=(const ActiveRegion&) = delete;
};

void require_not_active(const Executor* e) {
  if (std::find(tl_active.begin(), tl_active.end(), e) != tl_active.end())
    throw Error(
        "executor: nested parallel_for on an executor already running a "
        "region on this call stack");
}

void check_bounds(std::span<const size_t> bounds, size_t max_slots) {
  HSSTA_REQUIRE(bounds.size() >= 2,
                "parallel_for_chunks: need at least one chunk");
  HSSTA_REQUIRE(bounds.front() == 0,
                "parallel_for_chunks: bounds must start at 0");
  for (size_t w = 1; w < bounds.size(); ++w)
    HSSTA_REQUIRE(bounds[w - 1] <= bounds[w],
                  "parallel_for_chunks: bounds must be nondecreasing");
  HSSTA_REQUIRE(bounds.size() - 1 <= max_slots,
                "parallel_for_chunks: more chunks than worker slots");
}

}  // namespace

// --- SerialExecutor ---------------------------------------------------------

void SerialExecutor::parallel_for(size_t n, const Task& task) {
  require_not_active(this);
  const Exclusive scope(*this);
  const ActiveRegion region(this);
  for (size_t i = 0; i < n; ++i) task(i, workspace_);
}

void SerialExecutor::parallel_for_chunks(std::span<const size_t> bounds,
                                         const Task& task) {
  // Any chunk count collapses onto the one serial slot.
  check_bounds(bounds, bounds.size() - 1);
  parallel_for(bounds.back(), task);
}

Workspace& SerialExecutor::workspace(size_t slot) {
  HSSTA_REQUIRE(slot == 0, "serial executor has exactly one workspace");
  return workspace_;
}

// --- ThreadPoolExecutor -----------------------------------------------------

struct ThreadPoolExecutor::Impl {
  explicit Impl(size_t threads)
      : num_threads(threads), workspaces(threads), errors(threads) {}

  const size_t num_threads;
  std::vector<Workspace> workspaces;

  std::mutex m;
  std::condition_variable cv_start;
  std::condition_variable cv_done;
  uint64_t generation = 0;
  size_t job_n = 0;
  size_t job_slots = 0;  ///< worker slots participating in the current job
  /// Caller-provided chunk boundaries (parallel_for_chunks); null for the
  /// uniform static chunks of parallel_for.
  const size_t* job_bounds = nullptr;
  const Task* job_task = nullptr;
  size_t pending = 0;  ///< spawned workers that have not finished the job
  std::vector<std::exception_ptr> errors;  ///< per worker slot
  bool shutdown = false;

  std::vector<std::thread> workers;  ///< slots 1 .. num_threads-1

  void run_chunk(const Executor* self, size_t slot) {
    // Bounds of this slot's chunk: caller-provided or uniform static.
    const size_t begin =
        job_bounds ? job_bounds[slot] : slot * job_n / job_slots;
    const size_t end =
        job_bounds ? job_bounds[slot + 1] : (slot + 1) * job_n / job_slots;
    const ActiveRegion region(self);
    try {
      const Task& task = *job_task;
      Workspace& ws = workspaces[slot];
      for (size_t i = begin; i < end; ++i) task(i, ws);
    } catch (...) {
      errors[slot] = std::current_exception();
    }
  }

  /// Shared driver of parallel_for / parallel_for_chunks: run `slots`
  /// chunks of [0, n) (uniform when `bounds` is null) and rethrow the
  /// lowest-slot failure. Caller holds the Exclusive scope; `bounds` must
  /// outlive the job (both entry points block until it drains).
  void run_job(const Executor* self, size_t n, size_t slots,
               const size_t* bounds, const Task& task) {
    if (slots == 1) {
      // Inline, but with the same chunk bookkeeping (slot 0, whole range).
      {
        std::lock_guard<std::mutex> lock(m);
        job_n = n;
        job_slots = 1;
        job_bounds = bounds;
        job_task = &task;
        errors[0] = nullptr;
      }
      run_chunk(self, 0);
      job_bounds = nullptr;
      if (errors[0]) std::rethrow_exception(errors[0]);
      return;
    }

    {
      std::lock_guard<std::mutex> lock(m);
      job_n = n;
      job_slots = slots;
      job_bounds = bounds;
      job_task = &task;
      pending = num_threads - 1;
      std::fill(errors.begin(), errors.end(), nullptr);
      ++generation;
    }
    cv_start.notify_all();

    run_chunk(self, 0);  // the calling thread is worker slot 0

    {
      std::unique_lock<std::mutex> lock(m);
      cv_done.wait(lock, [&] { return pending == 0; });
      job_task = nullptr;
      job_bounds = nullptr;
    }
    // Rethrow the lowest-slot failure so the surfaced error is
    // deterministic.
    for (size_t slot = 0; slot < num_threads; ++slot)
      if (errors[slot]) std::rethrow_exception(errors[slot]);
  }

  void worker_loop(const Executor* self, size_t slot) {
    uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(m);
        cv_start.wait(lock,
                      [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
      }
      if (slot < job_slots) run_chunk(self, slot);
      {
        std::lock_guard<std::mutex> lock(m);
        if (--pending == 0) cv_done.notify_all();
      }
    }
  }
};

ThreadPoolExecutor::ThreadPoolExecutor(size_t threads)
    : threads_(effective_threads(threads)) {
  impl_ = std::make_unique<Impl>(threads_);
  impl_->workers.reserve(threads_ - 1);
  for (size_t slot = 1; slot < threads_; ++slot)
    impl_->workers.emplace_back(
        [this, slot] { impl_->worker_loop(this, slot); });
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->shutdown = true;
  }
  impl_->cv_start.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

Workspace& ThreadPoolExecutor::workspace(size_t slot) {
  HSSTA_REQUIRE(slot < threads_, "workspace slot out of range");
  return impl_->workspaces[slot];
}

void ThreadPoolExecutor::parallel_for(size_t n, const Task& task) {
  require_not_active(this);
  // Serializes top-level regions from different threads (and nests inside
  // a caller's Exclusive scope on the same thread).
  const Exclusive scope(*this);
  if (n == 0) return;
  impl_->run_job(this, n, std::min(threads_, n), nullptr, task);
}

void ThreadPoolExecutor::parallel_for_chunks(std::span<const size_t> bounds,
                                             const Task& task) {
  require_not_active(this);
  const Exclusive scope(*this);
  check_bounds(bounds, threads_);
  const size_t n = bounds.back();
  if (n == 0) return;
  impl_->run_job(this, n, bounds.size() - 1, bounds.data(), task);
}

// --- helpers ----------------------------------------------------------------

size_t effective_threads(size_t threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

std::shared_ptr<Executor> make_executor(size_t threads) {
  const size_t t = effective_threads(threads);
  if (t <= 1) return std::make_shared<SerialExecutor>();
  return std::make_shared<ThreadPoolExecutor>(t);
}

std::vector<size_t> cost_chunks(std::span<const uint64_t> costs,
                                size_t slots) {
  const size_t n = costs.size();
  slots = std::max<size_t>(1, std::min(slots, std::max<size_t>(n, 1)));
  std::vector<size_t> bounds(slots + 1, 0);
  bounds[slots] = n;
  uint64_t total = 0;
  for (const uint64_t c : costs) total += c;
  if (total == 0) {
    // No cost signal: fall back to parallel_for's uniform chunks.
    for (size_t w = 1; w < slots; ++w) bounds[w] = w * n / slots;
    return bounds;
  }
  // Boundary w lands where the prefix sum first reaches total * w / slots.
  // The walk is monotone, so the whole partition costs one pass.
  size_t idx = 0;
  uint64_t cum = 0;
  for (size_t w = 1; w < slots; ++w) {
    const uint64_t target = total * w / slots;
    while (idx < n && cum < target) cum += costs[idx++];
    bounds[w] = idx;
  }
  return bounds;
}

void parallel_for_costed(Executor& ex, std::span<const uint64_t> costs,
                         const Executor::Task& task) {
  if (ex.concurrency() <= 1) {
    run_maybe_parallel(ex, costs.size(), SIZE_MAX, task);
    return;
  }
  const std::vector<size_t> bounds = cost_chunks(costs, ex.concurrency());
  ex.parallel_for_chunks(bounds, task);
}

void run_maybe_parallel(Executor& ex, size_t n, size_t min_parallel,
                        const Executor::Task& task) {
  if (ex.concurrency() > 1 && n >= min_parallel) {
    ex.parallel_for(n, task);
    return;
  }
  require_not_active(&ex);
  const Executor::Exclusive scope(ex);
  // The inline path is a region too: nested submission on this executor
  // must throw, exactly as parallel_for promises, instead of re-entering
  // workspace slot 0 mid-iteration.
  const ActiveRegion region(&ex);
  Workspace& ws = ex.workspace(0);
  for (size_t i = 0; i < n; ++i) task(i, ws);
}

}  // namespace hssta::exec
