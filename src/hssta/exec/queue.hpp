/// \file queue.hpp
/// exec::BoundedQueue — a small bounded multi-producer queue for
/// producer/consumer pipelines; the serve layer's admission-controlled
/// request queue is the motivating consumer.
///
/// Semantics:
///  * try_push never blocks: it returns kFull when the queue is at
///    capacity and kClosed after close(), so producers turn saturation
///    into an immediate backpressure response instead of queueing
///    unboundedly or stalling their reader;
///  * pop_batch blocks until at least one item is available, then drains
///    up to `max` items in FIFO order — the dispatcher's batching
///    primitive. It returns an empty vector exactly once the queue is
///    closed *and* drained, so a consumer loop naturally processes every
///    item accepted before shutdown;
///  * close() wakes every waiter and fails later pushes; items already
///    accepted stay poppable (graceful drain, never silent drop).

#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "hssta/util/error.hpp"

namespace hssta::exec {

enum class PushResult { kOk, kFull, kClosed };

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    HSSTA_REQUIRE(capacity > 0, "BoundedQueue: capacity must be positive");
  }

  /// Enqueue without blocking; kFull / kClosed are the admission verdicts.
  /// Moves from `item` only on kOk — a rejected item stays with the
  /// caller, which needs it to produce the rejection response.
  [[nodiscard]] PushResult try_push(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return PushResult::kOk;
  }

  /// Block until an item arrives (or the queue closes), then drain up to
  /// `max` items in FIFO order. Empty result == closed and fully drained.
  [[nodiscard]] std::vector<T> pop_batch(size_t max) {
    HSSTA_REQUIRE(max > 0, "BoundedQueue: batch size must be positive");
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    std::vector<T> out;
    const size_t n = items_.size() < max ? items_.size() : max;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out;
  }

  /// Fail later pushes and wake every pop_batch waiter; accepted items
  /// remain poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace hssta::exec
