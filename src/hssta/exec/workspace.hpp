/// \file workspace.hpp
/// Per-thread scratch arena for the compute layer.
///
/// Hot analyses (per-input canonical propagation, criticality backward
/// passes, Monte Carlo edge evaluation) need sizeable scratch buffers. A
/// Workspace owns one lazily constructed instance per scratch type, so a
/// worker thread allocates its buffers once and reuses them across every
/// loop iteration the executor hands it — the allocation cost of a parallel
/// region is O(threads), not O(work items).
///
/// Workspaces are owned by an Executor (one per worker slot) and handed to
/// parallel_for bodies; they are not synchronized — each instance must only
/// ever be touched by the thread the executor assigns it to during a run,
/// and by the caller between runs (e.g. to reset accumulators before a
/// region and merge them afterwards).

#pragma once

#include <memory>
#include <typeindex>
#include <unordered_map>

namespace hssta::exec {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// The workspace's instance of scratch type T, default-constructed on
  /// first use and kept alive for the workspace's lifetime.
  template <typename T>
  [[nodiscard]] T& get() {
    const std::type_index key(typeid(T));
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      it = slots_
               .emplace(key, Slot(new T(),
                                  [](void* p) { delete static_cast<T*>(p); }))
               .first;
    }
    return *static_cast<T*>(it->second.ptr.get());
  }

 private:
  struct Slot {
    Slot(void* p, void (*deleter)(void*)) : ptr(p, deleter) {}
    std::unique_ptr<void, void (*)(void*)> ptr;
  };
  // det-ok: per-thread lookup table, never iterated — order cannot leak.
  std::unordered_map<std::type_index, Slot> slots_;
};

}  // namespace hssta::exec
