/// \file executor.hpp
/// The execution context of the compute layer.
///
/// The paper's cost profile is dominated by embarrassingly parallel loops:
/// one canonical propagation per input port (Section III's all-pairs IO
/// delay matrix), one tightness/backward pass per input (Section IV.B
/// criticality), one scalar evaluation per Monte Carlo sample, one model
/// extraction per module instance (Fig. 5). Every hot API therefore accepts
/// an exec::Executor, which turns "how parallel" into a property of the
/// call site instead of the algorithm:
///
///   exec::ThreadPoolExecutor pool(4);
///   core::all_pairs_io_delays(g, pool);      // 4-way per-input fan-out
///   core::all_pairs_io_delays(g);            // serial, same bits
///
/// Contract:
///  * parallel_for(n, task) invokes task(i, ws) exactly once for every
///    i in [0, n), partitioned into contiguous static chunks (no work
///    stealing) so the index -> thread mapping is deterministic;
///  * each invocation receives the Workspace of the worker slot running it
///    (scratch reuse across iterations; see workspace.hpp);
///  * the first exception thrown by a task (lowest worker slot wins) is
///    rethrown on the calling thread after the region drains;
///  * regions do not nest: calling parallel_for on an executor that is
///    already running a region on the current call stack throws
///    hssta::Error (use a fresh SerialExecutor inside tasks that need an
///    execution context of their own);
///  * all library algorithms built on parallel_for are bit-identical at
///    every thread count — per-index results are independent and merges
///    use order-insensitive operations (max, integer sums, per-slot
///    writes), so "parallel" is never a numerical ablation.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "hssta/exec/workspace.hpp"

namespace hssta::exec {

class Executor {
 public:
  /// Loop body: `index` is the work item, `ws` the running worker's arena.
  using Task = std::function<void(size_t index, Workspace& ws)>;

  /// RAII: exclusive use of the executor across a whole
  /// reset-workspaces -> parallel_for -> merge-workspaces sequence.
  /// parallel_for takes the same (recursive) lock, so library algorithms
  /// that prepare and merge per-worker accumulators hold an Exclusive for
  /// the full sequence — two threads sharing one executor then serialize
  /// at algorithm granularity instead of interleaving workspace state.
  class Exclusive {
   public:
    explicit Exclusive(Executor& ex) : lock_(ex.caller_mu_) {}

   private:
    std::lock_guard<std::recursive_mutex> lock_;
  };

  Executor() = default;
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;
  virtual ~Executor() = default;

  /// Number of threads a region may occupy (1 for SerialExecutor).
  [[nodiscard]] virtual size_t concurrency() const = 0;

  /// Run task(i, ws) for every i in [0, n); blocks until all complete.
  virtual void parallel_for(size_t n, const Task& task) = 0;

  /// parallel_for with caller-provided contiguous chunk boundaries:
  /// worker slot w of bounds.size()-1 handles [bounds[w], bounds[w+1]),
  /// n = bounds.back(). bounds must be nondecreasing, start at 0 and name
  /// at most concurrency() slots. Generalizes parallel_for's uniform
  /// chunks so callers can balance by per-item *cost* (see cost_chunks):
  /// one heavy multi-fanin vertex no longer straggles a whole level. The
  /// slot -> index mapping stays deterministic, and because library tasks
  /// are per-index independent, the chunking never changes a result bit.
  virtual void parallel_for_chunks(std::span<const size_t> bounds,
                                   const Task& task) = 0;

  /// Worker arenas, indexed by worker slot (slot 0 is the calling thread).
  /// Valid between regions: callers reset per-region accumulators before a
  /// parallel_for and merge them afterwards — holding an Exclusive for the
  /// whole sequence when the executor may be shared across threads.
  [[nodiscard]] virtual size_t num_workspaces() const = 0;
  [[nodiscard]] virtual Workspace& workspace(size_t slot) = 0;

 protected:
  /// Serializes whole caller sequences (see Exclusive); recursive so a
  /// parallel_for inside an Exclusive scope of the same thread re-enters.
  std::recursive_mutex caller_mu_;
};

/// Runs everything inline on the calling thread with one workspace.
class SerialExecutor final : public Executor {
 public:
  [[nodiscard]] size_t concurrency() const override { return 1; }
  void parallel_for(size_t n, const Task& task) override;
  void parallel_for_chunks(std::span<const size_t> bounds,
                           const Task& task) override;
  [[nodiscard]] size_t num_workspaces() const override { return 1; }
  [[nodiscard]] Workspace& workspace(size_t slot) override;

 private:
  Workspace workspace_;
};

/// Persistent thread pool with a static-chunk parallel_for: worker slot w
/// of W handles [w*n/W, (w+1)*n/W). The calling thread participates as
/// slot 0, so ThreadPoolExecutor(4) occupies exactly 4 threads. Top-level
/// regions from different threads are serialized against each other.
class ThreadPoolExecutor final : public Executor {
 public:
  /// `threads` = 0 picks the hardware concurrency; 1 degenerates to inline
  /// execution (still a distinct executor instance).
  explicit ThreadPoolExecutor(size_t threads = 0);
  ~ThreadPoolExecutor() override;

  [[nodiscard]] size_t concurrency() const override { return threads_; }
  void parallel_for(size_t n, const Task& task) override;
  void parallel_for_chunks(std::span<const size_t> bounds,
                           const Task& task) override;
  [[nodiscard]] size_t num_workspaces() const override { return threads_; }
  [[nodiscard]] Workspace& workspace(size_t slot) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  size_t threads_ = 0;
};

/// Resolve a thread-count request: 0 -> hardware concurrency (at least 1),
/// anything else unchanged.
[[nodiscard]] size_t effective_threads(size_t threads);

/// SerialExecutor for threads <= 1, ThreadPoolExecutor otherwise (after
/// effective_threads resolution).
[[nodiscard]] std::shared_ptr<Executor> make_executor(size_t threads = 0);

/// parallel_for with an inline fast path: when `n < min_parallel` (or the
/// executor is serial anyway) the loop runs directly on the calling thread
/// against workspace slot 0, skipping the region wake-up/barrier. The
/// level-synchronous sweeps issue one region per topological level; most
/// levels of a real circuit are far too small to pay a pool round-trip, and
/// because library tasks only combine per-worker state with order-
/// insensitive merges, collapsing all of them onto slot 0 changes no result
/// bit. Callers sharing the executor across threads must hold an
/// Executor::Exclusive around the surrounding reset/region/merge sequence,
/// exactly as for parallel_for itself.
void run_maybe_parallel(Executor& ex, size_t n, size_t min_parallel,
                        const Executor::Task& task);

/// Contiguous chunk boundaries balancing `costs` over at most `slots`
/// chunks: boundary w lands where the cost prefix sum first reaches
/// total * w / slots, so every chunk carries about the same total cost
/// (empty chunks are legal when one item dominates). All-zero costs fall
/// back to uniform item-count chunks. Returns bounds.size() == min(slots,
/// costs.size()) + 1 entries suitable for parallel_for_chunks.
[[nodiscard]] std::vector<size_t> cost_chunks(std::span<const uint64_t> costs,
                                              size_t slots);

/// Fan [0, costs.size()) out across `ex` with chunk boundaries balanced by
/// per-item cost (cost_chunks over the executor's concurrency). The
/// cost-aware twin of parallel_for; callers sharing the executor across
/// threads hold an Executor::Exclusive around the surrounding sequence,
/// exactly as for parallel_for.
void parallel_for_costed(Executor& ex, std::span<const uint64_t> costs,
                         const Executor::Task& task);

}  // namespace hssta::exec
