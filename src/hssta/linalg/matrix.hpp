/// \file matrix.hpp
/// Dense row-major matrix used by the variation model (covariance matrices,
/// PCA loadings, variable-replacement transforms). Sizes in this library are
/// modest (grid counts: tens to a few hundred), so a straightforward dense
/// implementation is the right tool; no sparse machinery is needed.

#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace hssta::linalg {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols);

  /// Build from nested initializer list (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(size_t n);

  [[nodiscard]] size_t rows() const { return rows_; }
  [[nodiscard]] size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(size_t r, size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(size_t r, size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row r.
  [[nodiscard]] std::span<double> row(size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<const double> data() const { return data_; }

  [[nodiscard]] Matrix transposed() const;

  /// Matrix product this * rhs.
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;

  /// Matrix-vector product (vector length must equal cols()).
  [[nodiscard]] std::vector<double> operator*(std::span<const double> v) const;

  /// y = A^T * v without materializing the transpose.
  [[nodiscard]] std::vector<double> transposed_times(
      std::span<const double> v) const;

  /// Copy of the rows listed in `indices` (gather), preserving order.
  [[nodiscard]] Matrix gather_rows(std::span<const size_t> indices) const;

  /// Frobenius norm of (this - rhs); shapes must match.
  [[nodiscard]] double distance(const Matrix& rhs) const;

  /// Largest |a_ij - b_ij|; shapes must match.
  [[nodiscard]] double max_abs_diff(const Matrix& rhs) const;

  /// True if |a_ij - a_ji| <= tol for all i, j (square matrices only).
  [[nodiscard]] bool is_symmetric(double tol = 1e-12) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product of two equal-length spans.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const double> a);

}  // namespace hssta::linalg
