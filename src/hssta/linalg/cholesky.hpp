/// \file cholesky.hpp
/// Cholesky factorization for sampling correlated Gaussians in the Monte
/// Carlo reference flows: if C = L L^T, then L z (z iid standard normal)
/// has covariance C.

#pragma once

#include "hssta/linalg/matrix.hpp"

namespace hssta::linalg {

/// Lower-triangular factor L with C = L * L^T.
///
/// The spatial correlation model clamps correlations to zero beyond a cutoff
/// distance, which can make C very slightly indefinite; `jitter_max` bounds
/// the diagonal regularization that may be added (relative to the mean
/// diagonal) before giving up. Throws hssta::Error if C is not square,
/// not symmetric, or not factorizable even with jitter.
[[nodiscard]] Matrix cholesky(const Matrix& c, double jitter_max = 1e-6);

}  // namespace hssta::linalg
