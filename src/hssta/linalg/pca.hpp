/// \file pca.hpp
/// Principal component analysis of covariance matrices (paper Section II,
/// eq. 2). Produces the loading matrix that expresses correlated grid
/// variables as combinations of independent standard normals, plus the
/// whitening transform used by the hierarchical variable replacement
/// (paper eq. 19).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hssta/linalg/matrix.hpp"

namespace hssta::linalg {

/// Decomposition of a covariance matrix C (n x n):
///   correlated = loadings * x,   x iid standard normal (k components)
///   x = whitening * correlated
/// with loadings = U_k * Λ_k^{1/2} and whitening = Λ_k^{-1/2} * U_k^T over
/// the retained components, so whitening * loadings = I_k.
struct PcaResult {
  Matrix loadings;                 ///< n x k
  Matrix whitening;                ///< k x n
  std::vector<double> eigenvalues; ///< all n, descending, clipped at 0
  size_t retained = 0;             ///< k
  size_t clipped_negative = 0;     ///< eigenvalues below -tol forced to 0
  double explained = 1.0;          ///< retained variance fraction

  /// Reconstruct loadings * loadings^T (= C restricted to retained comps).
  [[nodiscard]] Matrix reconstructed_covariance() const;
};

/// Options controlling component retention.
struct PcaOptions {
  /// Keep the smallest component count whose cumulative eigenvalue mass
  /// reaches this fraction (1.0 = keep everything numerically nonzero).
  double min_explained = 1.0;
  /// Components with eigenvalue below rel_tol * max eigenvalue are dropped
  /// regardless (they carry no variance and would break whitening).
  double rel_tol = 1e-12;
  /// Hard cap on retained components (serialization round-trips use this
  /// to reproduce a stored space exactly).
  size_t max_components = SIZE_MAX;
};

/// Decompose covariance matrix `c`. Throws on non-square/non-symmetric
/// input or if eigenvalues are significantly negative (beyond clip_tol
/// relative to the largest), which indicates a malformed covariance.
[[nodiscard]] PcaResult pca(const Matrix& c, const PcaOptions& opts = {},
                            double clip_tol = 1e-6);

}  // namespace hssta::linalg
