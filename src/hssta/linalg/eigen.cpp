#include "hssta/linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "hssta/util/error.hpp"

namespace hssta::linalg {

namespace {

/// Sum of squared off-diagonal entries (convergence measure).
double off_diagonal_norm(const Matrix& a) {
  double acc = 0.0;
  for (size_t r = 0; r < a.rows(); ++r)
    for (size_t c = 0; c < a.cols(); ++c)
      if (r != c) acc += a(r, c) * a(r, c);
  return acc;
}

}  // namespace

EigenDecomposition eigen_symmetric(const Matrix& input, double sym_tol,
                                   int max_sweeps) {
  HSSTA_REQUIRE(input.rows() == input.cols(), "eigen needs a square matrix");
  HSSTA_REQUIRE(input.is_symmetric(sym_tol), "eigen needs a symmetric matrix");
  const size_t n = input.rows();

  Matrix a = input;
  Matrix v = Matrix::identity(n);

  // Scale-aware convergence threshold.
  double frob = 0.0;
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < n; ++c) frob += a(r, c) * a(r, c);
  const double stop = 1e-24 * std::max(frob, 1e-300);

  bool converged = (n <= 1) || off_diagonal_norm(a) <= stop;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        // Rotation t = tan(theta) chosen as the smaller root for stability.
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        // Apply rotation on rows/columns p and q of a.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    converged = off_diagonal_norm(a) <= stop;
  }
  HSSTA_ASSERT(converged, "Jacobi eigensolver did not converge");

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return a(i, i) > a(j, j); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t k = 0; k < n; ++k) {
    out.values[k] = a(order[k], order[k]);
    for (size_t r = 0; r < n; ++r) out.vectors(r, k) = v(r, order[k]);
  }
  return out;
}

}  // namespace hssta::linalg
