/// \file eigen.hpp
/// Symmetric eigendecomposition via cyclic Jacobi rotations.
///
/// Grid covariance matrices in this library are symmetric and at most a few
/// hundred square; Jacobi is simple, numerically robust on symmetric input,
/// and fast enough (O(n^3) per sweep, a handful of sweeps).

#pragma once

#include <vector>

#include "hssta/linalg/matrix.hpp"

namespace hssta::linalg {

/// Result of eigendecomposition: A = V * diag(values) * V^T with
/// orthonormal columns of V. Eigenpairs are sorted by descending eigenvalue.
struct EigenDecomposition {
  std::vector<double> values;  ///< descending
  Matrix vectors;              ///< column k is the eigenvector of values[k]
};

/// Decompose a symmetric matrix. Throws hssta::Error if `a` is not square
/// or not symmetric within `sym_tol`, or if Jacobi fails to converge.
[[nodiscard]] EigenDecomposition eigen_symmetric(const Matrix& a,
                                                 double sym_tol = 1e-9,
                                                 int max_sweeps = 64);

}  // namespace hssta::linalg
