#include "hssta/linalg/matrix.hpp"

#include <cmath>

#include "hssta/util/error.hpp"

namespace hssta::linalg {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    HSSTA_REQUIRE(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  HSSTA_REQUIRE(cols_ == rhs.rows_, "matrix product shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* rrow = rhs.data_.data() + k * rhs.cols_;
      double* orow = out.data_.data() + i * out.cols_;
      for (size_t j = 0; j < rhs.cols_; ++j) orow[j] += a * rrow[j];
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(std::span<const double> v) const {
  HSSTA_REQUIRE(v.size() == cols_, "matrix-vector shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) out[r] = dot(row(r), v);
  return out;
}

std::vector<double> Matrix::transposed_times(std::span<const double> v) const {
  HSSTA_REQUIRE(v.size() == rows_, "transposed matrix-vector shape mismatch");
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double a = v[r];
    if (a == 0.0) continue;
    const double* rrow = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) out[c] += a * rrow[c];
  }
  return out;
}

Matrix Matrix::gather_rows(std::span<const size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    HSSTA_REQUIRE(indices[i] < rows_, "row gather index out of range");
    auto src = row(indices[i]);
    auto dst = out.row(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

double Matrix::distance(const Matrix& rhs) const {
  HSSTA_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                "distance shape mismatch");
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - rhs.data_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double Matrix::max_abs_diff(const Matrix& rhs) const {
  HSSTA_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                "max_abs_diff shape mismatch");
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - rhs.data_[i]));
  return m;
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

double dot(std::span<const double> a, std::span<const double> b) {
  HSSTA_REQUIRE(a.size() == b.size(), "dot length mismatch");
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

}  // namespace hssta::linalg
