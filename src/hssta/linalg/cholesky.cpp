#include "hssta/linalg/cholesky.hpp"

#include <cmath>

#include "hssta/util/error.hpp"

namespace hssta::linalg {

namespace {

/// Attempt a plain Cholesky; returns false if a non-positive pivot appears.
bool try_factor(const Matrix& c, double jitter, Matrix& l) {
  const size_t n = c.rows();
  l = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = c(i, j) + (i == j ? jitter : 0.0);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) return false;
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return true;
}

}  // namespace

Matrix cholesky(const Matrix& c, double jitter_max) {
  HSSTA_REQUIRE(c.rows() == c.cols(), "cholesky needs a square matrix");
  HSSTA_REQUIRE(c.is_symmetric(1e-9), "cholesky needs a symmetric matrix");
  const size_t n = c.rows();

  double mean_diag = 0.0;
  for (size_t i = 0; i < n; ++i) mean_diag += c(i, i);
  mean_diag = n ? mean_diag / static_cast<double>(n) : 0.0;

  Matrix l;
  double jitter = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (try_factor(c, jitter, l)) return l;
    jitter = (jitter == 0.0) ? 1e-12 * std::max(mean_diag, 1e-300)
                             : jitter * 10.0;
    if (jitter > jitter_max * std::max(mean_diag, 1e-300)) break;
  }
  throw Error("cholesky: matrix is not positive definite within jitter budget");
}

}  // namespace hssta::linalg
