#include "hssta/linalg/pca.hpp"

#include <cmath>

#include "hssta/linalg/eigen.hpp"
#include "hssta/util/error.hpp"

namespace hssta::linalg {

Matrix PcaResult::reconstructed_covariance() const {
  return loadings * loadings.transposed();
}

PcaResult pca(const Matrix& c, const PcaOptions& opts, double clip_tol) {
  HSSTA_REQUIRE(c.rows() == c.cols(), "pca needs a square covariance matrix");
  const size_t n = c.rows();
  EigenDecomposition eig = eigen_symmetric(c);

  PcaResult out;
  out.eigenvalues = eig.values;
  const double lmax = n ? std::max(eig.values.front(), 0.0) : 0.0;

  // Clip slightly negative eigenvalues (cutoff-clamped correlation functions
  // are not guaranteed PSD); reject covariances that are badly indefinite.
  double total = 0.0;
  for (double& l : out.eigenvalues) {
    if (l < 0.0) {
      HSSTA_REQUIRE(l >= -clip_tol * std::max(lmax, 1e-300),
                    "covariance matrix has a significantly negative eigenvalue");
      l = 0.0;
      ++out.clipped_negative;
    }
    total += l;
  }

  // Retention: cumulative explained variance plus a numeric floor.
  const double floor = opts.rel_tol * std::max(lmax, 1e-300);
  size_t k = 0;
  double cum = 0.0;
  for (size_t i = 0; i < n && k < opts.max_components; ++i) {
    if (out.eigenvalues[i] <= floor) break;
    ++k;
    cum += out.eigenvalues[i];
    if (total > 0.0 && cum >= opts.min_explained * total) break;
  }
  out.retained = k;
  out.explained = (total > 0.0) ? cum / total : 1.0;

  out.loadings = Matrix(n, k);
  out.whitening = Matrix(k, n);
  for (size_t j = 0; j < k; ++j) {
    const double s = std::sqrt(out.eigenvalues[j]);
    for (size_t r = 0; r < n; ++r) {
      out.loadings(r, j) = eig.vectors(r, j) * s;
      out.whitening(j, r) = eig.vectors(r, j) / s;
    }
  }
  return out;
}

}  // namespace hssta::linalg
