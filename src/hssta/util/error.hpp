/// \file error.hpp
/// Error handling primitives for the hssta library.
///
/// All recoverable misuse (bad arguments, malformed files, inconsistent
/// graphs) throws hssta::Error. Internal invariants use HSSTA_ASSERT, which
/// is compiled in all build types: timing analysis silently producing wrong
/// numbers is far more expensive than the check.

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hssta {

/// Exception type thrown by all hssta components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise(const char* kind, const char* cond,
                               const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace hssta

/// Precondition check on public API arguments; always enabled.
#define HSSTA_REQUIRE(cond, msg)                                          \
  do {                                                                    \
    if (!(cond))                                                          \
      ::hssta::detail::raise("requirement", #cond, __FILE__, __LINE__,    \
                             (msg));                                      \
  } while (false)

/// Internal invariant check; always enabled (cheap relative to the math).
#define HSSTA_ASSERT(cond, msg)                                           \
  do {                                                                    \
    if (!(cond))                                                          \
      ::hssta::detail::raise("invariant", #cond, __FILE__, __LINE__,      \
                             (msg));                                      \
  } while (false)
