/// \file version.hpp
/// Library/tool version and build identification. Every binary front end
/// (`hssta_cli --version`, `hssta_serve --version`) and the server's
/// `stats` verb report build_info() so logs and bug reports can identify
/// the exact binary they came from.

#pragma once

#include <string>

namespace hssta {

/// The library version; bumped with each released change set.
inline constexpr const char* kVersion = "0.6.0";

/// One-line build identification: version, compiler, language standard and
/// build flavor. Deliberately timestamp-free so identical sources produce
/// identical strings (reproducible builds stay reproducible).
[[nodiscard]] std::string build_info();

}  // namespace hssta
