/// \file hash.hpp
/// Stable 64-bit content fingerprints (FNV-1a) for cache keys.
///
/// The model cache keys persistent .hstm artifacts by the fingerprint of
/// everything the extraction result depends on, so the hash must be stable
/// across processes, platforms and library versions: every value is fed to
/// the accumulator as an explicit canonical byte stream (integers as eight
/// little-endian bytes regardless of host endianness, doubles as their IEEE
/// bit pattern, strings length-prefixed so concatenations cannot collide).
/// FNV-1a is not cryptographic — a collision corrupts nothing, it merely
/// loads a model extracted from equivalent inputs — but it is deterministic,
/// fast and has no seed to drift.

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hssta::util {

/// Streaming FNV-1a (64-bit) accumulator with canonical encodings for the
/// primitive types fingerprint() functions need. Calls chain:
///
///   const uint64_t fp = Fnv1a().str(name).f64(delta).u64(count).value();
class Fnv1a {
 public:
  static constexpr uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr uint64_t kPrime = 1099511628211ull;

  /// Raw bytes, as-is.
  Fnv1a& bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) h_ = (h_ ^ p[i]) * kPrime;
    return *this;
  }

  /// Unsigned integer as eight little-endian bytes (host-endian agnostic).
  Fnv1a& u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ = (h_ ^ static_cast<unsigned char>(v & 0xff)) * kPrime;
      v >>= 8;
    }
    return *this;
  }

  /// Boolean as one byte.
  Fnv1a& b(bool v) { return bytes(v ? "\1" : "\0", 1); }

  /// Double as its IEEE-754 bit pattern (bit-exact; -0.0 != 0.0, every NaN
  /// payload distinct — exactly the identity the serializer's hex-floats
  /// preserve).
  Fnv1a& f64(double v) { return u64(std::bit_cast<uint64_t>(v)); }

  /// String, length-prefixed so ("ab","c") and ("a","bc") differ.
  Fnv1a& str(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  [[nodiscard]] uint64_t value() const { return h_; }

  /// Fixed-width lower-case hex rendering (16 digits), used for cache file
  /// names and header comments.
  [[nodiscard]] static std::string hex(uint64_t v) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
      out[static_cast<size_t>(i)] = digits[v & 0xf];
      v >>= 4;
    }
    return out;
  }

 private:
  uint64_t h_ = kOffsetBasis;
};

}  // namespace hssta::util
