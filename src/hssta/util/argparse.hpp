/// \file argparse.hpp
/// util::ArgParser — a small reusable command-line flag registry.
///
/// Callers register typed options bound to variables, then parse():
///
///   bool verbose = false;
///   size_t samples = 10000;
///   std::string out;
///   util::ArgParser p("hssta_cli mc", "module Monte Carlo");
///   p.flag("--verbose", &verbose, "print per-sample detail");
///   p.option("--samples", &samples, "N", "sample count");
///   p.positional("in.bench", &out, "input netlist");
///   if (!p.parse(argc, argv)) return 0;   // --help was printed
///
/// Accepted syntax: "--name value" and "--name=value". Unknown flags and
/// missing values throw hssta::Error naming the flag; --help is always
/// registered and makes parse() print the generated help text and return
/// false.

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace hssta::util {

class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description = "");

  /// Boolean switch: present -> true. No value.
  ArgParser& flag(const std::string& name, bool* out, std::string help);

  /// Valued options; `metavar` names the value in the help text. Values
  /// must parse completely (e.g. "--samples 12x" throws).
  ArgParser& option(const std::string& name, uint64_t* out,
                    std::string metavar, std::string help);
  ArgParser& option(const std::string& name, double* out, std::string metavar,
                    std::string help);
  ArgParser& option(const std::string& name, std::string* out,
                    std::string metavar, std::string help);

  /// Required positional argument, consumed in registration order.
  ArgParser& positional(const std::string& name, std::string* out,
                        std::string help);
  /// Trailing positionals (after all single positionals); at least
  /// `min_count` must be present.
  ArgParser& positional_rest(const std::string& name,
                             std::vector<std::string>* out, std::string help,
                             size_t min_count = 0);

  /// Parse argv[first..argc). Throws hssta::Error on unknown flags,
  /// missing values, malformed values or missing positionals. Returns
  /// false when --help was consumed (help text printed to stdout).
  bool parse(int argc, const char* const* argv, int first = 1);

  /// The generated usage/flags text.
  [[nodiscard]] std::string help() const;

 private:
  struct Flag {
    std::string name;
    std::string metavar;  ///< empty for switches
    std::string help;
    std::function<void(const std::string&)> set;  ///< null for switches
    bool* switch_target = nullptr;
  };
  struct Positional {
    std::string name;
    std::string help;
    std::string* out;
  };

  [[nodiscard]] const Flag* find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
  std::vector<Positional> positionals_;
  std::string rest_name_;
  std::string rest_help_;
  std::vector<std::string>* rest_out_ = nullptr;
  size_t rest_min_ = 0;
};

}  // namespace hssta::util
