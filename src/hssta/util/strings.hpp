/// \file strings.hpp
/// Small string utilities shared by parsers and report writers.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hssta {

/// Strip leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a single character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Split on any whitespace run; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// ASCII lower-case copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Format a double with `prec` significant digits (used by table printers).
[[nodiscard]] std::string fmt_double(double v, int prec = 4);

/// Format a fraction as a percentage string, e.g. 0.134 -> "13.4%".
[[nodiscard]] std::string fmt_percent(double frac, int prec = 1);

/// Parse a non-negative integer, consuming the whole string; rejects
/// signs, trailing garbage and out-of-range values. Throws hssta::Error
/// naming `what` (a flag or config key) on any violation.
[[nodiscard]] uint64_t parse_count(const std::string& what,
                                   const std::string& value);

/// Parse a double, consuming the whole string; rejects trailing garbage
/// and overflow. Throws hssta::Error naming `what` on any violation.
[[nodiscard]] double parse_number(const std::string& what,
                                  const std::string& value);

}  // namespace hssta
