/// \file ascii_plot.hpp
/// Terminal plots for the bench harnesses: the paper's Fig. 6 (histogram)
/// and Fig. 7 (CDF curves) are rendered as ASCII art in bench output.

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hssta {

/// One named series of (x, y) points for a line plot.
struct PlotSeries {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  char marker = '*';
};

/// Render a horizontal-bar histogram: one row per bin, bar length
/// proportional to count, annotated with the bin range and count.
void plot_histogram(std::ostream& os, const std::vector<double>& bin_edges,
                    const std::vector<size_t>& counts, int bar_width = 50,
                    const std::string& title = "");

/// Render one or more (x, y) series on a shared character grid.
/// Each series uses its own marker; overlapping cells show the later series.
void plot_xy(std::ostream& os, const std::vector<PlotSeries>& series,
             int width = 72, int height = 24, const std::string& title = "");

}  // namespace hssta
