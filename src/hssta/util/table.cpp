#include "hssta/util/table.hpp"

#include <algorithm>
#include <sstream>

#include "hssta/util/error.hpp"

namespace hssta {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HSSTA_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  HSSTA_REQUIRE(cells.size() == header_.size(),
                "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  if (!title.empty()) os << title << '\n';
  emit(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string(const std::string& title) const {
  std::ostringstream os;
  print(os, title);
  return os.str();
}

}  // namespace hssta
