#include "hssta/util/argparse.hpp"

#include <cstdio>
#include <sstream>

#include "hssta/util/error.hpp"
#include "hssta/util/strings.hpp"

namespace hssta::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::flag(const std::string& name, bool* out,
                           std::string help) {
  HSSTA_REQUIRE(find(name) == nullptr, "duplicate flag: " + name);
  flags_.push_back(Flag{name, "", std::move(help), nullptr, out});
  return *this;
}

ArgParser& ArgParser::option(const std::string& name, uint64_t* out,
                             std::string metavar, std::string help) {
  HSSTA_REQUIRE(find(name) == nullptr, "duplicate flag: " + name);
  flags_.push_back(Flag{name, std::move(metavar), std::move(help),
                        [name, out](const std::string& v) {
                          *out = parse_count(name, v);
                        },
                        nullptr});
  return *this;
}

ArgParser& ArgParser::option(const std::string& name, double* out,
                             std::string metavar, std::string help) {
  HSSTA_REQUIRE(find(name) == nullptr, "duplicate flag: " + name);
  flags_.push_back(Flag{name, std::move(metavar), std::move(help),
                        [name, out](const std::string& v) {
                          *out = parse_number(name, v);
                        },
                        nullptr});
  return *this;
}

ArgParser& ArgParser::option(const std::string& name, std::string* out,
                             std::string metavar, std::string help) {
  HSSTA_REQUIRE(find(name) == nullptr, "duplicate flag: " + name);
  flags_.push_back(Flag{name, std::move(metavar), std::move(help),
                        [out](const std::string& v) { *out = v; }, nullptr});
  return *this;
}

ArgParser& ArgParser::positional(const std::string& name, std::string* out,
                                 std::string help) {
  positionals_.push_back(Positional{name, std::move(help), out});
  return *this;
}

ArgParser& ArgParser::positional_rest(const std::string& name,
                                      std::vector<std::string>* out,
                                      std::string help, size_t min_count) {
  rest_name_ = name;
  rest_help_ = std::move(help);
  rest_out_ = out;
  rest_min_ = min_count;
  return *this;
}

const ArgParser::Flag* ArgParser::find(const std::string& name) const {
  for (const Flag& f : flags_)
    if (f.name == name) return &f;
  return nullptr;
}

bool ArgParser::parse(int argc, const char* const* argv, int first) {
  size_t next_positional = 0;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      std::string value;
      bool has_inline_value = false;
      if (const size_t eq = arg.find('='); eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline_value = true;
      }
      const Flag* f = find(arg);
      if (!f) throw Error("unknown flag: " + arg + " (try --help)");
      if (f->switch_target) {
        if (has_inline_value)
          throw Error(arg + " takes no value");
        *f->switch_target = true;
        continue;
      }
      if (!has_inline_value) {
        if (i + 1 >= argc) throw Error("missing value after " + arg);
        value = argv[++i];
      }
      f->set(value);
      continue;
    }
    if (next_positional < positionals_.size()) {
      *positionals_[next_positional++].out = arg;
      continue;
    }
    if (rest_out_) {
      rest_out_->push_back(std::move(arg));
      continue;
    }
    throw Error("unexpected argument: " + arg + " (try --help)");
  }
  if (next_positional < positionals_.size())
    throw Error("missing required argument <" +
                positionals_[next_positional].name + ">");
  if (rest_out_ && rest_out_->size() < rest_min_)
    throw Error("expected at least " + std::to_string(rest_min_) + " <" +
                rest_name_ + "> arguments");
  return true;
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << "usage: " << program_;
  for (const Positional& p : positionals_) os << " <" << p.name << ">";
  if (rest_out_) os << " <" << rest_name_ << "...>";
  if (!flags_.empty()) os << " [flags]";
  os << '\n';
  if (!description_.empty()) os << description_ << '\n';
  if (!positionals_.empty() || rest_out_) os << '\n';
  for (const Positional& p : positionals_)
    os << "  <" << p.name << ">  " << p.help << '\n';
  if (rest_out_) os << "  <" << rest_name_ << "...>  " << rest_help_ << '\n';
  os << "\nflags:\n";
  for (const Flag& f : flags_) {
    std::string left = "  " + f.name;
    if (!f.metavar.empty()) left += " <" + f.metavar + ">";
    os << left;
    for (size_t pad = left.size(); pad < 26; ++pad) os << ' ';
    os << f.help << '\n';
  }
  os << "  --help                  print this help\n";
  return os.str();
}

}  // namespace hssta::util
