#include "hssta/util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "hssta/util/error.hpp"

namespace hssta {

void plot_histogram(std::ostream& os, const std::vector<double>& bin_edges,
                    const std::vector<size_t>& counts, int bar_width,
                    const std::string& title) {
  HSSTA_REQUIRE(bin_edges.size() == counts.size() + 1,
                "need one more edge than bins");
  HSSTA_REQUIRE(bar_width > 0, "bar width must be positive");
  if (!title.empty()) os << title << '\n';
  const size_t max_count = counts.empty()
                               ? 0
                               : *std::max_element(counts.begin(), counts.end());
  char label[96];
  for (size_t b = 0; b < counts.size(); ++b) {
    std::snprintf(label, sizeof(label), "[%6.3f, %6.3f) %7zu |",
                  bin_edges[b], bin_edges[b + 1], counts[b]);
    os << label;
    const int bar =
        max_count == 0
            ? 0
            : static_cast<int>(std::lround(static_cast<double>(counts[b]) /
                                           static_cast<double>(max_count) *
                                           bar_width));
    os << std::string(static_cast<size_t>(bar), '#') << '\n';
  }
}

void plot_xy(std::ostream& os, const std::vector<PlotSeries>& series,
             int width, int height, const std::string& title) {
  HSSTA_REQUIRE(width > 4 && height > 2, "plot area too small");
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  for (const auto& s : series) {
    HSSTA_REQUIRE(s.x.size() == s.y.size(), "series x/y length mismatch");
    for (double v : s.x) { xmin = std::min(xmin, v); xmax = std::max(xmax, v); }
    for (double v : s.y) { ymin = std::min(ymin, v); ymax = std::max(ymax, v); }
  }
  if (!(xmin < xmax)) { xmin -= 0.5; xmax += 0.5; }
  if (!(ymin < ymax)) { ymin -= 0.5; ymax += 0.5; }

  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  auto put = [&](double x, double y, char m) {
    const int c = static_cast<int>(std::lround((x - xmin) / (xmax - xmin) *
                                               (width - 1)));
    const int r = static_cast<int>(std::lround((y - ymin) / (ymax - ymin) *
                                               (height - 1)));
    if (c >= 0 && c < width && r >= 0 && r < height)
      grid[static_cast<size_t>(height - 1 - r)][static_cast<size_t>(c)] = m;
  };
  for (const auto& s : series)
    for (size_t i = 0; i < s.x.size(); ++i) put(s.x[i], s.y[i], s.marker);

  if (!title.empty()) os << title << '\n';
  char buf[64];
  for (int r = 0; r < height; ++r) {
    const double yv = ymax - (ymax - ymin) * r / (height - 1);
    std::snprintf(buf, sizeof(buf), "%9.3g |", yv);
    os << buf << grid[static_cast<size_t>(r)] << '\n';
  }
  os << std::string(11, ' ') << std::string(static_cast<size_t>(width), '-')
     << '\n';
  std::snprintf(buf, sizeof(buf), "%9.3g", xmin);
  os << std::string(11, ' ') << buf;
  std::snprintf(buf, sizeof(buf), "%9.3g", xmax);
  const int pad = width - 9 - 9;
  os << std::string(static_cast<size_t>(std::max(1, pad)), ' ') << buf << '\n';
  for (const auto& s : series)
    os << "  " << s.marker << " = " << s.name << '\n';
}

}  // namespace hssta
