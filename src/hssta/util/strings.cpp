#include "hssta/util/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "hssta/util/error.hpp"

namespace hssta {

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (true) {
    const size_t next = s.find(sep, pos);
    if (next == std::string_view::npos) {
      out.emplace_back(s.substr(pos));
      return out;
    }
    out.emplace_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string fmt_double(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
  return buf;
}

std::string fmt_percent(double frac, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", prec, frac * 100.0);
  return buf;
}

uint64_t parse_count(const std::string& what, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (!end || end == value.c_str() || *end != '\0' || errno == ERANGE ||
      value.find_first_of("+-") != std::string::npos)
    throw Error("malformed count for " + what + ": " + value);
  return v;
}

double parse_number(const std::string& what, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(value.c_str(), &end);
  if (!end || end == value.c_str() || *end != '\0' || errno == ERANGE)
    throw Error("malformed number for " + what + ": " + value);
  return v;
}

}  // namespace hssta
