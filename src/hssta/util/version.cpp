#include "hssta/util/version.hpp"

namespace hssta {

std::string build_info() {
  std::string info = "hssta ";
  info += kVersion;
  info += " (";
#if defined(__clang__)
  info += "clang ";
  info += __clang_version__;
#elif defined(__GNUC__)
  info += "gcc ";
  info += __VERSION__;
#else
  info += "unknown compiler";
#endif
  info += ", C++";
  info += std::to_string(__cplusplus);
#if defined(NDEBUG)
  info += ", release";
#else
  info += ", debug";
#endif
  info += ")";
  return info;
}

}  // namespace hssta
