#include "hssta/util/csv.hpp"

#include <cstdio>

#include "hssta/util/error.hpp"

namespace hssta {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw Error("cannot open CSV output file: " + path);
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  char buf[64];
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    std::snprintf(buf, sizeof(buf), "%.12g", values[i]);
    out_ << buf;
  }
  out_ << '\n';
}

}  // namespace hssta
