/// \file table.hpp
/// Plain-text table printer used by the bench harnesses to reproduce the
/// paper's tables (column alignment, header rule, optional title).

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hssta {

/// Column-aligned text table. Rows are added as vectors of pre-formatted
/// strings; numeric helpers are provided for the common cases.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] size_t rows() const { return rows_.size(); }

  /// Render with single-space-padded columns and a dashed header rule.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Render as a string (convenience for tests).
  [[nodiscard]] std::string to_string(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hssta
