/// \file csv.hpp
/// Minimal CSV writer; benches dump every table/figure series as CSV next to
/// the human-readable output so results can be re-plotted externally.

#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace hssta {

/// Writes rows of fields to a file, comma-separated. Fields containing a
/// comma, quote, or newline are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws hssta::Error on failure.
  explicit CsvWriter(const std::string& path);

  /// Write one row of raw string fields.
  void write_row(const std::vector<std::string>& fields);

  /// Write one row of doubles with full precision.
  void write_row(const std::vector<double>& values);

  /// Flush and report the destination path.
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& field);

  std::string path_;
  std::ofstream out_;
};

}  // namespace hssta
