/// \file json.hpp
/// util::JsonWriter — a minimal streaming JSON emitter for the CLI's
/// machine-readable reports (--json) and the bench artifacts.
///
/// The writer tracks the container stack and inserts commas and key
/// separators itself, so emitting code reads linearly:
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("design").value("soc");
///   w.key("delay").begin_object();
///   w.key("mean").value(1.25);
///   w.end_object();
///   w.end_object();  // {"design":"soc","delay":{"mean":1.25}}
///
/// Strings are escaped per RFC 8259 (quotes, backslashes, control
/// characters); doubles print with enough digits to round-trip
/// (%.17g), non-finite doubles as null. Structural misuse (a value
/// with no pending key inside an object, unbalanced end_*) throws
/// hssta::Error — a malformed report is a bug, not output.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace hssta::util {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  /// Containers. The top level accepts exactly one value/container.
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be directly inside an object, before its value.
  JsonWriter& key(std::string_view k);

  /// Scalars. Integrals go through one template so every width and
  /// signedness (int, size_t, uint64_t, ...) resolves unambiguously on
  /// every platform — including those where size_t is a distinct type
  /// from uint64_t.
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(bool b);
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>)
      return integer(static_cast<int64_t>(v));
    else
      return integer(static_cast<uint64_t>(v));
  }
  JsonWriter& null();

  /// True once the single top-level value is complete and balanced.
  [[nodiscard]] bool complete() const;

  /// Escape one string as a quoted JSON string literal.
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  enum class Frame : uint8_t { kObject, kArray };

  JsonWriter& integer(uint64_t u);
  JsonWriter& integer(int64_t i);
  void before_value();

  std::ostream& os_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;   ///< per frame: no element emitted yet
  bool key_pending_ = false;  ///< a key was emitted, its value is due
  bool done_ = false;         ///< the top-level value is complete
};

}  // namespace hssta::util
