/// \file json.hpp
/// util::JsonWriter — a minimal streaming JSON emitter for the CLI's
/// machine-readable reports (--json) and the bench artifacts — and
/// util::JsonReader, its strict parsing counterpart for the serve
/// protocol and for round-trip validation of the emitted reports.
///
/// The writer tracks the container stack and inserts commas and key
/// separators itself, so emitting code reads linearly:
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("design").value("soc");
///   w.key("delay").begin_object();
///   w.key("mean").value(1.25);
///   w.end_object();
///   w.end_object();  // {"design":"soc","delay":{"mean":1.25}}
///
/// Strings are escaped per RFC 8259 (quotes, backslashes, control
/// characters); doubles print with enough digits to round-trip
/// (%.17g), non-finite doubles as null. Structural misuse (a value
/// with no pending key inside an object, unbalanced end_*) throws
/// hssta::Error — a malformed report is a bug, not output.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace hssta::util {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  /// Containers. The top level accepts exactly one value/container.
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be directly inside an object, before its value.
  JsonWriter& key(std::string_view k);

  /// Scalars. Integrals go through one template so every width and
  /// signedness (int, size_t, uint64_t, ...) resolves unambiguously on
  /// every platform — including those where size_t is a distinct type
  /// from uint64_t.
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(bool b);
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>)
      return integer(static_cast<int64_t>(v));
    else
      return integer(static_cast<uint64_t>(v));
  }
  JsonWriter& null();

  /// True once the single top-level value is complete and balanced.
  [[nodiscard]] bool complete() const;

  /// Escape one string as a quoted JSON string literal.
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  enum class Frame : uint8_t { kObject, kArray };

  JsonWriter& integer(uint64_t u);
  JsonWriter& integer(int64_t i);
  void before_value();

  std::ostream& os_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;   ///< per frame: no element emitted yet
  bool key_pending_ = false;  ///< a key was emitted, its value is due
  bool done_ = false;         ///< the top-level value is complete
};

/// One parsed JSON document node. Objects keep their members in document
/// order (and reject duplicate keys at parse time); numbers are doubles,
/// which round-trips everything JsonWriter emits (%.17g) bit-exactly.
class JsonValue {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  ///< null

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }

  /// Typed accessors; throw hssta::Error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// The number as a non-negative integer; rejects negatives, fractions
  /// and values above 2^53 (not exactly representable). `what` names the
  /// field in the error.
  [[nodiscard]] uint64_t as_count(const std::string& what) const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<Member>& members() const;

  /// Object member lookup: null when absent / non-object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Object member lookup; throws hssta::Error naming the key when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

 private:
  friend class JsonParser;  ///< the recursive-descent builder (json.cpp)

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Strict parser for the protocol subset of JSON (RFC 8259 values:
/// objects, arrays, strings with escapes incl. \uXXXX surrogate pairs,
/// numbers, true/false/null). Strict means malformed input is rejected,
/// never repaired: trailing content after the document, unterminated or
/// control-character strings, unknown escapes, lone surrogates, leading
/// zeros, bare '+', NaN/Infinity tokens, duplicate object keys and
/// nesting beyond kMaxDepth all throw hssta::Error with the byte offset.
class JsonReader {
 public:
  /// Containers deeper than this are rejected (the protocol needs 4).
  static constexpr size_t kMaxDepth = 64;

  /// Parse exactly one complete document from `text`.
  [[nodiscard]] static JsonValue parse(std::string_view text);
};

}  // namespace hssta::util
