#include "hssta/util/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "hssta/util/error.hpp"

namespace hssta::util {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::before_value() {
  HSSTA_REQUIRE(!done_, "json: document already complete");
  if (stack_.empty()) return;  // the single top-level value
  if (stack_.back() == Frame::kObject) {
    HSSTA_REQUIRE(key_pending_, "json: object member needs a key first");
    key_pending_ = false;
  } else {
    if (!first_.back()) os_ << ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  HSSTA_REQUIRE(!stack_.empty() && stack_.back() == Frame::kObject &&
                    !key_pending_,
                "json: unbalanced end_object");
  os_ << '}';
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  HSSTA_REQUIRE(!stack_.empty() && stack_.back() == Frame::kArray,
                "json: unbalanced end_array");
  os_ << ']';
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  HSSTA_REQUIRE(!stack_.empty() && stack_.back() == Frame::kObject &&
                    !key_pending_,
                "json: key outside an object (or two keys in a row)");
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  os_ << escape(k) << ':';
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  os_ << escape(s);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  before_value();
  if (!std::isfinite(d)) {
    os_ << "null";  // JSON has no NaN/Inf
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    os_ << buf;
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::integer(uint64_t u) {
  before_value();
  os_ << u;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::integer(int64_t i) {
  before_value();
  os_ << i;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  os_ << (b ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

bool JsonWriter::complete() const { return done_ && stack_.empty(); }

}  // namespace hssta::util
