#include "hssta/util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "hssta/util/error.hpp"

namespace hssta::util {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::before_value() {
  HSSTA_REQUIRE(!done_, "json: document already complete");
  if (stack_.empty()) return;  // the single top-level value
  if (stack_.back() == Frame::kObject) {
    HSSTA_REQUIRE(key_pending_, "json: object member needs a key first");
    key_pending_ = false;
  } else {
    if (!first_.back()) os_ << ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  HSSTA_REQUIRE(!stack_.empty() && stack_.back() == Frame::kObject &&
                    !key_pending_,
                "json: unbalanced end_object");
  os_ << '}';
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  HSSTA_REQUIRE(!stack_.empty() && stack_.back() == Frame::kArray,
                "json: unbalanced end_array");
  os_ << ']';
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  HSSTA_REQUIRE(!stack_.empty() && stack_.back() == Frame::kObject &&
                    !key_pending_,
                "json: key outside an object (or two keys in a row)");
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  os_ << escape(k) << ':';
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  os_ << escape(s);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  before_value();
  if (!std::isfinite(d)) {
    os_ << "null";  // JSON has no NaN/Inf
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    os_ << buf;
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::integer(uint64_t u) {
  before_value();
  os_ << u;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::integer(int64_t i) {
  before_value();
  os_ << i;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  os_ << (b ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

bool JsonWriter::complete() const { return done_ && stack_.empty(); }

// --- JsonValue --------------------------------------------------------------

bool JsonValue::as_bool() const {
  HSSTA_REQUIRE(type_ == Type::kBool, "json: value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  HSSTA_REQUIRE(type_ == Type::kNumber, "json: value is not a number");
  return num_;
}

uint64_t JsonValue::as_count(const std::string& what) const {
  HSSTA_REQUIRE(type_ == Type::kNumber, "json: " + what + " is not a number");
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  HSSTA_REQUIRE(num_ >= 0.0 && num_ <= kMaxExact &&
                    num_ == static_cast<double>(static_cast<uint64_t>(num_)),
                "json: " + what + " is not a non-negative integer");
  return static_cast<uint64_t>(num_);
}

const std::string& JsonValue::as_string() const {
  HSSTA_REQUIRE(type_ == Type::kString, "json: value is not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  HSSTA_REQUIRE(type_ == Type::kArray, "json: value is not an array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  HSSTA_REQUIRE(type_ == Type::kObject, "json: value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : members_)
    if (m.first == key) return &m.second;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  HSSTA_REQUIRE(v != nullptr, "json: missing key '" + key + "'");
  return *v;
}

// --- JsonReader -------------------------------------------------------------

/// Recursive-descent state over one document. A named class (not in an
/// anonymous namespace) so JsonValue can befriend it.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    HSSTA_REQUIRE(pos_ == text_.size(),
                  err("trailing content after the document"));
    return v;
  }

 private:
  [[nodiscard]] std::string err(const std::string& what) const {
    return "json: " + what + " at byte " + std::to_string(pos_);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c, const char* what) {
    HSSTA_REQUIRE(!eof() && peek() == c, err(std::string("expected ") + what));
    ++pos_;
  }

  void expect_literal(std::string_view lit) {
    HSSTA_REQUIRE(text_.substr(pos_, lit.size()) == lit,
                  err("invalid literal"));
    pos_ += lit.size();
  }

  JsonValue parse_value(size_t depth) {
    HSSTA_REQUIRE(depth < JsonReader::kMaxDepth, err("nesting too deep"));
    HSSTA_REQUIRE(!eof(), err("unexpected end of input"));
    JsonValue v;
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"':
        v.type_ = JsonValue::Type::kString;
        v.str_ = parse_string();
        return v;
      case 't':
        expect_literal("true");
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        expect_literal("false");
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        expect_literal("null");
        return v;
      default:
        v.type_ = JsonValue::Type::kNumber;
        v.num_ = parse_number();
        return v;
    }
  }

  JsonValue parse_object(size_t depth) {
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    expect('{', "'{'");
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      HSSTA_REQUIRE(!eof() && peek() == '"', err("expected a member key"));
      std::string key = parse_string();
      HSSTA_REQUIRE(v.find(key) == nullptr,
                    err("duplicate object key '" + key + "'"));
      skip_ws();
      expect(':', "':'");
      skip_ws();
      v.members_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      HSSTA_REQUIRE(!eof(), err("unterminated object"));
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}', "',' or '}'");
      return v;
    }
  }

  JsonValue parse_array(size_t depth) {
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    expect('[', "'['");
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v.items_.push_back(parse_value(depth + 1));
      skip_ws();
      HSSTA_REQUIRE(!eof(), err("unterminated array"));
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']', "',' or ']'");
      return v;
    }
  }

  /// One \uXXXX escape's four hex digits.
  uint32_t parse_hex4() {
    HSSTA_REQUIRE(pos_ + 4 <= text_.size(), err("truncated \\u escape"));
    uint32_t u = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      u <<= 4;
      if (c >= '0' && c <= '9')
        u |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        u |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        u |= static_cast<uint32_t>(c - 'A' + 10);
      else
        HSSTA_REQUIRE(false, err("invalid \\u escape digit"));
    }
    return u;
  }

  static void append_utf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      HSSTA_REQUIRE(!eof(), err("unterminated string"));
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        HSSTA_REQUIRE(false, err("raw control character in string"));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      HSSTA_REQUIRE(!eof(), err("unterminated escape"));
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need a pair
            HSSTA_REQUIRE(text_.substr(pos_, 2) == "\\u",
                          err("lone high surrogate"));
            pos_ += 2;
            const uint32_t lo = parse_hex4();
            HSSTA_REQUIRE(lo >= 0xDC00 && lo <= 0xDFFF,
                          err("invalid low surrogate"));
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else {
            HSSTA_REQUIRE(!(cp >= 0xDC00 && cp <= 0xDFFF),
                          err("lone low surrogate"));
          }
          append_utf8(out, cp);
          break;
        }
        default: HSSTA_REQUIRE(false, err("unknown escape"));
      }
    }
  }

  double parse_number() {
    const size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    // Integer part: "0" alone or a nonzero-led digit run (no leading zeros).
    HSSTA_REQUIRE(!eof() && peek() >= '0' && peek() <= '9',
                  err("invalid number"));
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      HSSTA_REQUIRE(!eof() && peek() >= '0' && peek() <= '9',
                    err("invalid number fraction"));
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      HSSTA_REQUIRE(!eof() && peek() >= '0' && peek() <= '9',
                    err("invalid number exponent"));
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    // Underflow rounds toward zero (legal); overflow yields inf (rejected).
    HSSTA_REQUIRE(end == token.c_str() + token.size() && std::isfinite(d),
                  err("number out of range"));
    return d;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

JsonValue JsonReader::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace hssta::util
