/// \file reduce.hpp
/// Timing-graph reduction passes of the gray-box extraction (paper Section
/// IV.A, Figs. 1-2, after Kobayashi-Malik / Moon et al.):
///
///  * serial merge — an internal vertex with a single fanin edge (or,
///    mirrored, a single fanout edge) is removed and its through-paths
///    become direct edges carrying the statistical sum;
///  * parallel merge — edges sharing source and sink collapse into one edge
///    carrying the statistical max (exactly delay-preserving under Clark's
///    algebra because the common arrival cancels from the tightness);
///  * dangling cleanup — internal vertices that lost all fanin or all
///    fanout (e.g. after non-critical edge pruning) are cascaded away.
///
/// Port vertices are never removed.

#pragma once

#include "hssta/timing/graph.hpp"
#include "hssta/timing/statops.hpp"

namespace hssta::model {

struct ReduceStats {
  size_t serial_merges = 0;
  size_t parallel_merges = 0;
  size_t dangling_removed = 0;
  size_t passes = 0;
  timing::MaxDiagnostics diagnostics;
};

/// One parallel-merge sweep; returns the number of edge groups merged.
size_t parallel_merge_pass(timing::TimingGraph& g,
                           timing::MaxDiagnostics* diag = nullptr);

/// One serial-merge sweep (both orientations); returns merges performed.
size_t serial_merge_pass(timing::TimingGraph& g);

/// Cascade-remove internal vertices without fanin or without fanout,
/// including the edges hanging off them; returns vertices removed.
size_t remove_dangling(timing::TimingGraph& g);

/// Run cleanup + merge passes to fixpoint.
ReduceStats reduce_graph(timing::TimingGraph& g);

}  // namespace hssta::model
