#include "hssta/model/timing_model.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "hssta/util/error.hpp"
#include "hssta/util/strings.hpp"

namespace hssta::model {

using timing::CanonicalForm;
using timing::EdgeId;
using timing::TimingGraph;
using timing::VertexId;

BoundaryData compute_boundary(const netlist::Netlist& nl) {
  BoundaryData b;
  const auto& sinks = nl.net_sinks();
  const auto fanin_cap = [&](netlist::NetId n) {
    double cap = 0.0;
    for (netlist::GateId gate : sinks[n]) cap += nl.gate(gate).type->input_cap;
    return cap;
  };
  const auto drive = [&](netlist::NetId n) {
    const netlist::GateId d = nl.driver(n);
    return d == netlist::kNoGate ? 0.0 : nl.gate(d).type->drive_res;
  };

  if (!nl.is_sequential()) {
    for (netlist::NetId n : nl.primary_inputs())
      b.input_cap.push_back(fanin_cap(n));
    for (netlist::NetId n : nl.primary_outputs())
      b.output_drive_res.push_back(drive(n));
    return b;
  }

  // Sequential: mirror the timing-graph port order exactly (see
  // timing::build_timing_graph) — sources are PIs then register launches,
  // sinks follow vertex-creation order.
  std::vector<uint8_t> captured(nl.num_nets(), 0);
  for (const netlist::Register& r : nl.registers()) captured[r.data_in] = 1;
  const auto is_sink = [&](netlist::NetId n) {
    return nl.is_primary_output(n) || captured[n] != 0;
  };
  for (netlist::NetId n : nl.primary_inputs())
    b.input_cap.push_back(fanin_cap(n));
  for (const netlist::Register& r : nl.registers())
    b.input_cap.push_back(fanin_cap(r.data_out));
  // Ports that are also sources (feed-throughs, register launches) drive
  // with zero resistance, like combinational feed-throughs.
  for (netlist::NetId n : nl.primary_inputs())
    if (is_sink(n)) b.output_drive_res.push_back(0.0);
  for (const netlist::Register& r : nl.registers())
    if (is_sink(r.data_out)) b.output_drive_res.push_back(0.0);
  for (netlist::GateId g = 0; g < nl.num_gates(); ++g) {
    const netlist::NetId n = nl.gate(g).output;
    if (is_sink(n)) b.output_drive_res.push_back(drive(n));
  }
  return b;
}

TimingModel::TimingModel(std::string name, TimingGraph graph,
                         variation::ModuleVariation variation,
                         BoundaryData boundary)
    : name_(std::move(name)),
      graph_(std::move(graph)),
      variation_(std::move(variation)),
      boundary_(std::move(boundary)) {
  HSSTA_REQUIRE(boundary_.input_cap.size() == graph_.inputs().size(),
                "boundary input caps must match input ports");
  HSSTA_REQUIRE(boundary_.output_drive_res.size() == graph_.outputs().size(),
                "boundary drives must match output ports");
}

std::vector<std::string> TimingModel::input_names() const {
  std::vector<std::string> names;
  for (VertexId v : graph_.inputs()) names.push_back(graph_.vertex(v).name);
  return names;
}

std::vector<std::string> TimingModel::output_names() const {
  std::vector<std::string> names;
  for (VertexId v : graph_.outputs()) names.push_back(graph_.vertex(v).name);
  return names;
}

core::DelayMatrix TimingModel::io_delays() const {
  return core::all_pairs_io_delays(graph_);
}

void TimingModel::set_sequential(
    std::vector<ModelRegister> registers,
    std::vector<SequentialConstraint> constraints) {
  const auto has_name = [this](const std::vector<VertexId>& ports,
                               const std::string& name) {
    for (VertexId v : ports)
      if (graph_.vertex(v).name == name) return true;
    return false;
  };
  for (const ModelRegister& r : registers) {
    HSSTA_REQUIRE(has_name(graph_.inputs(), r.launch),
                  "register " + r.name + ": launch '" + r.launch +
                      "' is not an input port");
    HSSTA_REQUIRE(has_name(graph_.outputs(), r.capture),
                  "register " + r.name + ": capture '" + r.capture +
                      "' is not an output port");
    HSSTA_REQUIRE(r.init >= 0 && r.init <= 3,
                  "register " + r.name + ": init must be 0..3");
  }
  const size_t dim = variation_.space->dim();
  for (const SequentialConstraint& c : constraints)
    HSSTA_REQUIRE(c.delay.dim() == dim,
                  "constraint " + c.label +
                      ": delay dimension does not match the model");
  registers_ = std::move(registers);
  constraints_ = std::move(constraints);
}

namespace {

/// Hex-float formatting for bit-exact round trips.
std::string hexf(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parse_double(const std::string& tok) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  HSSTA_REQUIRE(end && *end == '\0', "malformed number in model file: " + tok);
  return v;
}

std::string checked_token(std::istream& is, const char* what) {
  std::string tok;
  if (!(is >> tok)) throw Error(std::string("model file truncated at ") + what);
  return tok;
}

void expect_keyword(std::istream& is, const std::string& kw) {
  const std::string tok = checked_token(is, kw.c_str());
  HSSTA_REQUIRE(tok == kw, "model file: expected '" + kw + "', got '" + tok +
                               "'");
}

/// Strict count parsing (no signs, no trailing garbage, overflow rejected),
/// shared with every other parser via util::parse_count; `what` names the
/// field in the error.
size_t parse_size(std::istream& is, const char* what) {
  return static_cast<size_t>(
      parse_count(std::string("model file field '") + what + "'",
                  checked_token(is, what)));
}

}  // namespace

void TimingModel::save(std::ostream& os) const {
  const variation::GridPartition& part = variation_.partition;
  const variation::VariationSpace& space = *variation_.space;
  const variation::SpatialCorrelationConfig& corr =
      space.correlation_model().config();
  const variation::ParameterSet& params = space.parameters();

  // Sequential data bumps the format version; purely combinational models
  // keep writing version 1 byte-identically.
  const bool sequential = !registers_.empty() || !constraints_.empty();
  os << (sequential ? "hstm 2\n" : "hstm 1\n");
  os << "name " << name_ << '\n';
  os << "die " << hexf(part.die().width) << ' ' << hexf(part.die().height)
     << '\n';
  os << "grid " << part.nx() << ' ' << part.ny() << '\n';
  os << "corr " << hexf(corr.rho_neighbor) << ' ' << hexf(corr.rho_global)
     << ' ' << hexf(corr.cutoff) << '\n';
  os << "load_sigma " << hexf(params.load_sigma_rel) << '\n';
  os << "params " << params.size() << '\n';
  for (const auto& p : params.params)
    os << "param " << p.name << ' ' << hexf(p.sigma_rel) << ' '
       << hexf(p.global_frac) << ' ' << hexf(p.local_frac) << ' '
       << hexf(p.random_frac) << '\n';
  // The loader re-derives the PCA from the stored geometry; record the
  // retained component count as a consistency check (hex-float geometry
  // makes the recomputation bit-deterministic).
  os << "pca " << space.num_components() << '\n';

  os << "ports " << graph_.inputs().size() << ' ' << graph_.outputs().size()
     << '\n';
  for (size_t i = 0; i < graph_.inputs().size(); ++i)
    os << "in " << graph_.vertex(graph_.inputs()[i]).name << ' '
       << hexf(boundary_.input_cap[i]) << '\n';
  for (size_t j = 0; j < graph_.outputs().size(); ++j)
    os << "out " << graph_.vertex(graph_.outputs()[j]).name << ' '
       << hexf(boundary_.output_drive_res[j]) << '\n';

  // Live vertices, re-indexed densely.
  std::vector<VertexId> dense_to_slot;
  std::vector<size_t> slot_to_dense(graph_.num_vertex_slots(), 0);
  for (VertexId v = 0; v < graph_.num_vertex_slots(); ++v) {
    if (!graph_.vertex_alive(v)) continue;
    slot_to_dense[v] = dense_to_slot.size();
    dense_to_slot.push_back(v);
  }
  os << "vertices " << dense_to_slot.size() << '\n';
  for (VertexId v : dense_to_slot) {
    const timing::TimingVertex& tv = graph_.vertex(v);
    HSSTA_REQUIRE(tv.name.find_first_of(" \t\n") == std::string::npos,
                  "vertex names with whitespace cannot be serialized");
    const char* kind = tv.is_input ? (tv.is_output ? "io" : "i")
                                   : (tv.is_output ? "o" : "x");
    os << "v " << tv.name << ' ' << kind << '\n';
  }

  os << "edges " << graph_.num_live_edges() << '\n';
  for (EdgeId e = 0; e < graph_.num_edge_slots(); ++e) {
    if (!graph_.edge_alive(e)) continue;
    const timing::TimingEdge& te = graph_.edge(e);
    os << "e " << slot_to_dense[te.from] << ' ' << slot_to_dense[te.to] << ' '
       << hexf(te.delay.nominal()) << ' ' << hexf(te.delay.random());
    for (double c : te.delay.corr()) os << ' ' << hexf(c);
    os << '\n';
  }

  if (sequential) {
    const auto no_ws = [](const std::string& s) {
      return !s.empty() && s.find_first_of(" \t\n") == std::string::npos;
    };
    os << "registers " << registers_.size() << '\n';
    for (const ModelRegister& r : registers_) {
      HSSTA_REQUIRE(no_ws(r.name) && no_ws(r.launch) && no_ws(r.capture),
                    "register names with whitespace cannot be serialized");
      os << "r " << r.name << ' ' << r.launch << ' ' << r.capture << ' '
         << (r.clock.empty() ? "-" : r.clock) << ' ' << r.init << '\n';
    }
    os << "constraints " << constraints_.size() << '\n';
    for (const SequentialConstraint& c : constraints_) {
      HSSTA_REQUIRE(no_ws(c.label),
                    "constraint labels with whitespace cannot be serialized");
      os << "c " << c.label << ' ' << hexf(c.delay.nominal()) << ' '
         << hexf(c.delay.random());
      for (double k : c.delay.corr()) os << ' ' << hexf(k);
      os << '\n';
    }
  }
  os << "end\n";

  // A full disk or closed sink fails silently on operator<<; flush and
  // check once here so a truncated model can never pass for a saved one.
  os.flush();
  HSSTA_REQUIRE(os.good(),
                "model serialization failed: output stream entered an error "
                "state (disk full or sink closed?)");
}

void TimingModel::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw Error("cannot open model file for writing: " + path);
  save(os);
  os.close();
  if (!os) throw Error("write to model file failed: " + path);
}

TimingModel TimingModel::load(std::istream& is) {
  expect_keyword(is, "hstm");
  const std::string version = checked_token(is, "version");
  HSSTA_REQUIRE(version == "1" || version == "2",
                "unsupported model format version " + version);

  expect_keyword(is, "name");
  const std::string name = checked_token(is, "name");

  expect_keyword(is, "die");
  const double w = parse_double(checked_token(is, "die width"));
  const double h = parse_double(checked_token(is, "die height"));
  expect_keyword(is, "grid");
  const size_t nx = parse_size(is, "grid nx");
  const size_t ny = parse_size(is, "grid ny");
  HSSTA_REQUIRE(nx > 0 && ny > 0, "bad grid line in model file");

  expect_keyword(is, "corr");
  variation::SpatialCorrelationConfig corr;
  corr.rho_neighbor = parse_double(checked_token(is, "rho_neighbor"));
  corr.rho_global = parse_double(checked_token(is, "rho_global"));
  corr.cutoff = parse_double(checked_token(is, "cutoff"));

  expect_keyword(is, "load_sigma");
  variation::ParameterSet params;
  params.load_sigma_rel = parse_double(checked_token(is, "load_sigma"));
  expect_keyword(is, "params");
  const size_t n_params = parse_size(is, "params count");
  HSSTA_REQUIRE(n_params > 0, "bad params count");
  for (size_t k = 0; k < n_params; ++k) {
    expect_keyword(is, "param");
    variation::ProcessParameter p;
    p.name = checked_token(is, "param name");
    p.sigma_rel = parse_double(checked_token(is, "sigma"));
    p.global_frac = parse_double(checked_token(is, "global frac"));
    p.local_frac = parse_double(checked_token(is, "local frac"));
    p.random_frac = parse_double(checked_token(is, "random frac"));
    params.params.push_back(std::move(p));
  }

  expect_keyword(is, "pca");
  const size_t retained = parse_size(is, "pca components");
  HSSTA_REQUIRE(retained > 0, "bad pca line");

  variation::GridPartition partition(placement::Die{w, h}, nx, ny);
  linalg::PcaOptions pca_opts;
  pca_opts.max_components = retained;
  auto space = std::make_shared<const variation::VariationSpace>(
      params, partition.geometry(), corr, pca_opts);
  HSSTA_REQUIRE(space->num_components() == retained,
                "model file PCA dimension could not be reproduced");
  variation::ModuleVariation mv{partition, space};

  expect_keyword(is, "ports");
  const size_t ni = parse_size(is, "ports inputs");
  const size_t no = parse_size(is, "ports outputs");
  BoundaryData boundary;
  std::vector<std::pair<std::string, bool>> input_ports;  // name, also-output
  std::vector<std::string> output_ports;
  for (size_t i = 0; i < ni; ++i) {
    expect_keyword(is, "in");
    input_ports.emplace_back(checked_token(is, "input name"), false);
    boundary.input_cap.push_back(parse_double(checked_token(is, "input cap")));
  }
  for (size_t j = 0; j < no; ++j) {
    expect_keyword(is, "out");
    output_ports.push_back(checked_token(is, "output name"));
    boundary.output_drive_res.push_back(
        parse_double(checked_token(is, "output drive")));
  }

  expect_keyword(is, "vertices");
  const size_t nv = parse_size(is, "vertices count");
  TimingGraph graph(space);
  std::vector<VertexId> dense_to_slot;
  // det-ok: membership test only (duplicate-name guard), never iterated.
  std::unordered_set<std::string> vertex_names;
  size_t seen_inputs = 0, seen_outputs = 0;
  for (size_t k = 0; k < nv; ++k) {
    expect_keyword(is, "v");
    const std::string vname = checked_token(is, "vertex name");
    HSSTA_REQUIRE(vertex_names.insert(vname).second,
                  "model file: duplicate vertex name '" + vname + "'");
    const std::string kind = checked_token(is, "vertex kind");
    const bool is_in = kind == "i" || kind == "io";
    const bool is_out = kind == "o" || kind == "io";
    HSSTA_REQUIRE(kind == "i" || kind == "o" || kind == "x" || kind == "io",
                  "bad vertex kind: " + kind);
    if (is_in) {
      HSSTA_REQUIRE(seen_inputs < input_ports.size() &&
                        input_ports[seen_inputs].first == vname,
                    "vertex/port order mismatch for input " + vname);
      ++seen_inputs;
    }
    if (is_out) {
      HSSTA_REQUIRE(seen_outputs < output_ports.size() &&
                        output_ports[seen_outputs] == vname,
                    "vertex/port order mismatch for output " + vname);
      ++seen_outputs;
    }
    dense_to_slot.push_back(graph.add_vertex(vname, is_in, is_out));
  }
  HSSTA_REQUIRE(seen_inputs == ni && seen_outputs == no,
                "model file port/vertex mismatch");

  expect_keyword(is, "edges");
  const size_t ne = parse_size(is, "edges count");
  const size_t dim = space->dim();
  for (size_t k = 0; k < ne; ++k) {
    expect_keyword(is, "e");
    const size_t from = parse_size(is, "edge from");
    const size_t to = parse_size(is, "edge to");
    HSSTA_REQUIRE(from < nv && to < nv, "bad edge endpoints");
    CanonicalForm d(dim);
    d.set_nominal(parse_double(checked_token(is, "edge nominal")));
    d.set_random(parse_double(checked_token(is, "edge random")));
    for (size_t c = 0; c < dim; ++c)
      d.corr()[c] = parse_double(checked_token(is, "edge coefficient"));
    graph.add_edge(dense_to_slot[from], dense_to_slot[to], std::move(d));
  }

  // Version 2 appends optional registers/constraints blocks before 'end'.
  std::vector<ModelRegister> registers;
  std::vector<SequentialConstraint> constraints;
  std::string tok = checked_token(is, "end");
  if (version == "2" && tok == "registers") {
    const size_t nr = parse_size(is, "registers count");
    for (size_t k = 0; k < nr; ++k) {
      expect_keyword(is, "r");
      ModelRegister r;
      r.name = checked_token(is, "register name");
      r.launch = checked_token(is, "register launch");
      r.capture = checked_token(is, "register capture");
      r.clock = checked_token(is, "register clock");
      if (r.clock == "-") r.clock.clear();
      r.init = static_cast<int>(parse_size(is, "register init"));
      HSSTA_REQUIRE(r.init <= 3, "bad register init value");
      registers.push_back(std::move(r));
    }
    tok = checked_token(is, "end");
  }
  if (version == "2" && tok == "constraints") {
    const size_t nc = parse_size(is, "constraints count");
    for (size_t k = 0; k < nc; ++k) {
      expect_keyword(is, "c");
      SequentialConstraint c{checked_token(is, "constraint label"),
                             CanonicalForm(dim)};
      c.delay.set_nominal(parse_double(checked_token(is, "constraint nominal")));
      c.delay.set_random(parse_double(checked_token(is, "constraint random")));
      for (size_t d = 0; d < dim; ++d)
        c.delay.corr()[d] =
            parse_double(checked_token(is, "constraint coefficient"));
      constraints.push_back(std::move(c));
    }
    tok = checked_token(is, "end");
  }
  HSSTA_REQUIRE(tok == "end",
                "model file: expected 'end', got '" + tok + "'");
  // A concatenated or corrupted file must not load "successfully" with its
  // tail silently ignored; 'end' is the final token.
  std::string extra;
  if (is >> extra)
    throw Error("model file: trailing content after 'end': '" + extra + "'");

  graph.validate();
  TimingModel model(name, std::move(graph), std::move(mv),
                    std::move(boundary));
  if (!registers.empty() || !constraints.empty())
    model.set_sequential(std::move(registers), std::move(constraints));
  return model;
}

TimingModel TimingModel::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open model file: " + path);
  return load(is);
}

}  // namespace hssta::model
