/// \file timing_model.hpp
/// The gray-box statistical timing model (paper Section III): a reduced
/// timing graph with the same ports and (statistically) the same
/// input-output delay matrix as the original module, plus everything the
/// design level needs to re-embed it — the module's grid partition and
/// correlation configuration (for the variable replacement of Section V)
/// and boundary electrical data (the paper's future-work extension: input
/// pin capacitance and output drive resistance, letting the design level
/// adjust boundary delays for the actually connected load).
///
/// Models serialize to a line-based text format (.hstm). Doubles are
/// written as hex-floats so a round-trip is bit-exact, which matters
/// because the loader re-derives the PCA from the stored grid geometry and
/// must reproduce the exact space the stored coefficients refer to.
///
/// Sequential modules extend the model with register records (which input
/// port is a flop launch, which output port its capture) and folded
/// FF-to-FF internal constraints — the statistical max of the
/// register-to-register path delays of each clock-bounded segment, so a
/// design-level user can check internal cycle limits without the module's
/// gates. Files with that data carry version "hstm 2" and append optional
/// `registers`/`constraints` blocks; "hstm 1" files (and models without
/// sequential data, which still save as version 1) load unchanged.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "hssta/core/io_delays.hpp"
#include "hssta/netlist/netlist.hpp"
#include "hssta/timing/graph.hpp"
#include "hssta/variation/space.hpp"

namespace hssta::model {

/// Boundary electrical data for load-aware stitching (extension).
struct BoundaryData {
  std::vector<double> input_cap;          ///< fF, per input port
  std::vector<double> output_drive_res;   ///< ns/fF, per output port
};

/// Derive boundary data from the module netlist: an input port presents the
/// sum of the pin caps it drives; an output port drives with its source
/// gate's drive resistance (0 for an input feeding through). For
/// sequential netlists the ports follow the timing-graph order (primary
/// inputs, then register launches; sinks in vertex-creation order);
/// combinational netlists keep the original PI/PO declaration order.
[[nodiscard]] BoundaryData compute_boundary(const netlist::Netlist& nl);

/// Register record of a sequential model, referencing ports by name: the
/// flop launches at input port `launch` (its data output net) and captures
/// at output port `capture` (its data input net). `clock` is empty for
/// unclocked styles; `init` uses the BLIF encoding (0, 1, 2 = don't care,
/// 3 = unknown).
struct ModelRegister {
  std::string name;
  std::string launch;
  std::string capture;
  std::string clock;
  int init = 3;
};

/// One folded FF-to-FF internal constraint: the statistical max of the
/// register-launch-to-register-capture path delays of one clock-bounded
/// segment. The label identifies the segment ("seg3").
struct SequentialConstraint {
  std::string label;
  timing::CanonicalForm delay;
};

class TimingModel {
 public:
  TimingModel(std::string name, timing::TimingGraph graph,
              variation::ModuleVariation variation, BoundaryData boundary);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const timing::TimingGraph& graph() const { return graph_; }
  [[nodiscard]] timing::TimingGraph& graph() { return graph_; }
  [[nodiscard]] const variation::ModuleVariation& variation() const {
    return variation_;
  }
  [[nodiscard]] const BoundaryData& boundary() const { return boundary_; }

  /// Port name lists in port order.
  [[nodiscard]] std::vector<std::string> input_names() const;
  [[nodiscard]] std::vector<std::string> output_names() const;

  /// Die outline of the module (from the grid partition).
  [[nodiscard]] const placement::Die& die() const {
    return variation_.partition.die();
  }

  /// The model's IO delay matrix (its accuracy contract).
  [[nodiscard]] core::DelayMatrix io_delays() const;

  /// --- sequential data ----------------------------------------------------

  /// Attach register records and folded FF-to-FF constraints. Launch and
  /// capture names must resolve to input/output ports; constraint delays
  /// must match the model's variation dimension. Throws on violation.
  void set_sequential(std::vector<ModelRegister> registers,
                      std::vector<SequentialConstraint> constraints);

  [[nodiscard]] bool is_sequential() const { return !registers_.empty(); }
  [[nodiscard]] const std::vector<ModelRegister>& registers() const {
    return registers_;
  }
  [[nodiscard]] const std::vector<SequentialConstraint>& constraints() const {
    return constraints_;
  }

  /// --- serialization ------------------------------------------------------

  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  [[nodiscard]] static TimingModel load(std::istream& is);
  [[nodiscard]] static TimingModel load_file(const std::string& path);

 private:
  std::string name_;
  timing::TimingGraph graph_;
  variation::ModuleVariation variation_;
  BoundaryData boundary_;
  std::vector<ModelRegister> registers_;
  std::vector<SequentialConstraint> constraints_;
};

}  // namespace hssta::model
