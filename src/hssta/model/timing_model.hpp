/// \file timing_model.hpp
/// The gray-box statistical timing model (paper Section III): a reduced
/// timing graph with the same ports and (statistically) the same
/// input-output delay matrix as the original module, plus everything the
/// design level needs to re-embed it — the module's grid partition and
/// correlation configuration (for the variable replacement of Section V)
/// and boundary electrical data (the paper's future-work extension: input
/// pin capacitance and output drive resistance, letting the design level
/// adjust boundary delays for the actually connected load).
///
/// Models serialize to a line-based text format (.hstm). Doubles are
/// written as hex-floats so a round-trip is bit-exact, which matters
/// because the loader re-derives the PCA from the stored grid geometry and
/// must reproduce the exact space the stored coefficients refer to.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "hssta/core/io_delays.hpp"
#include "hssta/netlist/netlist.hpp"
#include "hssta/timing/graph.hpp"
#include "hssta/variation/space.hpp"

namespace hssta::model {

/// Boundary electrical data for load-aware stitching (extension).
struct BoundaryData {
  std::vector<double> input_cap;          ///< fF, per input port
  std::vector<double> output_drive_res;   ///< ns/fF, per output port
};

/// Derive boundary data from the module netlist: an input port presents the
/// sum of the pin caps it drives; an output port drives with its source
/// gate's drive resistance (0 for an input feeding through).
[[nodiscard]] BoundaryData compute_boundary(const netlist::Netlist& nl);

class TimingModel {
 public:
  TimingModel(std::string name, timing::TimingGraph graph,
              variation::ModuleVariation variation, BoundaryData boundary);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const timing::TimingGraph& graph() const { return graph_; }
  [[nodiscard]] timing::TimingGraph& graph() { return graph_; }
  [[nodiscard]] const variation::ModuleVariation& variation() const {
    return variation_;
  }
  [[nodiscard]] const BoundaryData& boundary() const { return boundary_; }

  /// Port name lists in port order.
  [[nodiscard]] std::vector<std::string> input_names() const;
  [[nodiscard]] std::vector<std::string> output_names() const;

  /// Die outline of the module (from the grid partition).
  [[nodiscard]] const placement::Die& die() const {
    return variation_.partition.die();
  }

  /// The model's IO delay matrix (its accuracy contract).
  [[nodiscard]] core::DelayMatrix io_delays() const;

  /// --- serialization ------------------------------------------------------

  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  [[nodiscard]] static TimingModel load(std::istream& is);
  [[nodiscard]] static TimingModel load_file(const std::string& path);

 private:
  std::string name_;
  timing::TimingGraph graph_;
  variation::ModuleVariation variation_;
  BoundaryData boundary_;
};

}  // namespace hssta::model
