#include "hssta/model/extract.hpp"

#include <algorithm>

#include "hssta/util/error.hpp"
#include "hssta/util/hash.hpp"
#include "hssta/util/timer.hpp"

namespace hssta::model {

using timing::EdgeId;
using timing::TimingGraph;
using timing::VertexId;

namespace {

/// Max-bottleneck-criticality path from `input` to `output` in the original
/// graph; returns the edge ids of the widest path (empty if disconnected).
std::vector<EdgeId> widest_path(const TimingGraph& g,
                                const std::vector<double>& cm, VertexId input,
                                VertexId output) {
  std::vector<double> width(g.num_vertex_slots(), -1.0);
  std::vector<EdgeId> via(g.num_vertex_slots(), timing::kNoEdge);
  width[input] = 2.0;  // above any criticality
  for (VertexId v : g.topo_order()) {
    if (width[v] < 0.0) continue;
    for (EdgeId e : g.vertex(v).fanout) {
      const VertexId w = g.edge(e).to;
      const double cand = std::min(width[v], cm[e]);
      if (cand > width[w]) {
        width[w] = cand;
        via[w] = e;
      }
    }
  }
  std::vector<EdgeId> path;
  if (width[output] < 0.0) return path;
  VertexId v = output;
  while (v != input) {
    const EdgeId e = via[v];
    HSSTA_ASSERT(e != timing::kNoEdge, "widest path chain broken");
    path.push_back(e);
    v = g.edge(e).from;
  }
  return path;
}

}  // namespace

// Tripwire (see flow/config.cpp): a new ExtractOptions field must be added
// to the hash below (or explicitly excluded as a pure speed knob) and the
// version tag bumped.
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(ExtractOptions) == 16,
              "ExtractOptions changed: update fingerprint() and its tag");
#endif

uint64_t fingerprint(const ExtractOptions& opts) {
  return util::Fnv1a()
      .str("hssta.extract_options.v1")
      .f64(opts.criticality_threshold)
      .b(opts.repair_connectivity)
      .value();
}

double ExtractionStats::edge_ratio() const {
  return original_edges
             ? static_cast<double>(model_edges) /
                   static_cast<double>(original_edges)
             : 0.0;
}

double ExtractionStats::vertex_ratio() const {
  return original_vertices
             ? static_cast<double>(model_vertices) /
                   static_cast<double>(original_vertices)
             : 0.0;
}

Extraction extract_timing_model(const timing::BuiltGraph& built,
                                const variation::ModuleVariation& mv,
                                std::string name, BoundaryData boundary,
                                const ExtractOptions& opts) {
  exec::SerialExecutor ex;
  return extract_timing_model(built, mv, std::move(name), std::move(boundary),
                              ex, opts);
}

Extraction extract_timing_model(const timing::BuiltGraph& built,
                                const variation::ModuleVariation& mv,
                                std::string name, BoundaryData boundary,
                                exec::Executor& ex,
                                const ExtractOptions& opts) {
  HSSTA_REQUIRE(opts.criticality_threshold >= 0.0 &&
                    opts.criticality_threshold < 1.0,
                "criticality threshold must lie in [0, 1)");
  const TimingGraph& original = built.graph;
  WallTimer timer;

  ExtractionStats stats;
  stats.original_vertices = original.num_live_vertices();
  stats.original_edges = original.num_live_edges();

  // Step 1 (paper Fig. 3): maximum criticality per edge — the dominant
  // cost, parallelized across the executor per input port or (for
  // input-poor graphs) level-synchronously within each pass.
  core::CriticalityOptions copts;
  copts.level_parallel = opts.level_parallel;
  const core::CriticalityResult crit =
      core::compute_criticality(original, ex, copts);
  stats.criticalities.reserve(stats.original_edges);
  for (EdgeId e = 0; e < original.num_edge_slots(); ++e)
    if (original.edge_alive(e))
      stats.criticalities.push_back(crit.max_criticality[e]);

  // Step 2: prune edges below delta on a working copy.
  TimingGraph g = original;
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    if (!g.edge_alive(e)) continue;
    if (crit.max_criticality[e] < opts.criticality_threshold) {
      g.remove_edge(e);
      ++stats.edges_pruned;
    }
  }

  // Connectivity repair: every originally connected IO pair must stay
  // connected (the model's contract, Section III).
  if (opts.repair_connectivity) {
    const auto& ins = g.inputs();
    const auto& outs = g.outputs();
    for (size_t i = 0; i < ins.size(); ++i) {
      std::vector<uint8_t> reach = g.reachable_from(ins[i]);
      for (size_t j = 0; j < outs.size(); ++j) {
        if (!crit.io_delays.is_valid(i, j)) continue;  // never connected
        if (reach[outs[j]]) continue;
        const std::vector<EdgeId> path =
            widest_path(original, crit.max_criticality, ins[i], outs[j]);
        HSSTA_ASSERT(!path.empty(), "repair path must exist in the original");
        for (EdgeId e : path)
          if (!g.edge_alive(e))
            g.add_edge(original.edge(e).from, original.edge(e).to,
                       original.edge(e).delay);
        ++stats.pairs_repaired;
        reach = g.reachable_from(ins[i]);  // repair extends reachability
      }
    }
  }

  // Step 3: merge to fixpoint.
  stats.reduce = reduce_graph(g);

  stats.model_vertices = g.num_live_vertices();
  stats.model_edges = g.num_live_edges();
  stats.seconds = timer.seconds();

  TimingModel model(std::move(name), std::move(g), mv, std::move(boundary));
  return Extraction{std::move(model), std::move(stats)};
}

}  // namespace hssta::model
