/// \file extract.hpp
/// Gray-box statistical timing model extraction (paper Section IV, Fig. 3):
///   1. compute the maximum criticality cm of every edge;
///   2. remove edges with cm below the threshold delta;
///   3. apply serial and parallel merges (plus dangling cleanup) to a
///      fixpoint.
/// Step 2 can in rare cases disconnect an originally connected IO pair
/// (every edge of some cut fell below delta); the extractor restores the
/// max-bottleneck-criticality path for each such pair so the model's
/// connectivity contract always holds (counted in the stats).

#pragma once

#include <string>
#include <vector>

#include "hssta/core/criticality.hpp"
#include "hssta/exec/executor.hpp"
#include "hssta/model/reduce.hpp"
#include "hssta/model/timing_model.hpp"
#include "hssta/timing/builder.hpp"

namespace hssta::model {

struct ExtractOptions {
  /// The paper's delta: edges with cm below this are pruned (Section VI
  /// uses 0.05).
  double criticality_threshold = 0.05;
  /// Restore a path for IO pairs disconnected by pruning.
  bool repair_connectivity = true;
  /// Parallel schedule of the criticality step (forwarded to
  /// core::CriticalityOptions). Purely a speed knob — extraction results
  /// are bit-identical either way, so it takes no part in any cache key.
  timing::LevelParallel level_parallel = timing::LevelParallel::kAuto;
};

/// Stable 64-bit fingerprint of the result-affecting extraction options:
/// criticality_threshold and repair_connectivity. level_parallel is a pure
/// speed knob (bit-identical results) and deliberately excluded, so cached
/// models are shared across schedules and thread counts.
[[nodiscard]] uint64_t fingerprint(const ExtractOptions& opts);

struct ExtractionStats {
  size_t original_vertices = 0;  ///< Vo (live vertices before extraction)
  size_t original_edges = 0;     ///< Eo
  size_t model_vertices = 0;     ///< Vm
  size_t model_edges = 0;        ///< Em
  size_t edges_pruned = 0;
  size_t pairs_repaired = 0;
  ReduceStats reduce;
  double seconds = 0.0;          ///< wall-clock extraction (or cache load) time
  /// cm of every originally live edge (the paper's Fig. 6 histogram data).
  std::vector<double> criticalities;
  /// True when the model came from a cache::ModelCache hit instead of a
  /// fresh extraction; original_* counts and criticalities are then unknown
  /// (zero/empty) — only the model_* counts describe the loaded graph.
  bool from_cache = false;

  [[nodiscard]] double edge_ratio() const;    ///< pe = Em / Eo
  [[nodiscard]] double vertex_ratio() const;  ///< pv = Vm / Vo
};

struct Extraction {
  TimingModel model;
  ExtractionStats stats;
};

/// Extract the timing model of a built module graph. `boundary` typically
/// comes from compute_boundary(netlist). The dominant cost — the per-input
/// criticality passes of step 1 — fans out across `ex`; pruning, repair and
/// reduction stay serial, and the result is bit-identical at every thread
/// count.
[[nodiscard]] Extraction extract_timing_model(
    const timing::BuiltGraph& built, const variation::ModuleVariation& mv,
    std::string name, BoundaryData boundary, exec::Executor& ex,
    const ExtractOptions& opts = {});

/// Serial convenience overload (runs on a call-local SerialExecutor).
[[nodiscard]] Extraction extract_timing_model(
    const timing::BuiltGraph& built, const variation::ModuleVariation& mv,
    std::string name, BoundaryData boundary, const ExtractOptions& opts = {});

}  // namespace hssta::model
