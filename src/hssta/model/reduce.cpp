#include "hssta/model/reduce.hpp"

#include <algorithm>
#include <unordered_map>

#include "hssta/util/error.hpp"

namespace hssta::model {

using timing::CanonicalForm;
using timing::EdgeId;
using timing::TimingGraph;
using timing::VertexId;

size_t parallel_merge_pass(TimingGraph& g, timing::MaxDiagnostics* diag) {
  size_t merged_groups = 0;
  const size_t vertex_count = g.num_vertex_slots();
  // det-ok: iteration order only groups edges; the merge result per group
  // is order-independent and edge ids stay sorted within each bucket.
  std::unordered_map<VertexId, std::vector<EdgeId>> by_sink;
  for (VertexId v = 0; v < vertex_count; ++v) {
    if (!g.vertex_alive(v)) continue;
    by_sink.clear();
    for (EdgeId e : g.vertex(v).fanout) by_sink[g.edge(e).to].push_back(e);
    for (auto& [sink, edges] : by_sink) {
      if (edges.size() < 2) continue;
      CanonicalForm folded = g.edge(edges[0]).delay;
      for (size_t k = 1; k < edges.size(); ++k)
        folded = timing::statistical_max(folded, g.edge(edges[k]).delay, diag);
      for (EdgeId e : edges) g.remove_edge(e);
      g.add_edge(v, sink, std::move(folded));
      ++merged_groups;
    }
  }
  return merged_groups;
}

size_t serial_merge_pass(TimingGraph& g) {
  size_t merges = 0;
  const size_t vertex_count = g.num_vertex_slots();
  for (VertexId v = 0; v < vertex_count; ++v) {
    if (!g.vertex_alive(v)) continue;
    const timing::TimingVertex& tv = g.vertex(v);
    if (tv.is_input || tv.is_output) continue;

    if (tv.fanin.size() == 1 && !tv.fanout.empty()) {
      // Forward merge (paper Fig. 1a): route every fanout through the
      // single fanin source.
      const EdgeId in_edge = tv.fanin[0];
      const VertexId src = g.edge(in_edge).from;
      const CanonicalForm in_delay = g.edge(in_edge).delay;
      const std::vector<EdgeId> outs = tv.fanout;  // copy: we mutate
      for (EdgeId e : outs) {
        CanonicalForm d = in_delay;
        d += g.edge(e).delay;
        const VertexId dst = g.edge(e).to;
        g.remove_edge(e);
        g.add_edge(src, dst, std::move(d));
      }
      g.remove_edge(in_edge);
      g.remove_vertex(v);
      ++merges;
    } else if (tv.fanout.size() == 1 && tv.fanin.size() > 1) {
      // Reverse merge (paper Fig. 1b): route every fanin into the single
      // fanout sink.
      const EdgeId out_edge = tv.fanout[0];
      const VertexId dst = g.edge(out_edge).to;
      const CanonicalForm out_delay = g.edge(out_edge).delay;
      const std::vector<EdgeId> ins = tv.fanin;
      for (EdgeId e : ins) {
        CanonicalForm d = g.edge(e).delay;
        d += out_delay;
        const VertexId src = g.edge(e).from;
        g.remove_edge(e);
        g.add_edge(src, dst, std::move(d));
      }
      g.remove_edge(out_edge);
      g.remove_vertex(v);
      ++merges;
    }
  }
  return merges;
}

size_t remove_dangling(TimingGraph& g) {
  size_t removed = 0;
  std::vector<VertexId> worklist;
  for (VertexId v = 0; v < g.num_vertex_slots(); ++v) {
    if (!g.vertex_alive(v)) continue;
    const timing::TimingVertex& tv = g.vertex(v);
    if (tv.is_input || tv.is_output) continue;
    if (tv.fanin.empty() || tv.fanout.empty()) worklist.push_back(v);
  }
  while (!worklist.empty()) {
    const VertexId v = worklist.back();
    worklist.pop_back();
    if (!g.vertex_alive(v)) continue;
    const timing::TimingVertex& tv = g.vertex(v);
    if (tv.is_input || tv.is_output) continue;
    if (!tv.fanin.empty() && !tv.fanout.empty()) continue;
    // Detach remaining edges; neighbours may become dangling in turn.
    const std::vector<EdgeId> edges_in = tv.fanin;
    const std::vector<EdgeId> edges_out = tv.fanout;
    for (EdgeId e : edges_in) {
      const VertexId nb = g.edge(e).from;
      g.remove_edge(e);
      worklist.push_back(nb);
    }
    for (EdgeId e : edges_out) {
      const VertexId nb = g.edge(e).to;
      g.remove_edge(e);
      worklist.push_back(nb);
    }
    g.remove_vertex(v);
    ++removed;
  }
  return removed;
}

ReduceStats reduce_graph(TimingGraph& g) {
  ReduceStats stats;
  bool changed = true;
  while (changed) {
    ++stats.passes;
    const size_t dangling = remove_dangling(g);
    const size_t serial = serial_merge_pass(g);
    const size_t parallel = parallel_merge_pass(g, &stats.diagnostics);
    stats.dangling_removed += dangling;
    stats.serial_merges += serial;
    stats.parallel_merges += parallel;
    changed = dangling + serial + parallel > 0;
  }
  return stats;
}

}  // namespace hssta::model
