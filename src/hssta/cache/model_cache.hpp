/// \file model_cache.hpp
/// Persistent .hstm model cache keyed by 64-bit content fingerprints.
///
/// The paper's central economy is that a module's gray-box timing model is
/// extracted once and reused across every hierarchical context (Sections
/// III-V) — but within one process lifetime only, until now. ModelCache
/// extends the reuse across processes: a cache directory maps the
/// fingerprint of everything an extraction depends on — netlist structure,
/// cell library, pipeline configuration, extraction options (see
/// netlist::fingerprint, library::fingerprint, flow::extraction_fingerprint,
/// model::fingerprint) — to the extracted model's .hstm serialization.
/// Because the serializer round-trips bit-exactly (hex-float doubles), a
/// cache hit is *byte-identical* to a fresh extraction, so caching never
/// changes a result.
///
/// Storage contract:
///  * one file per entry, `<dir>/<16-hex-digit-fingerprint>.hstm`;
///  * the first line is a `# hstm-cache v1 fingerprint <hex>` comment,
///    re-verified on load (a renamed or cross-copied file misses instead of
///    silently loading the wrong model); the remainder is a plain .hstm
///    body, byte-identical to TimingModel::save output;
///  * writes go to a unique temp file in the same directory and are
///    published with an atomic rename, so concurrent processes and threads
///    sharing one cache directory never observe a partial entry;
///  * corrupt, truncated or mismatched entries are evicted (deleted) and
///    reported as misses — the cache trusts nothing it cannot re-verify.
///
/// Thread safety: all methods are safe to call concurrently on one
/// ModelCache and across ModelCache instances sharing a directory.

#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "hssta/model/timing_model.hpp"

namespace hssta::cache {

/// Hit/miss accounting. A failed verification counts one eviction *and* one
/// miss (the caller re-extracts either way); a store after a miss is
/// counted separately so `stores <= misses` flags write failures.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stores = 0;
  uint64_t evictions = 0;

  CacheStats& operator+=(const CacheStats& o);
  bool operator==(const CacheStats&) const = default;
};

class ModelCache {
 public:
  /// Opens (and creates, including parents) the cache directory; throws
  /// hssta::Error if the directory cannot be created. Temp files orphaned
  /// by a crashed writer (older than one hour, so live writers are never
  /// raced) are swept on open.
  explicit ModelCache(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Entry file path for a fingerprint (exists or not).
  [[nodiscard]] std::string entry_path(uint64_t fingerprint) const;

  /// Look up a fingerprint: nullopt on a miss. An unreadable, corrupt or
  /// wrongly-fingerprinted entry is evicted and reported as a miss.
  [[nodiscard]] std::optional<model::TimingModel> load(uint64_t fingerprint);

  /// Publish a model under a fingerprint (write-temp-then-rename, atomic).
  /// Throws hssta::Error on I/O failure — a misconfigured cache directory
  /// should fail loudly, not silently stop caching.
  void store(uint64_t fingerprint, const model::TimingModel& m);

  /// This instance's counters (snapshot).
  [[nodiscard]] CacheStats stats() const;

 private:
  void account(const CacheStats& delta);

  std::string dir_;
  mutable std::mutex mu_;
  CacheStats stats_;
};

}  // namespace hssta::cache
