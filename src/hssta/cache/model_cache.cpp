#include "hssta/cache/model_cache.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "hssta/util/error.hpp"
#include "hssta/util/hash.hpp"
#include "hssta/util/strings.hpp"

namespace hssta::cache {

namespace fs = std::filesystem;

namespace {

std::string header_line(uint64_t fingerprint) {
  return "# hstm-cache v1 fingerprint " + util::Fnv1a::hex(fingerprint);
}

/// Remove temp files orphaned by a crashed writer. Publishing is
/// write-temp-then-rename, so a process killed mid-store leaves a
/// `.tmp-*` behind that nothing would ever delete; sweep the ones old
/// enough (one hour) that no live writer can still own them. Best effort:
/// sweep failures are ignored, a later open retries.
void sweep_stale_temp_files(const fs::path& dir) {
  std::error_code ec;
  const auto now = fs::file_time_type::clock::now();
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!starts_with(it->path().filename().string(), ".tmp-")) continue;
    const auto mtime = fs::last_write_time(it->path(), ec);
    if (ec) continue;
    if (now - mtime > std::chrono::hours(1)) fs::remove(it->path(), ec);
  }
}

}  // namespace

CacheStats& CacheStats::operator+=(const CacheStats& o) {
  hits += o.hits;
  misses += o.misses;
  stores += o.stores;
  evictions += o.evictions;
  return *this;
}

ModelCache::ModelCache(std::string dir) : dir_(std::move(dir)) {
  HSSTA_REQUIRE(!dir_.empty(), "model cache needs a directory");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_))
    throw Error("cannot create model cache directory '" + dir_ +
                "': " + (ec ? ec.message() : "not a directory"));
  sweep_stale_temp_files(dir_);
}

std::string ModelCache::entry_path(uint64_t fingerprint) const {
  return (fs::path(dir_) / (util::Fnv1a::hex(fingerprint) + ".hstm"))
      .string();
}

std::optional<model::TimingModel> ModelCache::load(uint64_t fingerprint) {
  const std::string path = entry_path(fingerprint);
  std::ifstream is(path);
  if (!is) {
    account({.misses = 1});
    return std::nullopt;
  }
  std::string header;
  std::getline(is, header);
  if (header == header_line(fingerprint)) {
    try {
      model::TimingModel m = model::TimingModel::load(is);
      account({.hits = 1});
      return m;
    } catch (const Error&) {
      // fall through to eviction: truncated write, bit rot, or a file
      // produced by an incompatible serializer version.
    }
  }
  is.close();
  // Best-effort eviction. There is a deliberate benign race here: if a
  // concurrent store() republished a valid entry between our failed read
  // and this remove, we delete that fresh entry — the next lookup simply
  // misses and re-extracts, so results are never affected; closing the
  // window would need fd-conditional deletion POSIX does not offer.
  std::error_code ec;
  fs::remove(path, ec);
  account({.misses = 1, .evictions = 1});
  return std::nullopt;
}

void ModelCache::store(uint64_t fingerprint, const model::TimingModel& m) {
  // Unique temp name per (process, store call) so concurrent writers —
  // threads here, or other processes sharing the directory — never collide;
  // the final rename is atomic, last writer wins with identical bytes.
  static std::atomic<uint64_t> counter{0};
  const fs::path tmp =
      fs::path(dir_) / (".tmp-" + util::Fnv1a::hex(fingerprint) + "-" +
                        std::to_string(::getpid()) + "-" +
                        std::to_string(counter.fetch_add(1)));
  {
    std::ofstream os(tmp);
    if (!os)
      throw Error("cannot open model cache temp file for writing: " +
                  tmp.string());
    os << header_line(fingerprint) << '\n';
    try {
      m.save(os);  // flushes and throws on stream failure
    } catch (...) {
      os.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      throw;
    }
    os.close();
    if (!os) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw Error("write to model cache temp file failed: " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, entry_path(fingerprint), ec);
  if (ec) {
    std::error_code ec2;
    fs::remove(tmp, ec2);
    throw Error("cannot publish model cache entry '" +
                entry_path(fingerprint) + "': " + ec.message());
  }
  account({.stores = 1});
}

CacheStats ModelCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ModelCache::account(const CacheStats& delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  stats_ += delta;
}

}  // namespace hssta::cache
