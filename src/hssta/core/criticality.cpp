#include "hssta/core/criticality.hpp"

#include <algorithm>
#include <cmath>

#include "hssta/timing/propagate.hpp"
#include "hssta/timing/statops.hpp"
#include "hssta/util/error.hpp"

namespace hssta::core {

using timing::CanonicalForm;
using timing::EdgeId;
using timing::MaxDiagnostics;
using timing::PropagationResult;
using timing::TimingGraph;
using timing::VertexId;

namespace {

/// Per-worker scratch for the per-input criticality passes: propagation
/// buffers, tightness candidates, the backward vertex-criticality array and
/// this worker's cm accumulator (merged by max after the region).
struct CritScratch {
  timing::PropagationResult prop;
  std::vector<double> tp;
  std::vector<CanonicalForm> cand;
  std::vector<EdgeId> cand_edge;
  std::vector<double> vc;
  std::vector<double> cm;
  MaxDiagnostics diag;
};

/// Fanin tightness probabilities for one arrival propagation:
/// tp[e] = Prob{edge e carries the maximal fanin arrival of its sink},
/// renormalized per vertex so they partition exactly. Writes sc.tp.
void fanin_tightness_into(const TimingGraph& g,
                          const PropagationResult& arrival,
                          MaxDiagnostics* diag, CritScratch& sc) {
  sc.tp.assign(g.num_edge_slots(), 0.0);
  for (VertexId v : g.topo_order()) {
    const auto& fanin = g.vertex(v).fanin;
    if (fanin.empty()) continue;
    sc.cand.clear();
    sc.cand_edge.clear();
    for (EdgeId e : fanin) {
      const timing::TimingEdge& te = g.edge(e);
      if (!arrival.valid[te.from]) continue;
      CanonicalForm c = arrival.time[te.from];
      c += te.delay;
      sc.cand.push_back(std::move(c));
      sc.cand_edge.push_back(e);
    }
    if (sc.cand.empty()) continue;
    const std::vector<double> split = timing::tightness_split(sc.cand, diag);
    for (size_t t = 0; t < split.size(); ++t) sc.tp[sc.cand_edge[t]] = split[t];
  }
}

/// Scalar backward pass for one (input, output) pair: distribute vertex
/// criticality over fanin edges by tp and fold the result into `fold`
/// via `combine(fold[e], c_ij(e))`. Uses sc.vc as scratch.
template <typename Combine>
void backward_pass(const TimingGraph& g,
                   const std::vector<VertexId>& reverse_order,
                   const PropagationResult& arrival, VertexId output,
                   double prune_epsilon, CritScratch& sc,
                   Combine&& combine) {
  if (!arrival.valid[output]) return;
  sc.vc.assign(g.num_vertex_slots(), 0.0);
  sc.vc[output] = 1.0;
  for (VertexId v : reverse_order) {
    const double mass = sc.vc[v];
    if (mass <= prune_epsilon) continue;
    for (EdgeId e : g.vertex(v).fanin) {
      const double c = mass * sc.tp[e];
      if (c <= 0.0) continue;
      combine(e, c);
      sc.vc[g.edge(e).from] += c;
    }
  }
}

}  // namespace

CriticalityResult compute_criticality(const TimingGraph& g,
                                      exec::Executor& ex,
                                      const CriticalityOptions& opts) {
  const auto& ins = g.inputs();
  const auto& outs = g.outputs();
  HSSTA_REQUIRE(!ins.empty() && !outs.empty(),
                "criticality needs input and output ports");

  CriticalityResult res;
  res.max_criticality.assign(g.num_edge_slots(), 0.0);
  if (opts.with_io_delays)
    res.io_delays = DelayMatrix(ins.size(), outs.size(), g.dim());

  const std::vector<VertexId> order = g.topo_order();
  const std::vector<VertexId> reverse_order(order.rbegin(), order.rend());

  // Exclusive spans the reset -> region -> merge sequence so concurrent
  // callers sharing `ex` serialize instead of interleaving workspaces.
  const exec::Executor::Exclusive scope(ex);
  for (size_t w = 0; w < ex.num_workspaces(); ++w) {
    CritScratch& sc = ex.workspace(w).get<CritScratch>();
    sc.cm.assign(g.num_edge_slots(), 0.0);
    sc.diag = MaxDiagnostics{};
  }

  // One work item per input port: forward canonical propagation + fanin
  // tightness, then a scalar backward pass per output. Each worker folds
  // into its own cm accumulator; io_delays rows are per-input, so they are
  // written without synchronization.
  ex.parallel_for(ins.size(), [&](size_t i, exec::Workspace& ws) {
    CritScratch& sc = ws.get<CritScratch>();
    const VertexId sources[] = {ins[i]};
    timing::propagate_arrivals_into(g, sources, sc.prop);
    sc.diag += sc.prop.diagnostics;
    fanin_tightness_into(g, sc.prop, &sc.diag, sc);

    for (size_t j = 0; j < outs.size(); ++j) {
      backward_pass(g, reverse_order, sc.prop, outs[j], opts.prune_epsilon,
                    sc, [&](EdgeId e, double c) {
                      if (c > sc.cm[e]) sc.cm[e] = c;
                    });
    }

    if (opts.with_io_delays) {
      for (size_t j = 0; j < outs.size(); ++j)
        if (sc.prop.valid[outs[j]])
          res.io_delays.set(i, j, sc.prop.time[outs[j]]);
    }
  });

  // Merge the per-worker accumulators. max over doubles and integer sums
  // are order-insensitive, so this equals the serial fold bit-for-bit.
  for (size_t w = 0; w < ex.num_workspaces(); ++w) {
    const CritScratch& sc = ex.workspace(w).get<CritScratch>();
    res.diagnostics += sc.diag;
    for (size_t e = 0; e < res.max_criticality.size(); ++e)
      if (sc.cm[e] > res.max_criticality[e])
        res.max_criticality[e] = sc.cm[e];
  }
  // Reconvergence can push the tp partition marginally above 1; clamp.
  for (double& c : res.max_criticality) c = std::min(c, 1.0);
  return res;
}

CriticalityResult compute_criticality(const TimingGraph& g,
                                      const CriticalityOptions& opts) {
  exec::SerialExecutor ex;
  return compute_criticality(g, ex, opts);
}

std::vector<double> pair_criticalities(const TimingGraph& g, size_t input,
                                       size_t output) {
  HSSTA_REQUIRE(input < g.inputs().size() && output < g.outputs().size(),
                "IO index out of range");
  const std::vector<VertexId> order = g.topo_order();
  const std::vector<VertexId> reverse_order(order.rbegin(), order.rend());
  CritScratch sc;
  const VertexId sources[] = {g.inputs()[input]};
  timing::propagate_arrivals_into(g, sources, sc.prop);
  fanin_tightness_into(g, sc.prop, nullptr, sc);
  std::vector<double> c(g.num_edge_slots(), 0.0);
  backward_pass(g, reverse_order, sc.prop, g.outputs()[output], 0.0, sc,
                [&](EdgeId e, double value) { c[e] += value; });
  return c;
}

double edge_pair_criticality(const TimingGraph& g, EdgeId e, size_t input,
                             size_t output) {
  HSSTA_REQUIRE(g.edge_alive(e), "criticality of a dead edge");
  return pair_criticalities(g, input, output)[e];
}

// Declared in paths.hpp; lives here to share the tightness machinery.
std::vector<double> arrival_tightness(const TimingGraph& g,
                                      const PropagationResult& arrivals) {
  CritScratch sc;
  fanin_tightness_into(g, arrivals, nullptr, sc);
  return std::move(sc.tp);
}

}  // namespace hssta::core
