#include "hssta/core/criticality.hpp"

#include <algorithm>
#include <cmath>

#include "hssta/timing/propagate.hpp"
#include "hssta/timing/statops.hpp"
#include "hssta/util/error.hpp"

namespace hssta::core {

using timing::CanonicalForm;
using timing::EdgeId;
using timing::MaxDiagnostics;
using timing::PropagationResult;
using timing::TimingGraph;
using timing::VertexId;

namespace {

/// Fanin tightness probabilities for one arrival propagation:
/// tp[e] = Prob{edge e carries the maximal fanin arrival of its sink},
/// renormalized per vertex so they partition exactly.
std::vector<double> fanin_tightness(const TimingGraph& g,
                                    const PropagationResult& arrival,
                                    MaxDiagnostics* diag) {
  std::vector<double> tp(g.num_edge_slots(), 0.0);
  std::vector<CanonicalForm> cand;  // valid fanin arrival candidates
  std::vector<EdgeId> cand_edge;

  for (VertexId v : g.topo_order()) {
    const auto& fanin = g.vertex(v).fanin;
    if (fanin.empty()) continue;
    cand.clear();
    cand_edge.clear();
    for (EdgeId e : fanin) {
      const timing::TimingEdge& te = g.edge(e);
      if (!arrival.valid[te.from]) continue;
      CanonicalForm c = arrival.time[te.from];
      c += te.delay;
      cand.push_back(std::move(c));
      cand_edge.push_back(e);
    }
    if (cand.empty()) continue;
    const std::vector<double> split = timing::tightness_split(cand, diag);
    for (size_t t = 0; t < split.size(); ++t) tp[cand_edge[t]] = split[t];
  }
  return tp;
}

/// Scalar backward pass for one (input, output) pair: distribute vertex
/// criticality over fanin edges by tp and fold the result into `fold`
/// via `combine(fold[e], c_ij(e))`.
template <typename Combine>
void backward_pass(const TimingGraph& g,
                   const std::vector<VertexId>& reverse_order,
                   const std::vector<double>& tp,
                   const PropagationResult& arrival, VertexId output,
                   double prune_epsilon, Combine&& combine) {
  if (!arrival.valid[output]) return;
  std::vector<double> vc(g.num_vertex_slots(), 0.0);
  vc[output] = 1.0;
  for (VertexId v : reverse_order) {
    const double mass = vc[v];
    if (mass <= prune_epsilon) continue;
    for (EdgeId e : g.vertex(v).fanin) {
      const double c = mass * tp[e];
      if (c <= 0.0) continue;
      combine(e, c);
      vc[g.edge(e).from] += c;
    }
  }
}

}  // namespace

CriticalityResult compute_criticality(const TimingGraph& g,
                                      const CriticalityOptions& opts) {
  const auto& ins = g.inputs();
  const auto& outs = g.outputs();
  HSSTA_REQUIRE(!ins.empty() && !outs.empty(),
                "criticality needs input and output ports");

  CriticalityResult res;
  res.max_criticality.assign(g.num_edge_slots(), 0.0);

  std::vector<VertexId> order = g.topo_order();
  std::vector<VertexId> reverse_order(order.rbegin(), order.rend());

  for (size_t i = 0; i < ins.size(); ++i) {
    const std::vector<VertexId> sources{ins[i]};
    const PropagationResult arrival = timing::propagate_arrivals(g, sources);
    res.diagnostics += arrival.diagnostics;
    const std::vector<double> tp =
        fanin_tightness(g, arrival, &res.diagnostics);

    for (size_t j = 0; j < outs.size(); ++j) {
      backward_pass(g, reverse_order, tp, arrival, outs[j],
                    opts.prune_epsilon, [&](EdgeId e, double c) {
                      if (c > res.max_criticality[e])
                        res.max_criticality[e] = c;
                    });
    }

    if (opts.with_io_delays) {
      if (res.io_delays.num_inputs() == 0)
        res.io_delays = DelayMatrix(ins.size(), outs.size(), g.dim());
      for (size_t j = 0; j < outs.size(); ++j)
        if (arrival.valid[outs[j]])
          res.io_delays.set(i, j, arrival.time[outs[j]]);
    }
  }
  // Reconvergence can push the tp partition marginally above 1; clamp.
  for (double& c : res.max_criticality) c = std::min(c, 1.0);
  return res;
}

std::vector<double> pair_criticalities(const TimingGraph& g, size_t input,
                                       size_t output) {
  HSSTA_REQUIRE(input < g.inputs().size() && output < g.outputs().size(),
                "IO index out of range");
  std::vector<VertexId> order = g.topo_order();
  std::vector<VertexId> reverse_order(order.rbegin(), order.rend());
  const std::vector<VertexId> sources{g.inputs()[input]};
  const PropagationResult arrival = timing::propagate_arrivals(g, sources);
  const std::vector<double> tp = fanin_tightness(g, arrival, nullptr);
  std::vector<double> c(g.num_edge_slots(), 0.0);
  backward_pass(g, reverse_order, tp, arrival, g.outputs()[output], 0.0,
                [&](EdgeId e, double value) { c[e] += value; });
  return c;
}

double edge_pair_criticality(const TimingGraph& g, EdgeId e, size_t input,
                             size_t output) {
  HSSTA_REQUIRE(g.edge_alive(e), "criticality of a dead edge");
  return pair_criticalities(g, input, output)[e];
}

// Declared in paths.hpp; lives here to share fanin_tightness.
std::vector<double> arrival_tightness(const TimingGraph& g,
                                      const PropagationResult& arrivals) {
  return fanin_tightness(g, arrivals, nullptr);
}

}  // namespace hssta::core
