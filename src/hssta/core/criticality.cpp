#include "hssta/core/criticality.hpp"

#include <algorithm>
#include <cmath>

#include "hssta/timing/propagate.hpp"
#include "hssta/timing/statops.hpp"
#include "hssta/util/error.hpp"

namespace hssta::core {

using timing::CanonicalForm;
using timing::EdgeId;
using timing::LevelStructure;
using timing::MaxDiagnostics;
using timing::PropagationResult;
using timing::TimingGraph;
using timing::VertexId;

namespace {

/// Per-worker scratch for the per-input criticality passes: propagation
/// buffers, tightness candidates, the batched backward frontier (one row of
/// |outputs| vertex-criticality masses per vertex slot) and this worker's
/// cm accumulator (merged by max after a fan-out region).
struct CritScratch {
  timing::PropagationResult prop;
  std::vector<double> tp;
  timing::FormBank cand;           ///< fanin arrival candidates, one row each
  std::vector<EdgeId> cand_edge;
  timing::FormBank split_scratch;  ///< prefix/suffix folds of the split
  std::vector<double> split;
  std::vector<double> vc;          ///< row-major [vertex slot][output index]
  std::vector<uint8_t> row_active; ///< row has mass (or is a seeded output)
  std::vector<double> cm;
  MaxDiagnostics diag;
};

/// Per-worker scratch of the level-synchronous tightness pass.
struct TightnessScratch {
  timing::FormBank cand;
  std::vector<EdgeId> cand_edge;
  timing::FormBank split_scratch;
  std::vector<double> split;
  MaxDiagnostics diag;
};

/// Tightness probabilities of one vertex's fanin: tp[e] = Prob{edge e
/// carries the maximal fanin arrival of v}, renormalized so they partition
/// exactly. Shared by the serial and level-synchronous drivers. Candidates
/// are assembled into rows of the caller's `cand` bank and split in place —
/// a warm scratch makes the whole pass allocation-free.
template <typename Scratch>
void tightness_vertex(const TimingGraph& g, const PropagationResult& arrival,
                      VertexId v, std::vector<double>& tp, Scratch& sc,
                      MaxDiagnostics* diag) {
  const auto& fanin = g.vertex(v).fanin;
  if (fanin.empty()) return;
  sc.cand_edge.clear();
  if (sc.cand.rows() < fanin.size() || sc.cand.dim() != g.dim())
    sc.cand.reset(fanin.size(), g.dim());
  size_t n = 0;
  for (EdgeId e : fanin) {
    const timing::TimingEdge& te = g.edge(e);
    if (!arrival.valid[te.from]) continue;
    timing::add_into(sc.cand.row(n), arrival.time.row(te.from),
                     te.delay.view());
    sc.cand_edge.push_back(e);
    ++n;
  }
  if (n == 0) return;
  timing::tightness_split_into(sc.cand, n, sc.split, sc.split_scratch, diag);
  for (size_t t = 0; t < n; ++t) tp[sc.cand_edge[t]] = sc.split[t];
}

/// Fanin tightness probabilities for one arrival propagation (serial
/// driver). Writes sc.tp.
void fanin_tightness_into(const TimingGraph& g,
                          const PropagationResult& arrival,
                          MaxDiagnostics* diag, CritScratch& sc) {
  sc.tp.assign(g.num_edge_slots(), 0.0);
  for (VertexId v : g.topo_order())
    tightness_vertex(g, arrival, v, sc.tp, sc, diag);
}

/// Level-synchronous tightness driver: each edge's tp is written by its
/// sink's task only, so a level's vertices fan out race-free; the per-
/// worker diagnostics counters merge into `diag` by integer sum, equal to
/// the serial totals.
void fanin_tightness_level(const TimingGraph& g,
                           const PropagationResult& arrival,
                           const LevelStructure& ls, exec::Executor& ex,
                           std::vector<double>& tp, MaxDiagnostics& diag) {
  tp.assign(g.num_edge_slots(), 0.0);
  for (size_t w = 0; w < ex.num_workspaces(); ++w)
    ex.workspace(w).get<TightnessScratch>().diag = MaxDiagnostics{};
  timing::for_each_level(ls, ex, /*front_to_back=*/true,
                         [&](VertexId v) {
                           return 1 + g.vertex(v).fanin.size() * g.dim();
                         },
                         [&](VertexId v, exec::Workspace& ws) {
                           TightnessScratch& ts = ws.get<TightnessScratch>();
                           tightness_vertex(g, arrival, v, tp, ts, &ts.diag);
                         });
  for (size_t w = 0; w < ex.num_workspaces(); ++w)
    diag += ex.workspace(w).get<TightnessScratch>().diag;
}

/// The batched backward pass's gather schedule. For every vertex u,
/// edges[offsets[u] .. offsets[u+1]) lists u's live fanout edges in exactly
/// the order the reference scalar scatter pass (pair_criticalities) would
/// have accumulated their contributions into vc(u): by sink position in
/// reverse topological order, then by the sink's fanin-list order. Gathering
/// in this order reproduces the scatter pass's floating-point sums bit for
/// bit.
struct BackwardPlan {
  std::vector<VertexId> reverse_order;
  std::vector<size_t> offsets;  ///< per vertex slot (+1), into `edges`
  std::vector<EdgeId> edges;
};

BackwardPlan make_backward_plan(const TimingGraph& g,
                                const std::vector<VertexId>& order) {
  BackwardPlan plan;
  plan.reverse_order.assign(order.rbegin(), order.rend());
  plan.offsets.assign(g.num_vertex_slots() + 1, 0);
  for (VertexId v : plan.reverse_order)
    for (EdgeId e : g.vertex(v).fanin) ++plan.offsets[g.edge(e).from + 1];
  for (size_t u = 1; u < plan.offsets.size(); ++u)
    plan.offsets[u] += plan.offsets[u - 1];
  plan.edges.resize(plan.offsets.back());
  std::vector<size_t> cursor(plan.offsets.begin(), plan.offsets.end() - 1);
  for (VertexId v : plan.reverse_order)
    for (EdgeId e : g.vertex(v).fanin)
      plan.edges[cursor[g.edge(e).from]++] = e;
  return plan;
}

/// Ensure the frontier matches (V x J) and clear it. Only rows flagged
/// active by the previous pass are touched, so per-input reset cost tracks
/// the mass actually propagated, not the full V * J footprint.
void reset_frontier(const TimingGraph& g, size_t num_outs, CritScratch& sc) {
  const size_t want = g.num_vertex_slots() * num_outs;
  if (sc.vc.size() != want || sc.row_active.size() != g.num_vertex_slots()) {
    sc.vc.assign(want, 0.0);
    sc.row_active.assign(g.num_vertex_slots(), 0);
    return;
  }
  for (VertexId v = 0; v < sc.row_active.size(); ++v) {
    if (!sc.row_active[v]) continue;
    std::fill_n(sc.vc.begin() + static_cast<size_t>(v) * num_outs, num_outs,
                0.0);
    sc.row_active[v] = 0;
  }
}

/// Seed the frontier: vc(output j, j) = 1 for every output the current
/// input's arrival reaches (unreached outputs contribute no pass, exactly
/// like the scatter reference).
void seed_frontier(const std::vector<VertexId>& outs,
                   const PropagationResult& arrival, size_t num_outs,
                   CritScratch& sc) {
  for (size_t j = 0; j < num_outs; ++j) {
    if (!arrival.valid[outs[j]]) continue;
    sc.vc[static_cast<size_t>(outs[j]) * num_outs + j] = 1.0;
    sc.row_active[outs[j]] = 1;
  }
}

/// Gather one vertex's frontier row: pull vc(sink) * tp(e) over u's fanout
/// edges (in scatter order) for every output at once, folding each
/// contribution into `combine`. Writes only u's own row / flag, so a
/// topological level of gathers is race-free.
template <typename Combine>
inline void gather_vertex(const TimingGraph& g, const BackwardPlan& plan,
                          VertexId u, size_t num_outs, double prune_epsilon,
                          const std::vector<double>& tp, CritScratch& sc,
                          Combine&& combine) {
  double* row = sc.vc.data() + static_cast<size_t>(u) * num_outs;
  bool active = sc.row_active[u] != 0;  // a seeded output row stays active
  const size_t begin = plan.offsets[u];
  const size_t end = plan.offsets[u + 1];
  for (size_t k = begin; k < end; ++k) {
    const EdgeId e = plan.edges[k];
    const VertexId sink = g.edge(e).to;
    if (!sc.row_active[sink]) continue;
    const double tp_e = tp[e];
    const double* sink_row =
        sc.vc.data() + static_cast<size_t>(sink) * num_outs;
    for (size_t j = 0; j < num_outs; ++j) {
      const double mass = sink_row[j];
      if (mass <= prune_epsilon) continue;  // the scatter pass's cutoff
      const double c = mass * tp_e;
      if (c <= 0.0) continue;
      combine(e, c);
      row[j] += c;
      active = true;
    }
  }
  sc.row_active[u] = active ? 1 : 0;
}

/// Batched backward pass over all outputs for one input, serial driver.
template <typename Combine>
void batched_backward(const TimingGraph& g, const BackwardPlan& plan,
                      const std::vector<VertexId>& outs,
                      const PropagationResult& arrival, double prune_epsilon,
                      CritScratch& sc, Combine&& combine) {
  const size_t num_outs = outs.size();
  reset_frontier(g, num_outs, sc);
  seed_frontier(outs, arrival, num_outs, sc);
  for (VertexId u : plan.reverse_order)
    gather_vertex(g, plan, u, num_outs, prune_epsilon, sc.tp, sc, combine);
}

/// Level-synchronous driver of the same pass: sweeps the level buckets back
/// to front; a vertex only reads rows of strictly higher levels and writes
/// its own, and combine targets (cm of u's fanout edges) have a unique
/// writing vertex, so no merge step is needed.
template <typename Combine>
void batched_backward_level(const TimingGraph& g, const BackwardPlan& plan,
                            const LevelStructure& ls,
                            const std::vector<VertexId>& outs,
                            const PropagationResult& arrival,
                            double prune_epsilon, exec::Executor& ex,
                            CritScratch& sc, Combine&& combine) {
  const size_t num_outs = outs.size();
  reset_frontier(g, num_outs, sc);
  seed_frontier(outs, arrival, num_outs, sc);
  timing::for_each_level(ls, ex, /*front_to_back=*/false,
                         [&](VertexId v) {
                           // Gather cost: one row combine per fanout edge
                           // per output column.
                           return 1 + (plan.offsets[v + 1] - plan.offsets[v]) *
                                          num_outs;
                         },
                         [&](VertexId v, exec::Workspace&) {
                           gather_vertex(g, plan, v, num_outs, prune_epsilon,
                                         sc.tp, sc, combine);
                         });
}

/// Scalar backward pass for one (input, output) pair — the legacy scatter
/// reference: distribute vertex criticality over fanin edges by tp and fold
/// the result into `combine(e, c_ij(e))`. Kept verbatim as the oracle the
/// batched gather pass is pinned against.
template <typename Combine>
void backward_pass(const TimingGraph& g,
                   const std::vector<VertexId>& reverse_order,
                   const PropagationResult& arrival, VertexId output,
                   double prune_epsilon, std::vector<double>& vc,
                   const std::vector<double>& tp, Combine&& combine) {
  if (!arrival.valid[output]) return;
  vc.assign(g.num_vertex_slots(), 0.0);
  vc[output] = 1.0;
  for (VertexId v : reverse_order) {
    const double mass = vc[v];
    if (mass <= prune_epsilon) continue;
    for (EdgeId e : g.vertex(v).fanin) {
      const double c = mass * tp[e];
      if (c <= 0.0) continue;
      combine(e, c);
      vc[g.edge(e).from] += c;
    }
  }
}

}  // namespace

CriticalityResult compute_criticality(const TimingGraph& g,
                                      exec::Executor& ex,
                                      const CriticalityOptions& opts) {
  const auto& ins = g.inputs();
  const auto& outs = g.outputs();
  HSSTA_REQUIRE(!ins.empty() && !outs.empty(),
                "criticality needs input and output ports");

  CriticalityResult res;
  res.max_criticality.assign(g.num_edge_slots(), 0.0);
  if (opts.with_io_delays)
    res.io_delays = DelayMatrix(ins.size(), outs.size(), g.dim());

  const std::shared_ptr<const LevelStructure> ls = g.levels();
  const BackwardPlan plan = make_backward_plan(g, ls->order);

  // Exclusive spans the reset -> region(s) -> merge sequence so concurrent
  // callers sharing `ex` serialize instead of interleaving workspaces.
  const exec::Executor::Exclusive scope(ex);

  if (timing::use_level_parallel(*ls, ex.concurrency(), opts.level_parallel,
                                 ins.size())) {
    // Serial input loop; propagation, tightness and the batched backward
    // pass each fan a level's vertices out across the executor. cm entries
    // are written by their edge's unique source vertex, so the fold lands
    // directly in the result.
    CritScratch& sc = ex.workspace(0).get<CritScratch>();
    sc.diag = MaxDiagnostics{};
    for (size_t i = 0; i < ins.size(); ++i) {
      const VertexId sources[] = {ins[i]};
      timing::propagate_arrivals_into(g, sources, sc.prop, ex,
                                      timing::LevelParallel::kOn);
      sc.diag += sc.prop.diagnostics;
      fanin_tightness_level(g, sc.prop, *ls, ex, sc.tp, sc.diag);
      batched_backward_level(g, plan, *ls, outs, sc.prop, opts.prune_epsilon,
                             ex, sc, [&](EdgeId e, double c) {
                               if (c > res.max_criticality[e])
                                 res.max_criticality[e] = c;
                             });
      if (opts.with_io_delays) {
        for (size_t j = 0; j < outs.size(); ++j)
          if (sc.prop.valid[outs[j]])
            res.io_delays.set(i, j, sc.prop.time.form(outs[j]));
      }
    }
    res.diagnostics += sc.diag;
  } else {
    for (size_t w = 0; w < ex.num_workspaces(); ++w) {
      CritScratch& sc = ex.workspace(w).get<CritScratch>();
      sc.cm.assign(g.num_edge_slots(), 0.0);
      sc.diag = MaxDiagnostics{};
    }

    // One work item per input port: forward canonical propagation + fanin
    // tightness, then one batched backward pass over all outputs. Each
    // worker folds into its own cm accumulator; io_delays rows are
    // per-input, so they are written without synchronization.
    ex.parallel_for(ins.size(), [&](size_t i, exec::Workspace& ws) {
      CritScratch& sc = ws.get<CritScratch>();
      const VertexId sources[] = {ins[i]};
      timing::propagate_arrivals_into(g, sources, sc.prop);
      sc.diag += sc.prop.diagnostics;
      fanin_tightness_into(g, sc.prop, &sc.diag, sc);

      batched_backward(g, plan, outs, sc.prop, opts.prune_epsilon, sc,
                       [&](EdgeId e, double c) {
                         if (c > sc.cm[e]) sc.cm[e] = c;
                       });

      if (opts.with_io_delays) {
        for (size_t j = 0; j < outs.size(); ++j)
          if (sc.prop.valid[outs[j]])
            res.io_delays.set(i, j, sc.prop.time.form(outs[j]));
      }
    });

    // Merge the per-worker accumulators. max over doubles and integer sums
    // are order-insensitive, so this equals the serial fold bit-for-bit.
    for (size_t w = 0; w < ex.num_workspaces(); ++w) {
      const CritScratch& sc = ex.workspace(w).get<CritScratch>();
      res.diagnostics += sc.diag;
      for (size_t e = 0; e < res.max_criticality.size(); ++e)
        if (sc.cm[e] > res.max_criticality[e])
          res.max_criticality[e] = sc.cm[e];
    }
  }
  // Reconvergence can push the tp partition marginally above 1; clamp.
  for (double& c : res.max_criticality) c = std::min(c, 1.0);
  return res;
}

CriticalityResult compute_criticality(const TimingGraph& g,
                                      const CriticalityOptions& opts) {
  exec::SerialExecutor ex;
  return compute_criticality(g, ex, opts);
}

std::vector<double> pair_criticalities(const TimingGraph& g, size_t input,
                                       size_t output) {
  HSSTA_REQUIRE(input < g.inputs().size() && output < g.outputs().size(),
                "IO index out of range");
  const std::vector<VertexId> order = g.topo_order();
  const std::vector<VertexId> reverse_order(order.rbegin(), order.rend());
  CritScratch sc;
  const VertexId sources[] = {g.inputs()[input]};
  timing::propagate_arrivals_into(g, sources, sc.prop);
  fanin_tightness_into(g, sc.prop, nullptr, sc);
  std::vector<double> c(g.num_edge_slots(), 0.0);
  std::vector<double> vc;
  backward_pass(g, reverse_order, sc.prop, g.outputs()[output], 0.0, vc,
                sc.tp, [&](EdgeId e, double value) { c[e] += value; });
  return c;
}

double edge_pair_criticality(const TimingGraph& g, EdgeId e, size_t input,
                             size_t output) {
  HSSTA_REQUIRE(g.edge_alive(e), "criticality of a dead edge");
  return pair_criticalities(g, input, output)[e];
}

// Declared in paths.hpp; lives here to share the tightness machinery.
std::vector<double> arrival_tightness(const TimingGraph& g,
                                      const PropagationResult& arrivals) {
  CritScratch sc;
  fanin_tightness_into(g, arrivals, nullptr, sc);
  return std::move(sc.tp);
}

}  // namespace hssta::core
