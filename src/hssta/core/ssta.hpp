/// \file ssta.hpp
/// The block-based SSTA engine facade: one call runs the full-circuit
/// statistical analysis (arrival propagation + output max) and, as an
/// extension beyond the paper, statistical slack against a required time.

#pragma once

#include "hssta/timing/graph.hpp"
#include "hssta/timing/propagate.hpp"

namespace hssta::core {

/// Full-circuit analysis result.
struct SstaResult {
  timing::PropagationResult arrivals;
  timing::CanonicalForm delay;  ///< statistical max over all output ports

  /// Gaussian-assumption yield at a target clock period: P{delay <= t}.
  [[nodiscard]] double timing_yield(double period) const {
    return delay.cdf(period);
  }
};

/// Run arrival propagation from all input ports and fold the output max.
[[nodiscard]] SstaResult run_ssta(const timing::TimingGraph& g);

/// Statistical slack of each vertex against a deterministic required time
/// at every output port (extension; slack = required - latest arrival
/// through that vertex, as a canonical form).
struct SlackResult {
  std::vector<timing::CanonicalForm> slack;  ///< indexed by VertexId slot
  std::vector<uint8_t> valid;
};

[[nodiscard]] SlackResult compute_slack(const timing::TimingGraph& g,
                                        double required_at_outputs);

}  // namespace hssta::core
