/// \file ssta.hpp
/// The block-based SSTA engine facade: one call runs the full-circuit
/// statistical analysis (arrival propagation + output max) and, as an
/// extension beyond the paper, statistical slack against a required time.

#pragma once

#include "hssta/exec/executor.hpp"
#include "hssta/timing/graph.hpp"
#include "hssta/timing/propagate.hpp"

namespace hssta::core {

/// Full-circuit analysis result.
struct SstaResult {
  timing::PropagationResult arrivals;
  timing::CanonicalForm delay;  ///< statistical max over all output ports

  /// Gaussian-assumption yield at a target clock period: P{delay <= t}.
  [[nodiscard]] double timing_yield(double period) const {
    return delay.cdf(period);
  }
};

/// Run arrival propagation from all input ports and fold the output max.
[[nodiscard]] SstaResult run_ssta(const timing::TimingGraph& g);

/// Level-synchronous variant: the arrival sweep fans each topological
/// level's vertices out across `ex` (kAuto falls back to serial for narrow
/// graphs or serial executors). Bit-identical to run_ssta(g) at every
/// thread count.
[[nodiscard]] SstaResult run_ssta(
    const timing::TimingGraph& g, exec::Executor& ex,
    timing::LevelParallel mode = timing::LevelParallel::kAuto);

/// Statistical slack of each vertex against a deterministic required time
/// at every output port (extension; slack = required - latest arrival
/// through that vertex, as a canonical form).
struct SlackResult {
  std::vector<timing::CanonicalForm> slack;  ///< indexed by VertexId slot
  std::vector<uint8_t> valid;
};

[[nodiscard]] SlackResult compute_slack(const timing::TimingGraph& g,
                                        double required_at_outputs);

/// Level-synchronous variant: both the forward arrival sweep and the
/// backward required-time (remaining delay) sweep run level-parallel on
/// `ex`, as does the per-vertex slack assembly. Bit-identical to the serial
/// overload at every thread count.
[[nodiscard]] SlackResult compute_slack(
    const timing::TimingGraph& g, double required_at_outputs,
    exec::Executor& ex,
    timing::LevelParallel mode = timing::LevelParallel::kAuto);

}  // namespace hssta::core
