#include "hssta/core/paths.hpp"

#include <algorithm>
#include <queue>

#include "hssta/timing/statops.hpp"
#include "hssta/util/error.hpp"

namespace hssta::core {

using timing::CanonicalForm;
using timing::EdgeId;
using timing::TimingGraph;
using timing::VertexId;

std::string CriticalPath::format(const TimingGraph& g) const {
  std::string out;
  for (size_t i = 0; i < vertices.size(); ++i) {
    if (i) out += " -> ";
    out += g.vertex(vertices[i]).name;
  }
  return out;
}

std::vector<CriticalPath> report_critical_paths(const TimingGraph& g,
                                                size_t k) {
  HSSTA_REQUIRE(k > 0, "need k >= 1 paths");
  const timing::PropagationResult arrivals = timing::propagate_arrivals(g);
  const std::vector<double> tp = arrival_tightness(g, arrivals);

  // Output tightness: which output port carries the circuit max.
  std::vector<CanonicalForm> out_arrivals;
  std::vector<VertexId> out_vertices;
  for (VertexId v : g.outputs()) {
    if (!arrivals.valid[v]) continue;
    out_arrivals.push_back(arrivals.time.form(v));
    out_vertices.push_back(v);
  }
  HSSTA_REQUIRE(!out_arrivals.empty(), "no output port was reached");
  const std::vector<double> out_tp = timing::tightness_split(out_arrivals);

  // Best-first backward walk: a state is a partial path (suffix towards its
  // output) scored by the product of tightness probabilities, which only
  // shrinks on expansion — so the k first completions are the top-k.
  struct State {
    double score;
    VertexId v;
    std::vector<EdgeId> suffix;  // edges from v to the output, v-first
    bool operator<(const State& o) const { return score < o.score; }
  };
  std::priority_queue<State> queue;
  for (size_t j = 0; j < out_vertices.size(); ++j)
    if (out_tp[j] > 0.0) queue.push(State{out_tp[j], out_vertices[j], {}});

  std::vector<CriticalPath> paths;
  // Safety valve against adversarial fan-in explosions.
  size_t pops_left = std::max<size_t>(10000, 64 * k * g.num_vertex_slots());
  while (!queue.empty() && paths.size() < k && pops_left-- > 0) {
    State s = queue.top();
    queue.pop();
    const timing::TimingVertex& tv = g.vertex(s.v);
    bool expanded = false;
    for (EdgeId e : tv.fanin) {
      if (!arrivals.valid[g.edge(e).from] || tp[e] <= 0.0) continue;
      State child;
      child.score = s.score * tp[e];
      child.v = g.edge(e).from;
      child.suffix.reserve(s.suffix.size() + 1);
      child.suffix.push_back(e);
      child.suffix.insert(child.suffix.end(), s.suffix.begin(),
                          s.suffix.end());
      queue.push(std::move(child));
      expanded = true;
    }
    if (expanded) continue;

    // Launch point reached: materialize the path input -> output.
    CriticalPath p;
    p.criticality = s.score;
    p.edges = std::move(s.suffix);
    p.delay = CanonicalForm(g.dim());
    p.vertices.push_back(s.v);
    for (EdgeId e : p.edges) {
      p.delay += g.edge(e).delay;
      p.vertices.push_back(g.edge(e).to);
    }
    paths.push_back(std::move(p));
  }
  return paths;
}

}  // namespace hssta::core
