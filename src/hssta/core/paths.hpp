/// \file paths.hpp
/// Statistical critical-path reporting (extension beyond the paper; the
/// standard `report_timing` view of an SSTA result).
///
/// A path's criticality is the probability that it is *the* longest path of
/// the circuit. Under the same conditional-independence approximation as
/// the criticality engine, it factorizes into the output tightness (the
/// probability its endpoint is the critical output) times the arrival
/// tightness of each edge along the path. Paths are enumerated in
/// descending estimated criticality with a best-first backward walk — the
/// product of probabilities can only shrink along a partial path, so a
/// priority queue yields the top-k order exactly (w.r.t. the estimates).

#pragma once

#include <string>
#include <vector>

#include "hssta/timing/graph.hpp"
#include "hssta/timing/propagate.hpp"

namespace hssta::core {

struct CriticalPath {
  std::vector<timing::VertexId> vertices;  ///< input ... output
  std::vector<timing::EdgeId> edges;       ///< vertices.size() - 1 entries
  timing::CanonicalForm delay;             ///< statistical path delay (sum)
  double criticality = 0.0;  ///< estimated P{path is the critical path}

  /// "in -> g17 -> g42 -> out" style rendering.
  [[nodiscard]] std::string format(const timing::TimingGraph& g) const;
};

/// Arrival tightness probabilities per edge: tp[e] = P{e carries the
/// maximal fanin arrival of its sink}, renormalized per vertex (same
/// quantity the criticality engine uses, exposed for path reporting).
[[nodiscard]] std::vector<double> arrival_tightness(
    const timing::TimingGraph& g, const timing::PropagationResult& arrivals);

/// Enumerate the k most critical paths of the full circuit (all inputs
/// launched at 0). Paths are returned in descending estimated criticality;
/// their criticalities sum to at most ~1.
[[nodiscard]] std::vector<CriticalPath> report_critical_paths(
    const timing::TimingGraph& g, size_t k);

}  // namespace hssta::core
