#include "hssta/core/io_delays.hpp"

#include <cmath>

#include "hssta/util/error.hpp"

namespace hssta::core {

using timing::CanonicalForm;
using timing::TimingGraph;
using timing::VertexId;

DelayMatrix::DelayMatrix(size_t num_inputs, size_t num_outputs, size_t dim)
    : inputs_(num_inputs),
      outputs_(num_outputs),
      delays_(num_inputs * num_outputs, CanonicalForm(dim)),
      valid_(num_inputs * num_outputs, 0) {}

size_t DelayMatrix::idx(size_t i, size_t j) const {
  HSSTA_REQUIRE(i < inputs_ && j < outputs_, "delay matrix index out of range");
  return i * outputs_ + j;
}

bool DelayMatrix::is_valid(size_t i, size_t j) const {
  return valid_[idx(i, j)] != 0;
}

const CanonicalForm& DelayMatrix::at(size_t i, size_t j) const {
  const size_t k = idx(i, j);
  HSSTA_REQUIRE(valid_[k], "access to unconnected IO pair");
  return delays_[k];
}

void DelayMatrix::set(size_t i, size_t j, CanonicalForm delay) {
  const size_t k = idx(i, j);
  delays_[k] = std::move(delay);
  valid_[k] = 1;
}

size_t DelayMatrix::num_valid() const {
  size_t n = 0;
  for (uint8_t v : valid_) n += v;
  return n;
}

double DelayMatrix::max_mean_error(const DelayMatrix& reference,
                                   double floor) const {
  HSSTA_REQUIRE(inputs_ == reference.inputs_ && outputs_ == reference.outputs_,
                "delay matrix shape mismatch");
  double worst = 0.0;
  for (size_t i = 0; i < inputs_; ++i) {
    for (size_t j = 0; j < outputs_; ++j) {
      const size_t k = i * outputs_ + j;
      HSSTA_REQUIRE(valid_[k] == reference.valid_[k],
                    "delay matrix connectivity mismatch");
      if (!valid_[k]) continue;
      const double ref = reference.delays_[k].nominal();
      if (ref < floor) continue;
      worst = std::max(worst,
                       std::abs(delays_[k].nominal() - ref) / ref);
    }
  }
  return worst;
}

namespace {

/// Per-worker scratch: a reusable propagation result plus the worker's
/// share of the diagnostics counters (merged after the region; integer
/// sums, so the merge is independent of the thread partition).
struct IoDelayScratch {
  timing::PropagationResult prop;
  timing::MaxDiagnostics diag;
};

}  // namespace

DelayMatrix all_pairs_io_delays(const TimingGraph& g, exec::Executor& ex,
                                timing::MaxDiagnostics* diag,
                                timing::LevelParallel mode) {
  const auto& ins = g.inputs();
  const auto& outs = g.outputs();
  DelayMatrix m(ins.size(), outs.size(), g.dim());
  if (timing::use_level_parallel(g, ex.concurrency(), mode, ins.size())) {
    // Few rows relative to the executor: keep the row loop serial and let
    // each propagation sweep its levels in parallel instead.
    const exec::Executor::Exclusive scope(ex);
    IoDelayScratch& sc = ex.workspace(0).get<IoDelayScratch>();
    for (size_t i = 0; i < ins.size(); ++i) {
      const VertexId sources[] = {ins[i]};
      timing::propagate_arrivals_into(g, sources, sc.prop, ex,
                                      timing::LevelParallel::kOn);
      if (diag) *diag += sc.prop.diagnostics;
      for (size_t j = 0; j < outs.size(); ++j)
        if (sc.prop.valid[outs[j]]) m.set(i, j, sc.prop.time.form(outs[j]));
    }
    return m;
  }
  // Exclusive spans the reset -> region -> merge sequence so concurrent
  // callers sharing `ex` serialize instead of interleaving workspaces.
  const exec::Executor::Exclusive scope(ex);
  for (size_t w = 0; w < ex.num_workspaces(); ++w)
    ex.workspace(w).get<IoDelayScratch>().diag = timing::MaxDiagnostics{};
  // Each row (i, *) is written by exactly one work item, so the matrix
  // needs no synchronization.
  ex.parallel_for(ins.size(), [&](size_t i, exec::Workspace& ws) {
    IoDelayScratch& sc = ws.get<IoDelayScratch>();
    const VertexId sources[] = {ins[i]};
    timing::propagate_arrivals_into(g, sources, sc.prop);
    sc.diag += sc.prop.diagnostics;
    for (size_t j = 0; j < outs.size(); ++j)
      if (sc.prop.valid[outs[j]]) m.set(i, j, sc.prop.time.form(outs[j]));
  });
  if (diag)
    for (size_t w = 0; w < ex.num_workspaces(); ++w)
      *diag += ex.workspace(w).get<IoDelayScratch>().diag;
  return m;
}

DelayMatrix all_pairs_io_delays(const TimingGraph& g,
                                timing::MaxDiagnostics* diag) {
  exec::SerialExecutor ex;
  return all_pairs_io_delays(g, ex, diag);
}

}  // namespace hssta::core
