#include "hssta/core/io_delays.hpp"

#include <cmath>

#include "hssta/util/error.hpp"

namespace hssta::core {

using timing::CanonicalForm;
using timing::TimingGraph;
using timing::VertexId;

DelayMatrix::DelayMatrix(size_t num_inputs, size_t num_outputs, size_t dim)
    : inputs_(num_inputs),
      outputs_(num_outputs),
      delays_(num_inputs * num_outputs, CanonicalForm(dim)),
      valid_(num_inputs * num_outputs, 0) {}

size_t DelayMatrix::idx(size_t i, size_t j) const {
  HSSTA_REQUIRE(i < inputs_ && j < outputs_, "delay matrix index out of range");
  return i * outputs_ + j;
}

bool DelayMatrix::is_valid(size_t i, size_t j) const {
  return valid_[idx(i, j)] != 0;
}

const CanonicalForm& DelayMatrix::at(size_t i, size_t j) const {
  const size_t k = idx(i, j);
  HSSTA_REQUIRE(valid_[k], "access to unconnected IO pair");
  return delays_[k];
}

void DelayMatrix::set(size_t i, size_t j, CanonicalForm delay) {
  const size_t k = idx(i, j);
  delays_[k] = std::move(delay);
  valid_[k] = 1;
}

size_t DelayMatrix::num_valid() const {
  size_t n = 0;
  for (uint8_t v : valid_) n += v;
  return n;
}

double DelayMatrix::max_mean_error(const DelayMatrix& reference,
                                   double floor) const {
  HSSTA_REQUIRE(inputs_ == reference.inputs_ && outputs_ == reference.outputs_,
                "delay matrix shape mismatch");
  double worst = 0.0;
  for (size_t i = 0; i < inputs_; ++i) {
    for (size_t j = 0; j < outputs_; ++j) {
      const size_t k = i * outputs_ + j;
      HSSTA_REQUIRE(valid_[k] == reference.valid_[k],
                    "delay matrix connectivity mismatch");
      if (!valid_[k]) continue;
      const double ref = reference.delays_[k].nominal();
      if (ref < floor) continue;
      worst = std::max(worst,
                       std::abs(delays_[k].nominal() - ref) / ref);
    }
  }
  return worst;
}

DelayMatrix all_pairs_io_delays(const TimingGraph& g,
                                timing::MaxDiagnostics* diag) {
  const auto& ins = g.inputs();
  const auto& outs = g.outputs();
  DelayMatrix m(ins.size(), outs.size(), g.dim());
  for (size_t i = 0; i < ins.size(); ++i) {
    const VertexId src = ins[i];
    const std::vector<VertexId> sources{src};
    const timing::PropagationResult r =
        timing::propagate_arrivals(g, sources);
    if (diag) *diag += r.diagnostics;
    for (size_t j = 0; j < outs.size(); ++j)
      if (r.valid[outs[j]]) m.set(i, j, r.time[outs[j]]);
  }
  return m;
}

}  // namespace hssta::core
