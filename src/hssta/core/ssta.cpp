#include "hssta/core/ssta.hpp"

#include <algorithm>

#include "hssta/timing/statops.hpp"
#include "hssta/util/error.hpp"

namespace hssta::core {

using timing::CanonicalForm;
using timing::EdgeId;
using timing::PropagationResult;
using timing::TimingGraph;
using timing::VertexId;

SstaResult run_ssta(const TimingGraph& g) {
  SstaResult r{timing::propagate_arrivals(g), CanonicalForm(g.dim())};
  r.delay = timing::circuit_delay(g, r.arrivals, &r.arrivals.diagnostics);
  return r;
}

SlackResult compute_slack(const TimingGraph& g, double required_at_outputs) {
  const PropagationResult arrivals = timing::propagate_arrivals(g);

  // Backward sweep from all output ports at remaining time 0: remaining[v]
  // is the statistical max delay from v to any output.
  PropagationResult remaining;
  remaining.time.assign(g.num_vertex_slots(), CanonicalForm(g.dim()));
  remaining.valid.assign(g.num_vertex_slots(), 0);
  for (VertexId v : g.outputs()) remaining.valid[v] = 1;

  std::vector<VertexId> order = g.topo_order();
  std::reverse(order.begin(), order.end());
  CanonicalForm candidate(g.dim());
  for (VertexId v : order) {
    bool has = remaining.valid[v] != 0;
    for (EdgeId e : g.vertex(v).fanout) {
      const timing::TimingEdge& te = g.edge(e);
      if (!remaining.valid[te.to]) continue;
      candidate = remaining.time[te.to];
      candidate += te.delay;
      if (!has) {
        remaining.time[v] = std::move(candidate);
        candidate = CanonicalForm(g.dim());
        has = true;
      } else {
        remaining.time[v] = timing::statistical_max(
            remaining.time[v], candidate, &remaining.diagnostics);
      }
    }
    remaining.valid[v] = has ? 1 : 0;
  }

  // slack(v) = required - (arrival(v) + remaining(v)); the variability
  // coefficients flip sign, the private random magnitude is unchanged.
  SlackResult out;
  out.slack.assign(g.num_vertex_slots(), CanonicalForm(g.dim()));
  out.valid.assign(g.num_vertex_slots(), 0);
  for (VertexId v = 0; v < g.num_vertex_slots(); ++v) {
    if (!g.vertex_alive(v) || !arrivals.valid[v] || !remaining.valid[v])
      continue;
    CanonicalForm through = arrivals.time[v];
    through += remaining.time[v];
    CanonicalForm& s = out.slack[v];
    s = CanonicalForm(g.dim());
    s.set_nominal(required_at_outputs - through.nominal());
    for (size_t k = 0; k < g.dim(); ++k) s.corr()[k] = -through.corr()[k];
    s.set_random(through.random());
    out.valid[v] = 1;
  }
  return out;
}

}  // namespace hssta::core
