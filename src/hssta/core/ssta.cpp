#include "hssta/core/ssta.hpp"

#include <algorithm>
#include <cmath>

#include "hssta/timing/statops.hpp"
#include "hssta/util/error.hpp"

namespace hssta::core {

using timing::CanonicalForm;
using timing::PropagationResult;
using timing::TimingGraph;
using timing::VertexId;

namespace {

/// slack(v) = required - (arrival(v) + remaining(v)); the variability
/// coefficients flip sign, the private random magnitude is unchanged.
/// Shared per-vertex assembly of the serial and parallel overloads.
/// Assembled straight from the two bank rows — the through-path sum is
/// never materialized, so this allocates nothing (the slack entry's buffer
/// is recycled by the caller's assign).
inline void assemble_slack(const TimingGraph& g, VertexId v,
                           const PropagationResult& arrivals,
                           const PropagationResult& remaining,
                           double required_at_outputs, SlackResult& out) {
  if (!g.vertex_alive(v) || !arrivals.valid[v] || !remaining.valid[v]) return;
  const timing::ConstFormView at = arrivals.time.row(v);
  const timing::ConstFormView rt = remaining.time.row(v);
  CanonicalForm& s = out.slack[v];
  s.set_nominal(required_at_outputs - (*at.nominal + *rt.nominal));
  const std::span<double> sc = s.corr();
  for (size_t k = 0; k < g.dim(); ++k) sc[k] = -(at.corr[k] + rt.corr[k]);
  s.set_random(
      std::sqrt(*at.random * *at.random + *rt.random * *rt.random));
  out.valid[v] = 1;
}

SlackResult slack_from_passes(const TimingGraph& g,
                              const PropagationResult& arrivals,
                              const PropagationResult& remaining,
                              double required_at_outputs) {
  SlackResult out;
  out.slack.assign(g.num_vertex_slots(), CanonicalForm(g.dim()));
  out.valid.assign(g.num_vertex_slots(), 0);
  for (VertexId v = 0; v < g.num_vertex_slots(); ++v)
    assemble_slack(g, v, arrivals, remaining, required_at_outputs, out);
  return out;
}

}  // namespace

SstaResult run_ssta(const TimingGraph& g) {
  SstaResult r{timing::propagate_arrivals(g), CanonicalForm(g.dim())};
  r.delay = timing::circuit_delay(g, r.arrivals, &r.arrivals.diagnostics);
  return r;
}

SstaResult run_ssta(const TimingGraph& g, exec::Executor& ex,
                    timing::LevelParallel mode) {
  SstaResult r{PropagationResult{}, CanonicalForm(g.dim())};
  timing::propagate_arrivals_into(g, {}, r.arrivals, ex, mode);
  r.delay = timing::circuit_delay(g, r.arrivals, &r.arrivals.diagnostics);
  return r;
}

SlackResult compute_slack(const TimingGraph& g, double required_at_outputs) {
  const PropagationResult arrivals = timing::propagate_arrivals(g);
  // Backward sweep from all output ports at remaining time 0: remaining[v]
  // is the statistical max delay from v to any output.
  PropagationResult remaining;
  timing::propagate_required_into(g, {}, remaining);
  return slack_from_passes(g, arrivals, remaining, required_at_outputs);
}

SlackResult compute_slack(const TimingGraph& g, double required_at_outputs,
                          exec::Executor& ex, timing::LevelParallel mode) {
  // Honor the mode for the assembly loop too: kOff promises not to occupy
  // the executor from within a sweep.
  if (!timing::use_level_parallel(g, ex.concurrency(), mode))
    return compute_slack(g, required_at_outputs);
  PropagationResult arrivals;
  timing::propagate_arrivals_into(g, {}, arrivals, ex,
                                  timing::LevelParallel::kOn);
  PropagationResult remaining;
  timing::propagate_required_into(g, {}, remaining, ex,
                                  timing::LevelParallel::kOn);

  SlackResult out;
  out.slack.assign(g.num_vertex_slots(), CanonicalForm(g.dim()));
  out.valid.assign(g.num_vertex_slots(), 0);
  // Per-slot writes are disjoint, so the assembly is a flat parallel loop.
  const exec::Executor::Exclusive scope(ex);
  exec::run_maybe_parallel(ex, g.num_vertex_slots(),
                           timing::kMinLevelFanOut,
                           [&](size_t v, exec::Workspace&) {
                             assemble_slack(g, static_cast<VertexId>(v),
                                            arrivals, remaining,
                                            required_at_outputs, out);
                           });
  return out;
}

}  // namespace hssta::core
