/// \file io_delays.hpp
/// All-pairs input-to-output delay matrix (paper Section III, eq. 12, via
/// the per-input propagation scheme of Sapatnekar ISCAS'96): entry (i, j)
/// is the canonical maximum delay M_ij from input port i to output port j.
/// The matrix is both the timing model's contract (a model must preserve
/// it) and the reference the criticality computation compares against.

#pragma once

#include <vector>

#include "hssta/exec/executor.hpp"
#include "hssta/timing/graph.hpp"
#include "hssta/timing/propagate.hpp"

namespace hssta::core {

/// Dense inputs x outputs matrix of canonical delays with validity flags
/// (an entry is invalid when no path connects the pair).
class DelayMatrix {
 public:
  DelayMatrix() = default;
  DelayMatrix(size_t num_inputs, size_t num_outputs, size_t dim);

  [[nodiscard]] size_t num_inputs() const { return inputs_; }
  [[nodiscard]] size_t num_outputs() const { return outputs_; }

  [[nodiscard]] bool is_valid(size_t i, size_t j) const;
  [[nodiscard]] const timing::CanonicalForm& at(size_t i, size_t j) const;

  void set(size_t i, size_t j, timing::CanonicalForm delay);

  /// Number of connected (valid) pairs.
  [[nodiscard]] size_t num_valid() const;

  /// Largest |mean_a - mean_b| / mean_b over pairs valid in both matrices
  /// with mean_b >= floor; used for model-accuracy reporting (merr).
  /// Throws if the shapes differ or the validity patterns disagree.
  [[nodiscard]] double max_mean_error(const DelayMatrix& reference,
                                      double floor = 1e-6) const;

 private:
  [[nodiscard]] size_t idx(size_t i, size_t j) const;

  size_t inputs_ = 0;
  size_t outputs_ = 0;
  std::vector<timing::CanonicalForm> delays_;
  std::vector<uint8_t> valid_;
};

/// Compute the delay matrix of a timing graph: one forward propagation per
/// input port (rows/columns follow g.inputs()/g.outputs() order). Two
/// parallel schedules, chosen by `mode` (see timing::use_level_parallel):
/// the per-input fan-out (one row per work item, per-thread propagation
/// scratch) or, when the input count cannot occupy `ex`, a serial row loop
/// whose propagations are themselves level-synchronous. Results are
/// bit-identical across schedules and thread counts.
[[nodiscard]] DelayMatrix all_pairs_io_delays(
    const timing::TimingGraph& g, exec::Executor& ex,
    timing::MaxDiagnostics* diag = nullptr,
    timing::LevelParallel mode = timing::LevelParallel::kAuto);

/// Serial convenience overload (runs on a call-local SerialExecutor).
[[nodiscard]] DelayMatrix all_pairs_io_delays(
    const timing::TimingGraph& g, timing::MaxDiagnostics* diag = nullptr);

}  // namespace hssta::core
