/// \file criticality.hpp
/// Edge criticality (paper Section IV.B, Definitions 1-2): for an edge e
/// and IO pair (i, j), c_ij(e) is the probability that e lies on the
/// statistically longest i->j path; cm(e) = max over all pairs is the
/// pruning key of the gray-box model extraction.
///
/// Implementation follows the tightness-probability factorization of the
/// paper's reference [18] (Xiong et al., DATE'08) rather than a literal
/// Prob{d_e >= M_ij} evaluation: the latter requires the covariance between
/// a path delay and the IO maximum, which the canonical form cannot
/// represent once path randoms have been aggregated (a sole path would come
/// out at criticality 0.5 instead of 1). Instead:
///
///   * Forward, per input i: arrival A_i plus, for every edge e into a
///     vertex v, the tightness probability tp_i(e) that e carries the
///     maximal fanin arrival of v. The common remaining delay to any output
///     cancels in that comparison, so tp is independent of j.
///   * Backward, per input i: ONE batched pass over all outputs at once.
///     The vertex criticality vc_ij(v) (seeded at 1 for output j) lives in
///     a shared frontier — one row of |outputs| masses per vertex — and is
///     gathered source-side: visiting u in reverse topological order pulls
///     vc_ij(to(e)) * tp_i(e) over u's fanout edges for every j in one
///     sweep, folding c_ij(e) into cm(e) on the way. The gather order is
///     arranged to reproduce the scalar per-(i, j) scatter pass's
///     floating-point accumulation exactly (see gather_plan in the .cpp),
///     so batching is a pure speedup: one traversal instead of |outputs|,
///     and each vertex writes only its own row, which is what lets the
///     level-synchronous schedule fan a level's vertices out race-free.
///
/// By construction the criticalities of any input-output cut sum to 1
/// (leave-one-out tightness probabilities are renormalized per vertex), a
/// chain edge gets exactly 1, and a dominated branch tends to 0.
///
/// Cost: one canonical propagation + tp pass per input, one batched scalar
/// backward pass per input covering all outputs — same #inputs * #outputs
/// work as the paper reports, but traversal and frontier state amortized
/// across outputs, with the heavy canonical work amortized per input.

#pragma once

#include <cstddef>
#include <vector>

#include "hssta/core/io_delays.hpp"
#include "hssta/timing/graph.hpp"

namespace hssta::core {

struct CriticalityOptions {
  /// Backward vertex-criticality mass below this threshold is not
  /// propagated further (it can only shrink). 0 disables the cutoff.
  double prune_epsilon = 1e-12;
  /// Also compute the all-pairs IO delay matrix and return it (the
  /// extraction pipeline wants both; switch off when only cm is needed).
  bool with_io_delays = true;
  /// Parallel schedule (never changes any result bit): per-input fan-out
  /// across the executor, or — when the input count cannot occupy it — a
  /// serial input loop whose propagation / tightness / batched backward
  /// passes are each level-synchronous. kAuto picks by input count and
  /// graph width (timing::use_level_parallel).
  timing::LevelParallel level_parallel = timing::LevelParallel::kAuto;
};

struct CriticalityResult {
  /// cm per edge slot (dead edges report 0).
  std::vector<double> max_criticality;
  /// All-pairs IO delays (empty unless with_io_delays).
  DelayMatrix io_delays;
  timing::MaxDiagnostics diagnostics;
};

/// Compute cm for every live edge of `g`. The per-input forward propagation
/// + tightness passes (and their backward scalar passes per output) fan out
/// across `ex`; per-worker cm accumulators merge by max afterwards, so the
/// result is bit-identical at every thread count.
[[nodiscard]] CriticalityResult compute_criticality(
    const timing::TimingGraph& g, exec::Executor& ex,
    const CriticalityOptions& opts = {});

/// Serial convenience overload (runs on a call-local SerialExecutor).
[[nodiscard]] CriticalityResult compute_criticality(
    const timing::TimingGraph& g, const CriticalityOptions& opts = {});

/// Criticality of one edge for one IO pair (single-pair run of the
/// reference scalar scatter pass; used by tests and incremental queries).
[[nodiscard]] double edge_pair_criticality(const timing::TimingGraph& g,
                                           timing::EdgeId e, size_t input,
                                           size_t output);

/// All per-edge criticalities for one IO pair (one forward + one backward
/// pass). Entries of dead edges are 0. This deliberately keeps the legacy
/// per-(i, j) scalar scatter implementation: it is the reference the
/// differential tests pin the batched gather pass against, bit for bit.
[[nodiscard]] std::vector<double> pair_criticalities(
    const timing::TimingGraph& g, size_t input, size_t output);

}  // namespace hssta::core
