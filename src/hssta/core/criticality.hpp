/// \file criticality.hpp
/// Edge criticality (paper Section IV.B, Definitions 1-2): for an edge e
/// and IO pair (i, j), c_ij(e) is the probability that e lies on the
/// statistically longest i->j path; cm(e) = max over all pairs is the
/// pruning key of the gray-box model extraction.
///
/// Implementation follows the tightness-probability factorization of the
/// paper's reference [18] (Xiong et al., DATE'08) rather than a literal
/// Prob{d_e >= M_ij} evaluation: the latter requires the covariance between
/// a path delay and the IO maximum, which the canonical form cannot
/// represent once path randoms have been aggregated (a sole path would come
/// out at criticality 0.5 instead of 1). Instead:
///
///   * Forward, per input i: arrival A_i plus, for every edge e into a
///     vertex v, the tightness probability tp_i(e) that e carries the
///     maximal fanin arrival of v. The common remaining delay to any output
///     cancels in that comparison, so tp is independent of j.
///   * Backward, per output j: vertex criticality vc_ij(v) seeded at 1 for
///     j, distributed over fanin edges as c_ij(e) = vc_ij(v) * tp_i(e) and
///     accumulated into the edge sources — plain scalar work.
///
/// By construction the criticalities of any input-output cut sum to 1
/// (leave-one-out tightness probabilities are renormalized per vertex), a
/// chain edge gets exactly 1, and a dominated branch tends to 0.
///
/// Cost: one canonical propagation + tp pass per input, one scalar backward
/// pass per (input, output) pair — the #inputs * #outputs scaling the paper
/// reports, with the heavy canonical work amortized per input.

#pragma once

#include <cstddef>
#include <vector>

#include "hssta/core/io_delays.hpp"
#include "hssta/timing/graph.hpp"

namespace hssta::core {

struct CriticalityOptions {
  /// Backward vertex-criticality mass below this threshold is not
  /// propagated further (it can only shrink). 0 disables the cutoff.
  double prune_epsilon = 1e-12;
  /// Also compute the all-pairs IO delay matrix and return it (the
  /// extraction pipeline wants both; switch off when only cm is needed).
  bool with_io_delays = true;
};

struct CriticalityResult {
  /// cm per edge slot (dead edges report 0).
  std::vector<double> max_criticality;
  /// All-pairs IO delays (empty unless with_io_delays).
  DelayMatrix io_delays;
  timing::MaxDiagnostics diagnostics;
};

/// Compute cm for every live edge of `g`. The per-input forward propagation
/// + tightness passes (and their backward scalar passes per output) fan out
/// across `ex`; per-worker cm accumulators merge by max afterwards, so the
/// result is bit-identical at every thread count.
[[nodiscard]] CriticalityResult compute_criticality(
    const timing::TimingGraph& g, exec::Executor& ex,
    const CriticalityOptions& opts = {});

/// Serial convenience overload (runs on a call-local SerialExecutor).
[[nodiscard]] CriticalityResult compute_criticality(
    const timing::TimingGraph& g, const CriticalityOptions& opts = {});

/// Criticality of one edge for one IO pair (single-pair run of the same
/// algorithm; used by tests and incremental queries).
[[nodiscard]] double edge_pair_criticality(const timing::TimingGraph& g,
                                           timing::EdgeId e, size_t input,
                                           size_t output);

/// All per-edge criticalities for one IO pair (one forward + one backward
/// pass). Entries of dead edges are 0.
[[nodiscard]] std::vector<double> pair_criticalities(
    const timing::TimingGraph& g, size_t input, size_t output);

}  // namespace hssta::core
