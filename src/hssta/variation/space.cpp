#include "hssta/variation/space.hpp"

#include "hssta/util/error.hpp"

namespace hssta::variation {

namespace {

/// All parameters must share the variance split (they share one PCA).
const ProcessParameter& validated_reference(const ParameterSet& params) {
  params.validate();
  const ProcessParameter& ref = params.params.front();
  for (const auto& p : params.params) {
    HSSTA_REQUIRE(std::abs(p.global_frac - ref.global_frac) < 1e-12 &&
                      std::abs(p.local_frac - ref.local_frac) < 1e-12,
                  "parameters must share one variance split per space");
  }
  return ref;
}

}  // namespace

VariationSpace::VariationSpace(ParameterSet params, GridGeometry grids,
                               SpatialCorrelationConfig corr_cfg,
                               linalg::PcaOptions pca_opts)
    : params_(std::move(params)),
      grids_(std::move(grids)),
      model_(corr_cfg, validated_reference(params_).global_frac,
             params_.params.front().local_frac),
      corr_(model_.correlation_matrix(grids_)),
      // The cutoff clamp can leave the correlation matrix marginally
      // indefinite; allow PCA to clip up to 1% relative negative mass.
      pca_(linalg::pca(corr_, pca_opts, /*clip_tol=*/1e-2)) {
  HSSTA_REQUIRE(grids_.size() >= 1, "space needs at least one grid");
}

void VariationSpace::accumulate(size_t param, size_t grid, double scale,
                                std::span<double> corr) const {
  HSSTA_REQUIRE(param < num_params(), "parameter index out of range");
  HSSTA_REQUIRE(grid < num_grids(), "grid index out of range");
  HSSTA_REQUIRE(corr.size() == dim(), "coefficient vector has wrong size");
  const ProcessParameter& p = params_.at(param);
  corr[global_index(param)] += scale * p.sigma_global();
  const double sl = scale * p.sigma_local();
  const std::span<const double> row = loading_row(grid);
  double* dst = corr.data() + spatial_offset(param);
  for (size_t j = 0; j < row.size(); ++j) dst[j] += sl * row[j];
}

double VariationSpace::sigma_random(size_t param) const {
  return params_.at(param).sigma_random();
}

std::span<const double> VariationSpace::loading_row(size_t grid) const {
  HSSTA_REQUIRE(grid < num_grids(), "grid index out of range");
  return pca_.loadings.row(grid);
}

ModuleVariation make_module_variation(const placement::Placement& pl,
                                      size_t num_cells,
                                      const ParameterSet& params,
                                      const SpatialCorrelationConfig& corr_cfg,
                                      size_t max_cells_per_grid,
                                      linalg::PcaOptions pca_opts) {
  GridPartition partition =
      GridPartition::for_cell_count(pl.die, num_cells, max_cells_per_grid);
  auto space = std::make_shared<const VariationSpace>(
      params, partition.geometry(), corr_cfg, pca_opts);
  return ModuleVariation{partition, std::move(space)};
}

}  // namespace hssta::variation
