/// \file space.hpp
/// VariationSpace: the coordinate system of canonical delay forms.
///
/// A canonical delay (paper eq. 3) is
///   d = a0 + sum_k c_k * y_k + a_r * x_r
/// where y concatenates, for every process parameter, one global variable
/// followed by that parameter's spatial PCA components. The VariationSpace
/// fixes that layout: all timing edges, arrival times and IO delays of one
/// analysis share a space, covariances are plain dot products of their
/// coefficient vectors, and the hierarchical variable replacement (paper
/// eq. 19) is a linear remap between a module space and the design space.
///
/// All parameters share one grid partition and one correlation profile (as
/// in the paper), so a single PCA of the grid correlation matrix serves
/// every parameter; parameter p's spatial block is scaled by its own
/// sigma_local.

#pragma once

#include <memory>
#include <span>

#include "hssta/linalg/pca.hpp"
#include "hssta/variation/grid.hpp"
#include "hssta/variation/parameters.hpp"
#include "hssta/variation/spatial.hpp"

namespace hssta::variation {

class VariationSpace {
 public:
  /// Decomposes the grid correlation of `grids` under `corr_cfg` by PCA.
  /// All parameters must share the same global/local variance split (they
  /// share the PCA). `pca_opts` allows component truncation (ablations).
  VariationSpace(ParameterSet params, GridGeometry grids,
                 SpatialCorrelationConfig corr_cfg,
                 linalg::PcaOptions pca_opts = {});

  /// --- dimensions and layout -------------------------------------------

  [[nodiscard]] size_t num_params() const { return params_.size(); }
  [[nodiscard]] size_t num_grids() const { return grids_.size(); }
  /// Spatial PCA components retained per parameter.
  [[nodiscard]] size_t num_components() const { return pca_.retained; }
  /// Length of the correlated-coefficient vector of a canonical form.
  [[nodiscard]] size_t dim() const {
    return num_params() * (1 + num_components());
  }
  /// Slot of parameter p's global variable.
  [[nodiscard]] size_t global_index(size_t param) const { return param; }
  /// First slot of parameter p's spatial block.
  [[nodiscard]] size_t spatial_offset(size_t param) const {
    return num_params() + param * num_components();
  }

  /// --- edge-coefficient construction -------------------------------------

  /// Accumulate into `corr` the correlated coefficients of `scale` units of
  /// relative deviation of parameter `param` for a cell in `grid`:
  /// the global slot gains scale * sigma_global, the spatial block gains
  /// scale * sigma_local * loading_row(grid).
  void accumulate(size_t param, size_t grid, double scale,
                  std::span<double> corr) const;

  /// Sigma of the purely random component of `param` (relative units).
  [[nodiscard]] double sigma_random(size_t param) const;

  /// --- introspection -----------------------------------------------------

  [[nodiscard]] const ParameterSet& parameters() const { return params_; }
  [[nodiscard]] const GridGeometry& grids() const { return grids_; }
  [[nodiscard]] const SpatialCorrelationModel& correlation_model() const {
    return model_;
  }
  /// Grid-local correlation matrix R (n x n, unit diagonal).
  [[nodiscard]] const linalg::Matrix& correlation() const { return corr_; }
  /// PCA of R: loadings (n x k), whitening (k x n).
  [[nodiscard]] const linalg::PcaResult& pca() const { return pca_; }
  /// Row of the loading matrix for one grid (length k).
  [[nodiscard]] std::span<const double> loading_row(size_t grid) const;

 private:
  ParameterSet params_;
  GridGeometry grids_;
  SpatialCorrelationModel model_;
  linalg::Matrix corr_;
  linalg::PcaResult pca_;
};

/// A module's variation context: its regular grid partition plus the space
/// built on it. Spaces are shared between graphs/models via shared_ptr.
struct ModuleVariation {
  GridPartition partition;
  std::shared_ptr<const VariationSpace> space;
};

/// Convenience: partition the die of a placed module per the paper's
/// "< max_cells_per_grid cells per grid" rule and build its space.
[[nodiscard]] ModuleVariation make_module_variation(
    const placement::Placement& pl, size_t num_cells,
    const ParameterSet& params, const SpatialCorrelationConfig& corr_cfg,
    size_t max_cells_per_grid = 100, linalg::PcaOptions pca_opts = {});

}  // namespace hssta::variation
