#include "hssta/variation/parameters.hpp"

#include <cmath>

#include "hssta/util/error.hpp"

namespace hssta::variation {

double ProcessParameter::sigma_global() const {
  return sigma_rel * std::sqrt(global_frac);
}

double ProcessParameter::sigma_local() const {
  return sigma_rel * std::sqrt(local_frac);
}

double ProcessParameter::sigma_random() const {
  return sigma_rel * std::sqrt(random_frac);
}

void ProcessParameter::validate() const {
  HSSTA_REQUIRE(!name.empty(), "parameter needs a name");
  HSSTA_REQUIRE(sigma_rel >= 0.0, "negative sigma on parameter " + name);
  HSSTA_REQUIRE(global_frac >= 0.0 && local_frac >= 0.0 && random_frac >= 0.0,
                "negative variance fraction on parameter " + name);
  HSSTA_REQUIRE(
      std::abs(global_frac + local_frac + random_frac - 1.0) < 1e-9,
      "variance fractions must sum to 1 on parameter " + name);
}

const ProcessParameter& ParameterSet::at(size_t i) const {
  HSSTA_REQUIRE(i < params.size(), "parameter index out of range");
  return params[i];
}

size_t ParameterSet::index_of(const std::string& name) const {
  for (size_t i = 0; i < params.size(); ++i)
    if (params[i].name == name) return i;
  throw Error("unknown process parameter: " + name);
}

void ParameterSet::validate() const {
  HSSTA_REQUIRE(!params.empty(), "parameter set is empty");
  HSSTA_REQUIRE(load_sigma_rel >= 0.0, "negative load sigma");
  for (const auto& p : params) p.validate();
  for (size_t i = 0; i < params.size(); ++i)
    for (size_t j = i + 1; j < params.size(); ++j)
      HSSTA_REQUIRE(params[i].name != params[j].name,
                    "duplicate parameter name: " + params[i].name);
}

ParameterSet default_90nm_parameters() {
  // Totals from Nassif (CICC'01) as quoted in the paper's Section VI; the
  // 0.42/0.53/0.05 split realizes the paper's correlation endpoints
  // (0.42 global floor) while leaving a small per-cell random residue.
  ParameterSet set;
  set.params = {
      ProcessParameter{"Leff", 0.157, 0.42, 0.53, 0.05},
      ProcessParameter{"Tox", 0.053, 0.42, 0.53, 0.05},
      ProcessParameter{"Vth", 0.044, 0.42, 0.53, 0.05},
  };
  set.load_sigma_rel = 0.15;
  set.validate();
  return set;
}

}  // namespace hssta::variation
