/// \file spatial.hpp
/// The spatial correlation profile of Section VI of the paper: total
/// parameter correlation 0.92 between neighbouring grids, decaying to the
/// global-variation floor 0.42 at grid distance 15 (and exactly the floor
/// beyond — cells farther apart share only the global component).
///
/// With variance fractions g + l + r = 1 the total correlation at grid
/// distance d > 0 is
///     rho_total(d) = g + l * rho_local(d)
/// so the profile pins g = rho_global and
///     rho_local(1) = (rho_neighbor - rho_global) / l.
/// The local correlation uses a Matern-3/2 kernel
///     rho_local(d) = (1 + beta d) * exp(-beta d)
/// which is positive semidefinite in the plane by construction. beta is
/// fitted so rho_local(1) meets the neighbour target exactly; with the
/// paper's numbers the kernel has decayed to ~0.02 by the cutoff 15, so the
/// hard clamp to zero beyond the cutoff perturbs the spectrum only
/// marginally (PCA clips the residue). Unlike a Gaussian kernel, the
/// Matern profile keeps substantial mid-range correlation (e.g. ~0.19 at
/// distance 8), matching the paper's "decays exponentially to the floor at
/// 15" description — which is what makes neighbouring modules in a
/// hierarchical design meaningfully correlated (Fig. 7).

#pragma once

#include "hssta/linalg/matrix.hpp"
#include "hssta/variation/grid.hpp"
#include "hssta/variation/parameters.hpp"

namespace hssta::variation {

/// Correlation profile targets (total correlations, as in the paper).
struct SpatialCorrelationConfig {
  double rho_neighbor = 0.92;  ///< total correlation at grid distance 1
  double rho_global = 0.42;    ///< total correlation floor (global only)
  double cutoff = 15.0;        ///< grid distance where local corr. vanishes
};

/// Local-variation correlation function rho_local(d), derived from a config
/// and the variance split of a parameter set.
class SpatialCorrelationModel {
 public:
  /// `global_frac`/`local_frac` are the variance fractions used by the
  /// parameters (all default parameters share one split). Throws if the
  /// targets are unreachable (e.g. rho_local(1) would exceed 1).
  SpatialCorrelationModel(const SpatialCorrelationConfig& config,
                          double global_frac, double local_frac);

  /// Local correlation at grid distance d >= 0 (1 at d = 0).
  [[nodiscard]] double local_rho(double distance) const;

  /// Total parameter correlation between cells at grid distance d
  /// (diagnostic; the analysis itself consumes local_rho).
  [[nodiscard]] double total_rho(double distance) const;

  /// Correlation matrix of the per-grid local variables for a geometry
  /// (unit diagonal). Symmetric, PSD up to the cutoff-clamp noise; PCA
  /// clips the residue.
  [[nodiscard]] linalg::Matrix correlation_matrix(
      const GridGeometry& grids) const;

  [[nodiscard]] const SpatialCorrelationConfig& config() const {
    return config_;
  }

 private:
  SpatialCorrelationConfig config_;
  double global_frac_;
  double local_frac_;
  double beta_;  ///< Matern-3/2 rate, fitted through rho_local(1)
};

}  // namespace hssta::variation
