#include "hssta/variation/spatial.hpp"

#include <cmath>

#include "hssta/util/error.hpp"

namespace hssta::variation {

SpatialCorrelationModel::SpatialCorrelationModel(
    const SpatialCorrelationConfig& config, double global_frac,
    double local_frac)
    : config_(config), global_frac_(global_frac), local_frac_(local_frac) {
  HSSTA_REQUIRE(local_frac > 0.0, "spatial model needs a local fraction > 0");
  HSSTA_REQUIRE(config.cutoff > 1.0, "cutoff must exceed one grid distance");
  HSSTA_REQUIRE(config.rho_neighbor > config.rho_global,
                "neighbour correlation must exceed the global floor");
  // The total-correlation floor is realized by the global variance share;
  // allow small deviations but reject configurations that cannot reproduce
  // the paper's profile.
  HSSTA_REQUIRE(std::abs(global_frac - config.rho_global) < 0.25,
                "global variance fraction far from the correlation floor");
  const double rho1 = (config.rho_neighbor - global_frac) / local_frac;
  HSSTA_REQUIRE(rho1 > 0.0 && rho1 < 1.0,
                "derived neighbour local correlation outside (0, 1)");
  // Fit the Matern-3/2 rate through rho_local(1) = rho1 by bisection:
  // f(beta) = (1 + beta) e^{-beta} is strictly decreasing on beta > 0.
  double lo = 1e-6, hi = 64.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    ((1.0 + mid) * std::exp(-mid) > rho1 ? lo : hi) = mid;
  }
  beta_ = 0.5 * (lo + hi);
  // The clamp beyond the cutoff must only cut a marginal residue, else the
  // correlation matrix drifts away from positive semidefinite.
  const double residue =
      (1.0 + beta_ * config.cutoff) * std::exp(-beta_ * config.cutoff);
  HSSTA_REQUIRE(residue <= 0.08,
                "correlation profile still significant at the cutoff; "
                "increase the cutoff or lower the neighbour correlation");
}

double SpatialCorrelationModel::local_rho(double distance) const {
  HSSTA_REQUIRE(distance >= 0.0, "negative grid distance");
  if (distance >= config_.cutoff) return 0.0;
  // Matern-3/2 kernel: PSD in the plane, exact at d = 0 and d = 1.
  return (1.0 + beta_ * distance) * std::exp(-beta_ * distance);
}

double SpatialCorrelationModel::total_rho(double distance) const {
  if (distance == 0.0) return global_frac_ + local_frac_;
  return global_frac_ + local_frac_ * local_rho(distance);
}

linalg::Matrix SpatialCorrelationModel::correlation_matrix(
    const GridGeometry& grids) const {
  const size_t n = grids.size();
  linalg::Matrix r(n, n);
  for (size_t i = 0; i < n; ++i) {
    r(i, i) = 1.0;
    for (size_t j = i + 1; j < n; ++j) {
      const double rho = local_rho(grids.distance(i, j));
      r(i, j) = rho;
      r(j, i) = rho;
    }
  }
  return r;
}

}  // namespace hssta::variation
