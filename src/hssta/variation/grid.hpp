/// \file grid.hpp
/// Die grid partitions for the spatial correlation model (paper Sections II
/// and V). Module-level characterization uses a regular partition sized so
/// no grid holds more than a given cell count (the paper uses <100); the
/// design level composes module grids and filler grids into a heterogeneous
/// geometry, represented uniformly as a list of grid centers plus the
/// normalization pitch for distance measurement.

#pragma once

#include <cstddef>
#include <vector>

#include "hssta/placement/placement.hpp"

namespace hssta::variation {

/// Geometry shared by regular and heterogeneous partitions: one center per
/// grid, and the unit pitch that converts physical distance into the "grid
/// distance" of the paper's correlation profile.
struct GridGeometry {
  std::vector<placement::Point> centers;
  double unit = 1.0;  ///< um per grid-distance unit

  [[nodiscard]] size_t size() const { return centers.size(); }

  /// Euclidean distance between grid centers in grid-distance units.
  [[nodiscard]] double distance(size_t a, size_t b) const;
};

/// Regular rectangular partition of a die area.
class GridPartition {
 public:
  /// Partition `die` (origin at (0,0)) into nx * ny equal grids.
  GridPartition(placement::Die die, size_t nx, size_t ny);

  /// Choose the partition so that no grid is expected to hold more than
  /// `max_cells_per_grid` of the `num_cells` cells (the paper's rule), with
  /// near-square grids.
  [[nodiscard]] static GridPartition for_cell_count(placement::Die die,
                                                    size_t num_cells,
                                                    size_t max_cells_per_grid);

  [[nodiscard]] size_t nx() const { return nx_; }
  [[nodiscard]] size_t ny() const { return ny_; }
  [[nodiscard]] size_t num_grids() const { return nx_ * ny_; }
  [[nodiscard]] double pitch_x() const { return pitch_x_; }
  [[nodiscard]] double pitch_y() const { return pitch_y_; }
  [[nodiscard]] const placement::Die& die() const { return die_; }

  /// Grid index containing a point (clamped to the die).
  [[nodiscard]] size_t grid_of(const placement::Point& p) const;

  /// Center of grid `idx`.
  [[nodiscard]] placement::Point center(size_t idx) const;

  /// Geometry view: centers in index order, unit = geometric mean pitch.
  [[nodiscard]] GridGeometry geometry() const;

 private:
  placement::Die die_;
  size_t nx_, ny_;
  double pitch_x_, pitch_y_;
};

}  // namespace hssta::variation
