#include "hssta/variation/grid.hpp"

#include <algorithm>
#include <cmath>

#include "hssta/util/error.hpp"

namespace hssta::variation {

double GridGeometry::distance(size_t a, size_t b) const {
  HSSTA_REQUIRE(a < centers.size() && b < centers.size(),
                "grid index out of range");
  const double dx = centers[a].x - centers[b].x;
  const double dy = centers[a].y - centers[b].y;
  return std::sqrt(dx * dx + dy * dy) / unit;
}

GridPartition::GridPartition(placement::Die die, size_t nx, size_t ny)
    : die_(die), nx_(nx), ny_(ny) {
  HSSTA_REQUIRE(nx >= 1 && ny >= 1, "grid partition needs >= 1 grid per axis");
  HSSTA_REQUIRE(die.width > 0 && die.height > 0, "grid needs a non-empty die");
  pitch_x_ = die.width / static_cast<double>(nx);
  pitch_y_ = die.height / static_cast<double>(ny);
}

GridPartition GridPartition::for_cell_count(placement::Die die,
                                            size_t num_cells,
                                            size_t max_cells_per_grid) {
  HSSTA_REQUIRE(max_cells_per_grid >= 1, "need a positive cell bound");
  const size_t min_grids =
      std::max<size_t>(1, (num_cells + max_cells_per_grid - 1) /
                              max_cells_per_grid);
  // Near-square grids: pick nx from the die aspect, then round ny up.
  const double aspect = die.width / die.height;
  size_t nx = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(std::sqrt(static_cast<double>(min_grids) * aspect))));
  size_t ny = (min_grids + nx - 1) / nx;
  return GridPartition(die, nx, ny);
}

size_t GridPartition::grid_of(const placement::Point& p) const {
  const auto clamp_idx = [](double v, double pitch, size_t n) {
    long i = static_cast<long>(std::floor(v / pitch));
    i = std::clamp<long>(i, 0, static_cast<long>(n) - 1);
    return static_cast<size_t>(i);
  };
  const size_t ix = clamp_idx(p.x, pitch_x_, nx_);
  const size_t iy = clamp_idx(p.y, pitch_y_, ny_);
  return iy * nx_ + ix;
}

placement::Point GridPartition::center(size_t idx) const {
  HSSTA_REQUIRE(idx < num_grids(), "grid index out of range");
  const size_t ix = idx % nx_;
  const size_t iy = idx / nx_;
  return placement::Point{(static_cast<double>(ix) + 0.5) * pitch_x_,
                          (static_cast<double>(iy) + 0.5) * pitch_y_};
}

GridGeometry GridPartition::geometry() const {
  GridGeometry g;
  g.centers.reserve(num_grids());
  for (size_t i = 0; i < num_grids(); ++i) g.centers.push_back(center(i));
  g.unit = std::sqrt(pitch_x_ * pitch_y_);
  return g;
}

}  // namespace hssta::variation
