/// \file parameters.hpp
/// Process parameters with variation (paper Section II, eq. 1):
///   p = p0 + pg + pl + pr
/// Each parameter's total relative sigma splits into global, spatially
/// correlated local, and purely random variance fractions. Section VI of the
/// paper fixes the totals (L 15.7%, Tox 5.3%, Vth 4.4%) and the correlation
/// profile (0.92 neighbours, 0.42 global floor), which pins the global
/// fraction at 0.42; the remaining mass is split local/random.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hssta::variation {

/// One spatially modelled process parameter.
struct ProcessParameter {
  std::string name;          ///< joined with cell sensitivities by name
  double sigma_rel = 0.0;    ///< total relative sigma (e.g. 0.157 for Leff)
  double global_frac = 0.42; ///< variance fraction shared die-to-die
  double local_frac = 0.53;  ///< variance fraction with spatial correlation
  double random_frac = 0.05; ///< variance fraction independent per cell

  /// Component sigmas (relative units).
  [[nodiscard]] double sigma_global() const;
  [[nodiscard]] double sigma_local() const;
  [[nodiscard]] double sigma_random() const;

  /// Fractions must be non-negative and sum to 1 (within 1e-9).
  void validate() const;
};

/// The full parameter configuration of an analysis run.
struct ParameterSet {
  std::vector<ProcessParameter> params;
  /// Relative sigma of the load capacitance seen by each timing edge;
  /// purely random per edge (paper Section VI: 15%).
  double load_sigma_rel = 0.15;

  [[nodiscard]] size_t size() const { return params.size(); }
  [[nodiscard]] const ProcessParameter& at(size_t i) const;
  /// Index of a parameter by name; throws if unknown.
  [[nodiscard]] size_t index_of(const std::string& name) const;
  void validate() const;
};

/// The paper's Section VI configuration: Leff 15.7%, Tox 5.3%, Vth 4.4%,
/// load 15%, variance split 0.42/0.53/0.05.
[[nodiscard]] ParameterSet default_90nm_parameters();

}  // namespace hssta::variation
