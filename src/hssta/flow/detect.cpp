#include "hssta/flow/detect.hpp"

#include <cctype>
#include <fstream>

#include "hssta/util/error.hpp"

namespace hssta::flow {

namespace {

std::string_view trim_view(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// INPUT(x) / OUTPUT(x) / x = FUNC(a, b) — the three .bench line shapes.
bool looks_like_bench(std::string_view line) {
  std::string compact;
  compact.reserve(line.size());
  for (const char c : line)
    if (!std::isspace(static_cast<unsigned char>(c)))
      compact.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  if (compact.starts_with("INPUT(") || compact.starts_with("OUTPUT("))
    return true;
  const size_t eq = compact.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  const size_t paren = compact.find('(', eq + 1);
  return paren != std::string::npos && paren > eq + 1;
}

}  // namespace

const char* format_name(FileFormat f) {
  switch (f) {
    case FileFormat::kBench:
      return "ISCAS .bench";
    case FileFormat::kBlif:
      return "BLIF";
    case FileFormat::kHstm:
      return "timing model (.hstm)";
    case FileFormat::kDesignState:
      return "design state (.hsds)";
    case FileFormat::kUnknown:
      return "unknown";
  }
  return "unknown";
}

FileFormat detect_format(std::string_view text) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = trim_view(text.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty() || line.front() == '#') continue;

    // First significant line decides. The serialized formats lead with a
    // bare magic keyword; BLIF with a '.'-directive; .bench with one of
    // its three statement shapes.
    size_t tok = 0;
    while (tok < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[tok])))
      ++tok;
    const std::string_view first = line.substr(0, tok);
    if (first == "hstm") return FileFormat::kHstm;
    if (first == "hsds") return FileFormat::kDesignState;
    if (line.front() == '.') return FileFormat::kBlif;
    if (looks_like_bench(line)) return FileFormat::kBench;
    return FileFormat::kUnknown;
  }
  return FileFormat::kUnknown;
}

FileFormat detect_file_format(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open file: " + path);
  // The first significant line sits well within this prefix for every
  // format we accept (comments ahead of it are skipped line by line).
  std::string prefix(64 * 1024, '\0');
  is.read(prefix.data(), static_cast<std::streamsize>(prefix.size()));
  prefix.resize(static_cast<size_t>(is.gcount()));
  return detect_format(prefix);
}

}  // namespace hssta::flow
