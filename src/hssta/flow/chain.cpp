#include "hssta/flow/chain.hpp"

#include <set>
#include <utility>

#include "hssta/util/error.hpp"

namespace hssta::flow {

bool is_model_file(const std::string& path) {
  return path.ends_with(".hstm");
}

std::shared_ptr<const model::TimingModel> load_variant_model(
    const std::string& file, const Config& cfg) {
  if (is_model_file(file))
    return std::make_shared<const model::TimingModel>(
        model::TimingModel::load_file(file));
  return Module::from_bench_file(file, cfg).model_ptr();
}

Design build_chain_design(const std::string& name,
                          const std::vector<std::string>& files,
                          const Config& cfg, const ChainOverrides& overrides) {
  Design design(name, cfg);
  double x = 0.0;
  for (size_t idx = 0; idx < files.size(); ++idx) {
    const std::string& file = files[idx];
    const auto model_it = overrides.models.find(idx);
    const auto origin_it = overrides.origins.find(idx);
    const double ox =
        origin_it != overrides.origins.end() ? origin_it->second.x : x;
    const double oy =
        origin_it != overrides.origins.end() ? origin_it->second.y : 0.0;
    size_t got;
    if (model_it != overrides.models.end())
      got = design.add_instance(model_it->second, ox, oy);
    else if (is_model_file(file))
      got = design.add_instance_from_model_file(file, ox, oy,
                                                "u" + std::to_string(idx));
    else
      got = design.add_instance(Module::from_bench_file(file, cfg), ox, oy);
    x += design.instance_model(got).die().width;
  }

  // The base chain's connection list (deterministic), then any rewires.
  std::vector<hier::Connection> base_conns;
  for (size_t i = 0; i + 1 < design.num_instances(); ++i) {
    const size_t no = design.num_outputs(i);
    const size_t ni = design.num_inputs(i + 1);
    if (no == 0)
      throw Error("cannot chain: module '" + design.instance_name(i) +
                  "' has no outputs");
    for (size_t k = 0; k < ni; ++k)
      base_conns.push_back(hier::Connection{hier::PortRef{i, k % no},
                                            hier::PortRef{i + 1, k}});
  }
  for (size_t c = 0; c < base_conns.size(); ++c) {
    const auto it = overrides.rewires.find(c);
    const hier::Connection& cn =
        it != overrides.rewires.end() ? it->second : base_conns[c];
    design.connect(cn.from_output.instance, cn.from_output.port,
                   cn.to_input.instance, cn.to_input.port);
  }

  // Primary ports from the *base* topology (expose_unconnected_ports
  // naming), so rewired/unmodified chains share one port list.
  std::set<std::pair<size_t, size_t>> driven, read;
  for (const hier::Connection& cn : base_conns) {
    driven.insert({cn.to_input.instance, cn.to_input.port});
    read.insert({cn.from_output.instance, cn.from_output.port});
  }
  for (size_t i = 0; i < design.num_instances(); ++i) {
    for (size_t k = 0; k < design.num_inputs(i); ++k)
      if (!driven.count({i, k}))
        design.primary_input(
            design.instance_name(i) + "_i" + std::to_string(k), i, k);
    for (size_t k = 0; k < design.num_outputs(i); ++k)
      if (!read.count({i, k}))
        design.primary_output(
            design.instance_name(i) + "_o" + std::to_string(k), i, k);
  }
  return design;
}

}  // namespace hssta::flow
