#include "hssta/flow/chain.hpp"

#include <optional>
#include <set>
#include <utility>

#include "hssta/flow/detect.hpp"
#include "hssta/util/error.hpp"

namespace hssta::flow {

bool is_model_file(const std::string& path) {
  // Content beats extension (detect.hpp); the extension decides only when
  // the file cannot be read yet — the error then surfaces from the actual
  // load with its own message.
  try {
    return detect_file_format(path) == FileFormat::kHstm;
  } catch (const Error&) {
    return path.ends_with(".hstm");
  }
}

std::shared_ptr<const model::TimingModel> load_variant_model(
    const std::string& file, const Config& cfg) {
  if (is_model_file(file))
    return std::make_shared<const model::TimingModel>(
        model::TimingModel::load_file(file));
  return Module::from_file(file, cfg).model_ptr();
}

namespace {

/// Add instance `idx` from `file` at the default origin (ox, oy), honoring
/// any model/origin overrides; returns the instance index.
size_t add_instance_at(Design& design, const std::string& file, size_t idx,
                       double ox, double oy, const Config& cfg,
                       const ChainOverrides& overrides) {
  const auto model_it = overrides.models.find(idx);
  const auto origin_it = overrides.origins.find(idx);
  if (origin_it != overrides.origins.end()) {
    ox = origin_it->second.x;
    oy = origin_it->second.y;
  }
  if (model_it != overrides.models.end())
    return design.add_instance(model_it->second, ox, oy);
  if (is_model_file(file))
    return design.add_instance_from_model_file(file, ox, oy,
                                               "u" + std::to_string(idx));
  return design.add_instance(Module::from_file(file, cfg), ox, oy);
}

/// Wire the deterministic base connection list (with rewires applied by
/// index) and expose the *base* topology's unwired boundary ports as
/// primary ports (expose_unconnected_ports naming), so rewired/unmodified
/// builds share one port list — exactly like the incremental engine.
void wire_and_expose(Design& design,
                     const std::vector<hier::Connection>& base_conns,
                     const ChainOverrides& overrides) {
  for (size_t c = 0; c < base_conns.size(); ++c) {
    const auto it = overrides.rewires.find(c);
    const hier::Connection& cn =
        it != overrides.rewires.end() ? it->second : base_conns[c];
    design.connect(cn.from_output.instance, cn.from_output.port,
                   cn.to_input.instance, cn.to_input.port);
  }
  std::set<std::pair<size_t, size_t>> driven, read;
  for (const hier::Connection& cn : base_conns) {
    driven.insert({cn.to_input.instance, cn.to_input.port});
    read.insert({cn.from_output.instance, cn.from_output.port});
  }
  for (size_t i = 0; i < design.num_instances(); ++i) {
    for (size_t k = 0; k < design.num_inputs(i); ++k)
      if (!driven.count({i, k}))
        design.primary_input(
            design.instance_name(i) + "_i" + std::to_string(k), i, k);
    for (size_t k = 0; k < design.num_outputs(i); ++k)
      if (!read.count({i, k}))
        design.primary_output(
            design.instance_name(i) + "_o" + std::to_string(k), i, k);
  }
}

}  // namespace

Design build_chain_design(const std::string& name,
                          const std::vector<std::string>& files,
                          const Config& cfg, const ChainOverrides& overrides) {
  Design design(name, cfg);
  double x = 0.0;
  for (size_t idx = 0; idx < files.size(); ++idx) {
    const size_t got =
        add_instance_at(design, files[idx], idx, x, 0.0, cfg, overrides);
    x += design.instance_model(got).die().width;
  }

  // The base chain's connection list (deterministic), then any rewires.
  std::vector<hier::Connection> base_conns;
  for (size_t i = 0; i + 1 < design.num_instances(); ++i) {
    const size_t no = design.num_outputs(i);
    const size_t ni = design.num_inputs(i + 1);
    if (no == 0)
      throw Error("cannot chain: module '" + design.instance_name(i) +
                  "' has no outputs");
    for (size_t k = 0; k < ni; ++k)
      base_conns.push_back(hier::Connection{hier::PortRef{i, k % no},
                                            hier::PortRef{i + 1, k}});
  }
  wire_and_expose(design, base_conns, overrides);
  return design;
}

Design build_star_design(const std::string& name,
                         const std::vector<std::string>& files,
                         const Config& cfg, const ChainOverrides& overrides) {
  if (files.size() < 2)
    throw Error("star topology needs at least two modules (leaves + hub)");
  Design design(name, cfg);
  for (size_t idx = 0; idx < files.size(); ++idx) {
    // 4-wide grid, each instance offset by its own die — identical models
    // tile exactly (the eco_loop star layout). Placement needs the die
    // before the add, so the model/module resolves first (extraction is
    // cache-aware either way).
    const std::string& file = files[idx];
    const auto model_it = overrides.models.find(idx);
    std::shared_ptr<const model::TimingModel> model;
    std::optional<Module> module;
    if (model_it != overrides.models.end())
      model = model_it->second;
    else if (is_model_file(file))
      model = std::make_shared<const model::TimingModel>(
          model::TimingModel::load_file(file));
    else
      module.emplace(Module::from_file(file, cfg));
    const placement::Die& die = model ? model->die() : module->model().die();
    placement::Point origin{static_cast<double>(idx % 4) * die.width,
                            static_cast<double>(idx / 4) * die.height};
    const auto origin_it = overrides.origins.find(idx);
    if (origin_it != overrides.origins.end()) origin = origin_it->second;
    if (model)
      design.add_instance(std::move(model), origin.x, origin.y,
                          "u" + std::to_string(idx));
    else
      design.add_instance(*module, origin.x, origin.y);
  }

  // Every hub input driven round-robin from the leaves.
  const size_t hub = design.num_instances() - 1;
  std::vector<hier::Connection> base_conns;
  for (size_t k = 0; k < design.num_inputs(hub); ++k) {
    const size_t leaf = k % hub;
    const size_t no = design.num_outputs(leaf);
    if (no == 0)
      throw Error("cannot build star: module '" + design.instance_name(leaf) +
                  "' has no outputs");
    base_conns.push_back(
        hier::Connection{hier::PortRef{leaf, k % no}, hier::PortRef{hub, k}});
  }
  wire_and_expose(design, base_conns, overrides);
  return design;
}

}  // namespace hssta::flow
