/// \file flow.hpp
/// The recommended entry point of the hssta library: the pipeline facade.
///
/// The paper's value is a flow — module SSTA, gray-box model extraction,
/// design-level hierarchical stitching — and this subsystem packages that
/// flow as three types:
///
///   * flow::Config  — one configuration object for every stage, with the
///                     paper's Section VI defaults and key=value loading;
///   * flow::Module  — one IP block through the module-level pipeline
///                     (netlist -> placement -> variation -> timing graph)
///                     with cached ssta/slack/paths/extract/monte_carlo;
///   * flow::Design  — placed module instances stitched at design level
///                     with cached analyze/monte_carlo.
///
/// The subsystem headers under hssta/{core,hier,model,...} remain public
/// for callers who need to compose stages manually; see docs/API.md for
/// the two-layer API and a migration table.

#pragma once

#include "hssta/flow/config.hpp"
#include "hssta/flow/design.hpp"
#include "hssta/flow/module.hpp"
