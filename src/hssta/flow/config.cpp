#include "hssta/flow/config.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "hssta/check/check.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/hash.hpp"
#include "hssta/util/strings.hpp"

namespace hssta::flow {

namespace {

std::string trimmed(const std::string& s) { return std::string(trim(s)); }

// Numeric parsing shares util's strict helpers (full consumption, no
// signs on counts, overflow rejected); wrap them to quote the key.
double parse_num(const std::string& key, const std::string& value) {
  return parse_number("'" + key + "'", value);
}

uint64_t parse_cnt(const std::string& key, const std::string& value) {
  return parse_count("'" + key + "'", value);
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1" || value == "on") return true;
  if (value == "false" || value == "0" || value == "off") return false;
  throw Error("malformed boolean for '" + key + "': " + value);
}

}  // namespace

size_t default_threads() {
  if (const char* env = std::getenv("HSSTA_THREADS")) {
    try {
      return static_cast<size_t>(parse_count("HSSTA_THREADS", env));
    } catch (const Error& e) {
      // A malformed environment value must not make every default-
      // constructed Config throw; fall back to serial — but say so once,
      // so a misconfigured CI job does not silently lose parallelism.
      static std::once_flag warned;
      std::call_once(warned, [&] {
        std::fprintf(stderr,
                     "hssta: warning: %s; ignoring HSSTA_THREADS and "
                     "running serial\n",
                     e.what());
      });
      return 1;
    }
  }
  return 1;
}

std::string default_cache_dir() {
  if (const char* env = std::getenv("HSSTA_CACHE_DIR")) {
    const std::string dir(trim(env));
    if (dir.empty()) {
      // Same policy as HSSTA_THREADS: a blank value is almost certainly a
      // broken export; warn once instead of silently not caching.
      static std::once_flag warned;
      std::call_once(warned, [] {
        std::fprintf(stderr,
                     "hssta: warning: HSSTA_CACHE_DIR is set but blank; "
                     "ignoring it (model caching stays off)\n");
      });
      return "";
    }
    return dir;
  }
  return "";
}

void Config::set(const std::string& key, const std::string& value) {
  if (key == "place.row_height")
    place.row_height = parse_num(key, value);
  else if (key == "place.target_aspect")
    place.target_aspect = parse_num(key, value);
  else if (key == "place.utilization")
    place.utilization = parse_num(key, value);
  else if (key == "parameters.load_sigma")
    parameters.load_sigma_rel = parse_num(key, value);
  else if (key == "correlation.rho_neighbor")
    correlation.rho_neighbor = parse_num(key, value);
  else if (key == "correlation.rho_global")
    correlation.rho_global = parse_num(key, value);
  else if (key == "correlation.cutoff")
    correlation.cutoff = parse_num(key, value);
  else if (key == "grid.max_cells")
    max_cells_per_grid = parse_cnt(key, value);
  else if (key == "pca.min_explained")
    pca.min_explained = parse_num(key, value);
  else if (key == "pca.max_components")
    pca.max_components = parse_cnt(key, value);
  else if (key == "build.output_port_cap")
    build.output_port_cap = parse_num(key, value);
  else if (key == "build.register_pin_cap")
    build.register_pin_cap = parse_num(key, value);
  else if (key == "frontend.sequential")
    frontend.sequential = parse_bool(key, value);
  else if (key == "frontend.liberty")
    frontend.liberty = value;
  else if (key == "frontend.blif_model")
    frontend.blif_model = value;
  else if (key == "extract.delta")
    extract.criticality_threshold = parse_num(key, value);
  else if (key == "extract.repair_connectivity")
    extract.repair_connectivity = parse_bool(key, value);
  else if (key == "hier.mode") {
    if (value == "replacement")
      hier.mode = hier::CorrelationMode::kReplacement;
    else if (value == "global_only")
      hier.mode = hier::CorrelationMode::kGlobalOnly;
    else
      throw Error(
          "config: hier.mode must be 'replacement' or 'global_only', got: " +
          value);
  } else if (key == "hier.load_aware_boundary")
    hier.load_aware_boundary = parse_bool(key, value);
  else if (key == "hier.interconnect_delay")
    hier.interconnect_delay = parse_num(key, value);
  else if (key == "hier.sigma_scale") {
    // Comma-separated per-parameter scale factors, e.g. "1,0.8,1.2"
    // (order matches the configured parameter set; see
    // HierOptions::param_sigma_scale).
    std::vector<double> scales;
    for (const std::string& part : split(value, ','))
      scales.push_back(parse_num(key, trimmed(part)));
    if (scales.empty())
      throw Error("config: hier.sigma_scale needs at least one factor");
    hier.param_sigma_scale = std::move(scales);
  } else if (key == "hier.pca.min_explained")
    hier.pca.min_explained = parse_num(key, value);
  else if (key == "hier.pca.max_components")
    hier.pca.max_components = parse_cnt(key, value);
  else if (key == "mc.samples")
    mc.samples = parse_cnt(key, value);
  else if (key == "mc.seed")
    mc.seed = parse_cnt(key, value);
  else if (key == "threads" || key == "exec.threads")
    threads = parse_cnt(key, value);
  else if (key == "level_parallel" || key == "exec.level_parallel") {
    if (value == "auto")
      level_parallel = timing::LevelParallel::kAuto;
    else if (value == "on")
      level_parallel = timing::LevelParallel::kOn;
    else if (value == "off")
      level_parallel = timing::LevelParallel::kOff;
    else
      throw Error(
          "config: level_parallel must be 'auto', 'on' or 'off', got: " +
          value);
  } else if (key == "cache.dir")
    cache.dir = value;
  else if (key == "cache.enabled")
    cache.enabled = parse_bool(key, value);
  else if (key.starts_with("check.")) {
    const std::string rule = key.substr(6);
    if (check::find_rule(rule) == nullptr)
      throw Error("config: unknown check rule '" + rule +
                  "' (see docs/CHECKS.md for the catalog)");
    check_severity[rule] = check::severity_from_name(value);
  } else
    throw Error("config: unknown key '" + key + "'");
}

Config Config::from_stream(std::istream& is, const std::string& origin) {
  Config cfg;
  std::string line;
  std::string section;
  size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto where = [&] { return origin + ":" + std::to_string(lineno); };
    if (const size_t hash = line.find('#'); hash != std::string::npos)
      line.resize(hash);
    line = trimmed(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() <= 2)
        throw Error(where() + ": malformed section header: " + line);
      section = trimmed(line.substr(1, line.size() - 2));
      if (section.empty()) throw Error(where() + ": empty section header");
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos)
      throw Error(where() + ": expected 'key = value', got: " + line);
    std::string key = trimmed(line.substr(0, eq));
    const std::string value = trimmed(line.substr(eq + 1));
    if (key.empty()) throw Error(where() + ": missing key before '='");
    if (value.empty())
      throw Error(where() + ": missing value for '" + key + "'");
    if (!section.empty()) key = section + "." + key;
    try {
      cfg.set(key, value);
    } catch (const Error& e) {
      throw Error(where() + ": " + e.what());
    }
  }
  return cfg;
}

Config Config::from_string(const std::string& text) {
  std::istringstream is(text);
  return from_stream(is, "<string>");
}

Config Config::from_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open config file: " + path);
  return from_stream(is, path);
}

// Compile-time tripwire for the hand-enumerated fingerprint below: adding
// a field to any hashed struct changes its size and fails this assert, so
// the author is forced to extend the hash (and bump the version tag) —
// otherwise existing cache directories would serve models extracted under
// the old field set. Checked on the primary LP64 libstdc++ platform only;
// other ABIs change every size at once without changing the field sets.
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(placement::PlaceOptions) == 24 &&
                  sizeof(variation::SpatialCorrelationConfig) == 24 &&
                  sizeof(linalg::PcaOptions) == 24 &&
                  sizeof(timing::BuildOptions) == 16 &&
                  sizeof(variation::ProcessParameter) == 64 &&
                  sizeof(variation::ParameterSet) == 32,
              "a struct hashed by extraction_fingerprint() changed: hash the "
              "new field(s), bump the version tag, then update this size");
#endif

uint64_t extraction_fingerprint(const Config& cfg) {
  util::Fnv1a h;
  // v2: build.register_pin_cap joined the hashed field set.
  h.str("hssta.flow_config.v2");
  h.f64(cfg.place.row_height);
  h.f64(cfg.place.target_aspect);
  h.f64(cfg.place.utilization);
  h.f64(cfg.parameters.load_sigma_rel);
  h.u64(cfg.parameters.size());
  for (const variation::ProcessParameter& p : cfg.parameters.params) {
    h.str(p.name);
    h.f64(p.sigma_rel);
    h.f64(p.global_frac);
    h.f64(p.local_frac);
    h.f64(p.random_frac);
  }
  h.f64(cfg.correlation.rho_neighbor);
  h.f64(cfg.correlation.rho_global);
  h.f64(cfg.correlation.cutoff);
  h.u64(cfg.max_cells_per_grid);
  h.f64(cfg.pca.min_explained);
  h.f64(cfg.pca.rel_tol);
  h.u64(cfg.pca.max_components);
  h.f64(cfg.build.output_port_cap);
  h.f64(cfg.build.register_pin_cap);
  return h.value();
}

}  // namespace hssta::flow
