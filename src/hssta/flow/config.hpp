/// \file config.hpp
/// One configuration object for the whole analysis pipeline.
///
/// Every stage of the flow — placement, variation modelling, timing-graph
/// construction, model extraction, hierarchical stitching, Monte Carlo —
/// has its own option struct in its own subsystem. flow::Config gathers
/// them with the paper's Section VI defaults (90nm parameters, 0.92
/// neighbour correlation, delta = 0.05, < 100 cells per grid) so that a
/// consumer configures one object instead of re-wiring six.
///
/// Configs load from a small TOML-like text format ("key = value" lines,
/// optional "[section]" headers, '#' comments):
///
///   [extract]
///   delta = 0.02
///   [hier]
///   mode = global_only
///   interconnect_delay = 0.01
///   [mc]
///   samples = 20000
///
/// Unknown keys and malformed values throw hssta::Error with the offending
/// line, so a typo in a run configuration fails loudly instead of silently
/// analyzing with defaults.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "hssta/check/severity.hpp"
#include "hssta/hier/hier_ssta.hpp"
#include "hssta/linalg/pca.hpp"
#include "hssta/model/extract.hpp"
#include "hssta/placement/placement.hpp"
#include "hssta/timing/builder.hpp"
#include "hssta/variation/parameters.hpp"
#include "hssta/variation/spatial.hpp"

namespace hssta::flow {

/// The default for Config::threads: the HSSTA_THREADS environment variable
/// when set (0 there means "hardware concurrency"), otherwise 1 (serial).
/// Results are bit-identical at every thread count, so the knob is purely
/// about speed. A malformed value falls back to serial with a one-time
/// stderr warning (a misconfigured CI job should not silently lose its
/// parallelism).
[[nodiscard]] size_t default_threads();

/// The default for CacheOptions::dir: the HSSTA_CACHE_DIR environment
/// variable when set, otherwise "" (caching off). A blank value is treated
/// as unset with a one-time stderr warning.
[[nodiscard]] std::string default_cache_dir();

/// Persistent model cache controls ([cache] dir, enabled). The cache is
/// active when `enabled` and `dir` is non-empty; extracted .hstm models are
/// then reused across processes, keyed by the (netlist, library, config,
/// extraction options) fingerprint — see cache::ModelCache.
struct CacheOptions {
  std::string dir = default_cache_dir();
  bool enabled = true;

  [[nodiscard]] bool active() const { return enabled && !dir.empty(); }
  bool operator==(const CacheOptions&) const = default;
};

/// Netlist front-end controls ([frontend] sequential, liberty,
/// blif_model). Excluded from extraction_fingerprint: the library content
/// is hashed separately into the cache key (library::fingerprint), and the
/// other knobs only gate/select what gets loaded, never change a loaded
/// netlist's model.
struct FrontendOptions {
  /// Accept sequential netlists (registers). When false, a netlist with
  /// registers is refused loudly instead of analyzed.
  bool sequential = true;
  /// Path to a Liberty-lite .lib file used as the cell library for
  /// netlist reading; empty selects the built-in 90nm library.
  std::string liberty;
  /// Top model to elaborate from multi-model BLIF files; empty selects
  /// the first model.
  std::string blif_model;

  bool operator==(const FrontendOptions&) const = default;
};

/// Monte Carlo controls shared by module- and design-level sampling.
struct McOptions {
  size_t samples = 10000;  ///< the paper's Section VI sample count
  uint64_t seed = 2009;

  bool operator==(const McOptions&) const = default;
};

/// The consolidated pipeline configuration. Defaults reproduce the paper's
/// Section VI experimental setup exactly.
struct Config {
  /// Row placement of module cells ([place] row_height, target_aspect,
  /// utilization).
  placement::PlaceOptions place;
  /// Process parameters: Leff/Tox/Vth with the 0.42/0.53/0.05 variance
  /// split ([parameters] load_sigma).
  variation::ParameterSet parameters = variation::default_90nm_parameters();
  /// Spatial correlation profile ([correlation] rho_neighbor, rho_global,
  /// cutoff).
  variation::SpatialCorrelationConfig correlation;
  /// Grid partition bound, Chang & Sapatnekar's "< 100 cells per grid"
  /// rule ([grid] max_cells).
  size_t max_cells_per_grid = 100;
  /// Module-level PCA truncation ([pca] min_explained, max_components).
  linalg::PcaOptions pca;
  /// Timing-graph construction ([build] output_port_cap,
  /// register_pin_cap).
  timing::BuildOptions build;
  /// Netlist front end ([frontend] sequential, liberty, blif_model).
  FrontendOptions frontend;
  /// Model extraction ([extract] delta, repair_connectivity).
  model::ExtractOptions extract;
  /// Design-level hierarchical analysis ([hier] mode, load_aware_boundary,
  /// interconnect_delay, pca.min_explained, pca.max_components).
  hier::HierOptions hier;
  /// Monte Carlo reference runs ([mc] samples, seed).
  McOptions mc;
  /// Worker threads for the compute layer ([exec] threads, or the bare key
  /// "threads"): 0 = hardware concurrency, 1 = serial (default; see
  /// default_threads()). Applies to every executor-driven stage — model
  /// extraction / criticality, all-pairs IO delays, Monte Carlo batches and
  /// per-instance design analysis — without changing any result bit.
  size_t threads = default_threads();
  /// Whether sweeps parallelize *within* one propagation, fanning each
  /// topological level's vertices across the executor, instead of across
  /// outer work units ([exec] level_parallel, or the bare key
  /// "level_parallel"; values auto / on / off). auto level-parallelizes
  /// when the outer fan-out cannot occupy the executor and the graph is
  /// wide enough — the win case is few-input modules, where the per-input
  /// fan-out has nothing to fan out. Never changes any result bit.
  timing::LevelParallel level_parallel = timing::LevelParallel::kAuto;
  /// Persistent .hstm model cache ([cache] dir, enabled; dir defaults to
  /// HSSTA_CACHE_DIR). Purely a speed knob: a hit loads a byte-identical
  /// model, so results never depend on cache state.
  CacheOptions cache;
  /// Static-check severity overrides ([check] HSC012 = warn|error|info|off;
  /// rule ids are validated against the check catalog at parse time).
  /// Feeds check::CheckOptions wherever the design-lint pass runs; excluded
  /// from extraction_fingerprint (diagnostics never change a model).
  check::SeverityMap check_severity;

  /// Apply one "section.key" (or bare "key") assignment; throws
  /// hssta::Error on unknown keys or malformed values.
  void set(const std::string& key, const std::string& value);

  /// Parse the TOML-like format described above. `origin` names the source
  /// in error messages.
  static Config from_stream(std::istream& is,
                            const std::string& origin = "<config>");
  static Config from_string(const std::string& text);
  static Config from_file(const std::string& path);
};

/// Stable 64-bit fingerprint of every Config field that influences a
/// module's *extracted timing model*: placement, process parameters,
/// correlation, grid bound, module PCA truncation and graph construction.
/// Excluded by design: extract options (hashed separately per extraction
/// via model::fingerprint), hier/mc options (downstream of the model) and
/// the speed knobs threads / level_parallel / cache (bit-identical
/// results). One third of the model cache key, next to the netlist and
/// library fingerprints.
[[nodiscard]] uint64_t extraction_fingerprint(const Config& cfg);

}  // namespace hssta::flow
