/// \file chain.hpp
/// Assembly of the "chain" design shared by the CLI front end
/// (hier/eco/sweep) and the serve layer's `load_design` verb: modules
/// placed left-to-right in abutment, every consecutive pair fully
/// connected, and the *base* topology's unwired boundary ports exposed as
/// design primary ports. Keeping the assembly in the library means a
/// served analysis is built by exactly the code a one-shot CLI run uses —
/// the serve layer's bit-identity contract starts here.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hssta/flow/config.hpp"
#include "hssta/flow/design.hpp"

namespace hssta::flow {

/// Serialized-model input (vs a netlist to extract). Decided by content
/// (detect.hpp), falling back to the .hstm extension for unreadable files.
[[nodiscard]] bool is_model_file(const std::string& path);

/// Load an ECO variant model: a .hstm file directly, or a netlist (.bench
/// or BLIF, detected by content) whose model extracts through the module
/// pipeline (consulting the persistent model cache first when one is
/// configured).
[[nodiscard]] std::shared_ptr<const model::TimingModel> load_variant_model(
    const std::string& file, const Config& cfg);

/// Overrides applied while assembling a chained design — the from-scratch
/// side of an ECO: swapped-in models, moved instances, rewired chain
/// connections (by chain-connection index).
struct ChainOverrides {
  std::map<size_t, std::shared_ptr<const model::TimingModel>> models;
  std::map<size_t, placement::Point> origins;
  std::map<size_t, hier::Connection> rewires;
};

/// Load the modules, place them left-to-right in abutment and chain every
/// consecutive pair (output k of stage i feeds input k of stage i+1,
/// wrapping over the narrower port list). Boundary ports that the *base*
/// chain leaves unwired become design primary ports — computed from the
/// un-rewired connection list, so an ECO'd chain keeps the base port set
/// (exactly like the incremental engine does).
[[nodiscard]] Design build_chain_design(const std::string& name,
                                        const std::vector<std::string>& files,
                                        const Config& cfg,
                                        const ChainOverrides& overrides = {});

/// The "star" counterpart (the campaign layer's second base topology, same
/// shape as the eco_loop bench design): instances placed on a 4-wide grid
/// by their own die size, the last instance the combiner, every combiner
/// input k driven round-robin by leaf `k % (N-1)`'s output `k % no`, and
/// the base topology's unwired boundary ports exposed as primary ports.
/// Needs at least two files. Overrides apply exactly as in the chain
/// build (rewires indexed into the star's deterministic connection list).
[[nodiscard]] Design build_star_design(const std::string& name,
                                       const std::vector<std::string>& files,
                                       const Config& cfg,
                                       const ChainOverrides& overrides = {});

}  // namespace hssta::flow
