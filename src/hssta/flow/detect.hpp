/// \file detect.hpp
/// Content-based input format detection for the flow layer.
///
/// The CLI (and flow::Module::from_file) accept netlists in more than one
/// concrete syntax; rather than trusting file extensions — which real
/// design kits get wrong constantly — the first significant line of the
/// file decides:
///
///   "hstm"  keyword            -> serialized timing model (.hstm)
///   "hsds"  keyword            -> serialized design state
///   a '.'-directive (".model") -> BLIF
///   INPUT(/OUTPUT(/x = F(...)  -> ISCAS .bench
///
/// Blank lines and '#' comments (shared by .bench and BLIF) are skipped
/// first. Anything else is kUnknown; error paths use format_name() so the
/// message can say what *was* detected next to what would be accepted.

#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace hssta::flow {

enum class FileFormat {
  kBench,        ///< ISCAS85/89 .bench netlist
  kBlif,         ///< Berkeley Logic Interchange Format netlist
  kHstm,         ///< serialized timing model ("hstm 1"/"hstm 2")
  kDesignState,  ///< serialized incr::DesignState ("hsds 1")
  kUnknown,      ///< nothing recognizable (or an empty document)
};

/// Human-readable name of a format, for diagnostics ("ISCAS .bench",
/// "BLIF", "timing model (.hstm)", "design state (.hsds)", "unknown").
[[nodiscard]] const char* format_name(FileFormat f);

/// Detect the format from document text (first significant line wins).
[[nodiscard]] FileFormat detect_format(std::string_view text);

/// Detect the format of a file by reading a bounded prefix. Throws
/// hssta::Error when the file cannot be opened.
[[nodiscard]] FileFormat detect_file_format(const std::string& path);

}  // namespace hssta::flow
