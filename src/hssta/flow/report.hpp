/// \file report.hpp
/// Machine-readable (JSON) reports for the CLI: the `hier` design
/// analysis, the `eco` full-vs-incremental comparison and the `sweep`
/// scenario batch. Kept in the library (not the CLI) so the schema is
/// testable: tests/report_test.cpp pins the field set.

#pragma once

#include <span>
#include <string>

#include "hssta/flow/design.hpp"
#include "hssta/incr/scenario.hpp"
#include "hssta/util/json.hpp"

namespace hssta::flow {

/// Emit {"mean":..,"sigma":..,"q90":..,"q99":..,"q9987":..} for a delay
/// distribution (shared by every report, and by the serve protocol's
/// responses — the schemas must stay one).
void delay_json(util::JsonWriter& w, const timing::CanonicalForm& d);

/// Emit the incr::IncrementalStats counter object (same sharing contract
/// as delay_json).
void incr_stats_json(util::JsonWriter& w, const incr::IncrementalStats& s);

/// Emit one sweep scenario entry: label, index, the change description,
/// seconds, and either delay+stats or the error text. Shared by
/// sweep_report_json and the server's `sweep` verb, so a failed scenario
/// carries its originating index + changes in both payloads.
void scenario_json(util::JsonWriter& w, const incr::ScenarioResult& r);

/// `hssta_cli hier --json`: design summary, per-instance table, timing
/// and delay distribution; a "cache" object when the model cache is
/// active.
[[nodiscard]] std::string hier_report_json(const Design& d,
                                           const hier::HierResult& r);

/// One ECO comparison for eco_report_json.
struct EcoReport {
  std::string change;  ///< human-readable description of the change
  /// incr::scenario_fingerprint() of (base design, change list) — the same
  /// join key campaign shards and sweep entries carry.
  uint64_t fingerprint = 0;
  timing::CanonicalForm full_delay;
  double full_seconds = 0.0;
  timing::CanonicalForm incremental_delay;
  double incremental_seconds = 0.0;
  incr::IncrementalStats stats;  ///< engine counters after the change
  bool identical = false;        ///< full and incremental delays bit-equal
};

/// `hssta_cli eco --json`: the change, both analyses, engine work
/// counters and the measured speedup.
[[nodiscard]] std::string eco_report_json(const Design& d,
                                          const EcoReport& r);

/// `hssta_cli sweep --json`: one entry per scenario (delay + stats, or an
/// error for scenarios that failed).
[[nodiscard]] std::string sweep_report_json(
    const Design& d, std::span<const incr::ScenarioResult> results);

}  // namespace hssta::flow
