/// \file design.hpp
/// flow::Design — the design-level pipeline as one handle.
///
/// A Design assembles placed instances of pre-characterized modules and
/// exposes the paper's hierarchical analysis (Section V) as lazily
/// computed, cached stages:
///
///   flow::Design d("soc");
///   const size_t a = d.add_instance(module, 0, 0, "a");
///   const size_t b = d.add_instance(module, w, 0, "b");
///   d.connect(a, 0, b, 0);                 // a.out0 -> b.in0
///   d.primary_input("pi0", a, 0);
///   d.primary_output("po0", b, 0);
///   d.analyze().delay();                   // stitched distribution
///   d.monte_carlo();                       // flattened MC reference
///
/// Instances come from three sources:
///  * a flow::Module — the model is extracted on demand and the module's
///    netlist/placement are retained so flattened Monte Carlo works;
///  * a loaded model (TimingModel::load_file / add_instance_from_model_file)
///    — the paper's IP hand-off: analysis works, Monte Carlo (which needs
///    the original netlist) does not;
///  * any shared_ptr<const TimingModel>.
///
/// The design die defaults to the bounding box of the placed instances; a
/// fixed outline can be given at construction. Structural mutation after an
/// analysis invalidates the cached results.
///
/// Analysis is sharded: before the (serial) stitching pass, the design
/// extracts the timing model of every instance backed by a live module in
/// parallel across its executor (config().threads) — the embarrassingly
/// parallel per-instance half of the paper's Fig. 5 flow. Monte Carlo
/// sample batches fan out across the same executor. Results are
/// bit-identical at every thread count, and the analysis/MC stages are
/// safe to query from concurrent threads (structural mutation is not).

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "hssta/check/check.hpp"
#include "hssta/exec/executor.hpp"
#include "hssta/flow/config.hpp"
#include "hssta/flow/module.hpp"
#include "hssta/hier/design.hpp"
#include "hssta/hier/hier_ssta.hpp"
#include "hssta/incr/design_state.hpp"
#include "hssta/incr/scenario.hpp"
#include "hssta/mc/hier_mc.hpp"
#include "hssta/stats/empirical.hpp"

namespace hssta::flow {

class Design {
 public:
  /// Die = bounding box of the placed instances.
  explicit Design(std::string name, Config cfg = {});
  /// Fixed die outline.
  Design(std::string name, placement::Die die, Config cfg = {});

  /// Move-constructible (fresh internal mutex; caches move along), so
  /// factory functions can return by value. Moving requires exclusive
  /// access, like any structural mutation. Not copyable or move-assignable
  /// — nothing needs assignment, and the hand-written member list exists
  /// once. A member omitted from the move ctor would only drop a
  /// recomputable cache, never corrupt structural state (those failures
  /// are loud).
  Design(Design&& other) noexcept;
  Design& operator=(Design&& other) = delete;
  Design(const Design&) = delete;
  Design& operator=(const Design&) = delete;

  /// --- assembly ----------------------------------------------------------

  /// Place a module instance with its origin at (x, y); returns its index.
  /// The instance name defaults to "u<index>". The module handle is
  /// retained (shared), and its model is extracted lazily at analysis time
  /// with the *module's* configured extraction options.
  size_t add_instance(const Module& module, double x, double y,
                      std::string name = "");
  /// Place an instance of a stand-alone model (e.g. loaded from .hstm).
  /// Monte Carlo is unavailable for designs with model-only instances.
  size_t add_instance(std::shared_ptr<const model::TimingModel> model,
                      double x, double y, std::string name = "");
  /// Convenience: TimingModel::load_file + add_instance.
  size_t add_instance_from_model_file(const std::string& path, double x,
                                      double y, std::string name = "");

  /// Wire output port `from_port` of instance `from` to input port
  /// `to_port` of instance `to`.
  void connect(size_t from, size_t from_port, size_t to, size_t to_port);
  /// Declare a design primary input driving an instance input; calling
  /// again with the same name fans the input out to more sinks.
  void primary_input(const std::string& name, size_t inst, size_t port);
  /// Declare a design primary output fed by an instance output.
  void primary_output(const std::string& name, size_t inst, size_t port);
  /// Expose every instance input that no connection or primary input
  /// drives ("<inst>_i<port>") and every instance output no connection or
  /// primary output reads ("<inst>_o<port>") as primary ports. Convenient
  /// for CLI-assembled designs where only the stitched topology matters.
  void expose_unconnected_ports();

  /// --- introspection -----------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] size_t num_instances() const { return instances_.size(); }
  [[nodiscard]] const std::string& instance_name(size_t inst) const;
  /// The instance's (lazily extracted or loaded) timing model.
  [[nodiscard]] const model::TimingModel& instance_model(size_t inst) const;
  [[nodiscard]] size_t num_inputs(size_t inst) const;
  [[nodiscard]] size_t num_outputs(size_t inst) const;
  /// True when every instance carries its source netlist, i.e. flattened
  /// Monte Carlo is possible.
  [[nodiscard]] bool can_monte_carlo() const;
  /// Persistent model-cache hit/miss counters summed over the distinct
  /// modules backing this design's instances (shared handles counted
  /// once; all zero when no module caches). Model-file instances never
  /// touch the cache.
  [[nodiscard]] cache::CacheStats cache_stats() const;

  /// --- pipeline stages (lazy, cached) -------------------------------------

  /// The assembled + validated hier::HierDesign (subsystem-level view).
  [[nodiscard]] const hier::HierDesign& hier() const;
  /// Static design diagnostics (check::run_checks over the assembled but
  /// *unvalidated* hierarchical view, fanned per-instance across the
  /// design executor): never throws on a malformed design — it reports it.
  /// Severities come from config().check_severity unless an explicit
  /// options object is passed. Models are still extracted (the stitch
  /// boundary cannot be checked without them), so a clean() report means
  /// analyze() will not fail structurally.
  [[nodiscard]] check::Report check() const;
  [[nodiscard]] check::Report check(const check::CheckOptions& opts) const;
  /// Design-level hierarchical SSTA with config().hier options; the
  /// overload caches per option value.
  [[nodiscard]] const hier::HierResult& analyze() const;
  [[nodiscard]] const hier::HierResult& analyze(
      const hier::HierOptions& opts) const;
  /// The stitched design delay distribution (= analyze().delay()).
  [[nodiscard]] const timing::CanonicalForm& delay() const;
  /// Flattened-netlist Monte Carlo with config().mc options; throws
  /// hssta::Error if an instance lacks its netlist (see can_monte_carlo).
  [[nodiscard]] const stats::EmpiricalDistribution& monte_carlo() const;
  [[nodiscard]] const stats::EmpiricalDistribution& monte_carlo(
      const McOptions& opts) const;
  /// The flattened scalar-evaluable circuit backing monte_carlo().
  [[nodiscard]] const mc::FlatCircuit& flat_circuit() const;

  /// --- incremental re-analysis (ECO / what-if) ----------------------------

  /// The incremental engine bound to this design's current structure and
  /// config().hier options, built (and fully analyzed) on first use.
  /// Apply changes through its API (replace_module / move_instance /
  /// rewire_connection / set_parameter_sigma), then analyze_incremental()
  /// — only the affected cone recomputes, bit-identical to a from-scratch
  /// analyze() of the changed design. Structural mutation of the Design
  /// itself discards the engine (it re-derives from the new structure).
  /// Unlike the read-only stages, the returned reference is mutable state:
  /// do not share it across threads without external synchronization.
  [[nodiscard]] incr::DesignState& incremental() const;
  /// incremental().analyze(): flush pending incremental changes (or run
  /// the first build) and return the design delay distribution.
  const timing::CanonicalForm& analyze_incremental() const;
  /// Batched what-if scenarios over the analyzed base state, fanned out
  /// across the design executor; see incr::ScenarioRunner.
  [[nodiscard]] std::vector<incr::ScenarioResult> scenarios(
      std::span<const incr::Scenario> list) const;

 private:
  struct Instance {
    std::string name;
    /// Exactly one of `module` / `model` is set.
    std::optional<Module> module;
    std::shared_ptr<const model::TimingModel> model;
    placement::Point origin;

    [[nodiscard]] const model::TimingModel& timing_model() const;
  };

  void invalidate();
  [[nodiscard]] const Instance& instance(size_t inst) const;
  /// Assemble the hier::HierDesign view (models prefilled, nothing
  /// validated). Shared by hier() (which validates + caches) and check()
  /// (which must see broken designs). Call with `mu_` held.
  [[nodiscard]] hier::HierDesign assemble_hier() const;
  /// Extract every live-module instance's timing model across the design
  /// executor (dedicated serial context per task); no-op once cached.
  /// Call with `mu_` held.
  void prefill_models() const;
  /// The design's executor (config threads). Call with `mu_` held.
  [[nodiscard]] exec::Executor& executor() const;

  std::string name_;
  Config cfg_;
  std::optional<placement::Die> fixed_die_;
  std::vector<Instance> instances_;
  std::vector<hier::Connection> connections_;
  std::vector<hier::PrimaryInput> inputs_;
  std::vector<hier::PrimaryOutput> outputs_;

  /// Cache keys for the parameterized stages (std::map nodes are
  /// address-stable, so references returned earlier survive later calls
  /// with different options).
  using HierKey = std::tuple<int, bool, double, double, double, size_t,
                             std::vector<double>>;
  using McKey = std::pair<size_t, uint64_t>;

  mutable std::recursive_mutex mu_;
  mutable std::shared_ptr<exec::Executor> exec_;
  mutable std::optional<hier::HierDesign> hier_;
  mutable std::map<HierKey, hier::HierResult> results_;
  mutable std::optional<mc::FlatCircuit> flat_;
  mutable std::map<McKey, stats::EmpiricalDistribution> mc_;
  mutable std::optional<incr::DesignState> incr_;
};

}  // namespace hssta::flow
