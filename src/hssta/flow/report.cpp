#include "hssta/flow/report.hpp"

#include <sstream>

#include "hssta/util/hash.hpp"

namespace hssta::flow {

void incr_stats_json(util::JsonWriter& w, const incr::IncrementalStats& s) {
  w.begin_object();
  w.key("analyses").value(s.analyses);
  w.key("full_builds").value(s.full_builds);
  w.key("coefficient_refreshes").value(s.coefficient_refreshes);
  w.key("instances_restitched").value(s.instances_restitched);
  w.key("connections_restitched").value(s.connections_restitched);
  w.key("vertices_recomputed").value(s.vertices_recomputed);
  w.key("vertices_live").value(s.vertices_live);
  w.end_object();
}

void scenario_json(util::JsonWriter& w, const incr::ScenarioResult& r) {
  w.begin_object();
  w.key("label").value(r.label);
  w.key("index").value(r.index);
  w.key("fingerprint").value(util::Fnv1a::hex(r.fingerprint));
  w.key("changes").value(r.changes);
  w.key("ok").value(r.ok());
  w.key("seconds").value(r.seconds);
  if (r.ok()) {
    w.key("delay");
    delay_json(w, r.delay);
    w.key("stats");
    incr_stats_json(w, r.stats);
  } else {
    w.key("error").value(r.error);
  }
  w.end_object();
}

void delay_json(util::JsonWriter& w, const timing::CanonicalForm& d) {
  w.begin_object();
  w.key("mean").value(d.nominal());
  w.key("sigma").value(d.sigma());
  w.key("q90").value(d.quantile(0.90));
  w.key("q99").value(d.quantile(0.99));
  w.key("q9987").value(d.quantile(0.9987));
  w.end_object();
}

std::string hier_report_json(const Design& d, const hier::HierResult& r) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("design").value(d.name());
  w.key("mode").value(d.config().hier.mode ==
                              hier::CorrelationMode::kReplacement
                          ? "replacement"
                          : "global_only");
  w.key("threads").value(exec::effective_threads(d.config().threads));
  w.key("instances").begin_array();
  for (size_t i = 0; i < d.num_instances(); ++i) {
    const model::TimingModel& m = d.instance_model(i);
    w.begin_object();
    w.key("name").value(d.instance_name(i));
    w.key("model").value(m.name());
    w.key("inputs").value(d.num_inputs(i));
    w.key("outputs").value(d.num_outputs(i));
    w.key("die").begin_object();
    w.key("width").value(m.die().width);
    w.key("height").value(m.die().height);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("connections").value(d.hier().connections().size());
  w.key("build_seconds").value(r.build_seconds);
  w.key("analysis_seconds").value(r.analysis_seconds);
  w.key("delay");
  delay_json(w, r.delay());
  if (d.config().cache.active()) {
    const cache::CacheStats cs = d.cache_stats();
    w.key("cache").begin_object();
    w.key("dir").value(d.config().cache.dir);
    w.key("hits").value(cs.hits);
    w.key("misses").value(cs.misses);
    w.key("stores").value(cs.stores);
    w.key("evictions").value(cs.evictions);
    w.end_object();
  }
  w.end_object();
  return os.str();
}

std::string eco_report_json(const Design& d, const EcoReport& r) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("design").value(d.name());
  w.key("change").value(r.change);
  w.key("fingerprint").value(util::Fnv1a::hex(r.fingerprint));
  w.key("full").begin_object();
  w.key("delay");
  delay_json(w, r.full_delay);
  w.key("seconds").value(r.full_seconds);
  w.end_object();
  w.key("incremental").begin_object();
  w.key("delay");
  delay_json(w, r.incremental_delay);
  w.key("seconds").value(r.incremental_seconds);
  w.key("stats");
  incr_stats_json(w, r.stats);
  w.end_object();
  w.key("speedup").value(r.incremental_seconds > 0.0
                             ? r.full_seconds / r.incremental_seconds
                             : 0.0);
  w.key("identical").value(r.identical);
  w.end_object();
  return os.str();
}

std::string sweep_report_json(const Design& d,
                              std::span<const incr::ScenarioResult> results) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("design").value(d.name());
  w.key("scenarios").begin_array();
  for (const incr::ScenarioResult& r : results) scenario_json(w, r);
  w.end_array();
  w.end_object();
  return os.str();
}

}  // namespace hssta::flow
