#include "hssta/flow/design.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "hssta/util/error.hpp"

namespace hssta::flow {

namespace {
using StateLock = std::lock_guard<std::recursive_mutex>;
}  // namespace

const model::TimingModel& Design::Instance::timing_model() const {
  return module ? module->model() : *model;
}

Design::Design(std::string name, Config cfg)
    : name_(std::move(name)), cfg_(std::move(cfg)) {}

Design::Design(std::string name, placement::Die die, Config cfg)
    : name_(std::move(name)), cfg_(std::move(cfg)), fixed_die_(die) {}

Design::Design(Design&& other) noexcept
    : name_(std::move(other.name_)),
      cfg_(std::move(other.cfg_)),
      fixed_die_(other.fixed_die_),
      instances_(std::move(other.instances_)),
      connections_(std::move(other.connections_)),
      inputs_(std::move(other.inputs_)),
      outputs_(std::move(other.outputs_)),
      exec_(std::move(other.exec_)),
      hier_(std::move(other.hier_)),
      results_(std::move(other.results_)),
      flat_(std::move(other.flat_)),
      mc_(std::move(other.mc_)),
      incr_(std::move(other.incr_)) {}

size_t Design::add_instance(const Module& module, double x, double y,
                            std::string name) {
  invalidate();
  if (name.empty()) name = "u" + std::to_string(instances_.size());
  instances_.push_back(
      Instance{std::move(name), module, nullptr, placement::Point{x, y}});
  return instances_.size() - 1;
}

size_t Design::add_instance(std::shared_ptr<const model::TimingModel> model,
                            double x, double y, std::string name) {
  HSSTA_REQUIRE(model != nullptr, "add_instance: null model");
  invalidate();
  if (name.empty()) name = "u" + std::to_string(instances_.size());
  instances_.push_back(Instance{std::move(name), std::nullopt,
                                std::move(model), placement::Point{x, y}});
  return instances_.size() - 1;
}

size_t Design::add_instance_from_model_file(const std::string& path, double x,
                                            double y, std::string name) {
  auto model = std::make_shared<const model::TimingModel>(
      model::TimingModel::load_file(path));
  if (name.empty()) name = model->name();
  return add_instance(std::move(model), x, y, std::move(name));
}

void Design::connect(size_t from, size_t from_port, size_t to,
                     size_t to_port) {
  HSSTA_REQUIRE(from < instances_.size() && to < instances_.size(),
                "connect: instance index out of range");
  invalidate();
  connections_.push_back(hier::Connection{hier::PortRef{from, from_port},
                                          hier::PortRef{to, to_port}});
}

void Design::primary_input(const std::string& name, size_t inst,
                           size_t port) {
  HSSTA_REQUIRE(inst < instances_.size(),
                "primary_input: instance index out of range");
  invalidate();
  const hier::PortRef sink{inst, port};
  for (hier::PrimaryInput& pi : inputs_) {
    if (pi.name == name) {
      pi.sinks.push_back(sink);
      return;
    }
  }
  inputs_.push_back(hier::PrimaryInput{name, {sink}});
}

void Design::primary_output(const std::string& name, size_t inst,
                            size_t port) {
  HSSTA_REQUIRE(inst < instances_.size(),
                "primary_output: instance index out of range");
  invalidate();
  outputs_.push_back(hier::PrimaryOutput{name, hier::PortRef{inst, port}});
}

void Design::expose_unconnected_ports() {
  invalidate();
  std::set<std::pair<size_t, size_t>> driven_inputs;
  std::set<std::pair<size_t, size_t>> read_outputs;
  for (const hier::Connection& c : connections_) {
    driven_inputs.emplace(c.to_input.instance, c.to_input.port);
    read_outputs.emplace(c.from_output.instance, c.from_output.port);
  }
  for (const hier::PrimaryInput& pi : inputs_)
    for (const hier::PortRef& s : pi.sinks)
      driven_inputs.emplace(s.instance, s.port);
  for (const hier::PrimaryOutput& po : outputs_)
    read_outputs.emplace(po.source.instance, po.source.port);

  for (size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    for (size_t p = 0; p < num_inputs(i); ++p)
      if (!driven_inputs.count({i, p}))
        inputs_.push_back(hier::PrimaryInput{
            inst.name + "_i" + std::to_string(p), {hier::PortRef{i, p}}});
    for (size_t p = 0; p < num_outputs(i); ++p)
      if (!read_outputs.count({i, p}))
        outputs_.push_back(hier::PrimaryOutput{
            inst.name + "_o" + std::to_string(p), hier::PortRef{i, p}});
  }
}

const Design::Instance& Design::instance(size_t inst) const {
  HSSTA_REQUIRE(inst < instances_.size(), "instance index out of range");
  return instances_[inst];
}

const std::string& Design::instance_name(size_t inst) const {
  return instance(inst).name;
}

const model::TimingModel& Design::instance_model(size_t inst) const {
  return instance(inst).timing_model();
}

size_t Design::num_inputs(size_t inst) const {
  return instance(inst).timing_model().graph().inputs().size();
}

size_t Design::num_outputs(size_t inst) const {
  return instance(inst).timing_model().graph().outputs().size();
}

bool Design::can_monte_carlo() const {
  return std::all_of(instances_.begin(), instances_.end(),
                     [](const Instance& i) { return i.module.has_value(); });
}

cache::CacheStats Design::cache_stats() const {
  cache::CacheStats total;
  std::set<const void*> seen;
  for (const Instance& inst : instances_) {
    if (!inst.module) continue;
    if (seen.insert(inst.module->state_.get()).second)
      total += inst.module->cache_stats();
  }
  return total;
}

void Design::invalidate() {
  const StateLock lock(mu_);
  hier_.reset();
  results_.clear();
  flat_.reset();
  mc_.clear();
  incr_.reset();
}

exec::Executor& Design::executor() const {
  if (!exec_) exec_ = exec::make_executor(cfg_.threads);
  return *exec_;
}

void Design::prefill_models() const {
  // Collect the distinct module states that still need extraction (shared
  // handles dedupe to one task; model-only instances have nothing to do).
  std::vector<const Module*> todo;
  std::set<const void*> seen;
  for (const Instance& inst : instances_) {
    if (!inst.module) continue;
    if (seen.insert(inst.module->state_.get()).second)
      todo.push_back(&*inst.module);
  }
  if (todo.size() < 2) {
    // A single module extracts on its own executor — no sharding level.
    for (const Module* m : todo) (void)m->extract_model();
    return;
  }
  // Shard per instance-module across the design executor; each task gets a
  // dedicated serial context (regions do not nest), and the module caches
  // make every later model() call a lookup.
  executor().parallel_for(
      todo.size(), [&](size_t k, exec::Workspace&) {
        exec::SerialExecutor inner;
        (void)todo[k]->extract_model(todo[k]->config().extract, inner);
      });
}

hier::HierDesign Design::assemble_hier() const {
  prefill_models();

  placement::Die die;
  if (fixed_die_) {
    die = *fixed_die_;
  } else {
    double w = 0.0, h = 0.0;
    for (const Instance& inst : instances_) {
      const placement::Die& mdie = inst.timing_model().die();
      w = std::max(w, inst.origin.x + mdie.width);
      h = std::max(h, inst.origin.y + mdie.height);
    }
    die = placement::Die{w, h};
  }

  hier::HierDesign d(name_, die);
  for (const Instance& inst : instances_) {
    const netlist::Netlist* nl =
        inst.module ? &inst.module->netlist() : nullptr;
    const placement::Placement* pl =
        inst.module ? &inst.module->placement() : nullptr;
    d.add_instance(hier::ModuleInstance{inst.name, &inst.timing_model(),
                                        inst.origin, nl, pl});
  }
  for (const hier::Connection& c : connections_) d.add_connection(c);
  for (const hier::PrimaryInput& pi : inputs_) d.add_primary_input(pi);
  for (const hier::PrimaryOutput& po : outputs_) d.add_primary_output(po);
  return d;
}

const hier::HierDesign& Design::hier() const {
  const StateLock lock(mu_);
  if (hier_) return *hier_;
  HSSTA_REQUIRE(!instances_.empty(), "design '" + name_ + "' has no instances");
  hier::HierDesign d = assemble_hier();
  d.validate();
  hier_ = std::move(d);
  return *hier_;
}

check::Report Design::check() const {
  check::CheckOptions opts;
  opts.severity = cfg_.check_severity;
  return check(opts);
}

check::Report Design::check(const check::CheckOptions& opts) const {
  const StateLock lock(mu_);
  // Assemble fresh rather than through hier(): that accessor validates
  // (throws), and the whole point here is to diagnose designs that would
  // not survive validation.
  const hier::HierDesign d = assemble_hier();
  return check::run_checks(d, cfg_.hier, opts, &executor());
}

const hier::HierResult& Design::analyze() const { return analyze(cfg_.hier); }

const hier::HierResult& Design::analyze(const hier::HierOptions& opts) const {
  const StateLock lock(mu_);
  const HierKey key{static_cast<int>(opts.mode), opts.load_aware_boundary,
                    opts.interconnect_delay, opts.pca.min_explained,
                    opts.pca.rel_tol, opts.pca.max_components,
                    opts.param_sigma_scale};
  auto it = results_.find(key);
  if (it == results_.end())
    // hier() shards the per-instance model extraction across the design
    // executor before the serial stitching pass runs here.
    it = results_.emplace(key, hier::analyze_hierarchical(hier(), opts))
             .first;
  return it->second;
}

const timing::CanonicalForm& Design::delay() const {
  return analyze().delay();
}

const mc::FlatCircuit& Design::flat_circuit() const {
  const StateLock lock(mu_);
  if (!flat_) {
    HSSTA_REQUIRE(can_monte_carlo(),
                  "design '" + name_ +
                      "': Monte Carlo needs every instance's source "
                      "netlist; an instance built from a model file "
                      "cannot be flattened");
    const hier::DesignGrid grid = hier::build_design_grid(hier());
    mc::FlattenOptions fopts;
    fopts.interconnect_delay = cfg_.hier.interconnect_delay;
    fopts.load_aware_boundary = cfg_.hier.load_aware_boundary;
    flat_ = mc::flatten_design(hier(), grid, fopts);
  }
  return *flat_;
}

const stats::EmpiricalDistribution& Design::monte_carlo() const {
  return monte_carlo(cfg_.mc);
}

incr::DesignState& Design::incremental() const {
  const StateLock lock(mu_);
  if (incr_) return *incr_;
  (void)hier();  // prefill models and validate the assembled structure
  incr::DesignInputs in;
  in.name = name_;
  in.fixed_die = fixed_die_;
  for (const Instance& inst : instances_) {
    // Module-backed instances hand out an aliasing pointer into the module
    // state, so the engine keeps the module (and its model) alive.
    std::shared_ptr<const model::TimingModel> m =
        inst.module ? std::shared_ptr<const model::TimingModel>(
                          inst.module->state_, &inst.module->model())
                    : inst.model;
    in.instances.push_back(
        incr::InstanceSpec{inst.name, std::move(m), inst.origin});
  }
  in.connections = connections_;
  in.primary_inputs = inputs_;
  in.primary_outputs = outputs_;
  (void)executor();  // materialize exec_
  incr_.emplace(std::move(in), cfg_.hier, exec_, cfg_.level_parallel);
  (void)incr_->analyze();
  return *incr_;
}

const timing::CanonicalForm& Design::analyze_incremental() const {
  const StateLock lock(mu_);
  return incremental().analyze();
}

std::vector<incr::ScenarioResult> Design::scenarios(
    std::span<const incr::Scenario> list) const {
  const StateLock lock(mu_);
  incr::DesignState& base = incremental();
  (void)base.analyze();  // flush user changes so the base is clean
  const incr::ScenarioRunner runner(base);
  return runner.run(list, executor());
}

const stats::EmpiricalDistribution& Design::monte_carlo(
    const McOptions& opts) const {
  const StateLock lock(mu_);
  const McKey key{opts.samples, opts.seed};
  auto it = mc_.find(key);
  if (it == mc_.end())
    it = mc_.emplace(key, flat_circuit().sample_delay(opts.samples, opts.seed,
                                                      executor()))
             .first;
  return it->second;
}

}  // namespace hssta::flow
