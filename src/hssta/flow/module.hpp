/// \file module.hpp
/// flow::Module — the module-level pipeline as one handle.
///
/// A Module owns everything one IP block needs through the analysis flow —
/// cell library, netlist, placement, variation model, canonical timing
/// graph — and exposes the analyses as lazily computed, cached stages:
///
///   flow::Module m = flow::Module::from_bench_file("c432.bench");
///   m.delay();                 // block-based SSTA (paper Section II)
///   m.critical_paths(5);       // statistical path report
///   m.extract_model();         // gray-box model (Sections III-IV)
///   m.monte_carlo();           // physical MC reference
///
/// Stages are built on first use and cached: repeated calls return the
/// *same* object (pointer-identical), and downstream stages reuse upstream
/// ones, so the handle can be passed around freely without re-running
/// analyses. A Module handle is a cheap shared reference; copies share the
/// underlying state and caches, which also keeps models referenced by a
/// flow::Design alive for exactly as long as the design needs them.
///
/// Parameterized stages (slack at a required time, top-k paths, extraction
/// options, MC options) cache per argument value; calling with the same
/// arguments again returns the cached object.
///
/// Module handles are **thread-safe**: stage getters take a shared lock to
/// check the cache and upgrade to an exclusive lock (double-checked) only
/// to compute, so any number of threads (including a flow::Design sharding
/// its instances across an executor, or an incremental scenario sweep
/// hammering cached stages) may share one handle — a stage is computed
/// exactly once, every caller receives the same object, and **cache hits
/// never serialize**: readers of already-computed stages proceed
/// concurrently even while another thread computes a different stage...
/// except during that computation's exclusive section, which is exactly
/// the once-per-stage window. Returned references are stable and may be
/// used without holding any lock. Compute-heavy stages run on the
/// module's executor (config().threads) unless an explicit executor is
/// passed.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hssta/cache/model_cache.hpp"
#include "hssta/core/paths.hpp"
#include "hssta/core/ssta.hpp"
#include "hssta/exec/executor.hpp"
#include "hssta/flow/config.hpp"
#include "hssta/library/cell_library.hpp"
#include "hssta/mc/flat_mc.hpp"
#include "hssta/model/extract.hpp"
#include "hssta/netlist/generate.hpp"
#include "hssta/netlist/netlist.hpp"
#include "hssta/stats/empirical.hpp"
#include "hssta/timing/builder.hpp"
#include "hssta/variation/space.hpp"

namespace hssta::flow {

/// Process-wide default 90nm cell library, shared by every Module that is
/// not given an explicit library.
[[nodiscard]] std::shared_ptr<const library::CellLibrary> default_library();

/// The cell library a config selects: cfg.frontend.liberty parsed through
/// the Liberty-lite reader when set, default_library() otherwise. This is
/// what every Module factory uses when no explicit library is passed.
[[nodiscard]] std::shared_ptr<const library::CellLibrary> frontend_library(
    const Config& cfg);

class Module {
 public:
  /// --- factories ---------------------------------------------------------
  /// `lib` defaults to frontend_library(cfg) — the built-in 90nm library,
  /// or the Liberty-lite file named by cfg.frontend.liberty. A netlist
  /// passed to from_netlist must have been built against `lib` (its gates
  /// alias the library's CellType storage). Every factory refuses a
  /// sequential netlist when cfg.frontend.sequential is false.

  [[nodiscard]] static Module from_netlist(
      netlist::Netlist nl, Config cfg = {},
      std::shared_ptr<const library::CellLibrary> lib = nullptr);
  /// Load a netlist file by *content* (detect.hpp): .bench and BLIF are
  /// accepted; anything else throws an Error naming both the detected
  /// format and the supported ones.
  [[nodiscard]] static Module from_file(
      const std::string& path, Config cfg = {},
      std::shared_ptr<const library::CellLibrary> lib = nullptr);
  [[nodiscard]] static Module from_bench_file(
      const std::string& path, Config cfg = {},
      std::shared_ptr<const library::CellLibrary> lib = nullptr);
  [[nodiscard]] static Module from_bench_string(
      const std::string& text, Config cfg = {},
      std::shared_ptr<const library::CellLibrary> lib = nullptr);
  /// BLIF input; cfg.frontend.blif_model selects the top model of a
  /// multi-model file (empty = first model).
  [[nodiscard]] static Module from_blif_file(
      const std::string& path, Config cfg = {},
      std::shared_ptr<const library::CellLibrary> lib = nullptr);
  [[nodiscard]] static Module from_blif_string(
      const std::string& text, Config cfg = {},
      std::shared_ptr<const library::CellLibrary> lib = nullptr);
  [[nodiscard]] static Module from_iscas(
      std::string_view name, Config cfg = {}, uint64_t seed = 2009,
      std::shared_ptr<const library::CellLibrary> lib = nullptr);
  [[nodiscard]] static Module from_random_dag(
      const netlist::RandomDagSpec& spec, Config cfg = {},
      std::shared_ptr<const library::CellLibrary> lib = nullptr);

  /// --- identity ----------------------------------------------------------

  [[nodiscard]] const std::string& name() const;
  [[nodiscard]] const Config& config() const;
  [[nodiscard]] const library::CellLibrary& library() const;
  [[nodiscard]] const netlist::Netlist& netlist() const;

  /// --- pipeline stages (lazy, cached) -------------------------------------

  [[nodiscard]] const placement::Placement& placement() const;
  [[nodiscard]] const variation::ModuleVariation& variation() const;
  [[nodiscard]] const timing::BuiltGraph& built() const;
  [[nodiscard]] const timing::TimingGraph& graph() const;

  /// --- analyses (lazy, cached) --------------------------------------------

  /// Block-based SSTA of the full module.
  [[nodiscard]] const core::SstaResult& ssta() const;
  /// The module delay distribution (= ssta().delay).
  [[nodiscard]] const timing::CanonicalForm& delay() const;
  /// Statistical slack against a deterministic required time at every
  /// output port; cached per required time.
  [[nodiscard]] const core::SlackResult& slack(
      double required_at_outputs) const;
  /// The k most critical paths; cached per k.
  [[nodiscard]] const std::vector<core::CriticalPath>& critical_paths(
      size_t k) const;
  /// Gray-box timing model extraction with config().extract options; the
  /// overloads cache per option value (the executor does not participate
  /// in the key — results are bit-identical at every thread count). The
  /// two-argument form runs on `ex` instead of the module's executor,
  /// letting an outer scheduler (e.g. flow::Design instance sharding)
  /// control the fan-out. When config().cache is active, the persistent
  /// .hstm cache is consulted first — a hit loads a byte-identical model
  /// without running the pipeline — and populated after a fresh
  /// extraction; see cache::ModelCache for the key and storage contract.
  [[nodiscard]] const model::Extraction& extract_model() const;
  [[nodiscard]] const model::Extraction& extract_model(
      const model::ExtractOptions& opts) const;
  [[nodiscard]] const model::Extraction& extract_model(
      const model::ExtractOptions& opts, exec::Executor& ex) const;
  /// The extracted model (= extract_model().model).
  [[nodiscard]] const model::TimingModel& model() const;
  /// The extracted model as a shared handle: aliases this module's state,
  /// so the model stays alive for as long as the pointer does. The natural
  /// way to hand a module's model to incr::DesignState::replace_module or
  /// an incr::ReplaceModule scenario — extraction (cache-consulting, like
  /// model()) runs on first use.
  [[nodiscard]] std::shared_ptr<const model::TimingModel> model_ptr() const;
  /// The scalar-evaluable physical view used by Monte Carlo.
  [[nodiscard]] const mc::FlatCircuit& flat_circuit() const;
  /// Physical Monte Carlo of the module delay with config().mc options;
  /// the overload caches per option value.
  [[nodiscard]] const stats::EmpiricalDistribution& monte_carlo() const;
  [[nodiscard]] const stats::EmpiricalDistribution& monte_carlo(
      const McOptions& opts) const;

  /// Hit/miss counters of this module's persistent model cache (all zero
  /// when the cache is inactive or no extraction has run yet).
  [[nodiscard]] cache::CacheStats cache_stats() const;

 private:
  friend class Design;
  struct State;
  explicit Module(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace hssta::flow
