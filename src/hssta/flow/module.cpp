#include "hssta/flow/module.hpp"

#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "hssta/netlist/bench_io.hpp"
#include "hssta/netlist/iscas.hpp"
#include "hssta/placement/placement.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/hash.hpp"
#include "hssta/util/timer.hpp"

namespace hssta::flow {

std::shared_ptr<const library::CellLibrary> default_library() {
  static const std::shared_ptr<const library::CellLibrary> lib =
      std::make_shared<const library::CellLibrary>(library::default_90nm());
  return lib;
}

/// All pipeline state behind one Module handle. Stages are std::optional
/// caches filled on first use; parameterized stages key a std::map on the
/// argument (map nodes are address-stable, so references returned earlier
/// survive later calls with different arguments).
///
/// Thread safety: every stage getter holds `mu` (recursive, because stages
/// build on upstream stages) for the whole lookup-or-compute, giving
/// once-per-stage semantics for concurrently shared handles. Cached objects
/// are never moved or destroyed while the State lives, so references handed
/// out remain valid without the lock.
struct Module::State {
  Config cfg;
  std::shared_ptr<const library::CellLibrary> lib;
  netlist::Netlist nl;

  mutable std::recursive_mutex mu;
  std::shared_ptr<exec::Executor> exec;

  std::optional<placement::Placement> placement;
  std::optional<variation::ModuleVariation> variation;
  std::optional<timing::BuiltGraph> built;

  std::optional<core::SstaResult> ssta;
  std::map<double, core::SlackResult> slack;
  std::map<size_t, std::vector<core::CriticalPath>> paths;
  std::map<std::pair<double, bool>, model::Extraction> extractions;
  std::optional<mc::FlatCircuit> flat;
  std::map<std::pair<size_t, uint64_t>, stats::EmpiricalDistribution> mc;

  std::optional<cache::ModelCache> model_cache;
  std::optional<uint64_t> base_fp;

  State(Config c, std::shared_ptr<const library::CellLibrary> l,
        netlist::Netlist n)
      : cfg(std::move(c)), lib(std::move(l)), nl(std::move(n)) {}

  /// The module's executor (config threads), created on first use.
  /// Call with `mu` held.
  exec::Executor& executor() {
    if (!exec) exec = exec::make_executor(cfg.threads);
    return *exec;
  }

  /// The persistent model cache (config cache.dir), opened on first use.
  /// Only call when cfg.cache.active(); call with `mu` held.
  cache::ModelCache& cache() {
    if (!model_cache) model_cache.emplace(cfg.cache.dir);
    return *model_cache;
  }

  /// Fingerprint of everything an extraction depends on except the
  /// extraction options: netlist, cell library, config. Computed once.
  /// Call with `mu` held.
  uint64_t base_fingerprint() {
    if (!base_fp)
      base_fp = util::Fnv1a()
                    .u64(netlist::fingerprint(nl))
                    .u64(library::fingerprint(*lib))
                    .u64(extraction_fingerprint(cfg))
                    .value();
    return *base_fp;
  }
};

namespace {
using StateLock = std::lock_guard<std::recursive_mutex>;
}  // namespace

Module Module::from_netlist(netlist::Netlist nl, Config cfg,
                            std::shared_ptr<const library::CellLibrary> lib) {
  if (!lib) lib = default_library();
  return Module(std::make_shared<State>(std::move(cfg), std::move(lib),
                                        std::move(nl)));
}

Module Module::from_bench_file(
    const std::string& path, Config cfg,
    std::shared_ptr<const library::CellLibrary> lib) {
  if (!lib) lib = default_library();
  netlist::Netlist nl = netlist::read_bench_file(path, *lib);
  return from_netlist(std::move(nl), std::move(cfg), std::move(lib));
}

Module Module::from_bench_string(
    const std::string& text, Config cfg,
    std::shared_ptr<const library::CellLibrary> lib) {
  if (!lib) lib = default_library();
  netlist::Netlist nl = netlist::read_bench_string(text, *lib);
  return from_netlist(std::move(nl), std::move(cfg), std::move(lib));
}

Module Module::from_iscas(std::string_view name, Config cfg, uint64_t seed,
                          std::shared_ptr<const library::CellLibrary> lib) {
  if (!lib) lib = default_library();
  netlist::Netlist nl = netlist::make_iscas85(name, *lib, seed);
  return from_netlist(std::move(nl), std::move(cfg), std::move(lib));
}

Module Module::from_random_dag(
    const netlist::RandomDagSpec& spec, Config cfg,
    std::shared_ptr<const library::CellLibrary> lib) {
  if (!lib) lib = default_library();
  netlist::Netlist nl = netlist::make_random_dag(spec, *lib);
  return from_netlist(std::move(nl), std::move(cfg), std::move(lib));
}

const std::string& Module::name() const { return state_->nl.name(); }

const Config& Module::config() const { return state_->cfg; }

const library::CellLibrary& Module::library() const { return *state_->lib; }

const netlist::Netlist& Module::netlist() const { return state_->nl; }

const placement::Placement& Module::placement() const {
  State& s = *state_;
  const StateLock lock(s.mu);
  if (!s.placement) s.placement = placement::place_rows(s.nl, s.cfg.place);
  return *s.placement;
}

const variation::ModuleVariation& Module::variation() const {
  State& s = *state_;
  const StateLock lock(s.mu);
  if (!s.variation)
    s.variation = variation::make_module_variation(
        placement(), s.nl.num_gates(), s.cfg.parameters, s.cfg.correlation,
        s.cfg.max_cells_per_grid, s.cfg.pca);
  return *s.variation;
}

const timing::BuiltGraph& Module::built() const {
  State& s = *state_;
  const StateLock lock(s.mu);
  if (!s.built)
    s.built = timing::build_timing_graph(s.nl, placement(), variation(),
                                         s.cfg.build);
  return *s.built;
}

const timing::TimingGraph& Module::graph() const { return built().graph; }

const core::SstaResult& Module::ssta() const {
  State& s = *state_;
  const StateLock lock(s.mu);
  if (!s.ssta)
    s.ssta = core::run_ssta(built().graph, s.executor(), s.cfg.level_parallel);
  return *s.ssta;
}

const timing::CanonicalForm& Module::delay() const { return ssta().delay; }

const core::SlackResult& Module::slack(double required_at_outputs) const {
  State& s = *state_;
  const StateLock lock(s.mu);
  auto it = s.slack.find(required_at_outputs);
  if (it == s.slack.end())
    it = s.slack
             .emplace(required_at_outputs,
                      core::compute_slack(built().graph, required_at_outputs,
                                          s.executor(), s.cfg.level_parallel))
             .first;
  return it->second;
}

const std::vector<core::CriticalPath>& Module::critical_paths(size_t k) const {
  State& s = *state_;
  const StateLock lock(s.mu);
  auto it = s.paths.find(k);
  if (it == s.paths.end())
    it = s.paths.emplace(k, core::report_critical_paths(built().graph, k))
             .first;
  return it->second;
}

const model::Extraction& Module::extract_model() const {
  // The config-wide level_parallel knob rides along into the criticality
  // step; it is not part of the extraction cache key (results are
  // bit-identical either way).
  model::ExtractOptions opts = state_->cfg.extract;
  opts.level_parallel = state_->cfg.level_parallel;
  return extract_model(opts);
}

const model::Extraction& Module::extract_model(
    const model::ExtractOptions& opts) const {
  State& s = *state_;
  const StateLock lock(s.mu);
  return extract_model(opts, s.executor());
}

const model::Extraction& Module::extract_model(
    const model::ExtractOptions& opts, exec::Executor& ex) const {
  State& s = *state_;
  const StateLock lock(s.mu);
  const std::pair<double, bool> key{opts.criticality_threshold,
                                    opts.repair_connectivity};
  auto it = s.extractions.find(key);
  if (it != s.extractions.end()) return it->second;

  // Consult the persistent cache before extracting. A hit skips the whole
  // placement -> variation -> graph -> criticality pipeline (the loader
  // re-derives the model's own PCA space from the stored geometry) and is
  // byte-identical to a fresh extraction by the serializer's round-trip
  // guarantee.
  const bool cached = s.cfg.cache.active();
  uint64_t fp = 0;
  if (cached) {
    fp = util::Fnv1a()
             .u64(s.base_fingerprint())
             .u64(model::fingerprint(opts))
             .value();
    WallTimer timer;
    if (std::optional<model::TimingModel> m = s.cache().load(fp)) {
      model::ExtractionStats stats;
      stats.from_cache = true;
      stats.model_vertices = m->graph().num_live_vertices();
      stats.model_edges = m->graph().num_live_edges();
      stats.seconds = timer.seconds();
      return s.extractions
          .emplace(key,
                   model::Extraction{std::move(*m), std::move(stats)})
          .first->second;
    }
  }

  it = s.extractions
           .emplace(key, model::extract_timing_model(
                             built(), variation(), s.nl.name(),
                             model::compute_boundary(s.nl), ex, opts))
           .first;
  if (cached) s.cache().store(fp, it->second.model);
  return it->second;
}

cache::CacheStats Module::cache_stats() const {
  State& s = *state_;
  const StateLock lock(s.mu);
  return s.model_cache ? s.model_cache->stats() : cache::CacheStats{};
}

const model::TimingModel& Module::model() const {
  return extract_model().model;
}

const mc::FlatCircuit& Module::flat_circuit() const {
  State& s = *state_;
  const StateLock lock(s.mu);
  if (!s.flat)
    s.flat = mc::FlatCircuit::from_module(built(), s.nl, variation());
  return *s.flat;
}

const stats::EmpiricalDistribution& Module::monte_carlo() const {
  return monte_carlo(state_->cfg.mc);
}

const stats::EmpiricalDistribution& Module::monte_carlo(
    const McOptions& opts) const {
  State& s = *state_;
  const StateLock lock(s.mu);
  const std::pair<size_t, uint64_t> key{opts.samples, opts.seed};
  auto it = s.mc.find(key);
  if (it == s.mc.end())
    it = s.mc
             .emplace(key, flat_circuit().sample_delay(opts.samples, opts.seed,
                                                       s.executor()))
             .first;
  return it->second;
}

}  // namespace hssta::flow
