#include "hssta/flow/module.hpp"

#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <utility>

#include "hssta/flow/detect.hpp"
#include "hssta/frontend/blif.hpp"
#include "hssta/frontend/liberty.hpp"
#include "hssta/frontend/sequential.hpp"
#include "hssta/netlist/bench_io.hpp"
#include "hssta/netlist/iscas.hpp"
#include "hssta/placement/placement.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/hash.hpp"
#include "hssta/util/timer.hpp"

namespace hssta::flow {

std::shared_ptr<const library::CellLibrary> default_library() {
  static const std::shared_ptr<const library::CellLibrary> lib =
      std::make_shared<const library::CellLibrary>(library::default_90nm());
  return lib;
}

std::shared_ptr<const library::CellLibrary> frontend_library(
    const Config& cfg) {
  if (cfg.frontend.liberty.empty()) return default_library();
  frontend::LibertyLibrary lib =
      frontend::read_liberty_file(cfg.frontend.liberty);
  return std::make_shared<const library::CellLibrary>(std::move(lib.cells));
}

/// All pipeline state behind one Module handle. Stages are std::optional
/// caches filled on first use; parameterized stages key a std::map on the
/// argument (map nodes are address-stable, so references returned earlier
/// survive later calls with different arguments).
///
/// Thread safety: getters take `mu` shared to *check* a cache and unique
/// to *fill* it (double-checked: a second writer that lost the race finds
/// the stage filled and returns it). Cache hits from any number of threads
/// therefore proceed concurrently — a many-reader incremental sweep no
/// longer serializes on the handle — while a stage still computes exactly
/// once. The ensure_* helpers run with the unique lock held and call only
/// each other (never the public getters), so the non-recursive lock is
/// never re-entered. Cached objects are never moved or destroyed while the
/// State lives, so references handed out remain valid without any lock.
struct Module::State {
  Config cfg;
  std::shared_ptr<const library::CellLibrary> lib;
  netlist::Netlist nl;

  mutable std::shared_mutex mu;
  std::shared_ptr<exec::Executor> exec;

  std::optional<placement::Placement> placement;
  std::optional<variation::ModuleVariation> variation;
  std::optional<timing::BuiltGraph> built;

  std::optional<core::SstaResult> ssta;
  std::map<double, core::SlackResult> slack;
  std::map<size_t, std::vector<core::CriticalPath>> paths;
  std::map<std::pair<double, bool>, model::Extraction> extractions;
  std::optional<mc::FlatCircuit> flat;
  std::map<std::pair<size_t, uint64_t>, stats::EmpiricalDistribution> mc;

  std::optional<cache::ModelCache> model_cache;
  std::optional<uint64_t> base_fp;

  State(Config c, std::shared_ptr<const library::CellLibrary> l,
        netlist::Netlist n)
      : cfg(std::move(c)), lib(std::move(l)), nl(std::move(n)) {}

  /// --- compute paths; all called with `mu` held unique ------------------

  exec::Executor& executor() {
    if (!exec) exec = exec::make_executor(cfg.threads);
    return *exec;
  }

  /// The persistent model cache (config cache.dir), opened on first use.
  /// Only call when cfg.cache.active().
  cache::ModelCache& cache() {
    if (!model_cache) model_cache.emplace(cfg.cache.dir);
    return *model_cache;
  }

  /// Fingerprint of everything an extraction depends on except the
  /// extraction options: netlist, cell library, config. Computed once.
  uint64_t base_fingerprint() {
    if (!base_fp)
      base_fp = util::Fnv1a()
                    .u64(netlist::fingerprint(nl))
                    .u64(library::fingerprint(*lib))
                    .u64(extraction_fingerprint(cfg))
                    .value();
    return *base_fp;
  }

  const placement::Placement& ensure_placement() {
    if (!placement) placement = placement::place_rows(nl, cfg.place);
    return *placement;
  }

  const variation::ModuleVariation& ensure_variation() {
    if (!variation)
      variation = variation::make_module_variation(
          ensure_placement(), nl.num_gates(), cfg.parameters, cfg.correlation,
          cfg.max_cells_per_grid, cfg.pca);
    return *variation;
  }

  const timing::BuiltGraph& ensure_built() {
    if (!built)
      built = timing::build_timing_graph(nl, ensure_placement(),
                                         ensure_variation(), cfg.build);
    return *built;
  }

  const core::SstaResult& ensure_ssta() {
    if (!ssta)
      ssta = core::run_ssta(ensure_built().graph, executor(),
                            cfg.level_parallel);
    return *ssta;
  }

  const core::SlackResult& ensure_slack(double required_at_outputs) {
    auto it = slack.find(required_at_outputs);
    if (it == slack.end())
      it = slack
               .emplace(required_at_outputs,
                        core::compute_slack(ensure_built().graph,
                                            required_at_outputs, executor(),
                                            cfg.level_parallel))
               .first;
    return it->second;
  }

  const std::vector<core::CriticalPath>& ensure_paths(size_t k) {
    auto it = paths.find(k);
    if (it == paths.end())
      it = paths.emplace(k, core::report_critical_paths(ensure_built().graph,
                                                        k))
               .first;
    return it->second;
  }

  const model::Extraction& ensure_extraction(const model::ExtractOptions& opts,
                                             exec::Executor& ex) {
    const std::pair<double, bool> key{opts.criticality_threshold,
                                      opts.repair_connectivity};
    auto it = extractions.find(key);
    if (it != extractions.end()) return it->second;

    // Consult the persistent cache before extracting. A hit skips the
    // whole placement -> variation -> graph -> criticality pipeline (the
    // loader re-derives the model's own PCA space from the stored
    // geometry) and is byte-identical to a fresh extraction by the
    // serializer's round-trip guarantee.
    const bool cached = cfg.cache.active();
    uint64_t fp = 0;
    if (cached) {
      fp = util::Fnv1a()
               .u64(base_fingerprint())
               .u64(model::fingerprint(opts))
               .value();
      WallTimer timer;
      if (std::optional<model::TimingModel> m = cache().load(fp)) {
        model::ExtractionStats stats;
        stats.from_cache = true;
        stats.model_vertices = m->graph().num_live_vertices();
        stats.model_edges = m->graph().num_live_edges();
        stats.seconds = timer.seconds();
        return extractions
            .emplace(key, model::Extraction{std::move(*m), std::move(stats)})
            .first->second;
      }
    }

    it = extractions
             .emplace(key, model::extract_timing_model(
                               ensure_built(), ensure_variation(), nl.name(),
                               model::compute_boundary(nl), ex, opts))
             .first;
    // Sequential modules carry their register records and folded FF-to-FF
    // constraints in the model ("hstm 2"); attach them before the store so
    // a cache hit round-trips the same data.
    if (nl.is_sequential()) {
      frontend::SequentialExtraction seq =
          frontend::extract_sequential(nl, ensure_built());
      it->second.model.set_sequential(std::move(seq.registers),
                                      std::move(seq.constraints));
    }
    if (cached) cache().store(fp, it->second.model);
    return it->second;
  }

  const mc::FlatCircuit& ensure_flat() {
    if (!flat)
      flat = mc::FlatCircuit::from_module(ensure_built(), nl,
                                          ensure_variation());
    return *flat;
  }

  const stats::EmpiricalDistribution& ensure_mc(const McOptions& opts) {
    const std::pair<size_t, uint64_t> key{opts.samples, opts.seed};
    auto it = mc.find(key);
    if (it == mc.end())
      it = mc.emplace(key, ensure_flat().sample_delay(opts.samples, opts.seed,
                                                      executor()))
               .first;
    return it->second;
  }
};

namespace {
using ReadLock = std::shared_lock<std::shared_mutex>;
using WriteLock = std::unique_lock<std::shared_mutex>;
}  // namespace

Module Module::from_netlist(netlist::Netlist nl, Config cfg,
                            std::shared_ptr<const library::CellLibrary> lib) {
  if (nl.is_sequential() && !cfg.frontend.sequential)
    throw Error("netlist '" + nl.name() + "' is sequential (" +
                std::to_string(nl.num_registers()) +
                " registers) but the configuration disables sequential "
                "analysis ([frontend] sequential = false)");
  if (!lib) lib = frontend_library(cfg);
  return Module(std::make_shared<State>(std::move(cfg), std::move(lib),
                                        std::move(nl)));
}

Module Module::from_file(const std::string& path, Config cfg,
                         std::shared_ptr<const library::CellLibrary> lib) {
  switch (const FileFormat fmt = detect_file_format(path)) {
    case FileFormat::kBench:
      return from_bench_file(path, std::move(cfg), std::move(lib));
    case FileFormat::kBlif:
      return from_blif_file(path, std::move(cfg), std::move(lib));
    default:
      throw Error("cannot load a module from " + path + ": content detected "
                  "as " + format_name(fmt) + "; supported netlist formats "
                  "are ISCAS .bench and BLIF");
  }
}

Module Module::from_bench_file(
    const std::string& path, Config cfg,
    std::shared_ptr<const library::CellLibrary> lib) {
  if (!lib) lib = frontend_library(cfg);
  netlist::Netlist nl = netlist::read_bench_file(path, *lib);
  return from_netlist(std::move(nl), std::move(cfg), std::move(lib));
}

Module Module::from_bench_string(
    const std::string& text, Config cfg,
    std::shared_ptr<const library::CellLibrary> lib) {
  if (!lib) lib = frontend_library(cfg);
  netlist::Netlist nl = netlist::read_bench_string(text, *lib);
  return from_netlist(std::move(nl), std::move(cfg), std::move(lib));
}

Module Module::from_blif_file(
    const std::string& path, Config cfg,
    std::shared_ptr<const library::CellLibrary> lib) {
  if (!lib) lib = frontend_library(cfg);
  frontend::BlifOptions opts;
  opts.model = cfg.frontend.blif_model;
  netlist::Netlist nl = frontend::read_blif_file(path, *lib, opts);
  return from_netlist(std::move(nl), std::move(cfg), std::move(lib));
}

Module Module::from_blif_string(
    const std::string& text, Config cfg,
    std::shared_ptr<const library::CellLibrary> lib) {
  if (!lib) lib = frontend_library(cfg);
  frontend::BlifOptions opts;
  opts.model = cfg.frontend.blif_model;
  netlist::Netlist nl = frontend::read_blif_string(text, *lib, opts);
  return from_netlist(std::move(nl), std::move(cfg), std::move(lib));
}

Module Module::from_iscas(std::string_view name, Config cfg, uint64_t seed,
                          std::shared_ptr<const library::CellLibrary> lib) {
  if (!lib) lib = frontend_library(cfg);
  netlist::Netlist nl = netlist::make_iscas85(name, *lib, seed);
  return from_netlist(std::move(nl), std::move(cfg), std::move(lib));
}

Module Module::from_random_dag(
    const netlist::RandomDagSpec& spec, Config cfg,
    std::shared_ptr<const library::CellLibrary> lib) {
  if (!lib) lib = frontend_library(cfg);
  netlist::Netlist nl = netlist::make_random_dag(spec, *lib);
  return from_netlist(std::move(nl), std::move(cfg), std::move(lib));
}

const std::string& Module::name() const { return state_->nl.name(); }

const Config& Module::config() const { return state_->cfg; }

const library::CellLibrary& Module::library() const { return *state_->lib; }

const netlist::Netlist& Module::netlist() const { return state_->nl; }

const placement::Placement& Module::placement() const {
  State& s = *state_;
  {
    const ReadLock lock(s.mu);
    if (s.placement) return *s.placement;
  }
  const WriteLock lock(s.mu);
  return s.ensure_placement();
}

const variation::ModuleVariation& Module::variation() const {
  State& s = *state_;
  {
    const ReadLock lock(s.mu);
    if (s.variation) return *s.variation;
  }
  const WriteLock lock(s.mu);
  return s.ensure_variation();
}

const timing::BuiltGraph& Module::built() const {
  State& s = *state_;
  {
    const ReadLock lock(s.mu);
    if (s.built) return *s.built;
  }
  const WriteLock lock(s.mu);
  return s.ensure_built();
}

const timing::TimingGraph& Module::graph() const { return built().graph; }

const core::SstaResult& Module::ssta() const {
  State& s = *state_;
  {
    const ReadLock lock(s.mu);
    if (s.ssta) return *s.ssta;
  }
  const WriteLock lock(s.mu);
  return s.ensure_ssta();
}

const timing::CanonicalForm& Module::delay() const { return ssta().delay; }

const core::SlackResult& Module::slack(double required_at_outputs) const {
  State& s = *state_;
  {
    const ReadLock lock(s.mu);
    const auto it = s.slack.find(required_at_outputs);
    if (it != s.slack.end()) return it->second;
  }
  const WriteLock lock(s.mu);
  return s.ensure_slack(required_at_outputs);
}

const std::vector<core::CriticalPath>& Module::critical_paths(size_t k) const {
  State& s = *state_;
  {
    const ReadLock lock(s.mu);
    const auto it = s.paths.find(k);
    if (it != s.paths.end()) return it->second;
  }
  const WriteLock lock(s.mu);
  return s.ensure_paths(k);
}

const model::Extraction& Module::extract_model() const {
  // The config-wide level_parallel knob rides along into the criticality
  // step; it is not part of the extraction cache key (results are
  // bit-identical either way).
  model::ExtractOptions opts = state_->cfg.extract;
  opts.level_parallel = state_->cfg.level_parallel;
  return extract_model(opts);
}

const model::Extraction& Module::extract_model(
    const model::ExtractOptions& opts) const {
  State& s = *state_;
  {
    const ReadLock lock(s.mu);
    const std::pair<double, bool> key{opts.criticality_threshold,
                                      opts.repair_connectivity};
    const auto it = s.extractions.find(key);
    if (it != s.extractions.end()) return it->second;
  }
  const WriteLock lock(s.mu);
  return s.ensure_extraction(opts, s.executor());
}

const model::Extraction& Module::extract_model(
    const model::ExtractOptions& opts, exec::Executor& ex) const {
  State& s = *state_;
  {
    const ReadLock lock(s.mu);
    const std::pair<double, bool> key{opts.criticality_threshold,
                                      opts.repair_connectivity};
    const auto it = s.extractions.find(key);
    if (it != s.extractions.end()) return it->second;
  }
  const WriteLock lock(s.mu);
  return s.ensure_extraction(opts, ex);
}

cache::CacheStats Module::cache_stats() const {
  State& s = *state_;
  const ReadLock lock(s.mu);
  return s.model_cache ? s.model_cache->stats() : cache::CacheStats{};
}

const model::TimingModel& Module::model() const {
  return extract_model().model;
}

std::shared_ptr<const model::TimingModel> Module::model_ptr() const {
  return std::shared_ptr<const model::TimingModel>(state_, &model());
}

const mc::FlatCircuit& Module::flat_circuit() const {
  State& s = *state_;
  {
    const ReadLock lock(s.mu);
    if (s.flat) return *s.flat;
  }
  const WriteLock lock(s.mu);
  return s.ensure_flat();
}

const stats::EmpiricalDistribution& Module::monte_carlo() const {
  return monte_carlo(state_->cfg.mc);
}

const stats::EmpiricalDistribution& Module::monte_carlo(
    const McOptions& opts) const {
  State& s = *state_;
  {
    const ReadLock lock(s.mu);
    const std::pair<size_t, uint64_t> key{opts.samples, opts.seed};
    const auto it = s.mc.find(key);
    if (it != s.mc.end()) return it->second;
  }
  const WriteLock lock(s.mu);
  return s.ensure_mc(opts);
}

}  // namespace hssta::flow
