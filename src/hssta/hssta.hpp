/// \file hssta.hpp
/// Umbrella header: the full public API of the hssta library.
///
/// The API has two layers:
///
///  * The **flow facade** (hssta/flow/) — the recommended entry point.
///    flow::Module runs the module-level pipeline (netlist -> placement ->
///    variation -> timing graph -> SSTA / model extraction / Monte Carlo)
///    as lazily computed, cached stages behind one handle; flow::Design
///    stitches placed module instances at design level; flow::Config
///    gathers every stage's options with the paper's Section VI defaults
///    and loads them from key=value files.
///
///  * The **subsystem headers** (hssta/core, hssta/hier, hssta/model, ...)
///    — the individual stages, for callers who compose pipelines manually
///    or extend them.
///
/// See docs/API.md for the module -> extract -> hierarchical lifecycle and
/// a migration table from hand-wired subsystem calls to the facade.

#pragma once

#include "hssta/flow/flow.hpp"

#include "hssta/cache/model_cache.hpp"
#include "hssta/core/criticality.hpp"
#include "hssta/core/io_delays.hpp"
#include "hssta/core/paths.hpp"
#include "hssta/core/ssta.hpp"
#include "hssta/exec/executor.hpp"
#include "hssta/exec/workspace.hpp"
#include "hssta/hier/design.hpp"
#include "hssta/hier/design_grid.hpp"
#include "hssta/hier/hier_ssta.hpp"
#include "hssta/hier/replace.hpp"
#include "hssta/hier/stitch.hpp"
#include "hssta/incr/design_state.hpp"
#include "hssta/incr/scenario.hpp"
#include "hssta/library/cell_library.hpp"
#include "hssta/linalg/cholesky.hpp"
#include "hssta/linalg/eigen.hpp"
#include "hssta/linalg/matrix.hpp"
#include "hssta/linalg/pca.hpp"
#include "hssta/mc/flat_mc.hpp"
#include "hssta/mc/hier_mc.hpp"
#include "hssta/mc/sampler.hpp"
#include "hssta/model/extract.hpp"
#include "hssta/model/reduce.hpp"
#include "hssta/model/timing_model.hpp"
#include "hssta/netlist/bench_io.hpp"
#include "hssta/netlist/generate.hpp"
#include "hssta/netlist/iscas.hpp"
#include "hssta/netlist/netlist.hpp"
#include "hssta/placement/placement.hpp"
#include "hssta/stats/empirical.hpp"
#include "hssta/stats/histogram.hpp"
#include "hssta/stats/normal.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/timing/builder.hpp"
#include "hssta/timing/canonical.hpp"
#include "hssta/timing/graph.hpp"
#include "hssta/timing/propagate.hpp"
#include "hssta/timing/sta.hpp"
#include "hssta/timing/statops.hpp"
#include "hssta/util/argparse.hpp"
#include "hssta/util/ascii_plot.hpp"
#include "hssta/util/csv.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/strings.hpp"
#include "hssta/util/table.hpp"
#include "hssta/util/timer.hpp"
#include "hssta/variation/grid.hpp"
#include "hssta/variation/parameters.hpp"
#include "hssta/variation/space.hpp"
#include "hssta/variation/spatial.hpp"
