/// \file campaign.hpp
/// campaign:: — distributed, fault-tolerant, resumable scenario campaigns
/// over incr::ScenarioRunner (ROADMAP item 3).
///
/// A campaign is a spec (spec.hpp) expanded into a deterministic scenario
/// list. Execution is sharded: every completed scenario lands in
/// `<out>/shards/<fingerprint>.json`, written to a temp file and
/// atomically renamed — the shard directory IS the work queue. A killed
/// campaign re-run rescans the directory and skips everything already
/// done; a crashed worker's in-flight scenario is simply re-dispatched.
/// Failed scenarios (invalid rewires, off-die moves, ...) write error
/// shards: they are completed work, reported as failures, never retried.
///
/// run_campaign() executes the pending set either in-process (workers=0:
/// one ScenarioRunner batch — the serial reference) or by spawning
/// `hssta_cli campaign-worker` subprocesses that speak a serve-style
/// newline-JSON protocol over stdio:
///
///   worker ► {"ok":true,"ready":true,"campaign":..,
///             "base_fingerprint":..,"scenarios":N}
///   coord  ► {"verb":"scenario","index":i,"fingerprint":".."}
///   worker ► {"ok":true,"index":i,"fingerprint":"..",
///             "failed":false,"seconds":s}
///   coord  ► {"verb":"shutdown"}          (or just closes stdin)
///
/// The ready handshake pins both sides to the same expansion: a worker
/// whose base fingerprint or scenario count disagrees (stale spec, other
/// binary) is rejected before any work is dispatched.
///
/// merge_campaign() folds the shards into one campaign report, keyed by
/// the expansion order — byte-identical no matter how many workers ran,
/// in what order shards landed, or how often the campaign was resumed,
/// and byte-identical to the workers=0 serial run (asserted in tests and
/// gated in bench/campaign_scale). Run-varying data (seconds, engine
/// counters) deliberately stays out of the merged report.

#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "hssta/campaign/spec.hpp"
#include "hssta/flow/config.hpp"

namespace hssta::campaign {

struct CampaignOptions {
  /// Campaign output directory (shards live in `<out_dir>/shards/`,
  /// the merged report at `<out_dir>/campaign.json`). Created on demand.
  std::string out_dir;
  /// Worker process count; 0 runs every pending scenario in-process as
  /// one ScenarioRunner batch (the serial reference path).
  size_t workers = 4;
  /// Stop after this many scenario executions this run (0 = no limit).
  /// The deterministic kill switch: a limited run completes normally with
  /// `remaining > 0`, so resume tests don't need timing-dependent kills.
  size_t limit = 0;
  /// Worker executable (the hssta_cli binary). Empty = locate
  /// automatically next to the running executable.
  std::string worker_cmd;
  /// Extra argv appended to every worker invocation (e.g. "--config F").
  std::vector<std::string> worker_args;
  /// Analysis configuration. Workers force threads=1 (parallelism is the
  /// worker fan-out); the in-process path honors config.threads.
  flow::Config config;
};

/// One run's outcome. `skipped` counts scenarios whose valid shard
/// predated this run — the resume contract's observable: a resumed
/// campaign reports skipped == the work the killed run completed.
struct RunStats {
  size_t total = 0;         ///< scenarios in the expansion
  size_t executed = 0;      ///< run to completion this invocation
  size_t skipped = 0;       ///< valid shard already present at start
  size_t failed = 0;        ///< of executed: scenarios that errored
  size_t remaining = 0;     ///< still shard-less when the run returned
  size_t redispatched = 0;  ///< re-queued after a worker died mid-scenario
};

/// One completed scenario as persisted in its shard file.
struct ShardData {
  size_t index = 0;
  std::string label;
  uint64_t fingerprint = 0;
  uint64_t base_fingerprint = 0;
  std::string changes;  ///< describe_changes() provenance
  std::string error;    ///< non-empty = the scenario failed
  /// Delay stats (valid when ok()); named exactly like delay_json.
  double mean = 0.0, sigma = 0.0, q90 = 0.0, q99 = 0.0, q9987 = 0.0;
  double seconds = 0.0;  ///< informational; excluded from merged reports

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Execute the campaign's pending scenarios. Throws on a broken spec, an
/// un-spawnable worker, a handshake mismatch, or when every worker died
/// with work outstanding; individual scenario failures are recorded in
/// their shards, not thrown.
RunStats run_campaign(const std::string& spec_path,
                      const CampaignOptions& opts);

struct StatusReport {
  std::string name;
  std::string base_fingerprint;
  size_t total = 0;
  size_t done = 0;    ///< valid shards present
  size_t failed = 0;  ///< of done: error shards
};

/// Scan the shard directory against the expansion (no scenarios run).
[[nodiscard]] StatusReport campaign_status(const std::string& spec_path,
                                           const CampaignOptions& opts);

/// Merge every shard into the campaign report, write it atomically to
/// `<out_dir>/campaign.json` and return the JSON text. Throws when any
/// scenario is still missing its shard (merge is for complete campaigns;
/// use campaign_status to see how far along a partial one is).
std::string merge_campaign(const std::string& spec_path,
                           const CampaignOptions& opts);

/// The worker side of the wire protocol, stream-based so tests can drive
/// it in-process. Builds the base, answers the ready handshake, executes
/// scenario requests (writing shards exactly like the in-process path),
/// and returns 0 on shutdown/EOF. opts.config.threads is forced to 1.
int worker_loop(const std::string& spec_path, const CampaignOptions& opts,
                std::istream& in, std::ostream& out);

/// Locate the hssta_cli binary for worker spawning: next to the running
/// executable, then one directory up (bench binaries live in a
/// subdirectory of the build root), then bare "hssta_cli" from PATH.
[[nodiscard]] std::string default_worker_cmd();

/// Shard file path for a scenario fingerprint.
[[nodiscard]] std::string shard_path(const std::string& out_dir,
                                     uint64_t fingerprint);

/// Parse one shard file; nullopt when missing, unparseable, or not a
/// shard for (`fingerprint`, `base_fingerprint`) — all three mean "this
/// scenario has not run yet" to the resume scan.
[[nodiscard]] std::optional<ShardData> read_shard(const std::string& path,
                                                  uint64_t fingerprint,
                                                  uint64_t base_fingerprint);

}  // namespace hssta::campaign
