/// \file process.hpp
/// campaign::Subprocess — a spawned worker process with line-oriented
/// stdin/stdout pipes, for the campaign coordinator's fan-out.
///
/// The coordinator is single-threaded: it multiplexes every worker's
/// stdout with poll(2) (see Subprocess::out_fd) and feeds bytes through
/// read_available(), which buffers partial lines until the newline
/// arrives. stderr is inherited, so a crashing worker's diagnostics land
/// on the campaign's own stderr.

#pragma once

#include <string>
#include <sys/types.h>
#include <vector>

namespace hssta::campaign {

class Subprocess {
 public:
  /// fork/exec `argv` (argv[0] is the executable path) with stdin and
  /// stdout piped. Throws hssta::Error when the pipes or fork fail; an
  /// exec failure surfaces as the child exiting 127 (and EOF on its
  /// stdout).
  explicit Subprocess(const std::vector<std::string>& argv);
  /// Closes the pipes; kills (SIGKILL) and reaps the child if it is
  /// still running.
  ~Subprocess();

  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Write one line (a trailing '\n' is appended). Returns false when the
  /// child's stdin is gone (it died) — never raises SIGPIPE.
  [[nodiscard]] bool write_line(const std::string& line);

  /// The child's stdout read end, for poll(2).
  [[nodiscard]] int out_fd() const { return out_fd_; }

  /// Drain whatever the child has written without blocking and append
  /// every complete line to `lines`. Returns false on EOF (the child
  /// closed its stdout — normally because it exited).
  [[nodiscard]] bool read_available(std::vector<std::string>& lines);

  /// Close the child's stdin (its read loop sees EOF and exits cleanly).
  void close_stdin();

  /// Reap the child (blocking) and return its raw waitpid status; -1 once
  /// already reaped.
  int wait();

  [[nodiscard]] pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
  int in_fd_ = -1;   ///< write end of the child's stdin
  int out_fd_ = -1;  ///< read end of the child's stdout
  std::string buffer_;  ///< bytes read past the last complete line
};

}  // namespace hssta::campaign
